(* Benchmark & reproduction harness.

   Usage:
     bench/main.exe                     run every artefact, then perf
     bench/main.exe fig2                one artefact (see list below)
     bench/main.exe all --out results/  also write one file per artefact
     bench/main.exe quick               cheap subset (used by CI/tests)
     bench/main.exe perf --quick        perf with small grids, no micro pass
     bench/main.exe -j 4 fig2           fan the artefact grids over 4 domains

   Artefacts: fig2..fig11, theorem1, ablation-adversary, ablation-random,
   ablation-load, ablation-online, baseline-copyset, domain-grid, perf.

   Each figN prints the rows/series of the corresponding figure or table
   of the paper (see DESIGN.md §4 and EXPERIMENTS.md).  `-j N` (default:
   Domain.recommended_domain_count) sizes the Engine.Pool shared by the
   parallel drivers (F2, F5/F6, F7, F9); outputs are bit-identical at any
   `-j`.  `perf` additionally times the adversary multi-restart at -j 1
   vs -j N and the incremental kernel against the frozen naive greedy
   (both appended to BENCH_adversary.json), plus the cached-vs-uncached
   availability-analysis sweep (appended to BENCH_analysis.json). *)

type ctx = {
  pool : Engine.Pool.t option;  (* None when running at -j 1 *)
  jobs : int;
  out : string option;
  quick : bool;  (* perf --quick: small grids, no Bechamel micro pass *)
}

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core algorithms                    *)

let perf_tests () =
  let open Bechamel in
  let sts69 = Designs.Steiner_triple.make 69 in
  let layout_2400 =
    (Placement.Simple.of_design sts69 ~n:71 ~b:2400).Placement.Simple.layout
  in
  let params_9600 = Placement.Params.make ~b:9600 ~r:3 ~s:3 ~n:71 ~k:5 in
  let levels = Placement.Combo.default_levels ~n:71 ~r:3 ~s:3 () in
  let params_rnd = Placement.Params.make ~b:600 ~r:3 ~s:2 ~n:71 ~k:4 in
  [
    Test.make ~name:"sts_69"
      (Staged.stage (fun () -> Designs.Steiner_triple.make 69));
    Test.make ~name:"sts_255"
      (Staged.stage (fun () -> Designs.Steiner_triple.make 255));
    Test.make ~name:"spherical_17"
      (Staged.stage (fun () -> Designs.Spherical.make ~q:4 ~d:2));
    Test.make ~name:"sqs_32"
      (Staged.stage (fun () -> Designs.Quadruple.make 32));
    Test.make ~name:"difference_family_41_5"
      (Staged.stage (fun () -> Designs.Difference_family.find ~v:41 ~r:5 ()));
    Test.make ~name:"combo_dp_b9600"
      (Staged.stage (fun () -> Placement.Combo.optimize ~levels params_9600));
    Test.make ~name:"pr_avail_b38400"
      (Staged.stage (fun () ->
           Placement.Random_analysis.pr_avail
             (Placement.Params.make ~b:38400 ~r:3 ~s:2 ~n:71 ~k:5)));
    Test.make ~name:"adversary_greedy_b2400"
      (Staged.stage (fun () ->
           Placement.Adversary.greedy layout_2400 ~s:2 ~k:4));
    Test.make ~name:"random_place_b600"
      (let rng = Combin.Rng.create 42 in
       Staged.stage (fun () -> Placement.Random_placement.place ~rng params_rnd));
    Test.make ~name:"adaptive_add_1k"
      (Staged.stage (fun () ->
           let t = Placement.Adaptive.create ~n:71 ~r:3 ~s:2 ~k:4 () in
           ignore (Placement.Adaptive.add_many t 1000)));
  ]

let run_micro fmt =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests = Test.make_grouped ~name:"repro" ~fmt:"%s/%s" (perf_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> rows := (name, t) :: !rows
          | _ -> ())
        tbl;
      List.iter
        (fun (name, t) -> Format.fprintf fmt "%-36s %14.1f ns/run@." name t)
        (List.sort compare !rows))
    results

(* ------------------------------------------------------------------ *)
(* Adversary scaling micro-bench: wall-clock at -j 1 vs -j N, recorded
   as one JSON object per line so future PRs can track the perf curve. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Re-run a measured workload once with the Telemetry registry enabled
   and return its deterministic search statistics as a compact JSON
   object (the "values" section only: the part that is bit-identical
   across -j and across machines), for embedding into BENCH_*.json
   rows.  The extra run happens after the timed ones so collection never
   perturbs the recorded walls. *)
let stats_json_of f =
  Telemetry.Registry.reset ();
  Telemetry.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.Control.set_enabled false)
    (fun () -> ignore (f ()));
  let snap = Telemetry.Registry.snapshot () in
  Telemetry.Json.to_string (Telemetry.Export.values_json snap)

let run_adversary_scaling ctx fmt =
  let n = 71 and b = 2400 and s = 2 and k = 5 and restarts = 32 in
  let design = Designs.Steiner_triple.make 69 in
  let layout = (Placement.Simple.of_design design ~n ~b).Placement.Simple.layout in
  let attack_with pool =
    Placement.Adversary.local_search ~rng:(Combin.Rng.create 0xBE7C) ~restarts
      ?pool layout ~s ~k
  in
  (* Warm-up: the first run pays page-fault and GC-growth costs that would
     otherwise be billed entirely to the -j 1 measurement. *)
  ignore (attack_with None);
  let seq, wall_j1 = wall (fun () -> attack_with None) in
  let par, wall_jn =
    match ctx.pool with
    | Some _ -> wall (fun () -> attack_with ctx.pool)
    | None -> wall (fun () -> attack_with None)
  in
  let identical =
    seq.Placement.Adversary.failed_objects = par.Placement.Adversary.failed_objects
    && seq.Placement.Adversary.failed_nodes = par.Placement.Adversary.failed_nodes
  in
  let speedup = if wall_jn > 0.0 then wall_j1 /. wall_jn else 0.0 in
  Format.fprintf fmt
    "adversary multi-restart (n=%d b=%d s=%d k=%d restarts=%d): \
     %.3fs at -j1, %.3fs at -j%d (speedup %.2fx, outputs %s)@."
    n b s k restarts wall_j1 wall_jn ctx.jobs speedup
    (if identical then "identical" else "DIFFER");
  let json =
    Printf.sprintf
      "{\"op\": \"adversary_local_search_multi_restart\", \"n\": %d, \
       \"b\": %d, \"s\": %d, \"k\": %d, \"restarts\": %d, \"jobs\": %d, \
       \"wall_s_j1\": %.6f, \"wall_s_jn\": %.6f, \"speedup\": %.4f, \
       \"identical\": %b, \"stats\": %s}\n"
      n b s k restarts ctx.jobs wall_j1 wall_jn speedup identical
      (stats_json_of (fun () -> attack_with None))
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_adversary.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Cached vs uncached availability analysis: the Fig-9-style lbAvail_co
   grid sweep through Placement.Instance (one table build per (n, r, s),
   O(1) with_cell per grid cell, binomial columns hoisted out of the DP)
   against a frozen copy of the pre-Instance path (level set respun and
   exact binomials recomputed inside the DP inner loop for every cell —
   what Fig9.cell_value compiled to before the refactor).  Both arms must
   agree on every lb; the speedup line lands in BENCH_analysis.json. *)

let uncached_lb ~n ~r ~s ~k ~b =
  let levels = Placement.Combo.default_levels ~n ~r ~s () in
  let loss (level : Placement.Combo.level) d =
    d * level.Placement.Combo.mu
    * Combin.Binomial.exact k (level.Placement.Combo.x + 1)
    / Combin.Binomial.exact s (level.Placement.Combo.x + 1)
  in
  let neg_inf = min_int / 2 in
  let lbav = Array.make_matrix s (b + 1) 0 in
  let l0 = levels.(0) in
  for b' = 1 to b do
    if l0.Placement.Combo.cap_mu = 0 then lbav.(0).(b') <- neg_inf
    else begin
      let d = (b' + l0.Placement.Combo.cap_mu - 1) / l0.Placement.Combo.cap_mu in
      lbav.(0).(b') <- max 0 (b' - loss l0 d)
    end
  done;
  for x' = 1 to s - 1 do
    let level = levels.(x') in
    let cap = level.Placement.Combo.cap_mu in
    for b' = 1 to b do
      let best = ref neg_inf in
      let d_max = if cap = 0 then 0 else (b' + cap - 1) / cap in
      for d = 0 to d_max do
        let hosted = min b' (d * cap) in
        let rest = b' - (d * cap) in
        let below = if rest <= 0 then 0 else lbav.(x' - 1).(rest) in
        if below > neg_inf then begin
          let value = below + hosted - loss level d in
          if value > !best then best := value
        end
      done;
      lbav.(x').(b') <- !best
    done
  done;
  max 0 lbav.(s - 1).(b)

let run_analysis_caching ctx fmt =
  let n = 71 in
  let bs = [ 600; 1200; 2400; 4800; 9600 ] in
  let tables =
    List.concat_map
      (fun r -> List.map (fun s -> (r, s)) (List.init (r - 1) (fun i -> i + 2)))
      [ 2; 3; 4; 5 ]
  in
  let ks s = List.init (7 - s + 1) (fun i -> s + i) in
  let sweep_uncached () =
    List.concat_map
      (fun (r, s) ->
        List.concat_map
          (fun b -> List.map (fun k -> uncached_lb ~n ~r ~s ~k ~b) (ks s))
          bs)
      tables
  in
  let sweep_cached () =
    List.concat_map
      (fun (r, s) ->
        let base = Placement.Instance.make ~b:(List.hd bs) ~r ~s ~n ~k:s () in
        List.concat_map
          (fun b ->
            List.map
              (fun k ->
                (Placement.Instance.combo_config
                   (Placement.Instance.with_cell base ~b ~k))
                  .Placement.Combo.lb)
              (ks s))
          bs)
      tables
  in
  (* Warm-up both arms once so neither is billed allocator start-up. *)
  ignore (sweep_cached ());
  ignore (sweep_uncached ());
  let lbs_uncached, wall_uncached = wall sweep_uncached in
  let lbs_cached, wall_cached = wall sweep_cached in
  let identical = lbs_uncached = lbs_cached in
  let cells = List.length lbs_cached in
  let speedup = if wall_cached > 0.0 then wall_uncached /. wall_cached else 0.0 in
  Format.fprintf fmt
    "analysis grid sweep (n=%d, %d cells): %.3fs uncached (per-cell levels + \
     exact binomials), %.3fs via Instance (speedup %.2fx, lbs %s)@."
    n cells wall_uncached wall_cached speedup
    (if identical then "identical" else "DIFFER");
  let json =
    Printf.sprintf
      "{\"op\": \"combo_lb_grid_sweep\", \"n\": %d, \"cells\": %d, \
       \"quick\": %b, \"wall_s_uncached\": %.6f, \"wall_s_cached\": %.6f, \
       \"speedup\": %.4f, \"identical\": %b, \"stats\": %s}\n"
      n cells ctx.quick wall_uncached wall_cached speedup identical
      (stats_json_of sweep_cached)
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_analysis.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Telemetry overhead guard: the instrumentation must be disabled-by-
   default free.  We time the adversary multi-restart with the registry
   off and on; since the disabled paths do strictly less work than the
   enabled ones (every probe is gated on Control.on), the enabled
   overhead is an upper bound on the disabled overhead, and the guard
   [disabled_ok] asserts it stays under 5%.  The ns/op of the two
   disabled primitives (counter bump, span timer) is recorded alongside
   for visibility.  check.sh greps the row's disabled_ok. *)

let run_telemetry_overhead ctx fmt =
  let n = 71 and b = 1200 and s = 2 and k = 4 and restarts = 16 in
  let design = Designs.Steiner_triple.make 69 in
  let layout = (Placement.Simple.of_design design ~n ~b).Placement.Simple.layout in
  let workload () =
    Placement.Adversary.local_search ~rng:(Combin.Rng.create 0x7E1E) ~restarts
      layout ~s ~k
  in
  ignore (workload ());
  let reps = if ctx.quick then 3 else 5 in
  (* Min-of-reps: the least-perturbed run of each arm. *)
  let time_reps () =
    let best = ref infinity in
    for _ = 1 to reps do
      let _, w = wall workload in
      if w < !best then best := w
    done;
    !best
  in
  let wall_disabled = time_reps () in
  Telemetry.Registry.reset ();
  Telemetry.Control.set_enabled true;
  let wall_enabled =
    Fun.protect
      ~finally:(fun () -> Telemetry.Control.set_enabled false)
      time_reps
  in
  let overhead_pct =
    if wall_disabled > 0.0 then
      max 0.0 (100.0 *. (wall_enabled -. wall_disabled) /. wall_disabled)
    else 0.0
  in
  let disabled_ok = overhead_pct < 5.0 in
  let ops = 10_000_000 in
  let c = Telemetry.Registry.counter "bench/overhead/probe_counter" in
  let (), w_counter =
    wall (fun () ->
        for _ = 1 to ops do
          Telemetry.Counter.incr c
        done)
  in
  let sp = Telemetry.Registry.span "bench/overhead/probe_span" in
  let (), w_span =
    wall (fun () ->
        for _ = 1 to ops do
          Telemetry.Span.time sp ignore
        done)
  in
  let counter_ns = w_counter *. 1e9 /. float_of_int ops in
  let span_ns = w_span *. 1e9 /. float_of_int ops in
  Format.fprintf fmt
    "telemetry overhead (n=%d b=%d s=%d k=%d restarts=%d, min of %d): \
     %.3fs disabled, %.3fs enabled (+%.2f%%, %s); disabled probes: \
     counter %.2f ns/op, span %.2f ns/op@."
    n b s k restarts reps wall_disabled wall_enabled overhead_pct
    (if disabled_ok then "ok" else "OVER BUDGET")
    counter_ns span_ns;
  let json =
    Printf.sprintf
      "{\"op\": \"telemetry_overhead\", \"n\": %d, \"b\": %d, \"s\": %d, \
       \"k\": %d, \"restarts\": %d, \"reps\": %d, \"wall_s_disabled\": %.6f, \
       \"wall_s_enabled\": %.6f, \"overhead_pct\": %.4f, \
       \"counter_ns_disabled\": %.4f, \"span_ns_disabled\": %.4f, \
       \"disabled_ok\": %b}\n"
      n b s k restarts reps wall_disabled wall_enabled overhead_pct counter_ns
      span_ns disabled_ok
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_telemetry.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Domain-adversary scaling: the topology branch-and-bound at -j 1 vs
   -j N.  The rack budget is set so C(racks, j) forces the B&B path
   (exhaustive_limit 0 would too, but a genuinely large subset space is
   the honest workload); the determinism contract says the two walls
   bracket identical outputs. *)

let run_topology_scaling ctx fmt =
  let n = 71 and b = 2400 and s = 2 and racks = 24 and j = 7 in
  let design = Designs.Steiner_triple.make 69 in
  let layout = (Placement.Simple.of_design design ~n ~b).Placement.Simple.layout in
  let tree = Topology.Build.partition ~n ~domains:racks () in
  let attack_with pool =
    Topology.Adversary.exact ?pool layout ~s tree ~level:1 ~j
  in
  ignore (attack_with None);
  let seq, wall_j1 = wall (fun () -> attack_with None) in
  let par, wall_jn =
    match ctx.pool with
    | Some _ -> wall (fun () -> attack_with ctx.pool)
    | None -> wall (fun () -> attack_with None)
  in
  let identical =
    seq.Topology.Adversary.failed_objects = par.Topology.Adversary.failed_objects
    && seq.Topology.Adversary.failed_domains
       = par.Topology.Adversary.failed_domains
  in
  let speedup = if wall_jn > 0.0 then wall_j1 /. wall_jn else 0.0 in
  Format.fprintf fmt
    "domain adversary B&B (n=%d b=%d s=%d, worst %d of %d racks): \
     %.3fs at -j1, %.3fs at -j%d (speedup %.2fx, outputs %s)@."
    n b s j racks wall_j1 wall_jn ctx.jobs speedup
    (if identical then "identical" else "DIFFER");
  let json =
    Printf.sprintf
      "{\"op\": \"topology_domain_adversary_bb\", \"n\": %d, \"b\": %d, \
       \"s\": %d, \"racks\": %d, \"j\": %d, \"jobs\": %d, \
       \"wall_s_j1\": %.6f, \"wall_s_jn\": %.6f, \"speedup\": %.4f, \
       \"identical\": %b, \"stats\": %s}\n"
      n b s racks j ctx.jobs wall_j1 wall_jn speedup identical
      (stats_json_of (fun () -> attack_with None))
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_topology.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Kernel vs naive adversary: the incremental-counter greedy
   (Kernel.select_greedy, CELF heap) against a frozen copy of the
   stateless pre-kernel formulation — every marginal recounted from the
   replica lists, Layout.failed_objects-style, with no hit counters
   carried between candidates.  Both arms compute the same
   (newly, progress) lexicographic objective with lowest-id ties, so
   their pick sequences must match node for node; the walls quantify
   what the kernel buys on the Fig-4 sweep instance.  A second segment
   times the kernel-threaded branch-and-bound and reports nodes/s. *)

let naive_scan_greedy layout ~s ~k =
  let n = layout.Placement.Layout.n in
  let node_objs = Placement.Layout.node_objects layout in
  let replicas = layout.Placement.Layout.replicas in
  let chosen = Array.make n false in
  let evals = ref 0 in
  let out =
    Array.init k (fun _ ->
        let best = ref (-1) and bne = ref (-1) and bpr = ref (-1) in
        for u = 0 to n - 1 do
          if not chosen.(u) then begin
            incr evals;
            let ne = ref 0 and pr = ref 0 in
            Array.iter
              (fun obj ->
                let h =
                  Array.fold_left
                    (fun c nd -> if chosen.(nd) then c + 1 else c)
                    0 replicas.(obj)
                in
                if h + 1 = s then incr ne;
                if h < s then incr pr)
              node_objs.(u);
            if !ne > !bne || (!ne = !bne && !pr > !bpr) then begin
              best := u;
              bne := !ne;
              bpr := !pr
            end
          end
        done;
        chosen.(!best) <- true;
        !best)
  in
  (out, !evals)

let run_kernel_bench ctx fmt =
  let n = 71 and b = 2400 and s = 2 and k = 5 in
  let reps = if ctx.quick then 20 else 100 in
  let design = Designs.Steiner_triple.make 69 in
  let layout = (Placement.Simple.of_design design ~n ~b).Placement.Simple.layout in
  ignore (Placement.Layout.node_objects layout);
  let kernel_run () =
    let kn = Placement.Kernel.make layout ~s in
    Placement.Kernel.select_greedy kn ~picks:k
  in
  let naive_run () = naive_scan_greedy layout ~s ~k in
  (* Warm-up both arms, and check pick-sequence identity once. *)
  let kernel_picks, kstats = kernel_run () in
  let naive_picks, naive_evals = naive_run () in
  let identical = kernel_picks = naive_picks in
  let _, wall_kernel =
    wall (fun () -> for _ = 1 to reps do ignore (kernel_run ()) done)
  in
  let _, wall_naive =
    wall (fun () -> for _ = 1 to reps do ignore (naive_run ()) done)
  in
  let ns_per arm_wall evals =
    if evals > 0 then arm_wall *. 1e9 /. float_of_int (reps * evals) else 0.0
  in
  let speedup = if wall_kernel > 0.0 then wall_naive /. wall_kernel else 0.0 in
  Format.fprintf fmt
    "kernel vs naive greedy (n=%d b=%d s=%d k=%d, %d reps): \
     %.1f us kernel (%d evals) vs %.1f us naive (%d evals) per run \
     (speedup %.2fx, picks %s)@."
    n b s k reps
    (wall_kernel *. 1e6 /. float_of_int reps)
    kstats.Placement.Kernel.evals
    (wall_naive *. 1e6 /. float_of_int reps)
    naive_evals speedup
    (if identical then "identical" else "DIFFER");
  (* Branch-and-bound throughput: the exact adversary now threads one
     kernel copy per branch; nodes/s is the honest scalar for it. *)
  let m_bb_nodes = Telemetry.Registry.counter "core/adversary/bb/nodes_expanded" in
  let bb_k = 3 in
  Telemetry.Registry.reset ();
  Telemetry.Control.set_enabled true;
  let bb, bb_wall =
    Fun.protect
      ~finally:(fun () -> Telemetry.Control.set_enabled false)
      (fun () -> wall (fun () -> Placement.Adversary.exact layout ~s ~k:bb_k))
  in
  let bb_nodes = Telemetry.Counter.value m_bb_nodes in
  let bb_rate = if bb_wall > 0.0 then float_of_int bb_nodes /. bb_wall else 0.0 in
  Format.fprintf fmt
    "kernel-threaded B&B (n=%d b=%d s=%d k=%d): %d nodes in %.3fs \
     (%.0f nodes/s, exact=%b)@."
    n b s bb_k bb_nodes bb_wall bb_rate bb.Placement.Adversary.exact;
  let json =
    Printf.sprintf
      "{\"op\": \"adversary_kernel_vs_naive\", \"n\": %d, \"b\": %d, \
       \"s\": %d, \"k\": %d, \"reps\": %d, \"wall_s_kernel\": %.6f, \
       \"wall_s_naive\": %.6f, \"ns_per_eval_kernel\": %.1f, \
       \"ns_per_eval_naive\": %.1f, \"kernel_evals\": %d, \
       \"naive_evals\": %d, \"speedup\": %.4f, \"identical\": %b, \
       \"bb_k\": %d, \"bb_nodes\": %d, \"bb_wall_s\": %.6f, \
       \"bb_nodes_per_s\": %.0f, \"stats\": %s}\n"
      n b s k reps wall_kernel wall_naive
      (ns_per wall_kernel kstats.Placement.Kernel.evals)
      (ns_per wall_naive naive_evals)
      kstats.Placement.Kernel.evals naive_evals speedup identical bb_k bb_nodes
      bb_wall bb_rate
      (* Adversary.greedy is select_greedy plus the telemetry flush, so
         its stats carry the kernel counters for this exact workload. *)
      (stats_json_of (fun () -> Placement.Adversary.greedy layout ~s ~k))
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_adversary.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Web-scale greedy scaling sweep: the flat-CSR kernel plus sharded CELF
   over an n×b grid, one synthetic Random and one spread Simple(x)
   instance per cell.  The sequential select_greedy is the reference
   oracle; the sharded path runs over the ctx pool and must reproduce
   its picks bit-for-bit (shard count is a pure function of the unit
   count, so this holds at any -j — DESIGN.md §11).  One JSON row with a
   per-cell array lands in BENCH_adversary.json; check.sh hard-fails on
   any pick mismatch and warns when the largest cell's speedup drops
   below the nominal floor.  Peak RSS (VmHWM, monotone within the
   process) is recorded per cell and for the sweep. *)

let run_scaling ctx fmt =
  let grid =
    if ctx.quick then [ (500, 10_000); (2_000, 50_000) ]
    else [ (1_000, 50_000); (4_000, 250_000); (10_000, 1_000_000) ]
  in
  let picks = 16 and r = 3 and s = 2 in
  let sts = Designs.Steiner_triple.make 69 in
  let rss () =
    match Telemetry.Resource.peak_rss_kb () with Some kb -> kb | None -> 0
  in
  let cells = ref [] in
  let all_identical = ref true in
  let last_speedup = ref 0.0 and last_label = ref "" in
  List.iter
    (fun (n, b) ->
      let families =
        [
          ( "random",
            fun () ->
              let params = Placement.Params.make ~b ~r ~s ~n ~k:picks in
              Placement.Random_placement.place
                ~rng:(Combin.Rng.create 0x5CA1E) params );
          ( "simple",
            fun () ->
              (Placement.Simple.of_design ~spread:true sts ~n ~b)
                .Placement.Simple.layout );
        ]
      in
      List.iter
        (fun (family, build) ->
          let layout = build () in
          let kn0 = Placement.Kernel.make layout ~s in
          (* Touch the kernel once so the shared CSR build and the page
             faults of the fresh planes are billed to neither arm. *)
          ignore (Placement.Kernel.marginal kn0 0);
          let (picks_seq, stats_seq), wall_j1 =
            wall (fun () ->
                Placement.Kernel.select_greedy (Placement.Kernel.copy kn0)
                  ~picks)
          in
          let (picks_par, stats_par), wall_jn =
            wall (fun () ->
                Placement.Kernel.select_greedy_sharded ?pool:ctx.pool
                  (Placement.Kernel.copy kn0) ~picks)
          in
          let identical = picks_seq = picks_par in
          if not identical then all_identical := false;
          let speedup = if wall_jn > 0.0 then wall_j1 /. wall_jn else 0.0 in
          last_speedup := speedup;
          last_label := Printf.sprintf "%s_%dx%d" family n b;
          let ns_per_eval =
            if stats_seq.Placement.Kernel.evals > 0 then
              wall_j1 *. 1e9 /. float_of_int stats_seq.Placement.Kernel.evals
            else 0.0
          in
          let cell_rss = rss () in
          Format.fprintf fmt
            "greedy %s n=%d b=%d (%d picks): %.3fs seq, %.3fs sharded at \
             -j%d (speedup %.2fx, %.0f ns/eval, %d heap pops, picks %s, \
             peak RSS %d kB)@."
            family n b picks wall_j1 wall_jn ctx.jobs speedup ns_per_eval
            stats_par.Placement.Kernel.heap_pops
            (if identical then "identical" else "DIFFER")
            cell_rss;
          cells :=
            Printf.sprintf
              "{\"family\": \"%s\", \"n\": %d, \"b\": %d, \"picks\": %d, \
               \"wall_s_j1\": %.6f, \"wall_s_jn\": %.6f, \"speedup\": %.4f, \
               \"ns_per_eval_j1\": %.1f, \"evals_j1\": %d, \"evals_jn\": %d, \
               \"heap_pops_j1\": %d, \"heap_pops_jn\": %d, \
               \"stale_reevals_jn\": %d, \"identical\": %b, \
               \"peak_rss_kb\": %d}"
              family n b picks wall_j1 wall_jn speedup ns_per_eval
              stats_seq.Placement.Kernel.evals stats_par.Placement.Kernel.evals
              stats_seq.Placement.Kernel.heap_pops
              stats_par.Placement.Kernel.heap_pops
              stats_par.Placement.Kernel.stale_reevals identical cell_rss
            :: !cells)
        families)
    grid;
  let json =
    Printf.sprintf
      "{\"op\": \"adversary_scaling_sweep\", \"jobs\": %d, \"quick\": %b, \
       \"picks\": %d, \"identical_all\": %b, \"largest_cell\": \"%s\", \
       \"largest_cell_speedup\": %.4f, \"peak_rss_kb\": %d, \"cells\": [%s]}\n"
      ctx.jobs ctx.quick picks !all_identical !last_label !last_speedup
      (rss ())
      (String.concat ", " (List.rev !cells))
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_adversary.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Sharded frontier vs branch-parallel exact adversary: the PR-10
   work-stealing B&B (Placement.Bb, DESIGN.md §15) against a frozen
   copy of the scheme it replaced — one branch per first-choice node,
   each with a statically pre-split budget share and a local best
   seeded from the incumbent read once before dispatch.  Both arms and
   the sequential oracle ([exact_seq] = spawn_depth k) must agree on
   damage AND winning set at any -j; the row records walls, task/steal
   counts and ns/task (the per-task cost the reusable CELF heap and
   prefix-diff kernel retargeting keep flat) for k=6–7 exact attacks
   on a Fig.4 design point and a random instance. *)

let branch_parallel_exact ?pool layout ~s ~k ~budget =
  let n = layout.Placement.Layout.n in
  let kn0 = Placement.Kernel.make layout ~s in
  let degrees = Array.init n (Placement.Kernel.degree kn0) in
  let top_deg = Placement.Bb.top_degrees ~degrees ~n ~k in
  let g = Placement.Adversary.greedy ?pool layout ~s ~k in
  let seed = g.Placement.Adversary.failed_objects in
  let first_choices = Array.init (n - k + 1) Fun.id in
  let branch_budget = max 1 (budget / Array.length first_choices) in
  let run_branch nd0 =
    let st = Placement.Kernel.copy kn0 in
    let best = ref seed and best_set = ref None in
    let current = Array.make k 0 in
    let visited = ref 0 and truncated = ref false in
    let rec go start depth =
      incr visited;
      if !visited > branch_budget then truncated := true
      else if depth = k then begin
        if Placement.Kernel.killed st > !best then begin
          best := Placement.Kernel.killed st;
          best_set := Some (Array.copy current)
        end
      end
      else if Placement.Kernel.killed st + top_deg.(start).(k - depth) > !best
      then
        for nd = start to n - (k - depth) do
          if not !truncated then begin
            current.(depth) <- nd;
            Placement.Kernel.add st nd;
            go (nd + 1) (depth + 1);
            Placement.Kernel.remove st nd
          end
        done
    in
    current.(0) <- nd0;
    Placement.Kernel.add st nd0;
    go (nd0 + 1) 1;
    (!best, !best_set, !truncated)
  in
  let results =
    match pool with
    | Some p -> Engine.Pool.parallel_map p run_branch first_choices
    | None -> Array.map run_branch first_choices
  in
  let best = ref seed and best_set = ref g.Placement.Adversary.failed_nodes in
  let truncated = ref false in
  Array.iter
    (fun (v, set, tr) ->
      if tr then truncated := true;
      match set with
      | Some nodes when v > !best ->
          best := v;
          best_set := Combin.Intset.of_array nodes
      | _ -> ())
    results;
  (!best, !best_set, !truncated)

let run_bb_scaling ctx fmt =
  let s = 2 and budget = 1_000_000_000 in
  let combo31 =
    Placement.Instance.combo_layout
      (Placement.Instance.make ~b:600 ~r:3 ~s ~n:31 ~k:6 ())
  in
  let random40 =
    Placement.Random_placement.place ~rng:(Combin.Rng.create 0x5CA1E)
      (Placement.Params.make ~b:800 ~r:3 ~s ~n:40 ~k:6)
  in
  let ks = if ctx.quick then [ 6 ] else [ 6; 7 ] in
  let points =
    List.concat_map
      (fun k ->
        [ ("combo", 31, 600, combo31, k); ("random", 40, 800, random40, k) ])
      ks
  in
  (* Warm-up on the smallest point: page faults and GC growth are billed
     to neither arm. *)
  ignore (Placement.Adversary.exact ~budget combo31 ~s ~k:5);
  let cells = ref [] in
  let all_identical = ref true in
  let k6_speedup = ref 0.0 in
  List.iter
    (fun (family, n, b, layout, k) ->
      let kn0 = Placement.Kernel.make layout ~s in
      let g = Placement.Adversary.greedy layout ~s ~k in
      let seed = g.Placement.Adversary.failed_objects in
      let set_of (r : Placement.Bb.result) =
        match r.Placement.Bb.set with
        | Some nodes -> Combin.Intset.of_array nodes
        | None -> g.Placement.Adversary.failed_nodes
      in
      let (br_value, br_set, br_trunc), wall_branch =
        wall (fun () -> branch_parallel_exact ?pool:ctx.pool layout ~s ~k ~budget)
      in
      let r1, wall_j1 =
        wall (fun () -> Placement.Bb.search ~budget ~kernel:kn0 ~k ~seed ())
      in
      let rn, wall_jn =
        wall (fun () ->
            Placement.Bb.search ?pool:ctx.pool ~budget ~kernel:kn0 ~k ~seed ())
      in
      let oracle, wall_oracle =
        wall (fun () ->
            Placement.Bb.search ~spawn_depth:k ~budget ~kernel:kn0 ~k ~seed ())
      in
      let identical =
        (not br_trunc)
        && (not r1.Placement.Bb.truncated)
        && (not rn.Placement.Bb.truncated)
        && (not oracle.Placement.Bb.truncated)
        && br_value = oracle.Placement.Bb.value
        && r1.Placement.Bb.value = oracle.Placement.Bb.value
        && rn.Placement.Bb.value = oracle.Placement.Bb.value
        && br_set = set_of oracle
        && set_of r1 = set_of oracle
        && set_of rn = set_of oracle
      in
      if not identical then all_identical := false;
      let speedup = if wall_jn > 0.0 then wall_branch /. wall_jn else 0.0 in
      if k = 6 && family = "random" then k6_speedup := speedup;
      let st = rn.Placement.Bb.stats in
      let tasks = st.Placement.Bb.spawned_tasks in
      let ns_per_task =
        if tasks > 0 then wall_jn *. 1e9 /. float_of_int tasks else 0.0
      in
      Format.fprintf fmt
        "exact %s n=%d b=%d k=%d: %.3fs branch-parallel, %.3fs frontier \
         -j1, %.3fs frontier -j%d (%.2fx vs branch), %.3fs oracle; \
         %d tasks at depth %d, %d steals, %.0f ns/task, results %s@."
        family n b k wall_branch wall_j1 wall_jn ctx.jobs speedup wall_oracle
        tasks st.Placement.Bb.spawn_depth st.Placement.Bb.steals ns_per_task
        (if identical then "identical" else "DIFFER");
      cells :=
        Printf.sprintf
          "{\"family\": \"%s\", \"n\": %d, \"b\": %d, \"k\": %d, \
           \"wall_s_branch\": %.6f, \"wall_s_frontier_j1\": %.6f, \
           \"wall_s_frontier_jn\": %.6f, \"wall_s_oracle\": %.6f, \
           \"speedup_vs_branch\": %.4f, \"spawned_tasks\": %d, \
           \"spawn_depth\": %d, \"steals\": %d, \"nodes_jn\": %d, \
           \"ns_per_task_jn\": %.1f, \"identical\": %b}"
          family n b k wall_branch wall_j1 wall_jn wall_oracle speedup tasks
          st.Placement.Bb.spawn_depth st.Placement.Bb.steals
          st.Placement.Bb.nodes ns_per_task identical
        :: !cells)
    points;
  let json =
    Printf.sprintf
      "{\"op\": \"bb_sharded_vs_branch\", \"jobs\": %d, \"quick\": %b, \
       \"budget\": %d, \"identical_all\": %b, \"k6_speedup_vs_branch\": \
       %.4f, \"cells\": [%s]}\n"
      ctx.jobs ctx.quick budget !all_identical !k6_speedup
      (String.concat ", " (List.rev !cells))
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_adversary.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* ------------------------------------------------------------------ *)
(* Continuous churn trace: the event-sourced engine on an n=10^3,
   b=10^5 population.  The apply arm measures event throughput and
   checks the bounded-data-movement contract (no event moves more than
   r replicas); the re-score arms pit the incremental Dyn adversary
   against a full from-scratch rebuild (Kernel.make + select_greedy)
   on the final population.  The two must agree on picks, damage and
   scan stats — Churn.check re-verifies the whole stack — and check.sh
   gates on both booleans. *)

let run_churn_bench ctx fmt =
  let n = 1_000 and r = 3 and s = 2 and k = 8 in
  let prepop = if ctx.quick then 20_000 else 100_000 in
  let count = if ctx.quick then 2_000 else 10_000 in
  let eng = Dsim.Churn.create ~n ~r ~s ~k () in
  for _ = 1 to prepop do
    ignore (Dsim.Churn.apply eng Dsim.Event.Object_create)
  done;
  let events =
    Dsim.Event.seeded ~rng:(Combin.Rng.create 0xC4AF) ~n ~initial:prepop
      ~count ~measure_every:0 ()
  in
  let moved0 = Dsim.Churn.moved_replicas eng in
  let moved_bounded = ref true in
  let (), wall_apply =
    wall (fun () ->
        List.iter
          (fun ev ->
            let step = Dsim.Churn.apply eng ev in
            if step.Dsim.Churn.moved > r then moved_bounded := false)
          events)
  in
  let events_per_s =
    if wall_apply > 0.0 then float_of_int count /. wall_apply else 0.0
  in
  let moved_per_event =
    float_of_int (Dsim.Churn.moved_replicas eng - moved0) /. float_of_int count
  in
  let incr_run () = Dsim.Churn.rescore eng in
  let scratch_run () =
    let kn = Placement.Kernel.make (Dsim.Churn.layout eng) ~s in
    Placement.Kernel.select_greedy kn ~picks:k
  in
  (* Warm-up, then check incremental ≡ scratch on picks, damage and —
     via the full engine oracle — hit planes and scan stats. *)
  let rs = incr_run () in
  let kn = Placement.Kernel.make (Dsim.Churn.layout eng) ~s in
  let picks_ref, _ = Placement.Kernel.select_greedy kn ~picks:k in
  let incremental_eq_scratch =
    rs.Dsim.Churn.attack = picks_ref
    && rs.Dsim.Churn.worst_available
       = Dsim.Churn.live eng - Placement.Kernel.killed kn
    && match Dsim.Churn.check eng with
       | () -> true
       | exception Failure _ -> false
  in
  let reps = if ctx.quick then 3 else 5 in
  let (), wall_incr =
    wall (fun () -> for _ = 1 to reps do ignore (incr_run ()) done)
  in
  let (), wall_scratch =
    wall (fun () -> for _ = 1 to reps do ignore (scratch_run ()) done)
  in
  let speedup = if wall_incr > 0.0 then wall_scratch /. wall_incr else 0.0 in
  Format.fprintf fmt
    "churn trace (n=%d prepop=%d events=%d r=%d s=%d k=%d): %.0f events/s \
     apply, %.2f moved replicas/event (%s); re-score %.1f ms incremental vs \
     %.1f ms from-scratch per run (speedup %.2fx, outputs %s)@."
    n prepop count r s k events_per_s moved_per_event
    (if !moved_bounded then "bounded by r" else "BOUND VIOLATED")
    (wall_incr *. 1e3 /. float_of_int reps)
    (wall_scratch *. 1e3 /. float_of_int reps)
    speedup
    (if incremental_eq_scratch then "identical" else "DIFFER");
  let json =
    Printf.sprintf
      "{\"op\": \"churn_trace\", \"n\": %d, \"prepop\": %d, \"events\": %d, \
       \"r\": %d, \"s\": %d, \"k\": %d, \"quick\": %b, \
       \"events_per_s\": %.0f, \"moved_per_event\": %.4f, \
       \"moved_bounded\": %b, \"wall_s_incremental\": %.6f, \
       \"wall_s_scratch\": %.6f, \"rescore_speedup\": %.4f, \
       \"incremental_eq_scratch\": %b, \"stats\": %s}\n"
      n prepop count r s k ctx.quick events_per_s moved_per_event
      !moved_bounded
      (wall_incr /. float_of_int reps)
      (wall_scratch /. float_of_int reps)
      speedup incremental_eq_scratch
      (stats_json_of (fun () -> incr_run ()))
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_churn.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* Serve protocol overhead: the same seeded stream consumed two ways —
   raw Churn.apply calls (the batch floor) and the full serve loop
   (line framing, request parse, Api.exec, one placement/v1 envelope
   written per event).  The gap is the price of the wire protocol; the
   engines must land in the same state, which pins serve ≡ batch
   beyond what the CLI byte-diff in check.sh already covers. *)

let run_serve_bench ctx fmt =
  let n = 1_000 and r = 3 and s = 2 and k = 8 in
  let prepop = if ctx.quick then 20_000 else 100_000 in
  let count = if ctx.quick then 2_000 else 10_000 in
  let mk () =
    let eng = Dsim.Churn.create ~n ~r ~s ~k () in
    for _ = 1 to prepop do
      ignore (Dsim.Churn.apply eng Dsim.Event.Object_create)
    done;
    eng
  in
  let events =
    Dsim.Event.seeded ~rng:(Combin.Rng.create 0xC4AF) ~n ~initial:prepop
      ~count ~measure_every:0 ()
  in
  let batch = mk () in
  let (), wall_batch =
    wall (fun () ->
        List.iter (fun ev -> ignore (Dsim.Churn.apply batch ev)) events)
  in
  let served = mk () in
  let script =
    String.concat "\n" (List.map Dsim.Event.to_line events) ^ "\n"
  in
  let path = Filename.temp_file "serve_bench" ".txt" in
  let outcome, wall_serve =
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc script;
        close_out oc;
        let input = Unix.openfile path [ Unix.O_RDONLY ] 0 in
        let output = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Fun.protect
          ~finally:(fun () ->
            Unix.close input;
            Unix.close output)
          (fun () ->
            let session = Dsim.Api.make served in
            wall (fun () -> Dsim.Serve.run session ~input ~output)))
  in
  let per_s w = if w > 0.0 then float_of_int count /. w else 0.0 in
  let engines_agree =
    outcome.Dsim.Serve.reason = Dsim.Serve.Eof
    && outcome.Dsim.Serve.requests = count
    && Dsim.Churn.live served = Dsim.Churn.live batch
    && Dsim.Churn.available served = Dsim.Churn.available batch
    && Dsim.Churn.lower_bound served = Dsim.Churn.lower_bound batch
    && Dsim.Churn.moved_replicas served = Dsim.Churn.moved_replicas batch
  in
  let overhead =
    if wall_batch > 0.0 then wall_serve /. wall_batch else 0.0
  in
  let peak_rss_kb =
    match Telemetry.Resource.peak_rss_kb () with Some kb -> kb | None -> 0
  in
  Format.fprintf fmt
    "serve protocol (n=%d prepop=%d events=%d): %.0f events/s over the \
     serve loop vs %.0f events/s raw applies (%.2fx protocol overhead, \
     states %s, peak RSS %d kB)@."
    n prepop count (per_s wall_serve) (per_s wall_batch) overhead
    (if engines_agree then "identical" else "DIFFER")
    peak_rss_kb;
  let json =
    Printf.sprintf
      "{\"op\": \"serve_pipe\", \"n\": %d, \"prepop\": %d, \"events\": %d, \
       \"r\": %d, \"s\": %d, \"k\": %d, \"quick\": %b, \
       \"serve_events_per_s\": %.0f, \"apply_events_per_s\": %.0f, \
       \"protocol_overhead\": %.4f, \"engines_agree\": %b, \
       \"peak_rss_kb\": %d}\n"
      n prepop count r s k ctx.quick (per_s wall_serve) (per_s wall_batch)
      overhead engines_agree peak_rss_kb
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_churn.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

(* Deterministic simulation sweep: full dst runs — scenario
   generation, the Api surface, fault injection armed, every invariant
   checked each step (replay and per-strategy checks at the pulse
   cadence) — fanned through the pool.  The row reports invariant-
   checked event throughput; check.sh gates on zero violations. *)

let run_dst_bench ctx fmt =
  let n = 64 and seeds = if ctx.quick then 3 else 6 in
  let steps = if ctx.quick then 400 else 1_500 in
  let profiles =
    List.filter_map Dst.Profile.find [ "steady"; "storm"; "membership" ]
  in
  let configs =
    Array.of_list
      (List.concat_map
         (fun profile ->
           List.init seeds (fun i ->
               {
                 Dst.Harness.n;
                 r = 3;
                 s = 2;
                 k = 4;
                 seed = 1 + i;
                 steps;
                 measure_every = steps / 4;
                 profile;
                 strategy = None;
                 inject_rate = 50;
                 break_invariants = [];
                 extra_invariants = [];
               }))
         profiles)
  in
  let outcomes, wall_s =
    wall (fun () -> Dst.Harness.sweep ?pool:ctx.pool configs)
  in
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let events = sum (fun o -> o.Dst.Harness.events) in
  let applied = sum (fun o -> o.Dst.Harness.applied) in
  let rejected = sum (fun o -> o.Dst.Harness.rejected) in
  let fired = sum (fun o -> o.Dst.Harness.injected_fired) in
  let violations =
    sum (fun o -> match o.Dst.Harness.violation with Some _ -> 1 | None -> 0)
  in
  let events_per_s =
    if wall_s > 0.0 then float_of_int events /. wall_s else 0.0
  in
  let peak_rss_kb =
    match Telemetry.Resource.peak_rss_kb () with Some kb -> kb | None -> 0
  in
  Format.fprintf fmt
    "dst sweep (%d runs: n=%d, %d steps, %d profiles, inject 1/50, -j%d): \
     %d events at %.0f invariant-checked events/s, %d rejected (%d injected \
     faults), %d violations, peak RSS %d kB@."
    (Array.length configs) n steps (List.length profiles) ctx.jobs events
    events_per_s rejected fired violations peak_rss_kb;
  let json =
    Printf.sprintf
      "{\"op\": \"dst_sweep\", \"runs\": %d, \"n\": %d, \"steps\": %d, \
       \"seeds\": %d, \"profiles\": %d, \"inject_rate\": 50, \"jobs\": %d, \
       \"quick\": %b, \"events\": %d, \"applied\": %d, \"rejected\": %d, \
       \"injected_fired\": %d, \"events_per_s\": %.0f, \"violations\": %d, \
       \"zero_violations\": %b, \"wall_s\": %.6f, \"peak_rss_kb\": %d}\n"
      (Array.length configs) n steps seeds (List.length profiles) ctx.jobs
      ctx.quick events applied rejected fired events_per_s violations
      (violations = 0) wall_s peak_rss_kb
  in
  let dir = match ctx.out with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_dst.json" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Format.fprintf fmt "(appended to %s)@." path

let run_perf ctx fmt =
  run_adversary_scaling ctx fmt;
  run_scaling ctx fmt;
  run_bb_scaling ctx fmt;
  run_kernel_bench ctx fmt;
  run_churn_bench ctx fmt;
  run_serve_bench ctx fmt;
  run_dst_bench ctx fmt;
  run_analysis_caching ctx fmt;
  run_topology_scaling ctx fmt;
  run_telemetry_overhead ctx fmt;
  if not ctx.quick then run_micro fmt

(* ------------------------------------------------------------------ *)
(* Artefact table                                                      *)

let artefacts : (string * string * (ctx -> Format.formatter -> unit)) list =
  [
    ("fig2", "Fig 2", fun ctx fmt -> Experiments.Fig2.print ?pool:ctx.pool fmt);
    ("fig3", "Fig 3", fun _ fmt -> Experiments.Fig3.print fmt);
    ("fig4", "Fig 4", fun _ fmt -> Experiments.Fig4.print fmt);
    ("fig5", "Fig 5", fun ctx fmt -> Experiments.Fig5.print_fig5 ?pool:ctx.pool fmt);
    ("fig6", "Fig 6", fun ctx fmt -> Experiments.Fig5.print_fig6 ?pool:ctx.pool fmt);
    ("fig7", "Fig 7", fun ctx fmt -> Experiments.Fig7.print ?pool:ctx.pool fmt);
    ("fig8", "Fig 8", fun _ fmt -> Experiments.Fig8.print fmt);
    ("fig9", "Fig 9", fun ctx fmt -> Experiments.Fig9.print ?pool:ctx.pool fmt);
    ("fig10", "Fig 10", fun _ fmt -> Experiments.Fig10.print fmt);
    ("fig11", "Fig 11", fun _ fmt -> Experiments.Fig11.print fmt);
    ("theorem1", "Theorem 1", fun _ fmt -> Experiments.Theorem1.print fmt);
    ( "ablation-adversary", "Ablation: adversary",
      fun _ fmt -> Experiments.Ablation.print_adversary fmt );
    ( "ablation-random", "Ablation: random placement",
      fun _ fmt -> Experiments.Ablation.print_random fmt );
    ( "ablation-load", "Ablation: load balance",
      fun _ fmt -> Experiments.Ablation.print_load fmt );
    ( "ablation-online", "Ablation: online vs offline",
      fun _ fmt -> Experiments.Ablation.print_online fmt );
    ( "baseline-copyset", "Baseline: copyset replication",
      fun _ fmt -> Experiments.Baseline.print fmt );
    ( "domain-grid", "Domain grid: node vs rack adversary",
      fun ctx fmt -> Experiments.Domain_grid.print ?pool:ctx.pool fmt );
    ("perf", "Perf (scaling + Bechamel micro-benchmarks)", run_perf);
    ( "scaling", "Adversary scaling sweep (n×b grid, CSR + sharded CELF)",
      run_scaling );
    ( "bb-scaling", "Exact adversary: sharded frontier vs branch-parallel",
      run_bb_scaling );
    ( "churn-trace", "Churn trace (continuous engine, incremental re-score)",
      run_churn_bench );
    ( "serve-pipe", "Serve protocol overhead (serve loop vs raw applies)",
      run_serve_bench );
    ( "dst-sweep", "Deterministic simulation sweep (invariant-checked runs)",
      run_dst_bench );
  ]

let run_one ctx (name, title, print) =
  (* Render once into a buffer so expensive artefacts are not recomputed
     when also writing to a file. *)
  let buf = Buffer.create 4096 in
  let bfmt = Format.formatter_of_buffer buf in
  print ctx bfmt;
  Format.pp_print_flush bfmt ();
  let text = Buffer.contents buf in
  let stdout_fmt = Format.std_formatter in
  Format.fprintf stdout_fmt "@.==== %s ====@.%s" title text;
  match ctx.out with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".txt") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc text);
      Format.fprintf stdout_fmt "(written to %s)@." path

let run_quick ctx =
  let fmt = Format.std_formatter in
  Format.fprintf fmt "@.==== Quick subset ====@.";
  Experiments.Fig4.print fmt;
  Experiments.Fig8.print fmt;
  Experiments.Fig11.print fmt;
  Experiments.Theorem1.print fmt;
  ignore ctx

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec split_flags acc out jobs quick = function
    | "--out" :: dir :: rest -> split_flags acc (Some dir) jobs quick rest
    | "--quick" :: rest -> split_flags acc out jobs true rest
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j -> split_flags acc out j quick rest
        | None ->
            Format.eprintf "-j expects an integer, got %S@." n;
            exit 2)
    | x :: rest -> split_flags (x :: acc) out jobs quick rest
    | [] -> (List.rev acc, out, jobs, quick)
  in
  let selectors, out, jobs, quick =
    split_flags [] None (Engine.Pool.default_domains ()) false args
  in
  let jobs = max 1 jobs in
  (match out with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let with_ctx f =
    if jobs = 1 then f { pool = None; jobs; out; quick }
    else
      Engine.Pool.with_pool ~domains:jobs (fun pool ->
          f { pool = Some pool; jobs; out; quick })
  in
  with_ctx (fun ctx ->
      match selectors with
      | [] | [ "all" ] -> List.iter (run_one ctx) artefacts
      | [ "quick" ] -> run_quick ctx
      | names ->
          List.iter
            (fun name ->
              match List.find_opt (fun (n, _, _) -> n = name) artefacts with
              | Some artefact -> run_one ctx artefact
              | None ->
                  Format.eprintf "unknown artefact %S@." name;
                  exit 2)
            names)
