(* Tests for the dsim simulator substrate. *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

let mk_layout () =
  let sts = Designs.Steiner_triple.make 9 in
  (Placement.Simple.of_design sts ~n:9 ~b:12).Placement.Simple.layout

(* ------------------------------------------------------------------ *)
(* Semantics *)

let test_thresholds () =
  let t sem r = Dsim.Semantics.fatality_threshold sem ~r in
  Alcotest.(check int) "read_any r=3" 3 (t Dsim.Semantics.Read_any 3);
  Alcotest.(check int) "write_all r=3" 1 (t Dsim.Semantics.Write_all 3);
  Alcotest.(check int) "majority r=3" 2 (t Dsim.Semantics.Majority 3);
  Alcotest.(check int) "majority r=4" 2 (t Dsim.Semantics.Majority 4);
  Alcotest.(check int) "majority r=5" 3 (t Dsim.Semantics.Majority 5);
  Alcotest.(check int) "threshold" 2 (t (Dsim.Semantics.Threshold 2) 3);
  (* (6,4) MDS code: survives while 4 of 6 fragments live -> s = 3. *)
  Alcotest.(check int) "erasure 6,4" 3 (t (Dsim.Semantics.Erasure 4) 6);
  Alcotest.(check int) "erasure 9,6" 4 (t (Dsim.Semantics.Erasure 6) 9);
  Alcotest.(check bool) "invalid threshold" true
    (try
       ignore (t (Dsim.Semantics.Threshold 9) 3);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cluster *)

let test_cluster_initial () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  Alcotest.(check int) "all objects available" 12 (Dsim.Cluster.available_objects c);
  Alcotest.(check int) "no failed nodes" 0 (Array.length (Dsim.Cluster.failed_nodes c));
  Alcotest.(check bool) "node 0 up" true (Dsim.Cluster.node_up c 0)

let test_cluster_incremental_matches_layout =
  qtest ~count:60 "incremental availability = Layout recount"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 8))
    (fun (seed, nfail) ->
      let layout = mk_layout () in
      let c = Dsim.Cluster.create layout Dsim.Semantics.Majority in
      let rng = Combin.Rng.create seed in
      let failed = Combin.Rng.sample_distinct rng ~n:9 ~k:nfail in
      Array.iter (Dsim.Cluster.fail_node c) failed;
      Dsim.Cluster.available_objects c
      = Placement.Layout.avail layout ~s:2 ~failed_nodes:failed
      && Dsim.Cluster.failed_nodes c = failed)

let test_cluster_fail_recover_roundtrip =
  qtest ~count:60 "fail then recover restores state"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let rng = Combin.Rng.create seed in
      let failed = Combin.Rng.sample_distinct rng ~n:9 ~k:4 in
      Array.iter (Dsim.Cluster.fail_node c) failed;
      Array.iter (Dsim.Cluster.recover_node c) failed;
      Dsim.Cluster.available_objects c = 12
      && Array.length (Dsim.Cluster.failed_nodes c) = 0)

let test_cluster_idempotent_ops () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Write_all in
  Dsim.Cluster.fail_node c 3;
  let after_one = Dsim.Cluster.available_objects c in
  Dsim.Cluster.fail_node c 3;
  Alcotest.(check int) "double fail is idempotent" after_one
    (Dsim.Cluster.available_objects c);
  Dsim.Cluster.recover_node c 3;
  Dsim.Cluster.recover_node c 3;
  Alcotest.(check int) "double recover idempotent" 12
    (Dsim.Cluster.available_objects c)

let test_cluster_racks () =
  let racks = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let c = Dsim.Cluster.create ~racks (mk_layout ()) Dsim.Semantics.Majority in
  Alcotest.(check (array int)) "rack ids" [| 0; 1; 2 |] (Dsim.Cluster.rack_ids c);
  Alcotest.(check (array int)) "rack 1 nodes" [| 3; 4; 5 |] (Dsim.Cluster.rack_nodes c 1);
  Dsim.Cluster.fail_rack c 1;
  Alcotest.(check (array int)) "failed nodes" [| 3; 4; 5 |] (Dsim.Cluster.failed_nodes c);
  Alcotest.(check int) "rack of node 7" 2 (Dsim.Cluster.rack_of c 7)

let test_live_replicas () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  let layout = Dsim.Cluster.layout c in
  let obj = 0 in
  let rep = layout.Placement.Layout.replicas.(obj) in
  Alcotest.(check int) "3 live" 3 (Dsim.Cluster.live_replicas c obj);
  Dsim.Cluster.fail_node c rep.(0);
  Alcotest.(check int) "2 live" 2 (Dsim.Cluster.live_replicas c obj);
  Alcotest.(check bool) "still available (majority)" true
    (Dsim.Cluster.object_available c obj);
  Dsim.Cluster.fail_node c rep.(1);
  Alcotest.(check bool) "now failed" false (Dsim.Cluster.object_available c obj)

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_scenario_explicit () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  let rng = Combin.Rng.create 1 in
  let nodes = Dsim.Scenario.apply ~rng c (Dsim.Scenario.Explicit [| 4; 2 |]) in
  Alcotest.(check (array int)) "sorted nodes" [| 2; 4 |] nodes;
  Alcotest.(check (array int)) "cluster agrees" [| 2; 4 |] (Dsim.Cluster.failed_nodes c)

let test_scenario_random_nodes =
  qtest ~count:40 "random scenario fails exactly k nodes"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 8))
    (fun (seed, k) ->
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let rng = Combin.Rng.create seed in
      let nodes = Dsim.Scenario.apply ~rng c (Dsim.Scenario.Random_nodes k) in
      Array.length nodes = k
      && Array.length (Dsim.Cluster.failed_nodes c) = k)

let test_scenario_adversarial_beats_random () =
  (* On average the adversary must do at least as much damage as a random
     failure of the same size. *)
  let layout = mk_layout () in
  let c = Dsim.Cluster.create layout Dsim.Semantics.Majority in
  let rng = Combin.Rng.create 9 in
  let adv = Dsim.Scenario.run ~rng c (Dsim.Scenario.Adversarial 3) in
  let total_random = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    total_random := !total_random + Dsim.Scenario.run ~rng c (Dsim.Scenario.Random_nodes 3)
  done;
  Alcotest.(check bool) "adversarial <= mean random availability" true
    (float_of_int adv <= float_of_int !total_random /. float_of_int trials +. 1e-9)

let test_scenario_racks () =
  let racks = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let c = Dsim.Cluster.create ~racks (mk_layout ()) Dsim.Semantics.Majority in
  let rng = Combin.Rng.create 2 in
  let nodes = Dsim.Scenario.apply ~rng c (Dsim.Scenario.Random_racks 2) in
  Alcotest.(check int) "6 nodes failed" 6 (Array.length nodes)

let test_scenario_apply_wellformed =
  (* Every constructor must return a sorted, duplicate-free node array
     within [0, n), agreeing with the cluster's failed set. *)
  qtest ~count:60 "apply returns a sorted distinct node set"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 4))
    (fun (seed, which) ->
      let topology = Topology.Build.regular ~racks:3 ~nodes_per_rack:3 in
      let c =
        Dsim.Cluster.create ~topology (mk_layout ()) Dsim.Semantics.Majority
      in
      let rng = Combin.Rng.create seed in
      let k = 1 + (seed mod 4) and j = 1 + (seed mod 3) in
      let scenario =
        match which with
        | 0 -> Dsim.Scenario.Adversarial k
        | 1 -> Dsim.Scenario.Random_nodes k
        | 2 -> Dsim.Scenario.Random_racks j
        | 3 -> Dsim.Scenario.Domain_failure (1, j)
        | _ -> Dsim.Scenario.Explicit [| 7; 2; 2; 5 |]
      in
      let nodes = Dsim.Scenario.apply ~rng c scenario in
      let n = Dsim.Cluster.n c in
      let sorted_distinct = ref true in
      Array.iteri
        (fun i nd ->
          if nd < 0 || nd >= n then sorted_distinct := false;
          if i > 0 && nodes.(i - 1) >= nd then sorted_distinct := false)
        nodes;
      !sorted_distinct && Dsim.Cluster.failed_nodes c = nodes)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_replay () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Write_all in
  let snaps =
    Dsim.Trace.replay c
      [
        Dsim.Trace.Measure "initial";
        Dsim.Trace.Fail 0;
        Dsim.Trace.Measure "one down";
        Dsim.Trace.Recover_all;
        Dsim.Trace.Measure "recovered";
      ]
  in
  (match snaps with
  | [ a; b; c' ] ->
      Alcotest.(check string) "label" "initial" a.Dsim.Trace.label;
      Alcotest.(check int) "all up" 12 a.Dsim.Trace.available;
      Alcotest.(check int) "one node down" 1 b.Dsim.Trace.failed_nodes;
      Alcotest.(check bool) "write-all loses objects" true
        (b.Dsim.Trace.available < 12);
      Alcotest.(check int) "recovered" 12 c'.Dsim.Trace.available
  | _ -> Alcotest.fail "expected 3 snapshots")

let test_trace_rack_attribution () =
  let racks = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let c =
    Dsim.Cluster.create ~racks (mk_layout ()) Dsim.Semantics.Write_all
  in
  let snaps =
    Dsim.Trace.replay c
      [
        Dsim.Trace.Measure "initial";
        Dsim.Trace.Fail_rack 1;
        Dsim.Trace.Measure "rack 1 down";
        Dsim.Trace.Fail_rack 99;
        (* unknown rack: historical no-op, attribution unchanged *)
        Dsim.Trace.Measure "still rack 1";
      ]
  in
  match snaps with
  | [ a; b; c' ] ->
      Alcotest.(check (option int)) "no acting domain yet" None
        a.Dsim.Trace.acting_domain;
      Alcotest.(check (option int)) "rack 1 is domain 1" (Some 1)
        b.Dsim.Trace.acting_domain;
      Alcotest.(check int) "three nodes down" 3 b.Dsim.Trace.failed_nodes;
      Alcotest.(check (option int)) "unknown rack keeps attribution" (Some 1)
        c'.Dsim.Trace.acting_domain
  | _ -> Alcotest.fail "expected 3 snapshots"

(* ------------------------------------------------------------------ *)
(* Unified events *)

let test_event_codec () =
  let evs =
    [
      Dsim.Event.Node_fail 3;
      Dsim.Event.Node_recover 3;
      Dsim.Event.Domain_fail (1, 0);
      Dsim.Event.Object_create;
      Dsim.Event.Object_delete 17;
      Dsim.Event.Measure "after outage";
    ]
  in
  let text =
    String.concat "\n" (List.map Dsim.Event.to_line evs) ^ "\n# comment\n\n"
  in
  (match Dsim.Event.parse_string text with
  | Ok parsed -> Alcotest.(check bool) "round-trip" true (parsed = evs)
  | Error (line, msg) ->
      Alcotest.failf "unexpected parse error at line %d: %s" line msg);
  match Dsim.Event.parse_string "create\nfrobnicate 3\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error (line, msg) ->
      Alcotest.(check int) "error line" 2 line;
      Alcotest.(check bool) "actionable message" true
        (String.length msg > 0 && String.index_opt msg '\n' = None)

let test_event_parse_errors () =
  let expect_error text =
    match Dsim.Event.parse_string text with
    | Ok _ -> Alcotest.failf "accepted malformed %S" text
    | Error (_, msg) ->
        Alcotest.(check bool) "one-line message" true
          (String.index_opt msg '\n' = None)
  in
  List.iter expect_error
    [ "fail"; "fail x"; "recover 1 2"; "fail-domain 1"; "delete"; "create 3" ]

let test_cluster_apply_event () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Write_all in
  Dsim.Cluster.apply_event c (Dsim.Event.Node_fail 0);
  Alcotest.(check int) "one node down" 1
    (Array.length (Dsim.Cluster.failed_nodes c));
  Dsim.Cluster.apply_event c (Dsim.Event.Node_recover 0);
  Alcotest.(check int) "recovered" 12 (Dsim.Cluster.available_objects c);
  Alcotest.(check bool) "object churn rejected" true
    (try
       Dsim.Cluster.apply_event c Dsim.Event.Object_create;
       false
     with Invalid_argument _ -> true)

let test_scenario_events_equiv =
  qtest ~count:40 "scenario events ≡ direct apply"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 5))
    (fun (seed, kf) ->
      let layout = mk_layout () in
      let c1 = Dsim.Cluster.create layout Dsim.Semantics.Majority in
      let c2 = Dsim.Cluster.create layout Dsim.Semantics.Majority in
      (* Start both from the same dirty state. *)
      Dsim.Cluster.fail_node c1 2;
      Dsim.Cluster.fail_node c2 2;
      let scen = Dsim.Scenario.Random_nodes kf in
      let nodes1 =
        Dsim.Scenario.apply ~rng:(Combin.Rng.create seed) c1 scen
      in
      let evs, nodes2 =
        Dsim.Scenario.events ~rng:(Combin.Rng.create seed) c2 scen
      in
      List.iter (Dsim.Cluster.apply_event c2) evs;
      nodes1 = nodes2
      && Dsim.Cluster.failed_nodes c1 = Dsim.Cluster.failed_nodes c2
      && Dsim.Cluster.available_objects c1
         = Dsim.Cluster.available_objects c2)

let test_event_seeded_valid () =
  (* Every seeded event must replay cleanly: deletes name live ids,
     failures hit up nodes — validity by construction. *)
  let evs =
    Dsim.Event.seeded
      ~rng:(Combin.Rng.create 11)
      ~n:9 ~count:500 ~measure_every:50 ()
  in
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:2 () in
  List.iter (fun ev -> ignore (Dsim.Churn.apply eng ev)) evs;
  Alcotest.(check bool) "applied all" true (Dsim.Churn.events eng >= 500);
  Alcotest.(check bool) "population grew" true (Dsim.Churn.live eng > 0)

(* ------------------------------------------------------------------ *)
(* Churn engine *)

let test_churn_oracle =
  qtest ~count:15 "incremental ≡ from-scratch at every step"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:3 () in
      let evs =
        Dsim.Event.seeded
          ~rng:(Combin.Rng.create seed)
          ~n:9 ~count:120 ~measure_every:0 ()
      in
      List.iter
        (fun ev ->
          let step = Dsim.Churn.apply eng ev in
          (* The oracle: Dyn hits plane, Adaptive invariants, scratch
             kernel availability, and adversary picks/stats. *)
          Dsim.Churn.check eng;
          assert (step.Dsim.Churn.moved <= 3);
          assert (step.Dsim.Churn.available <= step.Dsim.Churn.live);
          assert (
            step.Dsim.Churn.lower_bound
            <= (Dsim.Churn.rescore eng).Dsim.Churn.worst_available))
        evs;
      true)

let test_churn_bounded_movement () =
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:2 () in
  let evs =
    Dsim.Event.seeded
      ~rng:(Combin.Rng.create 5)
      ~n:9 ~count:300 ~measure_every:0 ()
  in
  let max_moved = ref 0 in
  List.iter
    (fun ev ->
      let step = Dsim.Churn.apply eng ev in
      if step.Dsim.Churn.moved > !max_moved then
        max_moved := step.Dsim.Churn.moved)
    evs;
  Alcotest.(check bool) "moved <= r per event" true (!max_moved <= 3);
  Alcotest.(check bool) "creates move exactly r" true (!max_moved = 3)

let test_churn_delete_unknown () =
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:2 () in
  ignore (Dsim.Churn.apply eng Dsim.Event.Object_create);
  Alcotest.(check bool) "unknown delete rejected" true
    (try
       ignore (Dsim.Churn.apply eng (Dsim.Event.Object_delete 42));
       false
     with Invalid_argument _ -> true);
  ignore (Dsim.Churn.apply eng (Dsim.Event.Object_delete 0));
  Alcotest.(check int) "empty again" 0 (Dsim.Churn.live eng)

let test_churn_dead_on_arrival () =
  (* An object created while >= s of its replica nodes are down must be
     born unavailable — the hit counter is seeded from the failure set. *)
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:1 ~k:1 () in
  for nd = 0 to 8 do
    ignore (Dsim.Churn.apply eng (Dsim.Event.Node_fail nd))
  done;
  ignore (Dsim.Churn.apply eng Dsim.Event.Object_create);
  Alcotest.(check int) "born dead" 0 (Dsim.Churn.available eng);
  Dsim.Churn.check eng

(* ------------------------------------------------------------------ *)
(* Repair (failure/repair timeline) *)

let repair_config =
  { Dsim.Repair.failure_rate = 0.02; mean_repair = 4.0; horizon = 500.0 }

let test_repair_restores_cluster () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  let _ = Dsim.Repair.run ~rng:(Combin.Rng.create 3) c repair_config in
  Alcotest.(check int) "cluster recovered after run" 12
    (Dsim.Cluster.available_objects c);
  Alcotest.(check int) "no failed nodes" 0
    (Array.length (Dsim.Cluster.failed_nodes c))

let test_repair_stats_consistent =
  qtest ~count:20 "stats are internally consistent"
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let s = Dsim.Repair.run ~rng:(Combin.Rng.create seed) c repair_config in
      s.Dsim.Repair.avg_unavailable >= 0.0
      && s.Dsim.Repair.avg_unavailable <= 12.0
      && s.Dsim.Repair.worst_unavailable >= 0
      && s.Dsim.Repair.worst_unavailable <= 12
      && s.Dsim.Repair.worst_nodes_down <= 9
      && s.Dsim.Repair.object_downtime_fraction >= 0.0
      && s.Dsim.Repair.object_downtime_fraction <= 1.0
      && (s.Dsim.Repair.incidents = 0) = (s.Dsim.Repair.worst_unavailable = 0)
      && abs_float
           (s.Dsim.Repair.avg_unavailable
           -. (s.Dsim.Repair.object_downtime_fraction *. 12.0))
         < 1e-9)

let test_repair_deterministic () =
  let run seed =
    let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
    Dsim.Repair.run ~rng:(Combin.Rng.create seed) c repair_config
  in
  Alcotest.(check (float 0.0)) "same seed, same result"
    (run 11).Dsim.Repair.avg_unavailable
    (run 11).Dsim.Repair.avg_unavailable

let test_repair_more_failures_more_downtime () =
  (* Doubling the failure rate (same repair speed) cannot reduce the
     average unavailability on the same seed-averaged runs. *)
  let avg rate =
    let total = ref 0.0 in
    for seed = 0 to 9 do
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let s =
        Dsim.Repair.run ~rng:(Combin.Rng.create seed) c
          { repair_config with Dsim.Repair.failure_rate = rate }
      in
      total := !total +. s.Dsim.Repair.avg_unavailable
    done;
    !total /. 10.0
  in
  Alcotest.(check bool) "monotone in failure rate" true (avg 0.04 > avg 0.005)

let test_repair_nines () =
  let s =
    {
      Dsim.Repair.horizon = 1.0;
      avg_unavailable = 0.0;
      worst_unavailable = 0;
      worst_nodes_down = 0;
      incidents = 0;
      object_downtime_fraction = 0.001;
    }
  in
  Alcotest.(check (float 1e-9)) "3 nines" 3.0 (Dsim.Repair.nines s);
  Alcotest.(check bool) "no downtime = infinite nines" true
    (Dsim.Repair.nines { s with Dsim.Repair.object_downtime_fraction = 0.0 }
    = infinity)

let test_repair_bad_config () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  Alcotest.(check bool) "negative rate rejected" true
    (try
       ignore
         (Dsim.Repair.run ~rng:(Combin.Rng.create 0) c
            { repair_config with Dsim.Repair.failure_rate = -1.0 });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Montecarlo *)

let test_montecarlo_deterministic () =
  let p = Placement.Params.make ~b:40 ~r:3 ~s:2 ~n:12 ~k:3 in
  let run seed =
    Dsim.Montecarlo.avg_avail_random ~rng:(Combin.Rng.create seed) ~trials:5 p
  in
  let a = run 11 and b = run 11 in
  Alcotest.(check (float 0.0)) "same seed same mean" a.Dsim.Montecarlo.mean
    b.Dsim.Montecarlo.mean;
  Alcotest.(check int) "trials recorded" 5 a.Dsim.Montecarlo.trials;
  Alcotest.(check bool) "min <= mean <= max" true
    (float_of_int a.Dsim.Montecarlo.min <= a.Dsim.Montecarlo.mean
    && a.Dsim.Montecarlo.mean <= float_of_int a.Dsim.Montecarlo.max)

let test_montecarlo_bounded_by_b () =
  let p = Placement.Params.make ~b:40 ~r:3 ~s:2 ~n:12 ~k:3 in
  let r =
    Dsim.Montecarlo.avg_avail_random ~rng:(Combin.Rng.create 4) ~trials:8 p
  in
  Array.iter
    (fun a -> Alcotest.(check bool) "in [0,b]" true (a >= 0 && a <= 40))
    r.Dsim.Montecarlo.avails

let () =
  Alcotest.run "dsim"
    [
      ("semantics", [ Alcotest.test_case "thresholds" `Quick test_thresholds ]);
      ( "cluster",
        [
          Alcotest.test_case "initial state" `Quick test_cluster_initial;
          test_cluster_incremental_matches_layout;
          test_cluster_fail_recover_roundtrip;
          Alcotest.test_case "idempotent ops" `Quick test_cluster_idempotent_ops;
          Alcotest.test_case "racks" `Quick test_cluster_racks;
          Alcotest.test_case "live replicas" `Quick test_live_replicas;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "explicit" `Quick test_scenario_explicit;
          test_scenario_random_nodes;
          Alcotest.test_case "adversarial beats random" `Quick
            test_scenario_adversarial_beats_random;
          Alcotest.test_case "racks" `Quick test_scenario_racks;
          test_scenario_apply_wellformed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "replay" `Quick test_trace_replay;
          Alcotest.test_case "rack attribution" `Quick
            test_trace_rack_attribution;
        ] );
      ( "event",
        [
          Alcotest.test_case "codec" `Quick test_event_codec;
          Alcotest.test_case "parse errors" `Quick test_event_parse_errors;
          Alcotest.test_case "cluster apply_event" `Quick
            test_cluster_apply_event;
          test_scenario_events_equiv;
          Alcotest.test_case "seeded stream valid" `Quick
            test_event_seeded_valid;
        ] );
      ( "churn",
        [
          test_churn_oracle;
          Alcotest.test_case "bounded movement" `Quick
            test_churn_bounded_movement;
          Alcotest.test_case "unknown delete" `Quick test_churn_delete_unknown;
          Alcotest.test_case "dead on arrival" `Quick
            test_churn_dead_on_arrival;
        ] );
      ( "repair",
        [
          Alcotest.test_case "restores cluster" `Quick test_repair_restores_cluster;
          test_repair_stats_consistent;
          Alcotest.test_case "deterministic" `Quick test_repair_deterministic;
          Alcotest.test_case "monotone in failure rate" `Quick
            test_repair_more_failures_more_downtime;
          Alcotest.test_case "nines" `Quick test_repair_nines;
          Alcotest.test_case "bad config" `Quick test_repair_bad_config;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "deterministic" `Quick test_montecarlo_deterministic;
          Alcotest.test_case "bounded" `Quick test_montecarlo_bounded_by_b;
        ] );
    ]
