(* Tests for the dsim simulator substrate. *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

let mk_layout () =
  let sts = Designs.Steiner_triple.make 9 in
  (Placement.Simple.of_design sts ~n:9 ~b:12).Placement.Simple.layout

(* ------------------------------------------------------------------ *)
(* Semantics *)

let test_thresholds () =
  let t sem r = Dsim.Semantics.fatality_threshold sem ~r in
  Alcotest.(check int) "read_any r=3" 3 (t Dsim.Semantics.Read_any 3);
  Alcotest.(check int) "write_all r=3" 1 (t Dsim.Semantics.Write_all 3);
  Alcotest.(check int) "majority r=3" 2 (t Dsim.Semantics.Majority 3);
  Alcotest.(check int) "majority r=4" 2 (t Dsim.Semantics.Majority 4);
  Alcotest.(check int) "majority r=5" 3 (t Dsim.Semantics.Majority 5);
  Alcotest.(check int) "threshold" 2 (t (Dsim.Semantics.Threshold 2) 3);
  (* (6,4) MDS code: survives while 4 of 6 fragments live -> s = 3. *)
  Alcotest.(check int) "erasure 6,4" 3 (t (Dsim.Semantics.Erasure 4) 6);
  Alcotest.(check int) "erasure 9,6" 4 (t (Dsim.Semantics.Erasure 6) 9);
  Alcotest.(check bool) "invalid threshold" true
    (try
       ignore (t (Dsim.Semantics.Threshold 9) 3);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cluster *)

let test_cluster_initial () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  Alcotest.(check int) "all objects available" 12 (Dsim.Cluster.available_objects c);
  Alcotest.(check int) "no failed nodes" 0 (Array.length (Dsim.Cluster.failed_nodes c));
  Alcotest.(check bool) "node 0 up" true (Dsim.Cluster.node_up c 0)

let test_cluster_incremental_matches_layout =
  qtest ~count:60 "incremental availability = Layout recount"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 8))
    (fun (seed, nfail) ->
      let layout = mk_layout () in
      let c = Dsim.Cluster.create layout Dsim.Semantics.Majority in
      let rng = Combin.Rng.create seed in
      let failed = Combin.Rng.sample_distinct rng ~n:9 ~k:nfail in
      Array.iter (Dsim.Cluster.fail_node c) failed;
      Dsim.Cluster.available_objects c
      = Placement.Layout.avail layout ~s:2 ~failed_nodes:failed
      && Dsim.Cluster.failed_nodes c = failed)

let test_cluster_fail_recover_roundtrip =
  qtest ~count:60 "fail then recover restores state"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let rng = Combin.Rng.create seed in
      let failed = Combin.Rng.sample_distinct rng ~n:9 ~k:4 in
      Array.iter (Dsim.Cluster.fail_node c) failed;
      Array.iter (Dsim.Cluster.recover_node c) failed;
      Dsim.Cluster.available_objects c = 12
      && Array.length (Dsim.Cluster.failed_nodes c) = 0)

let test_cluster_idempotent_ops () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Write_all in
  Dsim.Cluster.fail_node c 3;
  let after_one = Dsim.Cluster.available_objects c in
  Dsim.Cluster.fail_node c 3;
  Alcotest.(check int) "double fail is idempotent" after_one
    (Dsim.Cluster.available_objects c);
  Dsim.Cluster.recover_node c 3;
  Dsim.Cluster.recover_node c 3;
  Alcotest.(check int) "double recover idempotent" 12
    (Dsim.Cluster.available_objects c)

let test_cluster_racks () =
  let racks = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let c = Dsim.Cluster.create ~racks (mk_layout ()) Dsim.Semantics.Majority in
  Alcotest.(check (array int)) "rack ids" [| 0; 1; 2 |] (Dsim.Cluster.rack_ids c);
  Alcotest.(check (array int)) "rack 1 nodes" [| 3; 4; 5 |] (Dsim.Cluster.rack_nodes c 1);
  Dsim.Cluster.fail_rack c 1;
  Alcotest.(check (array int)) "failed nodes" [| 3; 4; 5 |] (Dsim.Cluster.failed_nodes c);
  Alcotest.(check int) "rack of node 7" 2 (Dsim.Cluster.rack_of c 7)

let test_live_replicas () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  let layout = Dsim.Cluster.layout c in
  let obj = 0 in
  let rep = layout.Placement.Layout.replicas.(obj) in
  Alcotest.(check int) "3 live" 3 (Dsim.Cluster.live_replicas c obj);
  Dsim.Cluster.fail_node c rep.(0);
  Alcotest.(check int) "2 live" 2 (Dsim.Cluster.live_replicas c obj);
  Alcotest.(check bool) "still available (majority)" true
    (Dsim.Cluster.object_available c obj);
  Dsim.Cluster.fail_node c rep.(1);
  Alcotest.(check bool) "now failed" false (Dsim.Cluster.object_available c obj)

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_scenario_explicit () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  let rng = Combin.Rng.create 1 in
  let nodes = Dsim.Scenario.apply ~rng c (Dsim.Scenario.Explicit [| 4; 2 |]) in
  Alcotest.(check (array int)) "sorted nodes" [| 2; 4 |] nodes;
  Alcotest.(check (array int)) "cluster agrees" [| 2; 4 |] (Dsim.Cluster.failed_nodes c)

let test_scenario_random_nodes =
  qtest ~count:40 "random scenario fails exactly k nodes"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 8))
    (fun (seed, k) ->
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let rng = Combin.Rng.create seed in
      let nodes = Dsim.Scenario.apply ~rng c (Dsim.Scenario.Random_nodes k) in
      Array.length nodes = k
      && Array.length (Dsim.Cluster.failed_nodes c) = k)

let test_scenario_adversarial_beats_random () =
  (* On average the adversary must do at least as much damage as a random
     failure of the same size. *)
  let layout = mk_layout () in
  let c = Dsim.Cluster.create layout Dsim.Semantics.Majority in
  let rng = Combin.Rng.create 9 in
  let adv = Dsim.Scenario.run ~rng c (Dsim.Scenario.Adversarial 3) in
  let total_random = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    total_random := !total_random + Dsim.Scenario.run ~rng c (Dsim.Scenario.Random_nodes 3)
  done;
  Alcotest.(check bool) "adversarial <= mean random availability" true
    (float_of_int adv <= float_of_int !total_random /. float_of_int trials +. 1e-9)

let test_scenario_racks () =
  let racks = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let c = Dsim.Cluster.create ~racks (mk_layout ()) Dsim.Semantics.Majority in
  let rng = Combin.Rng.create 2 in
  let nodes = Dsim.Scenario.apply ~rng c (Dsim.Scenario.Random_racks 2) in
  Alcotest.(check int) "6 nodes failed" 6 (Array.length nodes)

let test_scenario_apply_wellformed =
  (* Every constructor must return a sorted, duplicate-free node array
     within [0, n), agreeing with the cluster's failed set. *)
  qtest ~count:60 "apply returns a sorted distinct node set"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 4))
    (fun (seed, which) ->
      let topology = Topology.Build.regular ~racks:3 ~nodes_per_rack:3 in
      let c =
        Dsim.Cluster.create ~topology (mk_layout ()) Dsim.Semantics.Majority
      in
      let rng = Combin.Rng.create seed in
      let k = 1 + (seed mod 4) and j = 1 + (seed mod 3) in
      let scenario =
        match which with
        | 0 -> Dsim.Scenario.Adversarial k
        | 1 -> Dsim.Scenario.Random_nodes k
        | 2 -> Dsim.Scenario.Random_racks j
        | 3 -> Dsim.Scenario.Domain_failure (1, j)
        | _ -> Dsim.Scenario.Explicit [| 7; 2; 2; 5 |]
      in
      let nodes = Dsim.Scenario.apply ~rng c scenario in
      let n = Dsim.Cluster.n c in
      let sorted_distinct = ref true in
      Array.iteri
        (fun i nd ->
          if nd < 0 || nd >= n then sorted_distinct := false;
          if i > 0 && nodes.(i - 1) >= nd then sorted_distinct := false)
        nodes;
      !sorted_distinct && Dsim.Cluster.failed_nodes c = nodes)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_replay () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Write_all in
  let snaps =
    Dsim.Trace.replay c
      [
        Dsim.Trace.Measure "initial";
        Dsim.Trace.Fail 0;
        Dsim.Trace.Measure "one down";
        Dsim.Trace.Recover_all;
        Dsim.Trace.Measure "recovered";
      ]
  in
  (match snaps with
  | [ a; b; c' ] ->
      Alcotest.(check string) "label" "initial" a.Dsim.Trace.label;
      Alcotest.(check int) "all up" 12 a.Dsim.Trace.available;
      Alcotest.(check int) "one node down" 1 b.Dsim.Trace.failed_nodes;
      Alcotest.(check bool) "write-all loses objects" true
        (b.Dsim.Trace.available < 12);
      Alcotest.(check int) "recovered" 12 c'.Dsim.Trace.available
  | _ -> Alcotest.fail "expected 3 snapshots")

let test_trace_rack_attribution () =
  let racks = [| 0; 0; 0; 1; 1; 1; 2; 2; 2 |] in
  let c =
    Dsim.Cluster.create ~racks (mk_layout ()) Dsim.Semantics.Write_all
  in
  let snaps =
    Dsim.Trace.replay c
      [
        Dsim.Trace.Measure "initial";
        Dsim.Trace.Fail_rack 1;
        Dsim.Trace.Measure "rack 1 down";
        Dsim.Trace.Fail_rack 99;
        (* unknown rack: historical no-op, attribution unchanged *)
        Dsim.Trace.Measure "still rack 1";
      ]
  in
  match snaps with
  | [ a; b; c' ] ->
      Alcotest.(check (option int)) "no acting domain yet" None
        a.Dsim.Trace.acting_domain;
      Alcotest.(check (option int)) "rack 1 is domain 1" (Some 1)
        b.Dsim.Trace.acting_domain;
      Alcotest.(check int) "three nodes down" 3 b.Dsim.Trace.failed_nodes;
      Alcotest.(check (option int)) "unknown rack keeps attribution" (Some 1)
        c'.Dsim.Trace.acting_domain
  | _ -> Alcotest.fail "expected 3 snapshots"

(* ------------------------------------------------------------------ *)
(* Unified events *)

let test_event_codec () =
  let evs =
    [
      Dsim.Event.Node_fail 3;
      Dsim.Event.Node_recover 3;
      Dsim.Event.Domain_fail (1, 0);
      Dsim.Event.Object_create;
      Dsim.Event.Object_delete 17;
      Dsim.Event.Measure "after outage";
    ]
  in
  let text =
    String.concat "\n" (List.map Dsim.Event.to_line evs) ^ "\n# comment\n\n"
  in
  (match Dsim.Event.parse_string text with
  | Ok parsed -> Alcotest.(check bool) "round-trip" true (parsed = evs)
  | Error (line, msg) ->
      Alcotest.failf "unexpected parse error at line %d: %s" line msg);
  match Dsim.Event.parse_string "create\nfrobnicate 3\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error (line, msg) ->
      Alcotest.(check int) "error line" 2 line;
      Alcotest.(check bool) "actionable message" true
        (String.length msg > 0 && String.index_opt msg '\n' = None)

let test_event_parse_errors () =
  let expect_error text =
    match Dsim.Event.parse_string text with
    | Ok _ -> Alcotest.failf "accepted malformed %S" text
    | Error (_, msg) ->
        Alcotest.(check bool) "one-line message" true
          (String.index_opt msg '\n' = None)
  in
  List.iter expect_error
    [
      "fail"; "fail x"; "recover 1 2"; "fail-domain 1"; "delete"; "create 3";
      "join"; "join a b"; "leave"; "leave 1 2";
    ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_event_error_messages () =
  (* Per-verb arity errors name the verb and show an example; the
     unknown-verb error enumerates the whole vocabulary. *)
  let error_of text =
    match Dsim.Event.parse_string text with
    | Ok _ -> Alcotest.failf "accepted malformed %S" text
    | Error (line, msg) ->
        Alcotest.(check int) "error on its own line" 1 line;
        msg
  in
  List.iter
    (fun (text, verb) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S names its verb" text)
        true
        (contains ~sub:verb (error_of text)))
    [
      ("fail 1 2", "fail"); ("recover", "recover"); ("join x", "join");
      ("leave", "leave"); ("delete 1 2", "delete"); ("create 3", "create");
      ("fail-domain 1", "fail-domain");
    ];
  let unknown = error_of "frobnicate 3" in
  List.iter
    (fun verb ->
      Alcotest.(check bool)
        (Printf.sprintf "unknown-verb error lists %s" verb)
        true (contains ~sub:verb unknown))
    Dsim.Event.verbs;
  (* Blank lines and comments never error, whatever surrounds them. *)
  match Dsim.Event.parse_string "# a comment\n\n   \ncreate\n" with
  | Ok [ Dsim.Event.Object_create ] -> ()
  | Ok _ -> Alcotest.fail "comment/blank handling changed the events"
  | Error (line, msg) -> Alcotest.failf "rejected comment: %d: %s" line msg

let test_event_format_error () =
  Alcotest.(check string)
    "FILE:LINE: MSG" "events.txt:7: boom"
    (Dsim.Event.format_error ~file:"events.txt" (7, "boom"))

let test_cluster_apply_event () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Write_all in
  Dsim.Cluster.apply_event c (Dsim.Event.Node_fail 0);
  Alcotest.(check int) "one node down" 1
    (Array.length (Dsim.Cluster.failed_nodes c));
  Dsim.Cluster.apply_event c (Dsim.Event.Node_recover 0);
  Alcotest.(check int) "recovered" 12 (Dsim.Cluster.available_objects c);
  Alcotest.(check bool) "object churn rejected" true
    (try
       Dsim.Cluster.apply_event c Dsim.Event.Object_create;
       false
     with Invalid_argument _ -> true)

let test_scenario_events_equiv =
  qtest ~count:40 "scenario events ≡ direct apply"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 5))
    (fun (seed, kf) ->
      let layout = mk_layout () in
      let c1 = Dsim.Cluster.create layout Dsim.Semantics.Majority in
      let c2 = Dsim.Cluster.create layout Dsim.Semantics.Majority in
      (* Start both from the same dirty state. *)
      Dsim.Cluster.fail_node c1 2;
      Dsim.Cluster.fail_node c2 2;
      let scen = Dsim.Scenario.Random_nodes kf in
      let nodes1 =
        Dsim.Scenario.apply ~rng:(Combin.Rng.create seed) c1 scen
      in
      let evs, nodes2 =
        Dsim.Scenario.events ~rng:(Combin.Rng.create seed) c2 scen
      in
      List.iter (Dsim.Cluster.apply_event c2) evs;
      nodes1 = nodes2
      && Dsim.Cluster.failed_nodes c1 = Dsim.Cluster.failed_nodes c2
      && Dsim.Cluster.available_objects c1
         = Dsim.Cluster.available_objects c2)

let test_event_seeded_valid () =
  (* Every seeded event must replay cleanly: deletes name live ids,
     failures hit up nodes — validity by construction. *)
  let evs =
    Dsim.Event.seeded
      ~rng:(Combin.Rng.create 11)
      ~n:9 ~count:500 ~measure_every:50 ()
  in
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:2 () in
  List.iter (fun ev -> ignore (Dsim.Churn.apply eng ev)) evs;
  Alcotest.(check bool) "applied all" true (Dsim.Churn.events eng >= 500);
  Alcotest.(check bool) "population grew" true (Dsim.Churn.live eng > 0)

let test_event_seeded_weights_zero_identical () =
  (* join/leave weights default to 0 and weight 0 must not perturb the
     rng draws: historical streams stay byte-identical. *)
  let gen ?jw ?lw () =
    Dsim.Event.seeded
      ~rng:(Combin.Rng.create 11)
      ~n:9 ?join_weight:jw ?leave_weight:lw ~count:400 ~measure_every:50 ()
  in
  Alcotest.(check bool) "explicit 0 weights = defaults" true
    (gen () = gen ~jw:0 ~lw:0 ())

let test_event_seeded_membership_valid () =
  (* With non-zero weights the stream contains joins and leaves and
     still replays cleanly — leaves never target a node holding the
     last capacity, joins only re-admit nodes that left. *)
  let evs =
    Dsim.Event.seeded
      ~rng:(Combin.Rng.create 3)
      ~n:12 ~join_weight:15 ~leave_weight:15 ~count:800 ~measure_every:0 ()
  in
  let joins =
    List.length
      (List.filter (function Dsim.Event.Node_join _ -> true | _ -> false) evs)
  and leaves =
    List.length
      (List.filter
         (function Dsim.Event.Node_leave _ -> true | _ -> false)
         evs)
  in
  Alcotest.(check bool) "stream has joins" true (joins > 0);
  Alcotest.(check bool) "stream has leaves" true (leaves > 0);
  let eng = Dsim.Churn.create ~n:12 ~r:3 ~s:2 ~k:2 () in
  List.iter (fun ev -> ignore (Dsim.Churn.apply eng ev)) evs;
  Dsim.Churn.check eng

(* ------------------------------------------------------------------ *)
(* Churn engine *)

let test_churn_oracle =
  qtest ~count:15 "incremental ≡ from-scratch at every step"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:3 () in
      let evs =
        Dsim.Event.seeded
          ~rng:(Combin.Rng.create seed)
          ~n:9 ~count:120 ~measure_every:0 ()
      in
      List.iter
        (fun ev ->
          let step = Dsim.Churn.apply eng ev in
          (* The oracle: Dyn hits plane, Adaptive invariants, scratch
             kernel availability, and adversary picks/stats. *)
          Dsim.Churn.check eng;
          assert (step.Dsim.Churn.moved <= 3);
          assert (step.Dsim.Churn.available <= step.Dsim.Churn.live);
          assert (
            step.Dsim.Churn.lower_bound
            <= (Dsim.Churn.rescore eng).Dsim.Churn.worst_available))
        evs;
      true)

let test_churn_bounded_movement () =
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:2 () in
  let evs =
    Dsim.Event.seeded
      ~rng:(Combin.Rng.create 5)
      ~n:9 ~count:300 ~measure_every:0 ()
  in
  let max_moved = ref 0 in
  List.iter
    (fun ev ->
      let step = Dsim.Churn.apply eng ev in
      if step.Dsim.Churn.moved > !max_moved then
        max_moved := step.Dsim.Churn.moved)
    evs;
  Alcotest.(check bool) "moved <= r per event" true (!max_moved <= 3);
  Alcotest.(check bool) "creates move exactly r" true (!max_moved = 3)

let test_churn_membership_oracle =
  qtest ~count:12 "join/leave keeps the oracle and movement bound"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let r = 3 in
      let eng = Dsim.Churn.create ~n:12 ~r ~s:2 ~k:3 () in
      let evs =
        Dsim.Event.seeded
          ~rng:(Combin.Rng.create seed)
          ~n:12 ~join_weight:20 ~leave_weight:20 ~count:150 ~measure_every:0
          ()
      in
      List.iter
        (fun ev ->
          (* The movement bound is stated against the pre-event load:
             a leave relocates at most the departing node's replicas,
             each re-placed across r nodes. *)
          let budget =
            match ev with
            | Dsim.Event.Object_create -> r
            | Dsim.Event.Node_leave nd -> r * Dsim.Churn.node_load eng nd
            | _ -> 0
          in
          let step = Dsim.Churn.apply eng ev in
          assert (step.Dsim.Churn.moved <= budget);
          (match ev with
          | Dsim.Event.Node_leave nd ->
              assert (not (Dsim.Churn.node_in_service eng nd));
              assert (Dsim.Churn.node_load eng nd = 0)
          | Dsim.Event.Node_join nd ->
              assert (Dsim.Churn.node_in_service eng nd)
          | _ -> ());
          (* Full oracle: Dyn hit plane ≡ scratch kernel, Adaptive
             invariants, in_service ≡ not-retired. *)
          Dsim.Churn.check eng)
        evs;
      true)

let test_churn_membership_guards () =
  let eng = Dsim.Churn.create ~n:6 ~r:2 ~s:1 ~k:1 () in
  let rejected ev =
    try
      ignore (Dsim.Churn.apply eng ev);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "join of an in-service node rejected" true
    (rejected (Dsim.Event.Node_join 0));
  ignore (Dsim.Churn.apply eng (Dsim.Event.Node_leave 0));
  Alcotest.(check bool) "double leave rejected" true
    (rejected (Dsim.Event.Node_leave 0));
  Alcotest.(check bool) "failing a departed node rejected" true
    (rejected (Dsim.Event.Node_fail 0));
  Alcotest.(check bool) "recovering a departed node rejected" true
    (rejected (Dsim.Event.Node_recover 0));
  ignore (Dsim.Churn.apply eng (Dsim.Event.Node_join 0));
  Alcotest.(check bool) "re-admitted" true (Dsim.Churn.node_in_service eng 0);
  Dsim.Churn.check eng

let test_churn_leave_relocates () =
  (* A populated node's departure re-homes every object it held; the
     objects stay live and available. *)
  let eng = Dsim.Churn.create ~n:8 ~r:3 ~s:2 ~k:2 () in
  for _ = 1 to 20 do
    ignore (Dsim.Churn.apply eng Dsim.Event.Object_create)
  done;
  let victim =
    (* Pick the most loaded node so the relocation is non-trivial. *)
    let best = ref 0 in
    for nd = 1 to 7 do
      if Dsim.Churn.node_load eng nd > Dsim.Churn.node_load eng !best then
        best := nd
    done;
    !best
  in
  let load = Dsim.Churn.node_load eng victim in
  Alcotest.(check bool) "victim is loaded" true (load > 0);
  let step = Dsim.Churn.apply eng (Dsim.Event.Node_leave victim) in
  Alcotest.(check bool) "something moved" true (step.Dsim.Churn.moved > 0);
  Alcotest.(check bool) "movement bounded" true
    (step.Dsim.Churn.moved <= 3 * load);
  Alcotest.(check int) "no object lost" 20 (Dsim.Churn.live eng);
  Alcotest.(check int) "all available" 20 (Dsim.Churn.available eng);
  Dsim.Churn.check eng

let test_churn_delete_unknown () =
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:2 ~k:2 () in
  ignore (Dsim.Churn.apply eng Dsim.Event.Object_create);
  Alcotest.(check bool) "unknown delete rejected" true
    (try
       ignore (Dsim.Churn.apply eng (Dsim.Event.Object_delete 42));
       false
     with Invalid_argument _ -> true);
  ignore (Dsim.Churn.apply eng (Dsim.Event.Object_delete 0));
  Alcotest.(check int) "empty again" 0 (Dsim.Churn.live eng)

let test_churn_dead_on_arrival () =
  (* An object created while >= s of its replica nodes are down must be
     born unavailable — the hit counter is seeded from the failure set. *)
  let eng = Dsim.Churn.create ~n:9 ~r:3 ~s:1 ~k:1 () in
  for nd = 0 to 8 do
    ignore (Dsim.Churn.apply eng (Dsim.Event.Node_fail nd))
  done;
  ignore (Dsim.Churn.apply eng Dsim.Event.Object_create);
  Alcotest.(check int) "born dead" 0 (Dsim.Churn.available eng);
  Dsim.Churn.check eng

(* ------------------------------------------------------------------ *)
(* Repair (failure/repair timeline) *)

let repair_config =
  { Dsim.Repair.failure_rate = 0.02; mean_repair = 4.0; horizon = 500.0 }

let test_repair_restores_cluster () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  let _ = Dsim.Repair.run ~rng:(Combin.Rng.create 3) c repair_config in
  Alcotest.(check int) "cluster recovered after run" 12
    (Dsim.Cluster.available_objects c);
  Alcotest.(check int) "no failed nodes" 0
    (Array.length (Dsim.Cluster.failed_nodes c))

let test_repair_stats_consistent =
  qtest ~count:20 "stats are internally consistent"
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let s = Dsim.Repair.run ~rng:(Combin.Rng.create seed) c repair_config in
      s.Dsim.Repair.avg_unavailable >= 0.0
      && s.Dsim.Repair.avg_unavailable <= 12.0
      && s.Dsim.Repair.worst_unavailable >= 0
      && s.Dsim.Repair.worst_unavailable <= 12
      && s.Dsim.Repair.worst_nodes_down <= 9
      && s.Dsim.Repair.object_downtime_fraction >= 0.0
      && s.Dsim.Repair.object_downtime_fraction <= 1.0
      && (s.Dsim.Repair.incidents = 0) = (s.Dsim.Repair.worst_unavailable = 0)
      && abs_float
           (s.Dsim.Repair.avg_unavailable
           -. (s.Dsim.Repair.object_downtime_fraction *. 12.0))
         < 1e-9)

let test_repair_deterministic () =
  let run seed =
    let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
    Dsim.Repair.run ~rng:(Combin.Rng.create seed) c repair_config
  in
  Alcotest.(check (float 0.0)) "same seed, same result"
    (run 11).Dsim.Repair.avg_unavailable
    (run 11).Dsim.Repair.avg_unavailable

let test_repair_more_failures_more_downtime () =
  (* Doubling the failure rate (same repair speed) cannot reduce the
     average unavailability on the same seed-averaged runs. *)
  let avg rate =
    let total = ref 0.0 in
    for seed = 0 to 9 do
      let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
      let s =
        Dsim.Repair.run ~rng:(Combin.Rng.create seed) c
          { repair_config with Dsim.Repair.failure_rate = rate }
      in
      total := !total +. s.Dsim.Repair.avg_unavailable
    done;
    !total /. 10.0
  in
  Alcotest.(check bool) "monotone in failure rate" true (avg 0.04 > avg 0.005)

let test_repair_nines () =
  let s =
    {
      Dsim.Repair.horizon = 1.0;
      avg_unavailable = 0.0;
      worst_unavailable = 0;
      worst_nodes_down = 0;
      incidents = 0;
      object_downtime_fraction = 0.001;
    }
  in
  Alcotest.(check (float 1e-9)) "3 nines" 3.0 (Dsim.Repair.nines s);
  Alcotest.(check bool) "no downtime = infinite nines" true
    (Dsim.Repair.nines { s with Dsim.Repair.object_downtime_fraction = 0.0 }
    = infinity)

let test_repair_bad_config () =
  let c = Dsim.Cluster.create (mk_layout ()) Dsim.Semantics.Majority in
  Alcotest.(check bool) "negative rate rejected" true
    (try
       ignore
         (Dsim.Repair.run ~rng:(Combin.Rng.create 0) c
            { repair_config with Dsim.Repair.failure_rate = -1.0 });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Montecarlo *)

let test_montecarlo_deterministic () =
  let p = Placement.Params.make ~b:40 ~r:3 ~s:2 ~n:12 ~k:3 in
  let run seed =
    Dsim.Montecarlo.avg_avail_random ~rng:(Combin.Rng.create seed) ~trials:5 p
  in
  let a = run 11 and b = run 11 in
  Alcotest.(check (float 0.0)) "same seed same mean" a.Dsim.Montecarlo.mean
    b.Dsim.Montecarlo.mean;
  Alcotest.(check int) "trials recorded" 5 a.Dsim.Montecarlo.trials;
  Alcotest.(check bool) "min <= mean <= max" true
    (float_of_int a.Dsim.Montecarlo.min <= a.Dsim.Montecarlo.mean
    && a.Dsim.Montecarlo.mean <= float_of_int a.Dsim.Montecarlo.max)

let test_montecarlo_bounded_by_b () =
  let p = Placement.Params.make ~b:40 ~r:3 ~s:2 ~n:12 ~k:3 in
  let r =
    Dsim.Montecarlo.avg_avail_random ~rng:(Combin.Rng.create 4) ~trials:8 p
  in
  Array.iter
    (fun a -> Alcotest.(check bool) "in [0,b]" true (a >= 0 && a <= 40))
    r.Dsim.Montecarlo.avails

(* ------------------------------------------------------------------ *)
(* Api: the request/response surface shared by churn --responses and
   serve. *)

let mk_session () = Dsim.Api.make (Dsim.Churn.create ~n:8 ~r:3 ~s:2 ~k:2 ())

let test_api_parse_request () =
  let ok line =
    match Dsim.Api.parse_request line with
    | Ok (Some req) -> req
    | Ok None -> Alcotest.failf "%S parsed to nothing" line
    | Error msg -> Alcotest.failf "%S rejected: %s" line msg
  in
  Alcotest.(check bool) "worst default k" true
    (ok "query worst" = Dsim.Api.Query (Dsim.Api.Worst None));
  Alcotest.(check bool) "worst explicit k" true
    (ok "query worst 3" = Dsim.Api.Query (Dsim.Api.Worst (Some 3)));
  Alcotest.(check bool) "avail" true
    (ok "query avail" = Dsim.Api.Query Dsim.Api.Avail);
  Alcotest.(check bool) "lower-bound" true
    (ok "query lower-bound" = Dsim.Api.Query Dsim.Api.Lower_bound);
  Alcotest.(check bool) "stats" true (ok "stats" = Dsim.Api.Stats);
  Alcotest.(check bool) "event" true
    (ok "fail 3" = Dsim.Api.Apply (Dsim.Event.Node_fail 3));
  Alcotest.(check bool) "leave event" true
    (ok "leave 2" = Dsim.Api.Apply (Dsim.Event.Node_leave 2));
  (match Dsim.Api.parse_request "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not skipped");
  (match Dsim.Api.parse_request "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank not skipped");
  let err line =
    match Dsim.Api.parse_request line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "%S accepted" line
  in
  Alcotest.(check bool) "bad k diagnosed" true
    (contains ~sub:"integer" (err "query worst x"));
  Alcotest.(check bool) "unknown query form" true
    (contains ~sub:"query" (err "query everything"));
  Alcotest.(check bool) "stats takes no args" true
    (contains ~sub:"stats" (err "stats now"));
  Alcotest.(check bool) "unknown request lists the vocabulary" true
    (List.for_all
       (fun verb -> contains ~sub:verb (err "frobnicate"))
       Dsim.Event.verbs)

let test_api_request_roundtrip () =
  List.iter
    (fun line ->
      match Dsim.Api.parse_request line with
      | Ok (Some req) ->
          Alcotest.(check string) "canonical spelling" line
            (Dsim.Api.request_to_line req)
      | _ -> Alcotest.failf "%S did not parse" line)
    [
      "query worst"; "query worst 3"; "query avail"; "query lower-bound";
      "stats"; "fail 3"; "recover 3"; "join 1"; "leave 1"; "create";
      "delete 17"; "fail-domain 1 0";
    ]

let test_api_exec () =
  let s = mk_session () in
  (match Dsim.Api.exec s (Dsim.Api.Apply Dsim.Event.Object_create) with
  | Dsim.Api.Applied step ->
      Alcotest.(check int) "create moved r" 3 step.Dsim.Churn.moved
  | _ -> Alcotest.fail "create not applied");
  (* Engine rejections come back as responses, never exceptions, and
     the session keeps serving. *)
  (match Dsim.Api.exec s (Dsim.Api.Apply (Dsim.Event.Node_fail 99)) with
  | Dsim.Api.Rejected { line = None; message } ->
      Alcotest.(check bool) "names the node" true (contains ~sub:"99" message)
  | _ -> Alcotest.fail "out-of-range fail not rejected");
  (match Dsim.Api.exec s (Dsim.Api.Query (Dsim.Api.Worst (Some 99))) with
  | Dsim.Api.Rejected { message; _ } ->
      Alcotest.(check bool) "k bound diagnosed" true
        (contains ~sub:"attack budget" message)
  | _ -> Alcotest.fail "oversized k not rejected");
  (match Dsim.Api.exec s (Dsim.Api.Query (Dsim.Api.Worst None)) with
  | Dsim.Api.Worst_case { k; attack; _ } ->
      Alcotest.(check int) "session k" 2 k;
      Alcotest.(check int) "attack has k nodes" 2 (Array.length attack)
  | _ -> Alcotest.fail "worst query failed");
  (match Dsim.Api.exec s (Dsim.Api.Query Dsim.Api.Avail) with
  | Dsim.Api.Availability { live; available; nodes_in_service; _ } ->
      Alcotest.(check int) "live" 1 live;
      Alcotest.(check int) "available" 1 available;
      Alcotest.(check int) "in service" 8 nodes_in_service
  | _ -> Alcotest.fail "avail query failed");
  let st = Dsim.Api.stats s in
  Alcotest.(check int) "requests counted" 5 st.Dsim.Api.requests;
  Alcotest.(check int) "rejections counted" 2 st.Dsim.Api.rejected;
  Alcotest.(check int) "one event applied" 1 st.Dsim.Api.events;
  Alcotest.(check int) "one create" 1 st.Dsim.Api.creates

let test_api_response_lines () =
  (* The wire format: every response is one line of placement/v1. *)
  let s = mk_session () in
  let one_line resp =
    let line = Dsim.Api.response_to_line resp in
    Alcotest.(check bool) "single line" true
      (String.index_opt line '\n' = None);
    Alcotest.(check bool) "placement/v1" true
      (contains ~sub:"\"schema\": \"placement/v1\"" line);
    line
  in
  let l =
    one_line (Dsim.Api.exec s (Dsim.Api.Apply Dsim.Event.Object_create))
  in
  Alcotest.(check bool) "apply envelope" true
    (contains ~sub:"\"command\": \"apply\"" l);
  let l = one_line (Dsim.Api.exec s (Dsim.Api.Query Dsim.Api.Avail)) in
  Alcotest.(check bool) "query envelope" true
    (contains ~sub:"\"command\": \"query\"" l
    && contains ~sub:"\"query\": \"avail\"" l);
  let l = one_line (Dsim.Api.exec s Dsim.Api.Stats) in
  Alcotest.(check bool) "stats envelope" true
    (contains ~sub:"\"command\": \"stats\"" l);
  let l = one_line (Dsim.Api.parse_error s 7 "bad line") in
  Alcotest.(check bool) "error envelope carries the line number" true
    (contains ~sub:"\"command\": \"error\"" l
    && contains ~sub:"\"line\": 7" l)

(* ------------------------------------------------------------------ *)
(* Serve: the daemon loop over real file descriptors. *)

let with_serve ?max_events ?snapshot_every ?timeout script f =
  (* Feed [script] through a pipe, capture the responses from another.
     Writing the whole script before running is safe here: scripts are
     tiny against the pipe buffer. *)
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let session = mk_session () in
  let script = Bytes.of_string script in
  let n = Unix.write in_w script 0 (Bytes.length script) in
  Alcotest.(check int) "script fed whole" (Bytes.length script) n;
  Unix.close in_w;
  let outcome =
    Dsim.Serve.run ?max_events ?snapshot_every ?timeout session ~input:in_r
      ~output:out_w
  in
  Unix.close in_r;
  Unix.close out_w;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec slurp () =
    match Unix.read out_r chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        slurp ()
  in
  slurp ();
  Unix.close out_r;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  f outcome lines

let test_serve_eof () =
  with_serve "create\nquery avail\nbogus 1\ncreate" @@ fun outcome lines ->
  Alcotest.(check bool) "ends at eof" true
    (outcome.Dsim.Serve.reason = Dsim.Serve.Eof);
  Alcotest.(check int) "four requests" 4 outcome.Dsim.Serve.requests;
  (* 4 responses + the summary; the unterminated trailing line still
     gets processed. *)
  Alcotest.(check int) "responses + summary" 5 (List.length lines);
  Alcotest.(check int) "one parse error" 1 outcome.Dsim.Serve.parse_errors;
  let last = List.nth lines 4 in
  Alcotest.(check bool) "summary last" true
    (contains ~sub:"\"command\": \"summary\"" last
    && contains ~sub:"\"reason\": \"eof\"" last);
  Alcotest.(check bool) "parse error answered inline" true
    (contains ~sub:"\"line\": 3" (List.nth lines 2))

let test_serve_max_events () =
  with_serve ~max_events:2 "create\ncreate\ncreate\nquery avail\n"
  @@ fun outcome lines ->
  Alcotest.(check bool) "capped" true
    (outcome.Dsim.Serve.reason = Dsim.Serve.Max_events);
  Alcotest.(check int) "third event rejected" 1 outcome.Dsim.Serve.rejected;
  Alcotest.(check bool) "cap named in the refusal" true
    (List.exists (fun l -> contains ~sub:"event limit reached" l) lines);
  Alcotest.(check bool) "summary says max-events" true
    (contains ~sub:"\"reason\": \"max-events\"" (List.nth lines 3))

let test_serve_snapshots () =
  with_serve ~snapshot_every:2 "create\ncreate\ncreate\ncreate\n"
  @@ fun _outcome lines ->
  let snaps =
    List.filter
      (fun l -> contains ~sub:"\"command\": \"snapshot\"" l)
      lines
  in
  Alcotest.(check int) "snapshot every 2 applies" 2 (List.length snaps);
  List.iter
    (fun l ->
      Alcotest.(check bool) "snapshot carries running stats" true
        (contains ~sub:"\"after_events\"" l && contains ~sub:"\"stats\"" l))
    snaps

let test_serve_timeout () =
  (* Leave the write end open but idle: only the timeout can end it. *)
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let session = mk_session () in
  let outcome =
    Dsim.Serve.run ~timeout:0.05 session ~input:in_r ~output:out_w
  in
  Unix.close in_w;
  Unix.close in_r;
  Unix.close out_w;
  let buf = Bytes.create 4096 in
  let n = Unix.read out_r buf 0 4096 in
  Unix.close out_r;
  Alcotest.(check bool) "timed out" true
    (outcome.Dsim.Serve.reason = Dsim.Serve.Timeout);
  Alcotest.(check bool) "summary still written" true
    (contains ~sub:"\"reason\": \"timeout\"" (Bytes.sub_string buf 0 n))

let test_serve_session_persists () =
  (* A socket daemon reuses one session across connections: the second
     run continues the first's counters and engine state. *)
  let session = mk_session () in
  let round script =
    let in_r, in_w = Unix.pipe ~cloexec:false () in
    let out_r, out_w = Unix.pipe ~cloexec:false () in
    let b = Bytes.of_string script in
    ignore (Unix.write in_w b 0 (Bytes.length b));
    Unix.close in_w;
    let outcome = Dsim.Serve.run session ~input:in_r ~output:out_w in
    Unix.close in_r;
    Unix.close out_w;
    Unix.close out_r;
    outcome
  in
  let o1 = round "create\ncreate\n" in
  let o2 = round "query avail\n" in
  Alcotest.(check int) "first round requests" 2 o1.Dsim.Serve.requests;
  Alcotest.(check int) "counters carried over" 3 o2.Dsim.Serve.requests;
  Alcotest.(check int) "engine carried over" 2
    (Dsim.Churn.live (Dsim.Api.engine session))

let () =
  Alcotest.run "dsim"
    [
      ("semantics", [ Alcotest.test_case "thresholds" `Quick test_thresholds ]);
      ( "cluster",
        [
          Alcotest.test_case "initial state" `Quick test_cluster_initial;
          test_cluster_incremental_matches_layout;
          test_cluster_fail_recover_roundtrip;
          Alcotest.test_case "idempotent ops" `Quick test_cluster_idempotent_ops;
          Alcotest.test_case "racks" `Quick test_cluster_racks;
          Alcotest.test_case "live replicas" `Quick test_live_replicas;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "explicit" `Quick test_scenario_explicit;
          test_scenario_random_nodes;
          Alcotest.test_case "adversarial beats random" `Quick
            test_scenario_adversarial_beats_random;
          Alcotest.test_case "racks" `Quick test_scenario_racks;
          test_scenario_apply_wellformed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "replay" `Quick test_trace_replay;
          Alcotest.test_case "rack attribution" `Quick
            test_trace_rack_attribution;
        ] );
      ( "event",
        [
          Alcotest.test_case "codec" `Quick test_event_codec;
          Alcotest.test_case "parse errors" `Quick test_event_parse_errors;
          Alcotest.test_case "error messages" `Quick test_event_error_messages;
          Alcotest.test_case "format_error" `Quick test_event_format_error;
          Alcotest.test_case "cluster apply_event" `Quick
            test_cluster_apply_event;
          test_scenario_events_equiv;
          Alcotest.test_case "seeded stream valid" `Quick
            test_event_seeded_valid;
          Alcotest.test_case "seeded weights 0 identical" `Quick
            test_event_seeded_weights_zero_identical;
          Alcotest.test_case "seeded membership valid" `Quick
            test_event_seeded_membership_valid;
        ] );
      ( "churn",
        [
          test_churn_oracle;
          Alcotest.test_case "bounded movement" `Quick
            test_churn_bounded_movement;
          test_churn_membership_oracle;
          Alcotest.test_case "membership guards" `Quick
            test_churn_membership_guards;
          Alcotest.test_case "leave relocates" `Quick
            test_churn_leave_relocates;
          Alcotest.test_case "unknown delete" `Quick test_churn_delete_unknown;
          Alcotest.test_case "dead on arrival" `Quick
            test_churn_dead_on_arrival;
        ] );
      ( "api",
        [
          Alcotest.test_case "parse_request" `Quick test_api_parse_request;
          Alcotest.test_case "request round-trip" `Quick
            test_api_request_roundtrip;
          Alcotest.test_case "exec" `Quick test_api_exec;
          Alcotest.test_case "response lines" `Quick test_api_response_lines;
        ] );
      ( "serve",
        [
          Alcotest.test_case "eof session" `Quick test_serve_eof;
          Alcotest.test_case "max-events" `Quick test_serve_max_events;
          Alcotest.test_case "snapshots" `Quick test_serve_snapshots;
          Alcotest.test_case "timeout" `Quick test_serve_timeout;
          Alcotest.test_case "session persists" `Quick
            test_serve_session_persists;
        ] );
      ( "repair",
        [
          Alcotest.test_case "restores cluster" `Quick test_repair_restores_cluster;
          test_repair_stats_consistent;
          Alcotest.test_case "deterministic" `Quick test_repair_deterministic;
          Alcotest.test_case "monotone in failure rate" `Quick
            test_repair_more_failures_more_downtime;
          Alcotest.test_case "nines" `Quick test_repair_nines;
          Alcotest.test_case "bad config" `Quick test_repair_bad_config;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "deterministic" `Quick test_montecarlo_deterministic;
          Alcotest.test_case "bounded" `Quick test_montecarlo_bounded_by_b;
        ] );
    ]
