(* Tests for Engine.Pool and Engine.Bound, and for the determinism
   contract of the layers built on them: running the parallel adversary
   or the Monte-Carlo harness at -j 1 and at -j 4 must produce
   bit-identical results (same seeds are split before dispatch, results
   are placed by index, ties go to the lowest index). *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Pool unit tests *)

let test_map_ordering () =
  Engine.Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 1000 Fun.id in
      let ys = Engine.Pool.parallel_map pool (fun x -> x * x) xs in
      Alcotest.(check (array int))
        "squares, input order" (Array.map (fun x -> x * x) xs) ys;
      Alcotest.(check (array int))
        "empty input" [||] (Engine.Pool.parallel_map pool (fun x -> x) [||]))

let test_map_sequential_pool () =
  (* ~domains:1 is the reference path: no workers, everything inline. *)
  Engine.Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "domains" 1 (Engine.Pool.domains pool);
      let ys = Engine.Pool.parallel_init pool 17 (fun i -> 2 * i) in
      Alcotest.(check (array int)) "init" (Array.init 17 (fun i -> 2 * i)) ys)

let test_reduce_max () =
  Engine.Pool.with_pool ~domains:4 (fun pool ->
      let xs = [| 3; 1; 4; 1; 5; 9; 2; 6; 5 |] in
      Alcotest.(check int) "max of squares" 81
        (Engine.Pool.parallel_reduce_max pool ~score:Fun.id (fun x -> x * x) xs);
      (* All scores tie: the lowest-indexed image must win. *)
      let tied = Array.init 100 (fun i -> (i, 7)) in
      let idx, _ = Engine.Pool.parallel_reduce_max pool ~score:snd Fun.id tied in
      Alcotest.(check int) "ties go to lowest index" 0 idx;
      Alcotest.check_raises "empty input"
        (Invalid_argument "Pool.parallel_reduce_max: empty") (fun () ->
          ignore (Engine.Pool.parallel_reduce_max pool ~score:Fun.id Fun.id [||])))

exception Boom of int

let test_exception_propagation () =
  Engine.Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 64 Fun.id in
      (match
         Engine.Pool.parallel_map pool
           (fun i -> if i mod 7 = 3 then raise (Boom i) else i)
           xs
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "lowest-indexed exception wins" 3 i);
      (* The failed batch must leave the pool usable. *)
      let ys = Engine.Pool.parallel_map pool Fun.id xs in
      Alcotest.(check (array int)) "pool survives a failed batch" xs ys)

let test_nested_use_rejected () =
  Engine.Pool.with_pool ~domains:2 (fun pool ->
      (match
         Engine.Pool.parallel_map pool
           (fun _ -> Engine.Pool.parallel_map pool Fun.id [| 1 |])
           [| 0; 1; 2 |]
       with
      | _ -> Alcotest.fail "expected Nested_use"
      | exception Engine.Pool.Nested_use -> ());
      let ys = Engine.Pool.parallel_map pool Fun.id [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool survives rejection" [| 1; 2; 3 |] ys)

let test_bound () =
  let b = Engine.Bound.create 5 in
  Alcotest.(check bool) "no improvement" false (Engine.Bound.improve b 5);
  Alcotest.(check bool) "worse" false (Engine.Bound.improve b 3);
  Alcotest.(check bool) "better" true (Engine.Bound.improve b 9);
  Alcotest.(check int) "value" 9 (Engine.Bound.get b)

let test_deque () =
  let d : int Engine.Deque.t = Engine.Deque.create () in
  Alcotest.(check (option int)) "empty front" None (Engine.Deque.take_front d);
  Alcotest.(check (option int)) "empty back" None (Engine.Deque.take_back d);
  (* Enough pushes to force the ring to grow past its initial capacity. *)
  for i = 0 to 40 do
    Engine.Deque.push d i
  done;
  Alcotest.(check int) "length" 41 (Engine.Deque.length d);
  Alcotest.(check (option int)) "front is oldest" (Some 0)
    (Engine.Deque.take_front d);
  Alcotest.(check (option int)) "back is newest" (Some 40)
    (Engine.Deque.take_back d);
  (* Interleave pushes with takes so head wraps around the ring. *)
  for i = 100 to 120 do
    Engine.Deque.push d i
  done;
  let front = ref [] and back = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match (Engine.Deque.take_front d, Engine.Deque.take_back d) with
    | None, None -> continue_ := false
    | f, b ->
        Option.iter (fun x -> front := x :: !front) f;
        Option.iter (fun x -> back := x :: !back) b
  done;
  let drained = List.sort compare (List.rev_append !front !back) in
  let expected =
    List.sort compare (List.init 39 (fun i -> i + 1) @ List.init 21 (fun i -> i + 100))
  in
  Alcotest.(check (list int)) "drained exactly once each" expected drained

let test_parallel_steal () =
  Engine.Pool.with_pool ~domains:4 (fun pool ->
      let n = 250 in
      let hits = Array.make n 0 in
      let workers = Array.make n (-1) in
      let steals =
        Engine.Pool.parallel_steal pool
          ~f:(fun ~worker i ->
            hits.(i) <- hits.(i) + 1;
            workers.(i) <- worker)
          (Array.init n Fun.id)
      in
      Alcotest.(check bool) "steal count sane" true (steals >= 0 && steals <= n);
      Alcotest.(check (array int)) "every task ran exactly once"
        (Array.make n 1) hits;
      Alcotest.(check bool) "worker slots in range" true
        (Array.for_all (fun w -> w >= 0 && w < 4) workers);
      Alcotest.(check int) "empty input" 0
        (Engine.Pool.parallel_steal pool ~f:(fun ~worker:_ _ -> ()) [||]))

let test_parallel_steal_sequential () =
  (* ~domains:1 is the reference schedule: one deque drained in task
     index order by the calling domain, nothing to steal from. *)
  Engine.Pool.with_pool ~domains:1 (fun pool ->
      let order = ref [] in
      let steals =
        Engine.Pool.parallel_steal pool
          ~f:(fun ~worker i ->
            Alcotest.(check int) "only slot 0" 0 worker;
            order := i :: !order)
          (Array.init 10 Fun.id)
      in
      Alcotest.(check int) "no steals at -j1" 0 steals;
      Alcotest.(check (list int)) "task index order" (List.init 10 Fun.id)
        (List.rev !order))

(* ------------------------------------------------------------------ *)
(* -j 1 vs -j 4 determinism properties *)

let layout_case_gen =
  QCheck2.Gen.(
    let* n = int_range 6 14 in
    let* r = int_range 2 (min 4 (n - 2)) in
    let* b = int_range 1 30 in
    let* seed = int_range 0 10000 in
    let rng = Combin.Rng.create seed in
    let replicas =
      Array.init b (fun _ -> Combin.Rng.sample_distinct rng ~n ~k:r)
    in
    let* s = int_range 1 r in
    let* k = int_range s (n - 1) in
    return (Placement.Layout.make ~n ~r replicas, seed, s, k))

let same_attack (a : Placement.Adversary.attack)
    (b : Placement.Adversary.attack) =
  a.Placement.Adversary.failed_objects = b.Placement.Adversary.failed_objects
  && a.Placement.Adversary.failed_nodes = b.Placement.Adversary.failed_nodes
  && a.Placement.Adversary.exact = b.Placement.Adversary.exact

let test_local_search_deterministic =
  qtest ~count:30 "Adversary.local_search: -j 1 = -j 4" layout_case_gen
    (fun (layout, seed, s, k) ->
      let run pool =
        Placement.Adversary.local_search
          ~rng:(Combin.Rng.create (seed + 1))
          ~restarts:8 ?pool layout ~s ~k
      in
      let seq = run None in
      let par = Engine.Pool.with_pool ~domains:4 (fun p -> run (Some p)) in
      same_attack seq par)

let test_exact_deterministic =
  qtest ~count:30 "Adversary.exact: -j 1 = -j 4" layout_case_gen
    (fun (layout, _seed, s, k) ->
      let run pool = Placement.Adversary.exact ?pool layout ~s ~k in
      let seq = run None in
      let par = Engine.Pool.with_pool ~domains:4 (fun p -> run (Some p)) in
      same_attack seq par)

let test_frontier_matches_oracle =
  (* The heart of the frontier's determinism contract (DESIGN.md §15):
     at EVERY forced spawn depth, with and without a pool, the sharded
     search reports the sequential oracle's exact answer — same damage,
     same winning set under the lexicographic tie rule, even though the
     explored node sets differ run to run. *)
  qtest ~count:25 "Bb frontier: any spawn depth, -j1/-j4 = sequential oracle"
    layout_case_gen
    (fun (layout, _seed, s, k) ->
      let oracle = Placement.Adversary.exact_seq layout ~s ~k in
      let depths = List.sort_uniq compare [ 1; (k / 2) + 1; max 1 (k - 1) ] in
      List.for_all
        (fun d ->
          let seq = Placement.Adversary.exact ~spawn_depth:d layout ~s ~k in
          let par =
            Engine.Pool.with_pool ~domains:4 (fun pool ->
                Placement.Adversary.exact ~spawn_depth:d ~pool layout ~s ~k)
          in
          same_attack oracle seq && same_attack oracle par)
        depths)

let test_attack_deterministic =
  qtest ~count:20 "Adversary.attack (lazy-greedy seed): -j 1 = -j 4"
    layout_case_gen
    (fun (layout, seed, s, k) ->
      let run pool =
        Placement.Adversary.attack ?pool ~rng:(Combin.Rng.create seed)
          layout ~s ~k
      in
      let seq = run None in
      let par = Engine.Pool.with_pool ~domains:4 (fun p -> run (Some p)) in
      same_attack seq par)

let test_montecarlo_deterministic =
  qtest ~count:15 "Montecarlo.avg_avail_random: -j 1 = -j 4"
    QCheck2.Gen.(
      let* n = int_range 6 12 in
      let* r = int_range 2 (min 4 (n - 2)) in
      let* s = int_range 1 r in
      let* k = int_range s (n - 1) in
      let* b = int_range 1 25 in
      let* seed = int_range 0 1000 in
      return (n, r, s, k, b, seed))
    (fun (n, r, s, k, b, seed) ->
      let p = Placement.Params.make ~b ~r ~s ~n ~k in
      let run pool =
        Dsim.Montecarlo.avg_avail_random ?pool
          ~rng:(Combin.Rng.create seed) ~trials:6 p
      in
      let seq = run None in
      let par = Engine.Pool.with_pool ~domains:4 (fun pl -> run (Some pl)) in
      seq.Dsim.Montecarlo.avails = par.Dsim.Montecarlo.avails
      && seq.Dsim.Montecarlo.mean = par.Dsim.Montecarlo.mean
      && seq.Dsim.Montecarlo.stddev = par.Dsim.Montecarlo.stddev)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map ordering" `Quick test_map_ordering;
          Alcotest.test_case "domains:1 reference path" `Quick
            test_map_sequential_pool;
          Alcotest.test_case "parallel_reduce_max" `Quick test_reduce_max;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick
            test_nested_use_rejected;
          Alcotest.test_case "bound cell" `Quick test_bound;
          Alcotest.test_case "deque" `Quick test_deque;
          Alcotest.test_case "parallel_steal" `Quick test_parallel_steal;
          Alcotest.test_case "parallel_steal -j1 reference" `Quick
            test_parallel_steal_sequential;
        ] );
      ( "determinism",
        [
          test_local_search_deterministic;
          test_exact_deterministic;
          test_frontier_matches_oracle;
          test_attack_deterministic;
          test_montecarlo_deterministic;
        ] );
    ]
