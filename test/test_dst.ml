(* Tests for the deterministic simulation testing harness (lib/dst)
   and its supporting surfaces: Dsim.Inject, Adaptive.peek / the
   advise-create query, scenario profiles, the invariant registry,
   and the shrinker. *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xD57D57 |])
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let pt = Dsim.Inject.register "dst/test_point"

let test_inject_disarmed () =
  Dsim.Inject.without (fun () ->
      Alcotest.(check bool) "disarmed never fires" false (Dsim.Inject.fire pt);
      Alcotest.(check int) "no checks tallied" 0 (Dsim.Inject.checks ());
      Alcotest.(check int) "no fires tallied" 0 (Dsim.Inject.fired ()))

let test_inject_registry () =
  let again = Dsim.Inject.register "dst/test_point" in
  Alcotest.(check string)
    "find-or-create returns the same point" (Dsim.Inject.name pt)
    (Dsim.Inject.name again);
  Alcotest.(check bool)
    "engine points registered" true
    (List.mem "dst/capacity_preflight" (Dsim.Inject.points ())
    && List.mem "dst/rescore" (Dsim.Inject.points ())
    && List.mem "dst/io_partial_line" (Dsim.Inject.points ()))

let decisions ~seed ~rate ~hits =
  Dsim.Inject.with_arming ~seed ~rate (fun () ->
      let ds = List.init hits (fun _ -> Dsim.Inject.fire pt) in
      (ds, Dsim.Inject.checks (), Dsim.Inject.fired ()))

let test_inject_deterministic () =
  let d1, c1, f1 = decisions ~seed:11 ~rate:4 ~hits:200 in
  let d2, c2, f2 = decisions ~seed:11 ~rate:4 ~hits:200 in
  Alcotest.(check (list bool)) "same seed, same plan" d1 d2;
  Alcotest.(check int) "checks equal" c1 c2;
  Alcotest.(check int) "fired equal" f1 f2;
  Alcotest.(check int) "every fire call checked" 200 c1;
  Alcotest.(check bool) "rate 4 fires sometimes" true (f1 > 0);
  Alcotest.(check bool) "rate 4 spares sometimes" true (f1 < 200);
  let d3, _, _ = decisions ~seed:12 ~rate:4 ~hits:200 in
  Alcotest.(check bool) "different seed, different plan" true (d1 <> d3)

let test_inject_rate_one () =
  let ds, _, f = decisions ~seed:3 ~rate:1 ~hits:50 in
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all (fun d -> d) ds);
  Alcotest.(check int) "all tallied" 50 f

let test_inject_without_nested () =
  Dsim.Inject.with_arming ~seed:1 ~rate:1 (fun () ->
      Alcotest.(check bool) "armed fires" true (Dsim.Inject.fire pt);
      Dsim.Inject.without (fun () ->
          Alcotest.(check bool) "nested without disarms" false
            (Dsim.Inject.fire pt));
      Alcotest.(check bool) "arming restored" true (Dsim.Inject.fire pt))

(* ------------------------------------------------------------------ *)
(* Scenario profiles *)

let test_profile_catalogue () =
  Alcotest.(check bool)
    "the four profiles are listed" true
    (List.for_all
       (fun nm -> List.mem nm Dst.Profile.names)
       [ "steady"; "storm"; "membership"; "cascade" ]);
  Alcotest.(check bool) "find steady" true (Dst.Profile.find "steady" <> None);
  Alcotest.(check bool) "find bogus" true (Dst.Profile.find "bogus" = None)

let profile_gen =
  QCheck2.Gen.(
    pair (oneofl Dst.Profile.all) (pair (int_range 1 5000) (int_range 8 32)))

let test_profile_deterministic =
  qtest ~count:40 "generation is a pure function of (profile, n, seed)"
    profile_gen
    (fun (p, (seed, n)) ->
      let gen () =
        Dst.Profile.generate p ~n ~seed ~steps:120 ~measure_every:30
      in
      gen () = gen ())

let test_profile_valid_by_construction =
  qtest ~count:40 "every generated event is accepted by a fresh engine"
    profile_gen
    (fun (p, (seed, n)) ->
      let history =
        Dst.Profile.generate p ~n ~seed ~steps:150 ~measure_every:40
      in
      let eng =
        Dsim.Churn.create
          ?topology:(Dst.Profile.topology p ~n)
          ~n ~r:3 ~s:2 ~k:2 ()
      in
      List.for_all
        (fun ev ->
          match Dsim.Churn.apply eng ev with
          | _ -> true
          | exception Invalid_argument _ -> false)
        history)

let test_profile_phases_cover_steps () =
  let p = Option.get (Dst.Profile.find "storm") in
  let history =
    Dst.Profile.generate p ~n:20 ~seed:9 ~steps:200 ~measure_every:0
  in
  (* No pulses: the history is exactly the requested weighted draws. *)
  Alcotest.(check int) "steps honoured" 200 (List.length history)

(* ------------------------------------------------------------------ *)
(* Advisory routing: peek ≡ add *)

let test_advise_matches_create () =
  let eng = Dsim.Churn.create ~n:12 ~r:3 ~s:2 ~k:2 () in
  for i = 0 to 39 do
    let advice = Dsim.Churn.advise_create eng in
    let _step = Dsim.Churn.apply eng Dsim.Event.Object_create in
    let layout = Dsim.Churn.layout eng in
    let row =
      Array.copy
        layout.Placement.Layout.replicas.(Array.length
                                            layout.Placement.Layout.replicas
                                          - 1)
    in
    Array.sort compare row;
    let advice = Array.copy advice in
    Array.sort compare advice;
    Alcotest.(check (array int))
      (Printf.sprintf "create %d lands on the advised nodes" i)
      advice row
  done

let test_advise_does_not_perturb () =
  let drive peeking =
    let eng = Dsim.Churn.create ~n:12 ~r:3 ~s:2 ~k:2 () in
    let history =
      Dst.Profile.generate
        (Option.get (Dst.Profile.find "steady"))
        ~n:12 ~seed:4 ~steps:100 ~measure_every:0
    in
    List.iter
      (fun ev ->
        if peeking then ignore (Dsim.Churn.advise_create eng);
        ignore (Dsim.Churn.apply eng ev))
      history;
    (Dsim.Churn.layout eng).Placement.Layout.replicas
  in
  Alcotest.(check bool)
    "peeking between events never moves later placements" true
    (drive true = drive false)

let test_api_advise_query () =
  let eng = Dsim.Churn.create ~n:8 ~r:3 ~s:2 ~k:2 () in
  let session = Dsim.Api.make eng in
  let req =
    match Dsim.Api.parse_request "advise create" with
    | Ok (Some r) -> r
    | _ -> Alcotest.fail "advise create must parse"
  in
  let expected = Dsim.Churn.advise_create eng in
  (match Dsim.Api.exec session req with
  | Dsim.Api.Advice { nodes; live } ->
      Alcotest.(check (array int)) "advice nodes" expected nodes;
      Alcotest.(check int) "live echo" 0 live
  | _ -> Alcotest.fail "expected an Advice response");
  (* The query is read-only: the engine applied nothing. *)
  Alcotest.(check int) "no events applied" 0 (Dsim.Churn.events eng)

(* ------------------------------------------------------------------ *)
(* Harness *)

let mk_config ?(seed = 1) ?(steps = 120) ?(inject_rate = 0) ?(breaks = [])
    ?(profile = "steady") ?strategy () =
  {
    Dst.Harness.n = 16;
    r = 3;
    s = 2;
    k = 2;
    seed;
    steps;
    measure_every = 30;
    profile = Option.get (Dst.Profile.find profile);
    strategy;
    inject_rate;
    break_invariants = breaks;
    extra_invariants = [];
  }

let test_harness_clean_run () =
  let out =
    Dst.Harness.run (mk_config ~strategy:(Placement.Strategies.get "combo") ())
  in
  Alcotest.(check bool) "no violation" true (out.Dst.Harness.violation = None);
  Alcotest.(check bool) "events ran" true (out.Dst.Harness.applied > 0);
  Alcotest.(check int) "all applied" out.Dst.Harness.events
    (out.Dst.Harness.applied + out.Dst.Harness.rejected)

let test_harness_deterministic () =
  let cfg = mk_config ~profile:"storm" ~inject_rate:15 () in
  Alcotest.(check bool)
    "identical outcomes for identical configs" true
    (Dst.Harness.run cfg = Dst.Harness.run cfg)

let test_harness_injection_absorbed () =
  let cfg = mk_config ~seed:2 ~profile:"storm" ~inject_rate:10 () in
  let out = Dst.Harness.run cfg in
  Alcotest.(check bool) "faults fired" true (out.Dst.Harness.injected_fired > 0);
  Alcotest.(check bool)
    "faults surface as rejections, never violations" true
    (out.Dst.Harness.violation = None)

let test_harness_sweep_pool_invariant () =
  let configs =
    Array.of_list
      (List.concat_map
         (fun profile ->
           List.map
             (fun seed -> mk_config ~seed ~profile ~inject_rate:20 ())
             [ 1; 2; 3 ])
         [ "steady"; "membership" ])
  in
  let seq = Dst.Harness.sweep configs in
  let par =
    Engine.Pool.with_pool ~domains:4 (fun pool ->
        Dst.Harness.sweep ~pool configs)
  in
  Alcotest.(check bool) "pool fan-out is bit-identical" true (seq = par)

let test_harness_canary_trips () =
  let out =
    Dst.Harness.run (mk_config ~breaks:[ "canary/full-availability" ] ())
  in
  match out.Dst.Harness.violation with
  | Some v ->
      Alcotest.(check string)
        "the canary is the tripped invariant" "canary/full-availability"
        v.Dst.Harness.invariant
  | None -> Alcotest.fail "the canary invariant must trip"

let test_harness_unknown_canary () =
  Alcotest.(check bool) "unknown canary rejected" true
    (try
       ignore (Dst.Harness.run (mk_config ~breaks:[ "canary/nope" ] ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let test_shrink_requires_violation () =
  let cfg = mk_config () in
  Alcotest.(check bool) "clean history refused" true
    (try
       ignore
         (Dst.Shrink.run ~config:cfg
            ~history:(Dst.Harness.default_history cfg)
            ~invariant:"canary/full-availability");
       false
     with Invalid_argument _ -> true)

let test_shrink_repro_replays =
  qtest ~count:8
    "a shrunk repro replays to the same violation, deterministically"
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let cfg =
        mk_config ~seed ~steps:60 ~breaks:[ "canary/full-availability" ] ()
      in
      let history = Dst.Harness.default_history cfg in
      match (Dst.Harness.run cfg).Dst.Harness.violation with
      | None -> QCheck2.assume_fail ()
      | Some v ->
          let inv = v.Dst.Harness.invariant in
          let res = Dst.Shrink.run ~config:cfg ~history ~invariant:inv in
          let replayed =
            (Dst.Harness.run ~history:res.Dst.Shrink.history cfg)
              .Dst.Harness.violation
          in
          let again = Dst.Shrink.run ~config:cfg ~history ~invariant:inv in
          List.length res.Dst.Shrink.history <= List.length history
          && (match replayed with
             | Some v' -> v'.Dst.Harness.invariant = inv
             | None -> false)
          && again.Dst.Shrink.history = res.Dst.Shrink.history)

let test_shrink_repro_file_round_trips () =
  let cfg =
    mk_config ~seed:5 ~steps:80 ~breaks:[ "canary/full-availability" ] ()
  in
  let history = Dst.Harness.default_history cfg in
  let v =
    match (Dst.Harness.run cfg).Dst.Harness.violation with
    | Some v -> v
    | None -> Alcotest.fail "expected the canary to trip"
  in
  let res =
    Dst.Shrink.run ~config:cfg ~history ~invariant:v.Dst.Harness.invariant
  in
  let lines = Dst.Shrink.repro_lines ~config:cfg res in
  (* The header is comments; the event body parses back to the
     minimized history and still reproduces the violation. *)
  let parsed =
    match Dsim.Event.parse_string (String.concat "\n" lines) with
    | Ok evs -> evs
    | Error _ -> Alcotest.fail "repro file must parse"
  in
  Alcotest.(check bool) "parsed history = shrunk history" true
    (parsed = res.Dst.Shrink.history);
  match (Dst.Harness.run ~history:parsed cfg).Dst.Harness.violation with
  | Some v' ->
      Alcotest.(check string) "same invariant trips again"
        v.Dst.Harness.invariant v'.Dst.Harness.invariant
  | None -> Alcotest.fail "parsed repro must still violate"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dst"
    [
      ( "inject",
        [
          Alcotest.test_case "disarmed" `Quick test_inject_disarmed;
          Alcotest.test_case "registry" `Quick test_inject_registry;
          Alcotest.test_case "deterministic" `Quick
            test_inject_deterministic;
          Alcotest.test_case "rate one" `Quick test_inject_rate_one;
          Alcotest.test_case "nested without" `Quick
            test_inject_without_nested;
        ] );
      ( "profile",
        [
          Alcotest.test_case "catalogue" `Quick test_profile_catalogue;
          test_profile_deterministic;
          test_profile_valid_by_construction;
          Alcotest.test_case "steps honoured" `Quick
            test_profile_phases_cover_steps;
        ] );
      ( "advise",
        [
          Alcotest.test_case "peek = add" `Quick test_advise_matches_create;
          Alcotest.test_case "peek is pure" `Quick
            test_advise_does_not_perturb;
          Alcotest.test_case "api query" `Quick test_api_advise_query;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean run" `Quick test_harness_clean_run;
          Alcotest.test_case "deterministic" `Quick
            test_harness_deterministic;
          Alcotest.test_case "injection absorbed" `Quick
            test_harness_injection_absorbed;
          Alcotest.test_case "pool sweep" `Quick
            test_harness_sweep_pool_invariant;
          Alcotest.test_case "canary trips" `Quick test_harness_canary_trips;
          Alcotest.test_case "unknown canary" `Quick
            test_harness_unknown_canary;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "needs a violation" `Quick
            test_shrink_requires_violation;
          test_shrink_repro_replays;
          Alcotest.test_case "file round-trip" `Quick
            test_shrink_repro_file_round_trips;
        ] );
    ]
