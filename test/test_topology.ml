(* Tests for lib/topology: fault-domain trees, the domain adversary,
   the domain-failure bound and the spread strategies. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x70F0 |])
    (QCheck2.Test.make ~count ~name gen prop)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* Every object hosts r replicas on r distinct in-range nodes, sorted. *)
let well_formed (layout : Placement.Layout.t) =
  Array.for_all
    (fun rep ->
      Array.length rep = layout.Placement.Layout.r
      && Array.for_all (fun nd -> nd >= 0 && nd < layout.Placement.Layout.n) rep
      && Array.for_all
           (fun i -> rep.(i - 1) < rep.(i))
           (Array.init (Array.length rep - 1) (fun i -> i + 1)))
    layout.Placement.Layout.replicas

(* ------------------------------------------------------------------ *)
(* Tree *)

let test_tree_make () =
  (* Arbitrary ids are normalized in ascending order; two levels nest. *)
  let t =
    Topology.Tree.make ~n:6
      [ ("rack", [| 9; 9; 4; 4; 7; 7 |]); ("zone", [| 1; 1; 0; 0; 1; 1 |]) ]
  in
  Alcotest.(check int) "n" 6 (Topology.Tree.n t);
  Alcotest.(check int) "depth" 3 (Topology.Tree.depth t);
  Alcotest.(check (array string))
    "level names" [| "node"; "rack"; "zone" |]
    (Topology.Tree.level_names t);
  (* rack ids 4 < 7 < 9 normalize to 0, 1, 2. *)
  Alcotest.(check int) "node 0 in rack 2" 2 (Topology.Tree.domain_of t ~level:1 0);
  Alcotest.(check int) "node 2 in rack 0" 0 (Topology.Tree.domain_of t ~level:1 2);
  Alcotest.(check (array int)) "rack 0 members" [| 2; 3 |]
    (Topology.Tree.members t ~level:1 0);
  Alcotest.(check int) "rack 0's zone" 0 (Topology.Tree.parent t ~level:1 0);
  Alcotest.(check int) "rack 2's zone" 1 (Topology.Tree.parent t ~level:1 2);
  Alcotest.(check (option int)) "racks uniform" (Some 2)
    (Topology.Tree.uniform t ~level:1);
  Alcotest.(check (option int)) "zones uneven" None
    (Topology.Tree.uniform t ~level:2);
  Alcotest.(check (option int)) "find rack" (Some 1)
    (Topology.Tree.find_level t "rack");
  Alcotest.(check (option int)) "find nothing" None
    (Topology.Tree.find_level t "region")

let test_tree_invalid () =
  Alcotest.(check bool) "bad length" true
    (raises_invalid (fun () -> Topology.Tree.make ~n:3 [ ("rack", [| 0; 1 |]) ]));
  Alcotest.(check bool) "negative id" true
    (raises_invalid (fun () ->
         Topology.Tree.make ~n:2 [ ("rack", [| 0; -1 |]) ]));
  Alcotest.(check bool) "clashing names" true
    (raises_invalid (fun () ->
         Topology.Tree.make ~n:2 [ ("node", [| 0; 1 |]) ]));
  (* Nodes 0,1 share a rack but sit in different zones: no nesting. *)
  Alcotest.(check bool) "broken nesting" true
    (raises_invalid (fun () ->
         Topology.Tree.make ~n:2
           [ ("rack", [| 0; 0 |]); ("zone", [| 0; 1 |]) ]))

let test_build () =
  let flat = Topology.Build.flat 5 in
  Alcotest.(check int) "flat depth" 2 (Topology.Tree.depth flat);
  Alcotest.(check int) "flat racks" 5 (Topology.Tree.domain_count flat ~level:1);
  let reg = Topology.Build.regular ~racks:4 ~nodes_per_rack:5 in
  Alcotest.(check int) "regular n" 20 (Topology.Tree.n reg);
  Alcotest.(check (array int)) "regular rack 1" [| 5; 6; 7; 8; 9 |]
    (Topology.Tree.members reg ~level:1 1);
  let part = Topology.Build.partition ~n:31 ~domains:8 () in
  let sizes = Topology.Tree.sizes part ~level:1 in
  Alcotest.(check int) "partition covers" 31 (Array.fold_left ( + ) 0 sizes);
  Array.iter
    (fun sz -> Alcotest.(check bool) "near-even" true (sz = 3 || sz = 4))
    sizes;
  let nested = Topology.Build.nested [ ("zone", 2); ("rack", 3); ("node", 4) ] in
  Alcotest.(check int) "nested n" 24 (Topology.Tree.n nested);
  Alcotest.(check int) "nested racks" 6 (Topology.Tree.domain_count nested ~level:1);
  Alcotest.(check int) "rack 4 in zone 1" 1 (Topology.Tree.parent nested ~level:1 4)

let test_spec () =
  (match Topology.Spec.parse "zone:2/rack:4/node:8" with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check int) "n" 64 (Topology.Tree.n t);
      Alcotest.(check string) "summary"
        "64 nodes, 3 levels: zone x2, rack x8, node x64"
        (Topology.Spec.summary t));
  let err s =
    match Topology.Spec.parse s with Ok _ -> "<ok>" | Error e -> e
  in
  Alcotest.(check bool) "empty" true
    (String.length (err "") > 0 && err "" <> "<ok>");
  Alcotest.(check bool) "missing count" true (err "rack" <> "<ok>");
  Alcotest.(check bool) "zero count" true (err "rack:0" <> "<ok>");
  Alcotest.(check bool) "bad name" true (err "9rack:2" <> "<ok>");
  Alcotest.(check bool) "duplicate name" true (err "rack:2/rack:3" <> "<ok>");
  Alcotest.(check bool) "parse_exn raises" true
    (raises_invalid (fun () -> Topology.Spec.parse_exn "rack:"))

let test_failset () =
  let t = Topology.Build.regular ~racks:4 ~nodes_per_rack:3 in
  Alcotest.(check (option int)) "C(4,2)" (Some 6)
    (Topology.Failset.count t ~level:1 ~j:2);
  Alcotest.(check (array int)) "union of racks 0,2" [| 0; 1; 2; 6; 7; 8 |]
    (Topology.Failset.nodes t ~level:1 [| 0; 2 |]);
  let subsets = ref 0 in
  Topology.Failset.iter t ~level:1 ~j:2 (fun _ -> incr subsets);
  Alcotest.(check int) "iter count" 6 !subsets;
  let rng = Combin.Rng.create 7 in
  let s = Topology.Failset.sample ~rng t ~level:1 ~j:2 in
  Alcotest.(check int) "sample size" 2 (Array.length s);
  Alcotest.(check bool) "sample sorted in range" true
    (s.(0) < s.(1) && s.(0) >= 0 && s.(1) < 4);
  Alcotest.(check bool) "j out of range" true
    (raises_invalid (fun () -> Topology.Failset.validate t ~level:1 ~j:5))

(* ------------------------------------------------------------------ *)
(* Adversary *)

let fig4_layout ~n ~b ~k =
  let inst = Placement.Instance.make ~b ~r:3 ~s:2 ~n ~k () in
  Placement.Instance.combo_layout inst

let test_adversary_flat_equals_node () =
  (* On a flat tree the rack adversary IS the node adversary: same
     availability on the Fig. 4 design points. *)
  List.iter
    (fun (n, b, k) ->
      let layout = fig4_layout ~n ~b ~k in
      let flat = Topology.Build.flat n in
      let rack = Topology.Adversary.attack layout ~s:2 flat ~level:1 ~j:k in
      let node = Placement.Adversary.exact layout ~s:2 ~k in
      Alcotest.(check int)
        (Printf.sprintf "n=%d b=%d k=%d" n b k)
        (Placement.Adversary.avail layout ~s:2 node)
        (Topology.Adversary.avail layout rack);
      Alcotest.(check (array int)) "same node set"
        node.Placement.Adversary.failed_nodes
        rack.Topology.Adversary.failed_nodes)
    [ (31, 600, 3); (31, 600, 4); (71, 2400, 3) ]

let test_adversary_exhaustive_vs_bb =
  (* The branch-and-bound must return exactly the exhaustive answer. *)
  qtest ~count:25 "exhaustive = branch-and-bound"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Combin.Rng.create seed in
      let inst = Placement.Instance.make ~b:60 ~r:3 ~s:2 ~n:12 ~k:3 () in
      let layout = Placement.Instance.random_layout ~rng inst in
      let tree = Topology.Build.regular ~racks:4 ~nodes_per_rack:3 in
      let j = 1 + (seed mod 3) in
      let ex = Topology.Adversary.exhaustive layout ~s:2 tree ~level:1 ~j in
      let bb = Topology.Adversary.exact layout ~s:2 tree ~level:1 ~j in
      ex.Topology.Adversary.exact && bb.Topology.Adversary.exact
      && ex.Topology.Adversary.failed_objects
         = bb.Topology.Adversary.failed_objects
      && ex.Topology.Adversary.failed_domains
         = bb.Topology.Adversary.failed_domains)

let test_adversary_jobs_identical =
  (* Determinism contract: -j 1 and -j 4 produce bit-identical attacks,
     through both dispatch paths. *)
  qtest ~count:10 "-j1 = -j4"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Combin.Rng.create seed in
      let inst = Placement.Instance.make ~b:80 ~r:3 ~s:2 ~n:24 ~k:3 () in
      let layout = Placement.Instance.random_layout ~rng inst in
      let tree = Topology.Build.regular ~racks:8 ~nodes_per_rack:3 in
      let j = 2 + (seed mod 2) in
      let seq =
        Topology.Adversary.attack ~exhaustive_limit:0 layout ~s:2 tree ~level:1
          ~j
      in
      let par =
        Engine.Pool.with_pool ~domains:4 (fun pool ->
            Topology.Adversary.attack ~pool ~exhaustive_limit:0 layout ~s:2
              tree ~level:1 ~j)
      in
      seq.Topology.Adversary.failed_domains
      = par.Topology.Adversary.failed_domains
      && seq.Topology.Adversary.failed_objects
         = par.Topology.Adversary.failed_objects
      && seq.Topology.Adversary.exact = par.Topology.Adversary.exact)

let test_adversary_frontier_spawn_depths () =
  (* The sharded frontier path through the domain adversary: every
     forced spawn depth, with and without a pool, must reproduce the
     exhaustive answer — damage AND domain set (DESIGN.md §15). *)
  let rng = Combin.Rng.create 7 in
  let inst = Placement.Instance.make ~b:80 ~r:3 ~s:2 ~n:24 ~k:3 () in
  let layout = Placement.Instance.random_layout ~rng inst in
  let tree = Topology.Build.regular ~racks:8 ~nodes_per_rack:3 in
  let j = 3 in
  let oracle = Topology.Adversary.exhaustive layout ~s:2 tree ~level:1 ~j in
  List.iter
    (fun spawn_depth ->
      let check_attack name (a : Topology.Adversary.attack) =
        Alcotest.(check bool) (name ^ ": exact") true a.Topology.Adversary.exact;
        Alcotest.(check int)
          (name ^ ": damage")
          oracle.Topology.Adversary.failed_objects
          a.Topology.Adversary.failed_objects;
        Alcotest.(check (array int))
          (name ^ ": domains")
          oracle.Topology.Adversary.failed_domains
          a.Topology.Adversary.failed_domains
      in
      let name = Printf.sprintf "spawn_depth=%d" spawn_depth in
      check_attack (name ^ " -j1")
        (Topology.Adversary.exact ~spawn_depth layout ~s:2 tree ~level:1 ~j);
      check_attack (name ^ " -j4")
        (Engine.Pool.with_pool ~domains:4 (fun pool ->
             Topology.Adversary.exact ~spawn_depth ~pool layout ~s:2 tree
               ~level:1 ~j)))
    [ 1; 2; 3 ]

let test_adversary_greedy_le_exact =
  qtest ~count:30 "greedy damage <= exact damage"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Combin.Rng.create seed in
      let inst = Placement.Instance.make ~b:40 ~r:3 ~s:2 ~n:12 ~k:3 () in
      let layout = Placement.Instance.random_layout ~rng inst in
      let tree = Topology.Build.partition ~n:12 ~domains:5 () in
      let j = 1 + (seed mod 3) in
      let g = Topology.Adversary.greedy layout ~s:2 tree ~level:1 ~j in
      let e = Topology.Adversary.exhaustive layout ~s:2 tree ~level:1 ~j in
      g.Topology.Adversary.failed_objects
      <= e.Topology.Adversary.failed_objects)

let test_adversary_validates () =
  let layout = fig4_layout ~n:31 ~b:600 ~k:3 in
  let tree = Topology.Build.flat 30 in
  Alcotest.(check bool) "n mismatch" true
    (raises_invalid (fun () ->
         Topology.Adversary.attack layout ~s:2 tree ~level:1 ~j:1));
  let tree31 = Topology.Build.flat 31 in
  Alcotest.(check bool) "j too big" true
    (raises_invalid (fun () ->
         Topology.Adversary.attack layout ~s:2 tree31 ~level:1 ~j:32))

(* ------------------------------------------------------------------ *)
(* Bound *)

let test_bound_refinement () =
  (* 13 nodes in 5 racks of sizes 3,3,2,3,2: the refined K beats
     j * max size as soon as the j largest racks are not all maximal. *)
  let tree = Topology.Build.partition ~n:13 ~domains:5 () in
  Alcotest.(check int) "K(j=1)" 3 (Topology.Bound.covered_nodes tree ~level:1 ~j:1);
  Alcotest.(check int) "K(j=5) = n" 13
    (Topology.Bound.covered_nodes tree ~level:1 ~j:5);
  let rep = Topology.Bound.load_report ~b:60 ~r:3 ~s:2 tree ~level:1 ~j:4 in
  Alcotest.(check int) "refined" 11 rep.Topology.Bound.covered_nodes;
  Alcotest.(check int) "naive" 12 rep.Topology.Bound.naive_nodes;
  Alcotest.(check bool) "refined <= naive" true
    (rep.Topology.Bound.covered_nodes <= rep.Topology.Bound.naive_nodes)

let test_bound_sound =
  (* The guarantee must hold against the real domain adversary on a
     Simple(0, lambda) placement (simple strategy = x=0 layout). *)
  qtest ~count:20 "lb <= adversary availability"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let inst = Placement.Instance.make ~b:60 ~r:3 ~s:2 ~n:12 ~k:3 () in
      let rng = Combin.Rng.create seed in
      let layout = Placement.Instance.random_layout ~rng inst in
      let tree = Topology.Build.regular ~racks:4 ~nodes_per_rack:3 in
      let j = 1 + (seed mod 2) in
      let lambda = Placement.Layout.max_load layout in
      let rep =
        Topology.Bound.si_report ~b:60 ~x:0 ~lambda ~s:2 tree ~level:1 ~j
      in
      let atk = Topology.Adversary.attack layout ~s:2 tree ~level:1 ~j in
      rep.Topology.Bound.si.Placement.Analysis.lb_clamped
      <= Topology.Adversary.avail layout atk)

(* ------------------------------------------------------------------ *)
(* Spread *)

let test_spread_feasibility () =
  let tree = Topology.Build.regular ~racks:4 ~nodes_per_rack:5 in
  Alcotest.(check int) "slots cap=1" 4 (Topology.Spread.slots tree ~level:1 ~cap:1);
  Alcotest.(check int) "slots cap=2" 8 (Topology.Spread.slots tree ~level:1 ~cap:2);
  (match Topology.Spread.check_feasible tree ~level:1 ~cap:1 ~r:3 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Topology.Spread.check_feasible tree ~level:1 ~cap:1 ~r:5 with
  | Ok () -> Alcotest.fail "r=5 cap=1 on 4 racks should be infeasible"
  | Error e ->
      Alcotest.(check bool) "actionable message" true
        (String.length e > 0
        && String.starts_with ~prefix:"cannot place" e));
  Alcotest.(check bool) "simple raises when infeasible" true
    (raises_invalid (fun () ->
         Topology.Spread.simple tree ~level:1 ~cap:1 ~b:10 ~r:5))

let test_spread_cap_respected =
  qtest ~count:40 "spread planners respect the cap"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 2))
    (fun (seed, cap) ->
      let tree = Topology.Build.partition ~n:13 ~domains:5 () in
      let r = 3 and b = 30 in
      let feasible =
        Topology.Spread.slots tree ~level:1 ~cap >= r
      in
      if not feasible then QCheck2.assume_fail ()
      else begin
        let simple = Topology.Spread.simple tree ~level:1 ~cap ~b ~r in
        let rng = Combin.Rng.create seed in
        let random = Topology.Spread.random ~rng tree ~level:1 ~cap ~b ~r in
        Topology.Spread.max_per_domain simple tree ~level:1 <= cap
        && Topology.Spread.max_per_domain random tree ~level:1 <= cap
        && well_formed simple && well_formed random
      end)

let test_spread_simple_deterministic () =
  let tree = Topology.Build.regular ~racks:4 ~nodes_per_rack:5 in
  let a = Topology.Spread.simple tree ~level:1 ~cap:1 ~b:40 ~r:3 in
  let b = Topology.Spread.simple tree ~level:1 ~cap:1 ~b:40 ~r:3 in
  Alcotest.(check bool) "identical replicas" true
    (a.Placement.Layout.replicas = b.Placement.Layout.replicas)

let test_spread_immunity () =
  (* cap=1, s=2: one rack failure kills zero objects. *)
  let tree = Topology.Build.regular ~racks:5 ~nodes_per_rack:4 in
  let layout = Topology.Spread.simple tree ~level:1 ~cap:1 ~b:50 ~r:3 in
  let atk = Topology.Adversary.attack layout ~s:2 tree ~level:1 ~j:1 in
  Alcotest.(check int) "zero objects die" 0 atk.Topology.Adversary.failed_objects

(* ------------------------------------------------------------------ *)
(* Strategies *)

let test_strategies_registered () =
  Topology.Strategies.ensure_registered ();
  List.iter
    (fun name ->
      match Placement.Strategies.find name with
      | Some _ -> ()
      | None -> Alcotest.fail (name ^ " not registered"))
    [ "simple-spread"; "random-spread" ]

let test_strategies_config () =
  Topology.Strategies.clear_config ();
  let inst = Placement.Instance.make ~b:40 ~r:3 ~s:2 ~n:20 ~k:3 () in
  let (module Simple) =
    Option.get (Placement.Strategies.find "simple-spread")
  in
  (* No configuration: plan declines loudly, lower_bound quietly. *)
  Alcotest.(check bool) "plan declines" true
    (raises_invalid (fun () -> Simple.plan inst));
  Alcotest.(check (option int)) "lower_bound declines" None
    (Simple.lower_bound inst);
  let tree = Topology.Build.regular ~racks:4 ~nodes_per_rack:5 in
  Topology.Strategies.configure ~cap:1 tree;
  (match Topology.Strategies.config () with
  | None -> Alcotest.fail "config lost"
  | Some cfg ->
      Alcotest.(check int) "default level" 1 cfg.Topology.Strategies.level;
      Alcotest.(check int) "cap" 1 cfg.Topology.Strategies.cap);
  let layout = Simple.plan inst in
  Alcotest.(check int) "spread respected" 1
    (Topology.Spread.max_per_domain layout tree ~level:1);
  Alcotest.(check bool) "lower_bound now engages" true
    (Simple.lower_bound inst <> None);
  (* Wrong cluster size: decline again. *)
  let small = Placement.Instance.make ~b:10 ~r:3 ~s:2 ~n:9 ~k:3 () in
  Alcotest.(check bool) "n mismatch declines" true
    (raises_invalid (fun () -> Simple.plan small));
  Topology.Strategies.clear_config ();
  Alcotest.(check bool) "cleared" true (Topology.Strategies.config () = None)

let () =
  Alcotest.run "topology"
    [
      ( "tree",
        [
          Alcotest.test_case "make and accessors" `Quick test_tree_make;
          Alcotest.test_case "invalid trees" `Quick test_tree_invalid;
          Alcotest.test_case "builders" `Quick test_build;
          Alcotest.test_case "spec" `Quick test_spec;
          Alcotest.test_case "failset" `Quick test_failset;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "flat = node adversary" `Quick
            test_adversary_flat_equals_node;
          test_adversary_exhaustive_vs_bb;
          test_adversary_jobs_identical;
          Alcotest.test_case "frontier spawn depths = exhaustive" `Quick
            test_adversary_frontier_spawn_depths;
          test_adversary_greedy_le_exact;
          Alcotest.test_case "validation" `Quick test_adversary_validates;
        ] );
      ( "bound",
        [
          Alcotest.test_case "refinement" `Quick test_bound_refinement;
          test_bound_sound;
        ] );
      ( "spread",
        [
          Alcotest.test_case "feasibility" `Quick test_spread_feasibility;
          test_spread_cap_respected;
          Alcotest.test_case "deterministic" `Quick
            test_spread_simple_deterministic;
          Alcotest.test_case "immunity" `Quick test_spread_immunity;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "registered" `Quick test_strategies_registered;
          Alcotest.test_case "configure and decline" `Quick
            test_strategies_config;
        ] );
    ]
