(* Tests for the core placement library: Simple, Combo (DP), Random,
   the adversary, and both analysis modules. *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_validation () =
  let ok = Placement.Params.make ~b:10 ~r:3 ~s:2 ~n:9 ~k:3 in
  Alcotest.(check int) "b" 10 ok.Placement.Params.b;
  let bad b r s n k =
    match Placement.Params.validate { Placement.Params.b; r; s; n; k } with
    | Ok _ -> false
    | Error _ -> true
  in
  Alcotest.(check bool) "s > r" true (bad 10 3 4 9 4);
  Alcotest.(check bool) "k < s" true (bad 10 3 2 9 1);
  Alcotest.(check bool) "k >= n" true (bad 10 3 2 9 9);
  Alcotest.(check bool) "n < r" true (bad 10 3 2 2 2);
  Alcotest.(check bool) "b = 0" true (bad 0 3 2 9 2)

let test_load_cap () =
  let p = Placement.Params.make ~b:10 ~r:3 ~s:2 ~n:9 ~k:3 in
  Alcotest.(check int) "ceil(30/9)" 4 (Placement.Params.load_cap p);
  Alcotest.(check (float 1e-9)) "avg load" (30.0 /. 9.0) (Placement.Params.average_load p)

(* ------------------------------------------------------------------ *)
(* Layout *)

let layout_gen =
  QCheck2.Gen.(
    let* n = int_range 5 12 in
    let* r = int_range 2 (min 4 n) in
    let* b = int_range 1 25 in
    let* seed = int_range 0 10000 in
    let rng = Combin.Rng.create seed in
    let replicas = Array.init b (fun _ -> Combin.Rng.sample_distinct rng ~n ~k:r) in
    return (Placement.Layout.make ~n ~r replicas))

let test_layout_node_objects_inverse =
  qtest "node_objects inverts replicas" layout_gen (fun layout ->
      let node_objs = Placement.Layout.node_objects layout in
      let ok = ref true in
      Array.iteri
        (fun obj rep ->
          Array.iter
            (fun nd ->
              if not (Array.exists (fun o -> o = obj) node_objs.(nd)) then
                ok := false)
            rep)
        layout.Placement.Layout.replicas;
      let total = Array.fold_left (fun acc objs -> acc + Array.length objs) 0 node_objs in
      !ok && total = layout.Placement.Layout.r * Placement.Layout.b layout)

let test_layout_failed_objects_bruteforce =
  qtest "failed_objects matches per-object recount"
    QCheck2.Gen.(pair layout_gen (int_range 0 10000))
    (fun (layout, seed) ->
      let rng = Combin.Rng.create seed in
      let n = layout.Placement.Layout.n in
      let k = 1 + Combin.Rng.int rng (n - 1) in
      let failed = Combin.Rng.sample_distinct rng ~n ~k in
      List.for_all
        (fun s ->
          let direct =
            Array.fold_left
              (fun acc rep ->
                let hit =
                  Array.fold_left
                    (fun c nd -> if Combin.Intset.mem failed nd then c + 1 else c)
                    0 rep
                in
                if hit >= s then acc + 1 else acc)
              0 layout.Placement.Layout.replicas
          in
          direct = Placement.Layout.failed_objects layout ~s ~failed_nodes:failed)
        [ 1; 2; layout.Placement.Layout.r ])

let test_layout_scatter_widths () =
  (* STS(7) covers every pair, so each node co-hosts with all 6 others. *)
  let sts = Designs.Steiner_triple.make 7 in
  let layout = (Placement.Simple.of_design sts ~n:7 ~b:7).Placement.Simple.layout in
  Alcotest.(check (array int)) "full scatter" (Array.make 7 6)
    (Placement.Layout.scatter_widths layout);
  (* A single pair placement: the two nodes see each other only. *)
  let tiny = Placement.Layout.make ~n:4 ~r:2 [| [| 1; 3 |] |] in
  Alcotest.(check (array int)) "tiny scatter" [| 0; 1; 0; 1 |]
    (Placement.Layout.scatter_widths tiny)

let test_layout_concat_shift () =
  let l1 = Placement.Layout.make ~n:6 ~r:2 [| [| 0; 1 |]; [| 2; 3 |] |] in
  let l2 = Placement.Layout.make ~n:6 ~r:2 [| [| 4; 5 |] |] in
  let c = Placement.Layout.concat [ l1; l2 ] in
  Alcotest.(check int) "3 objects" 3 (Placement.Layout.b c);
  let shifted = Placement.Layout.shift l1 ~offset:4 ~n:10 in
  Alcotest.(check (array int)) "shifted replica" [| 4; 5 |]
    shifted.Placement.Layout.replicas.(0)

(* ------------------------------------------------------------------ *)
(* Analysis (Lemma 2 / Theorem 1 / Eqn 1) *)

let test_lambda_min () =
  (* STS(69): capacity 782 per copy. *)
  Alcotest.(check int) "b=600 -> 1" 1
    (Placement.Analysis.lambda_min ~x:1 ~nx:69 ~r:3 ~mu:1 ~b:600);
  Alcotest.(check int) "b=782 -> 1" 1
    (Placement.Analysis.lambda_min ~x:1 ~nx:69 ~r:3 ~mu:1 ~b:782);
  Alcotest.(check int) "b=783 -> 2" 2
    (Placement.Analysis.lambda_min ~x:1 ~nx:69 ~r:3 ~mu:1 ~b:783);
  Alcotest.(check int) "b=9600 -> 13" 13
    (Placement.Analysis.lambda_min ~x:1 ~nx:69 ~r:3 ~mu:1 ~b:9600)

let test_lambda_min_eqn1 =
  qtest "Eqn 1 bracketing"
    QCheck2.Gen.(pair (int_range 1 3000) (int_range 1 3))
    (fun (b, mu) ->
      let lambda = Placement.Analysis.lambda_min ~x:1 ~nx:69 ~r:3 ~mu ~b in
      let cap l = l * Combin.Binomial.exact 69 2 / Combin.Binomial.exact 3 2 in
      lambda mod mu = 0 && b <= cap lambda && (lambda = mu || cap (lambda - mu) < b))

let test_lb_avail_si () =
  (* b - floor(lambda C(k,2)/C(s,2)) for x = 1. *)
  let r1 = Placement.Analysis.lb_avail_si_report ~b:600 ~x:1 ~lambda:1 ~k:4 ~s:3 () in
  Alcotest.(check int) "s=3,k=4,l=1" (600 - 2) r1.Placement.Analysis.lb;
  Alcotest.(check int) "failed_ub" 2 r1.Placement.Analysis.failed_ub;
  Alcotest.(check bool) "not vacuous" false r1.Placement.Analysis.vacuous;
  let r2 = Placement.Analysis.lb_avail_si_report ~b:1200 ~x:1 ~lambda:2 ~k:5 ~s:2 () in
  Alcotest.(check int) "s=2,k=5,l=2" (1200 - 20) r2.Placement.Analysis.lb;
  (* A vacuous cell: the adversary bound exceeds b. *)
  let r3 = Placement.Analysis.lb_avail_si_report ~b:5 ~x:1 ~lambda:4 ~k:6 ~s:2 () in
  Alcotest.(check bool) "vacuous" true r3.Placement.Analysis.vacuous;
  Alcotest.(check int) "clamped to 0" 0 r3.Placement.Analysis.lb_clamped

let test_theorem1 () =
  (match Placement.Analysis.theorem1 ~x:1 ~nx:69 ~r:3 ~s:3 ~k:5 ~mu:1 with
  | None -> Alcotest.fail "precondition should hold"
  | Some { c; alpha } ->
      Alcotest.(check bool) "c > 1" true (c > 1.0);
      Alcotest.(check bool) "alpha > 0" true (alpha > 0.0);
      (* s = r: c = 1/(1 - C(k,2)/C(69,2)) *)
      let expect = 1.0 /. (1.0 -. (10.0 /. 2346.0)) in
      Alcotest.(check (float 1e-9)) "c closed form" expect c);
  (* Precondition failure: k huge. *)
  Alcotest.(check bool) "None when c <= 0" true
    (Placement.Analysis.theorem1 ~x:0 ~nx:10 ~r:5 ~s:1 ~k:9 ~mu:1 = None)

let test_competitive_limit () =
  Alcotest.(check (float 1e-9)) "1 - k(k-1)/(n(n-1))"
    (1.0 -. (20.0 /. 4692.0))
    (Placement.Analysis.competitive_limit_fraction ~x:1 ~nx:69 ~k:5)

(* ------------------------------------------------------------------ *)
(* Simple placements *)

let test_simple_of_design_lambda () =
  let sts = Designs.Steiner_triple.make 9 in
  (* capacity 12 *)
  let s1 = Placement.Simple.of_design sts ~n:12 ~b:10 in
  Alcotest.(check int) "lambda 1" 1 s1.Placement.Simple.lambda;
  let s2 = Placement.Simple.of_design sts ~n:12 ~b:13 in
  Alcotest.(check int) "lambda 2" 2 s2.Placement.Simple.lambda;
  Alcotest.(check int) "b objects" 13 (Placement.Layout.b s2.Placement.Simple.layout)

(* Direct check of Definition 2: no (x+1)-subset of nodes hosts more than
   lambda objects in common. *)
let simple_property layout ~x ~lambda =
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun rep ->
      Combin.Subset.sub_iter rep ~k:(x + 1) (fun sub ->
          let key = Array.to_list sub in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))))
    layout.Placement.Layout.replicas;
  Hashtbl.fold (fun _ c acc -> acc && c <= lambda) counts true

let test_simple_satisfies_definition2 =
  qtest ~count:40 "Simple placements satisfy Definition 2"
    QCheck2.Gen.(int_range 1 60)
    (fun b ->
      let sts = Designs.Steiner_triple.make 13 in
      let s = Placement.Simple.of_design sts ~n:15 ~b in
      simple_property s.Placement.Simple.layout ~x:1 ~lambda:s.Placement.Simple.lambda)

let test_simple_spread_keeps_definition2 =
  qtest ~count:40 "spread copies still satisfy Definition 2"
    QCheck2.Gen.(int_range 13 80)
    (fun b ->
      let sts = Designs.Steiner_triple.make 13 in
      let s = Placement.Simple.of_design ~spread:true sts ~n:17 ~b in
      simple_property s.Placement.Simple.layout ~x:1
        ~lambda:s.Placement.Simple.lambda)

let test_simple_spread_same_lambda () =
  let sts = Designs.Steiner_triple.make 13 in
  let plain = Placement.Simple.of_design sts ~n:17 ~b:80 in
  let spread = Placement.Simple.of_design ~spread:true sts ~n:17 ~b:80 in
  Alcotest.(check int) "same lambda" plain.Placement.Simple.lambda
    spread.Placement.Simple.lambda;
  (* Spreading must reach nodes beyond the design's 13 points. *)
  let loads = Placement.Layout.loads spread.Placement.Simple.layout in
  Alcotest.(check bool) "extra nodes used" true
    (Array.exists (fun nd -> loads.(nd) > 0) [| 13; 14; 15; 16 |])

let test_simple_of_entry_complete () =
  (* Complete (t = r) entries stream lazily. *)
  match Designs.Registry.best ~strength:3 ~block_size:3 ~max_v:10 () with
  | None -> Alcotest.fail "no complete entry"
  | Some e ->
      let s = Placement.Simple.of_entry e ~n:10 ~b:50 in
      Alcotest.(check int) "50 objects" 50 (Placement.Layout.b s.Placement.Simple.layout);
      Alcotest.(check bool) "Definition 2 for x=2" true
        (simple_property s.Placement.Simple.layout ~x:2 ~lambda:s.Placement.Simple.lambda)

let test_simple_lower_bound_nonneg =
  qtest ~count:40 "lower_bound clamped at 0"
    QCheck2.Gen.(pair (int_range 1 80) (int_range 2 6))
    (fun (b, k) ->
      let sts = Designs.Steiner_triple.make 9 in
      let s = Placement.Simple.of_design sts ~n:12 ~b in
      Placement.Simple.lower_bound s ~k ~s:2 >= 0)

(* ------------------------------------------------------------------ *)
(* Combo DP *)

let synthetic_levels_gen s =
  QCheck2.Gen.(
    let* caps =
      array_size (return s) (int_range 1 40)
    in
    let* mus = array_size (return s) (int_range 1 3) in
    return
      (Array.init s (fun x ->
           {
             Placement.Combo.x;
             nx = 100;
             mu = mus.(x);
             cap_mu = caps.(x) * mus.(x);
             entry = None;
           })))

let test_combo_dp_matches_bruteforce =
  qtest ~count:60 "DP equals exhaustive search"
    QCheck2.Gen.(
      let* s = int_range 1 3 in
      let* levels = synthetic_levels_gen s in
      let* b = int_range 1 120 in
      let* k = int_range s 8 in
      return (s, levels, b, k))
    (fun (s, levels, b, k) ->
      let p = Placement.Params.make ~b ~r:8 ~s ~n:100 ~k in
      let cfg = Placement.Combo.optimize ~levels p in
      let brute = Placement.Combo.brute_force_lb p ~levels in
      cfg.Placement.Combo.lb = brute)

let test_combo_assignment_covers_b =
  qtest ~count:60 "assigned sums to b and respects capacity"
    QCheck2.Gen.(
      let* s = int_range 1 3 in
      let* levels = synthetic_levels_gen s in
      let* b = int_range 1 150 in
      return (s, levels, b))
    (fun (s, levels, b) ->
      let p = Placement.Params.make ~b ~r:8 ~s ~n:100 ~k:s in
      let cfg = Placement.Combo.optimize ~levels p in
      let total = Array.fold_left ( + ) 0 cfg.Placement.Combo.assigned in
      total = b
      && Array.for_all
           (fun x ->
             let lam = cfg.Placement.Combo.lambdas.(x) in
             let lvl = levels.(x) in
             lam mod lvl.Placement.Combo.mu = 0
             && cfg.Placement.Combo.assigned.(x)
                <= lam / lvl.Placement.Combo.mu * lvl.Placement.Combo.cap_mu)
           (Array.init s (fun i -> i)))

let test_combo_lb_sound_small () =
  (* The availability lower bound must hold against the exact adversary on
     materialized placements. *)
  List.iter
    (fun (n, r, s, b, k) ->
      let p = Placement.Params.make ~b ~r ~s ~n ~k in
      let cfg = Placement.Combo.optimize p in
      let layout = Placement.Combo.materialize cfg in
      let attack = Placement.Adversary.exact layout ~s ~k in
      Alcotest.(check bool) "exact search completed" true
        attack.Placement.Adversary.exact;
      let avail = Placement.Adversary.avail layout ~s attack in
      Alcotest.(check bool)
        (Printf.sprintf "lb %d <= avail %d (n=%d r=%d s=%d b=%d k=%d)"
           cfg.Placement.Combo.lb avail n r s b k)
        true
        (cfg.Placement.Combo.lb <= avail))
    [
      (9, 3, 2, 20, 2);
      (9, 3, 2, 20, 3);
      (13, 3, 3, 40, 3);
      (13, 3, 2, 30, 4);
      (16, 4, 2, 25, 2);
      (16, 4, 3, 25, 3);
    ]

let test_combo_lb_avail_co_at_k () =
  let p = Placement.Params.make ~b:1200 ~r:5 ~s:3 ~n:71 ~k:6 in
  let cfg = Placement.Combo.optimize p in
  Alcotest.(check int) "Eqn 4 at configured k" cfg.Placement.Combo.lb
    (Placement.Combo.lb_avail_co cfg ~k:6);
  Alcotest.(check bool) "monotone in k" true
    (Placement.Combo.lb_avail_co cfg ~k:7 <= Placement.Combo.lb_avail_co cfg ~k:6)

let test_combo_insufficient_capacity () =
  let levels =
    [| { Placement.Combo.x = 0; nx = 0; mu = 1; cap_mu = 0; entry = None } |]
  in
  Alcotest.(check bool) "raises on impossible b" true
    (try
       ignore
         (Placement.Combo.optimize ~levels
            (Placement.Params.make ~b:10 ~r:3 ~s:1 ~n:9 ~k:1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Adaptive (online) placement *)

let test_adaptive_matches_offline () =
  (* Pure growth should track the offline DP exactly at design-capacity
     multiples (n=31, STS level capacity 155). *)
  let t = Placement.Adaptive.create ~n:31 ~r:3 ~s:2 ~k:3 () in
  List.iter
    (fun target ->
      let deficit = target - Placement.Adaptive.size t in
      ignore (Placement.Adaptive.add_many t deficit);
      Alcotest.(check int)
        (Printf.sprintf "b=%d online = offline" target)
        (Placement.Adaptive.optimal_bound t)
        (Placement.Adaptive.lower_bound t))
    [ 155; 310; 600 ]

let test_adaptive_bound_sound () =
  let t = Placement.Adaptive.create ~n:13 ~r:3 ~s:2 ~k:3 () in
  ignore (Placement.Adaptive.add_many t 60);
  let layout = Placement.Adaptive.layout t in
  let attack = Placement.Adversary.exact layout ~s:2 ~k:3 in
  Alcotest.(check bool) "exact adversary" true attack.Placement.Adversary.exact;
  Alcotest.(check bool) "lb <= avail" true
    (Placement.Adaptive.lower_bound t
    <= Placement.Adversary.avail layout ~s:2 attack)

let test_adaptive_churn_invariants =
  (* The churn-engine contract: not just at the end, but after EVERY
     add/remove the bookkeeping must be consistent and the live Lemma-3
     bound must stay at or below what the offline DP would promise for
     the same population. *)
  qtest ~count:25 "invariants survive random churn at every step"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 10 120))
    (fun (seed, ops) ->
      let rng = Combin.Rng.create seed in
      let t = Placement.Adaptive.create ~n:13 ~r:3 ~s:2 ~k:3 () in
      let live = ref [] in
      for _ = 1 to ops do
        if !live = [] || Combin.Rng.int rng 3 > 0 then
          live := Placement.Adaptive.add t :: !live
        else begin
          let arr = Array.of_list !live in
          let victim = arr.(Combin.Rng.int rng (Array.length arr)) in
          Placement.Adaptive.remove t victim;
          live := List.filter (fun id -> id <> victim) !live
        end;
        Placement.Adaptive.check_invariants t;
        assert (
          Placement.Adaptive.lower_bound t
          <= Placement.Adaptive.optimal_bound t)
      done;
      Placement.Adaptive.size t = List.length !live
      && List.for_all
           (fun id ->
             let rep = Placement.Adaptive.replica_set t id in
             Array.length rep = 3 && Combin.Intset.is_sorted_distinct rep)
           !live)

let test_adaptive_layout_definition2 () =
  (* The live layout must satisfy Definition 2 at the effective λ of
     each level. *)
  let t = Placement.Adaptive.create ~n:13 ~r:3 ~s:2 ~k:3 () in
  let ids = Placement.Adaptive.add_many t 80 in
  List.iteri (fun i id -> if i mod 3 = 0 then Placement.Adaptive.remove t id) ids;
  ignore (Placement.Adaptive.add_many t 30);
  let lambdas = Placement.Adaptive.lambdas t in
  (* Group live objects per level and check each level separately. *)
  let per_level = Hashtbl.create 4 in
  Hashtbl.reset per_level;
  let layout = Placement.Adaptive.layout t in
  ignore layout;
  let live =
    List.filter
      (fun id ->
        match Placement.Adaptive.replica_set t id with
        | _ -> true
        | exception Not_found -> false)
      (List.init 200 (fun i -> i))
  in
  List.iter
    (fun id ->
      let x = Placement.Adaptive.level_of t id in
      let cur = Option.value ~default:[] (Hashtbl.find_opt per_level x) in
      Hashtbl.replace per_level x (Placement.Adaptive.replica_set t id :: cur))
    live;
  Hashtbl.iter
    (fun x reps ->
      let counts = Hashtbl.create 64 in
      List.iter
        (fun rep ->
          Combin.Subset.sub_iter rep ~k:(x + 1) (fun sub ->
              let key = Array.to_list sub in
              Hashtbl.replace counts key
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))))
        reps;
      Hashtbl.iter
        (fun _ c ->
          Alcotest.(check bool)
            (Printf.sprintf "Definition 2 at level %d" x)
            true
            (c <= lambdas.(x)))
        counts)
    per_level

let test_adaptive_remove_unknown () =
  let t = Placement.Adaptive.create ~n:13 ~r:3 ~s:2 ~k:3 () in
  Alcotest.check_raises "remove unknown" Not_found (fun () ->
      Placement.Adaptive.remove t 42)

let test_adaptive_ids_not_reused () =
  let t = Placement.Adaptive.create ~n:13 ~r:3 ~s:2 ~k:3 () in
  let a = Placement.Adaptive.add t in
  Placement.Adaptive.remove t a;
  let b = Placement.Adaptive.add t in
  Alcotest.(check bool) "fresh id" true (b <> a)

(* ------------------------------------------------------------------ *)
(* Random placement *)

let test_random_respects_cap =
  qtest ~count:40 "load cap respected"
    QCheck2.Gen.(
      let* n = int_range 6 40 in
      let* r = int_range 2 5 in
      let* b = int_range 1 200 in
      let* seed = int_range 0 100000 in
      return (n, max 2 (min r n), b, seed))
    (fun (n, r, b, seed) ->
      let s = 1 and k = 1 in
      let p = Placement.Params.make ~b ~r ~s ~n ~k in
      let rng = Combin.Rng.create seed in
      let layout = Placement.Random_placement.place ~rng p in
      Placement.Layout.b layout = b
      && Placement.Layout.is_load_balanced layout ~cap:(Placement.Params.load_cap p))

let test_random_deterministic () =
  let p = Placement.Params.make ~b:60 ~r:3 ~s:2 ~n:12 ~k:2 in
  let l1 = Placement.Random_placement.place ~rng:(Combin.Rng.create 5) p in
  let l2 = Placement.Random_placement.place ~rng:(Combin.Rng.create 5) p in
  Alcotest.(check bool) "same seed, same layout" true
    (l1.Placement.Layout.replicas = l2.Placement.Layout.replicas);
  let l3 = Placement.Random_placement.place ~rng:(Combin.Rng.create 6) p in
  Alcotest.(check bool) "different seed differs" true
    (l1.Placement.Layout.replicas <> l3.Placement.Layout.replicas)

let test_random_unconstrained_valid () =
  let p = Placement.Params.make ~b:100 ~r:4 ~s:2 ~n:20 ~k:2 in
  let layout =
    Placement.Random_placement.place_unconstrained ~rng:(Combin.Rng.create 3) p
  in
  Alcotest.(check int) "b objects" 100 (Placement.Layout.b layout)

(* ------------------------------------------------------------------ *)
(* Adversary *)

let brute_force_attack layout ~s ~k =
  let n = layout.Placement.Layout.n in
  let best = ref (-1) in
  Combin.Subset.iter ~n ~k (fun failed ->
      let f = Placement.Layout.failed_objects layout ~s ~failed_nodes:failed in
      if f > !best then best := f);
  !best

let small_layout_gen =
  QCheck2.Gen.(
    let* n = int_range 6 10 in
    let* r = int_range 2 3 in
    let* b = int_range 3 20 in
    let* seed = int_range 0 10000 in
    let rng = Combin.Rng.create seed in
    let replicas = Array.init b (fun _ -> Combin.Rng.sample_distinct rng ~n ~k:r) in
    return (Placement.Layout.make ~n ~r replicas))

let test_adversary_exact_is_optimal =
  qtest ~count:40 "branch-and-bound equals subset enumeration"
    QCheck2.Gen.(triple small_layout_gen (int_range 1 3) (int_range 1 4))
    (fun (layout, s, k) ->
      let s = min s layout.Placement.Layout.r in
      let k = min k (layout.Placement.Layout.n - 1) in
      if k < 1 then true
      else begin
        let exact = Placement.Adversary.exact layout ~s ~k in
        exact.Placement.Adversary.exact
        && exact.Placement.Adversary.failed_objects = brute_force_attack layout ~s ~k
        && Placement.Adversary.eval layout ~s exact.Placement.Adversary.failed_nodes
           = exact.Placement.Adversary.failed_objects
      end)

let test_adversary_ordering =
  qtest ~count:30 "greedy <= local search <= exact"
    QCheck2.Gen.(pair small_layout_gen (int_range 0 1000))
    (fun (layout, seed) ->
      let s = 2 and k = 3 in
      if layout.Placement.Layout.n <= k || layout.Placement.Layout.r < s then true
      else begin
        let rng = Combin.Rng.create seed in
        let g = Placement.Adversary.greedy layout ~s ~k in
        let l = Placement.Adversary.local_search ~rng layout ~s ~k in
        let e = Placement.Adversary.exact layout ~s ~k in
        g.Placement.Adversary.failed_objects <= l.Placement.Adversary.failed_objects
        && l.Placement.Adversary.failed_objects <= e.Placement.Adversary.failed_objects
      end)

let test_adversary_attack_shape =
  qtest ~count:30 "attack has k sorted distinct nodes"
    small_layout_gen
    (fun layout ->
      let k = 3 in
      if layout.Placement.Layout.n <= k then true
      else begin
        let a = Placement.Adversary.greedy layout ~s:1 ~k in
        Array.length a.Placement.Adversary.failed_nodes = k
        && Combin.Intset.is_sorted_distinct a.Placement.Adversary.failed_nodes
      end)

(* PR 10 (DESIGN.md §15): the pre-frontier exact search split its node
   budget evenly across first-choice branches, so the heaviest subtree
   starved while its siblings left most of the global allowance unused.
   This frozen copy of that static-split search is the reference the
   starvation test derives its budget from: each branch owns
   [budget / (n - k + 1)] nodes and prunes against its own local best
   (seeded from greedy, never re-reading a shared incumbent), exactly
   as the old implementation did. *)
let static_split_exact layout ~s ~k ~budget =
  let n = layout.Placement.Layout.n in
  let kn0 = Placement.Kernel.make layout ~s in
  let degrees = Array.init n (Placement.Kernel.degree kn0) in
  let top_deg = Placement.Bb.top_degrees ~degrees ~n ~k in
  let seed =
    (Placement.Adversary.greedy layout ~s ~k).Placement.Adversary.failed_objects
  in
  let branches = n - k + 1 in
  let branch_budget = max 1 (budget / branches) in
  let best = ref seed and truncated = ref false and max_branch = ref 0 in
  for nd0 = 0 to branches - 1 do
    let st = Placement.Kernel.copy kn0 in
    let branch_best = ref seed in
    let visited = ref 0 and btr = ref false in
    let rec go start depth =
      incr visited;
      if !visited > branch_budget then btr := true
      else if depth = k then begin
        if Placement.Kernel.killed st > !branch_best then
          branch_best := Placement.Kernel.killed st
      end
      else if
        Placement.Kernel.killed st + top_deg.(start).(k - depth) > !branch_best
      then
        for nd = start to n - (k - depth) do
          if not !btr then begin
            Placement.Kernel.add st nd;
            go (nd + 1) (depth + 1);
            Placement.Kernel.remove st nd
          end
        done
    in
    Placement.Kernel.add st nd0;
    go (nd0 + 1) 1;
    if !btr then truncated := true;
    if !visited > !max_branch then max_branch := !visited;
    if !branch_best > !best then best := !branch_best
  done;
  (!best, !truncated, !max_branch)

let test_exact_budget_starvation () =
  let n = 24 and s = 2 and k = 4 in
  let p = Placement.Params.make ~b:200 ~r:3 ~s ~n ~k in
  let layout = Placement.Random_placement.place ~rng:(Combin.Rng.create 42) p in
  (* Unstarved reference run, to size the squeeze. *)
  let _, tr0, max_branch = static_split_exact layout ~s ~k ~budget:max_int in
  Alcotest.(check bool) "reference run completes" false tr0;
  (* A total allowance the static split cannot survive — its heaviest
     branch is granted one node too few — but that covers the whole
     tree when pooled, because branch sizes are heavily skewed. *)
  let budget = (max_branch - 1) * (n - k + 1) in
  let _, tr_old, _ = static_split_exact layout ~s ~k ~budget in
  Alcotest.(check bool) "static split starves" true tr_old;
  let oracle = Placement.Adversary.exact_seq layout ~s ~k in
  let frontier = Placement.Adversary.exact ~budget layout ~s ~k in
  Alcotest.(check bool) "frontier completes on the same budget" true
    frontier.Placement.Adversary.exact;
  Alcotest.(check int) "matches the sequential oracle"
    oracle.Placement.Adversary.failed_objects
    frontier.Placement.Adversary.failed_objects;
  Alcotest.(check (array int)) "same winning set"
    oracle.Placement.Adversary.failed_nodes
    frontier.Placement.Adversary.failed_nodes

(* ------------------------------------------------------------------ *)
(* Kernel *)

let test_layout_node_objects_memoized =
  qtest ~count:30 "node_objects is memoized (physically equal)" layout_gen
    (fun layout ->
      Placement.Layout.node_objects layout == Placement.Layout.node_objects layout)

(* Naive mirror of the kernel: a plain per-object counter array updated
   from the inverted index, with killed recounted from scratch. *)
let naive_killed layout ~s failed =
  Placement.Layout.failed_objects layout ~s
    ~failed_nodes:(Combin.Intset.of_array (Array.of_list failed))

let test_kernel_incremental_vs_naive =
  qtest ~count:60 "incremental killed = naive failed_objects under churn"
    QCheck2.Gen.(triple layout_gen (int_range 1 4) (int_range 0 10000))
    (fun (layout, s, seed) ->
      let s = min s layout.Placement.Layout.r in
      let n = layout.Placement.Layout.n in
      let rng = Combin.Rng.create seed in
      let kn = Placement.Kernel.make layout ~s in
      let failed = ref [] in
      let ok = ref true in
      (* Interleaved add/remove: bias toward adds so the set grows, with
         enough removes to exercise the undo path. *)
      for _ = 1 to 60 do
        let nd = Combin.Rng.int rng n in
        if List.mem nd !failed then begin
          Placement.Kernel.remove kn nd;
          failed := List.filter (fun x -> x <> nd) !failed
        end
        else if Combin.Rng.int rng 4 < 3 then begin
          Placement.Kernel.add kn nd;
          failed := nd :: !failed
        end;
        if Placement.Kernel.killed kn <> naive_killed layout ~s !failed then
          ok := false
      done;
      (* One-shot check agrees with the incremental state, and hits
         match a per-object recount. *)
      let set = Combin.Intset.of_array (Array.of_list !failed) in
      !ok
      && Placement.Kernel.check kn set = Placement.Kernel.killed kn
      && Placement.Kernel.failed_units kn = set
      && Array.for_all
           (fun obj ->
             let rep = layout.Placement.Layout.replicas.(obj) in
             let h =
               Array.fold_left
                 (fun c nd -> if Combin.Intset.mem set nd then c + 1 else c)
                 0 rep
             in
             Placement.Kernel.hits kn obj = h)
           (Array.init (Placement.Layout.b layout) Fun.id))

(* Reference greedy: full rescan per pick over a hand-maintained hit
   counter array — the pre-kernel algorithm, (newly, progress) lex with
   lowest-id ties.  select_greedy must be byte-identical. *)
let scan_greedy layout ~s ~k =
  let n = layout.Placement.Layout.n in
  let node_objs = Placement.Layout.node_objects layout in
  let hits = Array.make (Placement.Layout.b layout) 0 in
  let chosen = Array.make n false in
  Array.init k (fun _ ->
      let best = ref (-1) and best_ne = ref (-1) and best_pr = ref (-1) in
      for nd = 0 to n - 1 do
        if not chosen.(nd) then begin
          let ne = ref 0 and pr = ref 0 in
          Array.iter
            (fun obj ->
              if hits.(obj) + 1 = s then incr ne;
              if hits.(obj) < s then incr pr)
            node_objs.(nd);
          (* Strict lex improvement only: ascending scan keeps the
             lowest id on ties. *)
          if !ne > !best_ne || (!ne = !best_ne && !pr > !best_pr) then begin
            best := nd;
            best_ne := !ne;
            best_pr := !pr
          end
        end
      done;
      chosen.(!best) <- true;
      Array.iter (fun obj -> hits.(obj) <- hits.(obj) + 1) node_objs.(!best);
      !best)

let test_kernel_lazy_greedy_identical =
  qtest ~count:60 "CELF lazy-greedy = full-rescan greedy, pick by pick"
    QCheck2.Gen.(triple layout_gen (int_range 1 4) (int_range 1 6))
    (fun (layout, s, k) ->
      let s = min s layout.Placement.Layout.r in
      let k = min k (layout.Placement.Layout.n - 1) in
      let kn = Placement.Kernel.make layout ~s in
      let picks, _ = Placement.Kernel.select_greedy kn ~picks:k in
      picks = scan_greedy layout ~s ~k)

(* Group kernel with multiplicity: partition the nodes into fewer
   domains than r, so a domain holds several replicas of each object and
   its (newly, progress) counts range up to its degree ≈ r·b/domains — in
   particular past b.  Regression for the packed-objective base: with
   base b+1, packed(1, 0) = packed(0, b+1), and the lazy-greedy could
   prefer a domain with large progress over one that actually kills an
   object.  The reference is the pre-kernel full rescan over domains. *)
let scan_greedy_groups ~s ~b groups ~picks =
  let nu = Array.length groups in
  let hits = Array.make b 0 in
  let chosen = Array.make nu false in
  Array.init picks (fun _ ->
      let best = ref (-1) and best_ne = ref (-1) and best_pr = ref (-1) in
      for u = 0 to nu - 1 do
        if not chosen.(u) then begin
          let ne = ref 0 and pr = ref 0 in
          Array.iter
            (fun obj ->
              if hits.(obj) + 1 = s then incr ne;
              if hits.(obj) < s then incr pr)
            groups.(u);
          if !ne > !best_ne || (!ne = !best_ne && !pr > !best_pr) then begin
            best := u;
            best_ne := !ne;
            best_pr := !pr
          end
        end
      done;
      chosen.(!best) <- true;
      Array.iter (fun obj -> hits.(obj) <- hits.(obj) + 1) groups.(!best);
      !best)

let test_kernel_group_greedy_identical =
  qtest ~count:80 "group lazy-greedy = rescan when domains < r"
    QCheck2.Gen.(
      let* layout = layout_gen in
      let* domains = int_range 2 (max 2 (layout.Placement.Layout.r - 1)) in
      let* s = int_range 1 layout.Placement.Layout.r in
      let* seed = int_range 0 10000 in
      return (layout, domains, s, seed))
    (fun (layout, domains, s, seed) ->
      let n = layout.Placement.Layout.n in
      let domains = min domains (n - 1) in
      let node_objs = Placement.Layout.node_objects layout in
      let rng = Combin.Rng.create seed in
      (* Skewed partition: a node permutation split at random cut points,
         so domain degrees (and hence progress values) vary widely and
         routinely exceed b; coinciding cuts yield empty domains. *)
      let perm = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Combin.Rng.int rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let cuts =
        Array.init (domains - 1) (fun _ -> 1 + Combin.Rng.int rng (n - 1))
      in
      Array.sort compare cuts;
      let bounds = Array.concat [ [| 0 |]; cuts; [| n |] ] in
      let groups =
        Array.init domains (fun d ->
            Array.concat
              (List.init
                 (bounds.(d + 1) - bounds.(d))
                 (fun i -> node_objs.(perm.(bounds.(d) + i)))))
      in
      let b = Placement.Layout.b layout in
      let picks = 1 + Combin.Rng.int rng (domains - 1) in
      let kn = Placement.Kernel.of_groups ~s ~b groups in
      let kernel_picks, _ = Placement.Kernel.select_greedy kn ~picks in
      kernel_picks = scan_greedy_groups ~s ~b groups ~picks
      && Placement.Kernel.killed kn
         = Placement.Kernel.check (Placement.Kernel.of_groups ~s ~b groups)
             (Combin.Intset.of_array kernel_picks))

(* Arbitrary multiplicity groups, no layout behind them: [domains]
   units each holding a bag of object ids in [0, b), duplicates
   allowed. *)
let groups_gen =
  QCheck2.Gen.(
    let* b = int_range 1 40 in
    let* domains = int_range 1 8 in
    let* groups =
      array_size (return domains)
        (array_size (int_range 0 12) (int_range 0 (b - 1)))
    in
    let* s = int_range 1 4 in
    let* seed = int_range 0 10000 in
    return (b, s, groups, seed))

let test_kernel_group_churn =
  qtest ~count:80 "of_groups counters = naive bag recount under churn"
    groups_gen
    (fun (b, s, groups, seed) ->
      let nu = Array.length groups in
      let rng = Combin.Rng.create seed in
      let kn = Placement.Kernel.of_groups ~s ~b groups in
      let hits = Array.make b 0 in
      let failed = ref [] in
      let ok = ref true in
      for _ = 1 to 40 do
        let u = Combin.Rng.int rng nu in
        if List.mem u !failed then begin
          Placement.Kernel.remove kn u;
          Array.iter (fun obj -> hits.(obj) <- hits.(obj) - 1) groups.(u);
          failed := List.filter (fun x -> x <> u) !failed
        end
        else if Combin.Rng.int rng 4 < 3 then begin
          Placement.Kernel.add kn u;
          Array.iter (fun obj -> hits.(obj) <- hits.(obj) + 1) groups.(u);
          failed := u :: !failed
        end;
        let killed = ref 0 in
        Array.iter (fun h -> if h >= s then incr killed) hits;
        if Placement.Kernel.killed kn <> !killed then ok := false
      done;
      !ok)

let test_kernel_check_bitset_vs_scratch =
  (* [check] takes the per-object bitset path on multiplicity-free
     incidences and falls back to the scratch counters otherwise; both
     flavours must agree with [check_scratch] on every unit set. *)
  qtest ~count:80 "check = check_scratch on both incidence flavours"
    QCheck2.Gen.(
      let* layout = layout_gen in
      let* s = int_range 1 layout.Placement.Layout.r in
      let* seed = int_range 0 10000 in
      return (layout, s, seed))
    (fun (layout, s, seed) ->
      let n = layout.Placement.Layout.n in
      let rng = Combin.Rng.create seed in
      let subset () =
        Combin.Intset.of_array
          (Array.of_list
             (List.filter
                (fun _ -> Combin.Rng.int rng 3 = 0)
                (List.init n Fun.id)))
      in
      let kn = Placement.Kernel.make layout ~s in
      let node_objs = Placement.Layout.node_objects layout in
      (* Duplicated rows force multiplicity, hence the scratch path. *)
      let groups = Array.init n (fun u -> Array.append node_objs.(u) node_objs.(u)) in
      let gn = Placement.Kernel.of_groups ~s ~b:(Placement.Layout.b layout) groups in
      let ok = ref true in
      for _ = 1 to 8 do
        let set = subset () in
        if Placement.Kernel.check kn set <> Placement.Kernel.check_scratch kn set
        then ok := false;
        if Placement.Kernel.check gn set <> Placement.Kernel.check_scratch gn set
        then ok := false
      done;
      !ok)

let test_kernel_sharded_identical =
  (* Forcing shards > 1 on instances far below the automatic sharding
     threshold: the sharded reduce must reproduce the sequential scan's
     picks (and hence final killed) exactly, pool or no pool. *)
  qtest ~count:60 "select_greedy_sharded = select_greedy, forced shards"
    QCheck2.Gen.(
      let* layout = layout_gen in
      let* s = int_range 1 layout.Placement.Layout.r in
      let* shards = int_range 2 5 in
      let* picks = int_range 1 4 in
      return (layout, s, shards, picks))
    (fun (layout, s, shards, picks) ->
      let picks = min picks layout.Placement.Layout.n in
      let seq = Placement.Kernel.make layout ~s in
      let sh = Placement.Kernel.make layout ~s in
      let seq_picks, _ = Placement.Kernel.select_greedy seq ~picks in
      let sh_picks, _ =
        Placement.Kernel.select_greedy_sharded ~shards sh ~picks
      in
      seq_picks = sh_picks
      && Placement.Kernel.killed seq = Placement.Kernel.killed sh)

(* The misordering pinned exactly: b = 3, s = 2.  Unit 0 wins pick 1 on
   progress (degree 8) and leaves object 1 one hit short of s.  At pick
   2 the lex objective prefers unit 1 ((newly 1, progress 1): object 1
   dies) over unit 2 ((0, 6): six copies of object 0, all below s) —
   but packing with base b+1 = 4 scores them 5 vs 6 and flips the
   pick, which is why the base must exceed the largest unit degree. *)
let test_kernel_group_packed_base () =
  let groups =
    [| [| 2; 2; 2; 2; 2; 2; 2; 1 |]; [| 1 |]; [| 0; 0; 0; 0; 0; 0 |] |]
  in
  let kn = Placement.Kernel.of_groups ~s:2 ~b:3 groups in
  let picks, _ = Placement.Kernel.select_greedy kn ~picks:2 in
  Alcotest.(check (array int)) "lex picks" [| 0; 1 |] picks;
  Alcotest.(check int) "killed" 2 (Placement.Kernel.killed kn)

let test_kernel_double_add () =
  let layout =
    Placement.Layout.make ~n:4 ~r:2 [| [| 0; 1 |]; [| 2; 3 |]; [| 0; 2 |] |]
  in
  let kn = Placement.Kernel.make layout ~s:2 in
  Placement.Kernel.add kn 0;
  Alcotest.check_raises "double add"
    (Invalid_argument "Kernel.add: unit already failed") (fun () ->
      Placement.Kernel.add kn 0);
  Alcotest.check_raises "remove absent"
    (Invalid_argument "Kernel.remove: unit not failed") (fun () ->
      Placement.Kernel.remove kn 1);
  Placement.Kernel.add kn 2;
  (* failed = {0,2}: obj 2 on {0,2} dead *)
  Alcotest.(check int) "one dead" 1 (Placement.Kernel.killed kn);
  Placement.Kernel.add kn 1;
  (* failed = {0,1,2}: obj 0 on {0,1} dead, obj 2 on {0,2} dead *)
  Alcotest.(check int) "two dead" 2 (Placement.Kernel.killed kn);
  let copy = Placement.Kernel.copy kn in
  Alcotest.(check int) "copy duplicates state" 2 (Placement.Kernel.killed copy);
  Placement.Kernel.remove copy 1;
  Alcotest.(check int) "copy is independent" 2 (Placement.Kernel.killed kn);
  Alcotest.(check int) "copied counters undo" 1 (Placement.Kernel.killed copy);
  Placement.Kernel.reset kn;
  Alcotest.(check int) "reset" 0 (Placement.Kernel.killed kn);
  Alcotest.(check (array int)) "no failed units" [||]
    (Placement.Kernel.failed_units kn)

(* ------------------------------------------------------------------ *)
(* Dynamic kernel (Kernel.Dyn): object churn *)

(* Random interleaving of object creates/deletes and unit
   fails/recovers; after every operation the incremental state must
   agree with the from-scratch recount, and the incremental adversary
   must be bit-identical (picks, damage, scan stats) to select_greedy
   on a freshly frozen flat kernel over the same live objects. *)
let test_kernel_dyn_oracle =
  qtest ~count:30 "Dyn ≡ from-scratch under random churn"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 10 150))
    (fun (seed, ops) ->
      let n = 10 and r = 3 and s = 2 and k = 3 in
      let rng = Combin.Rng.create seed in
      let dyn = Placement.Kernel.Dyn.create ~units:n ~s in
      for _ = 1 to ops do
        let b = Placement.Kernel.Dyn.objects dyn in
        let nfailed =
          Array.length (Placement.Kernel.Dyn.failed_units dyn)
        in
        let d = Combin.Rng.int rng 100 in
        if d < 50 || b = 0 then
          ignore
            (Placement.Kernel.Dyn.add_object dyn
               (Combin.Rng.sample_distinct rng ~n ~k:r))
        else if d < 70 then
          ignore
            (Placement.Kernel.Dyn.remove_object dyn (Combin.Rng.int rng b))
        else if d < 85 && nfailed < n then begin
          let u = ref (Combin.Rng.int rng n) in
          let failed = Placement.Kernel.Dyn.failed_units dyn in
          while Array.exists (fun f -> f = !u) failed do
            u := Combin.Rng.int rng n
          done;
          Placement.Kernel.Dyn.fail_unit dyn !u
        end
        else if nfailed > 0 then begin
          let failed = Placement.Kernel.Dyn.failed_units dyn in
          Placement.Kernel.Dyn.recover_unit dyn
            failed.(Combin.Rng.int rng nfailed)
        end;
        (* Oracle 1: recount straight from the replica lists. *)
        let recount = Placement.Kernel.Dyn.check_scratch dyn in
        assert (recount = Placement.Kernel.Dyn.killed dyn);
        (* Oracle 2: the frozen flat kernel agrees on the dead tally. *)
        let frozen = Placement.Kernel.Dyn.freeze dyn in
        assert (Placement.Kernel.killed frozen = recount);
        (* Oracle 3: incremental adversary ≡ scratch adversary. *)
        let picks, dead, stats = Placement.Kernel.Dyn.worst_case dyn ~k in
        Placement.Kernel.reset frozen;
        let picks_ref, stats_ref =
          Placement.Kernel.select_greedy frozen ~picks:k
        in
        assert (picks = picks_ref);
        assert (dead = Placement.Kernel.killed frozen);
        assert (stats = stats_ref)
      done;
      true)

let test_kernel_dyn_guards () =
  let dyn = Placement.Kernel.Dyn.create ~units:4 ~s:2 in
  Alcotest.check_raises "s < 1"
    (Invalid_argument "Kernel.Dyn.create: threshold s must be >= 1")
    (fun () -> ignore (Placement.Kernel.Dyn.create ~units:4 ~s:0));
  Alcotest.check_raises "duplicate unit"
    (Invalid_argument "Kernel.Dyn.add_object: duplicate unit") (fun () ->
      ignore (Placement.Kernel.Dyn.add_object dyn [| 1; 1 |]));
  Alcotest.check_raises "unit out of range"
    (Invalid_argument "Kernel.Dyn.add_object: unit out of range") (fun () ->
      ignore (Placement.Kernel.Dyn.add_object dyn [| 0; 4 |]));
  let slot = Placement.Kernel.Dyn.add_object dyn [| 0; 1 |] in
  Alcotest.(check int) "dense slot" 0 slot;
  Placement.Kernel.Dyn.fail_unit dyn 0;
  Alcotest.check_raises "double fail"
    (Invalid_argument "Kernel.Dyn.fail_unit: unit already failed") (fun () ->
      Placement.Kernel.Dyn.fail_unit dyn 0);
  Alcotest.check_raises "recover up unit"
    (Invalid_argument "Kernel.Dyn.recover_unit: unit not failed") (fun () ->
      Placement.Kernel.Dyn.recover_unit dyn 1);
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Kernel.Dyn.remove_object: object slot out of range")
    (fun () -> ignore (Placement.Kernel.Dyn.remove_object dyn 1))

let test_kernel_dyn_swap_remove () =
  let dyn = Placement.Kernel.Dyn.create ~units:4 ~s:2 in
  let _ = Placement.Kernel.Dyn.add_object dyn [| 0; 1 |] in
  let _ = Placement.Kernel.Dyn.add_object dyn [| 1; 2 |] in
  let _ = Placement.Kernel.Dyn.add_object dyn [| 2; 3 |] in
  Placement.Kernel.Dyn.fail_unit dyn 2;
  Placement.Kernel.Dyn.fail_unit dyn 3;
  (* Object 2 on {2,3} is dead. *)
  Alcotest.(check int) "one dead" 1 (Placement.Kernel.Dyn.killed dyn);
  (* Delete slot 0: the last object (slot 2, the dead one) moves in. *)
  let moved_from = Placement.Kernel.Dyn.remove_object dyn 0 in
  Alcotest.(check int) "last slot moved" 2 moved_from;
  Alcotest.(check int) "still dead after the move" 1
    (Placement.Kernel.Dyn.killed dyn);
  Alcotest.(check (array int)) "moved replicas intact" [| 2; 3 |]
    (Placement.Kernel.Dyn.replicas dyn 0);
  Alcotest.(check int) "recount agrees" 1
    (Placement.Kernel.Dyn.check_scratch dyn);
  (* Born-dead object: both replica units already failed. *)
  let slot = Placement.Kernel.Dyn.add_object dyn [| 2; 3 |] in
  Alcotest.(check int) "two dead" 2 (Placement.Kernel.Dyn.killed dyn);
  ignore (Placement.Kernel.Dyn.remove_object dyn slot);
  Alcotest.(check int) "back to one" 1 (Placement.Kernel.Dyn.killed dyn)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip =
  qtest ~count:60 "to_string |> of_string is the identity" layout_gen
    (fun layout ->
      match Placement.Codec.of_string (Placement.Codec.to_string layout) with
      | Error _ -> false
      | Ok layout' ->
          layout'.Placement.Layout.n = layout.Placement.Layout.n
          && layout'.Placement.Layout.r = layout.Placement.Layout.r
          && layout'.Placement.Layout.replicas = layout.Placement.Layout.replicas)

let test_codec_rejects_malformed () =
  let bad_cases =
    [
      ("empty", "");
      ("bad header", "# something else\nn 5\nr 2\nb 0\n");
      ("missing fields", "# replica-placement layout v1\nn 5\n");
      ( "node out of range",
        "# replica-placement layout v1\nn 5\nr 2\nb 1\nobj 0 0 9\n" );
      ( "duplicate replica",
        "# replica-placement layout v1\nn 5\nr 2\nb 1\nobj 0 3 3\n" );
      ( "wrong object count",
        "# replica-placement layout v1\nn 5\nr 2\nb 2\nobj 0 0 1\n" );
      ( "out-of-order ids",
        "# replica-placement layout v1\nn 5\nr 2\nb 2\nobj 1 0 1\nobj 0 2 3\n" );
      ( "wrong replica count",
        "# replica-placement layout v1\nn 5\nr 2\nb 1\nobj 0 1 2 3\n" );
    ]
  in
  List.iter
    (fun (name, text) ->
      match Placement.Codec.of_string text with
      | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ name)
      | Error _ -> ())
    bad_cases

let test_codec_file_roundtrip () =
  let layout =
    Placement.Layout.make ~n:7 ~r:3 [| [| 0; 2; 5 |]; [| 1; 3; 6 |] |]
  in
  let path = Filename.temp_file "layout" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Placement.Codec.save path layout;
      match Placement.Codec.load path with
      | Error msg -> Alcotest.fail msg
      | Ok layout' ->
          Alcotest.(check bool) "equal" true
            (layout'.Placement.Layout.replicas = layout.Placement.Layout.replicas))

(* ------------------------------------------------------------------ *)
(* Copyset baseline *)

let test_copyset_structure =
  qtest ~count:40 "copysets are P partitions' worth of valid r-sets"
    QCheck2.Gen.(
      let* n = int_range 8 40 in
      let* r = int_range 2 4 in
      let* p = int_range 1 4 in
      let* seed = int_range 0 1000 in
      return (n, min r n, p, seed))
    (fun (n, r, p, seed) ->
      let rng = Combin.Rng.create seed in
      let t = Placement.Copyset.generate ~rng ~n ~r ~scatter_width:(p * (r - 1)) in
      Array.length t.Placement.Copyset.copysets = t.Placement.Copyset.permutations * (n / r)
      && Array.for_all
           (fun cs ->
             Array.length cs = r
             && Combin.Intset.is_sorted_distinct cs
             && cs.(0) >= 0
             && cs.(r - 1) < n)
           t.Placement.Copyset.copysets)

let test_copyset_scatter_width_bound =
  qtest ~count:30 "realized scatter width <= P(r-1)"
    QCheck2.Gen.(pair (int_range 9 30) (int_range 0 1000))
    (fun (n, seed) ->
      let r = 3 in
      let rng = Combin.Rng.create seed in
      let t = Placement.Copyset.generate ~rng ~n ~r ~scatter_width:(2 * (r - 1)) in
      let widths = Placement.Copyset.scatter_widths t in
      Array.for_all
        (fun w -> w <= t.Placement.Copyset.permutations * (r - 1))
        widths)

let test_copyset_place_valid () =
  let rng = Combin.Rng.create 5 in
  let t = Placement.Copyset.generate ~rng ~n:12 ~r:3 ~scatter_width:4 in
  let layout = Placement.Copyset.place ~rng t ~b:40 in
  Alcotest.(check int) "b objects" 40 (Placement.Layout.b layout);
  (* Every replica set must be one of the copysets. *)
  Array.iter
    (fun rep ->
      Alcotest.(check bool) "replica set is a copyset" true
        (Array.exists
           (fun cs -> Combin.Intset.equal cs rep)
           t.Placement.Copyset.copysets))
    layout.Placement.Layout.replicas;
  Alcotest.(check bool) "effective lambda >= ceil(b/#copysets)" true
    (Placement.Copyset.effective_lambda t layout
    >= (40 + Array.length t.Placement.Copyset.copysets - 1)
       / Array.length t.Placement.Copyset.copysets)

let test_copyset_bad_args () =
  let rng = Combin.Rng.create 1 in
  Alcotest.(check bool) "scatter too small rejected" true
    (try
       ignore (Placement.Copyset.generate ~rng ~n:10 ~r:3 ~scatter_width:1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Optimal placement search + empirical Theorem 1 *)

let test_optimal_dominates_everything () =
  (* On a tiny instance the exhaustive optimum must dominate Combo's
     bound, the measured Combo availability, and Random. *)
  let n = 7 and r = 3 and s = 2 and k = 2 and b = 6 in
  let opt_avail, opt_layout = Placement.Optimal.best ~n ~r ~s ~k ~b () in
  Alcotest.(check int) "optimal layout has b objects" b
    (Placement.Layout.b opt_layout);
  let p = Placement.Params.make ~b ~r ~s ~n ~k in
  let cfg = Placement.Combo.optimize p in
  Alcotest.(check bool) "combo lb <= optimal" true
    (cfg.Placement.Combo.lb <= opt_avail);
  let combo_layout = Placement.Combo.materialize cfg in
  let combo_attack = Placement.Adversary.exact combo_layout ~s ~k in
  Alcotest.(check bool) "combo avail <= optimal" true
    (Placement.Adversary.avail combo_layout ~s combo_attack <= opt_avail);
  let rng = Combin.Rng.create 77 in
  let random_layout = Placement.Random_placement.place ~rng p in
  let random_attack = Placement.Adversary.exact random_layout ~s ~k in
  Alcotest.(check bool) "random avail <= optimal" true
    (Placement.Adversary.avail random_layout ~s random_attack <= opt_avail)

let test_optimal_matches_adversary () =
  (* The returned layout's availability under the exact adversary equals
     the claimed optimum. *)
  let n = 6 and r = 2 and s = 2 and k = 2 and b = 5 in
  let opt_avail, layout = Placement.Optimal.best ~n ~r ~s ~k ~b () in
  let attack = Placement.Adversary.exact layout ~s ~k in
  Alcotest.(check int) "self-consistent" opt_avail
    (Placement.Adversary.avail layout ~s attack)

let test_theorem1_empirical () =
  (* Theorem 1: Avail(π') < c · Avail(π) + α for π a Simple(x, λ)
     placement and π' ANY placement — check against the true optimum. *)
  let n = 7 and r = 3 and s = 3 and k = 3 and x = 1 in
  List.iter
    (fun b ->
      let opt_avail, _ = Placement.Optimal.best ~n ~r ~s ~k ~b () in
      let sts = Designs.Steiner_triple.make 7 in
      let simple = Placement.Simple.of_design sts ~n ~b in
      let attack =
        Placement.Adversary.exact simple.Placement.Simple.layout ~s ~k
      in
      let simple_avail =
        Placement.Adversary.avail simple.Placement.Simple.layout ~s attack
      in
      match Placement.Analysis.theorem1 ~x ~nx:7 ~r ~s ~k ~mu:1 with
      | None -> Alcotest.fail "theorem 1 precondition"
      | Some { c; alpha } ->
          Alcotest.(check bool)
            (Printf.sprintf "Avail(opt)=%d < c*Avail(simple)=%d + alpha (b=%d)"
               opt_avail simple_avail b)
            true
            (float_of_int opt_avail
            < (c *. float_of_int simple_avail) +. alpha))
    [ 3; 4; 5 ]

let test_ub_any_placement_dominates_optimal =
  qtest ~count:25 "counting upper bound >= exhaustive optimum"
    QCheck2.Gen.(
      let* n = int_range 5 7 in
      let* r = int_range 2 3 in
      let* s = int_range 1 r in
      let* k = int_range (max 1 s) (n - 1) in
      let* b = int_range 2 5 in
      return (n, min r n, s, k, b))
    (fun (n, r, s, k, b) ->
      if k > 3 then true
      else begin
        match Placement.Optimal.best ~n ~r ~s ~k ~b () with
        | exception Placement.Optimal.Too_large -> true
        | opt_avail, _ ->
            opt_avail <= Placement.Analysis.ub_avail_any ~b ~r ~s ~n ~k
      end)

let test_ub_any_placement_sane () =
  (* s = r = k = n/…: nothing binding, bound collapses to b. *)
  Alcotest.(check int) "k < s vacuous" 100
    (Placement.Analysis.ub_avail_any ~b:100 ~r:3 ~s:3 ~n:10 ~k:2);
  (* s=1, heavy failure: strictly binding. *)
  Alcotest.(check bool) "binding for s=1" true
    (Placement.Analysis.ub_avail_any ~b:100 ~r:2 ~s:1 ~n:10 ~k:5 < 100)

let test_optimal_too_large () =
  Alcotest.check_raises "budget guard" Placement.Optimal.Too_large (fun () ->
      ignore (Placement.Optimal.best ~n:31 ~r:3 ~s:2 ~k:3 ~b:100 ()))

(* ------------------------------------------------------------------ *)
(* Random analysis (Theorem 2, Lemma 4) *)

let alpha_brute ~n ~k ~r ~s =
  (* Count r-subsets of [0,n) with >= s elements inside [0,k). *)
  let count = ref 0 in
  Combin.Subset.iter ~n ~k:r (fun c ->
      let inside = Array.fold_left (fun acc x -> if x < k then acc + 1 else acc) 0 c in
      if inside >= s then incr count);
  float_of_int !count

let test_alpha_vs_bruteforce =
  qtest ~count:40 "alpha matches direct enumeration"
    QCheck2.Gen.(
      let* n = int_range 5 12 in
      let* r = int_range 1 4 in
      let* s = int_range 1 r in
      let* k = int_range s (n - 1) in
      return (n, r, s, k))
    (fun (n, r, s, k) ->
      let ours = Placement.Random_analysis.alpha ~n ~k ~r ~s in
      let brute = alpha_brute ~n ~k ~r ~s in
      abs_float (ours -. brute) < 1e-6 *. (1.0 +. brute))

let test_fail_probability_in_unit =
  qtest ~count:40 "p in [0,1]"
    QCheck2.Gen.(
      let* n = int_range 5 40 in
      let* r = int_range 2 5 in
      let* s = int_range 1 r in
      let* k = int_range s (n - 1) in
      let* b = int_range 1 500 in
      return (Placement.Params.make ~b ~r:(min r n) ~s ~n ~k))
    (fun p ->
      let prob = (Placement.Random_analysis.report p).Placement.Random_analysis.p_fail in
      prob >= 0.0 && prob <= 1.0 +. 1e-9)

let test_pr_avail_range_and_monotone () =
  let pr b k s =
    Placement.Random_analysis.pr_avail (Placement.Params.make ~b ~r:5 ~s ~n:71 ~k)
  in
  List.iter
    (fun b ->
      let v = pr b 4 3 in
      Alcotest.(check bool) "in [0,b]" true (v >= 0 && v <= b);
      Alcotest.(check bool) "monotone in k" true (pr b 5 3 <= pr b 4 3);
      Alcotest.(check bool) "monotone in s" true (pr b 4 2 <= pr b 4 3))
    [ 150; 600; 2400 ]

let test_pr_avail_k_equals_n_minus_one () =
  (* Extreme k: with nearly all nodes failed and s=1, almost everything
     should fail. *)
  let p = Placement.Params.make ~b:100 ~r:3 ~s:1 ~n:10 ~k:9 in
  Alcotest.(check int) "everything fails" 0 (Placement.Random_analysis.pr_avail p)

let test_lemma4_upper_bounds_pr_avail () =
  List.iter
    (fun (n, r, b, k) ->
      let rnd =
        Placement.Random_analysis.report (Placement.Params.make ~b ~r ~s:1 ~n ~k)
      in
      match rnd.Placement.Random_analysis.lemma4_upper with
      | None -> Alcotest.fail "Lemma 4 should apply at s=1, 2k<n"
      | Some bound ->
          let pr = float_of_int rnd.Placement.Random_analysis.pr_avail in
          Alcotest.(check bool)
            (Printf.sprintf "Lemma4 >= prAvail at n=%d r=%d b=%d k=%d" n r b k)
            true
            (bound >= pr -. 1e-6))
    [ (71, 3, 2400, 3); (71, 5, 2400, 5); (257, 3, 9600, 8); (31, 3, 600, 4) ]

let test_lemma4_preconditions () =
  let upper p = (Placement.Random_analysis.report p).Placement.Random_analysis.lemma4_upper in
  Alcotest.(check bool) "s<>1 -> None" true
    (upper (Placement.Params.make ~b:100 ~r:3 ~s:2 ~n:10 ~k:3) = None);
  Alcotest.(check bool) "k >= n/2 -> None" true
    (upper (Placement.Params.make ~b:100 ~r:3 ~s:1 ~n:10 ~k:5) = None)

let test_log_vuln_decreasing =
  qtest ~count:20 "Vuln nonincreasing in f"
    QCheck2.Gen.(int_range 1 500)
    (fun b ->
      let p = Placement.Params.make ~b ~r:3 ~s:2 ~n:31 ~k:4 in
      let ok = ref true in
      let prev = ref infinity in
      for f = 0 to min b 50 do
        let v = Placement.Random_analysis.log_vuln p ~f in
        if v > !prev +. 1e-9 then ok := false;
        prev := v
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Instance: derived cells alias the parent's tables *)

let test_with_cell_matches_fresh =
  qtest ~count:40 "with_cell = fresh build"
    QCheck2.Gen.(
      let* n = oneofl [ 15; 31; 71 ] in
      let* r = int_range 3 5 in
      let* s = int_range 2 r in
      let* b1 = int_range 1 1200 in
      let* k1 = int_range s (n / 2) in
      let* b2 = int_range 1 1200 in
      let* k2 = int_range s (n / 2) in
      return (n, r, s, b1, k1, b2, k2))
    (fun (n, r, s, b1, k1, b2, k2) ->
      let base = Placement.Instance.make ~b:b1 ~r ~s ~n ~k:k1 () in
      let cell = Placement.Instance.with_cell base ~b:b2 ~k:k2 in
      let fresh = Placement.Instance.make ~b:b2 ~r ~s ~n ~k:k2 () in
      (* Everything derived from the aliased tables must agree with a
         from-scratch build: binomials (inside and outside the cached
         rows), log-binomials, the level table, and the DP result. *)
      let choose_agrees =
        List.for_all
          (fun (m, j) ->
            Placement.Instance.choose cell m j = Placement.Instance.choose fresh m j
            && Placement.Instance.log_choose cell m j
               = Placement.Instance.log_choose fresh m j)
          [ (n, 2); (n - 1, r); (k2, s); (n + 7, 2); (n, r + s) ]
      in
      let level_eq (a : Placement.Combo.level) (b : Placement.Combo.level) =
        a.Placement.Combo.x = b.Placement.Combo.x
        && a.Placement.Combo.nx = b.Placement.Combo.nx
        && a.Placement.Combo.mu = b.Placement.Combo.mu
        && a.Placement.Combo.cap_mu = b.Placement.Combo.cap_mu
      in
      let levels_agree =
        let lc = Placement.Instance.levels cell
        and lf = Placement.Instance.levels fresh in
        Array.length lc = Array.length lf
        && Array.for_all2 level_eq lc lf
      in
      let params_agree =
        Placement.Instance.params cell = Placement.Instance.params fresh
      in
      let combo_agree =
        let cc = Placement.Instance.combo_config cell
        and cf = Placement.Instance.combo_config fresh in
        cc.Placement.Combo.lambdas = cf.Placement.Combo.lambdas
        && cc.Placement.Combo.assigned = cf.Placement.Combo.assigned
        && cc.Placement.Combo.lb = cf.Placement.Combo.lb
      in
      choose_agrees && levels_agree && params_agree && combo_agree)

let () =
  Alcotest.run "placement"
    [
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "load cap" `Quick test_load_cap;
        ] );
      ( "layout",
        [
          test_layout_node_objects_inverse;
          test_layout_failed_objects_bruteforce;
          Alcotest.test_case "concat/shift" `Quick test_layout_concat_shift;
          Alcotest.test_case "scatter widths" `Quick test_layout_scatter_widths;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "lambda_min values" `Quick test_lambda_min;
          test_lambda_min_eqn1;
          Alcotest.test_case "lbAvail_si" `Quick test_lb_avail_si;
          Alcotest.test_case "theorem 1" `Quick test_theorem1;
          Alcotest.test_case "competitive limit" `Quick test_competitive_limit;
        ] );
      ( "simple",
        [
          Alcotest.test_case "Eqn-1 lambda" `Quick test_simple_of_design_lambda;
          test_simple_satisfies_definition2;
          test_simple_spread_keeps_definition2;
          Alcotest.test_case "spread preserves lambda" `Quick test_simple_spread_same_lambda;
          Alcotest.test_case "complete entry streams" `Quick test_simple_of_entry_complete;
          test_simple_lower_bound_nonneg;
        ] );
      ( "combo",
        [
          test_combo_dp_matches_bruteforce;
          test_combo_assignment_covers_b;
          Alcotest.test_case "lb sound vs exact adversary" `Slow test_combo_lb_sound_small;
          Alcotest.test_case "Eqn 4 evaluation" `Quick test_combo_lb_avail_co_at_k;
          Alcotest.test_case "insufficient capacity" `Quick test_combo_insufficient_capacity;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "matches offline DP" `Quick test_adaptive_matches_offline;
          Alcotest.test_case "bound sound vs exact adversary" `Quick test_adaptive_bound_sound;
          test_adaptive_churn_invariants;
          Alcotest.test_case "Definition 2 per level" `Quick test_adaptive_layout_definition2;
          Alcotest.test_case "remove unknown" `Quick test_adaptive_remove_unknown;
          Alcotest.test_case "ids not reused" `Quick test_adaptive_ids_not_reused;
        ] );
      ( "random_placement",
        [
          test_random_respects_cap;
          Alcotest.test_case "determinism" `Quick test_random_deterministic;
          Alcotest.test_case "unconstrained" `Quick test_random_unconstrained_valid;
        ] );
      ( "adversary",
        [
          test_adversary_exact_is_optimal;
          test_adversary_ordering;
          test_adversary_attack_shape;
          Alcotest.test_case "global budget beats static split" `Quick
            test_exact_budget_starvation;
        ] );
      ( "kernel",
        [
          test_layout_node_objects_memoized;
          test_kernel_incremental_vs_naive;
          test_kernel_lazy_greedy_identical;
          test_kernel_group_greedy_identical;
          test_kernel_group_churn;
          test_kernel_check_bitset_vs_scratch;
          test_kernel_sharded_identical;
          Alcotest.test_case "packed base > unit degree" `Quick
            test_kernel_group_packed_base;
          Alcotest.test_case "add/remove guards" `Quick test_kernel_double_add;
          test_kernel_dyn_oracle;
          Alcotest.test_case "dyn guards" `Quick test_kernel_dyn_guards;
          Alcotest.test_case "dyn swap-remove" `Quick
            test_kernel_dyn_swap_remove;
        ] );
      ( "codec",
        [
          test_codec_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_codec_rejects_malformed;
          Alcotest.test_case "file roundtrip" `Quick test_codec_file_roundtrip;
        ] );
      ( "copyset",
        [
          test_copyset_structure;
          test_copyset_scatter_width_bound;
          Alcotest.test_case "placement valid" `Quick test_copyset_place_valid;
          Alcotest.test_case "bad args" `Quick test_copyset_bad_args;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "dominates all strategies" `Slow test_optimal_dominates_everything;
          Alcotest.test_case "self-consistent" `Quick test_optimal_matches_adversary;
          Alcotest.test_case "Theorem 1 empirical" `Slow test_theorem1_empirical;
          test_ub_any_placement_dominates_optimal;
          Alcotest.test_case "upper bound sanity" `Quick test_ub_any_placement_sane;
          Alcotest.test_case "budget guard" `Quick test_optimal_too_large;
        ] );
      ( "instance",
        [ test_with_cell_matches_fresh ] );
      ( "random_analysis",
        [
          test_alpha_vs_bruteforce;
          test_fail_probability_in_unit;
          Alcotest.test_case "pr_avail range/monotone" `Quick test_pr_avail_range_and_monotone;
          Alcotest.test_case "extreme k" `Quick test_pr_avail_k_equals_n_minus_one;
          Alcotest.test_case "Lemma 4 upper bound" `Quick test_lemma4_upper_bounds_pr_avail;
          Alcotest.test_case "Lemma 4 preconditions" `Quick test_lemma4_preconditions;
          test_log_vuln_decreasing;
        ] );
    ]
