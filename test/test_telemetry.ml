(* Tests for the Telemetry subsystem: JSON rendering, histogram bucket
   boundaries, the enabled/disabled gate, registry find-or-create and
   snapshot shape, and — the load-bearing contract — that every metric
   exported under "values" is bit-identical at -j 1 and -j 4 across the
   instrumented layers (adversary searches, Monte-Carlo, experiment
   grids).  Timings are allowed to differ; values are not. *)

module T = Telemetry

(* The registry is process-global, so every test that touches metrics
   starts from a clean slate and leaves telemetry disabled. *)
let with_clean_telemetry ?(enabled = true) f =
  T.Registry.reset ();
  T.Control.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      T.Control.set_enabled false;
      T.Control.set_tracing false;
      T.Registry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_render () =
  let j =
    T.Json.(
      Obj
        [
          ("s", Str "a\"b\\c\nd");
          ("i", Int (-3));
          ("f", Float 2.0);
          ("g", Float 0.25);
          ("nan", Float nan);
          ("l", List [ Bool true; Null ]);
          ("e", Obj []);
        ])
  in
  Alcotest.(check string)
    "compact"
    {|{"s": "a\"b\\c\nd","i": -3,"f": 2.0,"g": 0.25,"nan": null,"l": [true,null],"e": {}}|}
    (T.Json.to_string j);
  Alcotest.(check string)
    "control chars escaped" {|"\u0001"|}
    (T.Json.to_string (T.Json.Str "\001"));
  let indented = T.Json.to_string ~indent:2 j in
  Alcotest.(check bool) "indented has newlines" true
    (String.contains indented '\n');
  Alcotest.(check bool) "indented nests" true
    (String.length indented > String.length (T.Json.to_string j))

(* ------------------------------------------------------------------ *)
(* Histogram bucket boundaries *)

let test_histogram_buckets () =
  with_clean_telemetry @@ fun () ->
  let h = T.Registry.histogram "test/hist" in
  (* Bucket i starts at 2^(i-1); bucket 0 holds v <= 0. *)
  List.iter (T.Histogram.observe h) [ -5; 0; 1; 2; 3; 4; 7; 8 ];
  let snap = T.Histogram.snapshot h in
  Alcotest.(check int) "count" 8 snap.T.Histogram.count;
  Alcotest.(check int) "sum" 20 snap.T.Histogram.sum;
  Alcotest.(check (list (pair int int)))
    "bucket los and counts"
    [ (0, 2); (1, 1); (2, 2); (4, 2); (8, 1) ]
    snap.T.Histogram.buckets

(* ------------------------------------------------------------------ *)
(* Enabled/disabled gate *)

let test_disabled_noop () =
  with_clean_telemetry ~enabled:false @@ fun () ->
  let c = T.Registry.counter "test/gate/counter" in
  let h = T.Registry.histogram "test/gate/hist" in
  let g = T.Registry.gauge "test/gate/gauge" in
  let sp = T.Registry.span "test/gate/span" in
  T.Counter.incr c;
  T.Counter.add c 42;
  T.Histogram.observe h 7;
  T.Gauge.set g 1.0;
  T.Span.time sp ignore;
  Alcotest.(check int) "counter untouched" 0 (T.Counter.value c);
  Alcotest.(check int) "hist untouched" 0 (T.Histogram.snapshot h).T.Histogram.count;
  Alcotest.(check int) "span untouched" 0 (T.Span.count sp);
  let snap = T.Registry.snapshot () in
  Alcotest.(check int) "empty values" 0 (List.length snap.T.Registry.values);
  Alcotest.(check int) "empty timings" 0 (List.length snap.T.Registry.timings);
  (* Disabled Span.time still runs the function and passes the result. *)
  Alcotest.(check int) "span passthrough" 9 (T.Span.time sp (fun () -> 9))

let test_span_exception () =
  with_clean_telemetry @@ fun () ->
  let sp = T.Registry.span "test/span/raise" in
  (try T.Span.time sp (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "call recorded despite raise" 1 (T.Span.count sp)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_find_or_create () =
  with_clean_telemetry @@ fun () ->
  let a = T.Registry.counter "test/reg/shared" in
  let b = T.Registry.counter "test/reg/shared" in
  T.Counter.add a 3;
  T.Counter.add b 4;
  Alcotest.(check int) "same cell" 7 (T.Counter.value a);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Telemetry.Registry: test/reg/shared already registered with another \
        metric type (wanted gauge)") (fun () ->
      ignore (T.Registry.gauge "test/reg/shared"))

let test_registry_snapshot_shape () =
  with_clean_telemetry @@ fun () ->
  T.Counter.add (T.Registry.counter "b/stable") 2;
  T.Counter.add (T.Registry.counter ~kind:T.Control.Volatile "a/volatile") 5;
  ignore (T.Registry.counter "z/zero" : T.Counter.t);
  T.Gauge.set (T.Registry.gauge "m/gauge") 0.5;
  ignore (T.Registry.gauge "m/unset" : T.Gauge.t);
  let sp = T.Registry.span "c/span" in
  T.Span.time sp ignore;
  T.Span.time sp ignore;
  let snap = T.Registry.snapshot () in
  let keys l = List.map fst l in
  (* Sorted by path; zero counters and unset gauges omitted; the span's
     Stable call count lands in values, its duration in timings. *)
  Alcotest.(check (list string))
    "values keys" [ "b/stable"; "c/span/calls" ]
    (keys snap.T.Registry.values);
  Alcotest.(check (list string))
    "timings keys" [ "a/volatile"; "c/span/total_ns"; "m/gauge" ]
    (keys snap.T.Registry.timings);
  (match List.assoc "c/span/calls" snap.T.Registry.values with
  | T.Registry.Count 2 -> ()
  | _ -> Alcotest.fail "span calls should be Count 2");
  (* Reset zeroes but keeps handles valid. *)
  T.Registry.reset ();
  let snap = T.Registry.snapshot () in
  Alcotest.(check int) "reset empties" 0 (List.length snap.T.Registry.values);
  T.Counter.incr (T.Registry.counter "b/stable");
  Alcotest.(check int) "handle survives reset" 1
    (T.Counter.value (T.Registry.counter "b/stable"))

let test_export_forms () =
  with_clean_telemetry @@ fun () ->
  T.Counter.add (T.Registry.counter "x/count") 3;
  T.Histogram.observe (T.Registry.histogram "x/dist") 5;
  let snap = T.Registry.snapshot () in
  Alcotest.(check string)
    "values_json"
    {|{"x/count": 3,"x/dist": {"count": 1,"sum": 5,"buckets": [[4,1]]}}|}
    (T.Json.to_string (T.Export.values_json snap));
  let table = T.Export.table snap in
  Alcotest.(check bool) "table lists paths" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains table "x/count" && contains table "values")

(* ------------------------------------------------------------------ *)
(* Determinism: the "values" section is bit-identical at any -j.

   Each workload runs once without a pool and once on a 4-domain pool;
   we compare the rendered values_json strings (exact paths and exact
   counts), which is precisely what the --metrics contract promises. *)

let values_string ~jobs (f : Engine.Pool.t option -> unit) =
  with_clean_telemetry @@ fun () ->
  (if jobs = 1 then f None
   else Engine.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool)));
  T.Json.to_string (T.Export.values_json (T.Registry.snapshot ()))

let check_j_independent name f =
  let seq = values_string ~jobs:1 f in
  let par = values_string ~jobs:4 f in
  Alcotest.(check string) (name ^ ": values at -j1 = -j4") seq par;
  Alcotest.(check bool) (name ^ ": collected something") true
    (String.length seq > 2)

let test_values_adversary_exact () =
  let inst = Placement.Instance.make ~b:600 ~r:3 ~s:2 ~n:31 ~k:3 () in
  let layout = Placement.Instance.combo_layout inst in
  check_j_independent "bb" (fun pool ->
      ignore (Placement.Adversary.exact ?pool layout ~s:2 ~k:3))

let test_values_adversary_local_search () =
  let inst = Placement.Instance.make ~b:600 ~r:3 ~s:2 ~n:71 ~k:4 () in
  let layout = Placement.Instance.combo_layout inst in
  check_j_independent "local_search" (fun pool ->
      ignore
        (Placement.Adversary.local_search ~rng:(Combin.Rng.create 7) ?pool
           ~restarts:6 layout ~s:2 ~k:4))

let test_values_montecarlo () =
  let p = Placement.Params.make ~b:150 ~r:3 ~s:2 ~n:31 ~k:3 in
  check_j_independent "montecarlo" (fun pool ->
      ignore
        (Dsim.Montecarlo.avg_avail_random ?pool
           ~rng:(Combin.Rng.create 11) ~trials:6 p))

let test_values_experiment_grid () =
  check_j_independent "fig2" (fun pool ->
      ignore (Experiments.Fig2.compute ?pool ~bs:[ 300; 600 ] ()))

(* ------------------------------------------------------------------ *)
(* Resource *)

let test_resource_peak_rss () =
  (* The test runs on Linux, so procfs is there and the process has
     certainly touched more than a megabyte by now. *)
  match T.Resource.peak_rss_kb () with
  | None -> Alcotest.fail "peak_rss_kb returned None on Linux"
  | Some kb ->
      Alcotest.(check bool) "plausible magnitude" true (kb > 1024)

let test_resource_sample_gate () =
  with_clean_telemetry @@ fun () ->
  let g = T.Registry.gauge "process/peak_rss_kb" in
  Alcotest.(check bool) "starts unset" true (Float.is_nan (T.Gauge.value g));
  T.Resource.sample ();
  Alcotest.(check bool) "sample records a positive gauge" true
    (T.Gauge.value g > 0.0);
  T.Gauge.reset g;
  T.Control.set_enabled false;
  T.Resource.sample ();
  Alcotest.(check bool) "disabled sample is a no-op" true
    (Float.is_nan (T.Gauge.value g))

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [ Alcotest.test_case "render & escape" `Quick test_json_render ] );
      ( "histogram",
        [ Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets ] );
      ( "gate",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "span survives raise" `Quick test_span_exception;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find-or-create" `Quick test_registry_find_or_create;
          Alcotest.test_case "snapshot shape" `Quick test_registry_snapshot_shape;
          Alcotest.test_case "export forms" `Quick test_export_forms;
        ] );
      ( "resource",
        [
          Alcotest.test_case "peak_rss_kb" `Quick test_resource_peak_rss;
          Alcotest.test_case "sample gate" `Quick test_resource_sample_gate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "adversary exact -j" `Quick test_values_adversary_exact;
          Alcotest.test_case "local search -j" `Quick
            test_values_adversary_local_search;
          Alcotest.test_case "montecarlo -j" `Quick test_values_montecarlo;
          Alcotest.test_case "experiment grid -j" `Quick
            test_values_experiment_grid;
        ] );
    ]
