(* Property tests for the Strategy registry: every registered family must
   produce well-formed layouts, respect its advertised capabilities, and
   never promise more than the exact adversary delivers. *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x57A7 |])
    (QCheck2.Test.make ~count ~name gen prop)

(* Link the topology spread families so the registry is complete; they
   decline every plan here (no ambient topology configured), which the
   decline-tolerant harness below treats as a skip, not a failure. *)
let () = Topology.Strategies.ensure_registered ()

let strategies = Placement.Strategies.all ()

(* A strategy may legitimately decline an instance (Simple with no
   materialized design, Combo without enough capacity, Optimal over its
   search budget); those skips are not failures.  Anything else a plan
   raises is a real bug and propagates. *)
let try_plan (module S : Placement.Strategy.S) ~rng inst =
  match S.plan ~rng inst with
  | layout -> Some layout
  | exception Invalid_argument _ -> None
  | exception Placement.Optimal.Too_large -> None

let instance_gen =
  QCheck2.Gen.(
    let* n = int_range 7 31 in
    let* r = int_range 2 (min 3 n) in
    let* s = int_range 1 r in
    let* k = int_range s (min 5 (n - 1)) in
    let* b = int_range 1 60 in
    let* seed = int_range 0 10000 in
    return (Placement.Instance.make ~b ~r ~s ~n ~k (), seed))

(* Tiny instances where the branch-and-bound adversary is exact. *)
let small_instance_gen =
  QCheck2.Gen.(
    let* n = int_range 5 9 in
    let* r = int_range 2 (min 3 n) in
    let* s = int_range 1 r in
    let* k = int_range s (min 3 (n - 1)) in
    let* b = int_range 1 12 in
    let* seed = int_range 0 10000 in
    return (Placement.Instance.make ~b ~r ~s ~n ~k (), seed))

let sorted rep =
  let c = Array.copy rep in
  Array.sort compare c;
  c

let test_plan_well_formed =
  qtest ~count:60 "every strategy's plan: r distinct in-range replicas"
    instance_gen
    (fun (inst, seed) ->
      let p = Placement.Instance.params inst in
      List.for_all
        (fun (module S : Placement.Strategy.S) ->
          match try_plan (module S) ~rng:(Combin.Rng.create seed) inst with
          | None -> true
          | Some layout ->
              Placement.Layout.b layout = p.Placement.Params.b
              && layout.Placement.Layout.n = p.Placement.Params.n
              && Array.for_all
                   (fun rep ->
                     Array.length rep = p.Placement.Params.r
                     && Array.for_all
                          (fun nd -> nd >= 0 && nd < p.Placement.Params.n)
                          rep
                     && List.length (List.sort_uniq compare (Array.to_list rep))
                        = p.Placement.Params.r)
                   layout.Placement.Layout.replicas)
        strategies)

let test_load_cap_respected =
  qtest ~count:60 "Load_balanced strategies respect ceil(rb/n)" instance_gen
    (fun (inst, seed) ->
      List.for_all
        (fun (module S : Placement.Strategy.S) ->
          (not (List.mem Placement.Strategy.Load_balanced S.capabilities))
          ||
          match try_plan (module S) ~rng:(Combin.Rng.create seed) inst with
          | None -> true
          | Some layout ->
              Placement.Layout.max_load layout <= Placement.Instance.load_cap inst)
        strategies)

let test_lower_bound_sound =
  qtest ~count:40 "lower_bound <= exact adversary survivors"
    small_instance_gen
    (fun (inst, seed) ->
      let p = Placement.Instance.params inst in
      List.for_all
        (fun (module S : Placement.Strategy.S) ->
          match try_plan (module S) ~rng:(Combin.Rng.create seed) inst with
          | None -> true
          | Some layout -> (
              match S.lower_bound ~layout inst with
              | None -> true
              | Some lb ->
                  let atk =
                    Placement.Adversary.exact layout ~s:p.Placement.Params.s
                      ~k:p.Placement.Params.k
                  in
                  (* A truncated search is not a witness either way. *)
                  (not atk.Placement.Adversary.exact)
                  || lb
                     <= Placement.Adversary.avail layout ~s:p.Placement.Params.s
                          atk))
        strategies)

let test_codec_round_trip =
  qtest ~count:40 "codec round-trips every strategy's layout" instance_gen
    (fun (inst, seed) ->
      List.for_all
        (fun (module S : Placement.Strategy.S) ->
          match try_plan (module S) ~rng:(Combin.Rng.create seed) inst with
          | None -> true
          | Some layout -> (
              match
                Placement.Codec.of_string (Placement.Codec.to_string layout)
              with
              | Error _ -> false
              | Ok layout' ->
                  layout'.Placement.Layout.n = layout.Placement.Layout.n
                  && layout'.Placement.Layout.r = layout.Placement.Layout.r
                  (* the codec normalizes replica order on read *)
                  && Array.map sorted layout'.Placement.Layout.replicas
                     = Array.map sorted layout.Placement.Layout.replicas))
        strategies)

(* ------------------------------------------------------------------ *)
(* Registry plumbing *)

let test_registry () =
  Alcotest.(check (list string))
    "all eight families registered"
    [
      "adaptive"; "combo"; "copyset"; "optimal"; "random"; "random-spread";
      "simple"; "simple-spread";
    ]
    (Placement.Strategies.names ());
  (match Placement.Strategies.find "combo" with
  | Some (module S) -> Alcotest.(check string) "find resolves" "combo" S.name
  | None -> Alcotest.fail "combo not registered");
  Alcotest.check_raises "unknown name raises with the available list"
    (Invalid_argument
       "unknown strategy \"bogus\"; available: adaptive, combo, copyset, \
        optimal, random, random-spread, simple, simple-spread")
    (fun () -> ignore (Placement.Strategies.get "bogus"));
  let module Dup = struct
    let name = "combo"
    let describe = "duplicate"
    let capabilities = []
    let plan ?rng:_ inst = Placement.Instance.combo_layout inst
    let lower_bound ?layout:_ _ = None
    let explain _ = []
  end in
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Strategy.register: duplicate strategy combo")
    (fun () -> Placement.Strategy.register (module Dup))

let test_capabilities_coherent () =
  List.iter
    (fun (module S : Placement.Strategy.S) ->
      let det = List.mem Placement.Strategy.Deterministic S.capabilities in
      let rnd = List.mem Placement.Strategy.Randomized S.capabilities in
      Alcotest.(check bool)
        (S.name ^ ": deterministic xor randomized")
        true
        (det <> rnd))
    strategies;
  (* Deterministic strategies must ignore the rng. *)
  let inst = Placement.Instance.make ~b:40 ~r:3 ~s:2 ~n:13 ~k:3 () in
  List.iter
    (fun (module S : Placement.Strategy.S) ->
      if List.mem Placement.Strategy.Deterministic S.capabilities then
        match
          ( try_plan (module S) ~rng:(Combin.Rng.create 1) inst,
            try_plan (module S) ~rng:(Combin.Rng.create 2) inst )
        with
        | Some a, Some b ->
            Alcotest.(check bool)
              (S.name ^ ": plan independent of rng")
              true
              (a.Placement.Layout.replicas = b.Placement.Layout.replicas)
        | None, None -> ()
        | _ -> Alcotest.fail (S.name ^ ": rng changed plannability"))
    strategies

let () =
  Alcotest.run "strategy"
    [
      ( "registry",
        [
          Alcotest.test_case "registration & lookup" `Quick test_registry;
          Alcotest.test_case "capability coherence" `Quick
            test_capabilities_coherent;
        ] );
      ( "properties",
        [
          test_plan_well_formed;
          test_load_cap_respected;
          test_lower_bound_sound;
          test_codec_round_trip;
        ] );
    ]
