(* Unit and property tests for the Combin substrate. *)

let qtest ?(count = 200) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Binomial *)

let test_binomial_small () =
  Alcotest.(check int) "C(5,2)" 10 (Combin.Binomial.exact 5 2);
  Alcotest.(check int) "C(0,0)" 1 (Combin.Binomial.exact 0 0);
  Alcotest.(check int) "C(7,0)" 1 (Combin.Binomial.exact 7 0);
  Alcotest.(check int) "C(7,7)" 1 (Combin.Binomial.exact 7 7);
  Alcotest.(check int) "C(7,8)" 0 (Combin.Binomial.exact 7 8);
  Alcotest.(check int) "C(7,-1)" 0 (Combin.Binomial.exact 7 (-1));
  Alcotest.(check int) "C(71,5)" 13019909 (Combin.Binomial.exact 71 5);
  Alcotest.(check int) "C(257,3)" 2796160 (Combin.Binomial.exact 257 3)

let test_binomial_pascal =
  qtest "pascal identity"
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 59))
    (fun (n, k) ->
      let k = min k n in
      Combin.Binomial.exact n k
      = Combin.Binomial.exact (n - 1) (k - 1) + Combin.Binomial.exact (n - 1) k)

let test_binomial_symmetry =
  qtest "symmetry"
    QCheck2.Gen.(pair (int_range 0 60) (int_range 0 60))
    (fun (n, k) ->
      k > n || Combin.Binomial.exact n k = Combin.Binomial.exact n (n - k))

let test_binomial_log_vs_exact =
  qtest "log agrees with exact"
    QCheck2.Gen.(pair (int_range 0 50) (int_range 0 50))
    (fun (n, k) ->
      if k > n then Combin.Binomial.log n k = neg_infinity
      else begin
        let exact = float_of_int (Combin.Binomial.exact n k) in
        abs_float (exp (Combin.Binomial.log n k) -. exact) /. exact < 1e-9
      end)

let test_binomial_overflow () =
  Alcotest.check_raises "C(100,50) overflows" Combin.Binomial.Overflow
    (fun () -> ignore (Combin.Binomial.exact 100 50));
  Alcotest.(check (option int)) "opt" None (Combin.Binomial.exact_opt 100 50)

let test_ratio_exact () =
  Alcotest.(check (option int))
    "capacity of STS(7)" (Some 7)
    (Combin.Binomial.ratio_exact 7 2 3 2);
  Alcotest.(check (option int))
    "non-integral" None
    (Combin.Binomial.ratio_exact 8 2 3 2)

let test_divides () =
  Alcotest.(check bool) "3|12" true (Combin.Binomial.divides 3 12);
  Alcotest.(check bool) "5|12" false (Combin.Binomial.divides 5 12);
  Alcotest.(check bool) "0|12" false (Combin.Binomial.divides 0 12)

let test_falling () =
  Alcotest.(check int) "5_3" 60 (Combin.Binomial.falling 5 3);
  Alcotest.(check int) "n_0" 1 (Combin.Binomial.falling 9 0)

(* ------------------------------------------------------------------ *)
(* Subset *)

let test_subset_count =
  qtest "iter visits C(n,k) subsets"
    QCheck2.Gen.(pair (int_range 0 12) (int_range 0 12))
    (fun (n, k) ->
      let count = ref 0 in
      Combin.Subset.iter ~n ~k (fun _ -> incr count);
      if k > n then !count = 0 || (k = 0 && !count = 1)
      else !count = Combin.Binomial.exact n k)

let test_subset_sorted_distinct =
  qtest "iter yields sorted distinct in-range"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 10))
    (fun (n, k) ->
      let k = min k n in
      let ok = ref true in
      Combin.Subset.iter ~n ~k (fun c ->
          if not (Combin.Intset.is_sorted_distinct c) then ok := false;
          Array.iter (fun x -> if x < 0 || x >= n then ok := false) c);
      !ok)

let test_subset_rank_roundtrip =
  qtest "rank/unrank roundtrip"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 6))
    (fun (n, k) ->
      let k = min k n in
      let ok = ref true in
      Combin.Subset.iter ~n ~k (fun c ->
          let rank = Combin.Subset.rank ~n c in
          let c' = Combin.Subset.unrank ~k rank in
          if c' <> c then ok := false);
      !ok)

let test_subset_ranks_distinct () =
  (* All ranks of 3-subsets of 8 elements are exactly 0..C(8,3)-1. *)
  let seen = Hashtbl.create 64 in
  Combin.Subset.iter ~n:8 ~k:3 (fun c ->
      Hashtbl.replace seen (Combin.Subset.rank ~n:8 c) ());
  Alcotest.(check int) "distinct ranks" 56 (Hashtbl.length seen);
  for i = 0 to 55 do
    if not (Hashtbl.mem seen i) then Alcotest.fail "rank gap"
  done

let test_sub_iter () =
  let base = [| 3; 7; 11; 20 |] in
  let collected = ref [] in
  Combin.Subset.sub_iter base ~k:2 (fun s -> collected := Array.to_list s :: !collected);
  Alcotest.(check int) "pairs of 4" 6 (List.length !collected);
  Alcotest.(check bool) "contains [3;20]" true (List.mem [ 3; 20 ] !collected)

let test_pairs () =
  let count = ref 0 in
  Combin.Subset.pairs [| 1; 2; 3; 4; 5 |] (fun _ _ -> incr count);
  Alcotest.(check int) "C(5,2)" 10 !count

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Combin.Rng.create 99 and b = Combin.Rng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Combin.Rng.bits64 a) (Combin.Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Combin.Rng.create 1 in
  let c = Combin.Rng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Combin.Rng.bits64 a <> Combin.Rng.bits64 c)

let test_rng_int_bounds =
  qtest "int in bounds"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Combin.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Combin.Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_int_covers () =
  (* Over many draws from [0,4), each value appears. *)
  let rng = Combin.Rng.create 7 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Combin.Rng.int rng 4) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_sample_distinct =
  qtest "sample_distinct valid"
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 1 30) (int_range 0 30))
    (fun (seed, n, k) ->
      let k = min k n in
      let rng = Combin.Rng.create seed in
      let s = Combin.Rng.sample_distinct rng ~n ~k in
      Array.length s = k
      && Combin.Intset.is_sorted_distinct s
      && Array.for_all (fun x -> x >= 0 && x < n) s)

let test_sample_distinct_uniformish () =
  (* Every element of [0,6) should be sampled eventually in 2-subsets. *)
  let rng = Combin.Rng.create 3 in
  let seen = Array.make 6 false in
  for _ = 1 to 300 do
    Array.iter (fun x -> seen.(x) <- true) (Combin.Rng.sample_distinct rng ~n:6 ~k:2)
  done;
  Alcotest.(check bool) "coverage" true (Array.for_all Fun.id seen)

let test_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 50))
    (fun (seed, len) ->
      let rng = Combin.Rng.create seed in
      let a = Array.init len (fun i -> i) in
      Combin.Rng.shuffle rng a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init len (fun i -> i))

let test_choose_weighted () =
  let rng = Combin.Rng.create 11 in
  (* Zero-weight entries are never chosen. *)
  for _ = 1 to 100 do
    let i = Combin.Rng.choose_weighted rng [| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only index 1" 1 i
  done

(* ------------------------------------------------------------------ *)
(* Logspace *)

let test_log_add () =
  let la = log 3.0 and lb = log 4.0 in
  Alcotest.(check (float 1e-9)) "3+4" (log 7.0) (Combin.Logspace.log_add la lb);
  Alcotest.(check (float 1e-9)) "neg_inf id" la
    (Combin.Logspace.log_add la neg_infinity)

let test_log_sum () =
  let xs = [| log 1.0; log 2.0; log 3.0 |] in
  Alcotest.(check (float 1e-9)) "1+2+3" (log 6.0) (Combin.Logspace.log_sum xs);
  Alcotest.(check (float 1e-9)) "empty" neg_infinity (Combin.Logspace.log_sum [||])

let direct_binomial_sf ~n ~p f =
  let total = ref 0.0 in
  for j = max 0 f to n do
    total :=
      !total
      +. (float_of_int (Combin.Binomial.exact n j)
          *. (p ** float_of_int j)
          *. ((1.0 -. p) ** float_of_int (n - j)))
  done;
  !total

let test_binomial_sf_vs_direct =
  qtest ~count:100 "sf matches direct sum"
    QCheck2.Gen.(triple (int_range 1 30) (float_bound_exclusive 1.0) (int_range 0 30))
    (fun (n, p, f) ->
      let f = min f n in
      let direct = direct_binomial_sf ~n ~p f in
      let ours = exp (Combin.Logspace.log_binomial_sf ~n ~p f) in
      abs_float (ours -. direct) < 1e-9 *. (1.0 +. direct))

let test_binomial_sf_table =
  qtest ~count:50 "table matches pointwise sf"
    QCheck2.Gen.(pair (int_range 1 40) (float_bound_exclusive 1.0))
    (fun (n, p) ->
      let table = Combin.Logspace.log_binomial_sf_table ~n ~p in
      let ok = ref true in
      for f = 0 to n do
        let pointwise = Combin.Logspace.log_binomial_sf ~n ~p f in
        if
          not
            (pointwise = neg_infinity && table.(f) = neg_infinity
            || abs_float (table.(f) -. pointwise) < 1e-9)
        then ok := false
      done;
      !ok && table.(n + 1) = neg_infinity)

let test_binomial_pmf_degenerate () =
  Alcotest.(check (float 0.0)) "p=0, j=0" 0.0
    (Combin.Logspace.log_binomial_pmf ~n:5 ~p:0.0 0);
  Alcotest.(check (float 0.0)) "p=0, j=1" neg_infinity
    (Combin.Logspace.log_binomial_pmf ~n:5 ~p:0.0 1);
  Alcotest.(check (float 0.0)) "p=1, j=n" 0.0
    (Combin.Logspace.log_binomial_pmf ~n:5 ~p:1.0 5)

(* ------------------------------------------------------------------ *)
(* Intset *)

let sorted_gen = QCheck2.Gen.(list_size (int_range 0 20) (int_range 0 30))

let test_intset_ops =
  qtest "ops agree with list model"
    QCheck2.Gen.(pair sorted_gen sorted_gen)
    (fun (la, lb) ->
      let a = Combin.Intset.of_array (Array.of_list la) in
      let b = Combin.Intset.of_array (Array.of_list lb) in
      let module S = Set.Make (Int) in
      let sa = S.of_list la and sb = S.of_list lb in
      let arr s = Array.of_list (S.elements s) in
      Combin.Intset.inter a b = arr (S.inter sa sb)
      && Combin.Intset.union a b = arr (S.union sa sb)
      && Combin.Intset.diff a b = arr (S.diff sa sb)
      && Combin.Intset.inter_size a b = S.cardinal (S.inter sa sb)
      && Combin.Intset.subset a b = S.subset sa sb)

let test_intset_mem =
  qtest "mem agrees with linear search"
    QCheck2.Gen.(pair sorted_gen (int_range 0 30))
    (fun (l, x) ->
      let a = Combin.Intset.of_array (Array.of_list l) in
      Combin.Intset.mem a x = Array.exists (fun y -> y = x) a)

let test_intset_of_array () =
  Alcotest.(check bool) "dedup + sort" true
    (Combin.Intset.equal
       (Combin.Intset.of_array [| 5; 1; 5; 3; 1 |])
       [| 1; 3; 5 |])

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_sorts =
  qtest "pops in nondecreasing key order"
    QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 100.0))
    (fun keys ->
      let h = Combin.Heap.create () in
      List.iteri (fun i k -> Combin.Heap.push h k i) keys;
      let rec drain prev acc =
        match Combin.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) ->
            if k < prev then raise Exit;
            drain k (k :: acc)
      in
      match drain neg_infinity [] with
      | drained -> List.length drained = List.length keys
      | exception Exit -> false)

let test_heap_interleaved () =
  let h = Combin.Heap.create () in
  Combin.Heap.push h 5.0 "e";
  Combin.Heap.push h 1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "peek min" (Some (1.0, "a"))
    (Combin.Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop min" (Some (1.0, "a"))
    (Combin.Heap.pop h);
  Combin.Heap.push h 3.0 "c";
  Combin.Heap.push h 0.5 "z";
  Alcotest.(check (option (pair (float 0.0) string))) "new min" (Some (0.5, "z"))
    (Combin.Heap.pop h);
  Alcotest.(check int) "size" 2 (Combin.Heap.size h);
  Alcotest.(check bool) "not empty" false (Combin.Heap.is_empty h)

let test_int_max_heap_order =
  qtest "Int_max pops key-desc, ties payload-asc"
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 20) (int_range 0 50)))
    (fun entries ->
      let h = Combin.Heap.Int_max.create () in
      List.iter (fun (key, p) -> Combin.Heap.Int_max.push h ~key p) entries;
      let rec drain prev acc =
        match Combin.Heap.Int_max.pop h with
        | None -> List.rev acc
        | Some ((key, p) as e) ->
            (match prev with
            | Some (pk, pp) when key > pk || (key = pk && p < pp) -> raise Exit
            | _ -> ());
            drain (Some e) (e :: acc)
      in
      match drain None [] with
      | drained ->
          List.length drained = List.length entries
          && List.sort compare (List.map (fun (k, p) -> (k, p)) entries)
             = List.sort compare drained
      | exception Exit -> false)

let test_int_max_heap_peek () =
  let h = Combin.Heap.Int_max.create () in
  Alcotest.(check bool) "empty" true (Combin.Heap.Int_max.is_empty h);
  Combin.Heap.Int_max.push h ~key:3 10;
  Combin.Heap.Int_max.push h ~key:7 20;
  Combin.Heap.Int_max.push h ~key:7 5;
  Alcotest.(check (option (pair int int))) "peek max, low payload"
    (Some (7, 5)) (Combin.Heap.Int_max.peek h);
  Alcotest.(check (option (pair int int))) "pop" (Some (7, 5))
    (Combin.Heap.Int_max.pop h);
  Alcotest.(check (option (pair int int))) "then high payload" (Some (7, 20))
    (Combin.Heap.Int_max.pop h);
  Alcotest.(check int) "size" 1 (Combin.Heap.Int_max.size h)

let test_int_max_push_many =
  (* Heap order is a strict total order, so a batch insert must yield
     the exact pop sequence of one-at-a-time pushes — the property the
     CELF loser re-push relies on. *)
  qtest "push_many pops identically to repeated push"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) (pair (int_range 0 15) (int_range 0 40)))
        (list_size (int_range 0 60) (pair (int_range 0 15) (int_range 0 40))))
    (fun (pre, batch) ->
      let one = Combin.Heap.Int_max.create () in
      let many = Combin.Heap.Int_max.create () in
      List.iter
        (fun (key, p) ->
          Combin.Heap.Int_max.push one ~key p;
          Combin.Heap.Int_max.push many ~key p)
        pre;
      List.iter (fun (key, p) -> Combin.Heap.Int_max.push one ~key p) batch;
      let keys = Array.of_list (List.map fst batch) in
      let payloads = Array.of_list (List.map snd batch) in
      Combin.Heap.Int_max.push_many many ~keys ~payloads
        ~count:(Array.length keys);
      let drain h =
        let rec go acc =
          match Combin.Heap.Int_max.pop h with
          | None -> List.rev acc
          | Some e -> go (e :: acc)
        in
        go []
      in
      drain one = drain many)

let test_int_max_clear =
  (* clear + refill must behave exactly like a fresh heap — the reuse
     path the frontier's per-worker greedy-completion probes sit on. *)
  qtest "clear then refill = fresh heap"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 80) (pair (int_range 0 15) (int_range 0 40)))
        (list_size (int_range 0 80) (pair (int_range 0 15) (int_range 0 40))))
    (fun (first, second) ->
      let reused = Combin.Heap.Int_max.create () in
      List.iter (fun (key, p) -> Combin.Heap.Int_max.push reused ~key p) first;
      Combin.Heap.Int_max.clear reused;
      if not (Combin.Heap.Int_max.is_empty reused) then false
      else begin
        let fresh = Combin.Heap.Int_max.create () in
        List.iter
          (fun (key, p) ->
            Combin.Heap.Int_max.push reused ~key p;
            Combin.Heap.Int_max.push fresh ~key p)
          second;
        let drain h =
          let rec go acc =
            match Combin.Heap.Int_max.pop h with
            | None -> List.rev acc
            | Some e -> go (e :: acc)
          in
          go []
        in
        drain reused = drain fresh
      end)

(* ------------------------------------------------------------------ *)
(* Csr *)

let test_csr_of_arrays () =
  let rows = [| [| 3; 1; 3 |]; [||]; [| 0 |] |] in
  let c = Combin.Csr.of_arrays ~cols:4 rows in
  Alcotest.(check int) "rows" 3 (Combin.Csr.rows c);
  Alcotest.(check int) "cols" 4 (Combin.Csr.cols c);
  Alcotest.(check int) "entries_total" 4 (Combin.Csr.entries_total c);
  Alcotest.(check int) "max_degree" 3 (Combin.Csr.max_degree c);
  Alcotest.(check int) "degree 1" 0 (Combin.Csr.degree c 1);
  (* Row order and within-row entry order (duplicates included) are
     preserved verbatim. *)
  Array.iteri
    (fun u expect ->
      Alcotest.(check (array int))
        (Printf.sprintf "row %d" u)
        expect (Combin.Csr.row c u))
    rows;
  Alcotest.check_raises "entry out of range"
    (Invalid_argument "Csr.of_arrays: entry out of range") (fun () ->
      ignore (Combin.Csr.of_arrays ~cols:2 [| [| 2 |] |]))

let csr_sets_gen =
  (* [rows] units and a pile of member sets over them, duplicates
     allowed (a set may hold the same unit twice — multiplicity). *)
  QCheck2.Gen.(
    let* rows = int_range 1 20 in
    let* sets =
      list_size (int_range 0 40)
        (list_size (int_range 0 6) (int_range 0 (rows - 1)))
    in
    return (rows, Array.of_list (List.map Array.of_list sets)))

let test_csr_invert_transposes =
  qtest "invert is the transposed incidence"
    csr_sets_gen
    (fun (rows, sets) ->
      let c = Combin.Csr.invert ~rows sets in
      let expect u =
        (* Every i with u ∈ sets.(i), ascending, once per occurrence. *)
        let acc = ref [] in
        Array.iteri
          (fun i set ->
            Array.iter (fun m -> if m = u then acc := i :: !acc) set)
          sets;
        List.rev !acc
      in
      Combin.Csr.rows c = rows
      && Combin.Csr.cols c = Array.length sets
      && (let ok = ref true in
          for u = 0 to rows - 1 do
            if Array.to_list (Combin.Csr.row c u) <> expect u then ok := false
          done;
          !ok))

let test_csr_group =
  qtest "group concatenates member rows in order"
    QCheck2.Gen.(
      let* rows = int_range 1 12 in
      let* boxed =
        array_size (return rows)
          (array_size (int_range 0 5) (int_range 0 9))
      in
      let* members =
        array_size (int_range 1 4)
          (array_size (int_range 0 6) (int_range 0 (rows - 1)))
      in
      return (boxed, members))
    (fun (boxed, members) ->
      let c = Combin.Csr.of_arrays ~cols:10 boxed in
      let g = Combin.Csr.group c members in
      let ok = ref (Combin.Csr.rows g = Array.length members
                    && Combin.Csr.cols g = 10) in
      Array.iteri
        (fun gi ms ->
          let expect =
            Array.concat (Array.to_list (Array.map (fun u -> boxed.(u)) ms))
          in
          if Combin.Csr.row g gi <> expect then ok := false)
        members;
      !ok)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let bitset_model_gen =
  (* A capacity plus a sequence of add/remove ops to interleave. *)
  QCheck2.Gen.(
    let* cap = int_range 1 200 in
    let* ops = list_size (int_range 0 120) (pair bool (int_range 0 (cap - 1))) in
    return (cap, ops))

let test_bitset_vs_model =
  qtest "add/remove/mem/count/iter match a set model" bitset_model_gen
    (fun (cap, ops) ->
      let t = Combin.Bitset.create cap in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, x) ->
          if add then begin
            Combin.Bitset.add t x;
            Hashtbl.replace model x ()
          end
          else begin
            Combin.Bitset.remove t x;
            Hashtbl.remove model x
          end)
        ops;
      let expect =
        Hashtbl.fold (fun x () acc -> x :: acc) model [] |> Array.of_list
        |> Combin.Intset.of_array
      in
      Combin.Bitset.count t = Array.length expect
      && Combin.Bitset.to_array t = expect
      && Array.for_all (fun x -> Combin.Bitset.mem t x) expect
      && Combin.Bitset.is_empty t = (Array.length expect = 0))

let test_bitset_algebra =
  qtest "inter/union/diff/inter_count match Intset"
    QCheck2.Gen.(
      let* cap = int_range 1 150 in
      let* xs = list_size (int_range 0 80) (int_range 0 (cap - 1)) in
      let* ys = list_size (int_range 0 80) (int_range 0 (cap - 1)) in
      return (cap, Array.of_list xs, Array.of_list ys))
    (fun (cap, xs, ys) ->
      let sa = Combin.Intset.of_array xs and sb = Combin.Intset.of_array ys in
      let a = Combin.Bitset.of_array ~capacity:cap xs in
      let b = Combin.Bitset.of_array ~capacity:cap ys in
      Combin.Bitset.to_array (Combin.Bitset.inter a b) = Combin.Intset.inter sa sb
      && Combin.Bitset.to_array (Combin.Bitset.union a b) = Combin.Intset.union sa sb
      && Combin.Bitset.to_array (Combin.Bitset.diff a b) = Combin.Intset.diff sa sb
      && Combin.Bitset.inter_count a b = Combin.Intset.inter_size sa sb
      && Combin.Bitset.equal a (Combin.Bitset.copy a))

let test_bitset_edges () =
  let t = Combin.Bitset.create 64 in
  (* Word boundaries: 62/63 straddle the first 63-bit word. *)
  List.iter (Combin.Bitset.add t) [ 0; 62; 63 ];
  Alcotest.(check int) "count" 3 (Combin.Bitset.count t);
  Alcotest.(check (array int)) "boundary bits" [| 0; 62; 63 |]
    (Combin.Bitset.to_array t);
  Combin.Bitset.remove t 62;
  Alcotest.(check bool) "62 gone" false (Combin.Bitset.mem t 62);
  Alcotest.(check bool) "63 kept" true (Combin.Bitset.mem t 63);
  Combin.Bitset.clear t;
  Alcotest.(check bool) "cleared" true (Combin.Bitset.is_empty t);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset.add: 64 out of [0, 64)") (fun () ->
      Combin.Bitset.add t 64);
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset.inter_count: capacities 64 <> 63") (fun () ->
      ignore (Combin.Bitset.inter_count t (Combin.Bitset.create 63)))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Combin.Stats.mean a);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Combin.Stats.variance a);
  let lo, hi = Combin.Stats.min_max a in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 4.0 hi;
  Alcotest.(check (float 1e-9)) "median" 2.5 (Combin.Stats.percentile a 0.5)

let test_stats_cdf () =
  let pts = Combin.Stats.cdf_points [| 0.2; 0.1; 0.2; 0.4 |] in
  Alcotest.(check int) "distinct values" 3 (List.length pts);
  let _, top = List.nth pts 2 in
  Alcotest.(check (float 1e-9)) "last fraction is 1" 1.0 top;
  let v, frac = List.nth pts 1 in
  Alcotest.(check (float 1e-9)) "0.2 value" 0.2 v;
  Alcotest.(check (float 1e-9)) "0.2 cumfrac" 0.75 frac

let test_stats_cdf_monotone =
  qtest "cdf monotone in value and fraction"
    QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 1.0))
    (fun l ->
      let pts = Combin.Stats.cdf_points (Array.of_list l) in
      let rec check = function
        | (v1, f1) :: ((v2, f2) :: _ as rest) ->
            v1 < v2 && f1 < f2 && check rest
        | _ -> true
      in
      check pts)

let () =
  Alcotest.run "combin"
    [
      ( "binomial",
        [
          Alcotest.test_case "small values" `Quick test_binomial_small;
          test_binomial_pascal;
          test_binomial_symmetry;
          test_binomial_log_vs_exact;
          Alcotest.test_case "overflow" `Quick test_binomial_overflow;
          Alcotest.test_case "ratio_exact" `Quick test_ratio_exact;
          Alcotest.test_case "divides" `Quick test_divides;
          Alcotest.test_case "falling" `Quick test_falling;
        ] );
      ( "subset",
        [
          test_subset_count;
          test_subset_sorted_distinct;
          test_subset_rank_roundtrip;
          Alcotest.test_case "ranks bijective" `Quick test_subset_ranks_distinct;
          Alcotest.test_case "sub_iter" `Quick test_sub_iter;
          Alcotest.test_case "pairs" `Quick test_pairs;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers;
          test_sample_distinct;
          Alcotest.test_case "sample coverage" `Quick test_sample_distinct_uniformish;
          test_shuffle_permutation;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
        ] );
      ( "logspace",
        [
          Alcotest.test_case "log_add" `Quick test_log_add;
          Alcotest.test_case "log_sum" `Quick test_log_sum;
          test_binomial_sf_vs_direct;
          test_binomial_sf_table;
          Alcotest.test_case "pmf degenerate" `Quick test_binomial_pmf_degenerate;
        ] );
      ( "intset",
        [
          test_intset_ops;
          test_intset_mem;
          Alcotest.test_case "of_array" `Quick test_intset_of_array;
        ] );
      ( "heap",
        [
          test_heap_sorts;
          Alcotest.test_case "interleaved ops" `Quick test_heap_interleaved;
          test_int_max_heap_order;
          Alcotest.test_case "int_max peek/pop" `Quick test_int_max_heap_peek;
          test_int_max_push_many;
          test_int_max_clear;
        ] );
      ( "csr",
        [
          Alcotest.test_case "of_arrays" `Quick test_csr_of_arrays;
          test_csr_invert_transposes;
          test_csr_group;
        ] );
      ( "bitset",
        [
          test_bitset_vs_model;
          test_bitset_algebra;
          Alcotest.test_case "edges" `Quick test_bitset_edges;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "cdf points" `Quick test_stats_cdf;
          test_stats_cdf_monotone;
        ] );
    ]
