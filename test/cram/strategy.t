The strategies subcommand lists every registered placement family.

  $ placement-tool strategies
  Registered placement strategies:
    adaptive   [deterministic,online]                   online Combo (Sec. IV-D future work): objects routed to the level whose effective lambda grows least
    combo      [deterministic]                          Combo(<lambda_x>): the Sec. III-B1 dynamic program over Simple(x, lambda) levels (Lemma 3 guarantee)
    copyset    [randomized]                             copyset replication (Cidon et al. 2013), scatter width 2(r-1); a Simple(0, lambda) placement in the paper's vocabulary
    optimal    [deterministic,exact-small]              exhaustive search for the availability-optimal placement (tiny instances only; raises over budget)
    random     [randomized,load-balanced]               load-balanced uniform placement (Definition 4); guarantee from the ceil(r*b/n) load cap, probable availability from Theorem 2
    random-spread [randomized]                             randomized placement constrained to at most cap replicas per fault domain (requires --topology)
    simple     [deterministic]                          best single Simple(x, lambda) level: the materialized design maximizing the Lemma 2 bound
    simple-spread [deterministic]                          deterministic round-robin across fault domains, at most cap replicas per domain (requires --topology)

Every subcommand taking --strategy rejects unknown names with the list of
registered ones.

  $ placement-tool plan -n 31 -b 600 --strategy bogus
  placement-tool: unknown strategy "bogus"; available strategies: adaptive, combo, copyset, optimal, random, random-spread, simple, simple-spread
  [124]

plan dispatches through the registry; the default is still combo.

  $ placement-tool plan -n 31 -b 600 -r 3 -s 2 -k 3 --strategy adaptive
  Adaptive placement plan for {b=600; r=3; s=2; n=31; k=3}
    effective lambda per level: 0,4
    offline DP at the same population would guarantee 588
  guaranteed available objects (worst 3 failures): 588 / 600
  Random placement, probable availability:          575 / 600
  => Adaptive saves 13 of the 25 objects Random probably loses.

  $ placement-tool plan -n 31 -b 600 -r 3 -s 2 -k 3 --strategy random
  Random placement plan for {b=600; r=3; s=2; n=31; k=3}
    load cap ceil(r*b/n) = 59 replicas/node (Definition 4)
    probable availability (Definition 6): 575 / 600
  guaranteed available objects (worst 3 failures): 512 / 600
  Random placement, probable availability:          575 / 600
  => Random probably does better here (by 63 objects).

analyze works for any strategy, reporting its guarantee next to the
any-placement upper bound and the exact-adversary work estimate.

  $ placement-tool analyze -n 31 -b 600 -r 3 -s 2 -k 3 --strategy copyset
  Worst-case analysis of the Copyset strategy
    parameters: {b=600; r=3; s=2; n=31; k=3}
    scatter width 4 => 2 permutations of 31 nodes chopped into copysets
    worst-case guarantee (Lemmas 2-3): 495 / 600
    upper bound for any placement: 600 / 600
    exact adversary affordable: true (estimated work 2.61e+05)

simulate accepts any registered strategy.

  $ placement-tool simulate -n 31 -b 100 -r 3 -s 2 -k 3 --strategy copyset -j 1
  Simulated worst-case attack on a Copyset placement
    failed nodes: [2, 3, 13]
    failed objects: 17 / 100  (adversary exact)
    available: 83

attack can plan-and-attack a strategy directly instead of loading a file.

  $ placement-tool attack --strategy random -n 31 -b 100 -k 3 -j 1
  Worst-case attack on a Random placement (b=100, n=31, r=3)
    failed nodes: [10, 16, 21]
    available objects: 93 / 100 (adversary exact)

but refuses ambiguous or under-specified invocations:

  $ placement-tool attack
  one of --layout FILE, --strategy NAME or --random N,B,R,SEED is required
  [1]

  $ placement-tool attack --strategy random
  --strategy needs -n and -b to size the instance
  [1]
