Deterministic simulation testing: seeded scenario sweeps through the
continuous engine, the invariant registry checked after every applied
event, fault injection surfacing as rejections, and a shrinker that
minimizes failing histories to replayable repro files.

A pinned sweep is clean, and its envelope is byte-identical at any -j
even with fault injection armed.

  $ placement-tool dst -n 16 --seed 1 --runs 2 --steps 120 --measure-every 30 --profile steady,membership --strategy combo
  Deterministic simulation sweep on n=16 nodes (r=3, s=2, k=2)
    config: seeds 1..2, profiles steady,membership, strategies combo, 120 steps, measure every 30, inject off
    [seed 1 steady/combo] 125 events, 125 applied, 0 rejected, inject 0/0, min worst 0, final live=64 avail=53 lb=62 ok
    [seed 2 steady/combo] 125 events, 125 applied, 0 rejected, inject 0/0, min worst 0, final live=56 avail=55 lb=54 ok
    [seed 1 membership/combo] 128 events, 128 applied, 0 rejected, inject 0/0, min worst 0, final live=65 avail=65 lb=63 ok
    [seed 2 membership/combo] 128 events, 128 applied, 0 rejected, inject 0/0, min worst 0, final live=73 avail=73 lb=70 ok
    summary: 4 runs, 0 violations

  $ placement-tool dst -n 16 --seed 1 --runs 2 --steps 120 --measure-every 30 --profile steady,storm --strategy combo,simple --inject 40 --json -j1 > j1.json
  $ placement-tool dst -n 16 --seed 1 --runs 2 --steps 120 --measure-every 30 --profile steady,storm --strategy combo,simple --inject 40 --json -j4 > j4.json
  $ cmp j1.json j4.json && echo identical
  identical

Injected faults are absorbed as rejections — counted in the envelope,
never violations.

  $ placement-tool dst -n 16 --seed 2 --steps 150 --measure-every 50 --profile storm --strategy none --inject 10
  Deterministic simulation sweep on n=16 nodes (r=3, s=2, k=2)
    config: seeds 2..2, profiles storm, strategies none, 150 steps, measure every 50, inject 1/10
    [seed 2 storm/none] 157 events, 141 applied, 16 rejected, inject 15/157, min worst 0, final live=59 avail=59 lb=57 ok
    summary: 1 runs, 0 violations

Unknown names die with the catalogue.

  $ placement-tool dst --profile bogus
  unknown profile "bogus"; available: steady, storm, membership, cascade
  [1]
  $ placement-tool dst --strategy bogus 2>&1 | head -c 26; echo
  unknown strategy "bogus"; 
  $ placement-tool dst --break canary/bogus
  unknown canary invariant "canary/bogus"; available: canary/full-availability
  [1]

A deliberately broken canary invariant trips, the run exits non-zero,
and --shrink minimizes the history to a small repro file.

  $ placement-tool dst -n 16 --seed 5 --steps 80 --measure-every 30 --profile steady --strategy none --break canary/full-availability --shrink --repro repro.events
  Deterministic simulation sweep on n=16 nodes (r=3, s=2, k=2)
    config: seeds 5..5, profiles steady, strategies none, 80 steps, measure every 30, inject off
    [seed 5 steady/none] 83 events, 65 applied, 0 rejected, inject 0/0, min worst 0, final live=35 avail=34 lb=34 VIOLATION canary/full-availability @ step 64: available 34 < live 35 (as designed)
    summary: 1 runs, 1 violations
    shrink: canary/full-availability reproduced by 10 events (64 candidates tried) -> repro.events
  [1]

The repro file is a commented, replayable event script; replaying it
reproduces the same invariant violation.

  $ head -1 repro.events
  # dst repro: invariant canary/full-availability violated
  $ grep -vc '^#' repro.events
  10
  $ placement-tool dst --events repro.events -n 16 --seed 5 --profile steady --strategy none --break canary/full-availability
  Deterministic simulation sweep on n=16 nodes (r=3, s=2, k=2)
    replaying repro.events (10 events)
    [seed 5 steady/none] 10 events, 10 applied, 0 rejected, inject 0/0, min worst 0, final live=8 avail=7 lb=7 VIOLATION canary/full-availability @ step 9: available 7 < live 8 (as designed)
    summary: 1 runs, 1 violations
  [1]
