The topology subcommand parses a spec and describes its levels,
coarsest first.

  $ placement-tool topology zone:2/rack:4/node:8
  64 nodes, 3 levels: zone x2, rack x8, node x64
    zone          2 domain(s), 32 node(s) each
    rack          8 domain(s), 8 node(s) each
    node         64 domain(s), 1 node(s) each

  $ placement-tool topology zone:2/rack:4/node:8 --json
  {
    "schema": "placement/v1",
    "command": "topology",
    "data": {
      "nodes": 64,
      "levels": [
        {
          "name": "zone",
          "domains": 2,
          "min_size": 32,
          "max_size": 32
        },
        {
          "name": "rack",
          "domains": 8,
          "min_size": 8,
          "max_size": 8
        },
        {
          "name": "node",
          "domains": 64,
          "min_size": 1,
          "max_size": 1
        }
      ]
    }
  }

A malformed spec is a one-line actionable error.

  $ placement-tool topology 'rack:'
  invalid topology spec: component "rack:" must have an integer COUNT >= 1
  [1]

--topology on plan installs the fault-domain tree: the spread strategies
plan against it and the domain-failure lower bound is reported.

  $ placement-tool plan -n 20 -b 100 -r 3 -s 2 -k 4 \
  >   --topology rack:4/node:5 --fail-domains 2 --strategy simple-spread
  Simple-spread placement plan for {b=100; r=3; s=2; n=20; k=4}
    topology: 20 nodes, 2 levels: rack x4, node x20
    constraint: at most 1 replica(s) per rack (simple-spread)
    any 1 simultaneous rack failure(s) kill zero objects (j*cap < s=2)
    domain failures: worst 2 rack(s) cover <= 10 node(s); any load-balanced placement keeps >= 25 / 100
  guaranteed available objects (worst 4 failures): 70 / 100
  Random placement, probable availability:          80 / 100
  => Random probably does better here (by 10 objects).

simulate additionally runs the domain adversary; at spread cap 1 with
s = 2, one rack failure kills nothing even though the node adversary
with the same k still does damage.

  $ placement-tool simulate -n 20 -b 100 -r 3 -s 2 -k 4 \
  >   --topology rack:4/node:5 --strategy simple-spread
  Simulated worst-case attack on a Simple-spread placement
    failed nodes: [0, 5, 6, 11]
    failed objects: 25 / 100  (adversary exact)
    available: 75
    domain adversary (worst 1 rack(s)):
      failed domains: [0]
      failed nodes: [0, 1, 2, 3, 4]
      available: 100 / 100 (adversary exact)

The domain adversary is bit-identical at any -j, including through the
branch-and-bound path (C(20,6) = 38760 exceeds the exhaustive limit).

  $ placement-tool attack --strategy combo -n 60 -b 300 -r 3 -s 2 -k 4 \
  >   --topology rack:20/node:3 --fail-domains 6 -j 1 > j1.out
  $ placement-tool attack --strategy combo -n 60 -b 300 -r 3 -s 2 -k 4 \
  >   --topology rack:20/node:3 --fail-domains 6 -j 4 > j4.out
  $ diff j1.out j4.out
  $ cat j1.out
  Worst-case attack on a Combo placement (b=300, n=60, r=3)
    failed nodes: [30, 33, 36, 39]
    available objects: 294 / 300 (adversary exact)
    domain adversary (worst 6 rack(s)):
      failed domains: [5, 7, 10, 11, 14, 16]
      failed nodes: [15, 16, 17, 21, 22, 23, 30, 31, 32, 33, 34, 35, 42, 43,
                     44, 48, 49, 50]
      available: 189 / 300 (adversary exact)

Error paths are one-line and actionable, with non-zero exit.

An infeasible spread constraint (r = 5 replicas, 4 racks, cap 1):

  $ placement-tool simulate -n 20 -b 100 -r 5 -s 2 -k 5 \
  >   --topology rack:4/node:5 --strategy simple-spread
  simple-spread: cannot place r=5 replicas with at most 1 per rack: the 4 racks offer only 4 replica slots (sum of min(cap, size)); raise the spread cap or use a finer topology
  [1]

A topology whose node count does not match the instance:

  $ placement-tool plan -n 31 -b 600 -r 3 -s 2 -k 3 --topology rack:4/node:5
  --topology describes 20 nodes but the instance has n = 31; make the spec's counts multiply out to n
  [1]

An unknown --domain-level:

  $ placement-tool plan -n 20 -b 100 -r 3 -s 2 -k 4 \
  >   --topology rack:4/node:5 --domain-level zone
  --domain-level zone: no such level; this topology has: node, rack
  [1]

A --fail-domains budget beyond the domain count:

  $ placement-tool attack --strategy combo -n 20 -b 100 -r 3 -s 2 -k 4 \
  >   --topology rack:4/node:5 --fail-domains 9
  --fail-domains 9: must be between 1 and the 4 rack domain(s)
  [1]

A malformed --topology flag is rejected at parse time (cmdliner exit):

  $ placement-tool simulate -n 20 -b 100 -r 3 -s 2 -k 4 --topology 'rack:4/bogus'
  placement-tool: invalid --topology: component "bogus" must be NAME:COUNT (e.g. rack:4)
  [124]

Unwritable --metrics and --trace files fail cleanly instead of crashing:

  $ placement-tool plan -n 20 -b 100 -r 3 -s 2 -k 4 --metrics /no/such/dir/m.json > /dev/null
  cannot write /no/such/dir/m.json: No such file or directory
  [1]

  $ placement-tool plan -n 20 -b 100 -r 3 -s 2 -k 4 --trace /no/such/dir/t.json > /dev/null
  cannot write /no/such/dir/t.json: No such file or directory
  [1]
