The serve daemon: newline-delimited events and queries in, one
placement/v1 envelope per request out, and the whole conversation is
byte-identical to a batch `churn --events FILE --responses` replay.

  $ cat > script.txt <<'EOF'
  > # a serve session: grow, break, ask, heal
  > create
  > create
  > create
  > fail 1
  > query avail
  > query worst 2
  > leave 1
  > query lower-bound
  > join 1
  > stats
  > EOF

  $ placement-tool serve -n 8 -r 3 -s 2 -k 2 < script.txt
  {"schema": "placement/v1","command": "apply","data": {"seq": 1,"event": "create","moved": 3,"live": 1,"available": 1,"failed_nodes": 0,"lower_bound": 0}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 2,"event": "create","moved": 3,"live": 2,"available": 2,"failed_nodes": 0,"lower_bound": 1}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 3,"event": "create","moved": 3,"live": 3,"available": 3,"failed_nodes": 0,"lower_bound": 2}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 4,"event": "fail 1","moved": 0,"live": 3,"available": 3,"failed_nodes": 1,"lower_bound": 2}}
  {"schema": "placement/v1","command": "query","data": {"query": "avail","live": 3,"available": 3,"failed_nodes": 1,"nodes_in_service": 8}}
  {"schema": "placement/v1","command": "query","data": {"query": "worst","k": 2,"attack": [2,4],"worst_available": 2,"live": 3}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 5,"event": "leave 1","moved": 2,"live": 3,"available": 3,"failed_nodes": 0,"lower_bound": 2}}
  {"schema": "placement/v1","command": "query","data": {"query": "lower-bound","lower_bound": 2,"live": 3}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 6,"event": "join 1","moved": 0,"live": 3,"available": 3,"failed_nodes": 0,"lower_bound": 2}}
  {"schema": "placement/v1","command": "stats","data": {"requests": 10,"events": 6,"parse_errors": 0,"rejected": 0,"creates": 3,"deletes": 0,"node_fails": 1,"node_recovers": 0,"domain_fails": 0,"joins": 1,"leaves": 1,"measures": 0,"moved_replicas": 11,"live": 3,"available": 3,"failed_nodes": 0,"nodes_in_service": 8,"lower_bound": 2}}
  {"schema": "placement/v1","command": "summary","data": {"reason": "eof","stats": {"requests": 10,"events": 6,"parse_errors": 0,"rejected": 0,"creates": 3,"deletes": 0,"node_fails": 1,"node_recovers": 0,"domain_fails": 0,"joins": 1,"leaves": 1,"measures": 0,"moved_replicas": 11,"live": 3,"available": 3,"failed_nodes": 0,"nodes_in_service": 8,"lower_bound": 2}}}

The batch replay answers the same script with the same bytes, at any -j.

  $ placement-tool serve -n 8 -r 3 -s 2 -k 2 < script.txt > serve.out
  $ placement-tool churn -n 8 -r 3 -s 2 -k 2 --events script.txt --responses > batch.out
  $ cmp serve.out batch.out && echo identical
  identical
  $ placement-tool serve -n 8 -r 3 -s 2 -k 2 -j4 < script.txt > serve4.out
  $ cmp serve.out serve4.out && echo identical
  identical

Bad lines are answered inline with their line number — the session
survives and keeps serving.

  $ printf 'create\nfrobnicate 1\nfail\nquery avail\n' | placement-tool serve -n 4 -r 2 -s 1 -k 1
  {"schema": "placement/v1","command": "apply","data": {"seq": 1,"event": "create","moved": 2,"live": 1,"available": 1,"failed_nodes": 0,"lower_bound": 0}}
  {"schema": "placement/v1","command": "error","data": {"line": 2,"message": "unknown request \"frobnicate\" (expected an event — fail, recover, fail-domain, join, leave, create, delete, measure — or query worst/avail/lower-bound, advise create, or stats)"}}
  {"schema": "placement/v1","command": "error","data": {"line": 3,"message": "fail expects exactly one node id (e.g. \"fail 3\")"}}
  {"schema": "placement/v1","command": "query","data": {"query": "avail","live": 1,"available": 1,"failed_nodes": 0,"nodes_in_service": 4}}
  {"schema": "placement/v1","command": "summary","data": {"reason": "eof","stats": {"requests": 4,"events": 1,"parse_errors": 2,"rejected": 2,"creates": 1,"deletes": 0,"node_fails": 0,"node_recovers": 0,"domain_fails": 0,"joins": 0,"leaves": 0,"measures": 0,"moved_replicas": 2,"live": 1,"available": 1,"failed_nodes": 0,"nodes_in_service": 4,"lower_bound": 0}}}

`advise create` names the nodes the next create would use without
committing anything: the advice matches the create that follows, and
asking repeatedly does not move it.

  $ printf 'advise create\nadvise create\ncreate\nadvise create\n' | placement-tool serve -n 8 -r 3 -s 2 -k 2
  {"schema": "placement/v1","command": "query","data": {"query": "advise-create","nodes": [2,4,5],"live": 0}}
  {"schema": "placement/v1","command": "query","data": {"query": "advise-create","nodes": [2,4,5],"live": 0}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 1,"event": "create","moved": 3,"live": 1,"available": 1,"failed_nodes": 0,"lower_bound": 0}}
  {"schema": "placement/v1","command": "query","data": {"query": "advise-create","nodes": [2,3,6],"live": 1}}
  {"schema": "placement/v1","command": "summary","data": {"reason": "eof","stats": {"requests": 4,"events": 1,"parse_errors": 0,"rejected": 0,"creates": 1,"deletes": 0,"node_fails": 0,"node_recovers": 0,"domain_fails": 0,"joins": 0,"leaves": 0,"measures": 0,"moved_replicas": 3,"live": 1,"available": 1,"failed_nodes": 0,"nodes_in_service": 8,"lower_bound": 0}}}

Engine rejections are envelopes too, not crashes.

  $ printf 'fail 99\nleave 0\nleave 0\n' | placement-tool serve -n 4 -r 2 -s 1 -k 1
  {"schema": "placement/v1","command": "error","data": {"message": "Churn: node 99 out of range (n = 4)"}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 1,"event": "leave 0","moved": 0,"live": 0,"available": 0,"failed_nodes": 0,"lower_bound": 0}}
  {"schema": "placement/v1","command": "error","data": {"message": "Churn: cannot leave node 0 (it has left the cluster)"}}
  {"schema": "placement/v1","command": "summary","data": {"reason": "eof","stats": {"requests": 3,"events": 1,"parse_errors": 0,"rejected": 2,"creates": 0,"deletes": 0,"node_fails": 0,"node_recovers": 0,"domain_fails": 0,"joins": 0,"leaves": 1,"measures": 0,"moved_replicas": 0,"live": 0,"available": 0,"failed_nodes": 0,"nodes_in_service": 3,"lower_bound": 0}}}

The --max-events guard rail refuses further events and drains.

  $ printf 'create\ncreate\ncreate\n' | placement-tool serve -n 4 -r 2 -s 1 -k 1 --max-events 2
  {"schema": "placement/v1","command": "apply","data": {"seq": 1,"event": "create","moved": 2,"live": 1,"available": 1,"failed_nodes": 0,"lower_bound": 0}}
  {"schema": "placement/v1","command": "apply","data": {"seq": 2,"event": "create","moved": 2,"live": 2,"available": 2,"failed_nodes": 0,"lower_bound": 1}}
  {"schema": "placement/v1","command": "error","data": {"line": 3,"message": "event limit reached (--max-events 2); draining"}}
  {"schema": "placement/v1","command": "summary","data": {"reason": "max-events","stats": {"requests": 3,"events": 2,"parse_errors": 0,"rejected": 1,"creates": 2,"deletes": 0,"node_fails": 0,"node_recovers": 0,"domain_fails": 0,"joins": 0,"leaves": 0,"measures": 0,"moved_replicas": 4,"live": 2,"available": 2,"failed_nodes": 0,"nodes_in_service": 4,"lower_bound": 1}}}

Snapshots interleave with the responses every N applied events.

  $ printf 'create\ncreate\n' | placement-tool serve -n 4 -r 2 -s 1 -k 1 --snapshot-every 2 | grep -c snapshot
  1

--responses without --events has nothing to answer.

  $ placement-tool churn -n 4 --responses
  --responses needs --events FILE (the request script)
  [1]

Flag validation dies before the daemon starts.

  $ placement-tool serve -n 4 --max-events=-1 < /dev/null
  --max-events -1: the cap must be non-negative
  [1]
  $ placement-tool serve -n 4 --snapshot-every 0 < /dev/null
  --snapshot-every 0: the period must be positive
  [1]
  $ placement-tool serve -n 4 --timeout=-1 < /dev/null
  --timeout -1: the idle timeout must be non-negative
  [1]
