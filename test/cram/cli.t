The planner subcommand prints the Combo plan and both availability numbers.

  $ placement-tool plan -n 71 -b 1200 -r 3 -s 2 -k 4
  Combo placement plan for {b=1200; r=3; s=2; n=71; k=4}
    Simple(1, 2): nx=69 design=STS(69) objects=1200
  guaranteed available objects (worst 4 failures): 1188 / 1200
  Random placement, probable availability:          1175 / 1200
  => Combo saves 13 of the 25 objects Random probably loses.

The design catalogue lists both generated and literature entries.

  $ placement-tool designs -x 1 -r 5 --max-v 30
  Catalogue of 2-(v, 5, mu) designs with v <= 30, mu <= 1
    v=21   mu=1  blocks=21       PG(2,4)                        [materialized]
    v=25   mu=1  blocks=30       AG(2,5)                        [materialized]

Chunk planning (Observation 2) for a size with no single design.

  $ placement-tool gap -n 71 -x 1 -r 3
  Best chunk plan for n=71, x=1, r=3 (mu <= 1):
    chunk: STS(69) (v=69, mu=1, 782 blocks)
    lambda=1 capacity=782 ideal=828 gap=0.0556

Analysis of Random placement, including the s=1 Lemma-4 bound.

  $ placement-tool analyze -n 71 -b 2400 -r 3 -s 1 -k 5
  Worst-case analysis of load-balanced Random placement
    parameters: {b=2400; r=3; s=1; n=71; k=5}
    per-object kill probability under a fixed worst K: 1.994e-01
    prAvail_rnd (Definition 6): 1816 / 2400 (0.7567)
    Lemma 4 upper bound (s = 1): 1944.5

Simulate exports a layout; attack re-loads and re-attacks it.

  $ placement-tool simulate -n 31 -b 100 -r 3 -s 2 -k 3 --strategy combo --out layout.txt | tail -2
    available: 97
    layout written to layout.txt
  $ head -4 layout.txt
  # replica-placement layout v1
  n 31
  r 3
  b 100
  $ placement-tool attack --layout layout.txt -s 2 -k 4 | head -1
  Worst-case attack on layout.txt (b=100, n=31, r=3)

The -j flag never changes output: simulate and attack at -j 2 are
byte-identical to -j 1 (seeds are split before dispatch, results are
placed by index).

  $ placement-tool simulate -n 31 -b 100 -r 3 -s 2 -k 3 --strategy random --seed 7 -j 1 > j1.txt
  $ placement-tool simulate -n 31 -b 100 -r 3 -s 2 -k 3 --strategy random --seed 7 -j 2 > j2.txt
  $ diff j1.txt j2.txt
  $ placement-tool attack --layout layout.txt -s 2 -k 4 -j 1 > aj1.txt
  $ placement-tool attack --layout layout.txt -s 2 -k 4 -j 2 > aj2.txt
  $ diff aj1.txt aj2.txt

Malformed layouts are rejected with a line number.

  $ printf 'garbage\n' > bad.txt
  $ placement-tool attack --layout bad.txt
  cannot load bad.txt: truncated input (need header, n, r, b)
  [1]

The recommender sweeps (r, s) for the cheapest config meeting a target.

  $ placement-tool recommend -n 71 -b 2400 -k 4 --target 99.5
  Cheapest (r, s) guaranteeing >= 99.50% of 2400 objects against the worst 4 of 71 nodes
    r=2 s=2: guarantee 2394 (99.750%)  <- RECOMMENDED
