Argument validation: each rejection names the offending flag and says how
to fix it.  cmdliner reports term errors with exit status 124.

A non-positive object count:

  $ placement-tool plan -n 31 -b 0
  placement-tool: invalid parameters: b = 0: -b/--objects must be a positive object count
  [124]

Planning for more failures than there are nodes:

  $ placement-tool plan -n 31 -b 600 -k 40
  placement-tool: invalid parameters: k = 40 with only n = 31 nodes: planning for every node (or more) to fail guarantees nothing survives; -k/--failures must satisfy s <= k < n
  [124]

A fatality threshold above the replica count:

  $ placement-tool plan -n 31 -b 600 -r 3 -s 5
  placement-tool: invalid parameters: s = 5 exceeds r = 3: an object only has r replicas to lose, so -s/--fatal must satisfy 1 <= s <= r (raise -r or lower -s)
  [124]

Fewer nodes than replicas:

  $ placement-tool plan -n 2 -b 600 -r 3
  placement-tool: invalid parameters: n = 2 is smaller than r = 3: r replicas need r distinct nodes; raise -n/--nodes or lower -r/--replicas
  [124]

Fewer planned failures than the fatality threshold:

  $ placement-tool plan -n 31 -b 600 -r 3 -s 2 -k 1
  placement-tool: invalid parameters: k = 1 is below s = 2: fewer simultaneous failures than the fatality threshold cannot fail any object, so there is nothing to plan; raise -k/--failures
  [124]

A non-positive worker-domain count (previously silently clamped to 1):

  $ placement-tool simulate -n 31 -b 100 -j 0
  placement-tool: -j 0: the worker-domain count must be at least 1 (use -j 1 for the sequential path, or omit -j to use every core)
  [124]

  $ placement-tool attack --strategy random -n 31 -b 100 --jobs=-2
  placement-tool: -j -2: the worker-domain count must be at least 1 (use -j 1 for the sequential path, or omit -j to use every core)
  [124]
