The --random N,B,R,SEED flag materializes a synthetic load-balanced
Random placement without a layout file: n nodes, b objects, r replicas,
a fixed RNG seed.  Same seed, same instance — the attack is
reproducible.

  $ placement-tool attack --random 200,2000,3,7 -s 2 -k 4
  Worst-case attack on a synthetic random instance (seed 7) (b=2000, n=200, r=3)
    failed nodes: [16, 54, 66, 78]
    available objects: 1989 / 2000 (adversary heuristic)

The greedy adversary is deterministic at any worker count: -j 4 must
reproduce the -j 1 picks bit for bit (the sharded-CELF contract).

  $ placement-tool attack --random 200,2000,3,7 -s 2 -k 4 -j 4
  Worst-case attack on a synthetic random instance (seed 7) (b=2000, n=200, r=3)
    failed nodes: [16, 54, 66, 78]
    available objects: 1989 / 2000 (adversary heuristic)

analyze accepts the same spec and reports the synthetic instance next
to the closed-form Random analysis.

  $ placement-tool analyze --random 200,2000,3,7 -s 2 -k 4
  Worst-case analysis of load-balanced Random placement
    parameters: {b=2000; r=3; s=2; n=200; k=4}
    per-object kill probability under a fixed worst K: 8.984e-04
    prAvail_rnd (Definition 6): 1987 / 2000 (0.9935)
    synthetic instance (seed 7): max load 30
    greedy attack on it leaves: 1990 / 2000

A malformed spec and a conflicting source are both rejected.

  $ placement-tool attack --random 1,2,3 -s 2 -k 1
  --random 1,2,3: expected four comma-separated fields N,B,R,SEED
  [1]

  $ placement-tool attack --random 200,2000,3,7 --strategy simple -s 2 -k 4
  pass only one of --layout, --strategy and --random
  [1]
