The continuous churn engine: seeded replay is deterministic and
byte-identical at any -j.

  $ placement-tool churn -n 20 -r 3 -s 2 -k 3 --seed 7 --count 200 --measure-every 50
  Continuous churn replay on n=20 nodes (r=3, s=2, k=3)
    source: seeded stream (seed 7, 200 events, measure every 50)
    [t50] seq=51 live=23 avail=19 worst=20 min_worst=0 lb=20 failed_nodes=5 moved=87
    [t100] seq=102 live=33 avail=31 worst=30 min_worst=20 lb=30 failed_nodes=3 moved=153
    [t150] seq=153 live=57 avail=35 worst=54 min_worst=30 lb=54 failed_nodes=9 moved=243
    [t200] seq=204 live=78 avail=67 worst=72 min_worst=53 lb=72 failed_nodes=6 moved=333
    events: 204 (111 creates, 33 deletes, 31 fails, 25 recovers, 0 domain, 0 joins, 0 leaves, 4 measures)
    moved replicas: 333 (r=3 per create, at most r*load per leave, none otherwise)
    final: live=78 available=67 worst-case available=72 lower bound=72

  $ placement-tool churn -n 20 -r 3 -s 2 -k 3 --seed 7 --count 200 --measure-every 50 --json -j1 > j1.json
  $ placement-tool churn -n 20 -r 3 -s 2 -k 3 --seed 7 --count 200 --measure-every 50 --json -j4 > j4.json
  $ cmp j1.json j4.json && echo identical
  identical
  $ cat j1.json
  {
    "schema": "placement/v1",
    "command": "churn",
    "data": {
      "params": {
        "n": 20,
        "r": 3,
        "s": 2,
        "k": 3
      },
      "source": {
        "kind": "seeded",
        "seed": 7,
        "count": 200,
        "measure_every": 50
      },
      "rows": [
        {
          "seq": 51,
          "label": "t50",
          "live": 23,
          "available": 19,
          "failed_nodes": 5,
          "lower_bound": 20,
          "moved_replicas": 87,
          "worst_available": 20,
          "min_worst_available": 0
        },
        {
          "seq": 102,
          "label": "t100",
          "live": 33,
          "available": 31,
          "failed_nodes": 3,
          "lower_bound": 30,
          "moved_replicas": 153,
          "worst_available": 30,
          "min_worst_available": 20
        },
        {
          "seq": 153,
          "label": "t150",
          "live": 57,
          "available": 35,
          "failed_nodes": 9,
          "lower_bound": 54,
          "moved_replicas": 243,
          "worst_available": 54,
          "min_worst_available": 30
        },
        {
          "seq": 204,
          "label": "t200",
          "live": 78,
          "available": 67,
          "failed_nodes": 6,
          "lower_bound": 72,
          "moved_replicas": 333,
          "worst_available": 72,
          "min_worst_available": 53
        }
      ],
      "summary": {
        "seed": 7,
        "events": 204,
        "creates": 111,
        "deletes": 33,
        "node_fails": 31,
        "node_recovers": 25,
        "domain_fails": 0,
        "joins": 0,
        "leaves": 0,
        "measures": 4,
        "moved_replicas": 333,
        "live": 78,
        "available": 67,
        "worst_available": 72,
        "lower_bound": 72
      }
    }
  }

Replaying an explicit event file, with domain failures resolved
against a declared topology.

  $ cat > events.txt <<'EOF'
  > # warm up: three objects, then lose a rack
  > create
  > create
  > create
  > measure warm
  > fail-domain 1 0
  > measure degraded
  > recover 0
  > recover 1
  > delete 1
  > measure healed
  > EOF
  $ placement-tool churn -n 6 -r 2 -s 1 -k 2 --topology rack:3/node:2 --events events.txt
  Continuous churn replay on n=6 nodes (r=2, s=1, k=2)
    source: event file events.txt (10 events)
    [warm] seq=4 live=3 avail=3 worst=1 min_worst=0 lb=1 failed_nodes=0 moved=6
    [degraded] seq=6 live=3 avail=2 worst=1 min_worst=1 lb=1 failed_nodes=2 moved=6
    [healed] seq=10 live=2 avail=2 worst=0 min_worst=0 lb=0 failed_nodes=0 moved=6
    events: 10 (3 creates, 1 deletes, 0 fails, 2 recovers, 1 domain, 0 joins, 0 leaves, 3 measures)
    moved replicas: 6 (r=2 per create, at most r*load per leave, none otherwise)
    final: live=2 available=2 worst-case available=0 lower bound=0

Membership churn: a leave re-homes the departing node's replicas (at
most r per object it held) and a join re-admits it empty.

  $ cat > members.txt <<'EOF'
  > create
  > create
  > create
  > leave 0
  > measure shrunk
  > join 0
  > measure back
  > EOF
  $ placement-tool churn -n 4 -r 2 -s 1 -k 1 --events members.txt
  Continuous churn replay on n=4 nodes (r=2, s=1, k=1)
    source: event file members.txt (7 events)
    [shrunk] seq=5 live=3 avail=3 worst=0 min_worst=0 lb=0 failed_nodes=0 moved=10
    [back] seq=7 live=3 avail=3 worst=0 min_worst=0 lb=0 failed_nodes=0 moved=10
    events: 7 (3 creates, 0 deletes, 0 fails, 0 recovers, 0 domain, 1 joins, 1 leaves, 2 measures)
    moved replicas: 10 (r=2 per create, at most r*load per leave, none otherwise)
    final: live=3 available=3 worst-case available=0 lower bound=0

The seeded stream accepts join/leave weights; weight 0 (the default)
leaves historical streams byte-identical.

  $ placement-tool churn -n 20 -r 3 -s 2 -k 3 --seed 7 --count 200 --measure-every 50 --join-weight 0 --leave-weight 0 > w0.txt
  $ placement-tool churn -n 20 -r 3 -s 2 -k 3 --seed 7 --count 200 --measure-every 50 > def.txt
  $ cmp w0.txt def.txt && echo identical
  identical
  $ placement-tool churn -n 20 -r 3 -s 2 -k 3 --seed 7 --count 200 --measure-every 50 --join-weight 10 --leave-weight 10 | head -2
  Continuous churn replay on n=20 nodes (r=3, s=2, k=3)
    source: seeded stream (seed 7, 200 events, measure every 50), join/leave weights 10/10

Malformed event files die with one actionable line.

  $ placement-tool churn -n 10 --events missing.txt
  cannot read missing.txt: No such file or directory
  [1]

  $ printf 'create\nfrobnicate 3\n' > bad.txt
  $ placement-tool churn -n 10 --events bad.txt
  bad.txt:2: unknown event "frobnicate" (expected fail, recover, fail-domain, join, leave, create, delete or measure)
  [1]

  $ printf 'fail\n' > arity.txt
  $ placement-tool churn -n 10 --events arity.txt
  arity.txt:1: fail expects exactly one node id (e.g. "fail 3")
  [1]

  $ printf 'create\ndelete 99\n' > unknown.txt
  $ placement-tool churn -n 10 --events unknown.txt
  Churn: delete of unknown object id 99 (never created or already deleted)
  [1]

  $ printf 'fail 12\n' > range.txt
  $ placement-tool churn -n 10 --events range.txt
  Churn: node 12 out of range (n = 10)
  [1]
