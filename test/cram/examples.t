The bundled examples are pinned byte-for-byte: they double as end-to-end
tests of the Instance-based API (every one builds its cluster context
through Placement.Instance).

  $ ../../examples/quickstart.exe
  Combo plan: lower bound 588/600 objects survive any 3 failures
    level x=1: lambda=4, 600 objects on a PG(4,2)
  adversary (exact) fails 12 objects -> 588 available
  random placement under the same adversary: 575 available
  analytic prediction for random (prAvail): 575
  [t0: all 31 nodes up] failed_nodes=0 available=600 unavailable=0
  [t1: first node down] failed_nodes=1 available=600 unavailable=0
  [t2: second node down] failed_nodes=2 available=596 unavailable=4
  [t3: third node down (planned worst case)] failed_nodes=3 available=588 unavailable=12
  [t4: recovered] failed_nodes=0 available=600 unavailable=0

  $ ../../examples/vm_fault_tolerance.exe
  == VM fault tolerance: 400 primary/secondary VM pairs on 31 hosts ==
  k=2 hosts down: combo guarantees 399 up (measured 399); random placement: 396 up (predicted 396)
  k=3 hosts down: combo guarantees 397 up (measured 397); random placement: 391 up (predicted 390)
  k=4 hosts down: combo guarantees 394 up (measured 394); random placement: 384 up (predicted 384)
  two random racks down (8 hosts): 378 / 400 VMs survive on the combo layout
  guarantee against the worst 8 arbitrary hosts: 372

  $ ../../examples/storage_cluster.exe
  == 2400 chunks, r=3, on 71 storage nodes ==
  combo plan (s=2, k=5): lower bound 2363; lambda per level: 3,3
  -- combo (STS-based) placement --
    majority quorum        k=3: 2388 / 2400 chunks survive (exact adversary)
    majority quorum        k=5: 2364 / 2400 chunks survive (heuristic adversary)
    read-any (primary-backup) k=3: 2394 / 2400 chunks survive (exact adversary)
    read-any (primary-backup) k=5: 2391 / 2400 chunks survive (heuristic adversary)
  -- load-balanced random placement --
    majority quorum        k=3: 2378 / 2400 chunks survive (exact adversary)
    majority quorum        k=5: 2346 / 2400 chunks survive (heuristic adversary)
    read-any (primary-backup) k=3: 2397 / 2400 chunks survive (exact adversary)
    read-any (primary-backup) k=5: 2394 / 2400 chunks survive (heuristic adversary)
  draining nodes 12 and 40 for maintenance: 3 chunks lose majority

  $ ../../examples/capacity_planner.exe
  fleet: n=257 nodes, b=9600 objects; entries are objects surviving the worst k failures
  config         k      combo (guaranteed)     random (probable)     
  r=2 mirror     k=2    9599 (99.99%)          9596 (99.96%)           <- combo wins
  r=2 mirror     k=4    9594 (99.94%)          9586 (99.85%)           <- combo wins
  r=2 mirror     k=6    9585 (99.84%)          9575 (99.74%)           <- combo wins
  r=2 mirror     k=8    9572 (99.71%)          9561 (99.59%)           <- combo wins
  r=3 majority   k=2    9599 (99.99%)          9593 (99.93%)           <- combo wins
  r=3 majority   k=4    9594 (99.94%)          9577 (99.76%)           <- combo wins
  r=3 majority   k=6    9585 (99.84%)          9555 (99.53%)           <- combo wins
  r=3 majority   k=8    9572 (99.71%)          9528 (99.25%)           <- combo wins
  r=3 read-any   k=4    9598 (99.98%)          9597 (99.97%)           <- combo wins
  r=3 read-any   k=6    9595 (99.95%)          9594 (99.94%)           <- combo wins
  r=3 read-any   k=8    9591 (99.91%)          9590 (99.90%)           <- combo wins
  r=4 quorum     k=2    9598 (99.98%)          9591 (99.91%)           <- combo wins
  r=4 quorum     k=4    9588 (99.88%)          9567 (99.66%)           <- combo wins
  r=4 quorum     k=6    9570 (99.69%)          9532 (99.29%)           <- combo wins
  r=4 quorum     k=8    9544 (99.42%)          9489 (98.84%)           <- combo wins
  r=5 majority   k=4    9596 (99.96%)          9594 (99.94%)           <- combo wins
  r=5 majority   k=6    9580 (99.79%)          9588 (99.88%)           <- random wins
  r=5 majority   k=8    9563 (99.61%)          9580 (99.79%)           <- random wins
  
  sensitivity of the r=5 s=3 plan (configured for k=6) to the actual k:
    actual k=4: bound 9592
    actual k=5: bound 9587
    actual k=6: bound 9580
    actual k=7: bound 9572
    actual k=8: bound 9563
    actual k=10: bound 9540

  $ ../../examples/online_rebalancing.exe
  adaptive Combo placement on n=71 nodes (r=3, s=2, planned k=4)
  
  initial provisioning (500)   b=500   guarantee=494   offline-optimal=494   random-probable=485    (no cost of being online)
  growth burst (+800)          b=1300  guarantee=1288  offline-optimal=1288  random-probable=1273   (no cost of being online)
  decommission wave (-400)     b=900   guarantee=888   offline-optimal=888   random-probable=879    (no cost of being online)
  migration inflow (+1500)     b=2400  guarantee=2376  offline-optimal=2376  random-probable=2360   (no cost of being online)
  cleanup (-1000)              b=1400  guarantee=1376  offline-optimal=1388  random-probable=1372 
  steady growth (+2000)        b=3400  guarantee=3370  offline-optimal=3370  random-probable=3349   (no cost of being online)
  
  adversary check on the final layout: 3370 survive (guarantee was 3370, adversary heuristic)
  effective lambda per level: 0,5

  $ ../../examples/availability_timeline.exe
  long-run churn on n=31, b=600, r=3, majority quorums (same seed for all placements)
  combo      worst episode, objects up after each failure: 600 (node 2 down) 596 (node 12 down) 588 (node 14 down)
  combo      avg unavailable 5.507 / 600; peak 119 objs (9 nodes down); 1784 incidents; 2.04 nines
  random     worst episode, objects up after each failure: 600 (node 1 down) 597 (node 23 down) 577 (node 29 down)
  random     avg unavailable 5.594 / 600; peak 122 objs (9 nodes down); 1785 incidents; 2.03 nines
  copyset    worst episode, objects up after each failure: 600 (node 6 down) 564 (node 13 down) 531 (node 25 down)
  copyset    avg unavailable 5.297 / 600; peak 161 objs (9 nodes down); 871 incidents; 2.05 nines
  
  note: under RANDOM failures the three placements are nearly
  indistinguishable on long-run nines -- the paper's point is that the
  worst-case episode (see baseline-copyset bench) is where they differ.

  $ ../../examples/erasure_coding.exe
  (6,4) MDS coded stripes: a stripe dies after s = 3 fragment losses
  k=3 nodes down: combo guarantees 595/600 stripes (measured 595); random: 590 (predicted 590)
  k=4 nodes down: combo guarantees 580/600 stripes (measured 580); random: 578 (predicted 576)
  k=5 nodes down: combo guarantees 550/600 stripes (measured 554); random: 560 (predicted 554)
  
  designs used at k=4:
    x=2 lambda=5: spherical(5^2) (600 stripes)
  cluster simulation agrees: 580 stripes reconstructable after the worst 4 failures
