Every JSON-emitting subcommand wraps its payload in the versioned
placement/v1 envelope: {"schema", "command", "data"}.

  $ placement-tool plan -n 31 -b 600 -r 3 -s 2 -k 3 --json
  {
    "schema": "placement/v1",
    "command": "plan",
    "data": {
      "report": {
        "strategy": "combo",
        "capabilities": [
          "deterministic"
        ],
        "params": {
          "n": 31,
          "b": 600,
          "r": 3,
          "s": 2,
          "k": 3
        },
        "lower_bound": 588,
        "upper_bound": 600,
        "notes": [
          "Simple(1, 4): nx=31 design=PG(4,2) objects=600"
        ]
      },
      "pr_avail": 575
    }
  }

  $ placement-tool analyze --strategy random -n 31 -b 600 -r 3 -s 2 -k 3 --json
  {
    "schema": "placement/v1",
    "command": "analyze",
    "data": {
      "report": {
        "strategy": "random",
        "capabilities": [
          "randomized",
          "load-balanced"
        ],
        "params": {
          "n": 31,
          "b": 600,
          "r": 3,
          "s": 2,
          "k": 3
        },
        "lower_bound": 512,
        "upper_bound": 600,
        "notes": [
          "load cap ceil(r*b/n) = 59 replicas/node (Definition 4)",
          "probable availability (Definition 6): 575 / 600"
        ]
      },
      "random": {
        "p_fail": 0.0189099,
        "pr_avail": 575,
        "fraction": 0.958333,
        "lemma4_upper": null
      },
      "exact_adversary_affordable": true,
      "attack_cost": 261000.0
    }
  }

  $ placement-tool attack --strategy combo -n 31 -b 600 -r 3 -s 2 -k 3 --json
  {
    "schema": "placement/v1",
    "command": "attack",
    "data": {
      "source": "a Combo placement",
      "attack": {
        "failed_nodes": [
          2,
          12,
          14
        ],
        "failed_objects": 12,
        "available": 588,
        "exact": true
      }
    }
  }

  $ placement-tool simulate --strategy combo -n 31 -b 600 -r 3 -s 2 -k 3 --json
  {
    "schema": "placement/v1",
    "command": "simulate",
    "data": {
      "strategy": "combo",
      "params": {
        "n": 31,
        "b": 600,
        "r": 3,
        "s": 2,
        "k": 3
      },
      "attack": {
        "failed_nodes": [
          2,
          12,
          14
        ],
        "failed_objects": 12,
        "available": 588,
        "exact": true
      }
    }
  }

--metrics - appends the metrics envelope to stdout.  The "values"
section is the deterministic span tree: branch-and-bound node counts,
greedy evaluations, instance table builds — pinned here byte-for-byte
(the "timings" section is wall-clock and machine-dependent, so the
output is cut at its key).

  $ placement-tool attack --strategy combo -n 31 -b 600 -r 3 -s 2 -k 3 --metrics - | sed -n '/"timings"/q;p'
  Worst-case attack on a Combo placement (b=600, n=31, r=3)
    failed nodes: [2, 12, 14]
    available objects: 588 / 600 (adversary exact)
  {
    "schema": "placement/v1",
    "command": "metrics",
    "data": {
      "values": {
        "core/adversary/attack/calls": 1,
        "core/adversary/attack/exact_dispatch": 1,
        "core/adversary/bb/spawn_depth": 3.0,
        "core/adversary/greedy/marginal_evals": 121,
        "core/adversary/greedy/runs": 1,
        "core/adversary/kernel/heap_pops": 90,
        "core/adversary/kernel/stale_reevals": 1,
        "core/adversary/kernel/updates": 3,
        "core/instance/table_builds": 1
      },

The "values" section is bit-identical at any -j (the determinism
contract); only "timings" may differ.

  $ placement-tool attack --strategy combo -n 31 -b 600 -r 3 -s 2 -k 3 -j 1 --metrics j1.json > /dev/null
  $ placement-tool attack --strategy combo -n 31 -b 600 -r 3 -s 2 -k 3 -j 2 --metrics j2.json > /dev/null
  $ sed -n '/"values"/,/"timings"/{/"timings"/!p;}' j1.json > v1.txt
  $ sed -n '/"values"/,/"timings"/{/"timings"/!p;}' j2.json > v2.txt
  $ diff v1.txt v2.txt && echo VALUES_IDENTICAL
  VALUES_IDENTICAL

--trace writes a Chrome trace-event file (not enveloped: it is an
external format loaded by chrome://tracing / Perfetto).

  $ placement-tool attack --strategy combo -n 31 -b 600 -r 3 -s 2 -k 3 --trace trace.json > /dev/null
  $ grep -o '"name": "core/adversary/attack"' trace.json
  "name": "core/adversary/attack"
  $ grep -c traceEvents trace.json
  1
