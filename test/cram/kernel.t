The incremental attack kernel pins: the CELF lazy-greedy seed and the
kernel-backed branch-and-bound must stay byte-identical to the naive
full-rescan adversary they replaced, at any -j.

Node-level attack, Fig.-4-scale Combo instance: C(71,6) far exceeds the
exact-work limit, so this dispatches to local search seeded by the
lazy-greedy (kernel heap) path.

  $ placement-tool attack --strategy combo -n 71 -b 1200 -r 3 -s 2 -k 6 -j 1 > nj1.out
  $ placement-tool attack --strategy combo -n 71 -b 1200 -r 3 -s 2 -k 6 -j 4 > nj4.out
  $ diff nj1.out nj4.out
  $ cat nj1.out
  Worst-case attack on a Combo placement (b=1200, n=71, r=3)
    failed nodes: [36, 39, 42, 45, 48, 59]
    available objects: 1170 / 1200 (adversary heuristic)

A smaller instance inside the exact-work limit takes the kernel-threaded
branch-and-bound path (greedy seed + per-branch counter state).

  $ placement-tool attack --strategy combo -n 31 -b 150 -r 3 -s 2 -k 4 -j 1 > ej1.out
  $ placement-tool attack --strategy combo -n 31 -b 150 -r 3 -s 2 -k 4 -j 4 > ej4.out
  $ diff ej1.out ej4.out
  $ cat ej1.out
  Worst-case attack on a Combo placement (b=150, n=31, r=3)
    failed nodes: [11, 12, 13, 14]
    available objects: 144 / 150 (adversary exact)

Domain-level attack through --topology: fault domains carry replica
multiplicities, so the kernel runs its counter path (no per-object
bitsets); output is still -j invariant.

  $ placement-tool attack --strategy combo -n 72 -b 600 -r 3 -s 2 -k 4 \
  >   --topology rack:24/node:3 --fail-domains 7 -j 1 > tj1.out
  $ placement-tool attack --strategy combo -n 72 -b 600 -r 3 -s 2 -k 4 \
  >   --topology rack:24/node:3 --fail-domains 7 -j 4 > tj4.out
  $ diff tj1.out tj4.out
  $ cat tj1.out
  Worst-case attack on a Combo placement (b=600, n=72, r=3)
    failed nodes: [36, 39, 57, 60]
    available objects: 594 / 600 (adversary exact)
    domain adversary (worst 7 rack(s)):
      failed domains: [6, 8, 12, 13, 14, 17, 19]
      failed nodes: [18, 19, 20, 24, 25, 26, 36, 37, 38, 39, 40, 41, 42, 43,
                     44, 51, 52, 53, 57, 58, 59]
      available: 423 / 600 (adversary exact)
