#!/bin/sh
# One-shot health check: the full test suite plus the quick perf pass
# (adversary -j scaling + the cached-vs-uncached analysis sweep, which
# appends BENCH_adversary.json / BENCH_analysis.json in the repo root).
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- perf --quick
