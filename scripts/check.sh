#!/bin/sh
# One-shot health check: the full test suite plus the quick perf pass
# (adversary -j scaling + the cached-vs-uncached analysis sweep, which
# appends BENCH_adversary.json / BENCH_analysis.json in the repo root),
# then a telemetry smoke run: the --metrics output must carry the
# placement/v1 envelope and the disabled-instrumentation overhead guard
# (BENCH_telemetry.json, written by the perf pass) must hold.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- perf --quick

metrics=$(dune exec bin/placement_tool.exe -- attack --strategy combo \
  -n 31 -b 600 -r 3 -s 2 -k 3 --metrics -)
echo "$metrics" | grep -q '"schema": "placement/v1"' ||
  { echo "check.sh: --metrics output missing placement/v1 envelope" >&2; exit 1; }
echo "$metrics" | grep -q '"core/adversary/bb/nodes_expanded"' ||
  { echo "check.sh: --metrics output missing B&B search statistics" >&2; exit 1; }

tail -n 1 BENCH_telemetry.json | grep -q '"disabled_ok": true' ||
  { echo "check.sh: disabled-telemetry overhead guard failed (see BENCH_telemetry.json)" >&2; exit 1; }

echo "check.sh: all good"
