#!/bin/sh
# One-shot health check: the full test suite plus the quick perf pass
# (adversary -j scaling, the kernel-vs-naive greedy comparison, the
# sharded-frontier vs branch-parallel exact-adversary row, the
# cached-vs-uncached analysis sweep and the domain-adversary B&B
# scaling, which append BENCH_adversary.json / BENCH_analysis.json /
# BENCH_topology.json in the repo root), then a
# telemetry smoke run (--metrics must carry the placement/v1 envelope,
# the disabled-instrumentation overhead guard must hold) and a topology
# smoke run (rack adversary vs node adversary sanity inequality, domain
# adversary -j determinism), and a churn smoke (a 10^4-event seeded
# trace replayed through the continuous engine, diffed byte-for-byte
# against the pinned envelope in scripts/churn_smoke.expected; the
# churn_trace row in BENCH_churn.json must report incremental ≡
# from-scratch re-scores and bounded per-event data movement), and
# finally the serve gates (a fixed event+query script answered over
# stdin must be byte-identical to the batch churn --responses replay
# at -j1 and -j4, a SIGTERM mid-session must still flush a summary
# envelope naming the signal, and the serve_pipe row in
# BENCH_churn.json must report matching engine states with peak-RSS),
# and the dst gates (a pinned multi-seed simulation sweep with fault
# injection armed must hold every invariant bit-identically at -j1 and
# -j4, a deliberately broken canary must shrink to a <= 25-event repro
# that replays to the same violation, and the dst_sweep row in
# BENCH_dst.json must report zero violations with peak-RSS).
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- perf --quick

metrics=$(dune exec bin/placement_tool.exe -- attack --strategy combo \
  -n 31 -b 600 -r 3 -s 2 -k 3 --metrics -)
echo "$metrics" | grep -q '"schema": "placement/v1"' ||
  { echo "check.sh: --metrics output missing placement/v1 envelope" >&2; exit 1; }
echo "$metrics" | grep -q '"core/adversary/bb/nodes_expanded"' ||
  { echo "check.sh: --metrics output missing B&B search statistics" >&2; exit 1; }

tail -n 1 BENCH_telemetry.json | grep -q '"disabled_ok": true' ||
  { echo "check.sh: disabled-telemetry overhead guard failed (see BENCH_telemetry.json)" >&2; exit 1; }

# Kernel guard: the incremental-counter greedy must pick the same nodes
# as the frozen naive rescan on the Fig-4 sweep instance (see the
# adversary_kernel_vs_naive row the perf pass just appended).  Pick
# identity is the hard correctness gate.  The wall-clock ratio is noisy
# on a ~70-node micro-benchmark (machine load, CPU frequency scaling,
# virtualized CI), so the hard perf gate is a loose >= 1.2x floor that
# only a real regression should cross; anything under the nominal 2x is
# surfaced as an advisory warning.  (Marginal-eval counts are in the
# JSON row too, but they are no proxy: CELF re-checks can exceed the
# rescan's eval count — the kernel wins on per-eval cost.)
kernel_row=$(grep '"op": "adversary_kernel_vs_naive"' BENCH_adversary.json | tail -n 1)
[ -n "$kernel_row" ] ||
  { echo "check.sh: no adversary_kernel_vs_naive row in BENCH_adversary.json" >&2; exit 1; }
echo "$kernel_row" | grep -q '"identical": true' ||
  { echo "check.sh: kernel greedy picks differ from the naive rescan (see BENCH_adversary.json)" >&2; exit 1; }
kernel_speedup=$(echo "$kernel_row" | sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p')
[ -n "$kernel_speedup" ] && awk "BEGIN { exit !($kernel_speedup >= 1.2) }" ||
  { echo "check.sh: kernel greedy speedup ${kernel_speedup:-unknown} < 1.2x over naive (see BENCH_adversary.json)" >&2; exit 1; }
if awk "BEGIN { exit !($kernel_speedup < 2.0) }"; then
  echo "check.sh: advisory: kernel greedy wall-clock speedup $kernel_speedup < nominal 2x (see BENCH_adversary.json)" >&2
fi

# Scaling sweep gate: the quick perf pass appends an
# adversary_scaling_sweep row (the n x b grid over the CSR kernel and
# the sharded CELF path).  Hard gate: the row must exist and every cell
# must report bit-identical picks between the sequential scan and the
# sharded reduce ("identical_all": true) — that is the determinism
# contract.  Wall-clock parallel speedup depends on the host's core
# count (a 1-core container can never exceed 1x), so the speedup floor
# is advisory only, per the nominal 0.5x sanity line: the sharded path
# sharing one counter plane should never cost more than ~2x the
# sequential scan even under full core contention.
scaling_row=$(grep '"op": "adversary_scaling_sweep"' BENCH_adversary.json | tail -n 1)
[ -n "$scaling_row" ] ||
  { echo "check.sh: no adversary_scaling_sweep row in BENCH_adversary.json" >&2; exit 1; }
echo "$scaling_row" | grep -q '"identical_all": true' ||
  { echo "check.sh: sharded greedy picks differ from sequential in the scaling sweep (see BENCH_adversary.json)" >&2; exit 1; }
echo "$scaling_row" | grep -q '"peak_rss_kb"' ||
  { echo "check.sh: scaling sweep row is missing peak_rss_kb (see BENCH_adversary.json)" >&2; exit 1; }
scaling_speedup=$(echo "$scaling_row" | sed -n 's/.*"largest_cell_speedup": \([0-9.]*\).*/\1/p')
if [ -n "$scaling_speedup" ] && awk "BEGIN { exit !($scaling_speedup < 0.5) }"; then
  echo "check.sh: advisory: sharded greedy speedup $scaling_speedup < nominal 0.5x on the largest cell (see BENCH_adversary.json)" >&2
fi

# Sharded-frontier gate: the quick perf pass appends a
# bb_sharded_vs_branch row (the PR-10 work-stealing B&B frontier vs a
# frozen copy of the branch-parallel static-split search it replaced,
# both diffed against the sequential oracle at k=6–7).  Hard gate: the
# row must exist and every cell must report identical damage AND
# winning set across all arms ("identical_all": true) — the frontier's
# determinism contract (DESIGN.md §15).  The k=6 speedup over the
# branch-parallel arm is wall-clock (a 1-core container can never show
# a parallel win), so the nominal 1.2x floor is advisory only.
bb_row=$(grep '"op": "bb_sharded_vs_branch"' BENCH_adversary.json | tail -n 1)
[ -n "$bb_row" ] ||
  { echo "check.sh: no bb_sharded_vs_branch row in BENCH_adversary.json" >&2; exit 1; }
echo "$bb_row" | grep -q '"identical_all": true' ||
  { echo "check.sh: sharded frontier attack differs from the branch-parallel or oracle arm (see BENCH_adversary.json)" >&2; exit 1; }
bb_speedup=$(echo "$bb_row" | sed -n 's/.*"k6_speedup_vs_branch": \([0-9.]*\).*/\1/p')
if [ -n "$bb_speedup" ] && awk "BEGIN { exit !($bb_speedup < 1.2) }"; then
  echo "check.sh: advisory: frontier speedup $bb_speedup < nominal 1.2x over branch-parallel at k=6 (see BENCH_adversary.json)" >&2
fi

# Frontier -j determinism on the CLI path: the same exact attack must
# be byte-identical at -j1 and -j4 (pruning reads a shared incumbent,
# but the (value, lexicographic) merge pins the reported set).
dune exec bin/placement_tool.exe -- attack --strategy combo \
  -n 31 -b 600 -r 3 -s 2 -k 4 -j1 > attack_j1.out
dune exec bin/placement_tool.exe -- attack --strategy combo \
  -n 31 -b 600 -r 3 -s 2 -k 4 -j4 > attack_j4.out
cmp attack_j1.out attack_j4.out ||
  { echo "check.sh: exact attack output differs between -j1 and -j4" >&2; exit 1; }
rm -f attack_j1.out attack_j4.out

# Frontier telemetry: on an instance big enough to actually spawn tasks
# (n=71: spawn depth 2 < k), the --metrics envelope must carry the new
# frontier counters — the task count and spawn depth are Stable, the
# node count rides in the volatile section.
bb_metrics=$(dune exec bin/placement_tool.exe -- attack --strategy combo \
  -n 71 -b 2400 -r 3 -s 2 -k 3 --metrics -)
for counter in 'core/adversary/bb/spawned_tasks' 'core/adversary/bb/spawn_depth' \
  'core/adversary/bb/nodes_expanded'; do
  echo "$bb_metrics" | grep -q "\"$counter\"" ||
    { echo "check.sh: --metrics output missing $counter" >&2; exit 1; }
done

# Topology smoke: on a regular 4x5 topology the rack adversary (worst 1
# rack = 5 nodes) can never beat the node adversary given the same 5-node
# budget, so its availability must be >= the node adversary's.
topo=$(dune exec bin/placement_tool.exe -- attack --strategy simple \
  -n 20 -b 100 -r 3 -s 2 -k 5 --topology rack:4/node:5 --fail-domains 1)
node_avail=$(echo "$topo" | sed -n 's/^ *available objects: \([0-9]*\) .*/\1/p')
rack_avail=$(echo "$topo" | sed -n 's/^ *available: \([0-9]*\) .*/\1/p')
[ -n "$node_avail" ] && [ -n "$rack_avail" ] && [ "$rack_avail" -ge "$node_avail" ] ||
  { echo "check.sh: topology smoke failed (rack adversary $rack_avail < node adversary $node_avail)" >&2; exit 1; }

tail -n 1 BENCH_topology.json | grep -q '"identical": true' ||
  { echo "check.sh: domain adversary -j determinism guard failed (see BENCH_topology.json)" >&2; exit 1; }

# Churn gates: the quick perf pass appends a churn_trace row (the
# continuous engine on an n=10^3 population).  Hard gates: the
# incremental per-event re-score must be bit-identical to a from-scratch
# kernel rebuild ("incremental_eq_scratch": true — picks, damage and
# scan stats, re-verified by the engine's own oracle), and no event may
# move more than r replicas ("moved_bounded": true — the
# bounded-data-movement contract).  The re-score speedup is what the
# incremental kernel buys and is recorded in the row, but it is
# wall-clock and therefore advisory only.
churn_row=$(grep '"op": "churn_trace"' BENCH_churn.json | tail -n 1)
[ -n "$churn_row" ] ||
  { echo "check.sh: no churn_trace row in BENCH_churn.json" >&2; exit 1; }
echo "$churn_row" | grep -q '"incremental_eq_scratch": true' ||
  { echo "check.sh: incremental churn re-score differs from from-scratch evaluation (see BENCH_churn.json)" >&2; exit 1; }
echo "$churn_row" | grep -q '"moved_bounded": true' ||
  { echo "check.sh: churn trace moved more than r replicas on one event (see BENCH_churn.json)" >&2; exit 1; }
churn_speedup=$(echo "$churn_row" | sed -n 's/.*"rescore_speedup": \([0-9.]*\).*/\1/p')
if [ -n "$churn_speedup" ] && awk "BEGIN { exit !($churn_speedup < 1.0) }"; then
  echo "check.sh: advisory: incremental re-score speedup $churn_speedup < 1x over from-scratch (see BENCH_churn.json)" >&2
fi

# Churn smoke: a 10^4-event seeded trace through the continuous engine,
# with per-event incremental worst-case re-scoring, must reproduce the
# pinned placement/v1 envelope byte for byte (determinism contract:
# same stream, same bytes, at any -j).
dune exec bin/placement_tool.exe -- churn -n 50 -r 3 -s 2 -k 3 \
  --seed 7 --count 10000 --measure-every 500 --json > churn_smoke.json
diff scripts/churn_smoke.expected churn_smoke.json ||
  { echo "check.sh: churn smoke diverged from the pinned envelope (scripts/churn_smoke.expected)" >&2; exit 1; }
rm -f churn_smoke.json

# Serve gates.  (1) Protocol determinism: a fixed event+query script
# piped into the serve daemon over stdin must answer byte-identically
# to the batch `churn --events FILE --responses` replay, at -j1 and
# -j4 — serve and batch share one Api path, and this is the contract
# that keeps them honest.
cat > serve_script.txt <<'EOF'
create
create
create
fail 1
query avail
query worst 3
leave 1
query lower-bound
join 1
create
delete 0
query worst
stats
EOF
dune exec bin/placement_tool.exe -- serve -n 12 -r 3 -s 2 -k 2 \
  < serve_script.txt > serve_stdin.out
dune exec bin/placement_tool.exe -- churn -n 12 -r 3 -s 2 -k 2 \
  --events serve_script.txt --responses > serve_batch.out
cmp serve_stdin.out serve_batch.out ||
  { echo "check.sh: serve over stdin diverged from batch churn --responses" >&2; exit 1; }
dune exec bin/placement_tool.exe -- serve -n 12 -r 3 -s 2 -k 2 -j4 \
  < serve_script.txt > serve_j4.out
cmp serve_stdin.out serve_j4.out ||
  { echo "check.sh: serve output differs between -j1 and -j4" >&2; exit 1; }
rm -f serve_script.txt serve_stdin.out serve_batch.out serve_j4.out

# (2) Graceful drain: SIGTERM mid-session must still flush a valid
# final summary envelope naming the signal.  The daemon reads from a
# FIFO held open by a sleeping writer, so only the signal can end it.
serve_fifo=$(mktemp -u serve_fifo.XXXXXX)
mkfifo "$serve_fifo"
sleep 5 > "$serve_fifo" &
fifo_holder=$!
_build/default/bin/placement_tool.exe serve -n 8 -r 3 -s 2 -k 2 \
  < "$serve_fifo" > serve_sigterm.out &
serve_pid=$!
sleep 1
kill -TERM "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
kill "$fifo_holder" 2>/dev/null || true
wait "$fifo_holder" 2>/dev/null || true
rm -f "$serve_fifo"
grep -q '"command": "summary"' serve_sigterm.out ||
  { echo "check.sh: SIGTERM drain emitted no summary envelope" >&2; exit 1; }
grep -q '"reason": "signal"' serve_sigterm.out ||
  { echo "check.sh: SIGTERM drain summary does not name the signal" >&2; exit 1; }
rm -f serve_sigterm.out

# (3) Serve throughput row: the quick perf pass appends a serve_pipe
# row (the serve loop vs raw applies on the same stream).  Hard gate:
# both engines must land in the same state ("engines_agree": true) and
# the row must carry peak_rss_kb; the protocol-overhead ratio is
# wall-clock and advisory only, per the nominal 2x line — parsing and
# envelope rendering should stay within 2x of raw applies.
serve_row=$(grep '"op": "serve_pipe"' BENCH_churn.json | tail -n 1)
[ -n "$serve_row" ] ||
  { echo "check.sh: no serve_pipe row in BENCH_churn.json" >&2; exit 1; }
echo "$serve_row" | grep -q '"engines_agree": true' ||
  { echo "check.sh: serve loop and raw applies landed in different engine states (see BENCH_churn.json)" >&2; exit 1; }
echo "$serve_row" | grep -q '"peak_rss_kb"' ||
  { echo "check.sh: serve_pipe row is missing peak_rss_kb (see BENCH_churn.json)" >&2; exit 1; }
serve_overhead=$(echo "$serve_row" | sed -n 's/.*"protocol_overhead": \([0-9.]*\).*/\1/p')
if [ -n "$serve_overhead" ] && awk "BEGIN { exit !($serve_overhead > 2.0) }"; then
  echo "check.sh: advisory: serve protocol overhead ${serve_overhead}x > nominal 2x over raw applies (see BENCH_churn.json)" >&2
fi

# Dst gates.  (1) Pinned seed sweep: 3 seeds x 2 profiles x 2
# strategies through the deterministic simulation harness with fault
# injection armed — every invariant (engine oracle, Lemma-3 lower
# bound, movement budget, in-service placement, replay, per-strategy
# promises) must hold on every step, and the envelope must be
# bit-identical at -j1 and -j4 (per-domain injection arming keeps
# pool-fanned runs deterministic).
dune exec bin/placement_tool.exe -- dst -n 20 --seed 1 --runs 3 \
  --steps 150 --measure-every 50 --profile steady,storm \
  --strategy combo,simple --inject 30 --json -j1 > dst_j1.json ||
  { echo "check.sh: dst sweep reported an invariant violation (see dst_j1.json)" >&2; exit 1; }
dune exec bin/placement_tool.exe -- dst -n 20 --seed 1 --runs 3 \
  --steps 150 --measure-every 50 --profile steady,storm \
  --strategy combo,simple --inject 30 --json -j4 > dst_j4.json ||
  { echo "check.sh: dst sweep reported an invariant violation at -j4" >&2; exit 1; }
cmp dst_j1.json dst_j4.json ||
  { echo "check.sh: dst sweep envelope differs between -j1 and -j4" >&2; exit 1; }
grep -q '"violations": 0' dst_j1.json ||
  { echo "check.sh: dst sweep summary reports violations (see dst_j1.json)" >&2; exit 1; }
rm -f dst_j1.json dst_j4.json

# (2) Shrinker smoke: a deliberately broken canary invariant must
# trip under fault injection, shrink to a repro of at most 25 events,
# and the written repro file must replay to the same violation.
if dune exec bin/placement_tool.exe -- dst -n 20 --seed 7 --steps 150 \
  --measure-every 50 --profile storm --strategy none \
  --break canary/full-availability --inject 25 --shrink \
  --repro dst_repro.events > dst_shrink.out; then
  echo "check.sh: the canary invariant did not trip (see dst_shrink.out)" >&2; exit 1
fi
grep -q 'VIOLATION canary/full-availability' dst_shrink.out ||
  { echo "check.sh: shrinker smoke tripped the wrong invariant (see dst_shrink.out)" >&2; exit 1; }
repro_events=$(grep -vc '^#' dst_repro.events)
[ "$repro_events" -le 25 ] ||
  { echo "check.sh: shrunk repro has $repro_events events > 25 (see dst_repro.events)" >&2; exit 1; }
if dune exec bin/placement_tool.exe -- dst --events dst_repro.events \
  -n 20 --seed 7 --profile storm --strategy none --inject 25 \
  --break canary/full-availability > dst_replay.out; then
  echo "check.sh: the shrunk repro no longer violates on replay" >&2; exit 1
fi
grep -q 'VIOLATION canary/full-availability' dst_replay.out ||
  { echo "check.sh: the repro replays to a different invariant (see dst_replay.out)" >&2; exit 1; }
rm -f dst_repro.events dst_shrink.out dst_replay.out

# (3) Dst throughput row: the quick perf pass appends a dst_sweep row
# to BENCH_dst.json (full invariant-checked runs fanned through the
# pool).  Hard gate: the row must exist, report zero violations and
# carry peak_rss_kb; events/s is wall-clock and recorded for trend
# only.
dst_row=$(grep '"op": "dst_sweep"' BENCH_dst.json | tail -n 1)
[ -n "$dst_row" ] ||
  { echo "check.sh: no dst_sweep row in BENCH_dst.json" >&2; exit 1; }
echo "$dst_row" | grep -q '"zero_violations": true' ||
  { echo "check.sh: dst sweep bench reported invariant violations (see BENCH_dst.json)" >&2; exit 1; }
echo "$dst_row" | grep -q '"peak_rss_kb"' ||
  { echo "check.sh: dst_sweep row is missing peak_rss_kb (see BENCH_dst.json)" >&2; exit 1; }

echo "check.sh: all good"
