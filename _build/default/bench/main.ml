(* Benchmark & reproduction harness.

   Usage:
     bench/main.exe                     run every artefact, then perf
     bench/main.exe fig2                one artefact (see list below)
     bench/main.exe all --out results/  also write one file per artefact
     bench/main.exe quick               cheap subset (used by CI/tests)

   Artefacts: fig2..fig11, theorem1, ablation-adversary, ablation-random,
   ablation-load, ablation-online, baseline-copyset, perf.

   Each figN prints the rows/series of the corresponding figure or table
   of the paper (see DESIGN.md §4 and EXPERIMENTS.md). *)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core algorithms                    *)

let perf_tests () =
  let open Bechamel in
  let sts69 = Designs.Steiner_triple.make 69 in
  let layout_2400 =
    (Placement.Simple.of_design sts69 ~n:71 ~b:2400).Placement.Simple.layout
  in
  let params_9600 = Placement.Params.make ~b:9600 ~r:3 ~s:3 ~n:71 ~k:5 in
  let levels = Placement.Combo.default_levels ~n:71 ~r:3 ~s:3 () in
  let params_rnd = Placement.Params.make ~b:600 ~r:3 ~s:2 ~n:71 ~k:4 in
  [
    Test.make ~name:"sts_69"
      (Staged.stage (fun () -> Designs.Steiner_triple.make 69));
    Test.make ~name:"sts_255"
      (Staged.stage (fun () -> Designs.Steiner_triple.make 255));
    Test.make ~name:"spherical_17"
      (Staged.stage (fun () -> Designs.Spherical.make ~q:4 ~d:2));
    Test.make ~name:"sqs_32"
      (Staged.stage (fun () -> Designs.Quadruple.make 32));
    Test.make ~name:"difference_family_41_5"
      (Staged.stage (fun () -> Designs.Difference_family.find ~v:41 ~r:5 ()));
    Test.make ~name:"combo_dp_b9600"
      (Staged.stage (fun () -> Placement.Combo.optimize ~levels params_9600));
    Test.make ~name:"pr_avail_b38400"
      (Staged.stage (fun () ->
           Placement.Random_analysis.pr_avail
             (Placement.Params.make ~b:38400 ~r:3 ~s:2 ~n:71 ~k:5)));
    Test.make ~name:"adversary_greedy_b2400"
      (Staged.stage (fun () ->
           Placement.Adversary.greedy layout_2400 ~s:2 ~k:4));
    Test.make ~name:"random_place_b600"
      (let rng = Combin.Rng.create 42 in
       Staged.stage (fun () -> Placement.Random_placement.place ~rng params_rnd));
    Test.make ~name:"adaptive_add_1k"
      (Staged.stage (fun () ->
           let t = Placement.Adaptive.create ~n:71 ~r:3 ~s:2 ~k:4 () in
           ignore (Placement.Adaptive.add_many t 1000)));
  ]

let run_perf fmt =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests = Test.make_grouped ~name:"repro" ~fmt:"%s/%s" (perf_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> rows := (name, t) :: !rows
          | _ -> ())
        tbl;
      List.iter
        (fun (name, t) -> Format.fprintf fmt "%-36s %14.1f ns/run@." name t)
        (List.sort compare !rows))
    results

(* ------------------------------------------------------------------ *)
(* Artefact table                                                      *)

let artefacts : (string * string * (Format.formatter -> unit)) list =
  [
    ("fig2", "Fig 2", Experiments.Fig2.print);
    ("fig3", "Fig 3", Experiments.Fig3.print);
    ("fig4", "Fig 4", Experiments.Fig4.print);
    ("fig5", "Fig 5", Experiments.Fig5.print_fig5);
    ("fig6", "Fig 6", Experiments.Fig5.print_fig6);
    ("fig7", "Fig 7", fun fmt -> Experiments.Fig7.print fmt);
    ("fig8", "Fig 8", Experiments.Fig8.print);
    ("fig9", "Fig 9", Experiments.Fig9.print);
    ("fig10", "Fig 10", Experiments.Fig10.print);
    ("fig11", "Fig 11", Experiments.Fig11.print);
    ("theorem1", "Theorem 1", Experiments.Theorem1.print);
    ("ablation-adversary", "Ablation: adversary", Experiments.Ablation.print_adversary);
    ("ablation-random", "Ablation: random placement", Experiments.Ablation.print_random);
    ("ablation-load", "Ablation: load balance", Experiments.Ablation.print_load);
    ("ablation-online", "Ablation: online vs offline", Experiments.Ablation.print_online);
    ("baseline-copyset", "Baseline: copyset replication", Experiments.Baseline.print);
    ("perf", "Perf (Bechamel micro-benchmarks)", run_perf);
  ]

let run_one ~out (name, title, print) =
  (* Render once into a buffer so expensive artefacts are not recomputed
     when also writing to a file. *)
  let buf = Buffer.create 4096 in
  let bfmt = Format.formatter_of_buffer buf in
  print bfmt;
  Format.pp_print_flush bfmt ();
  let text = Buffer.contents buf in
  let stdout_fmt = Format.std_formatter in
  Format.fprintf stdout_fmt "@.==== %s ====@.%s" title text;
  match out with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".txt") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc text);
      Format.fprintf stdout_fmt "(written to %s)@." path

let run_quick () =
  let fmt = Format.std_formatter in
  Format.fprintf fmt "@.==== Quick subset ====@.";
  Experiments.Fig4.print fmt;
  Experiments.Fig8.print fmt;
  Experiments.Fig11.print fmt;
  Experiments.Theorem1.print fmt

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec split_out acc = function
    | "--out" :: dir :: rest -> (List.rev_append acc rest, Some dir)
    | x :: rest -> split_out (x :: acc) rest
    | [] -> (List.rev acc, None)
  in
  let selectors, out = split_out [] args in
  (match out with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  match selectors with
  | [] | [ "all" ] -> List.iter (run_one ~out) artefacts
  | [ "quick" ] -> run_quick ()
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) artefacts with
          | Some artefact -> run_one ~out artefact
          | None ->
              Format.eprintf "unknown artefact %S@." name;
              exit 2)
        names
