examples/availability_timeline.mli:
