examples/erasure_coding.mli:
