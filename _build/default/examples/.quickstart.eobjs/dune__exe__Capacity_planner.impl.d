examples/capacity_planner.ml: List Placement Printf
