examples/storage_cluster.ml: Array Combin Dsim List Placement Printf String
