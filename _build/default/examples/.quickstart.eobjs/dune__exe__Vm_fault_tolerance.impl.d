examples/vm_fault_tolerance.ml: Array Combin Dsim List Placement Printf
