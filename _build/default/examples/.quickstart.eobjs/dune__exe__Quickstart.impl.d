examples/quickstart.ml: Array Combin Designs Dsim Format List Placement Printf
