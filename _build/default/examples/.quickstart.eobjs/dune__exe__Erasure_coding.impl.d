examples/erasure_coding.ml: Array Combin Designs Dsim List Placement Printf
