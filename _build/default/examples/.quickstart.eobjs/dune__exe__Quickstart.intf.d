examples/quickstart.mli:
