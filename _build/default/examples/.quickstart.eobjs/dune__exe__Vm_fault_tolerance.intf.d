examples/vm_fault_tolerance.mli:
