examples/online_rebalancing.mli:
