examples/online_rebalancing.ml: Array Combin List Placement Printf String
