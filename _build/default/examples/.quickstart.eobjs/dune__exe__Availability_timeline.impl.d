examples/availability_timeline.ml: Combin Dsim Placement Printf
