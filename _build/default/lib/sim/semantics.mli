(** Object access semantics and their fatality thresholds.

    The paper deliberately decouples r (replicas) from s (replica failures
    that kill the object) to cover different replication protocols
    (Sec. I).  This module maps concrete protocols onto s:

    - primary-backup / read-any: the object survives while {e any} replica
      survives — s = r;
    - majority quorums: the object survives while a majority of its r
      replicas survive — s = ⌈r/2⌉ failures are fatal... specifically the
      object fails as soon as fewer than ⌊r/2⌋+1 replicas remain;
    - write-all / strict: any replica failure is fatal — s = 1;
    - MDS erasure codes: (r, j) coding survives while j of the r
      fragments do — s = r − j + 1;
    - an explicit threshold for anything else. *)

type t =
  | Read_any  (** primary-backup(s): one live replica suffices *)
  | Majority  (** quorum reads/writes: need ⌊r/2⌋+1 live replicas *)
  | Write_all  (** updates must reach every replica *)
  | Erasure of int
      (** an MDS (r, j) erasure code storing one fragment per node: the
          object survives while ≥ j = data fragments survive, so
          s = r − j + 1.  The paper's replica/threshold model covers
          coded storage exactly this way. *)
  | Threshold of int  (** custom s *)

val fatality_threshold : t -> r:int -> int
(** The paper's s for this semantics and replication factor.
    @raise Invalid_argument if the result leaves [1 <= s <= r]. *)

val describe : t -> string

val pp : Format.formatter -> t -> unit
