(** Mutable cluster state: a placement plus the up/down status of every
    node, with incremental tracking of per-object replica losses.

    This is the executable model behind the examples and the empirical
    experiments: fail nodes (by choice, at random, or adversarially),
    observe which objects remain available under a given access
    semantics, recover, repeat. *)

type t

val create : ?racks:int array -> Placement.Layout.t -> Semantics.t -> t
(** [create layout sem] starts with all nodes up.  [racks], if given,
    assigns node [i] to rack [racks.(i)] (length n) for correlated
    failures; default is one rack per node. *)

val layout : t -> Placement.Layout.t
val semantics : t -> Semantics.t
val fatality_threshold : t -> int

val n : t -> int
val b : t -> int

val node_up : t -> int -> bool
val failed_nodes : t -> int array
(** Sorted list of currently failed nodes. *)

val fail_node : t -> int -> unit
(** Idempotent. *)

val recover_node : t -> int -> unit
(** Idempotent. *)

val fail_rack : t -> int -> unit
(** Fail every node of a rack. *)

val rack_of : t -> int -> int
(** Rack id of a node. *)

val rack_ids : t -> int array
(** Distinct rack ids, ascending. *)

val rack_nodes : t -> int -> int array
(** Nodes of a rack, ascending. *)

val recover_all : t -> unit

val object_available : t -> int -> bool
(** Whether object [obj] still has enough live replicas. *)

val available_objects : t -> int
(** Count of available objects — Avail of the current failure set. *)

val unavailable_objects : t -> int list
(** Ids of failed objects (ascending). *)

val live_replicas : t -> int -> int
(** Live replica count of an object. *)
