type result = {
  trials : int;
  avails : int array;
  mean : float;
  stddev : float;
  min : int;
  max : int;
}

let of_avails avails =
  let floats = Array.map float_of_int avails in
  let lo, hi = Combin.Stats.min_max floats in
  {
    trials = Array.length avails;
    avails;
    mean = Combin.Stats.mean floats;
    stddev = Combin.Stats.stddev floats;
    min = int_of_float lo;
    max = int_of_float hi;
  }

let run ~rng ~trials ~placement ~scenario ~semantics =
  let avails =
    Array.init trials (fun _ ->
        let trial_rng = Combin.Rng.split rng in
        let layout = placement trial_rng in
        let cluster = Cluster.create layout semantics in
        Scenario.run ~rng:trial_rng cluster scenario)
  in
  of_avails avails

let avg_avail_random ~rng ~trials (p : Placement.Params.t) =
  run ~rng ~trials
    ~placement:(fun trial_rng -> Placement.Random_placement.place ~rng:trial_rng p)
    ~scenario:(Scenario.Adversarial p.k)
    ~semantics:(Semantics.Threshold p.s)

let pp fmt r =
  Format.fprintf fmt "trials=%d mean=%.1f sd=%.1f min=%d max=%d" r.trials
    r.mean r.stddev r.min r.max
