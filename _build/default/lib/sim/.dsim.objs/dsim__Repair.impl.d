lib/sim/repair.ml: Array Cluster Combin
