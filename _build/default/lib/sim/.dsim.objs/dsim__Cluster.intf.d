lib/sim/cluster.mli: Placement Semantics
