lib/sim/trace.ml: Array Cluster Format List
