lib/sim/montecarlo.ml: Array Cluster Combin Format Placement Scenario Semantics
