lib/sim/semantics.ml: Format Printf
