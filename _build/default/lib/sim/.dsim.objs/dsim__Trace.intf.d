lib/sim/trace.mli: Cluster Format
