lib/sim/semantics.mli: Format
