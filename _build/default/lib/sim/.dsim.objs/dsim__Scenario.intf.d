lib/sim/scenario.mli: Cluster Combin
