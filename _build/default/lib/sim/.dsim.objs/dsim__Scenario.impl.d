lib/sim/scenario.ml: Array Cluster Combin Placement Printf
