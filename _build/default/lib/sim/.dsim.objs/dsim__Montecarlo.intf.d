lib/sim/montecarlo.mli: Combin Format Placement Scenario Semantics
