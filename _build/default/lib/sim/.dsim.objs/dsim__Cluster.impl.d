lib/sim/cluster.ml: Array Combin Placement Semantics
