lib/sim/repair.mli: Cluster Combin
