type t = Read_any | Majority | Write_all | Erasure of int | Threshold of int

let fatality_threshold t ~r =
  let s =
    match t with
    | Read_any -> r
    | Majority -> r - (r / 2) (* fail once live replicas < floor(r/2)+1 *)
    | Write_all -> 1
    | Erasure data -> r - data + 1
    | Threshold s -> s
  in
  if s < 1 || s > r then
    invalid_arg "Semantics.fatality_threshold: need 1 <= s <= r";
  s

let describe = function
  | Read_any -> "read-any (primary-backup)"
  | Majority -> "majority quorum"
  | Write_all -> "write-all"
  | Erasure data -> Printf.sprintf "erasure coded (%d data fragments)" data
  | Threshold s -> Printf.sprintf "threshold s=%d" s

let pp fmt t = Format.pp_print_string fmt (describe t)
