type t = {
  layout : Placement.Layout.t;
  semantics : Semantics.t;
  s : int;
  racks : int array;
  node_objs : int array array;
  up : bool array;
  lost : int array;  (* failed replicas per object *)
  mutable failed_objects : int;
}

let create ?racks layout semantics =
  let n = layout.Placement.Layout.n in
  let racks =
    match racks with
    | None -> Array.init n (fun i -> i)
    | Some r ->
        if Array.length r <> n then invalid_arg "Cluster.create: racks length";
        Array.copy r
  in
  {
    layout;
    semantics;
    s = Semantics.fatality_threshold semantics ~r:layout.Placement.Layout.r;
    racks;
    node_objs = Placement.Layout.node_objects layout;
    up = Array.make n true;
    lost = Array.make (Placement.Layout.b layout) 0;
    failed_objects = 0;
  }

let layout t = t.layout
let semantics t = t.semantics
let fatality_threshold t = t.s
let n t = t.layout.Placement.Layout.n
let b t = Placement.Layout.b t.layout
let node_up t nd = t.up.(nd)

let failed_nodes t =
  let out = ref [] in
  for nd = n t - 1 downto 0 do
    if not t.up.(nd) then out := nd :: !out
  done;
  Array.of_list !out

let fail_node t nd =
  if t.up.(nd) then begin
    t.up.(nd) <- false;
    Array.iter
      (fun obj ->
        t.lost.(obj) <- t.lost.(obj) + 1;
        if t.lost.(obj) = t.s then t.failed_objects <- t.failed_objects + 1)
      t.node_objs.(nd)
  end

let recover_node t nd =
  if not t.up.(nd) then begin
    t.up.(nd) <- true;
    Array.iter
      (fun obj ->
        if t.lost.(obj) = t.s then t.failed_objects <- t.failed_objects - 1;
        t.lost.(obj) <- t.lost.(obj) - 1)
      t.node_objs.(nd)
  end

let fail_rack t rack =
  Array.iteri (fun nd r -> if r = rack then fail_node t nd) t.racks

let rack_of t nd = t.racks.(nd)

let rack_ids t = Combin.Intset.of_array t.racks

let rack_nodes t rack =
  let out = ref [] in
  Array.iteri (fun nd r -> if r = rack then out := nd :: !out) t.racks;
  Combin.Intset.of_array (Array.of_list !out)

let recover_all t =
  for nd = 0 to n t - 1 do
    recover_node t nd
  done

let object_available t obj = t.lost.(obj) < t.s

let available_objects t = b t - t.failed_objects

let unavailable_objects t =
  let out = ref [] in
  for obj = b t - 1 downto 0 do
    if t.lost.(obj) >= t.s then out := obj :: !out
  done;
  !out

let live_replicas t obj = t.layout.Placement.Layout.r - t.lost.(obj)
