type t =
  | Adversarial of int
  | Random_nodes of int
  | Random_racks of int
  | Explicit of int array

let describe = function
  | Adversarial k -> Printf.sprintf "worst-case failure of %d nodes" k
  | Random_nodes k -> Printf.sprintf "random failure of %d nodes" k
  | Random_racks j -> Printf.sprintf "random failure of %d racks" j
  | Explicit nodes ->
      Printf.sprintf "explicit failure of %d nodes" (Array.length nodes)

let apply ~rng cluster t =
  Cluster.recover_all cluster;
  let nodes =
    match t with
    | Adversarial k ->
        let attack =
          Placement.Adversary.best ~rng (Cluster.layout cluster)
            ~s:(Cluster.fatality_threshold cluster) ~k
        in
        attack.Placement.Adversary.failed_nodes
    | Random_nodes k ->
        Combin.Rng.sample_distinct rng ~n:(Cluster.n cluster) ~k
    | Random_racks j ->
        let racks = Cluster.rack_ids cluster in
        let nr = Array.length racks in
        if j > nr then invalid_arg "Scenario.apply: more racks than exist";
        let picked = Combin.Rng.sample_distinct rng ~n:nr ~k:j in
        let nodes =
          Array.concat
            (Array.to_list
               (Array.map (fun i -> Cluster.rack_nodes cluster racks.(i)) picked))
        in
        Combin.Intset.of_array nodes
    | Explicit nodes -> Combin.Intset.of_array nodes
  in
  Array.iter (fun nd -> Cluster.fail_node cluster nd) nodes;
  nodes

let run ~rng cluster t =
  let _ = apply ~rng cluster t in
  Cluster.available_objects cluster
