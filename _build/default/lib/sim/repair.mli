(** Stochastic failure/repair timeline simulation.

    The paper studies one-shot worst-case failures; real clusters live
    through a continuous fail-and-repair process.  This module runs an
    event-driven simulation — nodes fail as independent Poisson
    processes and are repaired after exponential repair times — and
    reports time-weighted availability, so placements can additionally
    be compared on "how many nines" they deliver between the worst-case
    episodes the paper optimizes for.

    Time units are arbitrary; only the ratio [failure_rate · mean_repair]
    matters (it is the expected fraction of nodes down in steady state). *)

type config = {
  failure_rate : float;  (** per-node failure rate (per unit time) *)
  mean_repair : float;  (** mean repair duration (exponential) *)
  horizon : float;  (** simulated duration *)
}

type stats = {
  horizon : float;
  avg_unavailable : float;  (** time-weighted mean of unavailable objects *)
  worst_unavailable : int;  (** peak simultaneous object unavailability *)
  worst_nodes_down : int;  (** peak simultaneous node failures *)
  incidents : int;  (** transitions from "all objects up" to "some down" *)
  object_downtime_fraction : float;
      (** Σ per-object downtime / (b · horizon): 1 − this is the
          "availability" an SLO would measure *)
}

val nines : stats -> float
(** [-log10 object_downtime_fraction] — the "number of nines";
    [infinity] when no object-downtime occurred at all. *)

val run : rng:Combin.Rng.t -> Cluster.t -> config -> stats
(** Simulate from an all-up cluster.  The cluster is recovered before
    and after; during the run its state tracks the timeline.
    @raise Invalid_argument on non-positive rates/horizon. *)
