let admissible v = v = 1 || (v >= 3 && (v mod 6 = 1 || v mod 6 = 3))

let largest_admissible v =
  let rec go v' = if v' < 3 then None else if admissible v' then Some v' else go (v' - 1) in
  go v

(* Bose construction, v = 6t + 3.  Points are (i, j) with i in Z_m
   (m = 2t + 1, odd) and j in {0,1,2}, encoded as 3i + j. *)
let bose v =
  let m = v / 3 in
  let enc i j = (3 * i) + j in
  let blocks = ref [] in
  for i = 0 to m - 1 do
    blocks := [| enc i 0; enc i 1; enc i 2 |] :: !blocks
  done;
  (* (t+1) is the "half" operator: 2 * (t+1) = 1 (mod m). *)
  let half = (m + 1) / 2 in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let h = (i + j) * half mod m in
      for level = 0 to 2 do
        let blk = Combin.Intset.of_array [| enc i level; enc j level; enc h ((level + 1) mod 3) |] in
        blocks := blk :: !blocks
      done
    done
  done;
  Array.of_list !blocks

(* Skolem construction, v = 6t + 1.  Points are infinity (code 0) and
   (i, j) with i in Z_{2t}, j in {0,1,2}, encoded as 1 + 3i + j.
   The half-idempotent commutative quasigroup on Z_{2t} is
   i*j = alpha(i + j mod 2t) where alpha(2m) = m, alpha(2m+1) = m + t. *)
let skolem v =
  let t = v / 6 in
  let n2 = 2 * t in
  let inf = 0 in
  let enc i j = 1 + (3 * i) + j in
  let alpha x = if x mod 2 = 0 then x / 2 else (x / 2) + t in
  let star i j = alpha ((i + j) mod n2) in
  let blocks = ref [] in
  (* Triples across the three levels for the idempotent half. *)
  for i = 0 to t - 1 do
    blocks := [| enc i 0; enc i 1; enc i 2 |] :: !blocks
  done;
  (* Triples through infinity for the non-idempotent half. *)
  for i = t to n2 - 1 do
    for level = 0 to 2 do
      let blk =
        Combin.Intset.of_array
          [| inf; enc i level; enc (i - t) ((level + 1) mod 3) |]
      in
      blocks := blk :: !blocks
    done
  done;
  (* Mixed triples driven by the quasigroup. *)
  for i = 0 to n2 - 1 do
    for j = i + 1 to n2 - 1 do
      for level = 0 to 2 do
        let blk =
          Combin.Intset.of_array
            [| enc i level; enc j level; enc (star i j) ((level + 1) mod 3) |]
        in
        blocks := blk :: !blocks
      done
    done
  done;
  Array.of_list !blocks

let make v =
  if not (admissible v) || v < 3 then
    invalid_arg "Steiner_triple.make: v must be >= 3 and 1 or 3 mod 6";
  let blocks = if v = 3 then [| [| 0; 1; 2 |] |] else if v mod 6 = 3 then bose v else skolem v in
  Block_design.make ~strength:2 ~v ~block_size:3 ~lambda:1 blocks
