let admissible ~v ~r = r >= 2 && v > r && (v - 1) mod (r * (r - 1)) = 0

let verify ~v ~r blocks =
  let used = Array.make v false in
  let ok = ref true in
  Array.iter
    (fun blk ->
      if Array.length blk <> r then ok := false
      else
        Array.iteri
          (fun i a ->
            Array.iteri
              (fun j b ->
                if i <> j then begin
                  let d = ((a - b) mod v + v) mod v in
                  if d = 0 || used.(d) then ok := false else used.(d) <- true
                end)
              blk)
          blk)
    blocks;
  !ok
  &&
  (let all = ref true in
   for d = 1 to v - 1 do
     if not used.(d) then all := false
   done;
   !all)

exception Found of int array list
exception Budget

let find_impl ?(budget = 5_000_000) ~v ~r () =
  if not (admissible ~v ~r) then None
  else begin
    let m = (v - 1) / (r * (r - 1)) in
    let used = Array.make v false in
    let nodes = ref 0 in
    (* Mark/unmark the signed differences of [x] against the current
       partial block; returns false (and rolls back) on a collision. *)
    let try_add block len x =
      let rec go i =
        if i = len then true
        else begin
          let d1 = ((x - block.(i)) mod v + v) mod v in
          let d2 = v - d1 in
          if d1 = 0 || used.(d1) || used.(d2) || d1 = d2 then begin
            (* roll back the 0..i-1 marks *)
            for j = 0 to i - 1 do
              let e1 = ((x - block.(j)) mod v + v) mod v in
              used.(e1) <- false;
              used.(v - e1) <- false
            done;
            false
          end
          else begin
            used.(d1) <- true;
            used.(d2) <- true;
            go (i + 1)
          end
        end
      in
      go 0
    in
    let remove block len x =
      for j = 0 to len - 1 do
        let d = ((x - block.(j)) mod v + v) mod v in
        used.(d) <- false;
        used.(v - d) <- false
      done
    in
    let smallest_uncovered () =
      let rec go d = if d >= v then 0 else if used.(d) then go (d + 1) else d in
      go 1
    in
    let rec fill_block blocks_done block len start =
      incr nodes;
      if !nodes > budget then raise Budget;
      if len = r then begin
        let finished = Array.sub block 0 r :: blocks_done in
        if List.length finished = m then raise (Found finished)
        else next_block finished
      end
      else
        for x = start to v - 1 do
          if try_add block len x then begin
            block.(len) <- x;
            fill_block blocks_done block (len + 1) (x + 1);
            remove block len x
          end
        done
    and next_block blocks_done =
      (* The smallest uncovered difference d must occur in some remaining
         block, normalizable to contain {0, d}. *)
      let d = smallest_uncovered () in
      if d = 0 then (if List.length blocks_done = m then raise (Found blocks_done))
      else begin
        let block = Array.make r 0 in
        block.(0) <- 0;
        if try_add block 1 d then begin
          block.(1) <- d;
          fill_block blocks_done block 2 1;
          remove block 1 d
        end
      end
    in
    match next_block [] with
    | () -> None
    | exception Budget -> None
    | exception Found blocks ->
        let out =
          List.map
            (fun blk ->
              let b = Array.copy blk in
              Array.sort compare b;
              b)
            blocks
        in
        Some (Array.of_list (List.rev out))
  end

let find = find_impl

let develop ~v ~r base =
  let blocks = ref [] in
  Array.iter
    (fun blk ->
      for t = 0 to v - 1 do
        let translated = Array.map (fun x -> (x + t) mod v) blk in
        Array.sort compare translated;
        blocks := translated :: !blocks
      done)
    base;
  Block_design.make ~strength:2 ~v ~block_size:r ~lambda:1
    (Array.of_list !blocks)

let make ?budget ~v ~r () =
  match find ?budget ~v ~r () with
  | None -> None
  | Some base -> if verify ~v ~r base then Some (develop ~v ~r base) else None

(* Orders verified (in the test suite) to be found within the default
   budget.  Beyond these the search may still succeed with a larger
   budget (e.g. v = 85 for r = 4 at ~5*10^7 nodes) but is not gated on. *)
let searchable_orders = function
  | 3 -> [ 7; 13; 19; 25; 31; 37; 43; 49; 55; 61 ]
  | 4 -> [ 13; 37; 49; 61; 73 ]
  | 5 -> [ 21; 41; 61; 81 ]
  | _ -> []

let searchable ~v ~r = List.mem v (searchable_orders r)
