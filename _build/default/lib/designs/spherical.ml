let pow q e =
  let rec go acc i = if i = 0 then acc else go (acc * q) (i - 1) in
  go 1 e

let point_count ~q ~d = pow q d + 1

let block_count ~q ~d =
  let v = point_count ~q ~d in
  (* C(v,3) / C(q+1,3) *)
  v * (v - 1) * (v - 2) / ((q + 1) * q * (q - 1))

let make ~q ~d =
  if d < 1 then invalid_arg "Spherical.make: d < 1";
  let base = Galois.Field.of_order q in
  let f = Galois.Field.extend base d in
  let v = f.order + 1 in
  if d = 1 then
    Block_design.make ~strength:3 ~v ~block_size:(q + 1) ~lambda:1
      [| Array.init v (fun i -> i) |]
  else begin
    (* The base block: GF(q) ∪ {∞}.  Field.extend embeds the base field as
       the codes < q, and ∞ is code f.order = v - 1 — conveniently the
       largest point, so blocks stay sorted after mapping + sort. *)
    let base_block = Array.append (Array.init q (fun i -> i)) [| f.order |] in
    let covered = Bytes.make ((Combin.Binomial.exact v 3 + 7) / 8) '\000' in
    let is_covered rank =
      Char.code (Bytes.get covered (rank lsr 3)) land (1 lsl (rank land 7)) <> 0
    in
    let set_covered rank =
      Bytes.set covered (rank lsr 3)
        (Char.chr (Char.code (Bytes.get covered (rank lsr 3)) lor (1 lsl (rank land 7))))
    in
    let triple_rank a b c =
      (* colex rank of {a < b < c} *)
      Combin.Binomial.exact c 3 + Combin.Binomial.exact b 2 + a
    in
    let blocks = ref [] in
    let tmp = Array.make (q + 1) 0 in
    for c = 2 to v - 1 do
      for b = 1 to c - 1 do
        for a = 0 to b - 1 do
          if not (is_covered (triple_rank a b c)) then begin
            (* The unique block through {a,b,c}: push the base block
               through the Möbius map sending (0, 1, ∞) to (a, b, c). *)
            let m = Galois.Pline.from_zero_one_inf f a b c in
            for i = 0 to q do
              tmp.(i) <- Galois.Pline.apply f m base_block.(i)
            done;
            let blk = Array.copy tmp in
            Array.sort compare blk;
            blocks := blk :: !blocks;
            (* Mark all triples of the new block; the Steiner property of
               the family means none can already be covered. *)
            for i = 0 to q - 1 do
              for j = i + 1 to q do
                for l = j + 1 to q do
                  let r = triple_rank blk.(i) blk.(j) blk.(l) in
                  if is_covered r then
                    failwith "Spherical.make: triple covered twice (not a Steiner family?)";
                  set_covered r
                done
              done
            done
          end
        done
      done
    done;
    Block_design.make ~strength:3 ~v ~block_size:(q + 1) ~lambda:1
      (Array.of_list !blocks)
  end
