type t = {
  strength : int;
  v : int;
  block_size : int;
  lambda : int;
  blocks : int array array;
}

let make ~strength ~v ~block_size ~lambda blocks =
  if strength < 1 || strength > block_size then
    invalid_arg "Block_design.make: need 1 <= strength <= block_size";
  if block_size > v then invalid_arg "Block_design.make: block_size > v";
  if lambda < 1 then invalid_arg "Block_design.make: lambda < 1";
  Array.iter
    (fun blk ->
      if Array.length blk <> block_size then
        invalid_arg "Block_design.make: block of wrong size";
      if not (Combin.Intset.is_sorted_distinct blk) then
        invalid_arg "Block_design.make: block not sorted/distinct";
      if blk.(0) < 0 || blk.(block_size - 1) >= v then
        invalid_arg "Block_design.make: point out of range")
    blocks;
  { strength; v; block_size; lambda; blocks }

let block_count d = Array.length d.blocks

let capacity_bound ~strength ~v ~block_size ~lambda =
  let num = Combin.Binomial.exact v strength in
  let den = Combin.Binomial.exact block_size strength in
  lambda * num / den

let design_block_count ~strength ~v ~block_size ~lambda =
  let num = Combin.Binomial.exact v strength in
  let den = Combin.Binomial.exact block_size strength in
  if lambda * num mod den = 0 then Some (lambda * num / den) else None

let coverage_excess d =
  let counts : (int, int) Hashtbl.t = Hashtbl.create (4 * Array.length d.blocks) in
  let offender = ref None in
  (try
     Array.iter
       (fun blk ->
         Combin.Subset.sub_iter blk ~k:d.strength (fun sub ->
             let key = Combin.Subset.rank ~n:d.v sub in
             let c = 1 + (Option.value ~default:0 (Hashtbl.find_opt counts key)) in
             Hashtbl.replace counts key c;
             if c > d.lambda then begin
               offender := Some (Array.copy sub, c);
               raise Exit
             end))
       d.blocks
   with Exit -> ());
  !offender

let is_packing d = coverage_excess d = None

let is_design d =
  match design_block_count ~strength:d.strength ~v:d.v ~block_size:d.block_size ~lambda:d.lambda with
  | None -> false
  | Some expected -> block_count d = expected && is_packing d

let sampled_packing_check ~rng ~samples d =
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let sub = Combin.Rng.sample_distinct rng ~n:d.v ~k:d.strength in
      let count = ref 0 in
      Array.iter
        (fun blk -> if Combin.Intset.subset sub blk then incr count)
        d.blocks;
      if !count > d.lambda then ok := false
    end
  done;
  !ok

let relabel d perm =
  if Array.length perm <> d.v then invalid_arg "Block_design.relabel: bad permutation";
  let seen = Array.make d.v false in
  Array.iter
    (fun p ->
      if p < 0 || p >= d.v || seen.(p) then
        invalid_arg "Block_design.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  let blocks =
    Array.map
      (fun blk ->
        let b = Array.map (fun p -> perm.(p)) blk in
        Array.sort compare b;
        b)
      d.blocks
  in
  { d with blocks }

let union_disjoint d1 d2 =
  if d1.strength <> d2.strength || d1.block_size <> d2.block_size || d1.v <> d2.v
  then invalid_arg "Block_design.union_disjoint: parameter mismatch";
  {
    d1 with
    lambda = d1.lambda + d2.lambda;
    blocks = Array.append d1.blocks d2.blocks;
  }

let repeat d c =
  if c < 1 then invalid_arg "Block_design.repeat: c < 1";
  let blocks = Array.concat (List.init c (fun _ -> Array.map Array.copy d.blocks)) in
  { d with lambda = c * d.lambda; blocks }

(* Delete [point] from the ground set, shifting larger labels down. *)
let relabel_without ~point blk =
  Array.map (fun p -> if p > point then p - 1 else p) blk

let derived d ~point =
  if d.strength < 2 then invalid_arg "Block_design.derived: strength < 2";
  if point < 0 || point >= d.v then invalid_arg "Block_design.derived: bad point";
  let blocks =
    Array.of_list
      (List.filter_map
         (fun blk ->
           if Combin.Intset.mem blk point then
             Some
               (relabel_without ~point
                  (Array.of_list
                     (List.filter (fun p -> p <> point) (Array.to_list blk))))
           else None)
         (Array.to_list d.blocks))
  in
  make ~strength:(d.strength - 1) ~v:(d.v - 1) ~block_size:(d.block_size - 1)
    ~lambda:d.lambda blocks

let residual d ~point =
  if point < 0 || point >= d.v then invalid_arg "Block_design.residual: bad point";
  let blocks =
    Array.of_list
      (List.filter_map
         (fun blk ->
           if Combin.Intset.mem blk point then None
           else Some (relabel_without ~point blk))
         (Array.to_list d.blocks))
  in
  make ~strength:d.strength ~v:(d.v - 1) ~block_size:d.block_size
    ~lambda:d.lambda blocks

let pp fmt d =
  Format.fprintf fmt "%d-(%d, %d, %d) packing with %d blocks" d.strength d.v
    d.block_size d.lambda (block_count d)
