let apply_to_set f m s =
  let out = Array.map (Galois.Pline.apply f m) s in
  Array.sort compare out;
  out

let stabilizer_order f s =
  if Array.length s <> 5 then invalid_arg "Mobius_family.stabilizer_order";
  let to_base = Galois.Pline.to_zero_one_inf f s.(0) s.(1) s.(2) in
  let count = ref 0 in
  (* A Möbius map is determined by the images of three points, so every
     stabilizer element sends (s0, s1, s2) to one of the 60 ordered triples
     of elements of s. *)
  for i = 0 to 4 do
    for j = 0 to 4 do
      for l = 0 to 4 do
        if i <> j && j <> l && i <> l then begin
          let m =
            Galois.Pline.compose f
              (Galois.Pline.from_zero_one_inf f s.(i) s.(j) s.(l))
              to_base
          in
          if Combin.Intset.equal (apply_to_set f m s) s then incr count
        end
      done
    done
  done;
  !count

let mu_of_stab h =
  if h <= 0 || 60 mod h <> 0 then
    invalid_arg "Mobius_family.mu_of_stab: order does not divide 60";
  60 / h

let orbit_size f s =
  let q = f.Galois.Field.order in
  (q + 1) * q * (q - 1) / stabilizer_order f s

let harmonic_set (f : Galois.Field.t) =
  if f.char = 3 then None
  else begin
    (* Roots of z^2 - z + 1 by direct scan (fields here are small). *)
    let roots = ref [] in
    for z = 0 to f.order - 1 do
      if f.add (f.sub (f.mul z z) z) 1 = 0 then roots := z :: !roots
    done;
    match !roots with
    | [ w1; w2 ] when w1 <> 0 && w1 <> 1 && w2 <> 0 && w2 <> 1 ->
        Some (Combin.Intset.of_array [| f.order; 0; 1; w1; w2 |])
    | _ -> None
  end

let search_best (f : Galois.Field.t) ~rng ~tries =
  let q = f.order in
  if q + 1 < 5 then invalid_arg "Mobius_family.search_best: q + 1 < 5";
  let best = ref None in
  let consider s =
    let h = stabilizer_order f s in
    match !best with
    | Some (_, h') when h' >= h -> ()
    | _ -> best := Some (s, h)
  in
  (match harmonic_set f with Some s -> consider s | None -> ());
  for _ = 1 to tries do
    (* Canonical representative {∞, 0, 1, a, b}: every PGL-orbit of
       5-subsets contains one, so this samples all orbits. *)
    let a = ref (2 + Combin.Rng.int rng (q - 2)) in
    let b = ref (2 + Combin.Rng.int rng (q - 2)) in
    while !b = !a do
      b := 2 + Combin.Rng.int rng (q - 2)
    done;
    consider (Combin.Intset.of_array [| q; 0; 1; !a; !b |])
  done;
  match !best with
  | Some (s, h) -> (s, h)
  | None -> assert false

let best_mu f ~rng ~tries =
  let _, h = search_best f ~rng ~tries in
  mu_of_stab h

let orbit (f : Galois.Field.t) s =
  let g = f.primitive in
  let generators =
    [
      { Galois.Pline.a = 1; b = 1; c = 0; d = 1 };    (* z + 1 *)
      { Galois.Pline.a = g; b = 0; c = 0; d = 1 };    (* g z *)
      { Galois.Pline.a = 0; b = 1; c = 1; d = 0 };    (* 1 / z *)
    ]
  in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let start = Combin.Intset.of_array s in
  Hashtbl.add seen (Array.to_list start) ();
  Queue.add start queue;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let cur = Queue.pop queue in
    out := cur :: !out;
    List.iter
      (fun m ->
        let next = apply_to_set f m cur in
        let key = Array.to_list next in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Queue.add next queue
        end)
      generators
  done;
  Array.of_list !out

let design f s =
  let blocks = orbit f s in
  let h = stabilizer_order f s in
  Block_design.make ~strength:3 ~v:(f.Galois.Field.order + 1) ~block_size:5
    ~lambda:(mu_of_stab h) blocks
