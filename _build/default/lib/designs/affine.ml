let point_count ~q ~d =
  let rec go acc i = if i = 0 then acc else go (acc * q) (i - 1) in
  go 1 d

let line_count ~q ~d =
  (* q^(d-1) parallel classes per direction; (q^d - 1)/(q - 1) directions. *)
  point_count ~q ~d:(d - 1) * ((point_count ~q ~d - 1) / (q - 1))

let admissible ~block_size v =
  match Galois.Field.is_prime_power block_size with
  | None -> false
  | Some _ ->
      let rec divides_down x = x = 1 || (x mod block_size = 0 && divides_down (x / block_size)) in
      v >= block_size && divides_down v

(* One array of lines per projective direction; each class partitions the
   point set (the natural resolution of AG(d, q)). *)
let parallel_classes ~q ~d =
  if d < 1 then invalid_arg "Affine.parallel_classes: d < 1";
  let f = Galois.Field.of_order q in
  let v = point_count ~q ~d in
  let decode code =
    let digits = Array.make d 0 in
    let rest = ref code in
    for i = 0 to d - 1 do
      digits.(i) <- !rest mod q;
      rest := !rest / q
    done;
    digits
  in
  let encode digits =
    let acc = ref 0 in
    for i = d - 1 downto 0 do
      acc := (!acc * q) + digits.(i)
    done;
    !acc
  in
  (* Canonical direction representatives: nonzero vectors whose first
     nonzero coordinate is 1 — one per 1-dimensional subspace. *)
  let directions = ref [] in
  for code = v - 1 downto 1 do
    let u = decode code in
    let rec first_nonzero i = if u.(i) <> 0 then i else first_nonzero (i + 1) in
    if u.(first_nonzero 0) = 1 then directions := u :: !directions
  done;
  let visited = Array.make v false in
  let add_vec a b = Array.init d (fun i -> f.add a.(i) b.(i)) in
  let scale_vec t a = Array.map (fun x -> f.mul t x) a in
  let classes =
    List.map
      (fun u ->
        Array.fill visited 0 v false;
        let lines = ref [] in
        for p = 0 to v - 1 do
          if not visited.(p) then begin
            let base = decode p in
            let line =
              Array.init q (fun t -> encode (add_vec base (scale_vec t u)))
            in
            Array.iter (fun pt -> visited.(pt) <- true) line;
            Array.sort compare line;
            lines := line :: !lines
          end
        done;
        Array.of_list (List.rev !lines))
      !directions
  in
  Array.of_list classes

let make ~q ~d =
  if d < 1 then invalid_arg "Affine.make: d < 1";
  let v = point_count ~q ~d in
  let blocks = Array.concat (Array.to_list (parallel_classes ~q ~d)) in
  Block_design.make ~strength:2 ~v ~block_size:q ~lambda:1 blocks
