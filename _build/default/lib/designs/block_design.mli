(** Block designs and t-packings.

    In the paper's vocabulary a [Simple(x, λ)] placement on [nx] nodes is an
    [(x+1)-(nx, r, λ)] packing: a collection of [r]-subsets ("blocks") of a
    [v]-set ("points") such that every [(x+1)]-subset of points lies in at
    most [λ] blocks (Definition 2 / Lemma 1).  When every [t]-subset lies in
    {e exactly} [λ] blocks the packing is a [t]-design (maximum packing),
    which is what the constructions in this library produce.

    Points are [0 .. v-1]; blocks are sorted, duplicate-free int arrays. *)

type t = private {
  strength : int;  (** t = x + 1 *)
  v : int;  (** number of points *)
  block_size : int;  (** the paper's r *)
  lambda : int;  (** the paper's μ *)
  blocks : int array array;
}

val make :
  strength:int -> v:int -> block_size:int -> lambda:int -> int array array -> t
(** Validates ranges and per-block well-formedness (sorted, distinct,
    within [0..v-1], size [block_size]); does {e not} run the (potentially
    expensive) packing check — see {!is_packing}.
    @raise Invalid_argument on malformed input. *)

val block_count : t -> int

val capacity_bound : strength:int -> v:int -> block_size:int -> lambda:int -> int
(** Lemma 1's bound [floor(λ C(v,t) / C(r,t))] on the number of blocks of
    any t-(v,r,λ) packing. *)

val design_block_count : strength:int -> v:int -> block_size:int -> lambda:int -> int option
(** [λ C(v,t) / C(r,t)] when integral (the exact block count of a
    t-design with these parameters), [None] otherwise. *)

val coverage_excess : t -> (int array * int) option
(** [coverage_excess d] is [Some (subset, count)] for some
    [strength]-subset covered by [count > lambda] blocks, or [None] if [d]
    is a valid packing.  Cost: O(blocks · C(block_size, strength)). *)

val is_packing : t -> bool
(** Every [strength]-subset of points lies in at most [lambda] blocks. *)

val is_design : t -> bool
(** Every [strength]-subset lies in {e exactly} [lambda] blocks.
    Checked via {!is_packing} plus the block-count identity. *)

val sampled_packing_check :
  rng:Combin.Rng.t -> samples:int -> t -> bool
(** Randomized spot-check for designs too large for {!is_packing}'s full
    sweep (e.g. the 279k-block 3-(257,5,1)): draws [samples] random
    [strength]-subsets of points and counts their coverage by a full
    scan over the blocks; fails if any exceeds [lambda].  A passing
    check is evidence, not proof. *)

val relabel : t -> int array -> t
(** [relabel d perm] renames point [p] to [perm.(p)]; [perm] must be a
    permutation of [0..v-1].  Used to embed a design into a chunk of a
    larger node set (Observation 2). *)

val union_disjoint : t -> t -> t
(** Union of two packings with the same [strength], [block_size] and [v]
    whose parameters add: the result has [lambda = λ1 + λ2].  (Copying a
    design λ times, as in Observation 1, is a repeated disjoint union.) *)

val repeat : t -> int -> t
(** [repeat d c] is [d] unioned with itself [c] times: a
    t-(v, r, c·λ) packing with [c · block_count d] blocks. *)

val derived : t -> point:int -> t
(** The derived design at a point: blocks through [point], with the point
    deleted and the rest relabelled to [0..v-2].  For a t-(v, r, λ)
    design this is a (t−1)-(v−1, r−1, λ) design — e.g. deriving the
    spherical 3-(q²+1, q+1, 1) at ∞ yields the affine plane AG(2, q).
    @raise Invalid_argument if [strength = 1] or the point is out of
    range. *)

val residual : t -> point:int -> t
(** The residual design at a point: blocks {e avoiding} [point],
    relabelled to [0..v-2].  For a 2-(v, r, 1) design this is a
    2-(v−1, r, 1) {e packing} (a valid Simple(1, λ) source on one fewer
    node).  @raise Invalid_argument if the point is out of range. *)

val pp : Format.formatter -> t -> unit
