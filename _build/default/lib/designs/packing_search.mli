(** Search-based construction of packings and small Steiner systems.

    The paper notes that its approach "provides further impetus to advance
    t-packing construction"; this module supplies the computational side:

    - {!exact_steiner}: backtracking exact-cover search (Algorithm-X style
      with a fewest-choices heuristic) that finds genuine t-(v, r, 1)
      Steiner systems for small parameters — we use it for SQS(10),
      SQS(14) and the 4-(11, 5, 1) system, none of which have simple
      direct constructions;
    - {!greedy_lex} / {!greedy_random}: maximal-packing heuristics used by
      the capacity-gap study (Figs 5–6) where no algebraic construction is
      available. *)

val exact_steiner :
  ?node_budget:int -> strength:int -> v:int -> block_size:int -> unit ->
  Block_design.t option
(** [exact_steiner ~strength ~v ~block_size ()] searches for a
    [strength]-(v, block_size, 1) Steiner system over all
    C(v, block_size) candidate blocks.  Returns [None] if the search
    exhausts (no system among the candidates) or exceeds [node_budget]
    backtracking nodes (default 20 million). *)

val greedy_lex :
  ?max_blocks:int -> strength:int -> v:int -> block_size:int -> lambda:int ->
  unit -> Block_design.t
(** Deterministic greedy: scan all candidate blocks in lexicographic order
    and keep each block that maintains the λ-packing property.  Produces a
    maximal (not necessarily maximum) packing. *)

val greedy_random :
  rng:Combin.Rng.t -> ?stall_limit:int -> strength:int -> v:int ->
  block_size:int -> lambda:int -> unit -> Block_design.t
(** Randomized greedy: repeatedly sample a uniformly random candidate
    block and keep it when compatible, stopping after [stall_limit]
    consecutive rejections (default 2000).  Faster than {!greedy_lex} on
    large [v] but typically reaches slightly lower capacity. *)
