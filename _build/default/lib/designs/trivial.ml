let subsets_capacity ~v ~r = Combin.Binomial.exact v r

let subsets_seq ~v ~r =
  let rec next current () =
    match current with
    | None -> Seq.Nil
    | Some c ->
        let out = Array.copy c in
        (* Compute the successor in lexicographic order. *)
        let succ =
          let c = Array.copy c in
          let i = ref (r - 1) in
          while !i >= 0 && c.(!i) = v - r + !i do
            decr i
          done;
          if !i < 0 then None
          else begin
            c.(!i) <- c.(!i) + 1;
            for j = !i + 1 to r - 1 do
              c.(j) <- c.(j - 1) + 1
            done;
            Some c
          end
        in
        Seq.Cons (out, next succ)
  in
  if r > v then Seq.empty else next (Some (Array.init r (fun i -> i)))

let subsets_design ~v ~r ~count =
  if count > subsets_capacity ~v ~r then
    invalid_arg "Trivial.subsets_design: count exceeds C(v,r)";
  let blocks = Array.make count [||] in
  let i = ref 0 in
  Seq.iter
    (fun blk ->
      if !i < count then begin
        blocks.(!i) <- blk;
        incr i
      end)
    (Seq.take count (subsets_seq ~v ~r));
  Block_design.make ~strength:r ~v ~block_size:r ~lambda:1 blocks

let partition_admissible ~v ~r = r >= 1 && v mod r = 0

let partition ~v ~r =
  if not (partition_admissible ~v ~r) then
    invalid_arg "Trivial.partition: r must divide v";
  let blocks =
    Array.init (v / r) (fun i -> Array.init r (fun j -> (i * r) + j))
  in
  Block_design.make ~strength:1 ~v ~block_size:r ~lambda:1 blocks

let rounds ~v ~r ~rounds =
  if not (partition_admissible ~v ~r) then
    invalid_arg "Trivial.rounds: r must divide v";
  if rounds < 1 then invalid_arg "Trivial.rounds: rounds < 1";
  let blocks = ref [] in
  for round = 0 to rounds - 1 do
    for i = 0 to (v / r) - 1 do
      (* Rotate the partition by [round] positions each round so replicas
         of the λ0 copies spread differently (load-shape only; any union
         of partitions is a valid 1-design). *)
      let blk = Array.init r (fun j -> ((i * r) + j + round) mod v) in
      Array.sort compare blk;
      blocks := blk :: !blocks
    done
  done;
  Block_design.make ~strength:1 ~v ~block_size:r ~lambda:rounds
    (Array.of_list !blocks)
