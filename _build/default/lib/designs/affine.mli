(** Lines of affine space AG(d, q): the 2-(q^d, q, 1) designs.

    These supply 2-designs with block size [q] for prime powers [q]:
    AG(2,5) is the paper's 2-(25,5,1), AG(4,4) its 2-(256,4,1), etc.
    Points are vectors in GF(q)^d encoded as base-q integers; lines are the
    cosets {p + t·u : t ∈ GF(q)} of the 1-dimensional subspaces. *)

val admissible : block_size:int -> int -> bool
(** [admissible ~block_size:q v] iff [q] is a prime power and [v = q^d]
    for some [d >= 2] (or [d = 1] giving the single-block design). *)

val make : q:int -> d:int -> Block_design.t
(** [make ~q ~d] is the design of lines of AG(d, q): 2-(q^d, q, 1).
    @raise Invalid_argument if [q] is not a prime power or [d < 1]. *)

val point_count : q:int -> d:int -> int
val line_count : q:int -> d:int -> int

val parallel_classes : q:int -> d:int -> int array array array
(** The natural resolution of AG(d, q): one class per direction, each a
    partition of the q^d points into q^{d-1} disjoint lines.  Affine
    line designs are resolvable; the classes serve as rotation-free
    1-designs (e.g. Kirkman-style round assignments: AG(d, 3) gives a
    Kirkman triple system on 3^d points).  Classes and lines are in the
    same order as the blocks of {!make}. *)
