(** PGL(2, q)-orbit 3-designs: 3-(q + 1, 5, μ) with small μ.

    PGL(2, q) is 3-homogeneous on the projective line, so the orbit of
    {e any} 5-subset S of PG(1, q) is automatically a 3-design; counting
    gives μ = 60 / |Stab(S)| where Stab(S) is the setwise stabilizer of S
    in PGL(2, q).  Hunting for 5-subsets with large stabilizers therefore
    yields 3-(q+1, 5, μ) designs with small μ for {e every} prime power q
    — the engine behind the paper's Fig. 6 observation that allowing
    μ ≤ 10 "dramatically" shrinks the r = 5, x = 2 capacity gap.

    A deterministic witness: when z² − z + 1 splits over GF(q) (q ≡ 1 mod
    3, char ≠ 3), the set {∞, 0, 1, ω, ω̄} of its roots together with the
    harmonic triple is invariant under the S₃ of cross-ratio symmetries,
    so its stabilizer has order ≥ 6 and μ ≤ 10. *)

val stabilizer_order : Galois.Field.t -> int array -> int
(** [stabilizer_order f s] for a 5-element sorted array of PG(1,q) points:
    the order of the setwise stabilizer of [s] in PGL(2, q).  Computed by
    testing all 60 maps determined by ordered triples of [s]. *)

val mu_of_stab : int -> int
(** [60 / h]; @raise Invalid_argument if [h] does not divide 60. *)

val orbit_size : Galois.Field.t -> int array -> int
(** [(q+1) q (q-1) / stabilizer_order]. *)

val harmonic_set : Galois.Field.t -> int array option
(** The deterministic S₃-invariant witness above, when z² − z + 1 splits. *)

val search_best : Galois.Field.t -> rng:Combin.Rng.t -> tries:int -> int array * int
(** [search_best f ~rng ~tries] samples random 5-subsets of the canonical
    form {∞, 0, 1, a, b} (every orbit has such a representative) plus the
    harmonic witness, and returns the pair (set, stabilizer order) with
    the largest stabilizer found. *)

val best_mu : Galois.Field.t -> rng:Combin.Rng.t -> tries:int -> int
(** Smallest μ found by {!search_best}. *)

val orbit : Galois.Field.t -> int array -> int array array
(** Materialize the full orbit (for tests / small q): BFS closure under
    the generators z↦z+1, z↦gz, z↦1/z of PGL(2, q). *)

val design : Galois.Field.t -> int array -> Block_design.t
(** The orbit as a 3-(q+1, 5, μ) design.  Intended for moderate q. *)
