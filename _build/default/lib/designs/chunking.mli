(** Chunk decomposition of a node set (the paper's Observation 2).

    When no single design with nx ≈ n exists, the n nodes are split into
    chunks of sizes nx1 .. nxm, each hosting its own Simple(x, μxi)
    placement; the combined placement is a Simple(x, μ) placement for
    μ = lcm(μxi) with capacity Σ (μ/μxi)·blocks_i.  This module optimizes
    the choice of up to [max_chunks] catalogue entries for every system
    size at once (a bounded knapsack over entry sizes), which is exactly
    the computation behind the capacity-gap CDFs of Figs 5 and 6. *)

type plan = {
  chunks : Registry.entry list;  (** chosen designs, at most [max_chunks] *)
  total_v : int;  (** Σ nxi ≤ n *)
  lambda : int;  (** lcm of the chunk μ's *)
  capacity : int;  (** objects hosted at λ = [lambda] *)
}

val ideal_capacity : strength:int -> block_size:int -> lambda:int -> int -> int
(** Lemma 1's bound [floor(λ C(n,t) / C(r,t))] for the full node set. *)

val capacity_gap : strength:int -> block_size:int -> n:int -> plan -> float
(** [(ideal - achieved) / ideal] at the plan's λ, as in Fig. 5; 0 is
    perfect, 1 means no capacity at all. *)

val best_plan :
  ?max_mu:int -> ?max_chunks:int -> ?include_literature:bool ->
  strength:int -> block_size:int -> n:int -> unit -> plan option
(** Best plan for a single system size [n]. *)

val best_plans :
  ?max_mu:int -> ?max_chunks:int -> ?include_literature:bool ->
  strength:int -> block_size:int -> n_lo:int -> n_hi:int -> unit ->
  (int * plan option) array
(** Best plan for every n in [n_lo .. n_hi], sharing one knapsack DP
    across all sizes (the whole Fig. 5 sweep in one pass). *)

val gap_cdf :
  ?max_mu:int -> ?max_chunks:int -> ?include_literature:bool ->
  strength:int -> block_size:int -> n_lo:int -> n_hi:int -> unit ->
  (float * float) list
(** The CDF of {!capacity_gap} over n in [n_lo .. n_hi] (gap = 1.0 when no
    plan exists), as (gap, fraction-of-sizes ≤ gap) points — the curves of
    Figs 5 and 6. *)
