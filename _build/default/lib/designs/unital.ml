let point_count ~q = (q * q * q) + 1
let block_count ~q = q * q * ((q * q) - q + 1)

let make ~q =
  let base = Galois.Field.of_order q in
  let f = Galois.Field.extend base 2 in
  (* Hermitian norm over the subfield: N(x) = x^{q+1}. *)
  let norm x = f.mul (f.pow x q) x in
  let q2 = f.order in
  let nvec = q2 * q2 * q2 in
  let decode code = [| code mod q2; code / q2 mod q2; code / (q2 * q2) |] in
  let encode u = u.(0) + (u.(1) * q2) + (u.(2) * q2 * q2) in
  (* Collect curve points (canonical projective representatives on the
     Hermitian curve) and index them densely. *)
  let on_curve u = f.add (f.add (norm u.(0)) (norm u.(1))) (norm u.(2)) = 0 in
  let curve_points = ref [] and index = Hashtbl.create 1024 and npts = ref 0 in
  for code = 1 to nvec - 1 do
    let u = decode code in
    let rec first_nonzero i = if u.(i) <> 0 then i else first_nonzero (i + 1) in
    if u.(first_nonzero 0) = 1 && on_curve u then begin
      Hashtbl.add index (encode u) !npts;
      curve_points := u :: !curve_points;
      incr npts
    end
  done;
  let curve_points = Array.of_list (List.rev !curve_points) in
  let v = Array.length curve_points in
  if v <> point_count ~q then
    failwith "Unital.make: unexpected number of curve points";
  (* The line through projective points a and b has coefficient vector
     a × b (cross product); point p lies on it iff <coef, p> = 0. *)
  let cross a b =
    [|
      f.sub (f.mul a.(1) b.(2)) (f.mul a.(2) b.(1));
      f.sub (f.mul a.(2) b.(0)) (f.mul a.(0) b.(2));
      f.sub (f.mul a.(0) b.(1)) (f.mul a.(1) b.(0));
    |]
  in
  let dot a b = f.add (f.add (f.mul a.(0) b.(0)) (f.mul a.(1) b.(1))) (f.mul a.(2) b.(2)) in
  let seen = Hashtbl.create (4 * block_count ~q) in
  let blocks = ref [] in
  for i = 0 to v - 1 do
    for j = i + 1 to v - 1 do
      let coef = cross curve_points.(i) curve_points.(j) in
      let blk = ref [] and count = ref 0 in
      for p = 0 to v - 1 do
        if dot coef curve_points.(p) = 0 then begin
          blk := p :: !blk;
          incr count
        end
      done;
      let blk = Combin.Intset.of_array (Array.of_list !blk) in
      if Array.length blk <> q + 1 then
        failwith "Unital.make: secant of unexpected size";
      let key = Array.to_list blk in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        blocks := blk :: !blocks
      end
    done
  done;
  let d =
    Block_design.make ~strength:2 ~v ~block_size:(q + 1) ~lambda:1
      (Array.of_list !blocks)
  in
  if Block_design.block_count d <> block_count ~q then
    failwith "Unital.make: unexpected block count";
  d
