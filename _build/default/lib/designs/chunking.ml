type plan = {
  chunks : Registry.entry list;
  total_v : int;
  lambda : int;
  capacity : int;
}

let ideal_capacity ~strength ~block_size ~lambda n =
  lambda * Combin.Binomial.exact n strength
  / Combin.Binomial.exact block_size strength

let capacity_gap ~strength ~block_size ~n plan =
  let ideal = ideal_capacity ~strength ~block_size ~lambda:plan.lambda n in
  if ideal = 0 then 1.0
  else float_of_int (ideal - plan.capacity) /. float_of_int ideal

(* One knapsack DP for a fixed common λ = [lcm]: items are catalogue
   entries with μ | lcm, weight v, value (lcm/μ)·blocks; at most
   [max_chunks] items, repetition allowed.  dp.(m).(w) is the best value
   with exactly m chunks of total size exactly w. *)
let dp_for_lcm pool ~lcm ~max_chunks ~n_hi =
  let items =
    List.filter (fun (e : Registry.entry) -> lcm mod e.mu = 0 && e.v <= n_hi) pool
  in
  let items = Array.of_list items in
  let nitems = Array.length items in
  let dp = Array.make_matrix (max_chunks + 1) (n_hi + 1) (-1) in
  let choice = Array.make_matrix (max_chunks + 1) (n_hi + 1) (-1) in
  dp.(0).(0) <- 0;
  for m = 1 to max_chunks do
    for w = 0 to n_hi do
      for i = 0 to nitems - 1 do
        let e = items.(i) in
        if e.v <= w && dp.(m - 1).(w - e.v) >= 0 then begin
          let value = dp.(m - 1).(w - e.v) + (lcm / e.mu * e.blocks) in
          if value > dp.(m).(w) then begin
            dp.(m).(w) <- value;
            choice.(m).(w) <- i
          end
        end
      done
    done
  done;
  (items, dp, choice)

(* Best (value, m, w) with w <= n across all chunk counts. *)
let best_cell dp ~max_chunks ~n =
  let best = ref None in
  for m = 0 to max_chunks do
    for w = 0 to n do
      if dp.(m).(w) >= 0 then
        match !best with
        | Some (v, _, _) when v >= dp.(m).(w) -> ()
        | _ -> best := Some (dp.(m).(w), m, w)
    done
  done;
  !best

let reconstruct items choice ~m ~w =
  let rec go m w acc =
    if m = 0 then acc
    else begin
      let i = choice.(m).(w) in
      if i < 0 then
        (* dp cell with exactly-m semantics always has a choice when
           reachable and m > 0 *)
        acc
      else begin
        let e = items.(i) in
        go (m - 1) (w - e.Registry.v) (e :: acc)
      end
    end
  in
  go m w []

let lcm_candidates max_mu = List.init max_mu (fun i -> i + 1)

let best_plans ?(max_mu = 1) ?(max_chunks = 3) ?(include_literature = true)
    ~strength ~block_size ~n_lo ~n_hi () =
  let pool =
    Registry.entries ~max_mu ~include_literature ~strength ~block_size
      ~max_v:n_hi ()
  in
  let tables =
    List.map
      (fun lcm -> (lcm, dp_for_lcm pool ~lcm ~max_chunks ~n_hi))
      (lcm_candidates max_mu)
  in
  Array.init
    (n_hi - n_lo + 1)
    (fun idx ->
      let n = n_lo + idx in
      let ideal1 =
        float_of_int (Combin.Binomial.exact n strength)
        /. float_of_int (Combin.Binomial.exact block_size strength)
      in
      let best = ref None in
      List.iter
        (fun (lcm, (items, dp, choice)) ->
          match best_cell dp ~max_chunks ~n with
          | None -> ()
          | Some (value, m, w) ->
              (* Normalize by λ so plans with different lcm are comparable. *)
              let score = float_of_int value /. (float_of_int lcm *. ideal1) in
              let better =
                match !best with
                | None -> value > 0
                | Some (score', _) -> score > score'
              in
              if better then begin
                let chunks = reconstruct items choice ~m ~w in
                let lambda =
                  (* λ need only be a common multiple of the chunk μ's;
                     use the smallest one actually needed. *)
                  List.fold_left
                    (fun acc (e : Registry.entry) ->
                      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
                      acc / gcd acc e.mu * e.mu)
                    1 chunks
                in
                let capacity =
                  List.fold_left
                    (fun acc (e : Registry.entry) ->
                      acc + (lambda / e.mu * e.blocks))
                    0 chunks
                in
                best :=
                  Some (score, { chunks; total_v = w; lambda; capacity })
              end)
        tables;
      (n, Option.map snd !best))

let best_plan ?max_mu ?max_chunks ?include_literature ~strength ~block_size ~n
    () =
  match
    best_plans ?max_mu ?max_chunks ?include_literature ~strength ~block_size
      ~n_lo:n ~n_hi:n ()
  with
  | [| (_, p) |] -> p
  | _ -> None

let gap_cdf ?max_mu ?max_chunks ?include_literature ~strength ~block_size
    ~n_lo ~n_hi () =
  let plans =
    best_plans ?max_mu ?max_chunks ?include_literature ~strength ~block_size
      ~n_lo ~n_hi ()
  in
  let gaps =
    Array.map
      (fun (n, p) ->
        match p with
        | None -> 1.0
        | Some plan -> capacity_gap ~strength ~block_size ~n plan)
      plans
  in
  Combin.Stats.cdf_points gaps
