(** Degenerate design families.

    Two families with no combinatorial content but real roles in the paper:

    - {b t = r} ("all r-subsets"): when x + 1 = r, the Steiner-system
      constraints are vacuous (Sec. III-C) — any collection of distinct
      r-subsets is a Simple(r-1, 1) placement, with capacity C(v, r).
    - {b t = 1} ("partitions"): a Simple(0, 1) placement is a partition of
      the v nodes into blocks of size r (capacity v/r when r | v), the
      building block of the x' = 0 base case of the Combo recurrence
      (Eqn. 6). *)

val subsets_capacity : v:int -> r:int -> int
(** C(v, r) — may raise {!Combin.Binomial.Overflow} for absurd inputs. *)

val subsets_seq : v:int -> r:int -> int array Seq.t
(** All r-subsets of [0..v-1] in lexicographic order, generated lazily
    (each array fresh).  Feed to a placement builder without materializing
    C(v, r) blocks. *)

val subsets_design : v:int -> r:int -> count:int -> Block_design.t
(** The first [count] r-subsets as an r-(v, r, 1) packing.
    @raise Invalid_argument if [count > C(v, r)]. *)

val partition_admissible : v:int -> r:int -> bool
(** r | v. *)

val partition : v:int -> r:int -> Block_design.t
(** The design of consecutive chunks [{0..r-1}, {r..2r-1}, ...]: a
    1-(v, r, 1) design.  @raise Invalid_argument unless r | v. *)

val rounds : v:int -> r:int -> rounds:int -> Block_design.t
(** A 1-(v, r, rounds) design made of [rounds] rotated partitions — the
    resolvable structure used when λ0 > 1 copies of a partition are
    needed.  @raise Invalid_argument unless r | v. *)
