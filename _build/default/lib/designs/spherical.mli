(** Spherical (Möbius) designs: 3-(q^d + 1, q + 1, 1) Steiner systems.

    Points are the projective line PG(1, GF(q^d)); blocks are the images of
    the sub-line PG(1, GF(q)) under fractional linear maps.  Because
    PGL(2, q^d) is sharply 3-transitive, every 3-subset of points lies in
    exactly one image, so the family is a Steiner system.  With q = 4 this
    produces the 3-(17, 5, 1), 3-(65, 5, 1) and 3-(257, 5, 1) designs that
    cover the paper's r = 5, x = 2 rows (Fig. 4 lists nx = 257 for
    n = 257 from exactly this family).

    Construction: sweep all 3-subsets in order; for each not-yet-covered
    triple, map the base block through it with {!Galois.Pline} and record
    it.  Coverage is tracked in a bitset over triple ranks, and the sweep
    itself certifies the Steiner property (a conflict raises). *)

val point_count : q:int -> d:int -> int
(** q^d + 1. *)

val block_count : q:int -> d:int -> int

val make : q:int -> d:int -> Block_design.t
(** @raise Invalid_argument if [q] is not a prime power or [d < 1];
    [d = 1] gives the single-block design. *)
