(** Lines of projective space PG(d, q): the 2-((q^{d+1}-1)/(q-1), q+1, 1)
    designs.

    PG(d, 2) gives the 2-(2^{d+1}-1, 3, 1) triple systems (7, 15, 31, 63,
    127, 255 points); PG(2, q) is the projective plane of order q (e.g. the
    Fano plane); PG(d, 4) gives 2-designs with block size 5 on 21, 85, 341
    points used for the paper's r = 5 parameter rows. *)

val point_count : q:int -> d:int -> int
(** (q^{d+1} - 1)/(q - 1). *)

val line_count : q:int -> d:int -> int

val make : q:int -> d:int -> Block_design.t
(** [make ~q ~d] is the design of lines of PG(d, q) for [d >= 2], or the
    single-block design when [d = 1].
    @raise Invalid_argument if [q] is not a prime power or [d < 1]. *)
