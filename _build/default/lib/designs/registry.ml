type availability =
  | Materialized of (unit -> Block_design.t)
  | Literature of string

type entry = {
  name : string;
  strength : int;
  v : int;
  block_size : int;
  mu : int;
  blocks : int;
  source : availability;
}

let is_materialized e = match e.source with Materialized _ -> true | Literature _ -> false
let capacity e = e.blocks

let block_count_of ~strength ~v ~block_size ~mu =
  match
    Combin.Binomial.ratio_exact v strength block_size strength
  with
  | Some c -> mu * c
  | None ->
      (* mu * C(v,t) must be divisible by C(r,t) for a design. *)
      let num = mu * Combin.Binomial.exact v strength in
      let den = Combin.Binomial.exact block_size strength in
      if num mod den = 0 then num / den
      else invalid_arg "Registry: parameters do not admit a design"

let mk ~name ~strength ~v ~block_size ~mu source =
  {
    name;
    strength;
    v;
    block_size;
    mu;
    blocks = block_count_of ~strength ~v ~block_size ~mu;
    source;
  }

let prime_powers ~max_v =
  List.filter
    (fun q -> Galois.Field.is_prime_power q <> None)
    (List.init (max 0 (max_v - 1)) (fun i -> i + 2))

(* Powers q^d <= max_v with d >= from_d. *)
let powers_upto q ~from_d ~max_v =
  let rec go acc p d =
    if p > max_v then List.rev acc
    else go (if d >= from_d then (d, p) :: acc else acc) (p * q) (d + 1)
  in
  if q < 2 then [] else go [] (let rec pw i = if i = 0 then 1 else q * pw (i - 1) in pw from_d) from_d

(* --- family enumerations, one function per (t, r) shape ------------- *)

let t1_entries ~block_size ~max_v =
  (* Partitions: v any multiple of r. *)
  let out = ref [] in
  let v = ref block_size in
  while !v <= max_v do
    let v' = !v in
    out :=
      mk ~name:(Printf.sprintf "partition(%d/%d)" v' block_size) ~strength:1
        ~v:v' ~block_size ~mu:1
        (Materialized (fun () -> Trivial.partition ~v:v' ~r:block_size))
      :: !out;
    v := !v + block_size
  done;
  List.rev !out

let complete_entries ~strength ~max_v =
  (* t = r: all r-subsets; capacity C(v,r).  One entry per v. *)
  let r = strength in
  List.filter_map
    (fun v ->
      if v < r then None
      else
        match Combin.Binomial.exact_opt v r with
        | None -> None
        | Some c ->
            Some
              (mk ~name:(Printf.sprintf "complete(%d,%d)" v r) ~strength ~v
                 ~block_size:r ~mu:1
                 (Materialized (fun () -> Trivial.subsets_design ~v ~r ~count:c))))
    (List.init max_v (fun i -> i + 1))

let sts_entries ~max_v =
  List.filter_map
    (fun v ->
      if v >= 7 && Steiner_triple.admissible v then
        Some
          (mk ~name:(Printf.sprintf "STS(%d)" v) ~strength:2 ~v ~block_size:3
             ~mu:1
             (Materialized (fun () -> Steiner_triple.make v)))
      else None)
    (List.init max_v (fun i -> i + 1))

let ag_entries ~q ~max_v =
  List.map
    (fun (d, v) ->
      mk ~name:(Printf.sprintf "AG(%d,%d)" d q) ~strength:2 ~v ~block_size:q
        ~mu:1
        (Materialized (fun () -> Affine.make ~q ~d)))
    (powers_upto q ~from_d:2 ~max_v)

let pg_entries ~q ~max_v =
  (* PG(d, q) has block size q+1. *)
  let rec dims acc d =
    let v = Projective.point_count ~q ~d in
    if v > max_v then List.rev acc else dims ((d, v) :: acc) (d + 1)
  in
  List.map
    (fun (d, v) ->
      mk ~name:(Printf.sprintf "PG(%d,%d)" d q) ~strength:2 ~v
        ~block_size:(q + 1) ~mu:1
        (Materialized (fun () -> Projective.make ~q ~d)))
    (dims [] 2)

let unital_entry ~q ~max_v =
  let v = Unital.point_count ~q in
  if v <= max_v then
    [
      mk ~name:(Printf.sprintf "unital(%d)" q) ~strength:2 ~v
        ~block_size:(q + 1) ~mu:1
        (Materialized (fun () -> Unital.make ~q));
    ]
  else []

(* Hanani's spectrum theorems for 2-(v,r,1), r in {3,4,5}. *)
let pairwise_admissible ~block_size v =
  match block_size with
  | 3 -> v mod 6 = 1 || v mod 6 = 3
  | 4 -> v mod 12 = 1 || v mod 12 = 4
  | 5 -> v mod 20 = 1 || v mod 20 = 5
  | _ -> false

let t2_literature ~block_size ~max_v materialized_vs =
  if block_size < 3 || block_size > 5 then []
  else
    List.filter_map
      (fun v ->
        if
          v > block_size
          && pairwise_admissible ~block_size v
          && not (List.mem v materialized_vs)
        then
          Some
            (mk
               ~name:(Printf.sprintf "2-(%d,%d,1) [Hanani]" v block_size)
               ~strength:2 ~v ~block_size ~mu:1
               (Literature "Hanani 1961/1975; Abel & Greig, Handbook ch. 3"))
        else None)
      (List.init max_v (fun i -> i + 1))

let sqs_entries ~max_v =
  List.filter_map
    (fun v ->
      if v >= 8 && Quadruple.constructible v then
        Some
          (mk ~name:(Printf.sprintf "SQS(%d)" v) ~strength:3 ~v ~block_size:4
             ~mu:1
             (Materialized (fun () -> Quadruple.make v)))
      else None)
    (List.init max_v (fun i -> i + 1))

let sqs_literature ~max_v materialized_vs =
  List.filter_map
    (fun v ->
      if v >= 8 && Quadruple.admissible v && not (List.mem v materialized_vs)
      then
        Some
          (mk ~name:(Printf.sprintf "SQS(%d) [Hanani]" v) ~strength:3 ~v
             ~block_size:4 ~mu:1
             (Literature "Hanani 1960 (Canad. J. Math. 12)"))
      else None)
    (List.init max_v (fun i -> i + 1))

let spherical_entries ~q ~max_v =
  List.map
    (fun (d, p) ->
      let v = p + 1 in
      mk ~name:(Printf.sprintf "spherical(%d^%d)" q d) ~strength:3 ~v
        ~block_size:(q + 1) ~mu:1
        (Materialized (fun () -> Spherical.make ~q ~d)))
    (List.filter (fun (_, p) -> p + 1 <= max_v) (powers_upto q ~from_d:2 ~max_v))

let t3_r5_literature ~max_v materialized_vs =
  (* Known small 3-(v,5,1) systems beyond the spherical family; the paper
     uses 26 (Hanani, Hartman & Kramer 1983) for n = 31. *)
  List.filter_map
    (fun v ->
      if v <= max_v && not (List.mem v materialized_vs) then
        Some
          (mk ~name:(Printf.sprintf "3-(%d,5,1) [HHK]" v) ~strength:3 ~v
             ~block_size:5 ~mu:1
             (Literature "Hanani, Hartman & Kramer 1983"))
      else None)
    [ 26; 41; 46 ]

let s45_literature ~max_v materialized_vs =
  (* The known S(4,5,v) list (Colbourn & Mathon, Handbook ch. 5); the
     paper's Fig. 4 uses 23, 71 and 243 from it. *)
  List.filter_map
    (fun v ->
      if v <= max_v && not (List.mem v materialized_vs) then
        Some
          (mk ~name:(Printf.sprintf "S(4,5,%d)" v) ~strength:4 ~v
             ~block_size:5 ~mu:1
             (Literature "Colbourn & Mathon, Handbook ch. 5 (Mills et al.)"))
      else None)
    [ 23; 35; 47; 71; 83; 107; 131; 167; 243 ]

let s45_search ~max_v =
  if max_v >= 11 then
    [
      mk ~name:"S(4,5,11) [search]" ~strength:4 ~v:11 ~block_size:5 ~mu:1
        (Materialized
           (fun () ->
             match
               Packing_search.exact_steiner ~strength:4 ~v:11 ~block_size:5 ()
             with
             | Some d -> d
             | None -> failwith "Registry: S(4,5,11) search failed"));
    ]
  else []

(* PGL(2,q)-orbit 3-(q+1,5,mu) designs with mu > 1 (Fig. 6 engine).
   Deterministic per q: fixed-seed search. *)
let mobius_mu_entries ~max_mu ~max_v =
  if max_mu < 2 then []
  else
    List.filter_map
      (fun q ->
        if q + 1 > max_v || q + 1 < 7 then None
        else begin
          let f = Galois.Field.of_order q in
          let rng = Combin.Rng.create (0x5EED + q) in
          let s, h = Mobius_family.search_best f ~rng ~tries:(min 400 (4 * q)) in
          let mu = Mobius_family.mu_of_stab h in
          if mu <= max_mu && mu > 1 then
            Some
              (mk
                 ~name:(Printf.sprintf "PGL-orbit 3-(%d,5,%d)" (q + 1) mu)
                 ~strength:3 ~v:(q + 1) ~block_size:5 ~mu
                 (Materialized (fun () -> Mobius_family.design f s)))
          else None
        end)
      (prime_powers ~max_v)

let vs_of entries = List.map (fun e -> e.v) entries

(* 2-(v, r, 1) designs developed from searched (v, r, 1) difference
   families, for orders our search is vetted on and no algebraic
   construction already covers. *)
let df_entries ~block_size ~max_v covered_vs =
  if block_size < 3 || block_size > 5 then []
  else
    List.filter_map
      (fun v ->
        if v <= max_v && not (List.mem v covered_vs) then
          Some
            (mk
               ~name:(Printf.sprintf "2-(%d,%d,1) [DF search]" v block_size)
               ~strength:2 ~v ~block_size ~mu:1
               (Materialized
                  (fun () ->
                    match Difference_family.make ~v ~r:block_size () with
                    | Some d -> d
                    | None ->
                        failwith
                          (Printf.sprintf
                             "Registry: difference-family search failed for v=%d r=%d"
                             v block_size))))
        else None)
      (List.filter
         (fun v -> Difference_family.searchable ~v ~r:block_size)
         (List.init max_v (fun i -> i + 1)))

let entries ?(max_mu = 1) ?(include_literature = true) ~strength ~block_size
    ~max_v () =
  if strength < 1 || strength > block_size then
    invalid_arg "Registry.entries: need 1 <= strength <= block_size";
  let base =
    if strength = 1 then t1_entries ~block_size ~max_v
    else if strength = block_size then complete_entries ~strength ~max_v
    else
      match (strength, block_size) with
      | 2, r ->
          let materialized =
            (if r = 3 then sts_entries ~max_v else [])
            @ (match Galois.Field.is_prime_power r with
              | Some _ -> ag_entries ~q:r ~max_v
              | None -> [])
            @ (match Galois.Field.is_prime_power (r - 1) with
              | Some _ -> pg_entries ~q:(r - 1) ~max_v @ unital_entry ~q:(r - 1) ~max_v
              | None -> [])
          in
          let materialized =
            materialized @ df_entries ~block_size:r ~max_v (vs_of materialized)
          in
          let lit =
            if include_literature then
              t2_literature ~block_size:r ~max_v (vs_of materialized)
            else []
          in
          materialized @ lit
      | 3, 4 ->
          (* Steiner quadruple systems, plus the spherical (Möbius-plane)
             3-(3^d+1, 4, 1) family over GF(3): 10, 28, 82, 244, ... *)
          let sqs = sqs_entries ~max_v in
          let spherical =
            List.filter
              (fun e -> not (List.mem e.v (vs_of sqs)))
              (spherical_entries ~q:3 ~max_v)
          in
          let materialized = sqs @ spherical in
          let lit =
            if include_literature then sqs_literature ~max_v (vs_of materialized)
            else []
          in
          materialized @ lit
      | 3, 5 ->
          let materialized = spherical_entries ~q:4 ~max_v in
          let lit =
            if include_literature then
              t3_r5_literature ~max_v (vs_of materialized)
            else []
          in
          let mus = mobius_mu_entries ~max_mu ~max_v in
          materialized @ lit @ mus
      | 3, r -> (
          (* General block sizes (e.g. r = 6 erasure-coded stripes): the
             spherical 3-((r-1)^d+1, r, 1) family whenever r-1 is a prime
             power. *)
          match Galois.Field.is_prime_power (r - 1) with
          | Some _ -> spherical_entries ~q:(r - 1) ~max_v
          | None -> [])
      | 4, 5 ->
          let materialized = s45_search ~max_v in
          let lit =
            if include_literature then s45_literature ~max_v (vs_of materialized)
            else []
          in
          materialized @ lit
      | _ -> []
  in
  let filtered = List.filter (fun e -> e.mu <= max_mu && e.v <= max_v) base in
  List.sort (fun a b -> compare (a.v, a.mu) (b.v, b.mu)) filtered

let best ?(max_mu = 1) ?(include_literature = true) ?(materialized_only = false)
    ~strength ~block_size ~max_v () =
  let pool = entries ~max_mu ~include_literature ~strength ~block_size ~max_v () in
  let pool = if materialized_only then List.filter is_materialized pool else pool in
  (* Capacity per unit mu, i.e. blocks/mu, decides; prefer larger v then
     smaller mu on ties. *)
  let better a b =
    let ka = (float_of_int a.blocks /. float_of_int a.mu, a.v, -a.mu) in
    let kb = (float_of_int b.blocks /. float_of_int b.mu, b.v, -b.mu) in
    ka > kb
  in
  List.fold_left
    (fun acc e -> match acc with Some e' when better e' e -> acc | _ -> Some e)
    None pool

let materialize e =
  match e.source with
  | Materialized gen ->
      let d = gen () in
      if
        d.Block_design.strength <> e.strength
        || d.Block_design.v <> e.v
        || d.Block_design.block_size <> e.block_size
        || d.Block_design.lambda <> e.mu
        || Block_design.block_count d <> e.blocks
      then failwith ("Registry.materialize: generator mismatch for " ^ e.name);
      d
  | Literature cite ->
      invalid_arg
        (Printf.sprintf "Registry.materialize: %s is literature-only (%s)"
           e.name cite)

let paper_nx_table () =
  List.map
    (fun n ->
      let per_r =
        List.map
          (fun r ->
            let row =
              List.map
                (fun x -> (x, best ~strength:(x + 1) ~block_size:r ~max_v:n ()))
                (List.init (r - 1) (fun i -> i + 1))
            in
            (r, row))
          [ 2; 3; 4; 5 ]
      in
      (n, per_r))
    [ 31; 71; 257 ]
