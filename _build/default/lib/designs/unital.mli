(** Hermitian unitals: 2-(q^3 + 1, q + 1, 1) designs.

    The points are the GF(q²)-rational points of the Hermitian curve
    x^{q+1} + y^{q+1} + z^{q+1} = 0 in PG(2, q²); the blocks are the
    intersections of the curve with its secant lines, each of size q + 1.
    For q = 4 this yields the 2-(65, 5, 1) design the paper uses as
    nx = 65 for r = 5, x = 1 at n = 71 (Fig. 4); q = 3 yields 2-(28, 4, 1)
    and q = 2 yields 2-(9, 3, 1). *)

val point_count : q:int -> int
(** q^3 + 1. *)

val block_count : q:int -> int
(** q^2 (q^2 - q + 1). *)

val make : q:int -> Block_design.t
(** @raise Invalid_argument if [q] is not a prime power. *)
