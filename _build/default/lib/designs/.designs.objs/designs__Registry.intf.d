lib/designs/registry.mli: Block_design
