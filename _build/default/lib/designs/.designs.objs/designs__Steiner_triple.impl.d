lib/designs/steiner_triple.ml: Array Block_design Combin
