lib/designs/mobius_family.mli: Block_design Combin Galois
