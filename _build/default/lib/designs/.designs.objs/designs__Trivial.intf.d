lib/designs/trivial.mli: Block_design Seq
