lib/designs/block_design.mli: Combin Format
