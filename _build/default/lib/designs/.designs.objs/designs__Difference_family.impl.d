lib/designs/difference_family.ml: Array Block_design List
