lib/designs/quadruple.mli: Block_design
