lib/designs/mobius_family.ml: Array Block_design Combin Galois Hashtbl List Queue
