lib/designs/packing_search.ml: Array Block_design Combin Hashtbl List Option
