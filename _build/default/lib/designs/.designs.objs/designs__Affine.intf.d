lib/designs/affine.mli: Block_design
