lib/designs/spherical.ml: Array Block_design Bytes Char Combin Galois
