lib/designs/unital.mli: Block_design
