lib/designs/steiner_triple.mli: Block_design
