lib/designs/affine.ml: Array Block_design Galois List
