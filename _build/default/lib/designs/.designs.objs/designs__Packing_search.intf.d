lib/designs/packing_search.mli: Block_design Combin
