lib/designs/difference_family.mli: Block_design
