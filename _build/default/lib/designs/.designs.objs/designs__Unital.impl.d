lib/designs/unital.ml: Array Block_design Combin Galois Hashtbl List
