lib/designs/trivial.ml: Array Block_design Combin Seq
