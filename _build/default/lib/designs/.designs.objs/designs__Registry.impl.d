lib/designs/registry.ml: Affine Block_design Combin Difference_family Galois List Mobius_family Packing_search Printf Projective Quadruple Spherical Steiner_triple Trivial Unital
