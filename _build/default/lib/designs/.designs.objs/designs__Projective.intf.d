lib/designs/projective.mli: Block_design
