lib/designs/chunking.ml: Array Combin List Option Registry
