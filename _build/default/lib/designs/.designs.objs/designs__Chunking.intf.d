lib/designs/chunking.mli: Registry
