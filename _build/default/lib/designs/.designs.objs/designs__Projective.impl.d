lib/designs/projective.ml: Array Block_design Galois Hashtbl List
