lib/designs/quadruple.ml: Array Block_design Combin Hashtbl List Packing_search Printf
