lib/designs/block_design.ml: Array Combin Format Hashtbl List Option
