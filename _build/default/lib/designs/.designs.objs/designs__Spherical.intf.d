lib/designs/spherical.mli: Block_design
