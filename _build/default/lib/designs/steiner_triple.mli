(** Steiner triple systems: 2-(v, 3, 1) designs.

    These drive every [r = 3, x = 1] parameter row in the paper (e.g.
    nx = 31, 69, 255 in Fig. 4).  An STS(v) exists iff v ≡ 1 or 3 (mod 6);
    we build the two classical direct constructions:

    - {b Bose} (v = 6t + 3): points Z_{2t+1} × {0,1,2}; and
    - {b Skolem} (v = 6t + 1): points (Z_{2t} × {0,1,2}) ∪ {∞}, using the
      standard half-idempotent commutative quasigroup on Z_{2t}.

    Both are as described in Lindner & Rodger, {i Design Theory}, ch. 1
    (reference [23] of the paper). *)

val admissible : int -> bool
(** [admissible v] iff v ≡ 1 or 3 (mod 6) and [v >= 3] (or [v = 1]). *)

val largest_admissible : int -> int option
(** Largest admissible [v' <= v] with [v' >= 3]. *)

val make : int -> Block_design.t
(** [make v] is an STS(v).
    @raise Invalid_argument if [v] is not admissible or [v < 3]. *)
