(** (v, r, 1) difference families over Z_v, and the 2-(v, r, 1) designs
    they generate.

    A (v, r, 1)-DF is a set of base blocks B_1 .. B_m ⊂ Z_v,
    m = (v-1)/(r(r-1)), whose pairwise differences cover Z_v \ {0}
    exactly once; developing each base block through all v translations
    yields a 2-(v, r, 1) design.  This is the classical engine behind
    most handbook existence results for block sizes 4 and 5 (the paper's
    r = 4, 5 rows); we find families by backtracking search, which turns
    a slice of the registry's literature-only entries into generated
    designs.

    Search is feasible for the moderate v used in this reproduction;
    {!searchable} gates the orders we have verified the search to
    complete on quickly. *)

val admissible : v:int -> r:int -> bool
(** v ≡ 1 (mod r(r-1)) — the condition for a pure difference family with
    no short orbits. *)

val find : ?budget:int -> v:int -> r:int -> unit -> int array array option
(** [find ~v ~r ()] searches for base blocks (each sorted, containing 0).
    [budget] caps backtracking nodes (default 5 million).  Deterministic. *)

val verify : v:int -> r:int -> int array array -> bool
(** Every nonzero difference covered exactly once. *)

val develop : v:int -> r:int -> int array array -> Block_design.t
(** Translate the base blocks through Z_v: a 2-(v, r, 1) design with
    [m·v] blocks.  Does not re-verify; combine with {!verify} or the
    design checker. *)

val make : ?budget:int -> v:int -> r:int -> unit -> Block_design.t option
(** [find] + [develop]. *)

val searchable : v:int -> r:int -> bool
(** Orders on which {!find} is known (tested) to succeed within budget:
    a curated subset of admissible prime-power/prime orders. *)
