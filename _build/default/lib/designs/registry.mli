(** Catalogue of (x+1)-(v, r, μ) designs usable as Simple(x, μ) placements.

    Mirrors the role of Fig. 4 and Sec. III-C of the paper: given x, r and
    a system size n, find the best nx ≤ n for which a design is known.
    Two kinds of entry:

    - {b materialized}: this library can generate the blocks (STS, AG, PG,
      unitals, SQS, spherical designs, PGL-orbit designs, exact search);
    - {b literature}: existence is established in the design-theory
      literature the paper cites (e.g. Hanani's spectrum results, the
      known S(4,5,v) list); we record parameters and block counts only.
      Analytical experiments (lower bounds, Figs 3–6, 9, 10) need only
      capacities; simulations use materialized entries exclusively. *)

type availability =
  | Materialized of (unit -> Block_design.t)
  | Literature of string  (** citation *)

type entry = {
  name : string;
  strength : int;  (** t = x + 1 *)
  v : int;
  block_size : int;  (** the paper's r *)
  mu : int;  (** the design's λ, the paper's μx *)
  blocks : int;  (** exact block count: μ C(v,t) / C(r,t) *)
  source : availability;
}

val is_materialized : entry -> bool

val capacity : entry -> int
(** Alias for [e.blocks]: the number of objects a Simple(x, μ) placement
    built from this design can host (Observation 1). *)

val entries :
  ?max_mu:int -> ?include_literature:bool -> strength:int -> block_size:int ->
  max_v:int -> unit -> entry list
(** All catalogue entries with the given t and r and [v <= max_v], sorted
    by increasing v.  [max_mu] defaults to 1; [include_literature]
    defaults to [true].  Entries with μ > 1 (the PGL-orbit 3-(q+1,5,μ)
    family) appear only when [max_mu > 1]. *)

val best :
  ?max_mu:int -> ?include_literature:bool -> ?materialized_only:bool ->
  strength:int -> block_size:int -> max_v:int -> unit -> entry option
(** The entry maximizing capacity per unit μ (the paper's selection:
    largest usable nx).  Ties broken toward larger v, then smaller μ. *)

val materialize : entry -> Block_design.t
(** @raise Invalid_argument on a literature entry. *)

val paper_nx_table :
  unit -> (int * (int * (int * entry option) list) list) list
(** Fig. 4 reproduction: for each n in {31, 71, 257}, for each r in
    {2..5}, the selected nx entry per x in {1..r-1} (μ = 1, literature
    included): [(n, [(r, [(x, entry)])])]. *)
