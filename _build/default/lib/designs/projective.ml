let pow q e =
  let rec go acc i = if i = 0 then acc else go (acc * q) (i - 1) in
  go 1 e

let point_count ~q ~d = (pow q (d + 1) - 1) / (q - 1)

let line_count ~q ~d =
  (* #pairs / #pairs-per-line *)
  let v = point_count ~q ~d in
  v * (v - 1) / ((q + 1) * q)

let make ~q ~d =
  if d < 1 then invalid_arg "Projective.make: d < 1";
  let f = Galois.Field.of_order q in
  let dim = d + 1 in
  let nvec = pow q dim in
  let decode code =
    let digits = Array.make dim 0 in
    let rest = ref code in
    for i = 0 to dim - 1 do
      digits.(i) <- !rest mod q;
      rest := !rest / q
    done;
    digits
  in
  let encode digits =
    let acc = ref 0 in
    for i = dim - 1 downto 0 do
      acc := (!acc * q) + digits.(i)
    done;
    !acc
  in
  (* Projective points: canonical representatives with first nonzero
     coordinate 1, indexed densely. *)
  let canonical u =
    let rec first_nonzero i = if u.(i) <> 0 then i else first_nonzero (i + 1) in
    let lead = u.(first_nonzero 0) in
    if lead = 1 then u else Array.map (fun x -> f.mul (f.inv lead) x) u
  in
  let index_of_code = Array.make nvec (-1) in
  let points = ref [] and npoints = ref 0 in
  for code = 1 to nvec - 1 do
    let u = decode code in
    let rec first_nonzero i = if u.(i) <> 0 then i else first_nonzero (i + 1) in
    if u.(first_nonzero 0) = 1 then begin
      index_of_code.(code) <- !npoints;
      points := u :: !points;
      incr npoints
    end
  done;
  let points = Array.of_list (List.rev !points) in
  let v = Array.length points in
  assert (v = point_count ~q ~d);
  let add_vec a b = Array.init dim (fun i -> f.add a.(i) b.(i)) in
  let scale_vec t a = Array.map (fun x -> f.mul t x) a in
  (* The line through points p1, p2 is { [α p1 + β p2] : (α:β) ∈ PG(1,q) }
     = { p1 } ∪ { [t p1 + p2] : t ∈ GF(q) }. *)
  let line_through p1 p2 =
    let pts = Array.make (q + 1) 0 in
    pts.(0) <- index_of_code.(encode (canonical points.(p1)));
    for t = 0 to q - 1 do
      let u = canonical (add_vec (scale_vec t points.(p1)) points.(p2)) in
      pts.(t + 1) <- index_of_code.(encode u)
    done;
    Array.sort compare pts;
    pts
  in
  if d = 1 then
    Block_design.make ~strength:2 ~v ~block_size:(q + 1) ~lambda:1
      [| Array.init v (fun i -> i) |]
  else begin
    let seen = Hashtbl.create (4 * line_count ~q ~d) in
    let blocks = ref [] in
    for p1 = 0 to v - 1 do
      for p2 = p1 + 1 to v - 1 do
        let line = line_through p1 p2 in
        let key = Array.to_list line in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          blocks := line :: !blocks
        end
      done
    done;
    Block_design.make ~strength:2 ~v ~block_size:(q + 1) ~lambda:1
      (Array.of_list !blocks)
  end
