(* Shared helper: the rank of each [strength]-subset of a block, used as a
   dense key into coverage tables. *)
let subset_ranks ~v ~strength block =
  let ranks = ref [] in
  Combin.Subset.sub_iter block ~k:strength (fun sub ->
      ranks := Combin.Subset.rank ~n:v sub :: !ranks);
  Array.of_list !ranks

let all_blocks ~v ~block_size =
  let out = ref [] in
  Combin.Subset.iter ~n:v ~k:block_size (fun c -> out := Array.copy c :: !out);
  Array.of_list (List.rev !out)

exception Found of int list
exception Budget_exhausted

let exact_steiner ?(node_budget = 20_000_000) ~strength ~v ~block_size () =
  let nsubsets = Combin.Binomial.exact v strength in
  let candidates = all_blocks ~v ~block_size in
  let ncand = Array.length candidates in
  let cand_subsets =
    Array.map (fun blk -> subset_ranks ~v ~strength blk) candidates
  in
  (* For every t-subset, the candidate blocks containing it. *)
  let containing = Array.make nsubsets [] in
  Array.iteri
    (fun ci ranks -> Array.iter (fun r -> containing.(r) <- ci :: containing.(r)) ranks)
    cand_subsets;
  let containing = Array.map Array.of_list containing in
  let covered = Array.make nsubsets false in
  let active = Array.make ncand true in
  (* How many active candidates still cover each uncovered subset. *)
  let choices = Array.make nsubsets 0 in
  for s = 0 to nsubsets - 1 do
    choices.(s) <- Array.length containing.(s)
  done;
  let deactivate ci trail =
    if active.(ci) then begin
      active.(ci) <- false;
      Array.iter (fun s -> choices.(s) <- choices.(s) - 1) cand_subsets.(ci);
      trail := ci :: !trail
    end
  in
  let undo trail =
    List.iter
      (fun ci ->
        active.(ci) <- true;
        Array.iter (fun s -> choices.(s) <- choices.(s) + 1) cand_subsets.(ci))
      trail
  in
  let nodes = ref 0 in
  let rec solve chosen uncovered_count =
    incr nodes;
    if !nodes > node_budget then raise Budget_exhausted;
    if uncovered_count = 0 then raise (Found chosen)
    else begin
      (* Fewest-choices heuristic: branch on the uncovered subset with the
         smallest number of admissible blocks. *)
      let best = ref (-1) and best_choices = ref max_int in
      for s = 0 to nsubsets - 1 do
        if (not covered.(s)) && choices.(s) < !best_choices then begin
          best := s;
          best_choices := choices.(s)
        end
      done;
      if !best_choices = 0 then () (* dead end *)
      else begin
        let s = !best in
        Array.iter
          (fun ci ->
            if active.(ci) then begin
              (* Choose block ci: mark its subsets covered; deactivate every
                 active block sharing a subset with it. *)
              let trail = ref [] in
              let newly_covered = ref [] in
              Array.iter
                (fun r ->
                  if not covered.(r) then begin
                    covered.(r) <- true;
                    newly_covered := r :: !newly_covered
                  end)
                cand_subsets.(ci);
              let to_deactivate = ref [] in
              Array.iter
                (fun r ->
                  Array.iter
                    (fun cj -> if active.(cj) then to_deactivate := cj :: !to_deactivate)
                    containing.(r))
                cand_subsets.(ci);
              List.iter (fun cj -> deactivate cj trail) !to_deactivate;
              solve (ci :: chosen) (uncovered_count - List.length !newly_covered);
              undo !trail;
              List.iter (fun r -> covered.(r) <- false) !newly_covered
            end)
          containing.(s)
      end
    end
  in
  match solve [] nsubsets with
  | () -> None
  | exception Budget_exhausted -> None
  | exception Found chosen ->
      let blocks = Array.of_list (List.map (fun ci -> candidates.(ci)) chosen) in
      Some (Block_design.make ~strength ~v ~block_size ~lambda:1 blocks)

(* Coverage table for greedy packing: counts per t-subset rank, stored
   sparsely so that large v stay cheap. *)
let make_coverage () = Hashtbl.create 4096

let compatible coverage ~lambda ranks =
  Array.for_all
    (fun r -> Option.value ~default:0 (Hashtbl.find_opt coverage r) < lambda)
    ranks

let commit coverage ranks =
  Array.iter
    (fun r ->
      Hashtbl.replace coverage r
        (1 + Option.value ~default:0 (Hashtbl.find_opt coverage r)))
    ranks

let greedy_lex ?(max_blocks = max_int) ~strength ~v ~block_size ~lambda () =
  let coverage = make_coverage () in
  let blocks = ref [] and count = ref 0 in
  (try
     Combin.Subset.iter ~n:v ~k:block_size (fun c ->
         if !count >= max_blocks then raise Exit;
         let ranks = subset_ranks ~v ~strength c in
         if compatible coverage ~lambda ranks then begin
           commit coverage ranks;
           blocks := Array.copy c :: !blocks;
           incr count
         end)
   with Exit -> ());
  Block_design.make ~strength ~v ~block_size ~lambda
    (Array.of_list (List.rev !blocks))

let greedy_random ~rng ?(stall_limit = 2000) ~strength ~v ~block_size ~lambda () =
  let coverage = make_coverage () in
  let blocks = ref [] in
  let stalls = ref 0 in
  while !stalls < stall_limit do
    let c = Combin.Rng.sample_distinct rng ~n:v ~k:block_size in
    let ranks = subset_ranks ~v ~strength c in
    if compatible coverage ~lambda ranks then begin
      commit coverage ranks;
      blocks := c :: !blocks;
      stalls := 0
    end
    else incr stalls
  done;
  Block_design.make ~strength ~v ~block_size ~lambda
    (Array.of_list (List.rev !blocks))
