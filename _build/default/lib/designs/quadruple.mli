(** Steiner quadruple systems: 3-(v, 4, 1) designs.

    An SQS(v) exists iff v ≡ 2 or 4 (mod 6) (Hanani 1960, the paper's
    reference [21]).  We build:

    - the {b Boolean} SQS(2^m): points GF(2)^m, blocks the 4-sets with
      zero XOR-sum (the planes of AG(m, 2));
    - {b Hanani's doubling} SQS(2v) from SQS(v) via a one-factorization of
      K_v; and
    - small base systems (SQS(10), SQS(14)) via exact-cover search
      ({!Packing_search}).

    The closure of {4, 8, 10, 14} under doubling together with the Boolean
    family covers a dense set of admissible orders, including the SQS(16)
    .. SQS(256) range used for the paper's r = 4, x = 2 rows. *)

val admissible : int -> bool
(** v ≡ 2 or 4 (mod 6), v >= 4. *)

val constructible : int -> bool
(** Whether {!make} can build SQS(v) (Boolean orders and the doubling
    closure of the searched base systems). *)

val largest_constructible : int -> int option

val boolean : int -> Block_design.t
(** [boolean m] is the Boolean SQS(2^m), for [m >= 2]. *)

val double : Block_design.t -> Block_design.t
(** Hanani doubling: SQS(v) -> SQS(2v).
    @raise Invalid_argument if the input is not an SQS. *)

val make : int -> Block_design.t
(** @raise Invalid_argument if [not (constructible v)]. *)

val one_factorization : int -> int array array array
(** [one_factorization v] for even [v >= 2]: [v-1] perfect matchings
    (arrays of sorted pairs) partitioning the edges of K_v.  The standard
    round-robin construction; exposed for tests and reuse. *)
