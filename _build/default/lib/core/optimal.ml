exception Too_large

let search_cost ~n ~r ~k ~b =
  let nblocks = Combin.Binomial.exact n r in
  match Combin.Binomial.exact_opt (nblocks + b - 1) b with
  | None -> infinity
  | Some placements ->
      float_of_int placements
      *. float_of_int (Combin.Binomial.exact n k)
      *. float_of_int b

let best ?(budget = 5e8) ~n ~r ~s ~k ~b () =
  if search_cost ~n ~r ~k ~b > budget then raise Too_large;
  let blocks = ref [] in
  Combin.Subset.iter ~n ~k:r (fun c -> blocks := Array.copy c :: !blocks);
  let blocks = Array.of_list (List.rev !blocks) in
  let nblocks = Array.length blocks in
  (* Precompute, for every candidate failure set, which blocks it kills
     (>= s overlap): per block, a bitmask over failure-set indices would
     be large; instead evaluate per placement with per-block kill tables.
     kill.(bi) is the sorted array of failure-set ranks killing block bi. *)
  let failure_sets = ref [] in
  Combin.Subset.iter ~n ~k (fun c -> failure_sets := Array.copy c :: !failure_sets);
  let failure_sets = Array.of_list (List.rev !failure_sets) in
  let nfail = Array.length failure_sets in
  let killed = Array.make_matrix nblocks nfail false in
  for bi = 0 to nblocks - 1 do
    for fi = 0 to nfail - 1 do
      killed.(bi).(fi) <-
        Combin.Intset.inter_size blocks.(bi) failure_sets.(fi) >= s
    done
  done;
  (* DFS over nondecreasing block-index sequences, keeping a running
     per-failure-set kill count; Avail = b - max over failure sets. *)
  let counts = Array.make nfail 0 in
  let chosen = Array.make b 0 in
  let best_avail = ref (-1) in
  let best_blocks = ref [||] in
  let rec go depth start =
    if depth = b then begin
      let worst = ref 0 in
      for fi = 0 to nfail - 1 do
        if counts.(fi) > !worst then worst := counts.(fi)
      done;
      let avail = b - !worst in
      if avail > !best_avail then begin
        best_avail := avail;
        best_blocks := Array.copy chosen
      end
    end
    else
      for bi = start to nblocks - 1 do
        chosen.(depth) <- bi;
        let kb = killed.(bi) in
        for fi = 0 to nfail - 1 do
          if kb.(fi) then counts.(fi) <- counts.(fi) + 1
        done;
        go (depth + 1) bi;
        for fi = 0 to nfail - 1 do
          if kb.(fi) then counts.(fi) <- counts.(fi) - 1
        done
      done
  in
  go 0 0;
  let replicas = Array.map (fun bi -> Array.copy blocks.(bi)) !best_blocks in
  (!best_avail, Layout.make ~n ~r replicas)
