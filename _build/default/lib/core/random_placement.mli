(** The Random placement strategy (Definition 4): replicas are placed
    uniformly at random subject to a per-node load cap of
    ⌈ℓ⌉ = ⌈r·b/n⌉ replicas.

    Implementation: shuffle a multiset of node slots sized exactly to the
    load caps, deal r consecutive slots to each object, and repair the
    (rare) objects dealt duplicate nodes by swapping slots with later
    objects — a uniform-conditioned-on-validity dealing, restarted from a
    fresh shuffle if a repair pass ever gets stuck. *)

val place : rng:Combin.Rng.t -> Params.t -> Layout.t
(** @raise Invalid_argument if [r > n]. *)

val place_unconstrained : rng:Combin.Rng.t -> Params.t -> Layout.t
(** The Random′ variant from Theorem 2's proof: each object's r replicas
    go to r distinct nodes chosen uniformly, with {e no} load cap.  Used
    by the ablation bench comparing the two. *)
