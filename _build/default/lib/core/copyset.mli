(** Copyset replication (Cidon et al., USENIX ATC 2013) as a baseline.

    Copyset replication restricts replica sets to a small number of
    precomputed "copysets" to minimize the frequency of data loss under
    simultaneous failures, trading against scatter width S (how many
    distinct nodes share data with a given node).  It is the
    best-known practitioner relative of the paper's t-packing placements:
    the permutation construction below makes each node belong to
    P = ⌈S/(r−1)⌉ copysets, which is exactly a union of P parallel
    classes — a 1-design — so in the paper's vocabulary it is a
    Simple(0, λ) placement whose λ grows with b/(P·⌊n/r⌋).

    The bench target [baseline-copyset] compares its worst-case
    availability against Combo and Random. *)

type t = {
  copysets : int array array;  (** each sorted, size r *)
  permutations : int;  (** P *)
  r : int;
  n : int;
}

val generate : rng:Combin.Rng.t -> n:int -> r:int -> scatter_width:int -> t
(** Permutation-based construction: P = ⌈scatter_width/(r−1)⌉ random
    permutations, each chopped into ⌊n/r⌋ consecutive copysets (the tail
    n mod r nodes of a permutation join no copyset of that round).
    @raise Invalid_argument if [r > n] or [scatter_width < r - 1]. *)

val scatter_widths : t -> int array
(** Per node: the number of {e distinct} other nodes sharing at least one
    copyset with it (the paper's S is the design target; duplicates
    across permutations make the realized value ≤ P·(r−1)). *)

val place : rng:Combin.Rng.t -> t -> b:int -> Layout.t
(** Each object's replica set is a uniformly random copyset (the
    "chunk placement" step of copyset replication).
    @raise Invalid_argument if a node belongs to no copyset... i.e. the
    generation produced zero copysets. *)

val effective_lambda : t -> Layout.t -> int
(** The achieved Simple(0, λ) parameter of a copyset placement: the
    maximum number of objects sharing one copyset. *)
