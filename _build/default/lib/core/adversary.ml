type attack = {
  failed_nodes : int array;
  failed_objects : int;
  exact : bool;
}

(* Incremental damage tracker: per-object replica-failure counts and the
   running number of failed objects. *)
type state = {
  s : int;
  node_objs : int array array;
  hits : int array;
  mutable failed : int;
}

let make_state layout ~s =
  {
    s;
    node_objs = Layout.node_objects layout;
    hits = Array.make (Layout.b layout) 0;
    failed = 0;
  }

let add_node st nd =
  Array.iter
    (fun obj ->
      st.hits.(obj) <- st.hits.(obj) + 1;
      if st.hits.(obj) = st.s then st.failed <- st.failed + 1)
    st.node_objs.(nd)

let remove_node st nd =
  Array.iter
    (fun obj ->
      if st.hits.(obj) = st.s then st.failed <- st.failed - 1;
      st.hits.(obj) <- st.hits.(obj) - 1)
    st.node_objs.(nd)

let eval layout ~s failed_nodes =
  Layout.failed_objects layout ~s ~failed_nodes

let exact ?(budget = 50_000_000) layout ~s ~k =
  let n = layout.Layout.n in
  if k >= n then invalid_arg "Adversary.exact: k >= n";
  let st = make_state layout ~s in
  let degrees = Array.map Array.length st.node_objs in
  (* top_deg.(start).(m): sum of the m largest degrees among nodes with id
     >= start — an upper bound on additional damage from m more picks. *)
  let top_deg =
    Array.init (n + 1) (fun start ->
        let suffix = Array.sub degrees start (n - start) in
        Array.sort (fun a b -> compare b a) suffix;
        let acc = Array.make (k + 1) 0 in
        for m = 1 to k do
          acc.(m) <- acc.(m - 1) + (if m - 1 < Array.length suffix then suffix.(m - 1) else 0)
        done;
        acc)
  in
  let best = ref (-1) and best_set = ref [||] in
  let current = Array.make k 0 in
  let nodes_visited = ref 0 in
  let truncated = ref false in
  let rec go start depth =
    incr nodes_visited;
    if !nodes_visited > budget then truncated := true
    else if depth = k then begin
      if st.failed > !best then begin
        best := st.failed;
        best_set := Array.copy current
      end
    end
    else if st.failed + top_deg.(start).(k - depth) > !best then
      for nd = start to n - (k - depth) do
        if not !truncated then begin
          current.(depth) <- nd;
          add_node st nd;
          go (nd + 1) (depth + 1);
          remove_node st nd
        end
      done
  in
  go 0 0;
  { failed_nodes = !best_set; failed_objects = !best; exact = not !truncated }

(* Marginal value of adding [nd]: (newly failed objects, progress toward
   s for not-yet-failed objects). *)
let marginal st nd =
  let newly = ref 0 and progress = ref 0 in
  Array.iter
    (fun obj ->
      let h = st.hits.(obj) in
      if h + 1 = st.s then incr newly;
      if h < st.s then incr progress)
    st.node_objs.(nd);
  (!newly, !progress)

let greedy layout ~s ~k =
  let n = layout.Layout.n in
  let st = make_state layout ~s in
  let chosen = Array.make n false in
  let picks = ref [] in
  for _ = 1 to k do
    let best_nd = ref (-1) and best_val = ref (-1, -1) in
    for nd = 0 to n - 1 do
      if not chosen.(nd) then begin
        let v = marginal st nd in
        if v > !best_val then begin
          best_val := v;
          best_nd := nd
        end
      end
    done;
    chosen.(!best_nd) <- true;
    add_node st !best_nd;
    picks := !best_nd :: !picks
  done;
  let failed_nodes = Combin.Intset.of_array (Array.of_list !picks) in
  { failed_nodes; failed_objects = st.failed; exact = false }

let improve_to_local_opt layout st chosen =
  let n = layout.Layout.n in
  let improved = ref true in
  while !improved do
    improved := false;
    (try
       for nd_in = 0 to n - 1 do
         if chosen.(nd_in) then begin
           remove_node st nd_in;
           chosen.(nd_in) <- false;
           (* First-improvement swap search. *)
           let found = ref (-1) and found_gain = ref 0 in
           for nd_out = 0 to n - 1 do
             if (not chosen.(nd_out)) && nd_out <> nd_in then begin
               let newly, _ = marginal st nd_out in
               if newly > !found_gain then begin
                 found := nd_out;
                 found_gain := newly
               end
             end
           done;
           (* Putting nd_in back yields damage gain (its own marginal); a
              swap wins only if some other node strictly beats it. *)
           let back_gain, _ = marginal st nd_in in
           if !found >= 0 && !found_gain > back_gain then begin
             chosen.(!found) <- true;
             add_node st !found;
             improved := true;
             raise Exit
           end
           else begin
             chosen.(nd_in) <- true;
             add_node st nd_in
           end
         end
       done
     with Exit -> ())
  done

let attack_of_state st chosen =
  let nodes = ref [] in
  Array.iteri (fun nd c -> if c then nodes := nd :: !nodes) chosen;
  {
    failed_nodes = Combin.Intset.of_array (Array.of_list !nodes);
    failed_objects = st.failed;
    exact = false;
  }

let local_search ~rng ?(restarts = 8) layout ~s ~k =
  let n = layout.Layout.n in
  let best = ref None in
  let consider a =
    match !best with
    | Some b when b.failed_objects >= a.failed_objects -> ()
    | _ -> best := Some a
  in
  for restart = 0 to restarts - 1 do
    let st = make_state layout ~s in
    let chosen = Array.make n false in
    if restart = 0 then begin
      let g = greedy layout ~s ~k in
      Array.iter
        (fun nd ->
          chosen.(nd) <- true;
          add_node st nd)
        g.failed_nodes
    end
    else
      Array.iter
        (fun nd ->
          chosen.(nd) <- true;
          add_node st nd)
        (Combin.Rng.sample_distinct rng ~n ~k);
    improve_to_local_opt layout st chosen;
    consider (attack_of_state st chosen)
  done;
  Option.get !best

let best ?rng ?(exact_limit = 5e7) layout ~s ~k =
  let rng = match rng with Some r -> r | None -> Combin.Rng.create 0xADE5 in
  let n = layout.Layout.n in
  let combos =
    match Combin.Binomial.exact_opt n k with
    | Some c -> float_of_int c
    | None -> infinity
  in
  (* Estimated work: search-tree leaves times per-node update cost (the
     average number of objects per node). *)
  let avg_degree =
    float_of_int (layout.Layout.r * Layout.b layout) /. float_of_int n
  in
  if combos *. avg_degree <= exact_limit then exact layout ~s ~k
  else local_search ~rng layout ~s ~k

let avail layout ~s:_ attack = Layout.b layout - attack.failed_objects
