(** Exhaustive search for the availability-optimal placement.

    Theorem 1 bounds every placement's availability in terms of a
    Simple(x, λ) placement's — but the optimal placement itself is never
    computed in the paper (the search space is astronomically large).
    For {e tiny} instances it is computable: availability depends only on
    the multiset of replica sets, so we enumerate nondecreasing sequences
    of r-subset indices and evaluate each candidate with the exhaustive
    adversary.  The test suite uses this to validate Theorem 1's
    inequality [Avail(π') < c·Avail(π) + α] against the true optimum, and
    to measure how far Combo's lower bound sits from optimal. *)

exception Too_large
(** Raised when the estimated search cost exceeds the budget. *)

val search_cost : n:int -> r:int -> k:int -> b:int -> float
(** Estimated number of elementary steps:
    C(C(n,r)+b-1, b) · C(n,k) · b. *)

val best :
  ?budget:float -> n:int -> r:int -> s:int -> k:int -> b:int -> unit ->
  int * Layout.t
(** [(avail, layout)] with [avail = Avail(layout)] maximal over all
    placements of [b] objects.  [budget] (default 5e8) caps
    {!search_cost}.  @raise Too_large when over budget. *)
