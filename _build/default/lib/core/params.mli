(** System parameters, following the paper's notation (Fig. 1):

    - [b]: number of objects
    - [r]: replicas per object
    - [s]: number of an object's replica failures that fail the object,
      with [1 <= s <= r]
    - [n]: number of nodes
    - [k]: number of failed nodes, with [s <= k < n] *)

type t = { b : int; r : int; s : int; n : int; k : int }

val make : b:int -> r:int -> s:int -> n:int -> k:int -> t
(** @raise Invalid_argument if the Fig. 1 constraints are violated. *)

val validate : t -> (t, string) result

val average_load : t -> float
(** ℓ = r·b / n, the load-balance target of Definition 4. *)

val load_cap : t -> int
(** ⌈r·b / n⌉ — the per-node replica cap enforced by the Random
    placement strategy (the smallest integral cap admitting b objects). *)

val pp : Format.formatter -> t -> unit
