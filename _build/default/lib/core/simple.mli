(** Simple(x, λ) placements (Definition 2).

    Object replicas are placed on blocks of an (x+1)-(nx, r, μ) design,
    copied ⌈b / capacity⌉ times so that the achieved λ is minimal per
    Eqn. 1 — no (x+1)-subset of nodes hosts more than λ objects in
    common. *)

type t = {
  layout : Layout.t;
  x : int;
  nx : int;  (** nodes actually carrying replicas (≤ layout.n) *)
  mu : int;
  lambda : int;  (** achieved λ, the minimal multiple of μ fitting b *)
}

val of_design : ?spread:bool -> Designs.Block_design.t -> n:int -> b:int -> t
(** [of_design d ~n ~b] places b objects on the blocks of [d] (strength
    x+1, v = nx ≤ n, λ = μ), cycling through copies of the design.
    [spread] (default false, the paper's construction) rotates each copy
    to a different slice of the node ring: the achieved λ is identical —
    overlap counts of unioned Simple(x, μ) placements add — but load
    reaches all n nodes instead of only nx (Observation 2).
    @raise Invalid_argument if [b < 1] or [d.v > n]. *)

val of_blocks_seq :
  x:int -> v:int -> r:int -> capacity:int -> n:int -> b:int ->
  int array Seq.t -> t
(** Build from a lazy stream of distinct blocks forming an
    (x+1)-(v, r, 1) packing of capacity [capacity] (e.g. all r-subsets
    when x+1 = r); takes min b capacity blocks and copies the stream as
    needed for larger b. *)

val of_entry : ?spread:bool -> Designs.Registry.entry -> n:int -> b:int -> t
(** Build from a registry entry; materializes the design, except for
    complete (t = r) entries which stream lazily.
    @raise Invalid_argument on a literature-only entry. *)

val lower_bound : t -> k:int -> s:int -> int
(** Lemma 2 applied to this placement: max 0 (lbAvail_si). *)
