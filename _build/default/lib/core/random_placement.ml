let deal ~rng (p : Params.t) slots =
  (* Deal r consecutive slots per object; on a duplicate inside an
     object's hand, swap the offending slot with a random later slot that
     keeps both hands duplicate-free.  Returns None if a repair fails
     (then the caller reshuffles and retries). *)
  let total = Array.length slots in
  Combin.Rng.shuffle rng slots;
  let ok = ref true in
  (try
     for obj = 0 to p.b - 1 do
       let base = obj * p.r in
       for i = 0 to p.r - 1 do
         let dup =
           let rec check j = j < i && (slots.(base + j) = slots.(base + i) || check (j + 1)) in
           check 0
         in
         if dup then begin
           (* Find a later slot compatible with this hand. *)
           let rec try_swap attempts =
             if attempts = 0 then false
             else begin
               let j = base + p.r + Combin.Rng.int rng (max 1 (total - base - p.r)) in
               if j >= total then try_swap (attempts - 1)
               else begin
                 let cand = slots.(j) in
                 let conflict =
                   let rec check l = l < p.r && l <> i && (slots.(base + l) = cand || check (l + 1)) in
                   check 0
                 in
                 if conflict || cand = slots.(base + i) then try_swap (attempts - 1)
                 else begin
                   slots.(j) <- slots.(base + i);
                   slots.(base + i) <- cand;
                   true
                 end
               end
             end
           in
           if base + p.r >= total then begin
             ok := false;
             raise Exit
           end
           else if not (try_swap 64) then begin
             ok := false;
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  if !ok then begin
    let replicas =
      Array.init p.b (fun obj ->
          let hand = Array.sub slots (obj * p.r) p.r in
          Array.sort compare hand;
          hand)
    in
    Some (Layout.make ~n:p.n ~r:p.r replicas)
  end
  else None

(* Fallback dealer for extreme r/n ratios where shuffle-and-repair keeps
   failing: deal objects one at a time.  Feasibility invariant: the
   remaining slots of every node must not exceed the number of objects
   still to deal (each future object uses a node at most once), so any
   node at the limit is FORCED into the current hand; the rest of the
   hand is sampled without replacement weighted by remaining capacity.
   The invariant is maintained by construction, so this always
   completes. *)
let deal_forced ~rng (p : Params.t) remaining =
  let replicas = Array.make p.b [||] in
  for obj = 0 to p.b - 1 do
    let objects_left = p.b - obj in
    let hand = ref [] and hand_size = ref 0 in
    (* Forced nodes: remaining capacity equals the objects left. *)
    Array.iteri
      (fun nd rem ->
        if rem >= objects_left then begin
          hand := nd :: !hand;
          incr hand_size
        end)
      remaining;
    if !hand_size > p.r then
      failwith "Random_placement.deal_forced: infeasible caps";
    (* Fill the rest by weighted sampling without replacement. *)
    let weights =
      Array.mapi
        (fun nd rem ->
          if List.mem nd !hand then 0.0 else float_of_int (max 0 rem))
        remaining
    in
    while !hand_size < p.r do
      let nd = Combin.Rng.choose_weighted rng weights in
      weights.(nd) <- 0.0;
      hand := nd :: !hand;
      incr hand_size
    done;
    let hand = Combin.Intset.of_array (Array.of_list !hand) in
    Array.iter (fun nd -> remaining.(nd) <- remaining.(nd) - 1) hand;
    replicas.(obj) <- hand
  done;
  Layout.make ~n:p.n ~r:p.r replicas

let place ~rng (p : Params.t) =
  if p.r > p.n then invalid_arg "Random_placement.place: r > n";
  (* Slot multiset: node i gets floor(rb/n) slots plus one of the
     remainder, so per-node load is exactly the ⌈ℓ⌉ cap or one below. *)
  let total = p.r * p.b in
  let base = total / p.n and extra = total mod p.n in
  (* The nodes receiving the ⌈ℓ⌉-th slot are themselves chosen at
     random, so no node id is structurally favoured. *)
  let extra_nodes = Combin.Rng.sample_distinct rng ~n:p.n ~k:extra in
  let slots = Array.make total 0 in
  let pos = ref 0 in
  for nd = 0 to p.n - 1 do
    let cnt = base + if Combin.Intset.mem extra_nodes nd then 1 else 0 in
    for _ = 1 to cnt do
      slots.(!pos) <- nd;
      incr pos
    done
  done;
  let rec attempt tries =
    if tries = 0 then begin
      (* Shuffle-and-repair keeps colliding (r close to n): fall back to
         the always-feasible forced dealer with the same caps. *)
      let remaining = Array.make p.n 0 in
      Array.iter (fun nd -> remaining.(nd) <- remaining.(nd) + 1) slots;
      deal_forced ~rng p remaining
    end
    else
      match deal ~rng p slots with
      | Some layout -> layout
      | None -> attempt (tries - 1)
  in
  attempt 16

let place_unconstrained ~rng (p : Params.t) =
  if p.r > p.n then invalid_arg "Random_placement.place_unconstrained: r > n";
  let replicas =
    Array.init p.b (fun _ -> Combin.Rng.sample_distinct rng ~n:p.n ~k:p.r)
  in
  Layout.make ~n:p.n ~r:p.r replicas
