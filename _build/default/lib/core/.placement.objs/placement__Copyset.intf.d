lib/core/copyset.mli: Combin Layout
