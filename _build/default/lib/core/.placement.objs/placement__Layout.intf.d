lib/core/layout.mli:
