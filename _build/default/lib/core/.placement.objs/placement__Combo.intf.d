lib/core/combo.mli: Designs Layout Params
