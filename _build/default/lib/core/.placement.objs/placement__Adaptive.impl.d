lib/core/adaptive.ml: Array Combin Combo Designs Hashtbl Layout List Option Params Seq
