lib/core/optimal.ml: Array Combin Layout List
