lib/core/adversary.ml: Array Combin Layout Option
