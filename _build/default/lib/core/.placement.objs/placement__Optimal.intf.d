lib/core/optimal.mli: Layout
