lib/core/copyset.ml: Array Combin Hashtbl Layout Option
