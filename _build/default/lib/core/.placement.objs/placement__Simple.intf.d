lib/core/simple.mli: Designs Layout Seq
