lib/core/adaptive.mli: Combo Layout
