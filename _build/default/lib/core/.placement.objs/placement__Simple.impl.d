lib/core/simple.ml: Analysis Array Designs Layout Seq
