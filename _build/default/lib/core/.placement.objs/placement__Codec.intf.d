lib/core/codec.mli: Layout
