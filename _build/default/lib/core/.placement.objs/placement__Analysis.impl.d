lib/core/analysis.ml: Combin
