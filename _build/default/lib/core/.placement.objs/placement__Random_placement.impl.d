lib/core/random_placement.ml: Array Combin Layout List Params
