lib/core/random_placement.mli: Combin Layout Params
