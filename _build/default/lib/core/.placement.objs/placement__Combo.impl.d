lib/core/combo.ml: Array Combin Designs Layout Params Simple
