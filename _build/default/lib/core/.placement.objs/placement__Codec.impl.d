lib/core/codec.ml: Array Buffer Combin Fun Layout List Printf Result String
