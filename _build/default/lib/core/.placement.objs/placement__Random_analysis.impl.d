lib/core/random_analysis.ml: Array Combin Params
