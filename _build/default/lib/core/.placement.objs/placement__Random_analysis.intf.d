lib/core/random_analysis.mli: Params
