lib/core/analysis.mli:
