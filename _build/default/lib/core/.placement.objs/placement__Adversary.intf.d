lib/core/adversary.mli: Combin Layout
