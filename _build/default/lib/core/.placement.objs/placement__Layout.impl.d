lib/core/layout.ml: Array Combin List
