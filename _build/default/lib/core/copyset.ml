type t = {
  copysets : int array array;
  permutations : int;
  r : int;
  n : int;
}

let generate ~rng ~n ~r ~scatter_width =
  if r > n then invalid_arg "Copyset.generate: r > n";
  if scatter_width < r - 1 then
    invalid_arg "Copyset.generate: scatter_width < r - 1";
  let permutations = (scatter_width + r - 2) / (r - 1) in
  let copysets = ref [] in
  for _ = 1 to permutations do
    let perm = Array.init n (fun i -> i) in
    Combin.Rng.shuffle rng perm;
    for c = 0 to (n / r) - 1 do
      let cs = Array.sub perm (c * r) r in
      Array.sort compare cs;
      copysets := cs :: !copysets
    done
  done;
  { copysets = Array.of_list !copysets; permutations; r; n }

let scatter_widths t =
  let neighbours = Array.make t.n [] in
  Array.iter
    (fun cs ->
      Array.iter
        (fun nd ->
          Array.iter
            (fun other -> if other <> nd then neighbours.(nd) <- other :: neighbours.(nd))
            cs)
        cs)
    t.copysets;
  Array.map
    (fun l -> Array.length (Combin.Intset.of_array (Array.of_list l)))
    neighbours

let place ~rng t ~b =
  let ncs = Array.length t.copysets in
  if ncs = 0 then invalid_arg "Copyset.place: no copysets";
  let replicas =
    Array.init b (fun _ -> Array.copy t.copysets.(Combin.Rng.int rng ncs))
  in
  Layout.make ~n:t.n ~r:t.r replicas

let effective_lambda t layout =
  let counts = Hashtbl.create (Array.length t.copysets) in
  Array.iter
    (fun rep ->
      let key = Array.to_list rep in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    layout.Layout.replicas;
  Hashtbl.fold (fun _ c acc -> max acc c) counts 0
