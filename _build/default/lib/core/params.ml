type t = { b : int; r : int; s : int; n : int; k : int }

let validate t =
  if t.b < 1 then Error "b must be >= 1"
  else if t.r < 1 then Error "r must be >= 1"
  else if t.s < 1 || t.s > t.r then Error "s must satisfy 1 <= s <= r"
  else if t.n < t.r then Error "n must be >= r (replicas on distinct nodes)"
  else if t.k < t.s || t.k >= t.n then Error "k must satisfy s <= k < n"
  else Ok t

let make ~b ~r ~s ~n ~k =
  match validate { b; r; s; n; k } with
  | Ok t -> t
  | Error msg -> invalid_arg ("Params.make: " ^ msg)

let average_load t = float_of_int (t.r * t.b) /. float_of_int t.n

let load_cap t = ((t.r * t.b) + t.n - 1) / t.n

let pp fmt t =
  Format.fprintf fmt "{b=%d; r=%d; s=%d; n=%d; k=%d}" t.b t.r t.s t.n t.k
