(* Per-level state.  Blocks live in a growable pool: fixed designs are
   materialized up front; the complete (x = r-1) level appends fresh
   lexicographic r-subsets on demand.  [usage] counts live objects per
   block; [hist] is a histogram of usages so the maximum (and hence the
   effective λ) is maintained under both adds and removes. *)
type level_state = {
  spec : Combo.level;
  mutable blocks : int array array;  (* pool, grows for the lazy level *)
  mutable nblocks : int;
  mutable usage : int array;
  mutable hist : int array;  (* hist.(u) = #blocks with usage u, u >= 1 *)
  mutable max_usage : int;
  mutable live : int;  (* objects at this level *)
  mutable open_blocks : int list;  (* candidates with usage < max_usage *)
  fresh : (unit -> int array option) option;  (* lazy block source *)
}

type assignment = { level : int; block : int }

type t = {
  n : int;
  r : int;
  s : int;
  k : int;
  levels : level_state array;
  assignments : (int, assignment) Hashtbl.t;
  mutable next_id : int;
}

let grow_pool st block =
  if st.nblocks = Array.length st.blocks then begin
    let cap = max 8 (2 * Array.length st.blocks) in
    let blocks = Array.make cap [||] in
    Array.blit st.blocks 0 blocks 0 st.nblocks;
    let usage = Array.make cap 0 in
    Array.blit st.usage 0 usage 0 st.nblocks;
    st.blocks <- blocks;
    st.usage <- usage
  end;
  st.blocks.(st.nblocks) <- block;
  st.nblocks <- st.nblocks + 1;
  st.nblocks - 1

let hist_add st u =
  if u >= 1 then begin
    if u >= Array.length st.hist then begin
      let hist = Array.make (max 8 (2 * u)) 0 in
      Array.blit st.hist 0 hist 0 (Array.length st.hist);
      st.hist <- hist
    end;
    st.hist.(u) <- st.hist.(u) + 1;
    if u > st.max_usage then st.max_usage <- u
  end

let hist_remove st u =
  if u >= 1 then begin
    st.hist.(u) <- st.hist.(u) - 1;
    while st.max_usage >= 1 && st.hist.(st.max_usage) = 0 do
      st.max_usage <- st.max_usage - 1
    done
  end

let make_level ~n (spec : Combo.level) =
  let fixed_blocks, fresh =
    match spec.Combo.entry with
    | Some e when e.Designs.Registry.strength = e.Designs.Registry.block_size ->
        (* Complete level: stream r-subsets of the v points lazily. *)
        let source =
          ref (Designs.Trivial.subsets_seq ~v:e.Designs.Registry.v
                 ~r:e.Designs.Registry.block_size)
        in
        let next () =
          match Seq.uncons !source with
          | Some (blk, rest) ->
              source := rest;
              Some blk
          | None -> None
        in
        ([||], Some next)
    | Some e when Designs.Registry.is_materialized e ->
        ((Designs.Registry.materialize e).Designs.Block_design.blocks, None)
    | Some _ | None -> ([||], None)
  in
  ignore n;
  {
    spec;
    blocks = Array.map Array.copy fixed_blocks;
    nblocks = Array.length fixed_blocks;
    usage = Array.make (max 1 (Array.length fixed_blocks)) 0;
    hist = Array.make 4 0;
    max_usage = 0;
    live = 0;
    open_blocks = [];
    fresh;
  }

let usable st = st.nblocks > 0 || st.fresh <> None

let create ?levels ~n ~r ~s ~k () =
  let specs =
    match levels with
    | Some l -> l
    | None -> Combo.default_levels ~n ~r ~s ()
  in
  let levels = Array.map (make_level ~n) specs in
  if not (Array.exists usable levels) then
    invalid_arg "Adaptive.create: no materializable level";
  { n; r; s; k; levels; assignments = Hashtbl.create 256; next_id = 0 }

let n t = t.n
let r t = t.r
let s t = t.s
let size t = Hashtbl.length t.assignments

let effective_lambda st = st.spec.Combo.mu * st.max_usage

let lambdas t = Array.map effective_lambda t.levels

(* Find a block index with usage < max_usage (or any block when
   max_usage = 0); None if the level is saturated at the current λ and
   cannot produce a fresh block. *)
let rec pop_open st =
  match st.open_blocks with
  | i :: rest ->
      st.open_blocks <- rest;
      if st.usage.(i) < st.max_usage then Some i else pop_open st
  | [] -> None

let find_slot st =
  if st.max_usage = 0 then begin
    (* Everything is empty; take block 0 or a fresh one. *)
    if st.nblocks > 0 then Some 0
    else
      match st.fresh with
      | Some next -> Option.map (fun blk -> grow_pool st blk) (next ())
      | None -> None
  end
  else
    match pop_open st with
    | Some i -> Some i
    | None ->
        (* No tracked open block: try a fresh lazy block (usage 0 < max),
           else a linear rescan (open_blocks may have gone stale), else
           report saturation. *)
        (match st.fresh with
        | Some next -> (
            match next () with
            | Some blk -> Some (grow_pool st blk)
            | None -> None)
        | None -> None)
        |> function
        | Some i -> Some i
        | None ->
            let found = ref None in
            (try
               for i = 0 to st.nblocks - 1 do
                 if st.usage.(i) < st.max_usage then begin
                   found := Some i;
                   raise Exit
                 end
               done
             with Exit -> ());
            (match !found with
            | Some _ as r -> r
            | None ->
                (* Level saturated at the current λ: growing λ by μ means
                   any block will do. *)
                if st.nblocks > 0 then Some 0 else None)

(* Marginal increase of the total loss bound if one object lands on level
   x.  λ grows by μ only when the level has no open slot. *)
let loss_term t (st : level_state) lambda =
  lambda
  * Combin.Binomial.exact t.k (st.spec.Combo.x + 1)
  / Combin.Binomial.exact t.s (st.spec.Combo.x + 1)

(* Routing rule.  Placing on a level with a free slot (some block below
   the current maximum usage, or a fresh lazy block) costs nothing NOW;
   otherwise λ must grow by μ.  A myopic Δ-loss comparison is a trap —
   it keeps feeding the cheap-per-bump but tiny-capacity x = 0 level —
   so bumps are compared by {e amortized} rate: loss added per λ-bump
   divided by the capacity a bump buys (exactly the quantity the offline
   DP trades on).  Levels with free slots win outright, lowest rate
   first, so slack in good levels is consumed before anyone bumps. *)
let routing_key t st =
  if not (usable st) then None
  else begin
    (* hist.(max_usage) counts the blocks sitting at the maximum; the
       level has a free slot unless every block is there and no fresh
       block (usage 0) can be generated. *)
    let saturated =
      st.max_usage = 0
      || (Option.is_none st.fresh && st.nblocks = st.hist.(st.max_usage))
    in
    let needs_bump = if saturated then 1 else 0 in
    let cap_mu =
      if st.spec.Combo.cap_mu > 0 then st.spec.Combo.cap_mu
      else max 1 st.nblocks
    in
    let rate =
      float_of_int (loss_term t st st.spec.Combo.mu) /. float_of_int cap_mu
    in
    Some (needs_bump, rate, st.live)
  end

let add t =
  let best = ref None in
  Array.iteri
    (fun x st ->
      match routing_key t st with
      | None -> ()
      | Some key -> (
          match !best with
          | Some (key', _) when key' <= key -> ()
          | _ -> best := Some (key, x)))
    t.levels;
  match !best with
  | None -> invalid_arg "Adaptive.add: no usable level"
  | Some (_, x) ->
      let st = t.levels.(x) in
      let block =
        match find_slot st with
        | Some i -> i
        | None -> failwith "Adaptive.add: level reported usable but has no slot"
      in
      let old = st.usage.(block) in
      st.usage.(block) <- old + 1;
      hist_remove st old;
      hist_add st (old + 1);
      if st.usage.(block) < st.max_usage then
        st.open_blocks <- block :: st.open_blocks;
      st.live <- st.live + 1;
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.assignments id { level = x; block };
      id

let add_many t count = List.init count (fun _ -> add t)

let remove t id =
  match Hashtbl.find_opt t.assignments id with
  | None -> raise Not_found
  | Some { level; block } ->
      let st = t.levels.(level) in
      let old = st.usage.(block) in
      st.usage.(block) <- old - 1;
      hist_remove st old;
      hist_add st (old - 1);
      if st.usage.(block) < st.max_usage then
        st.open_blocks <- block :: st.open_blocks;
      st.live <- st.live - 1;
      Hashtbl.remove t.assignments id

let assignment t id =
  match Hashtbl.find_opt t.assignments id with
  | None -> raise Not_found
  | Some a -> a

let replica_set t id =
  let a = assignment t id in
  Array.copy t.levels.(a.level).blocks.(a.block)

let level_of t id = (assignment t id).level

let lower_bound ?k t =
  let k = Option.value ~default:t.k k in
  let loss = ref 0 in
  Array.iter
    (fun st ->
      let lambda = effective_lambda st in
      if lambda > 0 then
        loss :=
          !loss
          + lambda
            * Combin.Binomial.exact k (st.spec.Combo.x + 1)
            / Combin.Binomial.exact t.s (st.spec.Combo.x + 1))
    t.levels;
  max 0 (size t - !loss)

let optimal_bound ?k t =
  let k = Option.value ~default:t.k k in
  let b = size t in
  if b = 0 then 0
  else begin
    let specs = Array.map (fun st -> st.spec) t.levels in
    let p = Params.make ~b ~r:t.r ~s:t.s ~n:t.n ~k in
    (Combo.optimize ~levels:specs p).Combo.lb
  end

let layout t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.assignments [] in
  let ids = List.sort compare ids in
  let replicas = Array.of_list (List.map (fun id -> replica_set t id) ids) in
  Layout.make ~n:t.n ~r:t.r replicas

let check_invariants t =
  let ensure cond msg = if not cond then failwith ("Adaptive invariant: " ^ msg) in
  (* Recount usage from assignments. *)
  let recount = Array.map (fun st -> Array.make (max 1 st.nblocks) 0) t.levels in
  Hashtbl.iter
    (fun _ { level; block } ->
      recount.(level).(block) <- recount.(level).(block) + 1)
    t.assignments;
  Array.iteri
    (fun x st ->
      let live = ref 0 and maxu = ref 0 in
      for i = 0 to st.nblocks - 1 do
        ensure (st.usage.(i) = recount.(x).(i)) "usage mismatch";
        live := !live + st.usage.(i);
        if st.usage.(i) > !maxu then maxu := st.usage.(i)
      done;
      ensure (st.live = !live) "live count mismatch";
      ensure (st.max_usage = !maxu) "max usage mismatch")
    t.levels;
  (* The layout must satisfy Definition 2 per level at the effective λ:
     spot-checked via the per-level usage bound already; full check left
     to the test suite on small instances. *)
  ()
