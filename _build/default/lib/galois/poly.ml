open Ftype

let normalize a =
  let d = ref (Array.length a - 1) in
  while !d >= 0 && a.(!d) = 0 do
    decr d
  done;
  if !d = Array.length a - 1 then a else Array.sub a 0 (!d + 1)

let degree a = Array.length (normalize a) - 1

let equal a b =
  let a = normalize a and b = normalize b in
  a = b

let add f a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  normalize
    (Array.init n (fun i ->
         let x = if i < la then a.(i) else 0 in
         let y = if i < lb then b.(i) else 0 in
         f.add x y))

let sub f a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  normalize
    (Array.init n (fun i ->
         let x = if i < la then a.(i) else 0 in
         let y = if i < lb then b.(i) else 0 in
         f.sub x y))

let scale f c a =
  if c = 0 then [||] else normalize (Array.map (fun x -> f.mul c x) a)

let mul f a b =
  let a = normalize a and b = normalize b in
  if a = [||] || b = [||] then [||]
  else begin
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (la + lb - 1) 0 in
    for i = 0 to la - 1 do
      if a.(i) <> 0 then
        for j = 0 to lb - 1 do
          out.(i + j) <- f.add out.(i + j) (f.mul a.(i) b.(j))
        done
    done;
    normalize out
  end

let divmod f a b =
  let b = normalize b in
  if b = [||] then raise Division_by_zero;
  let db = Array.length b - 1 in
  let lead_inv = f.inv b.(db) in
  let r = Array.copy (normalize a) in
  let da = Array.length r - 1 in
  if da < db then ([||], normalize r)
  else begin
    let q = Array.make (da - db + 1) 0 in
    for i = da - db downto 0 do
      let coeff = f.mul r.(i + db) lead_inv in
      q.(i) <- coeff;
      if coeff <> 0 then
        for j = 0 to db do
          r.(i + j) <- f.sub r.(i + j) (f.mul coeff b.(j))
        done
    done;
    (normalize q, normalize r)
  end

let rem f a b = snd (divmod f a b)

let eval f a x =
  let acc = ref 0 in
  for i = Array.length a - 1 downto 0 do
    acc := f.add (f.mul !acc x) a.(i)
  done;
  !acc

let is_monic _f a =
  let a = normalize a in
  Array.length a > 0 && a.(Array.length a - 1) = 1

(* Enumerate monic polynomials of degree exactly [d] as x^d plus a lower
   part whose coefficients are the base-q digits of an index. *)
let monic_of_index f d idx =
  let p = Array.make (d + 1) 0 in
  p.(d) <- 1;
  let rest = ref idx in
  for i = 0 to d - 1 do
    p.(i) <- !rest mod f.order;
    rest := !rest / f.order
  done;
  p

let count_monics f d =
  let c = ref 1 in
  for _ = 1 to d do
    c := !c * f.order
  done;
  !c

let is_irreducible f a =
  let a = normalize a in
  let d = Array.length a - 1 in
  if d <= 0 then false
  else if d = 1 then true
  else begin
    (* A reducible polynomial of degree d has a monic factor of degree
       between 1 and d/2; trial-divide by all of them. *)
    let reducible = ref false in
    (try
       for fd = 1 to d / 2 do
         for idx = 0 to count_monics f fd - 1 do
           let cand = monic_of_index f fd idx in
           if rem f a cand = [||] then begin
             reducible := true;
             raise Exit
           end
         done
       done
     with Exit -> ());
    not !reducible
  end

let find_irreducible f d =
  if d < 1 then invalid_arg "Poly.find_irreducible: degree < 1";
  let total = count_monics f d in
  let rec go idx =
    if idx >= total then failwith "Poly.find_irreducible: none found"
    else begin
      let cand = monic_of_index f d idx in
      if is_irreducible f cand then cand else go (idx + 1)
    end
  in
  go 0

let pp _f fmt a =
  let a = normalize a in
  if a = [||] then Format.fprintf fmt "0"
  else begin
    let first = ref true in
    for i = Array.length a - 1 downto 0 do
      if a.(i) <> 0 then begin
        if not !first then Format.fprintf fmt " + ";
        first := false;
        match i with
        | 0 -> Format.fprintf fmt "%d" a.(i)
        | 1 -> Format.fprintf fmt "%d·x" a.(i)
        | _ -> Format.fprintf fmt "%d·x^%d" a.(i) i
      end
    done
  end
