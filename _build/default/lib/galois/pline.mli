(** The projective line PG(1, F) = F ∪ {∞} and its Möbius transformations.

    The spherical (Möbius) 3-designs 3-(q^d+1, q+1, 1) used for the paper's
    r = 5, x = 2 parameter rows (e.g. nx = 65, 257 in Fig. 4) have point set
    PG(1, GF(q^d)) and blocks the images of PG(1, GF(q)) under fractional
    linear maps; this module supplies the point encoding and the map
    algebra.

    A point is an int: field codes [0 .. order-1] are the affine points and
    [order] is ∞. *)

type point = int

val infinity : Field.t -> point
val is_infinity : Field.t -> point -> bool
val all_points : Field.t -> point array
(** [0; 1; ...; order-1; ∞] — [order+1] points. *)

type map = { a : int; b : int; c : int; d : int }
(** The fractional linear map z ↦ (az + b) / (cz + d); must satisfy
    ad − bc ≠ 0. *)

val identity : map

val is_valid : Field.t -> map -> bool
(** Determinant check. *)

val apply : Field.t -> map -> point -> point

val compose : Field.t -> map -> map -> map
(** [compose f m1 m2] applies [m2] first: [apply (compose m1 m2) z =
    apply m1 (apply m2 z)]. *)

val inverse : Field.t -> map -> map

val to_zero_one_inf : Field.t -> point -> point -> point -> map
(** [to_zero_one_inf f p1 p2 p3] is the unique Möbius map sending
    [p1 ↦ 0], [p2 ↦ 1], [p3 ↦ ∞] (the cross-ratio map).
    @raise Invalid_argument if the points are not pairwise distinct. *)

val from_zero_one_inf : Field.t -> point -> point -> point -> map
(** Inverse of {!to_zero_one_inf}: sends [0 ↦ p1], [1 ↦ p2], [∞ ↦ p3]. *)
