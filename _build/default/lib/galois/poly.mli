(** Univariate polynomial arithmetic over a finite field.

    A polynomial is an int array of element codes, coefficient of [x^i] at
    index [i], with no trailing zero coefficients (the zero polynomial is
    [[||]]).  This module underpins the construction of extension fields
    ({!Field.extend} searches for an irreducible modulus here) and is
    exercised directly by the test suite's algebra properties. *)

open Ftype

val normalize : int array -> int array
(** Strip trailing zeros. *)

val degree : int array -> int
(** Degree, with [degree [||] = -1]. *)

val equal : int array -> int array -> bool

val add : field -> int array -> int array -> int array
val sub : field -> int array -> int array -> int array
val scale : field -> int -> int array -> int array
val mul : field -> int array -> int array -> int array

val divmod : field -> int array -> int array -> int array * int array
(** [divmod f a b] is [(q, r)] with [a = q*b + r] and [degree r < degree b].
    @raise Division_by_zero if [b] is the zero polynomial. *)

val rem : field -> int array -> int array -> int array

val eval : field -> int array -> int -> int
(** Horner evaluation. *)

val is_monic : field -> int array -> bool

val is_irreducible : field -> int array -> bool
(** Trial division by all monic polynomials of degree [1 .. degree/2].
    Intended for the small degrees used in field construction. *)

val find_irreducible : field -> int -> int array
(** [find_irreducible f d] is a monic irreducible polynomial of degree
    [d >= 1] over [f], found by exhaustive search in code order (hence
    deterministic). *)

val pp : field -> Format.formatter -> int array -> unit
