(** Finite-field construction.

    Fields are first-class values (see {!Ftype.field}); elements are int
    codes in [0 .. order-1] with [0] and [1] the additive and
    multiplicative identities.  The design constructions use:

    - [prime p] for AG/PG over GF(p) (e.g. AG(2,5) giving the 2-(25,5,1)
      design of Fig. 4);
    - [gf p k] for prime-power orders (e.g. PG(2,4) over GF(4));
    - [extend base d] for towers such as GF(4) ⊂ GF(4^d), which drive the
      spherical 3-(q^d+1, q+1, 1) designs: the base-field codes are exactly
      the extension codes [< base.order], so the distinguished block
      GF(q) ∪ {{∞}} is directly expressible. *)

type t = Ftype.field = {
  order : int;
  char : int;
  degree : int;
  add : int -> int -> int;
  sub : int -> int -> int;
  neg : int -> int;
  mul : int -> int -> int;
  inv : int -> int;
  pow : int -> int -> int;
  primitive : int;
}

val is_prime : int -> bool

val is_prime_power : int -> (int * int) option
(** [is_prime_power q] is [Some (p, k)] with [q = p^k], or [None]. *)

val prime : int -> t
(** [prime p] is GF(p).
    @raise Invalid_argument if [p] is not prime. *)

val extend : t -> int -> t
(** [extend base d] is GF(base.order^d), represented over [base] with a
    deterministically chosen irreducible modulus.  Codes [< base.order]
    are the embedded base-field elements.  [extend base 1] returns a field
    equal to [base] in behaviour.
    @raise Invalid_argument if [d < 1] or the order overflows. *)

val gf : int -> int -> t
(** [gf p k] is GF(p^k) built directly over the prime field. *)

val of_order : int -> t
(** [of_order q] is GF(q) for a prime power [q].
    @raise Invalid_argument otherwise. *)

val elements : t -> int list
(** All element codes, [0 .. order-1]. *)

val frobenius : t -> int -> int -> int
(** [frobenius f j a = a^(char^j)], the [j]-th Frobenius power; used by the
    Hermitian-unital construction ([x -> x^q] in GF(q^2)). *)

val element_order : t -> int -> int
(** Multiplicative order of a nonzero element. *)

val check_axioms : t -> unit
(** Exhaustively verify the field axioms (associativity, distributivity,
    inverses) for fields of order <= 64; sampled verification above.
    @raise Failure on violation.  Test-suite helper. *)
