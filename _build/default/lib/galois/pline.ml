type point = int

let infinity (f : Field.t) = f.order
let is_infinity (f : Field.t) p = p = f.order
let all_points (f : Field.t) = Array.init (f.order + 1) (fun i -> i)

type map = { a : int; b : int; c : int; d : int }

let identity = { a = 1; b = 0; c = 0; d = 1 }

let det (f : Field.t) m = f.sub (f.mul m.a m.d) (f.mul m.b m.c)
let is_valid f m = det f m <> 0

let apply (f : Field.t) m z =
  if is_infinity f z then if m.c = 0 then infinity f else f.mul m.a (f.inv m.c)
  else begin
    let num = f.add (f.mul m.a z) m.b in
    let den = f.add (f.mul m.c z) m.d in
    if den = 0 then infinity f else f.mul num (f.inv den)
  end

let compose (f : Field.t) m1 m2 =
  {
    a = f.add (f.mul m1.a m2.a) (f.mul m1.b m2.c);
    b = f.add (f.mul m1.a m2.b) (f.mul m1.b m2.d);
    c = f.add (f.mul m1.c m2.a) (f.mul m1.d m2.c);
    d = f.add (f.mul m1.c m2.b) (f.mul m1.d m2.d);
  }

let inverse (f : Field.t) m =
  if not (is_valid f m) then invalid_arg "Pline.inverse: singular map";
  (* The adjugate is a scalar multiple of the inverse, which is the same
     projective map. *)
  { a = m.d; b = f.neg m.b; c = f.neg m.c; d = m.a }

let to_zero_one_inf (f : Field.t) p1 p2 p3 =
  if p1 = p2 || p1 = p3 || p2 = p3 then
    invalid_arg "Pline.to_zero_one_inf: points not distinct";
  let inf = infinity f in
  let m =
    if p1 = inf then
      (* z ↦ (p2 − p3) / (z − p3) *)
      { a = 0; b = f.sub p2 p3; c = 1; d = f.neg p3 }
    else if p2 = inf then
      (* z ↦ (z − p1) / (z − p3) *)
      { a = 1; b = f.neg p1; c = 1; d = f.neg p3 }
    else if p3 = inf then
      (* z ↦ (z − p1) / (p2 − p1) *)
      { a = 1; b = f.neg p1; c = 0; d = f.sub p2 p1 }
    else begin
      (* Cross ratio: z ↦ (z − p1)(p2 − p3) / ((z − p3)(p2 − p1)) *)
      let u = f.sub p2 p3 and v = f.sub p2 p1 in
      { a = u; b = f.neg (f.mul p1 u); c = v; d = f.neg (f.mul p3 v) }
    end
  in
  assert (is_valid f m);
  m

let from_zero_one_inf f p1 p2 p3 = inverse f (to_zero_one_inf f p1 p2 p3)
