type t = Ftype.field = {
  order : int;
  char : int;
  degree : int;
  add : int -> int -> int;
  sub : int -> int -> int;
  neg : int -> int;
  mul : int -> int -> int;
  inv : int -> int;
  pow : int -> int -> int;
  primitive : int;
}

let is_prime p =
  if p < 2 then false
  else begin
    let rec go d = d * d > p || (p mod d <> 0 && go (d + 1)) in
    go 2
  end

let is_prime_power q =
  if q < 2 then None
  else begin
    (* The smallest prime factor of a prime power is its characteristic. *)
    let rec smallest d = if d * d > q then q else if q mod d = 0 then d else smallest (d + 1) in
    let p = smallest 2 in
    let rec strip acc k = if acc = 1 then Some (p, k) else if acc mod p = 0 then strip (acc / p) (k + 1) else None in
    strip q 0
  end

(* Upper bound on the orders for which we precompute log/antilog tables;
   every field this library constructs in practice is far below it. *)
let table_threshold = 1 lsl 20

(* Build the public field record from raw ring operations, discovering a
   primitive element and discrete-log tables for fast mul/inv/pow. *)
let of_raw ~order ~char ~degree ~add ~neg ~mul_raw =
  let sub a b = add a (neg b) in
  if order > table_threshold then begin
    (* Fallback without tables: inversion by Fermat (a^(q-2)). *)
    let rec pow_raw a e = if e = 0 then 1 else begin
        let h = pow_raw a (e / 2) in
        let h2 = mul_raw h h in
        if e land 1 = 1 then mul_raw h2 a else h2
      end
    in
    let inv a = if a = 0 then raise Division_by_zero else pow_raw a (order - 2) in
    (* Primitive element left unverified in the huge-field fallback. *)
    { order; char; degree; add; sub; neg; mul = mul_raw; inv; pow = pow_raw; primitive = (if order > 2 then 2 else 1) }
  end
  else begin
    let m = order - 1 in
    (* Find a generator: walk powers of g; g is primitive iff the walk
       first returns to 1 after exactly [m] steps. *)
    let antilog = Array.make (max m 1) 1 in
    let log = Array.make order (-1) in
    let try_generator g =
      if g = 0 then false
      else begin
        Array.fill log 0 order (-1);
        let ok = ref true in
        let x = ref 1 in
        (try
           for i = 0 to m - 1 do
             if log.(!x) >= 0 then begin
               ok := false;
               raise Exit
             end;
             antilog.(i) <- !x;
             log.(!x) <- i;
             x := mul_raw !x g
           done
         with Exit -> ());
        !ok && !x = 1
      end
    in
    let primitive =
      if m <= 1 then begin
        ignore (try_generator 1);
        1
      end
      else begin
        let rec search g =
          if g >= order then failwith "Field.of_raw: no primitive element (not a field?)"
          else if try_generator g then g
          else search (g + 1)
        in
        search 2
      end
    in
    let mul a b = if a = 0 || b = 0 then 0 else antilog.((log.(a) + log.(b)) mod m) in
    let inv a =
      if a = 0 then raise Division_by_zero
      else if m <= 1 then 1
      else antilog.((m - log.(a)) mod m)
    in
    let pow a e =
      (* [log a * e] is computed in Int64 to avoid overflow before the
         reduction mod m. *)
      if e < 0 then invalid_arg "Field.pow: negative exponent"
      else if e = 0 then 1
      else if a = 0 then 0
      else if m <= 1 then 1
      else begin
        let la = Int64.of_int log.(a) in
        let exp = Int64.to_int (Int64.rem (Int64.mul la (Int64.of_int e)) (Int64.of_int m)) in
        antilog.(exp)
      end
    in
    { order; char; degree; add; sub; neg; mul; inv; pow; primitive }
  end

let prime p =
  if not (is_prime p) then invalid_arg "Field.prime: not a prime";
  let add a b = (a + b) mod p in
  let neg a = if a = 0 then 0 else p - a in
  let mul_raw a b = a * b mod p in
  of_raw ~order:p ~char:p ~degree:1 ~add ~neg ~mul_raw

let extend base d =
  if d < 1 then invalid_arg "Field.extend: degree < 1";
  if d = 1 then base
  else begin
    let q = base.order in
    let order =
      let rec go acc i = if i = 0 then acc else begin
          if acc > max_int / q then invalid_arg "Field.extend: order overflow";
          go (acc * q) (i - 1)
        end
      in
      go 1 d
    in
    let modulus = Poly.find_irreducible base d in
    let decode code =
      let digits = Array.make d 0 in
      let rest = ref code in
      for i = 0 to d - 1 do
        digits.(i) <- !rest mod q;
        rest := !rest / q
      done;
      digits
    in
    let encode digits =
      (* digits may be shorter than d after normalization *)
      let acc = ref 0 in
      for i = Array.length digits - 1 downto 0 do
        acc := (!acc * q) + digits.(i)
      done;
      !acc
    in
    let add a b =
      let da = decode a and db = decode b in
      let out = Array.init d (fun i -> base.add da.(i) db.(i)) in
      encode out
    in
    let neg a =
      let da = decode a in
      encode (Array.map base.neg da)
    in
    let mul_raw a b =
      let pa = Poly.normalize (decode a) and pb = Poly.normalize (decode b) in
      let prod = Poly.mul base pa pb in
      encode (Poly.rem base prod modulus)
    in
    of_raw ~order ~char:base.char ~degree:(base.degree * d) ~add ~neg ~mul_raw
  end

let gf p k =
  let base = prime p in
  if k = 1 then base else extend base k

let of_order q =
  match is_prime_power q with
  | Some (p, k) -> gf p k
  | None -> invalid_arg "Field.of_order: not a prime power"

let elements f = List.init f.order (fun i -> i)

let frobenius f j a =
  let rec iterate x i = if i = 0 then x else iterate (f.pow x f.char) (i - 1) in
  iterate a j

let element_order f a =
  if a = 0 then invalid_arg "Field.element_order: zero";
  let rec go x k = if x = 1 then k else go (f.mul x a) (k + 1) in
  go a 1

let check_axioms f =
  let ensure cond msg = if not cond then failwith ("Field.check_axioms: " ^ msg) in
  let sample =
    if f.order <= 64 then elements f
    else begin
      let rng = Combin.Rng.create 42 in
      List.init 64 (fun _ -> Combin.Rng.int rng f.order)
    end
  in
  List.iter
    (fun a ->
      ensure (f.add a 0 = a) "additive identity";
      ensure (f.mul a 1 = a) "multiplicative identity";
      ensure (f.add a (f.neg a) = 0) "additive inverse";
      if a <> 0 then ensure (f.mul a (f.inv a) = 1) "multiplicative inverse";
      List.iter
        (fun b ->
          ensure (f.add a b = f.add b a) "commutative +";
          ensure (f.mul a b = f.mul b a) "commutative *";
          List.iter
            (fun c ->
              ensure (f.add (f.add a b) c = f.add a (f.add b c)) "associative +";
              ensure (f.mul (f.mul a b) c = f.mul a (f.mul b c)) "associative *";
              ensure (f.mul a (f.add b c) = f.add (f.mul a b) (f.mul a c)) "distributive")
            sample)
        sample)
    sample
