(* The value-level representation of a finite field.

   Elements are encoded as integers [0 .. order-1]:
   - for GF(p), an element is its canonical residue;
   - for GF(q^d) built over a base field of order q, an element is the
     base-q digit expansion of its coefficient vector, so the constant
     polynomials [0..q-1] are exactly the base-field elements.  In
     particular [zero = 0] and [one = 1] in every field, and a base field
     embeds into any of its extensions as the identity on codes.

   Keeping fields as first-class values (rather than functors) lets the
   design constructions pick field orders at runtime (registry lookups,
   parameter sweeps) without functor gymnastics. *)

type field = {
  order : int;  (* q = p^degree *)
  char : int;  (* p *)
  degree : int;  (* extension degree over the prime field *)
  add : int -> int -> int;
  sub : int -> int -> int;
  neg : int -> int;
  mul : int -> int -> int;
  inv : int -> int;  (* raises [Division_by_zero] on 0 *)
  pow : int -> int -> int;  (* non-negative exponents *)
  primitive : int;  (* a generator of the multiplicative group *)
}
