lib/galois/pline.mli: Field
