lib/galois/ftype.ml:
