lib/galois/pline.ml: Array Field
