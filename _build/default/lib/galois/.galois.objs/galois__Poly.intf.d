lib/galois/poly.mli: Format Ftype
