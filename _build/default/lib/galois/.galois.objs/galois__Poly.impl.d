lib/galois/poly.ml: Array Format Ftype
