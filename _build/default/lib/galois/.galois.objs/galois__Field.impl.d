lib/galois/field.ml: Array Combin Ftype Int64 List Poly
