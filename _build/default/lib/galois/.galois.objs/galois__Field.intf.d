lib/galois/field.mli: Ftype
