(** Fig. 4: the table of design sizes nx used for each (n, r, x).

    Reproduced from our catalogue ({!Designs.Registry.paper_nx_table});
    EXPERIMENTS.md records the handful of cells where our catalogue
    differs from the paper's citations. *)

val print : Format.formatter -> unit
