let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit headers;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let series ~title ~cols points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("# " ^ title ^ "\n");
  Buffer.add_string buf ("# " ^ String.concat "\t" cols ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "\t" (List.map (Printf.sprintf "%.6g") row));
      Buffer.add_char buf '\n')
    points;
  Buffer.contents buf

let pct x =
  let s = Printf.sprintf "%.0f" x in
  if s = "-0" then "0" else s
let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x
