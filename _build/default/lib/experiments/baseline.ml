type row = {
  n : int;
  r : int;
  s : int;
  k : int;
  b : int;
  combo_lb : int;
  combo_avail : int;
  random_avail : int;
  copyset_avail : int;
  copyset_wide_avail : int;
}

let attack_avail layout ~s ~k rng =
  let attack = Placement.Adversary.best ~rng layout ~s ~k in
  Placement.Adversary.avail layout ~s attack

let compute () =
  List.map
    (fun (n, r, s, k, b) ->
      let p = Placement.Params.make ~b ~r ~s ~n ~k in
      let rng = Combin.Rng.create (0xC0 + n + k) in
      let cfg = Placement.Combo.optimize p in
      let combo_layout = Placement.Combo.materialize cfg in
      let random_layout = Placement.Random_placement.place ~rng p in
      let copyset_layout sw =
        let cs = Placement.Copyset.generate ~rng ~n ~r ~scatter_width:sw in
        Placement.Copyset.place ~rng cs ~b
      in
      let narrow = copyset_layout (2 * (r - 1)) in
      let wide = copyset_layout (4 * (r - 1)) in
      {
        n;
        r;
        s;
        k;
        b;
        combo_lb = cfg.Placement.Combo.lb;
        combo_avail = attack_avail combo_layout ~s ~k rng;
        random_avail = attack_avail random_layout ~s ~k rng;
        copyset_avail = attack_avail narrow ~s ~k rng;
        copyset_wide_avail = attack_avail wide ~s ~k rng;
      })
    [
      (31, 3, 2, 3, 600);
      (31, 3, 2, 4, 600);
      (31, 3, 3, 4, 600);
      (71, 3, 2, 4, 2400);
      (71, 3, 3, 5, 2400);
      (71, 5, 3, 5, 1200);
    ]

let print fmt =
  Format.fprintf fmt
    "Baseline: worst-case availability of copyset replication vs Combo/Random@.";
  Format.fprintf fmt
    "(copyset = scatter width 2(r-1); copyset-wide = 4(r-1))@.";
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          string_of_int r.r;
          string_of_int r.s;
          string_of_int r.k;
          string_of_int r.b;
          string_of_int r.combo_lb;
          string_of_int r.combo_avail;
          string_of_int r.random_avail;
          string_of_int r.copyset_avail;
          string_of_int r.copyset_wide_avail;
        ])
      (compute ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:
         [ "n"; "r"; "s"; "k"; "b"; "combo lb"; "combo"; "random"; "copyset"; "copyset-wide" ]
       ~rows)
