let print fmt =
  Format.fprintf fmt "Fig. 4: selected nx per (n, r, x) from the design catalogue@.";
  List.iter
    (fun (n, per_r) ->
      Format.fprintf fmt "n = %d@." n;
      let rows =
        List.map
          (fun (r, row) ->
            string_of_int r
            :: List.map
                 (fun (x, entry) ->
                   match entry with
                   | Some (e : Designs.Registry.entry) ->
                       Printf.sprintf "n%d=%d %s%s" x e.v e.name
                         (if Designs.Registry.is_materialized e then ""
                          else " (lit.)")
                   | None -> Printf.sprintf "n%d=-" x)
                 row)
          per_r
      in
      Format.fprintf fmt "%s@."
        (Render.table
           ~headers:[ "r"; "x=1"; "x=2"; "x=3"; "x=4" ]
           ~rows))
    (Designs.Registry.paper_nx_table ())
