(** Fig. 9: the headline Combo-vs-Random comparison tables.

    For n ∈ {71, 257}, r ∈ {2..5}, s ∈ {2..r}, k ∈ {s..7} (n=71) or
    {s..8} (n=257), b doubling from 600 to 38400, each cell is

    (lbAvail_co(⟨λx⟩) − prAvail_rnd) / (b − prAvail_rnd) · 100

    — the fraction of Random's probable losses that the Combo placement
    provably saves (positive: Combo wins; 0: tie; negative: Random wins).
    ⟨λx⟩ is optimized by the Sec. III-B1 DP for each (b, k). *)

type cell = {
  b : int;
  k : int;
  lb : int;
  pr_avail : int;
  pct : float option;  (** None when b = prAvail (no possible improvement) *)
}

type table = { n : int; r : int; s : int; cells : cell list }

val compute :
  ?ns:int list -> ?bs:int list -> unit -> table list

val cell_value :
  n:int -> r:int -> s:int -> k:int -> b:int -> cell
(** One cell (exposed for tests). *)

val print : Format.formatter -> unit
