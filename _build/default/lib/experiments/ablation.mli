(** Ablation studies for the design choices called out in DESIGN.md §5:

    - {b adversary}: greedy vs greedy+swap local search vs exact
      branch-and-bound, on placements where the exact optimum is
      affordable — quantifies how much damage each heuristic level leaves
      on the table;
    - {b random placement}: Definition 4's load-capped Random vs the
      uncapped Random′ of Theorem 2's proof — load spread and worst-case
      availability. *)

type adversary_row = {
  desc : string;
  s : int;
  k : int;
  greedy_failed : int;
  local_failed : int;
  exact_failed : int option;  (** None when the exact search is truncated *)
}

val adversary : unit -> adversary_row list

type random_row = {
  n : int;
  r : int;
  b : int;
  s : int;
  k : int;
  capped_max_load : int;
  uncapped_max_load : int;
  capped_avail : float;  (** mean over trials, adversarial k failures *)
  uncapped_avail : float;
}

val random : ?trials:int -> unit -> random_row list

type load_row = {
  desc : string;
  n : int;
  b : int;
  r : int;
  mean_load : float;
  max_load : int;
  stddev_load : float;
  idle_nodes : int;  (** nodes carrying no replica at all *)
  mean_scatter : float;  (** mean per-node scatter width *)
}

val load : unit -> load_row list
(** Observation 2's load-imbalance concern: per-node replica-count
    statistics of Combo placements (which use only nx ≤ n nodes per
    level) versus load-capped Random placements. *)

type online_row = {
  phase : string;
  b : int;
  online_lb : int;  (** adaptive placement's live guarantee *)
  offline_lb : int;  (** from-scratch DP at the same population *)
}

val online : unit -> online_row list
(** Cost of being online: the adaptive (churn-driven) placement's bound
    vs the offline optimum through a growth / shrink / regrowth cycle. *)

val print_adversary : Format.formatter -> unit
val print_random : Format.formatter -> unit
val print_load : Format.formatter -> unit
val print_online : Format.formatter -> unit
