type point = {
  n : int;
  b : int;
  k_configured : int;
  k' : int;
  lb_configured : int;
  lb_reconfigured : int;
  ratio_pct : float;
}

let compute ?(r = 5) ?(s = 3) ?(k = 6)
    ?(cases = [ (31, 4800); (71, 1200); (257, 9600) ])
    ?(k's = [ 4; 5; 6; 7; 8 ]) () =
  List.concat_map
    (fun (n, b) ->
      let levels = Placement.Combo.default_levels ~n ~r ~s () in
      let configured =
        Placement.Combo.optimize ~levels (Placement.Params.make ~b ~r ~s ~n ~k)
      in
      List.map
        (fun k' ->
          let reconfigured =
            Placement.Combo.optimize ~levels
              (Placement.Params.make ~b ~r ~s ~n ~k:k')
          in
          let lb_configured = Placement.Combo.lb_avail_co configured ~k:k' in
          let lb_reconfigured =
            Placement.Combo.lb_avail_co reconfigured ~k:k'
          in
          {
            n;
            b;
            k_configured = k;
            k';
            lb_configured;
            lb_reconfigured;
            ratio_pct =
              (if lb_reconfigured = 0 then 100.0
               else
                 100.0 *. float_of_int lb_configured
                 /. float_of_int lb_reconfigured);
          })
        k's)
    cases

let print fmt =
  let points = compute () in
  Format.fprintf fmt
    "Fig. 3: lbAvail_co of k=6-configured Combo vs k'-configured, r=5 s=3@.";
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.n;
          string_of_int p.b;
          string_of_int p.k';
          string_of_int p.lb_configured;
          string_of_int p.lb_reconfigured;
          Render.f2 p.ratio_pct;
        ])
      points
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "n"; "b"; "k'"; "lb(cfg k=6)@k'"; "lb(cfg k')@k'"; "ratio %" ]
       ~rows)
