(** Fig. 8: prAvail_rnd / b for b = 38400 as a function of k, one panel
    per s ∈ {1..5}, with curves for (n, r) ∈ {71, 257} × {3, 5} (only
    r = 5 when s > 3). *)

type point = { s : int; n : int; r : int; k : int; fraction : float }

val compute : ?b:int -> unit -> point list

val print : Format.formatter -> unit
