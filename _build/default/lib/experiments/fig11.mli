(** Fig. 11 / Appendix A: the s = 1 case.

    Lemma 4 bounds Random's probable availability by
    b (1 − 1/b)^{k·⌊ℓ⌋}; the figure plots that bound (as a fraction of b)
    for b = 38400 and the usual (n, r) pairs, showing the essentially
    linear decay in k.  We also tabulate prAvail_rnd itself so the bound
    can be checked against the exact limit. *)

type point = {
  n : int;
  r : int;
  k : int;
  lemma4_fraction : float;
  pr_avail_fraction : float;
  simple0_fraction : float;
      (** Appendix A: lbAvail of the degenerate s = 1 Combo (a Simple(0,
          λ0) placement), as a fraction of b. *)
}

val compute : ?b:int -> unit -> point list

val print : Format.formatter -> unit
