(** Plain-text rendering of experiment output: fixed-width tables and
    (x, y) series in a gnuplot-friendly format, so that every figure and
    table of the paper has a textual analogue in the bench output. *)

val table : headers:string list -> rows:string list list -> string
(** Fixed-width table with a separator line under the headers.  Column
    widths fit the longest cell. *)

val series : title:string -> cols:string list -> (float list) list -> string
(** A titled, column-labelled block of numeric rows ("# title" header,
    one line per point) — one block per curve of a figure. *)

val pct : float -> string
(** Signed integer percentage, e.g. [-25] or [85]. *)

val f2 : float -> string
(** Two-decimal float. *)

val f4 : float -> string
(** Four-decimal float. *)
