lib/experiments/ablation.ml: Array Combin Designs Format List Placement Printf Render
