lib/experiments/fig2.ml: Designs Format List Placement Render
