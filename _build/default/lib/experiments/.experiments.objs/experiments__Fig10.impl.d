lib/experiments/fig10.ml: Array Format List Option Placement Render
