lib/experiments/fig8.ml: Format List Placement Printf Render
