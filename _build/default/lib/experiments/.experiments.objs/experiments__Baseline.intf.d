lib/experiments/baseline.mli: Format
