lib/experiments/theorem1.ml: Designs Format List Option Placement Render
