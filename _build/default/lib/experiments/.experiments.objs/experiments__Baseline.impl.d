lib/experiments/baseline.ml: Combin Format List Placement Render
