lib/experiments/fig5.ml: Designs Format List Printf Render
