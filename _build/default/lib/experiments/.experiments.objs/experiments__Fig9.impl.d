lib/experiments/fig9.ml: Format Hashtbl List Placement Render
