lib/experiments/render.mli:
