lib/experiments/fig9.mli: Format
