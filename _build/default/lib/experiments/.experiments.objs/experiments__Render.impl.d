lib/experiments/render.ml: Array Buffer List Printf String
