lib/experiments/fig3.ml: Format List Placement Render
