lib/experiments/fig4.ml: Designs Format List Printf Render
