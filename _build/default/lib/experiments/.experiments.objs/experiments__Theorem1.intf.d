lib/experiments/theorem1.mli: Format
