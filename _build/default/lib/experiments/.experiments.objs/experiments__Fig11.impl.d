lib/experiments/fig11.ml: Format List Placement Render
