lib/experiments/fig7.ml: Combin Dsim Format List Placement Render
