(** Fig. 10: breakdown of Combo placements into their Simple(x, λx)
    constituents for r = s = 3 and n ∈ {31, 71, 257}.

    For each b and k: the Simple(1, λ1) and Simple(2, λ2) columns show
    lbAvail_si(x, λ) − prAvail_rnd (λ minimal per Eqn. 1) as a percentage
    of b − prAvail_rnd, and the Combo column the corresponding
    lbAvail_co value — illustrating how the DP shifts weight between
    x = 1 and x = 2 as b grows. *)

type row = {
  n : int;
  b : int;
  k : int;
  lambda1 : int;  (** Eqn-1 λ for Simple(1, ·) *)
  simple1_pct : float option;
  lambda2 : int;
  simple2_pct : float option;
  combo_pct : float option;
}

val compute : ?ns:int list -> ?bs:int list -> ?ks:int list -> unit -> row list

val print : Format.formatter -> unit
