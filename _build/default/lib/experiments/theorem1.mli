(** Theorem 1 illustration: the competitive factor c and additive slack α
    of Simple(x, λ) placements versus the optimal placement, plus the
    s = r asymptotic fraction from the discussion following the theorem. *)

type row = {
  n : int;
  r : int;
  s : int;
  x : int;
  nx : int;
  k : int;
  c : float option;
  alpha : float option;
  limit_fraction : float;  (** 1 − (k)_{x+1} / (nx)_{x+1}, s = r case *)
}

val compute : unit -> row list

val print : Format.formatter -> unit
