(** Fig. 3: sensitivity of the Combo configuration to the assumed k.

    For r = 5, s = 3 and a placement configured for k = 6 failures,
    compares — at each actual failure count k' ∈ {4..8} — the bound of
    the k-configured placement against the bound of a placement configured
    for k' directly:
    ratio = lbAvail_co(⟨λx⟩_k evaluated at k') /
            lbAvail_co(⟨λx⟩_{k'} evaluated at k'), in percent. *)

type point = {
  n : int;
  b : int;
  k_configured : int;
  k' : int;
  lb_configured : int;  (** bound of the k-configured placement at k' *)
  lb_reconfigured : int;  (** bound of the k'-configured placement at k' *)
  ratio_pct : float;
}

val compute :
  ?r:int -> ?s:int -> ?k:int -> ?cases:(int * int) list -> ?k's:int list ->
  unit -> point list
(** Defaults: r=5, s=3, k=6, cases = [(31,4800); (71,1200); (257,9600)],
    k' ∈ {4..8}. *)

val print : Format.formatter -> unit
