(** Extra baseline: copyset replication vs the paper's strategies.

    Not a paper artefact — copyset replication (Cidon et al. 2013)
    postdates none of the paper's baselines but is the placement scheme
    practitioners actually deploy against correlated failures, and it is
    structurally a Simple(0, λ) placement (see {!Placement.Copyset}).
    This bench puts it on the same worst-case axis as Combo and Random. *)

type row = {
  n : int;
  r : int;
  s : int;
  k : int;
  b : int;
  combo_lb : int;
  combo_avail : int;  (** adversary-measured *)
  random_avail : int;
  copyset_avail : int;  (** scatter width 2(r−1) *)
  copyset_wide_avail : int;  (** scatter width 4(r−1) *)
}

val compute : unit -> row list

val print : Format.formatter -> unit
