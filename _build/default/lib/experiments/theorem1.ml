type row = {
  n : int;
  r : int;
  s : int;
  x : int;
  nx : int;
  k : int;
  c : float option;
  alpha : float option;
  limit_fraction : float;
}

let compute () =
  List.concat_map
    (fun (n, r, s, x) ->
      match
        Designs.Registry.best ~strength:(x + 1) ~block_size:r ~max_v:n ()
      with
      | None -> []
      | Some e ->
          List.map
            (fun k ->
              let comp =
                Placement.Analysis.theorem1 ~x ~nx:e.v ~r ~s ~k ~mu:e.mu
              in
              {
                n;
                r;
                s;
                x;
                nx = e.v;
                k;
                c = Option.map (fun c -> c.Placement.Analysis.c) comp;
                alpha = Option.map (fun c -> c.Placement.Analysis.alpha) comp;
                limit_fraction =
                  Placement.Analysis.competitive_limit_fraction ~x ~nx:e.v ~k;
              })
            [ s; s + 1; s + 2; s + 3 ])
    [ (71, 3, 3, 1); (71, 3, 2, 1); (257, 5, 5, 2); (257, 5, 3, 2); (31, 3, 3, 1) ]

let print fmt =
  Format.fprintf fmt
    "Theorem 1: competitive factor c and slack alpha of Simple(x, lambda)@.";
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          string_of_int r.r;
          string_of_int r.s;
          string_of_int r.x;
          string_of_int r.nx;
          string_of_int r.k;
          (match r.c with None -> "-" | Some c -> Render.f4 c);
          (match r.alpha with None -> "-" | Some a -> Render.f2 a);
          Render.f4 r.limit_fraction;
        ])
      (compute ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "n"; "r"; "s"; "x"; "nx"; "k"; "c"; "alpha"; "s=r limit" ]
       ~rows)
