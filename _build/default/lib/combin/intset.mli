(** Operations on sorted, duplicate-free int arrays.

    Placements represent each object's replica set (the [r] nodes hosting
    it, Fig. 1) as a sorted int array; the adversary and the packing
    verifier need fast intersections against candidate failure sets. *)

val of_array : int array -> int array
(** [of_array a] is a sorted, deduplicated copy of [a]. *)

val is_sorted_distinct : int array -> bool

val mem : int array -> int -> bool
(** Binary search. *)

val inter_size : int array -> int array -> int
(** [inter_size a b] is [|a ∩ b|] for sorted distinct arrays; linear merge. *)

val inter : int array -> int array -> int array

val union : int array -> int array -> int array

val diff : int array -> int array -> int array

val subset : int array -> int array -> bool
(** [subset a b] is [true] iff every element of [a] occurs in [b]. *)

val equal : int array -> int array -> bool
