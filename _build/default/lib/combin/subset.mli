(** Enumeration, ranking and iteration over k-subsets of [{0..n-1}].

    Used by the design constructions (block enumeration), by the exact
    worst-case adversary (enumerating candidate failure sets), and by the
    packing verifier (enumerating the [(x+1)]-subsets of each block). *)

val iter : n:int -> k:int -> (int array -> unit) -> unit
(** [iter ~n ~k f] calls [f] once for every k-subset of [{0..n-1}] in
    lexicographic order.  The array passed to [f] is reused between calls;
    copy it if you keep it.  [k = 0] yields the empty subset once. *)

val fold : n:int -> k:int -> ('a -> int array -> 'a) -> 'a -> 'a
(** [fold ~n ~k f init] folds [f] over all k-subsets in lexicographic
    order, with the same array-reuse caveat as {!iter}. *)

val count : n:int -> k:int -> int
(** [count ~n ~k = Binomial.exact n k]. *)

val rank : n:int -> int array -> int
(** [rank ~n c] is the colexicographic rank of the sorted subset [c];
    inverse of {!unrank}.  The rank of a k-subset is independent of [n]
    (colex ranking); [n] is only used for validation. *)

val unrank : k:int -> int -> int array
(** [unrank ~k i] is the sorted k-subset with colexicographic rank [i]. *)

val sub_iter : int array -> k:int -> (int array -> unit) -> unit
(** [sub_iter base ~k f] iterates over all k-subsets of the elements of
    [base] (an arbitrary int array), passing the chosen elements.  The
    array passed to [f] is reused. *)

val pairs : int array -> (int -> int -> unit) -> unit
(** [pairs a f] calls [f a.(i) a.(j)] for all [i < j]. *)
