(** Numerically robust computations on log-scale probabilities.

    Theorem 2's vulnerability involves binomial tails with success
    probabilities as small as 1e-12 over b = 38400 trials; everything is
    therefore computed as natural logarithms. *)

val log_add : float -> float -> float
(** [log_add la lb = ln (e^la + e^lb)] without overflow/underflow. *)

val log_sum : float array -> float
(** [log_sum a = ln (sum_i e^{a.(i)})] via max-shifted summation. *)

val log_binomial_pmf : n:int -> p:float -> int -> float
(** [log_binomial_pmf ~n ~p j] is [ln P(Bin(n,p) = j)].
    Requires [0 <= p <= 1]; degenerate [p] values handled exactly. *)

val log_binomial_sf : n:int -> p:float -> int -> float
(** [log_binomial_sf ~n ~p f] is [ln P(Bin(n,p) >= f)], i.e. the log of the
    upper tail including [f].  [f <= 0] gives [0.0] (= ln 1). *)

val log_binomial_sf_table : n:int -> p:float -> float array
(** [log_binomial_sf_table ~n ~p] is the array [t] with
    [t.(f) = log_binomial_sf ~n ~p f] for [f = 0..n+1] ([t.(n+1) =
    neg_infinity]).  Computed in one O(n) pass. *)
