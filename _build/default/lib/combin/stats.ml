let mean a =
  let n = Array.length a in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let mean_int a = mean (Array.map float_of_int a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    s /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (a.(0), a.(0))
    a

let percentile a q =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then b.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. b.(lo)) +. (w *. b.(hi))
  end

let cdf_points a =
  let n = Array.length a in
  if n = 0 then []
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    let total = float_of_int n in
    let points = ref [] in
    for i = n - 1 downto 0 do
      (* Record each distinct value once, at its highest index. *)
      if i = n - 1 || b.(i) <> b.(i + 1) then
        points := (b.(i), float_of_int (i + 1) /. total) :: !points
    done;
    !points
  end
