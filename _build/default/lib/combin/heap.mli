(** A mutable binary min-heap, keyed by float priority.

    Backs the discrete-event loop of the failure/repair simulator
    ({!Dsim.Repair}): events are (time, payload) pairs popped in time
    order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority payload]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry; ties in insertion
    order are not guaranteed. *)

val peek : 'a t -> (float * 'a) option
