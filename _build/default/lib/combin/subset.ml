let iter ~n ~k f =
  if k < 0 then invalid_arg "Subset.iter: k < 0";
  if k = 0 then f [||]
  else if k <= n then begin
    let c = Array.init k (fun i -> i) in
    let continue_ = ref true in
    while !continue_ do
      f c;
      (* Advance to the next subset in lexicographic order. *)
      let i = ref (k - 1) in
      while !i >= 0 && c.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then continue_ := false
      else begin
        c.(!i) <- c.(!i) + 1;
        for j = !i + 1 to k - 1 do
          c.(j) <- c.(j - 1) + 1
        done
      end
    done
  end

let fold ~n ~k f init =
  let acc = ref init in
  iter ~n ~k (fun c -> acc := f !acc c);
  !acc

let count ~n ~k = Binomial.exact n k

let rank ~n c =
  let k = Array.length c in
  let r = ref 0 in
  for i = 0 to k - 1 do
    if c.(i) < 0 || c.(i) >= n then invalid_arg "Subset.rank: out of range";
    if i > 0 && c.(i) <= c.(i - 1) then invalid_arg "Subset.rank: not sorted";
    r := !r + Binomial.exact c.(i) (i + 1)
  done;
  !r

let unrank ~k i =
  let c = Array.make k 0 in
  let rem = ref i in
  for pos = k - 1 downto 0 do
    (* Largest v with C(v, pos+1) <= rem. *)
    let v = ref pos in
    while Binomial.exact (!v + 1) (pos + 1) <= !rem do
      incr v
    done;
    c.(pos) <- !v;
    rem := !rem - Binomial.exact !v (pos + 1)
  done;
  c

let sub_iter base ~k f =
  let n = Array.length base in
  let out = Array.make (max k 1) 0 in
  iter ~n ~k (fun idx ->
      for i = 0 to k - 1 do
        out.(i) <- base.(idx.(i))
      done;
      f (if k = 0 then [||] else out))

let pairs a f =
  let n = Array.length a in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      f a.(i) a.(j)
    done
  done
