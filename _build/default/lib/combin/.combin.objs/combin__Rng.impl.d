lib/combin/rng.ml: Array Int Int64 Set
