lib/combin/subset.ml: Array Binomial
