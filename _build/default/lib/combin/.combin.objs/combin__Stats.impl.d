lib/combin/stats.ml: Array
