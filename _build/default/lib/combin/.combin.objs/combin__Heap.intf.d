lib/combin/heap.mli:
