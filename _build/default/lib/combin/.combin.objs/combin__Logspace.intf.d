lib/combin/logspace.mli:
