lib/combin/heap.ml: Array
