lib/combin/binomial.ml: Array Stdlib
