lib/combin/subset.mli:
