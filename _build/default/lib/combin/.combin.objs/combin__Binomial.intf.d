lib/combin/binomial.mli:
