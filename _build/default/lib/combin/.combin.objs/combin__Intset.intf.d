lib/combin/intset.mli:
