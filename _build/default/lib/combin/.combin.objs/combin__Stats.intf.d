lib/combin/stats.mli:
