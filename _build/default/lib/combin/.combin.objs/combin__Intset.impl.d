lib/combin/intset.ml: Array
