lib/combin/logspace.ml: Array Binomial Stdlib
