lib/combin/rng.mli:
