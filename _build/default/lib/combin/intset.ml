let of_array a =
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  if n <= 1 then b
  else begin
    let w = ref 1 in
    for i = 1 to n - 1 do
      if b.(i) <> b.(!w - 1) then begin
        b.(!w) <- b.(i);
        incr w
      end
    done;
    Array.sub b 0 !w
  end

let is_sorted_distinct a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i - 1) < a.(i) && go (i + 1)) in
  go 1

let mem a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = x

let inter_size a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and c = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      incr c;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  !c

let merge_with ~keep_left_only ~keep_both ~keep_right_only a b =
  let na = Array.length a and nb = Array.length b in
  let out = ref [] and i = ref 0 and j = ref 0 in
  let push x = out := x :: !out in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      if keep_both then push x;
      incr i;
      incr j
    end
    else if x < y then begin
      if keep_left_only then push x;
      incr i
    end
    else begin
      if keep_right_only then push y;
      incr j
    end
  done;
  if keep_left_only then
    while !i < na do
      push a.(!i);
      incr i
    done;
  if keep_right_only then
    while !j < nb do
      push b.(!j);
      incr j
    done;
  let arr = Array.of_list !out in
  let n = Array.length arr in
  Array.init n (fun idx -> arr.(n - 1 - idx))

let inter = merge_with ~keep_left_only:false ~keep_both:true ~keep_right_only:false
let union = merge_with ~keep_left_only:true ~keep_both:true ~keep_right_only:true
let diff = merge_with ~keep_left_only:true ~keep_both:false ~keep_right_only:false

let subset a b = inter_size a b = Array.length a

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0
