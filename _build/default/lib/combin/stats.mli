(** Small descriptive-statistics helpers for the Monte-Carlo experiments
    (Fig. 7 averages over 20 Random-placement trials, adversary-ablation
    spreads, etc.). *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val mean_int : int array -> float

val variance : float array -> float
(** Unbiased sample variance (divides by [n-1]); [0.0] when [n < 2]. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile a q] with [q] in [\[0,1\]]: linear-interpolation quantile of
    a copy of [a] (input left unmodified). *)

val cdf_points : float array -> (float * float) list
(** [cdf_points a] is the empirical CDF of [a] as a sorted list of
    [(value, fraction <= value)] pairs, one per distinct value.  Used to
    render the capacity-gap CDFs of Figs 5–6. *)
