let log_add la lb =
  if la = neg_infinity then lb
  else if lb = neg_infinity then la
  else if la >= lb then la +. log1p (exp (lb -. la))
  else lb +. log1p (exp (la -. lb))

let log_sum a =
  let m = Array.fold_left max neg_infinity a in
  if m = neg_infinity then neg_infinity
  else begin
    let s = ref 0.0 in
    Array.iter (fun x -> s := !s +. exp (x -. m)) a;
    m +. Stdlib.log !s
  end

let log_binomial_pmf ~n ~p j =
  if j < 0 || j > n then neg_infinity
  else if p <= 0.0 then if j = 0 then 0.0 else neg_infinity
  else if p >= 1.0 then if j = n then 0.0 else neg_infinity
  else
    Binomial.log n j
    +. (float_of_int j *. Stdlib.log p)
    +. (float_of_int (n - j) *. log1p (-.p))

let log_binomial_sf_table ~n ~p =
  let t = Array.make (n + 2) neg_infinity in
  (* Suffix log-sum-exp of the pmf, from j = n down to 0. *)
  for j = n downto 0 do
    t.(j) <- log_add (log_binomial_pmf ~n ~p j) t.(j + 1)
  done;
  (* Clamp the full tail to exactly ln 1 = 0 to absorb rounding. *)
  if t.(0) > 0.0 then t.(0) <- 0.0;
  t

let log_binomial_sf ~n ~p f =
  if f <= 0 then 0.0
  else if f > n then neg_infinity
  else begin
    let acc = ref neg_infinity in
    for j = n downto f do
      acc := log_add (log_binomial_pmf ~n ~p j) !acc
    done;
    min !acc 0.0
  end
