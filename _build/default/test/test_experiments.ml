(* End-to-end sanity tests on the experiment drivers: the reproduction
   pipeline must keep producing internally consistent artefacts. *)

let test_fig2_gap_nonnegative () =
  (* The adversary's Avail can never beat the lower bound. *)
  List.iter
    (fun (p : Experiments.Fig2.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "gap >= 0 at s=%d k=%d b=%d" p.s p.k p.b)
        true (p.gap >= 0))
    (Experiments.Fig2.compute ~bs:[ 600; 1200 ] ())

let test_fig2_exact_for_small_k () =
  let pts = Experiments.Fig2.compute ~bs:[ 600 ] () in
  List.iter
    (fun (p : Experiments.Fig2.point) ->
      if p.k <= 3 then
        Alcotest.(check bool) "small k uses exact adversary" true p.exact)
    pts

let test_fig3_ratio_bounds () =
  List.iter
    (fun (p : Experiments.Fig3.point) ->
      Alcotest.(check bool) "ratio <= 100" true (p.ratio_pct <= 100.0 +. 1e-9);
      Alcotest.(check bool) "ratio >= 90 (paper: stays high)" true
        (p.ratio_pct >= 90.0);
      if p.k' = p.k_configured then
        Alcotest.(check (float 1e-9)) "k'=k gives 100%" 100.0 p.ratio_pct)
    (Experiments.Fig3.compute ())

let test_fig3_reconfigured_is_optimal () =
  (* The k'-configured bound can never be below the k-configured one when
     both are evaluated at k'. *)
  List.iter
    (fun (p : Experiments.Fig3.point) ->
      Alcotest.(check bool) "optimality" true
        (p.lb_reconfigured >= p.lb_configured))
    (Experiments.Fig3.compute ())

let test_fig5_fraction_monotone () =
  let curves = Experiments.Fig5.compute_fig5 ~n_lo:50 ~n_hi:120 () in
  List.iter
    (fun (c : Experiments.Fig5.curve) ->
      let f0 = Experiments.Fig5.fraction_below c 0.0 in
      let f5 = Experiments.Fig5.fraction_below c 0.5 in
      let f10 = Experiments.Fig5.fraction_below c 1.0 in
      Alcotest.(check bool) "monotone thresholds" true (f0 <= f5 && f5 <= f10);
      Alcotest.(check (float 1e-9)) "everything below 1.0" 1.0 f10)
    curves

let test_fig5_trivial_strengths_perfect () =
  (* x = r-1 (complete designs) and x = 0 (partitions) have gap ~0
     everywhere. *)
  let curves = Experiments.Fig5.compute_fig5 ~n_lo:50 ~n_hi:90 () in
  List.iter
    (fun (c : Experiments.Fig5.curve) ->
      if c.x = c.r - 1 then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "r=%d x=%d all-zero gap" c.r c.x)
          1.0
          (Experiments.Fig5.fraction_below c 0.0))
    curves

let test_fig6_mu_improves_x2 () =
  (* The paper's Fig. 6 headline: mu <= 10 dramatically improves the
     r=5, x=2 case relative to mu = 1. *)
  let mu1 =
    List.find
      (fun (c : Experiments.Fig5.curve) -> c.x = 2)
      (Experiments.Fig5.compute_fig5 ~n_lo:50 ~n_hi:150 ()
      |> List.filter (fun (c : Experiments.Fig5.curve) -> c.r = 5))
  in
  let mu10 =
    List.find
      (fun (c : Experiments.Fig5.curve) -> c.x = 2 && c.max_mu = 10)
      (Experiments.Fig5.compute_fig6 ~n_lo:50 ~n_hi:150 ())
  in
  Alcotest.(check bool) "mu<=10 at least 5x better at gap<=0.1" true
    (Experiments.Fig5.fraction_below mu10 0.1
    >= 5.0 *. Experiments.Fig5.fraction_below mu1 0.1)

let test_fig8_fractions () =
  let pts = Experiments.Fig8.compute ~b:3840 () in
  List.iter
    (fun (p : Experiments.Fig8.point) ->
      Alcotest.(check bool) "fraction in [0,1]" true
        (p.fraction >= 0.0 && p.fraction <= 1.0))
    pts;
  (* Larger s (harder to kill) means more availability, same n/r/k. *)
  let get s k =
    (List.find
       (fun (p : Experiments.Fig8.point) -> p.s = s && p.n = 71 && p.r = 5 && p.k = k)
       pts)
      .fraction
  in
  Alcotest.(check bool) "s=2 >= s=1" true (get 2 5 >= get 1 5);
  Alcotest.(check bool) "s=3 >= s=2" true (get 3 5 >= get 2 5)

let test_fig9_cell_consistency () =
  let cell = Experiments.Fig9.cell_value ~n:71 ~r:3 ~s:3 ~k:4 ~b:2400 in
  Alcotest.(check bool) "lb in [0,b]" true
    (cell.Experiments.Fig9.lb >= 0 && cell.Experiments.Fig9.lb <= 2400);
  Alcotest.(check bool) "prAvail in [0,b]" true
    (cell.Experiments.Fig9.pr_avail >= 0 && cell.Experiments.Fig9.pr_avail <= 2400);
  match cell.Experiments.Fig9.pct with
  | None -> Alcotest.fail "expected comparable cell"
  | Some pct -> Alcotest.(check bool) "pct <= 100" true (pct <= 100.0)

let test_fig9_known_signs () =
  (* The paper's qualitative headline: Combo wins at r=2, s=2 across the
     board at n=71, and loses at r=5, s=2, very large b. *)
  let win = Experiments.Fig9.cell_value ~n:71 ~r:2 ~s:2 ~k:2 ~b:2400 in
  (match win.Experiments.Fig9.pct with
  | Some v -> Alcotest.(check bool) "combo wins" true (v > 0.0)
  | None -> Alcotest.fail "expected comparable cell");
  let lose = Experiments.Fig9.cell_value ~n:71 ~r:5 ~s:2 ~k:7 ~b:38400 in
  match lose.Experiments.Fig9.pct with
  | Some v -> Alcotest.(check bool) "random wins at extreme b" true (v < 0.0)
  | None -> Alcotest.fail "expected comparable cell"

let test_fig10_combo_at_least_best_simple () =
  List.iter
    (fun (row : Experiments.Fig10.row) ->
      match (row.simple1_pct, row.simple2_pct, row.combo_pct) with
      | Some s1, Some s2, Some c ->
          Alcotest.(check bool)
            (Printf.sprintf "combo >= max(simples) at n=%d b=%d k=%d" row.n
               row.b row.k)
            true
            (c >= Float.max s1 s2 -. 1e-9)
      | _ -> ())
    (Experiments.Fig10.compute ~ns:[ 31 ] ~bs:[ 600; 2400; 4800 ] ())

let test_fig11_lemma4_bounds () =
  List.iter
    (fun (p : Experiments.Fig11.point) ->
      Alcotest.(check bool) "lemma4 >= prAvail/b" true
        (p.lemma4_fraction >= p.pr_avail_fraction -. 1e-9))
    (Experiments.Fig11.compute ~b:3840 ())

let test_theorem1_rows () =
  List.iter
    (fun (row : Experiments.Theorem1.row) ->
      match row.c with
      | Some c ->
          Alcotest.(check bool) "c > 1" true (c > 1.0);
          Alcotest.(check bool) "alpha > 0" true (Option.get row.alpha > 0.0)
      | None -> ())
    (Experiments.Theorem1.compute ())

let test_ablation_adversary_ordering () =
  List.iter
    (fun (row : Experiments.Ablation.adversary_row) ->
      Alcotest.(check bool) "greedy <= local" true
        (row.greedy_failed <= row.local_failed);
      match row.exact_failed with
      | Some e ->
          Alcotest.(check bool) "local <= exact" true (row.local_failed <= e)
      | None -> ())
    (Experiments.Ablation.adversary ())

let test_baseline_invariants () =
  List.iter
    (fun (row : Experiments.Baseline.row) ->
      Alcotest.(check bool) "combo lb <= measured combo avail" true
        (row.combo_lb <= row.combo_avail);
      Alcotest.(check bool) "all avails within [0,b]" true
        (List.for_all
           (fun v -> v >= 0 && v <= row.b)
           [ row.combo_avail; row.random_avail; row.copyset_avail;
             row.copyset_wide_avail ]))
    (Experiments.Baseline.compute ())

let test_ablation_online_soundness () =
  List.iter
    (fun (row : Experiments.Ablation.online_row) ->
      Alcotest.(check bool) "online <= offline" true
        (row.online_lb <= row.offline_lb))
    (Experiments.Ablation.online ())

let test_render_table () =
  let out =
    Experiments.Render.table ~headers:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains separator" true
    (String.length out > 0 && String.contains out '-');
  Alcotest.(check string) "pct" "-25" (Experiments.Render.pct (-25.0))

let () =
  Alcotest.run "experiments"
    [
      ( "fig2",
        [
          Alcotest.test_case "gap nonnegative" `Slow test_fig2_gap_nonnegative;
          Alcotest.test_case "exact for small k" `Slow test_fig2_exact_for_small_k;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "ratio bounds" `Quick test_fig3_ratio_bounds;
          Alcotest.test_case "reconfigured optimal" `Quick
            test_fig3_reconfigured_is_optimal;
        ] );
      ( "fig5-6",
        [
          Alcotest.test_case "fractions monotone" `Slow test_fig5_fraction_monotone;
          Alcotest.test_case "trivial strengths perfect" `Slow
            test_fig5_trivial_strengths_perfect;
          Alcotest.test_case "mu improves x=2" `Slow test_fig6_mu_improves_x2;
        ] );
      ( "fig8",
        [ Alcotest.test_case "fractions + monotone s" `Quick test_fig8_fractions ] );
      ( "fig9",
        [
          Alcotest.test_case "cell consistency" `Quick test_fig9_cell_consistency;
          Alcotest.test_case "known signs" `Quick test_fig9_known_signs;
        ] );
      ( "fig10",
        [
          Alcotest.test_case "combo >= simples" `Quick
            test_fig10_combo_at_least_best_simple;
        ] );
      ( "fig11",
        [ Alcotest.test_case "lemma4 dominates" `Quick test_fig11_lemma4_bounds ] );
      ( "theorem1",
        [ Alcotest.test_case "constants sane" `Quick test_theorem1_rows ] );
      ( "ablation",
        [
          Alcotest.test_case "adversary ordering" `Slow
            test_ablation_adversary_ordering;
        ] );
      ( "baseline",
        [ Alcotest.test_case "copyset invariants" `Slow test_baseline_invariants ] );
      ( "ablation-online",
        [ Alcotest.test_case "online soundness" `Quick test_ablation_online_soundness ] );
      ("render", [ Alcotest.test_case "table/pct" `Quick test_render_table ]);
    ]
