test/test_designs.ml: Alcotest Array Combin Designs Galois Hashtbl List Option Printf QCheck2 QCheck_alcotest Random Seq
