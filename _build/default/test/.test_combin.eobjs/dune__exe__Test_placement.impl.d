test/test_placement.ml: Alcotest Array Combin Designs Filename Fun Hashtbl List Option Placement Printf QCheck2 QCheck_alcotest Random Sys
