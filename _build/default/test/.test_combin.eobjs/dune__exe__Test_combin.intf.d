test/test_combin.mli:
