test/test_galois.ml: Alcotest Array Galois List Printf QCheck2 QCheck_alcotest Random
