test/test_experiments.ml: Alcotest Experiments Float List Option Printf String
