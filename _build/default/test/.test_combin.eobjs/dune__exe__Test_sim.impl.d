test/test_sim.ml: Alcotest Array Combin Designs Dsim Placement QCheck2 QCheck_alcotest Random
