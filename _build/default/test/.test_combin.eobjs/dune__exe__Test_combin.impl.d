test/test_combin.ml: Alcotest Array Combin Fun Hashtbl Int List QCheck2 QCheck_alcotest Random Set
