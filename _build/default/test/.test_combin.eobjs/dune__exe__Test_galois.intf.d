test/test_galois.mli:
