  $ placement-tool plan -n 71 -b 1200 -r 3 -s 2 -k 4
  $ placement-tool designs -x 1 -r 5 --max-v 30
  $ placement-tool gap -n 71 -x 1 -r 3
  $ placement-tool analyze -n 71 -b 2400 -r 3 -s 1 -k 5
  $ placement-tool simulate -n 31 -b 100 -r 3 -s 2 -k 3 --strategy combo --out layout.txt | tail -2
  $ head -4 layout.txt
  $ placement-tool attack --layout layout.txt -s 2 -k 4 | head -1
  $ printf 'garbage\n' > bad.txt
  $ placement-tool attack --layout bad.txt
  $ placement-tool recommend -n 71 -b 2400 -k 4 --target 99.5
