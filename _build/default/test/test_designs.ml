(* Tests for the block-design constructions, the registry, and the
   chunking optimizer. *)

let qtest ?(count = 100) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

let check_design name d =
  Alcotest.(check bool) (name ^ " is a design") true (Designs.Block_design.is_design d)

(* ------------------------------------------------------------------ *)
(* Block_design core *)

let test_make_validation () =
  let mk blocks =
    ignore (Designs.Block_design.make ~strength:2 ~v:5 ~block_size:3 ~lambda:1 blocks)
  in
  Alcotest.check_raises "unsorted block"
    (Invalid_argument "Block_design.make: block not sorted/distinct")
    (fun () -> mk [| [| 2; 1; 0 |] |]);
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Block_design.make: block of wrong size")
    (fun () -> mk [| [| 0; 1 |] |]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Block_design.make: point out of range")
    (fun () -> mk [| [| 0; 1; 7 |] |])

let test_coverage_excess_detects () =
  (* Two blocks sharing a pair violate a 2-(v,3,1) packing. *)
  let d =
    Designs.Block_design.make ~strength:2 ~v:6 ~block_size:3 ~lambda:1
      [| [| 0; 1; 2 |]; [| 0; 1; 3 |] |]
  in
  (match Designs.Block_design.coverage_excess d with
  | Some (sub, count) ->
      Alcotest.(check (array int)) "offending pair" [| 0; 1 |] sub;
      Alcotest.(check int) "count" 2 count
  | None -> Alcotest.fail "conflict not detected");
  Alcotest.(check bool) "is_packing false" false (Designs.Block_design.is_packing d)

let test_capacity_bound () =
  Alcotest.(check int) "STS(7)" 7
    (Designs.Block_design.capacity_bound ~strength:2 ~v:7 ~block_size:3 ~lambda:1);
  Alcotest.(check int) "lambda scales" 14
    (Designs.Block_design.capacity_bound ~strength:2 ~v:7 ~block_size:3 ~lambda:2)

let test_relabel_preserves_design () =
  let d = Designs.Steiner_triple.make 9 in
  let perm = [| 4; 7; 0; 2; 8; 1; 3; 6; 5 |] in
  check_design "relabelled STS(9)" (Designs.Block_design.relabel d perm)

let test_repeat () =
  let d = Designs.Steiner_triple.make 7 in
  let d3 = Designs.Block_design.repeat d 3 in
  Alcotest.(check int) "lambda" 3 d3.Designs.Block_design.lambda;
  Alcotest.(check int) "blocks" 21 (Designs.Block_design.block_count d3);
  Alcotest.(check bool) "3-fold STS(7) is a design" true
    (Designs.Block_design.is_design d3)

let test_derived_spherical_is_affine () =
  (* Deriving the Möbius design 3-(17,5,1) at infinity yields a
     2-(16,4,1) design — the affine plane AG(2,4). *)
  let sph = Designs.Spherical.make ~q:4 ~d:2 in
  let der = Designs.Block_design.derived sph ~point:16 in
  Alcotest.(check int) "16 points" 16 der.Designs.Block_design.v;
  Alcotest.(check int) "block size 4" 4 der.Designs.Block_design.block_size;
  Alcotest.(check int) "20 blocks" 20 (Designs.Block_design.block_count der);
  check_design "derived design" der

let test_derived_sts_is_matching () =
  (* Deriving an STS at any point gives a perfect matching (1-design). *)
  let sts = Designs.Steiner_triple.make 13 in
  let der = Designs.Block_design.derived sts ~point:5 in
  Alcotest.(check int) "6 pairs" 6 (Designs.Block_design.block_count der);
  check_design "derived STS" der

let test_residual_sts_is_packing () =
  let sts = Designs.Steiner_triple.make 13 in
  let res = Designs.Block_design.residual sts ~point:0 in
  Alcotest.(check int) "20 blocks" 20 (Designs.Block_design.block_count res);
  Alcotest.(check bool) "valid packing" true (Designs.Block_design.is_packing res);
  Alcotest.(check bool) "not a full design" false (Designs.Block_design.is_design res)

let test_union_disjoint_mismatch () =
  let d7 = Designs.Steiner_triple.make 7 and d9 = Designs.Steiner_triple.make 9 in
  Alcotest.check_raises "mismatched v"
    (Invalid_argument "Block_design.union_disjoint: parameter mismatch")
    (fun () -> ignore (Designs.Block_design.union_disjoint d7 d9))

(* ------------------------------------------------------------------ *)
(* Families *)

let test_sts_all_small () =
  List.iter
    (fun v -> check_design (Printf.sprintf "STS(%d)" v) (Designs.Steiner_triple.make v))
    [ 3; 7; 9; 13; 15; 19; 21; 25; 27; 31; 33; 37; 43; 45 ]

let test_sts_admissible () =
  Alcotest.(check bool) "7" true (Designs.Steiner_triple.admissible 7);
  Alcotest.(check bool) "8" false (Designs.Steiner_triple.admissible 8);
  Alcotest.(check (option int)) "largest <= 71" (Some 69)
    (Designs.Steiner_triple.largest_admissible 71);
  Alcotest.check_raises "make 8"
    (Invalid_argument "Steiner_triple.make: v must be >= 3 and 1 or 3 mod 6")
    (fun () -> ignore (Designs.Steiner_triple.make 8))

let test_affine () =
  List.iter
    (fun (q, d) ->
      let design = Designs.Affine.make ~q ~d in
      check_design (Printf.sprintf "AG(%d,%d)" d q) design;
      Alcotest.(check int)
        (Printf.sprintf "AG(%d,%d) block count" d q)
        (Designs.Affine.line_count ~q ~d)
        (Designs.Block_design.block_count design))
    [ (2, 2); (3, 2); (4, 2); (5, 2); (2, 3); (3, 3); (2, 4); (4, 3) ]

let test_affine_resolution () =
  List.iter
    (fun (q, d) ->
      let classes = Designs.Affine.parallel_classes ~q ~d in
      let v = Designs.Affine.point_count ~q ~d in
      Alcotest.(check int)
        (Printf.sprintf "AG(%d,%d): one class per direction" d q)
        ((v - 1) / (q - 1))
        (Array.length classes);
      Array.iter
        (fun cls ->
          (* Every class partitions the point set. *)
          let covered = Array.concat (Array.to_list cls) in
          let sorted = Combin.Intset.of_array covered in
          Alcotest.(check int) "partition size" v (Array.length covered);
          Alcotest.(check int) "no duplicates" v (Array.length sorted))
        classes)
    [ (2, 2); (3, 2); (3, 3); (4, 2); (5, 2); (2, 4) ]

let test_kirkman_27 () =
  (* AG(3,3) is a Kirkman triple system on 27 points: a resolvable
     STS(27) with 13 parallel classes of 9 triples. *)
  let classes = Designs.Affine.parallel_classes ~q:3 ~d:3 in
  Alcotest.(check int) "13 classes" 13 (Array.length classes);
  Array.iter
    (fun cls -> Alcotest.(check int) "9 triples" 9 (Array.length cls))
    classes;
  check_design "KTS(27) as a design" (Designs.Affine.make ~q:3 ~d:3)

let test_projective () =
  List.iter
    (fun (q, d) ->
      let design = Designs.Projective.make ~q ~d in
      check_design (Printf.sprintf "PG(%d,%d)" d q) design;
      Alcotest.(check int)
        (Printf.sprintf "PG(%d,%d) point count" d q)
        (Designs.Projective.point_count ~q ~d)
        design.Designs.Block_design.v)
    [ (2, 2); (3, 2); (4, 2); (2, 3); (3, 3); (2, 4); (2, 5) ]

let test_fano_plane () =
  let fano = Designs.Projective.make ~q:2 ~d:2 in
  Alcotest.(check int) "7 points" 7 fano.Designs.Block_design.v;
  Alcotest.(check int) "7 lines" 7 (Designs.Block_design.block_count fano)

let test_unital () =
  List.iter
    (fun q ->
      let design = Designs.Unital.make ~q in
      check_design (Printf.sprintf "unital(%d)" q) design;
      Alcotest.(check int) "points" (Designs.Unital.point_count ~q)
        design.Designs.Block_design.v)
    [ 2; 3 ]

let test_quadruple_boolean () =
  List.iter
    (fun m -> check_design (Printf.sprintf "SQS(2^%d)" m) (Designs.Quadruple.boolean m))
    [ 2; 3; 4; 5 ]

let test_quadruple_searched_and_doubled () =
  check_design "SQS(10)" (Designs.Quadruple.make 10);
  check_design "SQS(20)" (Designs.Quadruple.make 20);
  check_design "SQS(14)" (Designs.Quadruple.make 14);
  check_design "SQS(28)" (Designs.Quadruple.make 28)

let test_quadruple_constructible () =
  Alcotest.(check bool) "16" true (Designs.Quadruple.constructible 16);
  Alcotest.(check bool) "20" true (Designs.Quadruple.constructible 20);
  Alcotest.(check bool) "22" false (Designs.Quadruple.constructible 22);
  Alcotest.(check bool) "9 inadmissible" false (Designs.Quadruple.constructible 9);
  Alcotest.(check (option int)) "largest <= 71" (Some 64)
    (Designs.Quadruple.largest_constructible 71)

let test_one_factorization =
  qtest ~count:20 "one-factorization partitions K_v"
    (QCheck2.Gen.int_range 1 10)
    (fun half ->
      let v = 2 * half in
      let factors = Designs.Quadruple.one_factorization v in
      Array.length factors = v - 1
      && Array.for_all (fun f -> Array.length f = v / 2) factors
      &&
      (* Every edge appears exactly once across all factors. *)
      let seen = Hashtbl.create 64 in
      Array.iter
        (Array.iter (fun e -> Hashtbl.replace seen (e.(0), e.(1)) (1 + Option.value ~default:0 (Hashtbl.find_opt seen (e.(0), e.(1))))))
        factors;
      Hashtbl.length seen = v * (v - 1) / 2
      && Hashtbl.fold (fun _ c acc -> acc && c = 1) seen true)

let test_spherical_huge_sampled () =
  (* 3-(257,5,1): 279,616 blocks — full verification is a few hundred
     million subset ranks; spot-check instead (the construction itself
     certifies the Steiner property during generation). *)
  let d = Designs.Spherical.make ~q:4 ~d:4 in
  Alcotest.(check int) "v = 257" 257 d.Designs.Block_design.v;
  Alcotest.(check int) "block count" 279616 (Designs.Block_design.block_count d);
  Alcotest.(check bool) "sampled packing check" true
    (Designs.Block_design.sampled_packing_check
       ~rng:(Combin.Rng.create 404) ~samples:30 d)

let test_sampled_check_catches_violation () =
  let bad =
    Designs.Block_design.make ~strength:2 ~v:8 ~block_size:3 ~lambda:1
      [| [| 0; 1; 2 |]; [| 0; 1; 3 |]; [| 4; 5; 6 |] |]
  in
  (* With enough samples over C(8,2)=28 pairs, {0,1} is hit. *)
  Alcotest.(check bool) "violation found" false
    (Designs.Block_design.sampled_packing_check
       ~rng:(Combin.Rng.create 1) ~samples:500 bad)

let test_spherical () =
  List.iter
    (fun (q, d) ->
      let design = Designs.Spherical.make ~q ~d in
      check_design (Printf.sprintf "spherical(%d^%d)" q d) design;
      Alcotest.(check int) "block count"
        (Designs.Spherical.block_count ~q ~d)
        (Designs.Block_design.block_count design))
    [ (2, 2); (3, 2); (4, 2); (2, 3); (3, 3) ]

let test_trivial_partition () =
  let d = Designs.Trivial.partition ~v:12 ~r:3 in
  check_design "partition 12/3" d;
  Alcotest.(check int) "blocks" 4 (Designs.Block_design.block_count d);
  Alcotest.check_raises "non-divisible"
    (Invalid_argument "Trivial.partition: r must divide v") (fun () ->
      ignore (Designs.Trivial.partition ~v:13 ~r:3))

let test_trivial_rounds () =
  let d = Designs.Trivial.rounds ~v:12 ~r:4 ~rounds:3 in
  Alcotest.(check int) "lambda" 3 d.Designs.Block_design.lambda;
  Alcotest.(check bool) "1-design" true (Designs.Block_design.is_design d)

let test_trivial_subsets () =
  let d = Designs.Trivial.subsets_design ~v:6 ~r:3 ~count:20 in
  Alcotest.(check int) "all C(6,3)" 20 (Designs.Block_design.block_count d);
  Alcotest.(check bool) "packing" true (Designs.Block_design.is_packing d);
  Alcotest.check_raises "count too large"
    (Invalid_argument "Trivial.subsets_design: count exceeds C(v,r)")
    (fun () -> ignore (Designs.Trivial.subsets_design ~v:6 ~r:3 ~count:21))

let test_trivial_seq_matches_iter =
  qtest ~count:30 "subsets_seq = Subset.iter order"
    QCheck2.Gen.(pair (int_range 1 9) (int_range 1 5))
    (fun (v, r) ->
      let r = min r v in
      let from_seq =
        List.of_seq (Seq.map Array.to_list (Designs.Trivial.subsets_seq ~v ~r))
      in
      let from_iter = ref [] in
      Combin.Subset.iter ~n:v ~k:r (fun c -> from_iter := Array.to_list c :: !from_iter);
      from_seq = List.rev !from_iter)

(* ------------------------------------------------------------------ *)
(* Search *)

let test_exact_steiner_finds_sts7 () =
  match Designs.Packing_search.exact_steiner ~strength:2 ~v:7 ~block_size:3 () with
  | Some d -> check_design "searched STS(7)" d
  | None -> Alcotest.fail "search failed on STS(7)"

let test_exact_steiner_s4511 () =
  match Designs.Packing_search.exact_steiner ~strength:4 ~v:11 ~block_size:5 () with
  | Some d ->
      check_design "S(4,5,11)" d;
      Alcotest.(check int) "66 blocks" 66 (Designs.Block_design.block_count d)
  | None -> Alcotest.fail "search failed on S(4,5,11)"

let test_exact_steiner_none_s4517 () =
  (* Ostergard & Pottonen: no S(4,5,17) exists (the paper's ref [32]).
     The search space is too large to exhaust here; instead check the
     next-best refutation we can afford: no S(2,3,8) exists. *)
  Alcotest.(check bool) "no STS(8)" true
    (Designs.Packing_search.exact_steiner ~strength:2 ~v:8 ~block_size:3 ()
    = None)

let test_greedy_lex_valid =
  qtest ~count:30 "greedy_lex yields a valid packing"
    QCheck2.Gen.(triple (int_range 4 14) (int_range 3 5) (int_range 1 3))
    (fun (v, r, lambda) ->
      let r = min r v in
      let strength = max 1 (r - 1) in
      let d =
        Designs.Packing_search.greedy_lex ~strength ~v ~block_size:r ~lambda ()
      in
      Designs.Block_design.is_packing d)

let test_greedy_lex_maximal_on_sts () =
  (* For 2-(7,3,1) the greedy lexicographic packing is the full STS(7). *)
  let d = Designs.Packing_search.greedy_lex ~strength:2 ~v:7 ~block_size:3 ~lambda:1 () in
  Alcotest.(check int) "7 blocks" 7 (Designs.Block_design.block_count d)

let test_greedy_random_valid () =
  let rng = Combin.Rng.create 5 in
  let d =
    Designs.Packing_search.greedy_random ~rng ~strength:2 ~v:15 ~block_size:3
      ~lambda:1 ()
  in
  Alcotest.(check bool) "valid packing" true (Designs.Block_design.is_packing d);
  Alcotest.(check bool) "non-trivial size" true
    (Designs.Block_design.block_count d > 20)

(* ------------------------------------------------------------------ *)
(* Difference families *)

let test_df_admissible () =
  Alcotest.(check bool) "v=13 r=4" true (Designs.Difference_family.admissible ~v:13 ~r:4);
  Alcotest.(check bool) "v=16 r=4" false (Designs.Difference_family.admissible ~v:16 ~r:4);
  Alcotest.(check bool) "v=41 r=5" true (Designs.Difference_family.admissible ~v:41 ~r:5);
  Alcotest.(check bool) "v=40 r=5" false (Designs.Difference_family.admissible ~v:40 ~r:5)

let test_df_searchable_all_succeed () =
  (* Every curated order must actually be found and develop into a
     verified design. *)
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          if Designs.Difference_family.searchable ~v ~r then begin
            match Designs.Difference_family.find ~v ~r () with
            | None -> Alcotest.fail (Printf.sprintf "search failed v=%d r=%d" v r)
            | Some base ->
                Alcotest.(check bool)
                  (Printf.sprintf "family verifies v=%d r=%d" v r)
                  true
                  (Designs.Difference_family.verify ~v ~r base);
                let d = Designs.Difference_family.develop ~v ~r base in
                Alcotest.(check bool)
                  (Printf.sprintf "developed design v=%d r=%d" v r)
                  true
                  (Designs.Block_design.is_design d)
          end)
        [ 7; 13; 19; 21; 25; 31; 37; 41; 43; 49; 55; 61; 73; 81 ])
    [ 3; 4; 5 ]

let test_df_matches_sts_count () =
  (* Two independent STS constructions must agree on block count. *)
  match Designs.Difference_family.make ~v:37 ~r:3 () with
  | None -> Alcotest.fail "no (37,3,1) DF"
  | Some d ->
      Alcotest.(check int) "37*36/6 blocks"
        (Designs.Block_design.block_count (Designs.Steiner_triple.make 37))
        (Designs.Block_design.block_count d)

let test_df_verify_rejects_bad () =
  (* The base blocks of a valid (13,4,1)-DF with one element corrupted. *)
  match Designs.Difference_family.find ~v:13 ~r:4 () with
  | None -> Alcotest.fail "no (13,4,1) DF"
  | Some base ->
      let bad = Array.map Array.copy base in
      bad.(0).(1) <- (bad.(0).(1) + 1) mod 13;
      Alcotest.(check bool) "corrupted family rejected" false
        (Designs.Difference_family.verify ~v:13 ~r:4 bad)

let test_df_inadmissible_returns_none () =
  Alcotest.(check bool) "v=16 r=4 -> None" true
    (Designs.Difference_family.find ~v:16 ~r:4 () = None)

(* ------------------------------------------------------------------ *)
(* Möbius orbit family *)

let test_mobius_harmonic () =
  (* q = 7: 7 ≡ 1 mod 3, so the harmonic witness exists and has
     stabilizer at least 6. *)
  let f = Galois.Field.of_order 7 in
  match Designs.Mobius_family.harmonic_set f with
  | None -> Alcotest.fail "expected harmonic set for q=7"
  | Some s ->
      let h = Designs.Mobius_family.stabilizer_order f s in
      Alcotest.(check bool) "stab >= 6" true (h >= 6);
      let d = Designs.Mobius_family.design f s in
      Alcotest.(check bool) "orbit is a 3-design" true
        (Designs.Block_design.is_design d)

let test_mobius_design_q13 () =
  let f = Galois.Field.of_order 13 in
  let rng = Combin.Rng.create 17 in
  let s, h = Designs.Mobius_family.search_best f ~rng ~tries:100 in
  let mu = Designs.Mobius_family.mu_of_stab h in
  Alcotest.(check bool) "mu <= 10 found for q=13" true (mu <= 10);
  check_design "orbit design q=13" (Designs.Mobius_family.design f s)

let test_mobius_orbit_size () =
  let f = Galois.Field.of_order 9 in
  let rng = Combin.Rng.create 23 in
  let s, _ = Designs.Mobius_family.search_best f ~rng ~tries:50 in
  let orbit = Designs.Mobius_family.orbit f s in
  Alcotest.(check int) "orbit size formula"
    (Designs.Mobius_family.orbit_size f s)
    (Array.length orbit)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_best_matches_paper () =
  let pick ~strength ~block_size ~max_v =
    match Designs.Registry.best ~strength ~block_size ~max_v () with
    | Some e -> e.Designs.Registry.v
    | None -> -1
  in
  (* Fig. 4 cross-check (r=5 rows are exact paper matches). *)
  Alcotest.(check int) "n=31 r=5 x=1" 25 (pick ~strength:2 ~block_size:5 ~max_v:31);
  Alcotest.(check int) "n=31 r=5 x=2" 26 (pick ~strength:3 ~block_size:5 ~max_v:31);
  Alcotest.(check int) "n=31 r=5 x=3" 23 (pick ~strength:4 ~block_size:5 ~max_v:31);
  Alcotest.(check int) "n=71 r=5 x=1" 65 (pick ~strength:2 ~block_size:5 ~max_v:71);
  Alcotest.(check int) "n=71 r=5 x=2" 65 (pick ~strength:3 ~block_size:5 ~max_v:71);
  Alcotest.(check int) "n=71 r=5 x=3" 71 (pick ~strength:4 ~block_size:5 ~max_v:71);
  Alcotest.(check int) "n=257 r=5 x=2" 257 (pick ~strength:3 ~block_size:5 ~max_v:257);
  Alcotest.(check int) "n=257 r=5 x=3" 243 (pick ~strength:4 ~block_size:5 ~max_v:257);
  Alcotest.(check int) "n=71 r=3 x=1" 69 (pick ~strength:2 ~block_size:3 ~max_v:71);
  Alcotest.(check int) "n=257 r=3 x=1" 255 (pick ~strength:2 ~block_size:3 ~max_v:257)

let test_registry_general_block_size () =
  (* t = 3, r = 6 (erasure-coded stripes): the spherical family over
     GF(5) must be available and materialize correctly. *)
  match Designs.Registry.best ~strength:3 ~block_size:6 ~max_v:31 () with
  | None -> Alcotest.fail "expected a 3-(v,6,1) entry"
  | Some e ->
      Alcotest.(check int) "v = 26" 26 e.Designs.Registry.v;
      check_design "3-(26,6,1)" (Designs.Registry.materialize e)

let test_registry_materialize_consistency () =
  (* Every materialized entry generator must reproduce its advertised
     parameters (checked inside materialize). *)
  List.iter
    (fun (strength, block_size, max_v) ->
      List.iter
        (fun e ->
          if Designs.Registry.is_materialized e && e.Designs.Registry.v <= 70
          then ignore (Designs.Registry.materialize e))
        (Designs.Registry.entries ~strength ~block_size ~max_v ()))
    [ (2, 3, 45); (2, 4, 45); (2, 5, 30); (3, 4, 40); (3, 5, 20); (4, 5, 12) ]

let test_registry_literature_not_materializable () =
  match
    List.find_opt
      (fun e -> not (Designs.Registry.is_materialized e))
      (Designs.Registry.entries ~strength:4 ~block_size:5 ~max_v:30 ())
  with
  | None -> Alcotest.fail "expected a literature entry"
  | Some e ->
      Alcotest.(check bool) "raises" true
        (try
           ignore (Designs.Registry.materialize e);
           false
         with Invalid_argument _ -> true)

let test_registry_entries_sorted_and_bounded =
  qtest ~count:20 "entries sorted by v and within bounds"
    QCheck2.Gen.(pair (int_range 2 5) (int_range 20 120))
    (fun (r, max_v) ->
      List.for_all
        (fun strength ->
          let es = Designs.Registry.entries ~strength ~block_size:r ~max_v () in
          let vs = List.map (fun e -> e.Designs.Registry.v) es in
          List.for_all (fun v -> v <= max_v) vs
          && List.sort compare vs = vs)
        (List.init r (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Chunking *)

let test_chunking_single_design_preferred () =
  (* For n = 69, a single STS(69) is optimal: gap 0. *)
  match Designs.Chunking.best_plan ~strength:2 ~block_size:3 ~n:69 () with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      Alcotest.(check int) "capacity" 782 plan.Designs.Chunking.capacity;
      Alcotest.(check (float 1e-9)) "gap 0" 0.0
        (Designs.Chunking.capacity_gap ~strength:2 ~block_size:3 ~n:69 plan)

let test_chunking_combines_chunks () =
  (* n = 71: no STS(71) or STS(70); best single is 69, but 69 + nothing
     still beats nothing.  The optimizer must use <= 3 chunks summing
     <= n, and capacity must not exceed the ideal bound. *)
  match Designs.Chunking.best_plan ~strength:2 ~block_size:3 ~n:71 () with
  | None -> Alcotest.fail "no plan"
  | Some plan ->
      let total =
        List.fold_left (fun acc (e : Designs.Registry.entry) -> acc + e.v) 0
          plan.Designs.Chunking.chunks
      in
      Alcotest.(check bool) "fits" true (total <= 71);
      Alcotest.(check bool) "chunk count" true
        (List.length plan.Designs.Chunking.chunks <= 3);
      Alcotest.(check bool) "capacity <= ideal" true
        (plan.Designs.Chunking.capacity
        <= Designs.Chunking.ideal_capacity ~strength:2 ~block_size:3
             ~lambda:plan.Designs.Chunking.lambda 71)

let test_chunking_gap_monotone_mu () =
  (* Allowing larger mu can only improve (weakly) the r=5, x=2 gap. *)
  let gap max_mu n =
    match
      Designs.Chunking.best_plan ~max_mu ~strength:3 ~block_size:5 ~n ()
    with
    | None -> 1.0
    | Some plan -> Designs.Chunking.capacity_gap ~strength:3 ~block_size:5 ~n plan
  in
  List.iter
    (fun n ->
      let g1 = gap 1 n and g10 = gap 10 n in
      Alcotest.(check bool)
        (Printf.sprintf "gap(mu<=10) <= gap(mu=1) at n=%d" n)
        true (g10 <= g1 +. 1e-9))
    [ 60; 100; 150 ]

let test_chunking_plans_consistent () =
  (* best_plans (the shared-DP sweep) must agree with per-n best_plan. *)
  let sweep =
    Designs.Chunking.best_plans ~strength:2 ~block_size:3 ~n_lo:60 ~n_hi:75 ()
  in
  Array.iter
    (fun (n, plan) ->
      let solo = Designs.Chunking.best_plan ~strength:2 ~block_size:3 ~n () in
      match (plan, solo) with
      | None, None -> ()
      | Some p, Some s ->
          Alcotest.(check int)
            (Printf.sprintf "same capacity at n=%d" n)
            s.Designs.Chunking.capacity p.Designs.Chunking.capacity
      | _ -> Alcotest.fail (Printf.sprintf "plan presence mismatch at n=%d" n))
    sweep

let test_chunking_cdf_shape =
  qtest ~count:5 "gap_cdf fractions valid"
    (QCheck2.Gen.int_range 2 4)
    (fun r ->
      let cdf =
        Designs.Chunking.gap_cdf ~strength:2 ~block_size:r ~n_lo:50 ~n_hi:80 ()
      in
      List.for_all (fun (g, f) -> g >= 0.0 && g <= 1.0 && f > 0.0 && f <= 1.0) cdf)

let () =
  Alcotest.run "designs"
    [
      ( "block_design",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "coverage_excess" `Quick test_coverage_excess_detects;
          Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
          Alcotest.test_case "relabel" `Quick test_relabel_preserves_design;
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "union mismatch" `Quick test_union_disjoint_mismatch;
          Alcotest.test_case "derived spherical = AG(2,4)" `Quick test_derived_spherical_is_affine;
          Alcotest.test_case "derived STS = matching" `Quick test_derived_sts_is_matching;
          Alcotest.test_case "residual STS packing" `Quick test_residual_sts_is_packing;
        ] );
      ( "families",
        [
          Alcotest.test_case "STS small orders" `Quick test_sts_all_small;
          Alcotest.test_case "STS admissibility" `Quick test_sts_admissible;
          Alcotest.test_case "affine" `Quick test_affine;
          Alcotest.test_case "affine resolution" `Quick test_affine_resolution;
          Alcotest.test_case "Kirkman 27" `Quick test_kirkman_27;
          Alcotest.test_case "projective" `Quick test_projective;
          Alcotest.test_case "Fano plane" `Quick test_fano_plane;
          Alcotest.test_case "unitals" `Quick test_unital;
          Alcotest.test_case "Boolean SQS" `Quick test_quadruple_boolean;
          Alcotest.test_case "searched+doubled SQS" `Slow test_quadruple_searched_and_doubled;
          Alcotest.test_case "SQS constructibility" `Quick test_quadruple_constructible;
          test_one_factorization;
          Alcotest.test_case "spherical designs" `Quick test_spherical;
          Alcotest.test_case "spherical 257 sampled" `Slow test_spherical_huge_sampled;
          Alcotest.test_case "sampled check catches violations" `Quick
            test_sampled_check_catches_violation;
          Alcotest.test_case "partitions" `Quick test_trivial_partition;
          Alcotest.test_case "rounds" `Quick test_trivial_rounds;
          Alcotest.test_case "all subsets" `Quick test_trivial_subsets;
          test_trivial_seq_matches_iter;
        ] );
      ( "search",
        [
          Alcotest.test_case "finds STS(7)" `Quick test_exact_steiner_finds_sts7;
          Alcotest.test_case "finds S(4,5,11)" `Slow test_exact_steiner_s4511;
          Alcotest.test_case "refutes STS(8)" `Quick test_exact_steiner_none_s4517;
          test_greedy_lex_valid;
          Alcotest.test_case "greedy maximal on STS(7)" `Quick test_greedy_lex_maximal_on_sts;
          Alcotest.test_case "greedy random" `Quick test_greedy_random_valid;
        ] );
      ( "difference_family",
        [
          Alcotest.test_case "admissibility" `Quick test_df_admissible;
          Alcotest.test_case "curated orders succeed" `Slow test_df_searchable_all_succeed;
          Alcotest.test_case "matches STS count" `Quick test_df_matches_sts_count;
          Alcotest.test_case "verify rejects corruption" `Quick test_df_verify_rejects_bad;
          Alcotest.test_case "inadmissible None" `Quick test_df_inadmissible_returns_none;
        ] );
      ( "mobius",
        [
          Alcotest.test_case "harmonic witness q=7" `Quick test_mobius_harmonic;
          Alcotest.test_case "design q=13" `Quick test_mobius_design_q13;
          Alcotest.test_case "orbit size" `Quick test_mobius_orbit_size;
        ] );
      ( "registry",
        [
          Alcotest.test_case "paper Fig-4 picks" `Quick test_registry_best_matches_paper;
          Alcotest.test_case "general block size (r=6)" `Quick test_registry_general_block_size;
          Alcotest.test_case "materialize consistency" `Slow test_registry_materialize_consistency;
          Alcotest.test_case "literature not materializable" `Quick
            test_registry_literature_not_materializable;
          test_registry_entries_sorted_and_bounded;
        ] );
      ( "chunking",
        [
          Alcotest.test_case "single design optimal" `Quick test_chunking_single_design_preferred;
          Alcotest.test_case "chunk combination valid" `Quick test_chunking_combines_chunks;
          Alcotest.test_case "mu monotone" `Quick test_chunking_gap_monotone_mu;
          Alcotest.test_case "sweep = per-n plans" `Quick test_chunking_plans_consistent;
          test_chunking_cdf_shape;
        ] );
    ]
