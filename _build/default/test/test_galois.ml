(* Tests for finite fields, polynomial arithmetic and the projective
   line / Möbius machinery. *)

let qtest ?(count = 200) name gen prop =
  (* Fixed random state: property tests must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck2.Test.make ~count ~name gen prop)

let small_orders = [ 2; 3; 4; 5; 7; 8; 9; 11; 13; 16; 25; 27; 32; 49; 64; 81 ]

(* ------------------------------------------------------------------ *)
(* Field construction and axioms *)

let test_is_prime () =
  Alcotest.(check bool) "2" true (Galois.Field.is_prime 2);
  Alcotest.(check bool) "97" true (Galois.Field.is_prime 97);
  Alcotest.(check bool) "1" false (Galois.Field.is_prime 1);
  Alcotest.(check bool) "91" false (Galois.Field.is_prime 91)

let test_is_prime_power () =
  Alcotest.(check (option (pair int int))) "8" (Some (2, 3))
    (Galois.Field.is_prime_power 8);
  Alcotest.(check (option (pair int int))) "81" (Some (3, 4))
    (Galois.Field.is_prime_power 81);
  Alcotest.(check (option (pair int int))) "12" None
    (Galois.Field.is_prime_power 12);
  Alcotest.(check (option (pair int int))) "1" None
    (Galois.Field.is_prime_power 1)

let test_axioms_all_orders () =
  List.iter
    (fun q ->
      let f = Galois.Field.of_order q in
      Alcotest.(check int) (Printf.sprintf "order %d" q) q f.Galois.Field.order;
      Galois.Field.check_axioms f)
    small_orders

let test_bad_orders () =
  Alcotest.check_raises "6 is not a prime power"
    (Invalid_argument "Field.of_order: not a prime power") (fun () ->
      ignore (Galois.Field.of_order 6));
  Alcotest.check_raises "prime 9"
    (Invalid_argument "Field.prime: not a prime") (fun () ->
      ignore (Galois.Field.prime 9))

let test_primitive_element () =
  List.iter
    (fun q ->
      let f = Galois.Field.of_order q in
      if q > 2 then
        Alcotest.(check int)
          (Printf.sprintf "ord(primitive) in GF(%d)" q)
          (q - 1)
          (Galois.Field.element_order f f.Galois.Field.primitive))
    small_orders

let test_inverse_zero () =
  let f = Galois.Field.of_order 9 in
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (f.Galois.Field.inv 0))

let test_pow =
  qtest "pow agrees with iterated mul"
    QCheck2.Gen.(triple (int_range 0 15) (int_range 0 80) (int_range 0 20))
    (fun (qi, a, e) ->
      let q = List.nth small_orders (qi mod List.length small_orders) in
      let f = Galois.Field.of_order q in
      let a = a mod q in
      let rec naive acc i =
        if i = 0 then acc else naive (f.Galois.Field.mul acc a) (i - 1)
      in
      f.Galois.Field.pow a e = naive 1 e)

let test_frobenius_additive () =
  (* x -> x^p is additive in characteristic p. *)
  List.iter
    (fun q ->
      let f = Galois.Field.of_order q in
      let ok = ref true in
      for a = 0 to q - 1 do
        for b = 0 to q - 1 do
          let fr x = Galois.Field.frobenius f 1 x in
          if fr (f.Galois.Field.add a b) <> f.Galois.Field.add (fr a) (fr b)
          then ok := false
        done
      done;
      Alcotest.(check bool)
        (Printf.sprintf "frobenius additive GF(%d)" q)
        true !ok)
    [ 4; 8; 9; 16; 27; 25 ]

let test_frobenius_fixes_prime_field () =
  let f = Galois.Field.gf 3 3 in
  for a = 0 to 2 do
    Alcotest.(check int) "fixes prime subfield" a (Galois.Field.frobenius f 1 a)
  done

let test_extend_embeds_base () =
  let base = Galois.Field.of_order 4 in
  let ext = Galois.Field.extend base 2 in
  for a = 0 to 3 do
    for b = 0 to 3 do
      Alcotest.(check int) "add agrees"
        (base.Galois.Field.add a b)
        (ext.Galois.Field.add a b);
      Alcotest.(check int) "mul agrees"
        (base.Galois.Field.mul a b)
        (ext.Galois.Field.mul a b)
    done
  done;
  Alcotest.(check int) "order" 16 ext.Galois.Field.order;
  Alcotest.(check int) "char" 2 ext.Galois.Field.char

let test_tower_vs_direct () =
  (* GF((2^2)^2) and GF(2^4) are isomorphic; representations differ but
     both must satisfy the field axioms and have the same multiplicative
     structure (element orders divide 15, with a primitive of order 15). *)
  let tower = Galois.Field.extend (Galois.Field.of_order 4) 2 in
  let direct = Galois.Field.gf 2 4 in
  Alcotest.(check int) "same order" direct.Galois.Field.order tower.Galois.Field.order;
  Galois.Field.check_axioms tower;
  Galois.Field.check_axioms direct;
  Alcotest.(check int) "tower primitive order" 15
    (Galois.Field.element_order tower tower.Galois.Field.primitive);
  (* Multiplicative order multiset must agree between representations. *)
  let orders f =
    List.sort compare
      (List.filter_map
         (fun a -> if a = 0 then None else Some (Galois.Field.element_order f a))
         (Galois.Field.elements f))
  in
  Alcotest.(check (list int)) "same order spectrum" (orders direct) (orders tower)

let test_tower_three_levels () =
  (* GF(((2^2)^2)^2) = GF(256): axioms hold three extensions deep. *)
  let f = Galois.Field.extend (Galois.Field.extend (Galois.Field.of_order 4) 2) 2 in
  Alcotest.(check int) "order 256" 256 f.Galois.Field.order;
  Galois.Field.check_axioms f

let test_subfield_closed () =
  let base = Galois.Field.of_order 4 in
  let ext = Galois.Field.extend base 2 in
  for a = 0 to 3 do
    for b = 0 to 3 do
      Alcotest.(check bool) "closed add" true (ext.Galois.Field.add a b < 4);
      Alcotest.(check bool) "closed mul" true (ext.Galois.Field.mul a b < 4)
    done
  done

(* ------------------------------------------------------------------ *)
(* Polynomials *)

let field7 = Galois.Field.prime 7

let poly_gen =
  QCheck2.Gen.(
    map
      (fun l -> Galois.Poly.normalize (Array.of_list l))
      (list_size (int_range 0 6) (int_range 0 6)))

let test_poly_add_commutes =
  qtest "add commutes" (QCheck2.Gen.pair poly_gen poly_gen) (fun (a, b) ->
      Galois.Poly.equal (Galois.Poly.add field7 a b) (Galois.Poly.add field7 b a))

let test_poly_mul_degree =
  qtest "deg(a*b) = deg a + deg b" (QCheck2.Gen.pair poly_gen poly_gen)
    (fun (a, b) ->
      let da = Galois.Poly.degree a and db = Galois.Poly.degree b in
      let dab = Galois.Poly.degree (Galois.Poly.mul field7 a b) in
      if da < 0 || db < 0 then dab = -1 else dab = da + db)

let test_poly_divmod =
  qtest "a = q*b + r with deg r < deg b"
    (QCheck2.Gen.pair poly_gen poly_gen)
    (fun (a, b) ->
      if Galois.Poly.degree b < 0 then true
      else begin
        let q, r = Galois.Poly.divmod field7 a b in
        let recomposed =
          Galois.Poly.add field7 (Galois.Poly.mul field7 q b) r
        in
        Galois.Poly.equal recomposed a
        && Galois.Poly.degree r < Galois.Poly.degree b
      end)

let test_poly_eval_hom =
  qtest "eval is a ring hom"
    QCheck2.Gen.(triple poly_gen poly_gen (int_range 0 6))
    (fun (a, b, x) ->
      let ev p = Galois.Poly.eval field7 p x in
      ev (Galois.Poly.add field7 a b) = field7.Galois.Field.add (ev a) (ev b)
      && ev (Galois.Poly.mul field7 a b) = field7.Galois.Field.mul (ev a) (ev b))

let test_poly_irreducible () =
  (* x^2 + 1 over GF(3) is irreducible (-1 is not a square mod 3); over
     GF(5) it is not (2^2 = -1). *)
  let f3 = Galois.Field.prime 3 and f5 = Galois.Field.prime 5 in
  Alcotest.(check bool) "x^2+1 irred over GF(3)" true
    (Galois.Poly.is_irreducible f3 [| 1; 0; 1 |]);
  Alcotest.(check bool) "x^2+1 reducible over GF(5)" false
    (Galois.Poly.is_irreducible f5 [| 1; 0; 1 |])

let test_find_irreducible () =
  List.iter
    (fun (q, d) ->
      let f = Galois.Field.of_order q in
      let p = Galois.Poly.find_irreducible f d in
      Alcotest.(check int) "degree" d (Galois.Poly.degree p);
      Alcotest.(check bool) "monic" true (Galois.Poly.is_monic f p);
      Alcotest.(check bool) "irreducible" true (Galois.Poly.is_irreducible f p))
    [ (2, 3); (2, 8); (3, 4); (4, 2); (4, 4); (5, 3) ]

(* ------------------------------------------------------------------ *)
(* Projective line / Möbius maps *)

let mobius_field = Galois.Field.of_order 9

let point_gen =
  QCheck2.Gen.int_range 0 mobius_field.Galois.Field.order (* includes ∞ *)

let map_gen =
  QCheck2.Gen.(
    map
      (fun (a, b, c, d) -> { Galois.Pline.a; b; c; d })
      (quad (int_range 0 8) (int_range 0 8) (int_range 0 8) (int_range 0 8)))

let valid_map_gen =
  QCheck2.Gen.(
    map_gen
    |> map (fun m ->
           if Galois.Pline.is_valid mobius_field m then m
           else Galois.Pline.identity))

let test_mobius_bijective =
  qtest "valid maps permute PG(1,q)" valid_map_gen (fun m ->
      let f = mobius_field in
      let pts = Galois.Pline.all_points f in
      let images = Array.map (Galois.Pline.apply f m) pts in
      let sorted = Array.copy images in
      Array.sort compare sorted;
      sorted = pts)

let test_mobius_compose =
  qtest "compose = apply after apply"
    QCheck2.Gen.(triple valid_map_gen valid_map_gen point_gen)
    (fun (m1, m2, z) ->
      let f = mobius_field in
      Galois.Pline.apply f (Galois.Pline.compose f m1 m2) z
      = Galois.Pline.apply f m1 (Galois.Pline.apply f m2 z))

let test_mobius_inverse =
  qtest "inverse undoes apply"
    QCheck2.Gen.(pair valid_map_gen point_gen)
    (fun (m, z) ->
      let f = mobius_field in
      Galois.Pline.apply f (Galois.Pline.inverse f m) (Galois.Pline.apply f m z)
      = z)

let distinct_triple_gen =
  QCheck2.Gen.(
    triple point_gen point_gen point_gen
    |> map (fun (a, b, c) ->
           (* Deterministically disambiguate collisions. *)
           let v = mobius_field.Galois.Field.order + 1 in
           let b = if b = a then (b + 1) mod v else b in
           let c =
             if c = a || c = b then
               let c1 = (c + 1) mod v in
               if c1 = a || c1 = b then (c + 2) mod v else c1
             else c
           in
           (a, b, c)))

let test_cross_ratio_map =
  qtest "to_zero_one_inf hits (0,1,inf)" distinct_triple_gen (fun (p1, p2, p3) ->
      let f = mobius_field in
      let m = Galois.Pline.to_zero_one_inf f p1 p2 p3 in
      Galois.Pline.apply f m p1 = 0
      && Galois.Pline.apply f m p2 = 1
      && Galois.Pline.apply f m p3 = Galois.Pline.infinity f)

let test_from_zero_one_inf =
  qtest "from_zero_one_inf is the inverse" distinct_triple_gen
    (fun (p1, p2, p3) ->
      let f = mobius_field in
      let m = Galois.Pline.from_zero_one_inf f p1 p2 p3 in
      Galois.Pline.apply f m 0 = p1
      && Galois.Pline.apply f m 1 = p2
      && Galois.Pline.apply f m (Galois.Pline.infinity f) = p3)

let test_to_zero_one_inf_requires_distinct () =
  Alcotest.check_raises "duplicate points rejected"
    (Invalid_argument "Pline.to_zero_one_inf: points not distinct") (fun () ->
      ignore (Galois.Pline.to_zero_one_inf mobius_field 3 3 5))

let () =
  Alcotest.run "galois"
    [
      ( "field",
        [
          Alcotest.test_case "is_prime" `Quick test_is_prime;
          Alcotest.test_case "is_prime_power" `Quick test_is_prime_power;
          Alcotest.test_case "axioms (orders up to 81)" `Quick test_axioms_all_orders;
          Alcotest.test_case "bad orders" `Quick test_bad_orders;
          Alcotest.test_case "primitive element" `Quick test_primitive_element;
          Alcotest.test_case "inv 0 raises" `Quick test_inverse_zero;
          test_pow;
          Alcotest.test_case "frobenius additive" `Quick test_frobenius_additive;
          Alcotest.test_case "frobenius fixes GF(p)" `Quick test_frobenius_fixes_prime_field;
          Alcotest.test_case "extend embeds base" `Quick test_extend_embeds_base;
          Alcotest.test_case "subfield closed" `Quick test_subfield_closed;
          Alcotest.test_case "tower vs direct GF(16)" `Quick test_tower_vs_direct;
          Alcotest.test_case "three-level tower" `Quick test_tower_three_levels;
        ] );
      ( "poly",
        [
          test_poly_add_commutes;
          test_poly_mul_degree;
          test_poly_divmod;
          test_poly_eval_hom;
          Alcotest.test_case "irreducibility" `Quick test_poly_irreducible;
          Alcotest.test_case "find_irreducible" `Quick test_find_irreducible;
        ] );
      ( "pline",
        [
          test_mobius_bijective;
          test_mobius_compose;
          test_mobius_inverse;
          test_cross_ratio_map;
          test_from_zero_one_inf;
          Alcotest.test_case "distinctness required" `Quick
            test_to_zero_one_inf_requires_distinct;
        ] );
    ]
