(** Analytical results for Simple(x, λ) placements: Lemma 1, Lemma 2,
    Eqn. 1 and Theorem 1. *)

val max_objects : x:int -> nx:int -> r:int -> lambda:int -> int
(** Lemma 1: a Simple(x, λ) placement on nx nodes hosts at most
    [floor(λ C(nx,x+1) / C(r,x+1))] objects. *)

val lambda_min : x:int -> nx:int -> r:int -> mu:int -> b:int -> int
(** Eqn. 1: the minimal λ (a multiple of μ) such that
    [b <= λ C(nx,x+1) / C(r,x+1)], given that a Simple(x, μ) design
    exists on nx nodes.  @raise Invalid_argument if
    [μ C(nx,x+1)/C(r,x+1)] is not integral. *)

type lb_report = {
  lb : int;  (** the raw Lemma-2 bound; negative means vacuous *)
  lb_clamped : int;  (** [max 0 lb], the usable guarantee *)
  failed_ub : int;
      (** the subtracted term [⌊λ C(k,x+1) / C(s,x+1)⌋]: an upper bound
          on objects the worst-case adversary can fail *)
  vacuous : bool;  (** [lb <= 0]: the bound says nothing *)
}
(** Labeled result of Lemma 2, replacing the bare [int] of the old
    positional API: call sites name the field they mean instead of
    re-deriving clamping and vacuity ad hoc. *)

val lb_avail_si_report :
  ?choose:(int -> int -> int) ->
  b:int -> x:int -> lambda:int -> k:int -> s:int -> unit -> lb_report
(** Lemma 2: [lbAvail_si = b - floor(λ C(k,x+1) / C(s,x+1))].  [choose]
    defaults to {!Combin.Binomial.exact}; grid sweeps pass
    {!Instance.choose} to reuse one memoized table. *)

type competitive = {
  c : float;  (** the competitive factor of Theorem 1 *)
  alpha : float;  (** the additive slack α *)
}

val theorem1 : x:int -> nx:int -> r:int -> s:int -> k:int -> mu:int -> competitive option
(** Theorem 1's constants, or [None] when the precondition
    [C(r,x+1) C(k,x+1) < C(nx,x+1) C(s,x+1)] fails (c would be ≤ 0 or
    infinite).  For any placement π' and Simple(x,λ) placement π:
    [Avail(π') < c·Avail(π) + α]. *)

val competitive_limit_fraction : x:int -> nx:int -> k:int -> float
(** The illustration after Theorem 1 for s = r:
    [1 - (k(k-1)...(k-x)) / (nx(nx-1)...(nx-x))], the asymptotic fraction
    of optimal availability guaranteed as b → ∞. *)

val ub_avail_any : b:int -> r:int -> s:int -> n:int -> k:int -> int
(** A counting upper bound on [Avail(π)] valid for {e every} placement π
    (not in the paper; complements Theorem 1 from above):

    the k most-loaded nodes carry [L ≥ ⌈k·r·b/n⌉] replicas; failing them
    leaves each surviving object with ≤ s−1 replicas inside K and each
    failed one with ≤ min(r,k), so with m = min(r,k)

    [Avail ≤ ⌊(m·b − L) / (m − s + 1)⌋],

    clamped to [0, b].  Tight for s = r = m; used to sandwich the optimal
    placement in tests and in the planner CLI. *)
