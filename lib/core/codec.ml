let magic = "# replica-placement layout v1"
let schema = "placement/v1"

module J = Telemetry.Json

let json_envelope ~command data =
  J.Obj [ ("schema", J.Str schema); ("command", J.Str command); ("data", data) ]

let params_json (p : Params.t) =
  J.Obj
    [
      ("n", J.Int p.n);
      ("b", J.Int p.b);
      ("r", J.Int p.r);
      ("s", J.Int p.s);
      ("k", J.Int p.k);
    ]

let opt_int = function Some v -> J.Int v | None -> J.Null
let opt_float = function Some v -> J.Float v | None -> J.Null

let rnd_report_json (r : Random_analysis.rnd_report) =
  J.Obj
    [
      ("p_fail", J.Float r.p_fail);
      ("pr_avail", J.Int r.pr_avail);
      ("fraction", J.Float r.fraction);
      ("lemma4_upper", opt_float r.lemma4_upper);
    ]

let report_json (r : Strategy.report) =
  J.Obj
    [
      ("strategy", J.Str r.strategy);
      ( "capabilities",
        J.List
          (List.map
             (fun c -> J.Str (Strategy.capability_name c))
             r.capabilities) );
      ("params", params_json r.params);
      ("lower_bound", opt_int r.lower_bound);
      ("upper_bound", J.Int r.upper_bound);
      ("notes", J.List (List.map (fun l -> J.Str l) r.notes));
    ]

let attack_json ~s layout (a : Adversary.attack) =
  J.Obj
    [
      ("failed_nodes", J.List (List.map (fun nd -> J.Int nd) (Array.to_list a.failed_nodes)));
      ("failed_objects", J.Int a.failed_objects);
      ("available", J.Int (Adversary.avail layout ~s a));
      ("exact", J.Bool a.exact);
    ]

let to_string (layout : Layout.t) =
  let buf = Buffer.create (32 * Layout.b layout) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "n %d\n" layout.Layout.n);
  Buffer.add_string buf (Printf.sprintf "r %d\n" layout.Layout.r);
  Buffer.add_string buf (Printf.sprintf "b %d\n" (Layout.b layout));
  Array.iteri
    (fun obj rep ->
      Buffer.add_string buf (Printf.sprintf "obj %d" obj);
      Array.iter (fun nd -> Buffer.add_string buf (Printf.sprintf " %d" nd)) rep;
      Buffer.add_char buf '\n')
    layout.Layout.replicas;
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_int lineno what s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err lineno (Printf.sprintf "expected %s, got %S" what s)
  in
  let ( let* ) = Result.bind in
  match lines with
  | (l1, header) :: (l2, nline) :: (l3, rline) :: (l4, bline) :: rest ->
      let* () = if header = magic then Ok () else err l1 "bad header" in
      let field lineno name line =
        match String.split_on_char ' ' line with
        | [ key; value ] when key = name -> parse_int lineno name value
        | _ -> err lineno (Printf.sprintf "expected %S field" name)
      in
      let* n = field l2 "n" nline in
      let* r = field l3 "r" rline in
      let* b = field l4 "b" bline in
      let* () =
        if n >= 1 && r >= 1 && r <= n && b >= 0 then Ok ()
        else err l4 "inconsistent n/r/b"
      in
      let replicas = Array.make b [||] in
      let rec objs expected = function
        | [] ->
            if expected = b then Ok ()
            else Error (Printf.sprintf "expected %d objects, found %d" b expected)
        | (lineno, line) :: rest -> (
            match String.split_on_char ' ' line with
            | "obj" :: id :: nodes ->
                let* id = parse_int lineno "object id" id in
                let* () =
                  if id = expected then Ok ()
                  else err lineno (Printf.sprintf "expected object %d" expected)
                in
                let* () =
                  if List.length nodes = r then Ok ()
                  else err lineno (Printf.sprintf "expected %d replicas" r)
                in
                let* parsed =
                  List.fold_left
                    (fun acc s ->
                      let* acc = acc in
                      let* v = parse_int lineno "node" s in
                      if v < 0 || v >= n then err lineno "node out of range"
                      else Ok (v :: acc))
                    (Ok []) nodes
                in
                let rep = Combin.Intset.of_array (Array.of_list parsed) in
                let* () =
                  if Array.length rep = r then Ok ()
                  else err lineno "duplicate replica nodes"
                in
                replicas.(id) <- rep;
                objs (expected + 1) rest
            | _ -> err lineno "expected an obj line")
      in
      let* () = objs 0 rest in
      Ok (Layout.make ~n ~r replicas)
  | _ -> Error "truncated input (need header, n, r, b)"

let save path layout =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string layout))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string (really_input_string ic len))
