(** Worst-case analysis of the Random placement strategy (Sec. IV-A).

    Theorem 2 gives the large-ℓ limit of the vulnerability
    Vuln_rnd(f) — the expected number of (K, F) pairs with |K| = k,
    |F| ≥ f and every object of F failed by K:

    Vuln_rnd(f) → C(n,k) · P(Bin(b, p) ≥ f),
    p = α(n,k,r,s) / C(n,r),
    α(n,k,r,s) = Σ_{{s'=s}}^{{min(r,k)}} C(k,s') C(n-k, r-s').

    Definition 6 then sets prAvail_rnd = b − max{{f : Vuln_rnd(f) ≥ 1}}.
    Everything is computed in log space ({!Combin.Logspace}) since p can
    be ~1e-12 while b reaches 38400. *)

val alpha : n:int -> k:int -> r:int -> s:int -> float
(** α(n,k,r,s): the number of r-subsets placing ≥ s replicas inside a
    fixed k-set.  Computed in floating point from exact binomials. *)

type rnd_report = {
  p_fail : float;
      (** p = α / C(n,r): probability that one object (placed uniformly
          on r distinct nodes) loses ≥ s replicas to a fixed k-set *)
  pr_avail : int;  (** Definition 6's prAvail_rnd, in [0, b] *)
  fraction : float;  (** [pr_avail / b], the quantity plotted in Fig. 8 *)
  lemma4_upper : float option;
      (** Lemma 4's upper bound [b (1 − 1/b)^(k·⌊ℓ⌋)]; [Some] exactly
          when it applies (s = 1 and 2k < n) *)
}
(** The full worst-case characterization of Random placement for one
    parameter cell, replacing the positional one-float-per-call API. *)

val report : Params.t -> rnd_report

val log_vuln : Params.t -> f:int -> float
(** ln Vuln_rnd(f) in the Theorem-2 limit. *)

val pr_avail : Params.t -> int
(** Definition 6's prAvail_rnd: [b − max {f : Vuln_rnd(f) ≥ 1}].
    (Vuln_rnd(0) ≥ 1 always, so the result is well defined and in
    [0, b].) *)
