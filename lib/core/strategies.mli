(** The built-in placement families as registered {!Strategy.S} modules.

    Linking this module (any lookup below) registers all six families —
    [simple], [combo], [random], [copyset], [adaptive], [optimal] — into
    the {!Strategy} registry; consumers should resolve names through
    these wrappers so registration is guaranteed to have happened. *)

val find : string -> (module Strategy.S) option

val get : string -> (module Strategy.S)
(** @raise Invalid_argument on an unknown name, with a message listing
    the registered strategies. *)

val names : unit -> string list

val all : unit -> (module Strategy.S) list

val display_name : (module Strategy.S) -> string
(** Capitalized registry name, e.g. ["Combo"] — the spelling the CLI's
    report lines use. *)
