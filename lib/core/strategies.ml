(* The six built-in placement families behind one Strategy.S interface.

   Shared conventions:
   - randomized families default their rng to seed 42 (matching the CLI's
     default --seed), deterministic ones ignore it;
   - lower_bound is the Lemma-2/3 worst-case guarantee where the family
     has one.  Random and Copyset get the x = 0 instance of Lemma 2: a
     layout whose max per-node load is λ is a Simple(0, λ) placement, so
     at most ⌊λ·C(k,1)/C(s,1)⌋ = ⌊λk/s⌋ objects die.  For Random the cap
     ⌈r·b/n⌉ bounds λ a priori; Copyset needs the realized layout. *)

let default_rng rng = match rng with Some r -> r | None -> Combin.Rng.create 42

(* Lemma 2 at x = 0 with λ = the layout's max load (clamped at 0). *)
let load_bound inst lambda =
  let p = Instance.params inst in
  (Analysis.lb_avail_si_report ~choose:(Instance.choose inst) ~b:p.Params.b
     ~x:0 ~lambda ~k:p.Params.k ~s:p.Params.s ())
    .Analysis.lb_clamped

module Combo_s = struct
  let name = "combo"
  let describe =
    "Combo(<lambda_x>): the Sec. III-B1 dynamic program over Simple(x, lambda) levels \
     (Lemma 3 guarantee)"

  let capabilities = [ Strategy.Deterministic ]
  let plan ?rng:_ inst = Instance.combo_layout inst
  let lower_bound ?layout:_ inst = Some (Instance.combo_config inst).Combo.lb

  let explain inst =
    let cfg = Instance.combo_config inst in
    let lines = ref [] in
    Array.iteri
      (fun x lambda ->
        if lambda > 0 then begin
          let level = cfg.Combo.levels.(x) in
          let design =
            match level.Combo.entry with
            | Some e -> e.Designs.Registry.name
            | None -> "-"
          in
          lines :=
            Printf.sprintf "Simple(%d, %d): nx=%d design=%s objects=%d" x lambda
              level.Combo.nx design cfg.Combo.assigned.(x)
            :: !lines
        end)
      cfg.Combo.lambdas;
    List.rev !lines
end

module Simple_s = struct
  let name = "simple"
  let describe =
    "best single Simple(x, lambda) level: the materialized design maximizing the \
     Lemma 2 bound"

  let capabilities = [ Strategy.Deterministic ]

  (* The level (with its Eqn-1 minimal λ) maximizing lbAvail_si; only
     materialized designs qualify so the bound talks about the layout
     plan actually builds. *)
  let best_level inst =
    let p = Instance.params inst in
    let best = ref None in
    Array.iter
      (fun (level : Combo.level) ->
        match level.Combo.entry with
        | Some e when level.Combo.cap_mu > 0 && Designs.Registry.is_materialized e ->
            let copies = (p.Params.b + level.Combo.cap_mu - 1) / level.Combo.cap_mu in
            let lambda = max 1 copies * level.Combo.mu in
            let lb =
              (Analysis.lb_avail_si_report ~choose:(Instance.choose inst)
                 ~b:p.Params.b ~x:level.Combo.x ~lambda ~k:p.Params.k
                 ~s:p.Params.s ())
                .Analysis.lb_clamped
            in
            (match !best with
            | Some (_, _, best_lb) when best_lb >= lb -> ()
            | _ -> best := Some (level, lambda, lb))
        | _ -> ())
      (Instance.levels inst);
    !best

  let plan ?rng:_ inst =
    match best_level inst with
    | None ->
        invalid_arg
          (Format.asprintf "simple: no materialized design for %a" Instance.pp inst)
    | Some (level, _, _) ->
        let e = Option.get level.Combo.entry in
        let p = Instance.params inst in
        (Simple.of_entry e ~n:p.Params.n ~b:p.Params.b).Simple.layout

  let lower_bound ?layout:_ inst =
    Option.map (fun (_, _, lb) -> lb) (best_level inst)

  let explain inst =
    match best_level inst with
    | None -> [ "no materialized design available for these parameters" ]
    | Some (level, lambda, _) ->
        let e = Option.get level.Combo.entry in
        [
          Printf.sprintf "Simple(%d, %d): nx=%d design=%s objects=%d" level.Combo.x
            lambda level.Combo.nx e.Designs.Registry.name
            (Instance.params inst).Params.b;
        ]
end

module Random_s = struct
  let name = "random"
  let describe =
    "load-balanced uniform placement (Definition 4); guarantee from the \
     ceil(r*b/n) load cap, probable availability from Theorem 2"

  let capabilities = [ Strategy.Randomized; Strategy.Load_balanced ]
  let plan ?rng inst = Instance.random_layout ~rng:(default_rng rng) inst

  let lower_bound ?layout inst =
    let lambda =
      match layout with
      | Some l -> Layout.max_load l
      | None -> Instance.load_cap inst
    in
    Some (load_bound inst lambda)

  let explain inst =
    let p = Instance.params inst in
    [
      Printf.sprintf "load cap ceil(r*b/n) = %d replicas/node (Definition 4)"
        (Instance.load_cap inst);
      Printf.sprintf "probable availability (Definition 6): %d / %d"
        (Instance.pr_avail inst) p.Params.b;
    ]
end

module Copyset_s = struct
  let name = "copyset"
  let describe =
    "copyset replication (Cidon et al. 2013), scatter width 2(r-1); a \
     Simple(0, lambda) placement in the paper's vocabulary"

  let capabilities = [ Strategy.Randomized ]
  let plan ?rng inst = snd (Instance.copyset ~rng:(default_rng rng) inst)

  let lower_bound ?layout inst =
    let layout = match layout with Some l -> l | None -> plan inst in
    Some (load_bound inst (Layout.max_load layout))

  let explain inst =
    let p = Instance.params inst in
    let sw = 2 * (p.Params.r - 1) in
    [
      Printf.sprintf
        "scatter width %d => %d permutations of %d nodes chopped into copysets" sw
        ((sw + p.Params.r - 2) / (p.Params.r - 1))
        p.Params.n;
    ]
end

module Adaptive_s = struct
  let name = "adaptive"
  let describe =
    "online Combo (Sec. IV-D future work): objects routed to the level whose \
     effective lambda grows least"

  let capabilities = [ Strategy.Deterministic; Strategy.Online ]

  let state inst =
    let p = Instance.params inst in
    let t =
      Adaptive.create ~n:p.Params.n ~r:p.Params.r ~s:p.Params.s ~k:p.Params.k ()
    in
    ignore (Adaptive.add_many t p.Params.b);
    t

  let plan ?rng:_ inst = Adaptive.layout (state inst)
  let lower_bound ?layout:_ inst = Some (Adaptive.lower_bound (state inst))

  let explain inst =
    let t = state inst in
    [
      Printf.sprintf "effective lambda per level: %s"
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Adaptive.lambdas t))));
      Printf.sprintf "offline DP at the same population would guarantee %d"
        (Adaptive.optimal_bound t);
    ]
end

module Optimal_s = struct
  let name = "optimal"
  let describe =
    "exhaustive search for the availability-optimal placement (tiny instances \
     only; raises over budget)"

  let capabilities = [ Strategy.Deterministic; Strategy.Exact_small ]

  let best inst =
    let p = Instance.params inst in
    Optimal.best ~n:p.Params.n ~r:p.Params.r ~s:p.Params.s ~k:p.Params.k
      ~b:p.Params.b ()

  let affordable inst =
    let p = Instance.params inst in
    Optimal.search_cost ~n:p.Params.n ~r:p.Params.r ~k:p.Params.k ~b:p.Params.b
    <= 5e8

  let plan ?rng:_ inst = snd (best inst)

  let lower_bound ?layout:_ inst =
    if affordable inst then Some (fst (best inst)) else None

  let explain inst =
    let p = Instance.params inst in
    if affordable inst then
      [ Printf.sprintf "exhaustive search over all placements of %d objects" p.Params.b ]
    else
      [
        Printf.sprintf "search cost %.3g exceeds the 5e8 budget: not computable"
          (Optimal.search_cost ~n:p.Params.n ~r:p.Params.r ~k:p.Params.k
             ~b:p.Params.b);
      ]
end

let () =
  List.iter Strategy.register
    [
      (module Simple_s : Strategy.S);
      (module Combo_s : Strategy.S);
      (module Random_s : Strategy.S);
      (module Copyset_s : Strategy.S);
      (module Adaptive_s : Strategy.S);
      (module Optimal_s : Strategy.S);
    ]

let find = Strategy.find
let names = Strategy.names
let all = Strategy.all

let get name =
  match Strategy.find name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown strategy %S; available: %s" name
           (String.concat ", " (Strategy.names ())))

let display_name (module M : Strategy.S) = String.capitalize_ascii M.name
