(** A first-class placement problem instance: the paper's parameters
    (n, r, s, k, b) bundled with memoized combinatorial tables that every
    consumer — CLI subcommands, experiment grids, examples, strategies —
    shares instead of re-deriving per call site.

    The cached tables are:

    - the exact binomial rows C(m, j) for m ≤ n, j ≤ max r s (the
      quantities of Lemmas 1–3: packing capacities λ·C(nx,x+1)/C(r,x+1)
      and loss terms λ·C(k,x+1)/C(s,x+1));
    - the per-x capacity/design table from the design registry
      ({!Combo.default_levels}), i.e. the Sec. III-C nx selection;
    - the adversary work estimate C(n,k)·(r·b/n) used by
      {!Adversary.attack}'s exact-vs-heuristic dispatch.

    {b Domain safety}: a [t] is immutable after construction — all tables
    are built eagerly in {!make}/{!of_params}, never lazily — so it can be
    shared read-only across {!Engine.Pool} domains.  Derived cells
    ({!with_cell}) alias the parent's tables; building one is O(1).

    Grid sweeps should build one instance per (n, r, s) table and derive
    each (b, k) cell with {!with_cell}: the binomial rows and the registry
    scan are then paid once per table instead of once per cell (see
    [bench/main.exe perf], which tracks the measured speedup in
    [BENCH_analysis.json]). *)

type t

val make : ?max_mu:int -> b:int -> r:int -> s:int -> n:int -> k:int -> unit -> t
(** Validate the Fig. 1 constraints and build all tables eagerly.
    [max_mu] (default 1) bounds the design multiplicity considered by the
    level table.  @raise Invalid_argument on invalid parameters. *)

val of_params : ?max_mu:int -> Params.t -> t

val with_params : t -> Params.t -> t
(** Re-target the instance at new parameters.  The cached tables are
    reused when (n, r, s) and [max_mu] are unchanged (O(1)); otherwise
    they are rebuilt from scratch. *)

val with_cell : t -> b:int -> k:int -> t
(** [with_params] for a (b, k) grid cell of the same (n, r, s) table;
    always reuses the tables.  @raise Invalid_argument on invalid b/k. *)

val params : t -> Params.t
val pp : Format.formatter -> t -> unit

(** {2 Cached combinatorics} *)

val choose : t -> int -> int -> int
(** [choose t m j] is C(m, j) by table lookup for m ≤ n and j ≤ max r s,
    falling back to {!Combin.Binomial.exact} outside the table (or where
    the table saturated).  Pass this to {!Combo.optimize},
    {!Combo.lb_avail_co} and {!Analysis.lb_avail_si_report}. *)

val log_choose : t -> int -> int -> float
(** ln C(m, j), via the globally cached log-factorials. *)

val levels : t -> Combo.level array
(** The per-x design/capacity table for this (n, r, s) — one registry
    scan per instance, not per optimize call. *)

val level_capacity : t -> x:int -> int
(** [cap_mu] of level x: objects hosted per μ-copy of the selected
    design, μx·C(nx,x+1)/C(r,x+1) (0 when no design exists). *)

val load_cap : t -> int
val average_load : t -> float

val attack_cost : t -> float
(** The adversary's estimated exact-search work, C(n,k)·(r·b/n) — the
    same quantity {!Adversary.attack} compares against its
    [exact_limit]. *)

val exact_attack_affordable : ?limit:float -> t -> bool
(** [attack_cost t <= limit] (default 5e7, {!Adversary.attack}'s
    default). *)

(** {2 Derived placements and analyses}

    Convenience constructors deduplicating the
    params-plan-materialize-analyze boilerplate that consumers (CLI,
    examples) otherwise repeat. *)

val combo_config : t -> Combo.config
(** {!Combo.optimize} over the cached levels and binomial table. *)

val combo_layout : ?spread:bool -> ?config:Combo.config -> t -> Layout.t
(** Materialize [config] (default: {!combo_config}). *)

val random_layout : rng:Combin.Rng.t -> t -> Layout.t
(** Load-balanced Random placement (Definition 4); draws from [rng]. *)

val copyset : rng:Combin.Rng.t -> ?scatter_width:int -> t -> Copyset.t * Layout.t
(** Copyset replication baseline; [scatter_width] defaults to 2(r−1). *)

val pr_avail : t -> int
(** Definition 6's prAvail_rnd for these parameters. *)

val pr_avail_fraction : t -> float

val rnd_report : t -> Random_analysis.rnd_report
(** The full {!Random_analysis.report} for these parameters. *)

val attack : ?pool:Engine.Pool.t -> ?rng:Combin.Rng.t -> t -> Layout.t -> Adversary.attack
(** {!Adversary.best} at this instance's s and k. *)

val avail : t -> Layout.t -> Adversary.attack -> int
