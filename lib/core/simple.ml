type t = {
  layout : Layout.t;
  x : int;
  nx : int;
  mu : int;
  lambda : int;
}

let of_design ?(spread = false) (d : Designs.Block_design.t) ~n ~b =
  if b < 1 then invalid_arg "Simple.of_design: b < 1";
  if d.v > n then invalid_arg "Simple.of_design: design larger than node set";
  let cap = Designs.Block_design.block_count d in
  if cap = 0 then invalid_arg "Simple.of_design: empty design";
  let copies = (b + cap - 1) / cap in
  (* With [spread], each copy of the design is rotated to a different
     slice of the node ring.  Every copy remains a Simple(x, μ) placement
     (an injective relabelling), and a union of Simple(x, μ) placements
     is a Simple(x, copies·μ) placement — overlap counts add — so the
     achieved λ is unchanged while the load reaches all n nodes instead
     of only the design's nx (Observation 2's imbalance concern). *)
  let offset c = if spread then c * (max 1 (n / copies)) mod n else 0 in
  let replicas =
    Array.init b (fun obj ->
        let copy = obj / cap in
        let off = offset copy in
        let blk = Array.map (fun p -> (p + off) mod n) d.blocks.(obj mod cap) in
        Array.sort compare blk;
        blk)
  in
  {
    layout = Layout.make ~n ~r:d.block_size replicas;
    x = d.strength - 1;
    nx = d.v;
    mu = d.lambda;
    lambda = copies * d.lambda;
  }

let of_blocks_seq ~x ~v ~r ~capacity ~n ~b seq =
  if b < 1 then invalid_arg "Simple.of_blocks_seq: b < 1";
  if v > n then invalid_arg "Simple.of_blocks_seq: v > n";
  let take = min b capacity in
  let first = Array.make take [||] in
  let i = ref 0 in
  Seq.iter
    (fun blk ->
      if !i < take then begin
        first.(!i) <- blk;
        incr i
      end)
    (Seq.take take seq);
  if !i <> take then invalid_arg "Simple.of_blocks_seq: stream shorter than capacity";
  let copies = (b + capacity - 1) / capacity in
  let replicas = Array.init b (fun obj -> Array.copy first.(obj mod take)) in
  {
    layout = Layout.make ~n ~r replicas;
    x;
    nx = v;
    mu = 1;
    lambda = copies;
  }

let of_entry ?(spread = false) (e : Designs.Registry.entry) ~n ~b =
  if e.strength = e.block_size then
    (* Complete family: stream the r-subsets instead of materializing
       C(v, r) blocks. *)
    of_blocks_seq ~x:(e.strength - 1) ~v:e.v ~r:e.block_size
      ~capacity:e.blocks ~n ~b
      (Designs.Trivial.subsets_seq ~v:e.v ~r:e.block_size)
  else of_design ~spread (Designs.Registry.materialize e) ~n ~b

let lower_bound t ~k ~s =
  (Analysis.lb_avail_si_report ~b:(Layout.b t.layout) ~x:t.x ~lambda:t.lambda
     ~k ~s ())
    .Analysis.lb_clamped
