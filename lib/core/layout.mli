(** A placement π : O → 2^N (Fig. 1): each of the [b] objects is mapped to
    the set of [r] distinct nodes hosting its replicas. *)

type t = private {
  n : int;  (** number of nodes *)
  r : int;  (** replicas per object *)
  replicas : int array array;
      (** [replicas.(obj)] is the sorted array of the r nodes hosting
          replicas of [obj] *)
  mutable node_objs : int array array option;
      (** memoized inverted index; use {!node_objects}, never this field *)
  mutable node_csr : Combin.Csr.t option;
      (** memoized flat inverted index; use {!incidence}, never this field *)
}

val make : n:int -> r:int -> int array array -> t
(** Validates every replica set (size r, sorted, distinct, in range).
    @raise Invalid_argument on malformed input. *)

val b : t -> int
(** Number of objects. *)

val node_objects : t -> int array array
(** Inverted index: [(node_objects t).(nd)] lists the objects with a
    replica on node [nd].  Built in O(n + r·b) on first use and memoized
    in the layout, so every caller shares one physical index — treat the
    result as read-only. *)

val incidence : t -> Combin.Csr.t
(** The node → objects inverted index as a flat {!Combin.Csr.t}: row
    [nd] lists the objects with a replica on node [nd], ascending.
    Built by one counting-sort pass over the replica table (no boxed
    intermediate) and memoized, so every {!Kernel.t} over this layout
    shares one off-heap index.  Treat the result as immutable. *)

val loads : t -> int array
(** Replica count per node. *)

val max_load : t -> int

val is_load_balanced : t -> cap:int -> bool
(** Every node hosts at most [cap] replicas (Definition 4's constraint). *)

val failed_objects : t -> s:int -> failed_nodes:int array -> int
(** Number of objects with at least [s] replicas on [failed_nodes]
    (sorted).  The quantity minimized over failure sets in Definition 1. *)

val avail : t -> s:int -> failed_nodes:int array -> int
(** [b t - failed_objects t ~s ~failed_nodes]. *)

val scatter_widths : t -> int array
(** Per node: the number of {e distinct} other nodes co-hosting at least
    one object with it.  Copyset replication's S; for random placements
    it approaches n−1, for design-based placements it is structured. *)

val concat : t list -> t
(** Concatenate the object lists of placements over the same node set.
    @raise Invalid_argument on mismatched [n] or [r]. *)

val shift : t -> offset:int -> n:int -> t
(** Embed into a larger node set, renaming node [p] to [p + offset]
    (chunked placements, Observation 2). *)
