(** Plain-text serialization of placements.

    A deliberately boring line format so layouts can be exported from the
    planner, versioned, diffed, and re-attacked later (see the
    [placement_tool simulate --out] / [attack] subcommands):

    {v
    # replica-placement layout v1
    n 31
    r 3
    b 600
    obj 0 2 11 27
    obj 1 ...
    v}

    Object lines must appear in id order 0..b-1; replica nodes are
    space-separated and may be in any order (they are normalized on
    read). *)

val schema : string
(** ["placement/v1"]: the version tag on every JSON document the tool
    emits.  Bump only on breaking changes to the envelope or payloads. *)

val json_envelope : command:string -> Telemetry.Json.t -> Telemetry.Json.t
(** [{"schema": "placement/v1", "command": command, "data": data}] — the
    one wrapper every machine-readable output goes through, so consumers
    can dispatch on [schema]/[command] before touching the payload. *)

val params_json : Params.t -> Telemetry.Json.t
val rnd_report_json : Random_analysis.rnd_report -> Telemetry.Json.t
val report_json : Strategy.report -> Telemetry.Json.t

val attack_json : s:int -> Layout.t -> Adversary.attack -> Telemetry.Json.t
(** The attack outcome plus the derived availability at threshold [s]. *)

val to_string : Layout.t -> string

val of_string : string -> (Layout.t, string) result
(** Parse; returns [Error msg] with a line-numbered message on malformed
    input (wrong header, out-of-range nodes, duplicate replicas, missing
    or out-of-order objects...). *)

val save : string -> Layout.t -> unit
(** Write to a file.  @raise Sys_error on IO failure. *)

val load : string -> (Layout.t, string) result
(** Read from a file; IO failures are returned as [Error]. *)
