(** Pluggable placement strategies over a shared {!Instance}.

    Every placement family in the repo — Simple, Combo, Random, Copyset,
    Adaptive, Optimal — implements the one module type {!S}, and a
    name-keyed registry makes them discoverable by every consumer layer
    (CLI [--strategy] dispatch, experiment drivers, examples) without
    hand-wired parameter plumbing per family.

    Use {!Strategies} (which registers the six built-in families as a
    side effect of linking) rather than this module directly when looking
    strategies up; {!register} is exposed so tests and downstream code
    can add their own families to the same dispatch surface. *)

type capability =
  | Deterministic  (** [plan] ignores its [rng] *)
  | Randomized  (** [plan] draws from [rng] (default seed 42) *)
  | Load_balanced
      (** the planned layout provably respects the ⌈r·b/n⌉ load cap *)
  | Online  (** supports incremental object arrival/departure *)
  | Exact_small
      (** exhaustive search; [plan] raises on instances over budget *)

val capability_name : capability -> string

module type S = sig
  val name : string
  (** Registry key, lowercase (e.g. ["combo"]). *)

  val describe : string
  (** One-line human description for listings. *)

  val capabilities : capability list

  val plan : ?rng:Combin.Rng.t -> Instance.t -> Layout.t
  (** Produce a placement for the instance.  Strategies with
      {!Randomized} default [rng] to [Combin.Rng.create 42]; strategies
      with {!Exact_small} may raise (e.g. {!Optimal.Too_large}) when the
      instance exceeds their search budget. *)

  val lower_bound : ?layout:Layout.t -> Instance.t -> int option
  (** Worst-case availability guarantee (Lemmas 2–3) for the planned
      layout, or [None] when the family offers none.  For strategies
      whose bound depends on the realized layout (Copyset), pass the
      layout returned by [plan]; without it the bound refers to a plan
      with the default rng. *)

  val explain : Instance.t -> string list
  (** Plan summary lines (design selection, λ per level, ...) for the
      CLI's [plan] subcommand; may be empty. *)
end

type lb_report = Analysis.lb_report = {
  lb : int;
  lb_clamped : int;
  failed_ub : int;
  vacuous : bool;
}
(** Re-export of {!Analysis.lb_report} (Lemma 2). *)

type rnd_report = Random_analysis.rnd_report = {
  p_fail : float;
  pr_avail : int;
  fraction : float;
  lemma4_upper : float option;
}
(** Re-export of {!Random_analysis.rnd_report} (Theorem 2 / Lemma 4). *)

type report = {
  strategy : string;  (** registry name *)
  capabilities : capability list;
  params : Params.t;  (** the analyzed cell *)
  lower_bound : int option;  (** the family's worst-case guarantee *)
  upper_bound : int;  (** {!Analysis.ub_avail_any}: valid for any π *)
  notes : string list;  (** the strategy's [explain] lines *)
}
(** One strategy's structured answer for one instance: what every
    consumer (CLI JSON envelope, experiment tables, tests) reads instead
    of re-assembling positional pieces per family. *)

val report : ?layout:Layout.t -> (module S) -> Instance.t -> report
(** Assemble a {!report}; [layout] is forwarded to [lower_bound] for
    families whose bound depends on the realized layout. *)

val register : (module S) -> unit
(** @raise Invalid_argument on a duplicate name. *)

val find : string -> (module S) option
val names : unit -> string list
(** Registered names, sorted. *)

val all : unit -> (module S) list
(** All registered strategies, in name order. *)
