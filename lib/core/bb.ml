(* The sharded branch-and-bound frontier shared by the node adversary
   (Adversary.exact) and the domain adversary (Topology.Adversary.exact).

   Shape (DESIGN.md §15): a deterministic sequential SPAWN phase expands
   the search tree to a spawn depth that is a pure function of the
   instance, pruning only against the greedy seed — every surviving
   depth-d prefix becomes a task, in lexicographic order.  Tasks are
   dealt round-robin into per-slot deques and drained with work stealing
   (Engine.Pool.parallel_steal); each worker slot keeps ONE long-lived
   kernel copy and moves between tasks by diffing prefixes (O(shared
   suffix · load) removes/adds), never by fresh O(b)-plane snapshots.
   All tasks draw node quota in blocks from one global atomic budget —
   no static per-branch split, so a heavy subtree can consume whatever
   its finished siblings left behind.

   Determinism without node-set determinism: tasks prune against
   max(local recorded best, shared incumbent) — strictly against the
   local value (an earlier leaf of the SAME task is lexicographically
   smaller, so ties are dead weight), but non-strictly against the
   shared Engine.Bound (a tying subtree elsewhere may hold the
   lexicographically smallest optimal leaf, and the shared cell is a
   timing-dependent lower bound of the optimum).  Leaves record
   strictly, so each task reports the lexicographically first leaf
   attaining its subtree maximum; the merge takes the best value with
   ties to the lowest task index.  Task prefixes at one depth are
   lexicographically ordered and prefix every set their subtree reports,
   so this IS the global lexicographic tie rule — the reported attack
   equals the sequential reference (spawn_depth = k) at any -j and any
   schedule, even though which nodes get pruned varies run to run.

   Greedy completions (CELF over a task's remaining picks, through the
   worker's reusable heap) are pure pruning accelerators: they publish
   to the shared bound and are NEVER recorded as results, so gating them
   on timing-dependent worker state is safe.

   Truncation: once the global budget is exhausted, which subtrees were
   explored is timing-dependent, so any "best so far" would not be
   -j-stable.  The frontier instead reports the seed deterministically
   (value = seed, set = None, truncated = true) and the caller falls
   back to its greedy attack. *)

type stats = {
  spawn_depth : int;
  spawned_tasks : int;
  nodes : int;
  leaves : int;
  prunes : int;
  improvements : int;
  completions : int;
  bound_publications : int;
  steals : int;
  kernel_updates : int;
  undos : int;
  max_undo_depth : int;
}

type result = {
  value : int;  (* max(seed, best leaf found); = seed when truncated *)
  set : int array option;  (* ascending; None = the seed attack stands *)
  truncated : bool;
  stats : stats;
}

(* Per-worker scratch: one kernel copy per slot for the whole batch,
   retargeted between tasks by prefix diffing; one reusable CELF heap;
   plain-int statistics flushed by the caller after the batch. *)
type scratch = {
  st : Kernel.t;
  path : int array;  (* capacity k: applied prefix ++ DFS path *)
  mutable plen : int;  (* applied prefix length *)
  heap : Combin.Heap.Int_max.t;
  mutable quota : int;  (* node allowance drawn from the global budget *)
  mutable dead : bool;  (* this slot observed budget exhaustion *)
  mutable tasks_run : int;
  mutable nodes : int;
  mutable leaves : int;
  mutable prunes : int;
  mutable improvements : int;
  mutable completions : int;
  mutable publications : int;
  mutable undos : int;
  mutable max_undo_depth : int;
}

(* Block size for budget reservation: one atomic RMW per [block] nodes
   bounds both the atomic traffic and the past-exhaustion overshoot
   (at most block·workers nodes, whose results are discarded anyway). *)
let block = 1024

(* top_deg.(start).(m): sum of the m largest degrees among units with id
   >= start — an upper bound on additional damage from m more picks.
   Built by one suffix sweep that maintains the k largest degrees seen
   so far in a sorted scratch row (insertion is O(k)), for O(n·k) total
   against the O(n²·log n) of sorting every suffix; only the top k of a
   suffix ever enter a bound, so the values are identical. *)
let top_degrees ~degrees ~n ~k =
  let acc = Array.make_matrix (n + 1) (k + 1) 0 in
  let top = Array.make k 0 in
  let top_len = ref 0 in
  for start = n - 1 downto 0 do
    let d = degrees.(start) in
    if !top_len < k then begin
      let i = ref !top_len in
      while !i > 0 && top.(!i - 1) < d do
        top.(!i) <- top.(!i - 1);
        decr i
      done;
      top.(!i) <- d;
      incr top_len
    end
    else if k > 0 && d > top.(k - 1) then begin
      let i = ref (k - 1) in
      while !i > 0 && top.(!i - 1) < d do
        top.(!i) <- top.(!i - 1);
        decr i
      done;
      top.(!i) <- d
    end;
    let row = acc.(start) in
    for m = 1 to k do
      row.(m) <- row.(m - 1) + (if m - 1 < !top_len then top.(m - 1) else 0)
    done
  done;
  acc

(* Smallest depth whose full prefix count C(n, d) reaches [target]:
   enough tasks that stealing can balance any skew, few enough that the
   sequential spawn stays negligible.  A pure function of (n, k) — the
   spawn phase, and with it the task list, is bit-identical at any -j. *)
let default_spawn_depth ~n ~k =
  let target = 512 in
  let rec go d est =
    if d >= k then k
    else if est >= target then d
    else go (d + 1) (est * (n - d) / (d + 1))
  in
  go 1 n

let search ?pool ?spawn_depth ~budget ~kernel:kn0 ~k ~seed () =
  let n = Kernel.units kn0 in
  if k <= 0 || k > n then invalid_arg "Bb.search: k out of range";
  let spawn_depth =
    match spawn_depth with
    | Some d -> max 1 (min k d)
    | None -> default_spawn_depth ~n ~k
  in
  let degrees = Array.init n (Kernel.degree kn0) in
  let top_deg = top_degrees ~degrees ~n ~k in
  let shared = Engine.Bound.create seed in
  (* ---- spawn phase: sequential, prunes against the seed (and, when
     spawn_depth = k, its own strictly-improving best) only ---- *)
  let ks = Kernel.copy kn0 in
  let spath = Array.make k 0 in
  let prefixes = ref [] in
  let ntasks = ref 0 in
  let sbest = ref seed and sbest_set = ref None in
  let snodes = ref 0 and sleaves = ref 0 and sprunes = ref 0 in
  let simproves = ref 0 and sundos = ref 0 and smax_undo = ref 0 in
  let struncated = ref false in
  let rec sgo start depth =
    if depth = spawn_depth && depth < k then begin
      (* Emit: the task re-checks against the live shared bound at its
         root, so this filter only spares dead-on-arrival descriptors. *)
      if Kernel.killed ks + top_deg.(start).(k - depth) > !sbest then begin
        prefixes := Array.sub spath 0 depth :: !prefixes;
        incr ntasks
      end
      else incr sprunes
    end
    else begin
      incr snodes;
      if !snodes > budget then struncated := true
      else if depth = k then begin
        (* Inline leaf: only reachable when spawn_depth = k, i.e. the
           whole search runs here — the sequential reference. *)
        incr sleaves;
        let v = Kernel.killed ks in
        if v > !sbest then begin
          incr simproves;
          sbest := v;
          sbest_set := Some (Array.sub spath 0 k);
          ignore (Engine.Bound.improve shared v)
        end
      end
      else if Kernel.killed ks + top_deg.(start).(k - depth) > !sbest then
        for nd = start to n - (k - depth) do
          if not !struncated then begin
            spath.(depth) <- nd;
            Kernel.add ks nd;
            sgo (nd + 1) (depth + 1);
            Kernel.remove ks nd;
            incr sundos;
            if depth + 1 > !smax_undo then smax_undo := depth + 1
          end
        done
      else incr sprunes
    end
  in
  sgo 0 0;
  let task_prefixes =
    let a = Array.make !ntasks [||] in
    List.iteri (fun i p -> a.(!ntasks - 1 - i) <- p) !prefixes;
    a
  in
  (* ---- parallel phase ---- *)
  let remaining = Atomic.make (budget - !snodes) in
  let exhausted = Atomic.make !struncated in
  let workers = match pool with Some p -> Engine.Pool.domains p | None -> 1 in
  let scratches = Array.make workers None in
  let scratch_for w =
    match scratches.(w) with
    | Some sc -> sc
    | None ->
        let sc =
          {
            st = Kernel.copy kn0;
            path = Array.make k 0;
            plen = 0;
            heap = Combin.Heap.Int_max.create ();
            quota = 0;
            dead = false;
            tasks_run = 0;
            nodes = 0;
            leaves = 0;
            prunes = 0;
            improvements = 0;
            completions = 0;
            publications = 0;
            undos = 0;
            max_undo_depth = 0;
          }
        in
        scratches.(w) <- Some sc;
        sc
  in
  let refill sc =
    if Atomic.get exhausted then sc.dead <- true
    else begin
      let old = Atomic.fetch_and_add remaining (-block) in
      if old <= 0 then begin
        Atomic.set exhausted true;
        sc.dead <- true
      end
      else sc.quota <- min block old
    end
  in
  let retarget sc prefix =
    let pl = Array.length prefix in
    let c = ref 0 in
    while !c < sc.plen && !c < pl && sc.path.(!c) = prefix.(!c) do incr c done;
    for i = sc.plen - 1 downto !c do
      Kernel.remove sc.st sc.path.(i)
    done;
    for i = !c to pl - 1 do
      sc.path.(i) <- prefix.(i);
      Kernel.add sc.st prefix.(i)
    done;
    sc.plen <- pl
  in
  (* Publish-only greedy completion of the applied prefix: raises the
     shared pruning bound, records nothing (see header), and reuses the
     slot's heap so repeated probes allocate no heap storage. *)
  let probe sc =
    let picks = k - sc.plen in
    if picks > 0 then begin
      let sel, _ = Kernel.select_greedy ~heap:sc.heap sc.st ~picks in
      let v = Kernel.killed sc.st in
      if Engine.Bound.improve shared v then
        sc.publications <- sc.publications + 1;
      for i = Array.length sel - 1 downto 0 do
        Kernel.remove sc.st sel.(i)
      done;
      sc.completions <- sc.completions + 1
    end
  in
  let results = Array.make !ntasks None in
  let run_task ~worker idx =
    if not (Atomic.get exhausted) then begin
      let sc = scratch_for worker in
      sc.dead <- false;
      retarget sc task_prefixes.(idx);
      if sc.tasks_run land 31 = 0 then probe sc;
      sc.tasks_run <- sc.tasks_run + 1;
      let st = sc.st in
      let local_best = ref seed and local_set = ref None in
      let rec go start depth =
        if sc.quota <= 0 then refill sc;
        if not sc.dead then begin
          sc.quota <- sc.quota - 1;
          sc.nodes <- sc.nodes + 1;
          if depth = k then begin
            sc.leaves <- sc.leaves + 1;
            let v = Kernel.killed st in
            if v > !local_best then begin
              sc.improvements <- sc.improvements + 1;
              local_best := v;
              local_set := Some (Array.sub sc.path 0 k);
              if Engine.Bound.improve shared v then
                sc.publications <- sc.publications + 1
            end
          end
          else begin
            let pot = Kernel.killed st + top_deg.(start).(k - depth) in
            if pot > !local_best && pot >= Engine.Bound.get shared then
              for nd = start to n - (k - depth) do
                if not sc.dead then begin
                  sc.path.(depth) <- nd;
                  Kernel.add st nd;
                  go (nd + 1) (depth + 1);
                  Kernel.remove st nd;
                  sc.undos <- sc.undos + 1;
                  if depth + 1 > sc.max_undo_depth then
                    sc.max_undo_depth <- depth + 1
                end
              done
            else sc.prunes <- sc.prunes + 1
          end
        end
      in
      go (sc.path.(sc.plen - 1) + 1) sc.plen;
      (* Results survive only from tasks that ran to completion: a task
         cut short by the budget reports nothing, and the whole search
         degrades to the deterministic seed fallback below. *)
      (if not sc.dead then
         match !local_set with
         | Some set -> results.(idx) <- Some (!local_best, set)
         | None -> ());
      (* Return unclaimed quota so "exhausted" means the TOTAL budget is
         genuinely spent, not that some block ran dry early. *)
      if sc.quota > 0 then begin
        ignore (Atomic.fetch_and_add remaining sc.quota);
        sc.quota <- 0
      end
    end
  in
  let task_ids = Array.init !ntasks Fun.id in
  let steals =
    match pool with
    | Some p when !ntasks > 0 -> Engine.Pool.parallel_steal p ~f:run_task task_ids
    | _ ->
        Array.iter (fun idx -> run_task ~worker:0 idx) task_ids;
        0
  in
  let truncated = !struncated || Atomic.get exhausted in
  (* ---- merge + stats ---- *)
  let nodes = ref !snodes and leaves = ref !sleaves and prunes = ref !sprunes in
  let improvements = ref !simproves and completions = ref 0 in
  let publications = ref 0 in
  let undos = ref !sundos and max_undo_depth = ref !smax_undo in
  let kernel_updates = ref (Kernel.updates ks) in
  Array.iter
    (function
      | None -> ()
      | Some sc ->
          nodes := !nodes + sc.nodes;
          leaves := !leaves + sc.leaves;
          prunes := !prunes + sc.prunes;
          improvements := !improvements + sc.improvements;
          completions := !completions + sc.completions;
          publications := !publications + sc.publications;
          undos := !undos + sc.undos;
          if sc.max_undo_depth > !max_undo_depth then
            max_undo_depth := sc.max_undo_depth;
          kernel_updates := !kernel_updates + Kernel.updates sc.st)
    scratches;
  let stats =
    {
      spawn_depth;
      spawned_tasks = !ntasks;
      nodes = !nodes;
      leaves = !leaves;
      prunes = !prunes;
      improvements = !improvements;
      completions = !completions;
      bound_publications = !publications;
      steals;
      kernel_updates = !kernel_updates;
      undos = !undos;
      max_undo_depth = !max_undo_depth;
    }
  in
  if truncated then { value = seed; set = None; truncated = true; stats }
  else begin
    (* Strict improvement, lowest task index wins ties — the global
       lexicographic rule (see header).  The spawn-inline best covers
       the spawn_depth = k case, where no tasks exist. *)
    let best = ref !sbest and best_set = ref !sbest_set in
    Array.iter
      (function
        | Some (v, set) when v > !best ->
            best := v;
            best_set := Some set
        | _ -> ())
      results;
    { value = !best; set = !best_set; truncated = false; stats }
  end
