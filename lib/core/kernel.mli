(** The incremental attack-evaluation kernel.

    Definition 1 scores a failure set by counting objects with ≥ s
    replicas inside it.  Instead of re-evaluating that count from
    scratch per candidate set (an O(b·r) pass over every replica list),
    the kernel keeps per-object hit counters and a running dead-object
    tally, updated in O(load(u)) when unit [u] enters or leaves the
    failure set — the marginal-gain structure that copyset-style
    analyses and CELF lazy-greedy selection exploit.

    A kernel is built once per {!Layout.t} (over nodes, from the
    memoized {!Layout.node_objects} index) or once per domain level
    (over fault domains, via {!of_groups}); {!copy} then yields
    independent search states sharing the immutable incidence index, so
    parallel branch-and-bound branches each thread their own counters
    down and up the search tree.  Alongside the counters the node path
    lazily derives one {!Combin.Bitset} per object (the units hosting
    its replicas), giving {!check} a popcount-threshold evaluation of
    arbitrary failure sets without touching the counter state.

    Kernels are single-domain mutable state; share only via {!copy}.
    All counts are exact, so every algorithm rebuilt on the kernel is
    bit-identical to its naive {!Layout.failed_objects} formulation. *)

type t

val make : Layout.t -> s:int -> t
(** Attack units are the layout's nodes.  Shares the layout's memoized
    inverted index; O(b) fresh counter state. *)

val of_groups : s:int -> b:int -> int array array -> t
(** Attack units are arbitrary groups: [groups.(u)] lists one entry per
    replica hosted inside unit [u] (entries may repeat when a unit holds
    several replicas of the same object — e.g. fault domains).  The
    incidence arrays are shared, not copied. *)

val copy : t -> t
(** A fresh all-up state over the same shared incidence index. *)

val reset : t -> unit
(** Return to the all-up state. *)

val units : t -> int
val objects : t -> int
val threshold : t -> int

val degree : t -> int -> int
(** Replicas hosted by a unit: an upper bound on its marginal damage. *)

val add : t -> int -> unit
(** Fail one unit: O(load).  Units are not reference-counted; adding a
    unit already in the failure set double-counts.  @raise
    Invalid_argument in that case. *)

val remove : t -> int -> unit
(** Undo {!add}. *)

val killed : t -> int
(** Objects with ≥ s replicas inside the current failure set. *)

val hits : t -> int -> int
(** Failed replicas of one object. *)

val failed_units : t -> int array
(** The current failure set, sorted. *)

val marginal : t -> int -> int * int
(** [(newly, progress)]: objects this unit would push to exactly [s]
    hits, and objects it touches that are still below [s] — the greedy
    objective pair, compared lexicographically. *)

val check : t -> int array -> int
(** One-shot: objects killed by the given unit set (sorted, distinct).
    Uses the per-object incidence bitsets when the incidence is
    multiplicity-free — built lazily on the first [check], so
    greedy/B&B-only callers never pay for them — and a scratch counter
    pass otherwise; either way equals {!Layout.failed_objects} on the
    node kernel.  Never reads the counter state. *)

type greedy_stats = {
  evals : int;  (** marginal recomputations *)
  heap_pops : int;  (** candidate pops from the CELF heap *)
  stale_reevals : int;
      (** pops whose cached bound had decayed since it was pushed *)
}

val select_greedy : t -> picks:int -> int array * greedy_stats
(** CELF lazy-greedy: pick [picks] units one at a time, each maximizing
    [(newly, progress)] with ties to the lowest unit id — bit-identical
    to a full rescan per pick (the pre-kernel greedy).  Candidates live
    in a {!Combin.Heap.Int_max} keyed by a monotone upper bound (the
    progress component, which never grows as the failure set does); a
    popped candidate is re-evaluated exactly and the round stops only
    when no remaining bound can beat or tie the best exact value (see
    DESIGN.md §10 for the determinism argument).  The kernel ends with
    the picks applied; the returned array is in pick order.
    @raise Invalid_argument if [picks] exceeds the unchosen units. *)

val updates : t -> int
(** Lifetime {!add} + {!remove} count on this state (not its copies) —
    drained by callers into telemetry. *)
