(** The incremental attack-evaluation kernel.

    Definition 1 scores a failure set by counting objects with ≥ s
    replicas inside it.  Instead of re-evaluating that count from
    scratch per candidate set (an O(b·r) pass over every replica list),
    the kernel keeps per-object hit counters and a running dead-object
    tally, updated in O(load(u)) when unit [u] enters or leaves the
    failure set — the marginal-gain structure that copyset-style
    analyses and CELF lazy-greedy selection exploit.

    Storage is web-scale flat (DESIGN.md §11): the unit → replicas
    incidence is one {!Combin.Csr.t} — two off-heap [Bigarray] planes
    shared untouched by every {!copy} — and the per-object counters are
    a [Bigarray] int16 plane, so a branch copy is a single blit with no
    per-object boxing at n ~ 10^4 nodes, b ~ 10^6 objects.

    A kernel is built once per {!Layout.t} (over nodes, from the
    memoized {!Layout.incidence} CSR) or once per domain level (over
    fault domains, via {!of_groups} or {!of_csr}); {!copy} then yields
    independent search states sharing the immutable incidence, so
    parallel branch-and-bound branches each thread their own counters
    down and up the search tree.  Alongside the counters the node path
    lazily derives one {!Combin.Bitset} per object (the units hosting
    its replicas), giving {!check} a popcount-threshold evaluation of
    arbitrary failure sets without touching the counter state.

    Kernels are single-domain mutable state; share only via {!copy}.
    All counts are exact, so every algorithm rebuilt on the kernel is
    bit-identical to its naive {!Layout.failed_objects} formulation. *)

type t

val make : Layout.t -> s:int -> t
(** Attack units are the layout's nodes.  Shares the layout's memoized
    {!Layout.incidence} CSR; O(b) fresh counter state. *)

val of_groups : s:int -> b:int -> int array array -> t
(** Attack units are arbitrary groups: [groups.(u)] lists one entry per
    replica hosted inside unit [u] (entries may repeat when a unit holds
    several replicas of the same object — e.g. fault domains).  Packs
    the groups into a private CSR; prefer {!of_csr} when the caller
    already holds one (e.g. {!Combin.Csr.group}). *)

val of_csr : s:int -> Combin.Csr.t -> t
(** Attack units are the CSR's rows, objects its column space.  The CSR
    is shared, not copied — treat it as immutable afterwards. *)

val csr : t -> Combin.Csr.t
(** The shared incidence (unit → replica entries). *)

val copy : t -> t
(** An independent duplicate of the {e current} attack state over the
    same shared incidence: the counter plane is one [Bigarray] blit.
    Copying an all-up kernel yields an all-up kernel. *)

val reset : t -> unit
(** Return to the all-up state. *)

val units : t -> int
val objects : t -> int
val threshold : t -> int

val degree : t -> int -> int
(** Replicas hosted by a unit: an upper bound on its marginal damage. *)

val add : t -> int -> unit
(** Fail one unit: O(load).  Units are not reference-counted; adding a
    unit already in the failure set double-counts.  @raise
    Invalid_argument in that case. *)

val remove : t -> int -> unit
(** Undo {!add}. *)

val killed : t -> int
(** Objects with ≥ s replicas inside the current failure set. *)

val hits : t -> int -> int
(** Failed replicas of one object. *)

val failed_units : t -> int array
(** The current failure set, sorted. *)

val marginal : t -> int -> int * int
(** [(newly, progress)]: objects this unit would push to exactly [s]
    hits, and objects it touches that are still below [s] — the greedy
    objective pair, compared lexicographically. *)

val check : t -> int array -> int
(** One-shot: objects killed by the given unit set (sorted, distinct).
    Uses the per-object incidence bitsets when the incidence is
    multiplicity-free — built lazily on the first [check], so
    greedy/B&B-only callers never pay for them — and a scratch counter
    pass otherwise; either way equals {!Layout.failed_objects} on the
    node kernel.  Never reads the counter state. *)

val check_scratch : t -> int array -> int
(** {!check} forced down the scratch-counter path (one O(b) counting
    pass over the set's CSR rows), bypassing the bitset cache.  Always
    equal to {!check}; exposed as the property-test oracle for the
    bitset path. *)

type greedy_stats = {
  evals : int;  (** marginal recomputations *)
  heap_pops : int;  (** candidate pops from the CELF heap *)
  stale_reevals : int;
      (** pops whose cached bound had decayed since it was pushed *)
}

val select_greedy :
  ?heap:Combin.Heap.Int_max.t -> t -> picks:int -> int array * greedy_stats
(** CELF lazy-greedy: pick [picks] units one at a time, each maximizing
    [(newly, progress)] with ties to the lowest unit id — bit-identical
    to a full rescan per pick (the pre-kernel greedy).  Candidates live
    in a {!Combin.Heap.Int_max} keyed by a monotone upper bound (the
    progress component, which never grows as the failure set does); a
    popped candidate is re-evaluated exactly and the round stops only
    when no remaining bound can beat or tie the best exact value (see
    DESIGN.md §10 for the determinism argument).  Per-round loser
    re-pushes are batched through {!Combin.Heap.Int_max.push_many}.
    The kernel ends with the picks applied; the returned array is in
    pick order.  [heap] lets a repeated caller (the B&B frontier's
    greedy-completion probes, {!Bb}) supply a long-lived heap that is
    {!Combin.Heap.Int_max.clear}ed and reused instead of allocated per
    call; the pop order is a strict total order, so reuse changes no
    pick and no statistic.
    @raise Invalid_argument if [picks] exceeds the unchosen units. *)

val select_greedy_sharded :
  ?pool:Engine.Pool.t -> ?shards:int -> t -> picks:int -> int array * greedy_stats
(** {!select_greedy} with the candidate heap sharded across contiguous
    unit-id blocks: per pick every shard produces its exact-checked
    local argmax (in parallel over [pool] when given), and the reduce
    takes the greatest packed value with ties to the lowest unit id —
    the sequential scan's own order, so picks AND stats are
    bit-identical to {!select_greedy} and to any other [pool] size.
    [shards] defaults to a pure function of the unit count (never of
    the pool), preserving the Stable-telemetry -j invariance; pass it
    explicitly only in tests.  See DESIGN.md §11. *)

val updates : t -> int
(** Lifetime {!add} + {!remove} count on this state (not its copies) —
    drained by callers into telemetry. *)

type kernel = t
(** Alias so {!Dyn} can name the flat kernel it freezes into. *)

(** The dynamic kernel: same hit-counter state machine, but the object
    population itself churns.  Where the flat kernel's CSR incidence is
    immutable (built once per layout), [Dyn] stores the unit → objects
    incidence as per-unit rows grown in amortized-doubling blocks with
    per-object back-pointers, so a churn engine can create and delete
    objects in O(r) per event and fail/recover units in O(load) —
    re-scoring availability and the lazy-greedy adversary after every
    event without ever rebuilding (DESIGN.md §12). *)
module Dyn : sig
  type t

  val create : units:int -> s:int -> t
  (** An empty population over a fixed unit universe.
      @raise Invalid_argument when [units < 0] or [s < 1] (a
      non-positive threshold kills every object; the churn engine has no
      use for that degenerate regime). *)

  val units : t -> int
  val objects : t -> int
  (** Live objects; their slots are dense in [0, objects t). *)

  val threshold : t -> int

  val add_object : t -> int array -> int
  (** Register one object hosted by the given (distinct) units; returns
      its slot, always [objects t] before the call.  O(r) amortized; the
      hit counter is seeded from the current failure set, so an object
      created inside an outage is born dead when ≥ s of its hosts are
      down.  @raise Invalid_argument on an out-of-range or repeated
      unit. *)

  val remove_object : t -> int -> int
  (** Delete the object in the given slot, O(r).  Slots stay dense: the
      last slot's object moves into the freed slot, and the PREVIOUS
      last slot index ([objects t] after the call) is returned so
      callers tracking external ids can update their slot map — when the
      returned index equals the removed slot, nothing moved.
      @raise Invalid_argument on an out-of-range slot. *)

  val replicas : t -> int -> int array
  (** The hosting units of a live slot (a fresh copy). *)

  val fail_unit : t -> int -> unit
  (** Fail one unit: O(load).  @raise Invalid_argument if already
      failed. *)

  val recover_unit : t -> int -> unit
  (** Undo {!fail_unit}. *)

  val killed : t -> int
  (** Objects with ≥ s replicas inside the current failure set. *)

  val load : t -> int -> int
  (** Live objects hosting a replica on the given unit — the movement
      budget of a permanent departure. *)

  val hits : t -> int -> int
  val failed_units : t -> int array
  val marginal : t -> int -> int * int

  val moves : t -> int
  (** Lifetime object creates + deletes — drained into telemetry. *)

  val check_scratch : t -> int
  (** From-scratch recount of {!killed} straight from each object's
      replica list and the failed bitset, verifying the incremental hits
      plane entry by entry on the way ([Failure] on any divergence).
      O(b·r) — the oracle proving incremental ≡ from-scratch. *)

  val freeze : t -> kernel
  (** Pack the live rows into a flat {!kernel} (same slot numbering) and
      replay the current failure set onto it — the from-scratch rebuild
      the incremental state is tested against, and what a one-shot
      caller should use for B&B or sharded attacks. *)

  val worst_case : t -> k:int -> int array * int * greedy_stats
  (** CELF lazy-greedy adversary over the CURRENT object population,
      attacking from all-up on a scratch counter plane (the live failure
      state is left untouched and does not bias the adversary): returns
      the k picks in order, the objects they kill, and the scan stats.
      Picks and stats are bit-identical to {!select_greedy} on a freshly
      built flat kernel over the same live objects — the packing base
      differs (a monotone degree high-water mark) but every CELF
      comparison is base-invariant (see DESIGN.md §12).
      @raise Invalid_argument when [k] exceeds the unit count. *)
end
