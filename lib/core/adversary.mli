(** The worst-case adversary of Definition 1: given full knowledge of the
    placement, choose k nodes to fail so as to fail as many objects as
    possible (an object fails when ≥ s of its replicas are on failed
    nodes).

    Finding the true optimum is a coverage-maximization problem; we
    provide an exact branch-and-bound for small C(n,k) and a greedy +
    steepest-ascent-swap local search with multi-restart for the rest
    (see DESIGN.md §3 on how this substitutes for the paper's unspecified
    "simulating the worst k failures").

    Both searches are fan-out shaped and accept an optional
    {!Engine.Pool}: the branch-and-bound runs on the work-stealing
    sharded frontier ({!Bb}, DESIGN.md §15), the local search
    parallelizes over restarts.  Results are bit-identical with and
    without a pool, at any pool size — parallelism only changes
    wall-clock (see DESIGN.md §2, "parallelism & determinism"). *)

type attack = {
  failed_nodes : int array;  (** the chosen K, sorted, |K| = k *)
  failed_objects : int;  (** objects with ≥ s replicas in K *)
  exact : bool;  (** true if produced by exhaustive/B&B search *)
}

val eval : Layout.t -> s:int -> int array -> int
(** Number of objects failed by a given node set: a one-shot O(b·r)
    merge pass ({!Layout.failed_objects}) with no kernel construction.
    Callers that score many sets over one layout should hold a
    {!Kernel.t} and use {!Kernel.check} instead. *)

val exact :
  ?budget:int -> ?spawn_depth:int -> ?pool:Engine.Pool.t ->
  Layout.t -> s:int -> k:int -> attack
(** Branch-and-bound over all C(n,k) failure sets with a degree-sum upper
    bound for pruning, seeded with the {!greedy} incumbent, run on the
    work-stealing sharded frontier ({!Bb}): subtree tasks cut at a
    deterministic spawn depth ([spawn_depth] overrides it, clamped to
    [1, k]; tests only), drained through per-domain deques under ONE
    global node budget (default 50 million) — a heavy subtree inherits
    whatever budget its finished siblings never used.  When a set
    strictly beats greedy, the reported set is the lexicographically
    smallest optimum, at any [pool] size.  If the TOTAL budget runs out
    the result falls back to the greedy attack with [exact = false] —
    deterministically, since any "best so far" under work stealing
    would be schedule-dependent. *)

val exact_seq : ?budget:int -> Layout.t -> s:int -> k:int -> attack
(** The sequential reference oracle: {!exact} with the whole tree
    explored in the deterministic spawn phase ([spawn_depth = k]) and no
    pool — classic strict-pruning lexicographic DFS.  Equal to {!exact}
    whenever neither truncates; tests and the bench gate diff against
    it. *)

val greedy : ?pool:Engine.Pool.t -> Layout.t -> s:int -> k:int -> attack
(** Add the node with the best marginal damage k times; ties broken by
    progress toward failing objects, then by lowest node id.  Runs as
    sharded CELF lazy-greedy over the attack kernel
    ({!Kernel.select_greedy_sharded}): candidates sit in bound-keyed
    heaps partitioned by node id, each shard re-checks its popped
    candidates exactly, and the per-pick reduce applies the sequential
    scan's own total order — so the chosen nodes AND the search
    statistics are bit-identical to a full rescan per pick, at any
    [pool] size, while touching far fewer marginals on large
    instances. *)

val local_search :
  rng:Combin.Rng.t -> ?restarts:int -> ?pool:Engine.Pool.t ->
  Layout.t -> s:int -> k:int -> attack
(** Greedy start (plus random restarts), then steepest-ascent single-node
    swaps to a local optimum.  [restarts] defaults to 8; each restart
    draws from its own pre-split child of [rng] (see
    {!Combin.Rng.split_n}), so the result does not depend on [pool]. *)

val attack :
  ?pool:Engine.Pool.t -> ?rng:Combin.Rng.t -> ?restarts:int ->
  ?exact_limit:float -> Layout.t -> s:int -> k:int -> attack
(** The restart-plan front end: exact search when the estimated work
    C(n,k)·(r·b/n) is below [exact_limit] (default 5e7), otherwise
    {!local_search} with [restarts] (default 8).  [rng] defaults to a
    fixed seed, making the result deterministic.  Logs (source
    ["placement.adversary"]) a warning when a truncated exact search
    falls back to best-so-far and a debug line when dispatching to the
    heuristic, so callers can tell a heuristic answer from an exact
    one. *)

val best :
  ?pool:Engine.Pool.t -> ?rng:Combin.Rng.t -> ?exact_limit:float ->
  Layout.t -> s:int -> k:int -> attack
(** [attack] without the restart override; kept for callers of the
    pre-pool API. *)

val avail : Layout.t -> s:int -> attack -> int
(** [b - attack.failed_objects]: the (estimated) Avail(π) of Def. 1. *)
