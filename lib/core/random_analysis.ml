let alpha ~n ~k ~r ~s =
  let acc = ref 0.0 in
  for s' = s to min r k do
    acc :=
      !acc
      +. exp (Combin.Binomial.log k s' +. Combin.Binomial.log (n - k) (r - s'))
  done;
  !acc

let single_object_fail_probability (p : Params.t) =
  (* α and C(n,r) are both computed through exp∘log, so the quotient can
     exceed 1 by an ulp when α covers (almost) all r-subsets; clamp to a
     probability. *)
  let raw = alpha ~n:p.n ~k:p.k ~r:p.r ~s:p.s /. exp (Combin.Binomial.log p.n p.r) in
  min 1.0 (max 0.0 raw)

let log_vuln (p : Params.t) ~f =
  let prob = single_object_fail_probability p in
  Combin.Binomial.log p.n p.k +. Combin.Logspace.log_binomial_sf ~n:p.b ~p:prob f

let pr_avail (p : Params.t) =
  let prob = single_object_fail_probability p in
  let log_cnk = Combin.Binomial.log p.n p.k in
  let sf = Combin.Logspace.log_binomial_sf_table ~n:p.b ~p:prob in
  (* Vuln(f) = C(n,k)·sf(f) is nonincreasing in f; find the largest f with
     ln C(n,k) + ln sf(f) >= 0. *)
  let max_f = ref 0 in
  (try
     for f = p.b downto 0 do
       if log_cnk +. sf.(f) >= 0.0 then begin
         max_f := f;
         raise Exit
       end
     done
   with Exit -> ());
  p.b - !max_f

let s1_upper_bound (p : Params.t) =
  if p.s <> 1 then invalid_arg "Random_analysis.s1_upper_bound: s <> 1";
  if 2 * p.k >= p.n then invalid_arg "Random_analysis.s1_upper_bound: k >= n/2";
  let ell = p.r * p.b / p.n in
  let b = float_of_int p.b in
  b *. ((1.0 -. (1.0 /. b)) ** float_of_int (p.k * ell))

type rnd_report = {
  p_fail : float;
  pr_avail : int;
  fraction : float;
  lemma4_upper : float option;
}

let report (p : Params.t) =
  let pr = pr_avail p in
  {
    p_fail = single_object_fail_probability p;
    pr_avail = pr;
    fraction = float_of_int pr /. float_of_int p.Params.b;
    lemma4_upper =
      (if p.s = 1 && 2 * p.k < p.n then Some (s1_upper_bound p) else None);
  }
