(** Combo(⟨λx⟩) placements (Definition 3) and the dynamic program of
    Sec. III-B1 (Eqns 5–7) that selects ⟨λx⟩ to maximize the availability
    lower bound lbAvail_co (Lemma 3) for a target number k of failures. *)

type level = {
  x : int;
  nx : int;  (** chosen design size for this x *)
  mu : int;  (** μx: the design's own λ *)
  cap_mu : int;  (** objects hosted per μ-copy: μ C(nx,x+1)/C(r,x+1) *)
  entry : Designs.Registry.entry option;
      (** backing catalogue entry, when one exists *)
}

type config = {
  params : Params.t;
  levels : level array;  (** indexed by x ∈ [s]; unusable levels have
                             [cap_mu = 0] *)
  lambdas : int array;  (** chosen λx (a multiple of μx; 0 = level unused) *)
  assigned : int array;  (** objects placed via Simple(x, λx); sums to b *)
  lb : int;  (** lbAvail_co(⟨λx⟩) at the configured k (Lemma 3), ≥ 0 *)
}

val default_levels :
  ?include_literature:bool -> ?max_mu:int -> n:int -> r:int -> s:int -> unit ->
  level array
(** One level per x ∈ [s], each backed by the best catalogue design with
    nx ≤ n (the paper's Sec. III-C selection).  Levels for which no
    design exists get [cap_mu = 0] and are never used by the DP. *)

val optimize :
  ?choose:(int -> int -> int) -> ?levels:level array -> Params.t -> config
(** The O(s·b) dynamic program (Eqns 5–7): maximizes lbAvail_co subject
    to the capacity constraint (Eqn 3).  [levels] defaults to
    [default_levels] with the params' n, r, s.  [choose] (default
    {!Combin.Binomial.exact}) supplies the binomial coefficients; the
    per-level columns C(k,x+1), C(s,x+1) are fetched once per level and
    hoisted out of the DP's inner loops, so passing {!Instance.choose}
    makes grid sweeps reuse one memoized table across cells. *)

val lb_avail_co : ?choose:(int -> int -> int) -> config -> k:int -> int
(** Lemma 3 / Eqn. 4 evaluated at an arbitrary failure count [k] (used by
    the Fig. 3 sensitivity study): [b − Σx floor(λx C(k,x+1)/C(s,x+1))],
    clamped at 0. *)

val materialize : ?spread:bool -> config -> Layout.t
(** Build the actual placement: for each level with objects assigned,
    construct its Simple(x, λx) placement and concatenate.  [spread]
    rotates design copies across the node ring for better load balance
    at the same λ (see {!Simple.of_design}).  Requires all used levels
    to have materialized catalogue entries.
    @raise Invalid_argument otherwise. *)

val brute_force_lb : Params.t -> levels:level array -> int
(** Exhaustive search over all ⟨λx⟩ satisfying Eqn. 3 (exponential; only
    for cross-checking the DP on small instances in tests). *)
