(** The work-stealing sharded branch-and-bound frontier behind
    {!Adversary.exact} and [Topology.Adversary.exact].

    [search ~budget ~kernel ~k ~seed ()] explores every k-subset of the
    kernel's units for the one killing the most objects, pruned by the
    degree-sum bound, seeded by a caller-supplied incumbent value
    (normally the greedy attack's).  A deterministic sequential spawn
    phase cuts the tree at a spawn depth that is a pure function of the
    instance; the surviving prefixes become tasks drained through
    {!Engine.Pool.parallel_steal} with per-worker kernel scratch
    (prefix-diff retargeting, no per-task plane copies) under ONE global
    node budget drawn in blocks — no static per-branch split, so heavy
    subtrees inherit whatever finished siblings left.

    Determinism contract: the returned [(value, set)] is the maximum
    damage and, among maximizers strictly beating [seed], the
    lexicographically smallest node set — identical at any pool size and
    any schedule, and equal to the sequential reference
    ([~spawn_depth:k]), even though the SET OF NODES EXPLORED (and hence
    every count in {!stats} except [spawn_depth] and [spawned_tasks])
    is timing-dependent under the shared {!Engine.Bound} incumbent.
    On budget exhaustion the search reports the seed deterministically
    ([set = None], [truncated = true]) rather than a schedule-dependent
    best-so-far.  See DESIGN.md §15 for the full argument. *)

type stats = {
  spawn_depth : int;  (** depth of the task cut — Stable (pure fn of instance) *)
  spawned_tasks : int;  (** tasks emitted by the spawn phase — Stable *)
  nodes : int;  (** search-tree nodes expanded (spawn + tasks) — Volatile *)
  leaves : int;  (** full k-sets evaluated — Volatile *)
  prunes : int;  (** subtrees cut by the degree-sum bound — Volatile *)
  improvements : int;  (** strict best-so-far improvements at leaves — Volatile *)
  completions : int;  (** greedy completion probes run — Volatile *)
  bound_publications : int;
      (** successful shared-incumbent raises (leaves + probes) — Volatile *)
  steals : int;  (** tasks taken from another slot's deque — Volatile *)
  kernel_updates : int;  (** kernel add/remove ops across all scratch — Volatile *)
  undos : int;  (** B&B backtrack removes — Volatile *)
  max_undo_depth : int;  (** deepest backtrack — Volatile *)
}

type result = {
  value : int;
      (** damage of the best set found; [seed] when nothing strictly
          beats it or when truncated *)
  set : int array option;
      (** the winning k-set, ascending; [None] when the caller's seed
          attack stands (not beaten, or truncated) *)
  truncated : bool;  (** the global node budget ran out *)
  stats : stats;
}

val top_degrees : degrees:int array -> n:int -> k:int -> int array array
(** [(top_degrees ~degrees ~n ~k).(start).(m)]: the sum of the [m]
    largest entries of [degrees] among units with id >= [start] — the
    optimistic-damage bound the search prunes with.  One O(n·k) suffix
    sweep; exposed so tests and benches can run frozen reference
    searches against the exact same bound. *)

val default_spawn_depth : n:int -> k:int -> int
(** The spawn depth [search] uses when none is forced: the smallest
    depth whose full prefix count C(n, d) reaches a fixed task target,
    capped at [k].  Exposed for tests and benches. *)

val search :
  ?pool:Engine.Pool.t ->
  ?spawn_depth:int ->
  budget:int ->
  kernel:Kernel.t ->
  k:int ->
  seed:int ->
  unit ->
  result
(** Run the frontier.  [kernel] must be all-up (no units failed); it is
    only read ({!Kernel.copy} snapshots), never mutated.  [seed] is the
    incumbent damage value to strictly beat — the caller keeps the
    corresponding attack and substitutes it when [set = None].
    [spawn_depth] is clamped to [1, k]; [~spawn_depth:k] runs the whole
    search in the sequential spawn phase (the reference oracle: strict
    lexicographic DFS with deterministic truncation).
    @raise Invalid_argument if [k] is outside [1, units]. *)
