let log_src =
  Logs.Src.create "placement.adversary" ~doc:"worst-case adversary search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type attack = {
  failed_nodes : int array;
  failed_objects : int;
  exact : bool;
}

(* Search statistics.  The B&B frontier (Bb) prunes against a shared
   incumbent that tightens mid-flight, so which nodes get explored —
   and with it every per-node count below — is timing-dependent:
   Volatile.  What stays Stable is the spawn phase (a pure function of
   the instance): the task count and the spawn depth are bit-identical
   at any -j, and the determinism suites diff them.  Hot loops
   accumulate plain local ints inside Bb and flush here once per
   search. *)
let m_bb_nodes =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/nodes_expanded"
let m_bb_leaves =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/leaves"
let m_bb_prunes =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/bound_prunes"
let m_bb_improves =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/improvements"
let m_bb_truncations =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/truncations"
let m_bb_spawned = Telemetry.Registry.counter "core/adversary/bb/spawned_tasks"
let m_bb_spawn_depth =
  Telemetry.Registry.gauge ~kind:Stable "core/adversary/bb/spawn_depth"
let m_bb_steals =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/steals"
let m_bb_pubs =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/bound_publications"
let m_bb_completions =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/completions"
let m_greedy_runs = Telemetry.Registry.counter "core/adversary/greedy/runs"
let m_greedy_evals = Telemetry.Registry.counter "core/adversary/greedy/marginal_evals"
let m_ls_restarts = Telemetry.Registry.counter "core/adversary/local_search/restarts"
let m_ls_passes = Telemetry.Registry.counter "core/adversary/local_search/passes"
let m_ls_swaps = Telemetry.Registry.counter "core/adversary/local_search/swaps"
let m_attack_exact = Telemetry.Registry.counter "core/adversary/attack/exact_dispatch"
let m_attack_heur = Telemetry.Registry.counter "core/adversary/attack/heuristic_dispatch"
let m_attack_span = Telemetry.Registry.span "core/adversary/attack"

(* Kernel counters (see Kernel and DESIGN.md §10): incremental add/remove
   updates and CELF heap activity.  The greedy/local-search paths flush
   deterministic counts into the Stable [kernel/updates]; the frontier's
   kernel traffic and undo depth follow its exploration and are Volatile
   (kept under the bb/kernel prefix). *)
let m_kernel_updates = Telemetry.Registry.counter "core/adversary/kernel/updates"
let m_kernel_pops = Telemetry.Registry.counter "core/adversary/kernel/heap_pops"
let m_kernel_stale =
  Telemetry.Registry.counter "core/adversary/kernel/stale_reevals"
let m_bb_kernel_updates =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/bb/kernel_updates"
let m_kernel_undos =
  Telemetry.Registry.counter ~kind:Volatile "core/adversary/kernel/bb_undos"
let m_kernel_undo_depth =
  Telemetry.Registry.histogram ~kind:Volatile
    "core/adversary/kernel/bb_undo_depth"

(* One-shot scoring: a single O(b·r) merge pass with no allocation.
   Routing this through a throwaway Kernel would rebuild the per-object
   incidence bitsets on every call; repeated-eval callers should hold a
   {!Kernel.t} across calls instead (Kernel.check, or add + killed). *)
let eval layout ~s failed_nodes = Layout.failed_objects layout ~s ~failed_nodes

let pmap pool f xs =
  match pool with
  | Some p -> Engine.Pool.parallel_map p f xs
  | None -> Array.map f xs

let greedy ?pool layout ~s ~k =
  let kn = Kernel.make layout ~s in
  let picks, stats = Kernel.select_greedy_sharded ?pool kn ~picks:k in
  Telemetry.Counter.incr m_greedy_runs;
  Telemetry.Counter.add m_greedy_evals stats.Kernel.evals;
  Telemetry.Counter.add m_kernel_pops stats.Kernel.heap_pops;
  Telemetry.Counter.add m_kernel_stale stats.Kernel.stale_reevals;
  Telemetry.Counter.add m_kernel_updates (Kernel.updates kn);
  {
    failed_nodes = Combin.Intset.of_array picks;
    failed_objects = Kernel.killed kn;
    exact = false;
  }

(* Flush a frontier run's statistics into the core counters; shared with
   {!exact_seq}.  Called once per search on the calling domain. *)
let flush_bb_stats (st : Bb.stats) =
  Telemetry.Gauge.set m_bb_spawn_depth (float_of_int st.Bb.spawn_depth);
  Telemetry.Counter.add m_bb_spawned st.Bb.spawned_tasks;
  Telemetry.Counter.add m_bb_nodes st.Bb.nodes;
  Telemetry.Counter.add m_bb_leaves st.Bb.leaves;
  Telemetry.Counter.add m_bb_prunes st.Bb.prunes;
  Telemetry.Counter.add m_bb_improves st.Bb.improvements;
  Telemetry.Counter.add m_bb_completions st.Bb.completions;
  Telemetry.Counter.add m_bb_pubs st.Bb.bound_publications;
  Telemetry.Counter.add m_bb_steals st.Bb.steals;
  Telemetry.Counter.add m_bb_kernel_updates st.Bb.kernel_updates;
  Telemetry.Counter.add m_kernel_undos st.Bb.undos;
  Telemetry.Histogram.observe m_kernel_undo_depth st.Bb.max_undo_depth

(* The frontier (Bb, DESIGN.md §15) does the heavy lifting: greedy seeds
   the shared incumbent, the spawn phase shards the tree into prefix
   tasks, and work stealing drains them under one global node budget.
   The returned set is the lexicographically smallest optimum whenever
   one strictly beats greedy — identical at any [-j] — and on budget
   exhaustion the result deterministically falls back to the greedy
   attack with [exact = false]. *)
let exact ?(budget = 50_000_000) ?spawn_depth ?pool layout ~s ~k =
  let n = layout.Layout.n in
  if k >= n then invalid_arg "Adversary.exact: k >= n";
  if k = 0 then { failed_nodes = [||]; failed_objects = 0; exact = true }
  else begin
    let kn0 = Kernel.make layout ~s in
    let g = greedy ?pool layout ~s ~k in
    let r =
      Bb.search ?pool ?spawn_depth ~budget ~kernel:kn0 ~k
        ~seed:g.failed_objects ()
    in
    flush_bb_stats r.Bb.stats;
    if r.Bb.truncated then begin
      Telemetry.Counter.incr m_bb_truncations;
      { g with exact = false }
    end
    else
      match r.Bb.set with
      | Some set ->
          {
            failed_nodes = Combin.Intset.of_array set;
            failed_objects = r.Bb.value;
            exact = true;
          }
      | None -> { g with exact = true }
  end

(* The sequential reference oracle: the whole search runs in the
   deterministic spawn phase ([spawn_depth = k]), with no pool — classic
   strict-pruning lexicographic DFS.  Tests and benches diff the sharded
   frontier against this. *)
let exact_seq ?budget layout ~s ~k = exact ?budget ~spawn_depth:k layout ~s ~k

(* Returns (passes, swaps): full sweeps of the outer loop and accepted
   swap moves — plain locals, flushed by the caller. *)
let improve_to_local_opt st chosen =
  let n = Array.length chosen in
  let improved = ref true in
  let passes = ref 0 and swaps = ref 0 in
  while !improved do
    improved := false;
    incr passes;
    (try
       for nd_in = 0 to n - 1 do
         if chosen.(nd_in) then begin
           Kernel.remove st nd_in;
           chosen.(nd_in) <- false;
           (* First-improvement swap search. *)
           let found = ref (-1) and found_gain = ref 0 in
           for nd_out = 0 to n - 1 do
             if (not chosen.(nd_out)) && nd_out <> nd_in then begin
               let newly, _ = Kernel.marginal st nd_out in
               if newly > !found_gain then begin
                 found := nd_out;
                 found_gain := newly
               end
             end
           done;
           (* Putting nd_in back yields damage gain (its own marginal); a
              swap wins only if some other node strictly beats it. *)
           let back_gain, _ = Kernel.marginal st nd_in in
           if !found >= 0 && !found_gain > back_gain then begin
             chosen.(!found) <- true;
             Kernel.add st !found;
             incr swaps;
             improved := true;
             raise Exit
           end
           else begin
             chosen.(nd_in) <- true;
             Kernel.add st nd_in
           end
         end
       done
     with Exit -> ())
  done;
  (!passes, !swaps)

let attack_of_state st chosen =
  let nodes = ref [] in
  Array.iteri (fun nd c -> if c then nodes := nd :: !nodes) chosen;
  {
    failed_nodes = Combin.Intset.of_array (Array.of_list !nodes);
    failed_objects = Kernel.killed st;
    exact = false;
  }

let local_search ~rng ?(restarts = 8) ?pool layout ~s ~k =
  let n = layout.Layout.n in
  let restarts = max 1 restarts in
  let kn0 = Kernel.make layout ~s in
  (* One pre-split RNG per restart: each restart's stream is a function of
     its index alone, so the plan is bit-identical at any [-j].  Restart 0
     is the deterministic greedy seed and draws nothing. *)
  let rngs = Combin.Rng.split_n rng restarts in
  let run_restart i =
    let st = Kernel.copy kn0 in
    let chosen = Array.make n false in
    let seed_nodes =
      if i = 0 then (greedy layout ~s ~k).failed_nodes
      else Combin.Rng.sample_distinct rngs.(i) ~n ~k
    in
    Array.iter
      (fun nd ->
        chosen.(nd) <- true;
        Kernel.add st nd)
      seed_nodes;
    let passes, swaps = improve_to_local_opt st chosen in
    (attack_of_state st chosen, passes, swaps, Kernel.updates st)
  in
  let indices = Array.init restarts Fun.id in
  let results = pmap pool run_restart indices in
  let candidates = Array.map (fun (a, _, _, _) -> a) results in
  (* Per-restart stats flushed in restart order on the calling domain. *)
  Array.iter
    (fun (_, passes, swaps, updates) ->
      Telemetry.Counter.incr m_ls_restarts;
      Telemetry.Counter.add m_ls_passes passes;
      Telemetry.Counter.add m_ls_swaps swaps;
      Telemetry.Counter.add m_kernel_updates updates)
    results;
  (* First-index-wins max: the earliest restart reaching the best damage
     provides the reported node set, as in the sequential reference. *)
  let best = ref candidates.(0) in
  Array.iter
    (fun a -> if a.failed_objects > !best.failed_objects then best := a)
    candidates;
  !best

let attack ?pool ?rng ?(restarts = 8) ?(exact_limit = 5e7) layout ~s ~k =
  Telemetry.Span.time m_attack_span @@ fun () ->
  let rng = match rng with Some r -> r | None -> Combin.Rng.create 0xADE5 in
  let n = layout.Layout.n in
  let combos =
    match Combin.Binomial.exact_opt n k with
    | Some c -> float_of_int c
    | None -> infinity
  in
  (* Estimated work: search-tree leaves times per-node update cost (the
     average number of objects per node). *)
  let avg_degree =
    float_of_int (layout.Layout.r * Layout.b layout) /. float_of_int n
  in
  if combos *. avg_degree <= exact_limit then begin
    Telemetry.Counter.incr m_attack_exact;
    let result = exact ?pool layout ~s ~k in
    if not result.exact then
      Log.warn (fun m ->
          m
            "exact adversary exhausted its global node budget on n=%d b=%d \
             s=%d k=%d: reporting the greedy attack as a heuristic"
            n (Layout.b layout) s k);
    result
  end
  else begin
    Telemetry.Counter.incr m_attack_heur;
    Log.debug (fun m ->
        m
          "adversary search space too large on n=%d b=%d s=%d k=%d \
           (~%.3g evals): result is heuristic (local search, %d restarts)"
          n (Layout.b layout) s k (combos *. avg_degree) restarts);
    local_search ~rng ~restarts ?pool layout ~s ~k
  end

let best ?pool ?rng ?exact_limit layout ~s ~k =
  attack ?pool ?rng ?exact_limit layout ~s ~k

let avail layout ~s:_ attack = Layout.b layout - attack.failed_objects
