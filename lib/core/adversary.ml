let log_src =
  Logs.Src.create "placement.adversary" ~doc:"worst-case adversary search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type attack = {
  failed_nodes : int array;
  failed_objects : int;
  exact : bool;
}

(* Search statistics.  Everything below is Stable: node visits, prunes and
   improvements are a pure function of the instance because branches never
   re-read the shared incumbent and budgets are pre-split per branch — so
   the counts are bit-identical at any -j.  Hot loops accumulate plain
   local ints and flush once per branch/run; the atomic counters are
   touched O(#branches) times, not O(#nodes). *)
let m_bb_branches = Telemetry.Registry.counter "core/adversary/bb/branches"
let m_bb_nodes = Telemetry.Registry.counter "core/adversary/bb/nodes_expanded"
let m_bb_leaves = Telemetry.Registry.counter "core/adversary/bb/leaves"
let m_bb_prunes = Telemetry.Registry.counter "core/adversary/bb/bound_prunes"
let m_bb_improves = Telemetry.Registry.counter "core/adversary/bb/improvements"
let m_bb_truncated = Telemetry.Registry.counter "core/adversary/bb/truncated_branches"
let m_bb_branch_nodes = Telemetry.Registry.histogram "core/adversary/bb/branch_nodes"
let m_greedy_runs = Telemetry.Registry.counter "core/adversary/greedy/runs"
let m_greedy_evals = Telemetry.Registry.counter "core/adversary/greedy/marginal_evals"
let m_ls_restarts = Telemetry.Registry.counter "core/adversary/local_search/restarts"
let m_ls_passes = Telemetry.Registry.counter "core/adversary/local_search/passes"
let m_ls_swaps = Telemetry.Registry.counter "core/adversary/local_search/swaps"
let m_attack_exact = Telemetry.Registry.counter "core/adversary/attack/exact_dispatch"
let m_attack_heur = Telemetry.Registry.counter "core/adversary/attack/heuristic_dispatch"
let m_attack_span = Telemetry.Registry.span "core/adversary/attack"

(* Incremental damage tracker: per-object replica-failure counts and the
   running number of failed objects. *)
type state = {
  s : int;
  node_objs : int array array;
  hits : int array;
  mutable failed : int;
}

(* [node_objs] is immutable once built and can be shared read-only across
   domains; each search task gets its own [hits]/[failed]. *)
let state_of ~s ~node_objs ~b = { s; node_objs; hits = Array.make b 0; failed = 0 }

let make_state layout ~s =
  state_of ~s ~node_objs:(Layout.node_objects layout) ~b:(Layout.b layout)

let add_node st nd =
  Array.iter
    (fun obj ->
      st.hits.(obj) <- st.hits.(obj) + 1;
      if st.hits.(obj) = st.s then st.failed <- st.failed + 1)
    st.node_objs.(nd)

let remove_node st nd =
  Array.iter
    (fun obj ->
      if st.hits.(obj) = st.s then st.failed <- st.failed - 1;
      st.hits.(obj) <- st.hits.(obj) - 1)
    st.node_objs.(nd)

let eval layout ~s failed_nodes =
  Layout.failed_objects layout ~s ~failed_nodes

let pmap pool f xs =
  match pool with
  | Some p -> Engine.Pool.parallel_map p f xs
  | None -> Array.map f xs

(* Marginal value of adding [nd]: (newly failed objects, progress toward
   s for not-yet-failed objects). *)
let marginal st nd =
  let newly = ref 0 and progress = ref 0 in
  Array.iter
    (fun obj ->
      let h = st.hits.(obj) in
      if h + 1 = st.s then incr newly;
      if h < st.s then incr progress)
    st.node_objs.(nd);
  (!newly, !progress)

let greedy layout ~s ~k =
  let n = layout.Layout.n in
  let st = make_state layout ~s in
  let chosen = Array.make n false in
  let picks = ref [] in
  let evals = ref 0 in
  for _ = 1 to k do
    let best_nd = ref (-1) and best_val = ref (-1, -1) in
    for nd = 0 to n - 1 do
      if not chosen.(nd) then begin
        let v = marginal st nd in
        incr evals;
        if v > !best_val then begin
          best_val := v;
          best_nd := nd
        end
      end
    done;
    chosen.(!best_nd) <- true;
    add_node st !best_nd;
    picks := !best_nd :: !picks
  done;
  Telemetry.Counter.incr m_greedy_runs;
  Telemetry.Counter.add m_greedy_evals !evals;
  let failed_nodes = Combin.Intset.of_array (Array.of_list !picks) in
  { failed_nodes; failed_objects = st.failed; exact = false }

let exact ?(budget = 50_000_000) ?pool layout ~s ~k =
  let n = layout.Layout.n in
  if k >= n then invalid_arg "Adversary.exact: k >= n";
  if k = 0 then { failed_nodes = [||]; failed_objects = 0; exact = true }
  else begin
    let node_objs = Layout.node_objects layout in
    let b = Layout.b layout in
    let degrees = Array.map Array.length node_objs in
    (* top_deg.(start).(m): sum of the m largest degrees among nodes with id
       >= start — an upper bound on additional damage from m more picks. *)
    let top_deg =
      Array.init (n + 1) (fun start ->
          let suffix = Array.sub degrees start (n - start) in
          Array.sort (fun a b -> compare b a) suffix;
          let acc = Array.make (k + 1) 0 in
          for m = 1 to k do
            acc.(m) <- acc.(m - 1) + (if m - 1 < Array.length suffix then suffix.(m - 1) else 0)
          done;
          acc)
    in
    (* The greedy attack seeds the incumbent: every branch prunes against a
       real attack from the first node visited, and a truncated search still
       carries a valid (greedy or better) best set.  The incumbent cell is
       read once here, before dispatch — branches publish improvements but
       never re-read it, so pruning is identical at every [-j] (see
       DESIGN.md §2 on the determinism discipline). *)
    let g = greedy layout ~s ~k in
    let incumbent = Engine.Bound.create g.failed_objects in
    let seed_bound = Engine.Bound.get incumbent in
    (* Parallelize over the top-level first-node choices; each branch owns
       its budget share so truncation does not depend on scheduling. *)
    let first_choices = Array.init (n - k + 1) Fun.id in
    let branch_budget = max 1 (budget / Array.length first_choices) in
    let run_branch nd0 =
      let st = state_of ~s ~node_objs ~b in
      let best = ref seed_bound and best_set = ref None in
      let current = Array.make k 0 in
      let visited = ref 0 in
      let leaves = ref 0 and prunes = ref 0 and improves = ref 0 in
      let truncated = ref false in
      let rec go start depth =
        incr visited;
        if !visited > branch_budget then truncated := true
        else if depth = k then begin
          incr leaves;
          if st.failed > !best then begin
            incr improves;
            best := st.failed;
            best_set := Some (Array.copy current);
            ignore (Engine.Bound.improve incumbent st.failed)
          end
        end
        else if st.failed + top_deg.(start).(k - depth) > !best then
          for nd = start to n - (k - depth) do
            if not !truncated then begin
              current.(depth) <- nd;
              add_node st nd;
              go (nd + 1) (depth + 1);
              remove_node st nd
            end
          done
        else incr prunes
      in
      current.(0) <- nd0;
      add_node st nd0;
      go (nd0 + 1) 1;
      ( !best,
        !best_set,
        !truncated,
        (!visited, !leaves, !prunes, !improves) )
    in
    let results = pmap pool run_branch first_choices in
    (* Deterministic fold: strict improvement, lowest branch wins ties.
       Branch statistics are flushed here, in branch order, on the calling
       domain — the hot loop above touches only plain local ints. *)
    let best = ref g.failed_objects and best_set = ref g.failed_nodes in
    let truncated = ref false in
    Array.iter
      (fun (v, set, tr, (visited, leaves, prunes, improves)) ->
        Telemetry.Counter.incr m_bb_branches;
        Telemetry.Counter.add m_bb_nodes visited;
        Telemetry.Counter.add m_bb_leaves leaves;
        Telemetry.Counter.add m_bb_prunes prunes;
        Telemetry.Counter.add m_bb_improves improves;
        if tr then Telemetry.Counter.incr m_bb_truncated;
        Telemetry.Histogram.observe m_bb_branch_nodes visited;
        if tr then truncated := true;
        match set with
        | Some nodes when v > !best ->
            best := v;
            best_set := Combin.Intset.of_array nodes
        | _ -> ())
      results;
    { failed_nodes = !best_set; failed_objects = !best; exact = not !truncated }
  end

(* Returns (passes, swaps): full sweeps of the outer loop and accepted
   swap moves — plain locals, flushed by the caller. *)
let improve_to_local_opt layout st chosen =
  let n = layout.Layout.n in
  let improved = ref true in
  let passes = ref 0 and swaps = ref 0 in
  while !improved do
    improved := false;
    incr passes;
    (try
       for nd_in = 0 to n - 1 do
         if chosen.(nd_in) then begin
           remove_node st nd_in;
           chosen.(nd_in) <- false;
           (* First-improvement swap search. *)
           let found = ref (-1) and found_gain = ref 0 in
           for nd_out = 0 to n - 1 do
             if (not chosen.(nd_out)) && nd_out <> nd_in then begin
               let newly, _ = marginal st nd_out in
               if newly > !found_gain then begin
                 found := nd_out;
                 found_gain := newly
               end
             end
           done;
           (* Putting nd_in back yields damage gain (its own marginal); a
              swap wins only if some other node strictly beats it. *)
           let back_gain, _ = marginal st nd_in in
           if !found >= 0 && !found_gain > back_gain then begin
             chosen.(!found) <- true;
             add_node st !found;
             incr swaps;
             improved := true;
             raise Exit
           end
           else begin
             chosen.(nd_in) <- true;
             add_node st nd_in
           end
         end
       done
     with Exit -> ())
  done;
  (!passes, !swaps)

let attack_of_state st chosen =
  let nodes = ref [] in
  Array.iteri (fun nd c -> if c then nodes := nd :: !nodes) chosen;
  {
    failed_nodes = Combin.Intset.of_array (Array.of_list !nodes);
    failed_objects = st.failed;
    exact = false;
  }

let local_search ~rng ?(restarts = 8) ?pool layout ~s ~k =
  let n = layout.Layout.n in
  let restarts = max 1 restarts in
  let node_objs = Layout.node_objects layout in
  let b = Layout.b layout in
  (* One pre-split RNG per restart: each restart's stream is a function of
     its index alone, so the plan is bit-identical at any [-j].  Restart 0
     is the deterministic greedy seed and draws nothing. *)
  let rngs = Combin.Rng.split_n rng restarts in
  let run_restart i =
    let st = state_of ~s ~node_objs ~b in
    let chosen = Array.make n false in
    let seed_nodes =
      if i = 0 then (greedy layout ~s ~k).failed_nodes
      else Combin.Rng.sample_distinct rngs.(i) ~n ~k
    in
    Array.iter
      (fun nd ->
        chosen.(nd) <- true;
        add_node st nd)
      seed_nodes;
    let passes, swaps = improve_to_local_opt layout st chosen in
    (attack_of_state st chosen, passes, swaps)
  in
  let indices = Array.init restarts Fun.id in
  let results = pmap pool run_restart indices in
  let candidates = Array.map (fun (a, _, _) -> a) results in
  (* Per-restart stats flushed in restart order on the calling domain. *)
  Array.iter
    (fun (_, passes, swaps) ->
      Telemetry.Counter.incr m_ls_restarts;
      Telemetry.Counter.add m_ls_passes passes;
      Telemetry.Counter.add m_ls_swaps swaps)
    results;
  (* First-index-wins max: the earliest restart reaching the best damage
     provides the reported node set, as in the sequential reference. *)
  let best = ref candidates.(0) in
  Array.iter
    (fun a -> if a.failed_objects > !best.failed_objects then best := a)
    candidates;
  !best

let attack ?pool ?rng ?(restarts = 8) ?(exact_limit = 5e7) layout ~s ~k =
  Telemetry.Span.time m_attack_span @@ fun () ->
  let rng = match rng with Some r -> r | None -> Combin.Rng.create 0xADE5 in
  let n = layout.Layout.n in
  let combos =
    match Combin.Binomial.exact_opt n k with
    | Some c -> float_of_int c
    | None -> infinity
  in
  (* Estimated work: search-tree leaves times per-node update cost (the
     average number of objects per node). *)
  let avg_degree =
    float_of_int (layout.Layout.r * Layout.b layout) /. float_of_int n
  in
  if combos *. avg_degree <= exact_limit then begin
    Telemetry.Counter.incr m_attack_exact;
    let result = exact ?pool layout ~s ~k in
    if not result.exact then
      Log.warn (fun m ->
          m
            "exact adversary truncated by node budget on n=%d b=%d s=%d k=%d: \
             reporting best-so-far (>= greedy) as a heuristic"
            n (Layout.b layout) s k);
    result
  end
  else begin
    Telemetry.Counter.incr m_attack_heur;
    Log.debug (fun m ->
        m
          "adversary search space too large on n=%d b=%d s=%d k=%d \
           (~%.3g evals): result is heuristic (local search, %d restarts)"
          n (Layout.b layout) s k (combos *. avg_degree) restarts);
    local_search ~rng ~restarts ?pool layout ~s ~k
  end

let best ?pool ?rng ?exact_limit layout ~s ~k =
  attack ?pool ?rng ?exact_limit layout ~s ~k

let avail layout ~s:_ attack = Layout.b layout - attack.failed_objects
