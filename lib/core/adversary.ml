let log_src =
  Logs.Src.create "placement.adversary" ~doc:"worst-case adversary search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type attack = {
  failed_nodes : int array;
  failed_objects : int;
  exact : bool;
}

(* Search statistics.  Everything below is Stable: node visits, prunes and
   improvements are a pure function of the instance because branches never
   re-read the shared incumbent and budgets are pre-split per branch — so
   the counts are bit-identical at any -j.  Hot loops accumulate plain
   local ints and flush once per branch/run; the atomic counters are
   touched O(#branches) times, not O(#nodes). *)
let m_bb_branches = Telemetry.Registry.counter "core/adversary/bb/branches"
let m_bb_nodes = Telemetry.Registry.counter "core/adversary/bb/nodes_expanded"
let m_bb_leaves = Telemetry.Registry.counter "core/adversary/bb/leaves"
let m_bb_prunes = Telemetry.Registry.counter "core/adversary/bb/bound_prunes"
let m_bb_improves = Telemetry.Registry.counter "core/adversary/bb/improvements"
let m_bb_truncated = Telemetry.Registry.counter "core/adversary/bb/truncated_branches"
let m_bb_branch_nodes = Telemetry.Registry.histogram "core/adversary/bb/branch_nodes"
let m_greedy_runs = Telemetry.Registry.counter "core/adversary/greedy/runs"
let m_greedy_evals = Telemetry.Registry.counter "core/adversary/greedy/marginal_evals"
let m_ls_restarts = Telemetry.Registry.counter "core/adversary/local_search/restarts"
let m_ls_passes = Telemetry.Registry.counter "core/adversary/local_search/passes"
let m_ls_swaps = Telemetry.Registry.counter "core/adversary/local_search/swaps"
let m_attack_exact = Telemetry.Registry.counter "core/adversary/attack/exact_dispatch"
let m_attack_heur = Telemetry.Registry.counter "core/adversary/attack/heuristic_dispatch"
let m_attack_span = Telemetry.Registry.span "core/adversary/attack"

(* Kernel counters (see Kernel and DESIGN.md §10): incremental add/remove
   updates, CELF heap activity, and how deep the B&B unwinds state.  All
   Stable — flushed per run or per branch in deterministic order. *)
let m_kernel_updates = Telemetry.Registry.counter "core/adversary/kernel/updates"
let m_kernel_pops = Telemetry.Registry.counter "core/adversary/kernel/heap_pops"
let m_kernel_stale =
  Telemetry.Registry.counter "core/adversary/kernel/stale_reevals"
let m_kernel_undos = Telemetry.Registry.counter "core/adversary/kernel/bb_undos"
let m_kernel_undo_depth =
  Telemetry.Registry.histogram "core/adversary/kernel/bb_undo_depth"

(* One-shot scoring: a single O(b·r) merge pass with no allocation.
   Routing this through a throwaway Kernel would rebuild the per-object
   incidence bitsets on every call; repeated-eval callers should hold a
   {!Kernel.t} across calls instead (Kernel.check, or add + killed). *)
let eval layout ~s failed_nodes = Layout.failed_objects layout ~s ~failed_nodes

let pmap pool f xs =
  match pool with
  | Some p -> Engine.Pool.parallel_map p f xs
  | None -> Array.map f xs

let greedy ?pool layout ~s ~k =
  let kn = Kernel.make layout ~s in
  let picks, stats = Kernel.select_greedy_sharded ?pool kn ~picks:k in
  Telemetry.Counter.incr m_greedy_runs;
  Telemetry.Counter.add m_greedy_evals stats.Kernel.evals;
  Telemetry.Counter.add m_kernel_pops stats.Kernel.heap_pops;
  Telemetry.Counter.add m_kernel_stale stats.Kernel.stale_reevals;
  Telemetry.Counter.add m_kernel_updates (Kernel.updates kn);
  {
    failed_nodes = Combin.Intset.of_array picks;
    failed_objects = Kernel.killed kn;
    exact = false;
  }

let exact ?(budget = 50_000_000) ?pool layout ~s ~k =
  let n = layout.Layout.n in
  if k >= n then invalid_arg "Adversary.exact: k >= n";
  if k = 0 then { failed_nodes = [||]; failed_objects = 0; exact = true }
  else begin
    let kn0 = Kernel.make layout ~s in
    let degrees = Array.init n (Kernel.degree kn0) in
    (* top_deg.(start).(m): sum of the m largest degrees among nodes with id
       >= start — an upper bound on additional damage from m more picks.
       Built by one suffix sweep that maintains the k largest degrees seen
       so far in a sorted scratch row (insertion is O(k)), for O(n·k) total
       against the O(n²·log n) of sorting every suffix; only the top k of a
       suffix ever enter a bound, so the values are identical. *)
    let top_deg =
      let acc = Array.make_matrix (n + 1) (k + 1) 0 in
      let top = Array.make k 0 in
      let top_len = ref 0 in
      for start = n - 1 downto 0 do
        let d = degrees.(start) in
        if !top_len < k then begin
          let i = ref !top_len in
          while !i > 0 && top.(!i - 1) < d do
            top.(!i) <- top.(!i - 1);
            decr i
          done;
          top.(!i) <- d;
          incr top_len
        end
        else if k > 0 && d > top.(k - 1) then begin
          let i = ref (k - 1) in
          while !i > 0 && top.(!i - 1) < d do
            top.(!i) <- top.(!i - 1);
            decr i
          done;
          top.(!i) <- d
        end;
        let row = acc.(start) in
        for m = 1 to k do
          row.(m) <- row.(m - 1) + (if m - 1 < !top_len then top.(m - 1) else 0)
        done
      done;
      acc
    in
    (* The greedy attack seeds the incumbent: every branch prunes against a
       real attack from the first node visited, and a truncated search still
       carries a valid (greedy or better) best set.  The incumbent cell is
       read once here, before dispatch — branches publish improvements but
       never re-read it, so pruning is identical at every [-j] (see
       DESIGN.md §2 on the determinism discipline). *)
    let g = greedy ?pool layout ~s ~k in
    let incumbent = Engine.Bound.create g.failed_objects in
    let seed_bound = Engine.Bound.get incumbent in
    (* Parallelize over the top-level first-node choices; each branch owns
       its budget share so truncation does not depend on scheduling.  Each
       branch threads its own kernel copy down and up the tree: a leaf
       evaluation is the O(load) delta of the last pick, never a fresh
       O(b·r) rescan. *)
    let first_choices = Array.init (n - k + 1) Fun.id in
    let branch_budget = max 1 (budget / Array.length first_choices) in
    let run_branch nd0 =
      let st = Kernel.copy kn0 in
      let best = ref seed_bound and best_set = ref None in
      let current = Array.make k 0 in
      let visited = ref 0 in
      let leaves = ref 0 and prunes = ref 0 and improves = ref 0 in
      let undos = ref 0 and max_undo_depth = ref 0 in
      let truncated = ref false in
      let rec go start depth =
        incr visited;
        if !visited > branch_budget then truncated := true
        else if depth = k then begin
          incr leaves;
          if Kernel.killed st > !best then begin
            incr improves;
            best := Kernel.killed st;
            best_set := Some (Array.copy current);
            ignore (Engine.Bound.improve incumbent (Kernel.killed st))
          end
        end
        else if Kernel.killed st + top_deg.(start).(k - depth) > !best then
          for nd = start to n - (k - depth) do
            if not !truncated then begin
              current.(depth) <- nd;
              Kernel.add st nd;
              go (nd + 1) (depth + 1);
              Kernel.remove st nd;
              incr undos;
              if depth + 1 > !max_undo_depth then max_undo_depth := depth + 1
            end
          done
        else incr prunes
      in
      current.(0) <- nd0;
      Kernel.add st nd0;
      go (nd0 + 1) 1;
      ( !best,
        !best_set,
        !truncated,
        (!visited, !leaves, !prunes, !improves),
        (Kernel.updates st, !undos, !max_undo_depth) )
    in
    let results = pmap pool run_branch first_choices in
    (* Deterministic fold: strict improvement, lowest branch wins ties.
       Branch statistics are flushed here, in branch order, on the calling
       domain — the hot loop above touches only plain local ints. *)
    let best = ref g.failed_objects and best_set = ref g.failed_nodes in
    let truncated = ref false in
    Array.iter
      (fun (v, set, tr, (visited, leaves, prunes, improves),
            (updates, undos, max_undo_depth)) ->
        Telemetry.Counter.incr m_bb_branches;
        Telemetry.Counter.add m_bb_nodes visited;
        Telemetry.Counter.add m_bb_leaves leaves;
        Telemetry.Counter.add m_bb_prunes prunes;
        Telemetry.Counter.add m_bb_improves improves;
        Telemetry.Counter.add m_kernel_updates updates;
        Telemetry.Counter.add m_kernel_undos undos;
        Telemetry.Histogram.observe m_kernel_undo_depth max_undo_depth;
        if tr then Telemetry.Counter.incr m_bb_truncated;
        Telemetry.Histogram.observe m_bb_branch_nodes visited;
        if tr then truncated := true;
        match set with
        | Some nodes when v > !best ->
            best := v;
            best_set := Combin.Intset.of_array nodes
        | _ -> ())
      results;
    { failed_nodes = !best_set; failed_objects = !best; exact = not !truncated }
  end

(* Returns (passes, swaps): full sweeps of the outer loop and accepted
   swap moves — plain locals, flushed by the caller. *)
let improve_to_local_opt st chosen =
  let n = Array.length chosen in
  let improved = ref true in
  let passes = ref 0 and swaps = ref 0 in
  while !improved do
    improved := false;
    incr passes;
    (try
       for nd_in = 0 to n - 1 do
         if chosen.(nd_in) then begin
           Kernel.remove st nd_in;
           chosen.(nd_in) <- false;
           (* First-improvement swap search. *)
           let found = ref (-1) and found_gain = ref 0 in
           for nd_out = 0 to n - 1 do
             if (not chosen.(nd_out)) && nd_out <> nd_in then begin
               let newly, _ = Kernel.marginal st nd_out in
               if newly > !found_gain then begin
                 found := nd_out;
                 found_gain := newly
               end
             end
           done;
           (* Putting nd_in back yields damage gain (its own marginal); a
              swap wins only if some other node strictly beats it. *)
           let back_gain, _ = Kernel.marginal st nd_in in
           if !found >= 0 && !found_gain > back_gain then begin
             chosen.(!found) <- true;
             Kernel.add st !found;
             incr swaps;
             improved := true;
             raise Exit
           end
           else begin
             chosen.(nd_in) <- true;
             Kernel.add st nd_in
           end
         end
       done
     with Exit -> ())
  done;
  (!passes, !swaps)

let attack_of_state st chosen =
  let nodes = ref [] in
  Array.iteri (fun nd c -> if c then nodes := nd :: !nodes) chosen;
  {
    failed_nodes = Combin.Intset.of_array (Array.of_list !nodes);
    failed_objects = Kernel.killed st;
    exact = false;
  }

let local_search ~rng ?(restarts = 8) ?pool layout ~s ~k =
  let n = layout.Layout.n in
  let restarts = max 1 restarts in
  let kn0 = Kernel.make layout ~s in
  (* One pre-split RNG per restart: each restart's stream is a function of
     its index alone, so the plan is bit-identical at any [-j].  Restart 0
     is the deterministic greedy seed and draws nothing. *)
  let rngs = Combin.Rng.split_n rng restarts in
  let run_restart i =
    let st = Kernel.copy kn0 in
    let chosen = Array.make n false in
    let seed_nodes =
      if i = 0 then (greedy layout ~s ~k).failed_nodes
      else Combin.Rng.sample_distinct rngs.(i) ~n ~k
    in
    Array.iter
      (fun nd ->
        chosen.(nd) <- true;
        Kernel.add st nd)
      seed_nodes;
    let passes, swaps = improve_to_local_opt st chosen in
    (attack_of_state st chosen, passes, swaps, Kernel.updates st)
  in
  let indices = Array.init restarts Fun.id in
  let results = pmap pool run_restart indices in
  let candidates = Array.map (fun (a, _, _, _) -> a) results in
  (* Per-restart stats flushed in restart order on the calling domain. *)
  Array.iter
    (fun (_, passes, swaps, updates) ->
      Telemetry.Counter.incr m_ls_restarts;
      Telemetry.Counter.add m_ls_passes passes;
      Telemetry.Counter.add m_ls_swaps swaps;
      Telemetry.Counter.add m_kernel_updates updates)
    results;
  (* First-index-wins max: the earliest restart reaching the best damage
     provides the reported node set, as in the sequential reference. *)
  let best = ref candidates.(0) in
  Array.iter
    (fun a -> if a.failed_objects > !best.failed_objects then best := a)
    candidates;
  !best

let attack ?pool ?rng ?(restarts = 8) ?(exact_limit = 5e7) layout ~s ~k =
  Telemetry.Span.time m_attack_span @@ fun () ->
  let rng = match rng with Some r -> r | None -> Combin.Rng.create 0xADE5 in
  let n = layout.Layout.n in
  let combos =
    match Combin.Binomial.exact_opt n k with
    | Some c -> float_of_int c
    | None -> infinity
  in
  (* Estimated work: search-tree leaves times per-node update cost (the
     average number of objects per node). *)
  let avg_degree =
    float_of_int (layout.Layout.r * Layout.b layout) /. float_of_int n
  in
  if combos *. avg_degree <= exact_limit then begin
    Telemetry.Counter.incr m_attack_exact;
    let result = exact ?pool layout ~s ~k in
    if not result.exact then
      Log.warn (fun m ->
          m
            "exact adversary truncated by node budget on n=%d b=%d s=%d k=%d: \
             reporting best-so-far (>= greedy) as a heuristic"
            n (Layout.b layout) s k);
    result
  end
  else begin
    Telemetry.Counter.incr m_attack_heur;
    Log.debug (fun m ->
        m
          "adversary search space too large on n=%d b=%d s=%d k=%d \
           (~%.3g evals): result is heuristic (local search, %d restarts)"
          n (Layout.b layout) s k (combos *. avg_degree) restarts);
    local_search ~rng ~restarts ?pool layout ~s ~k
  end

let best ?pool ?rng ?exact_limit layout ~s ~k =
  attack ?pool ?rng ?exact_limit layout ~s ~k

let avail layout ~s:_ attack = Layout.b layout - attack.failed_objects
