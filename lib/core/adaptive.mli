(** Online (adaptive) Combo placement — the paper's future-work item.

    Sec. IV-D notes that Combo "requires estimates of the number b of
    objects" and that "an algorithm to adapt our placements as new
    objects come and go would be an interesting advance; we leave
    investigation of such an algorithm to future work."  This module
    supplies one:

    - each overlap level x keeps its design's blocks with per-block
      usage counts; the {e effective} λx is μx · (maximum block usage),
      which bounds the Definition-2 overlap of the live placement, so
      Lemma 3's availability bound applies at every instant;
    - a new object is routed to the level whose effective λ grows the
      least (ties: the emptier level), and within a level to a
      least-used block, so λ only grows when a level is saturated;
    - removing an object frees its block slot for reuse.

    The complete (x = r−1) level generates fresh r-subsets lazily, so
    arbitrarily many objects are always placeable.  {!lower_bound} is the
    live Lemma-3 guarantee; {!optimal_bound} re-runs the offline DP at
    the current population for comparison (the "cost of being online"). *)

type t

val create :
  ?levels:Combo.level array -> n:int -> r:int -> s:int -> k:int -> unit -> t
(** Levels default to {!Combo.default_levels} restricted to materializable
    designs.  @raise Invalid_argument if no level is usable. *)

val n : t -> int
val r : t -> int
val s : t -> int
val size : t -> int
(** Current number of live objects. *)

val add : t -> int
(** Place a new object; returns its id (ids are never reused). *)

val peek : t -> int array
(** The replica set the next {!add} would be assigned, sorted, without
    committing anything: the same level choice and the same block
    decision order as [add], but no hint, pool or lazy-source state
    changes — so [peek t] followed by [add t] assigns exactly the peeked
    nodes, and a peek never perturbs where later objects land.
    Advisory routing for {!Dsim.Api}'s [advise create].
    @raise Invalid_argument when no level is usable (the same condition
    under which {!add} raises). *)

val add_many : t -> int -> int list

val remove : t -> int -> unit
(** @raise Not_found if the id is not live. *)

val replace : t -> int -> unit
(** Re-route a live object to a fresh block chosen by the usual routing
    rule, keeping its id.  Used when the object's current block was
    blocked by {!retire_node}.  The destination is chosen {e before} the
    old slot is released, so a routing failure ([Invalid_argument], no
    usable level) leaves the placement untouched.
    @raise Not_found if the id is not live. *)

val retire_node : t -> int -> int list
(** Permanently retire a node: every block containing it becomes
    ineligible for placement.  Returns the sorted ids of live objects
    currently assigned to a newly blocked block — the caller must
    {!replace} (or {!remove}) each of them to restore the invariant that
    blocked blocks hold no objects.  @raise Invalid_argument if the node
    is out of range or already retired. *)

val unretire_node : t -> int -> unit
(** Undo {!retire_node} (node re-joins): blocks containing no other
    retired node become eligible again.  @raise Invalid_argument if the
    node is out of range or not retired. *)

val retired : t -> int -> bool
(** Whether a node is currently retired. *)

val has_capacity : t -> bool
(** Some level can still accept an object (an eligible block exists or
    can be generated).  When false, {!add} and {!replace} raise. *)

val replica_set : t -> int -> int array
(** The nodes hosting a live object's replicas.
    @raise Not_found if the id is not live. *)

val level_of : t -> int -> int
(** Which overlap level x a live object was placed at. *)

val lambdas : t -> int array
(** Effective λx per level (0 = unused). *)

val lower_bound : ?k:int -> t -> int
(** Lemma 3 on the live placement: size − Σx ⌊λx C(k,x+1)/C(s,x+1)⌋,
    clamped at 0.  [k] defaults to the configured k. *)

val optimal_bound : ?k:int -> t -> int
(** The offline DP's bound for the current population size — what a
    from-scratch Combo placement would guarantee. *)

val layout : t -> Layout.t
(** Snapshot of the live objects (in increasing id order). *)

val check_invariants : t -> unit
(** Internal-consistency check (usage counts vs live assignments, λ
    bookkeeping); raises [Failure] on violation.  Test-suite hook. *)
