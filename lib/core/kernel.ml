type incidence =
  | Unknown  (* not yet needed: only {!check} pays for the bitsets *)
  | Multiplicity
      (* some unit hosts an object more than once (e.g. a fault domain
         with two replicas of it): popcounts would undercount hits *)
  | Bitsets of Combin.Bitset.t array  (* object -> units hosting it *)

type hits_plane =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  s : int;
  b : int;
  csr : Combin.Csr.t;  (* shared flat incidence: unit -> replicas *)
  inc : incidence ref;  (* lazy bitset cache, shared across copies *)
  hits : hits_plane;  (* per-object failed-replica counters *)
  failed : Combin.Bitset.t;
  mutable killed : int;
  mutable updates : int;
}

(* Built on first use: the incremental paths (add/remove/marginal and
   select_greedy) never touch the bitsets, so greedy-only callers skip
   the O(b·units/63) allocation entirely.  Duplicate detection is fused
   into the build — a second occurrence of (obj, u) sees its bit set.
   The cache cell is shared by every copy, so one build serves all
   branches of a search. *)
let incidence t =
  match !(t.inc) with
  | (Multiplicity | Bitsets _) as inc -> inc
  | Unknown ->
      let units = Combin.Csr.rows t.csr in
      let out = Array.init t.b (fun _ -> Combin.Bitset.create units) in
      let inc =
        try
          for u = 0 to units - 1 do
            Combin.Csr.iter_row t.csr u (fun obj ->
                if Combin.Bitset.mem out.(obj) u then raise Exit;
                Combin.Bitset.add out.(obj) u)
          done;
          Bitsets out
        with Exit -> Multiplicity
      in
      t.inc := inc;
      inc

let fresh_hits b =
  let h = Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout b in
  Bigarray.Array1.fill h 0;
  h

let of_csr ~s csr =
  {
    s;
    b = Combin.Csr.cols csr;
    csr;
    inc = ref Unknown;
    hits = fresh_hits (Combin.Csr.cols csr);
    failed = Combin.Bitset.create (Combin.Csr.rows csr);
    (* s <= 0 kills every object unconditionally, matching
       Layout.failed_objects' >= s count. *)
    killed = (if s <= 0 then Combin.Csr.cols csr else 0);
    updates = 0;
  }

let of_groups ~s ~b groups = of_csr ~s (Combin.Csr.of_arrays ~cols:b groups)
let make layout ~s = of_csr ~s (Layout.incidence layout)

(* An exact duplicate of the current attack state: the counter plane is
   one blit, the incidence is shared untouched.  Copying an all-up
   kernel (the only use in-tree) therefore yields an all-up kernel, as
   the pre-CSR copy did. *)
let copy t =
  let hits = fresh_hits t.b in
  Bigarray.Array1.blit t.hits hits;
  { t with hits; failed = Combin.Bitset.copy t.failed; updates = 0 }

let reset t =
  Bigarray.Array1.fill t.hits 0;
  Combin.Bitset.clear t.failed;
  t.killed <- (if t.s <= 0 then t.b else 0)

let units t = Combin.Csr.rows t.csr
let objects t = t.b
let threshold t = t.s
let csr t = t.csr
let killed t = t.killed
let hits t obj = t.hits.{obj}
let failed_units t = Combin.Bitset.to_array t.failed
let updates t = t.updates

let check_unit t u name =
  if u < 0 || u >= units t then
    invalid_arg (Printf.sprintf "Kernel.%s: unit %d out of range" name u)

let degree t u =
  check_unit t u "degree";
  Combin.Csr.degree t.csr u

let add t u =
  check_unit t u "add";
  if Combin.Bitset.mem t.failed u then
    invalid_arg "Kernel.add: unit already failed";
  Combin.Bitset.add t.failed u;
  t.updates <- t.updates + 1;
  let hits = t.hits and s = t.s in
  let row = t.csr.Combin.Csr.row_ptr and ents = t.csr.Combin.Csr.entries in
  let lo = Bigarray.Array1.unsafe_get row u
  and hi = Bigarray.Array1.unsafe_get row (u + 1) in
  let killed = ref t.killed in
  for i = lo to hi - 1 do
    let obj = Bigarray.Array1.unsafe_get ents i in
    let h = Bigarray.Array1.unsafe_get hits obj + 1 in
    Bigarray.Array1.unsafe_set hits obj h;
    if h = s then incr killed
  done;
  t.killed <- !killed

let remove t u =
  check_unit t u "remove";
  if not (Combin.Bitset.mem t.failed u) then
    invalid_arg "Kernel.remove: unit not failed";
  Combin.Bitset.remove t.failed u;
  t.updates <- t.updates + 1;
  let hits = t.hits and s = t.s in
  let row = t.csr.Combin.Csr.row_ptr and ents = t.csr.Combin.Csr.entries in
  let lo = Bigarray.Array1.unsafe_get row u
  and hi = Bigarray.Array1.unsafe_get row (u + 1) in
  let killed = ref t.killed in
  for i = lo to hi - 1 do
    let obj = Bigarray.Array1.unsafe_get ents i in
    let h = Bigarray.Array1.unsafe_get hits obj in
    if h = s then decr killed;
    Bigarray.Array1.unsafe_set hits obj (h - 1)
  done;
  t.killed <- !killed

let marginal t u =
  check_unit t u "marginal";
  let newly = ref 0 and progress = ref 0 in
  let hits = t.hits and s = t.s in
  let row = t.csr.Combin.Csr.row_ptr and ents = t.csr.Combin.Csr.entries in
  let lo = Bigarray.Array1.unsafe_get row u
  and hi = Bigarray.Array1.unsafe_get row (u + 1) in
  for i = lo to hi - 1 do
    let h =
      Bigarray.Array1.unsafe_get hits (Bigarray.Array1.unsafe_get ents i)
    in
    if h + 1 = s then incr newly;
    if h < s then incr progress
  done;
  (!newly, !progress)

(* Multiplicity-bearing (or forced) evaluation: one scratch counter pass
   over the rows of the set.  O(b) scratch, one-shot callers only. *)
let scratch_count t set =
  let counts = Array.make t.b 0 in
  let dead = ref 0 in
  Array.iter
    (fun u ->
      Combin.Csr.iter_row t.csr u (fun obj ->
          let h = counts.(obj) + 1 in
          counts.(obj) <- h;
          if h = t.s then incr dead))
    set;
  !dead

let check_scratch t set =
  if not (Combin.Intset.is_sorted_distinct set) then
    invalid_arg "Kernel.check_scratch: unit set not sorted/distinct";
  if t.s <= 0 then t.b else scratch_count t set

let check t set =
  if not (Combin.Intset.is_sorted_distinct set) then
    invalid_arg "Kernel.check: unit set not sorted/distinct";
  if t.s <= 0 then t.b
  else
    match incidence t with
    | Bitsets obj_units ->
        (* Popcount-threshold over the per-object incidence bitsets. *)
        let fail = Combin.Bitset.of_array ~capacity:(units t) set in
        let dead = ref 0 in
        Array.iter
          (fun hosts ->
            if Combin.Bitset.inter_count hosts fail >= t.s then incr dead)
          obj_units;
        !dead
    | Unknown | Multiplicity -> scratch_count t set

(* ------------------------------------------------------------------ *)
(* CELF lazy-greedy selection.

   The scan objective is the pair (newly, progress), lexicographic,
   ties to the lowest unit id.  Pack it into one int,
   P(ne,pr) = ne·base + pr, so pair order = int order — provided base
   exceeds every reachable progress value.  Both components count
   *occurrences* in the unit's CSR row, so on a group kernel (fault
   domains holding up to r replicas per object) they range up to
   degree(u), which can exceed b (e.g. 2 datacenters with r = 3 give
   degree ≈ 1.5·b); b+1 is NOT a safe base there, hence base is derived
   from the largest row degree.  [newly] is not monotone under set
   growth (an object two short of s contributes 0 today and 1 after
   another hit), so a stale exact value is NOT a valid cache — but
   [progress] never grows (hits only increase while a unit stays
   unchosen), hence B(pr) = P(pr,pr) ≥ every future exact value of that
   unit.  The heap therefore stores progress-derived bounds only; each
   pop pays an exact O(load) re-check, and a round closes only when the
   best exact value seen cannot be beaten or tied-with-lower-id by any
   remaining bound.  (B = P forces newly = progress, so the tie test
   against a bound is exact.) *)

type greedy_stats = { evals : int; heap_pops : int; stale_reevals : int }

(* One selection round over [heap] against the counter state [st]: pop
   candidates while a remaining bound could beat or tie-with-lower-id
   the best exact value seen, then re-push every popped loser with a
   refreshed bound in ONE batch (Heap.Int_max.push_many) while the
   winner stays out.  The batch changes only heap internals — the heap
   order is total, so pops (and hence picks and stats) are identical to
   the one-push-per-loser formulation, minus its per-loser sift cost.
   Returns best_id = -1 on an empty heap (sharded callers own shards
   that may run dry; select_greedy guards against it up front).

   [marginal] abstracts the counter state being scanned: the flat kernel
   passes [marginal t], the dynamic kernel ({!Dyn.worst_case}) a closure
   over its scratch plane.  Every comparison below is a lexicographic
   (newly, progress) pair comparison — valid for ANY packing base
   exceeding the largest reachable component — so two callers whose
   marginals agree pointwise produce identical pops, picks and stats
   even when their packing bases differ. *)
let round_scan ~marginal heap ~packed =
  let best_key = ref (-1) and best_id = ref (-1) and best_pr = ref 0 in
  let evals = ref 0 and pops = ref 0 and stale = ref 0 in
  let cap = ref 16 and cnt = ref 0 and best_slot = ref (-1) in
  let lkeys = ref (Array.make 16 0) and lpays = ref (Array.make 16 0) in
  let record_popped key u =
    if !cnt = !cap then begin
      cap := 2 * !cap;
      let k2 = Array.make !cap 0 and p2 = Array.make !cap 0 in
      Array.blit !lkeys 0 k2 0 !cnt;
      Array.blit !lpays 0 p2 0 !cnt;
      lkeys := k2;
      lpays := p2
    end;
    !lkeys.(!cnt) <- key;
    !lpays.(!cnt) <- u;
    incr cnt
  in
  let stop = ref false in
  while not !stop do
    match Combin.Heap.Int_max.peek heap with
    | None -> stop := true
    | Some (key, u) ->
        (* Remaining exact values are ≤ key; they lose outright when
           key < best, and on key = best any exact tie sits at an id
           above [u] > [best_id], which the scan would also reject. *)
        if key < !best_key || (key = !best_key && u > !best_id) then
          stop := true
        else begin
          ignore (Combin.Heap.Int_max.pop heap);
          incr pops;
          let ne, pr = marginal u in
          incr evals;
          let exact = packed ne pr in
          if packed pr pr < key then incr stale;
          record_popped (packed pr pr) u;
          if exact > !best_key || (exact = !best_key && u < !best_id) then begin
            best_key := exact;
            best_id := u;
            best_pr := pr;
            best_slot := !cnt - 1
          end
        end
  done;
  (* Losers re-enter with refreshed bounds in one batch; the winner is
     swapped to the tail and withheld. *)
  if !best_slot >= 0 then begin
    let last = !cnt - 1 in
    !lkeys.(!best_slot) <- !lkeys.(last);
    !lpays.(!best_slot) <- !lpays.(last);
    cnt := last
  end;
  Combin.Heap.Int_max.push_many heap ~keys:!lkeys ~payloads:!lpays ~count:!cnt;
  (!best_key, !best_id, !best_pr, !evals, !pops, !stale)

let select_greedy ?heap t ~picks =
  let n = units t in
  if picks > n - Combin.Bitset.count t.failed then
    invalid_arg "Kernel.select_greedy: more picks than unchosen units";
  let base = 1 + Combin.Csr.max_degree t.csr in
  let packed ne pr = (ne * base) + pr in
  let heap =
    (* A caller-owned heap is cleared and refilled: the pop order is a
       strict total order on (key, payload), so reuse cannot change any
       pick — it only skips the per-call allocation. *)
    match heap with
    | Some h ->
        Combin.Heap.Int_max.clear h;
        h
    | None -> Combin.Heap.Int_max.create ()
  in
  let evals = ref 0 and pops = ref 0 and stale = ref 0 in
  for u = 0 to n - 1 do
    if not (Combin.Bitset.mem t.failed u) then begin
      let _, pr = marginal t u in
      incr evals;
      Combin.Heap.Int_max.push heap ~key:(packed pr pr) u
    end
  done;
  let out = Array.make picks 0 in
  for pick = 0 to picks - 1 do
    let _, best_id, _, e, p, st = round_scan ~marginal:(marginal t) heap ~packed in
    evals := !evals + e;
    pops := !pops + p;
    stale := !stale + st;
    add t best_id;
    out.(pick) <- best_id
  done;
  (out, { evals = !evals; heap_pops = !pops; stale_reevals = !stale })

(* ------------------------------------------------------------------ *)
(* Sharded CELF: partition the unit ids into contiguous shards, give
   each shard its own bound heap, and per pick let every shard produce
   its exact-checked local argmax in parallel; the caller reduces with
   the global (packed value desc, unit id asc) order.  The winning
   unit's id is the lowest id attaining the global exact maximum —
   exactly the sequential scan's choice — so picks are bit-identical to
   {!select_greedy} at any pool size.

   All shards read the caller's ONE counter state: within a round the
   kernel is never mutated (marginal is read-only; a shard mutates only
   its own heap), and the winner's O(load) add lands on the calling
   domain between rounds — so rounds are data-race free and the hits
   plane stays a single cache-resident copy instead of a per-shard
   mirror (which costs ~2× wall on b ~ 10^6 planes from the extra
   memory traffic alone).  The shard count is a pure function of the
   unit count (never of the pool), so the eval/pop statistics are
   themselves deterministic at any -j (the Stable telemetry contract);
   see DESIGN.md §11. *)

type shard = {
  heap : Combin.Heap.Int_max.t;
  lo : int;
  hi : int;  (* owned unit ids: [lo, hi) *)
  mutable filled : bool;
  mutable held : int;  (* local best withheld from the heap; -1 = none *)
  mutable held_pr : int;  (* its progress at the exact eval, a valid bound *)
  mutable s_evals : int;
  mutable s_pops : int;
  mutable s_stale : int;
}

(* ~512 units per shard: small enough that a 10^4-node instance spreads
   over ~20 shards, large enough that a shard amortizes its batch
   dispatch; capped so shard state stays bounded.  Must stay a pure
   function of [units] — see above. *)
let default_shards units = min 64 (max 1 (units / 512))

let pmap pool f xs =
  match pool with
  | Some p -> Engine.Pool.parallel_map p f xs
  | None -> Array.map f xs

let select_greedy_sharded ?pool ?shards t ~picks =
  let n = units t in
  if picks > n - Combin.Bitset.count t.failed then
    invalid_arg "Kernel.select_greedy: more picks than unchosen units";
  let nshards =
    match shards with Some s -> max 1 s | None -> default_shards n
  in
  if nshards = 1 then select_greedy t ~picks
  else begin
    let base = 1 + Combin.Csr.max_degree t.csr in
    let packed ne pr = (ne * base) + pr in
    let shards_arr =
      Array.init nshards (fun i ->
          {
            heap = Combin.Heap.Int_max.create ();
            lo = i * n / nshards;
            hi = (i + 1) * n / nshards;
            filled = false;
            held = -1;
            held_pr = 0;
            s_evals = 0;
            s_pops = 0;
            s_stale = 0;
          })
    in
    let out = Array.make picks 0 in
    let pending = ref (-1) in
    for pick = 0 to picks - 1 do
      (* The previous winner's damage lands once, here, on the calling
         domain: the in-flight round then only reads the kernel. *)
      if !pending >= 0 then add t !pending;
      let results =
        pmap pool
          (fun sh ->
            (* A held local best that lost the previous global reduce
               re-enters with its (still valid) refreshed bound. *)
            if sh.held >= 0 && sh.held <> !pending then
              Combin.Heap.Int_max.push sh.heap
                ~key:(packed sh.held_pr sh.held_pr) sh.held;
            sh.held <- -1;
            if not sh.filled then begin
              (* Deferred initial fill: the O(units·load) bound pass is
                 the bulk of a greedy run, so it rides the first
                 parallel round. *)
              sh.filled <- true;
              for u = sh.lo to sh.hi - 1 do
                if not (Combin.Bitset.mem t.failed u) then begin
                  let _, pr = marginal t u in
                  sh.s_evals <- sh.s_evals + 1;
                  Combin.Heap.Int_max.push sh.heap ~key:(packed pr pr) u
                end
              done
            end;
            let best_key, best_id, best_pr, e, p, st =
              round_scan ~marginal:(marginal t) sh.heap ~packed
            in
            sh.s_evals <- sh.s_evals + e;
            sh.s_pops <- sh.s_pops + p;
            sh.s_stale <- sh.s_stale + st;
            if best_id >= 0 then begin
              sh.held <- best_id;
              sh.held_pr <- best_pr
            end;
            (best_key, best_id))
          shards_arr
      in
      (* Reduce: greatest exact value, ties to the lowest unit id — the
         same total order the sequential scan applies globally. *)
      let bk = ref (-1) and bid = ref (-1) in
      Array.iter
        (fun (key, id) ->
          if id >= 0 && (key > !bk || (key = !bk && id < !bid)) then begin
            bk := key;
            bid := id
          end)
        results;
      out.(pick) <- !bid;
      pending := !bid
    done;
    (* The final winner's add: the kernel ends with every pick applied,
       per the {!select_greedy} contract. *)
    if !pending >= 0 then add t !pending;
    let evals = ref 0 and pops = ref 0 and stale = ref 0 in
    Array.iter
      (fun sh ->
        evals := !evals + sh.s_evals;
        pops := !pops + sh.s_pops;
        stale := !stale + sh.s_stale)
      shards_arr;
    (out, { evals = !evals; heap_pops = !pops; stale_reevals = !stale })
  end

(* ------------------------------------------------------------------ *)
(* Dynamic kernel: the object population itself churns. *)

type kernel = t

module Dyn = struct
  (* The flat kernel's CSR is immutable — the right trade for one-shot
     attacks, the wrong one for a churn engine that creates and deletes
     objects every event.  Dyn keeps the same split of state (per-object
     hit counters + failed bitset + dead tally) but stores the unit →
     objects incidence as per-unit rows grown in amortized-doubling
     blocks, with per-object back-pointers so a delete detaches all r
     entries by swap-remove in O(r).  Object slots stay dense: the last
     slot moves into a freed one (callers track the move via
     {!remove_object}'s return), so the hits plane never fragments.

     Greedy parity: {!worst_case} runs the same CELF round_scan over a
     scratch all-up plane.  Its packing base is 1 + max_degree where
     max_degree is a MONOTONE high-water mark of row length — possibly
     larger than the current max degree after deletes, but any base
     exceeding every reachable (newly, progress) component yields the
     same lexicographic comparisons (see round_scan), so picks and stats
     are bit-identical to [select_greedy] on a freshly built flat kernel
     over the same live objects. *)

  type nonrec t = {
    s : int;
    units : int;
    mutable b : int;  (* live objects, dense slots [0, b) *)
    mutable cap : int;  (* slot capacity of the planes below *)
    mutable hits : hits_plane;
    mutable obj_units : int array array;  (* slot -> hosting units *)
    mutable pos : int array array;  (* slot -> entry index in rows.(u) *)
    rows : int array array;  (* unit -> live slots, length row_len.(u) *)
    row_len : int array;
    failed : Combin.Bitset.t;
    mutable killed : int;
    mutable max_degree : int;  (* monotone row-length high-water mark *)
    mutable moves : int;  (* lifetime object add/remove count *)
  }

  let create ~units ~s =
    if units < 0 then invalid_arg "Kernel.Dyn.create: negative unit count";
    if s < 1 then invalid_arg "Kernel.Dyn.create: threshold s must be >= 1";
    {
      s;
      units;
      b = 0;
      cap = 0;
      hits = fresh_hits 0;
      obj_units = [||];
      pos = [||];
      rows = Array.make units [||];
      row_len = Array.make units 0;
      failed = Combin.Bitset.create units;
      killed = 0;
      max_degree = 0;
      moves = 0;
    }

  let units t = t.units
  let objects t = t.b
  let threshold t = t.s
  let killed t = t.killed
  let hits t slot = t.hits.{slot}
  let failed_units t = Combin.Bitset.to_array t.failed
  let moves t = t.moves
  let replicas t slot = Array.copy t.obj_units.(slot)

  let ensure_slot_capacity t =
    if t.b = t.cap then begin
      let cap = max 16 (2 * t.cap) in
      let hits = fresh_hits cap in
      Bigarray.Array1.blit t.hits (Bigarray.Array1.sub hits 0 t.cap);
      let obj_units = Array.make cap [||] in
      Array.blit t.obj_units 0 obj_units 0 t.b;
      let pos = Array.make cap [||] in
      Array.blit t.pos 0 pos 0 t.b;
      t.hits <- hits;
      t.obj_units <- obj_units;
      t.pos <- pos;
      t.cap <- cap
    end

  (* Append [slot] to unit [u]'s row, doubling the block when full;
     returns the entry index (the back-pointer remove_object needs). *)
  let row_push t u slot =
    let len = t.row_len.(u) in
    let row = t.rows.(u) in
    let row =
      if len = Array.length row then begin
        let grown = Array.make (max 8 (2 * len)) 0 in
        Array.blit row 0 grown 0 len;
        t.rows.(u) <- grown;
        grown
      end
      else row
    in
    row.(len) <- slot;
    t.row_len.(u) <- len + 1;
    if len + 1 > t.max_degree then t.max_degree <- len + 1;
    len

  let add_object t units_arr =
    Array.iteri
      (fun i u ->
        if u < 0 || u >= t.units then
          invalid_arg "Kernel.Dyn.add_object: unit out of range";
        for j = 0 to i - 1 do
          if units_arr.(j) = u then
            invalid_arg "Kernel.Dyn.add_object: duplicate unit"
        done)
      units_arr;
    ensure_slot_capacity t;
    let slot = t.b in
    t.b <- slot + 1;
    let deg = Array.length units_arr in
    t.obj_units.(slot) <- Array.copy units_arr;
    let pos = Array.make deg 0 in
    let h = ref 0 in
    Array.iteri
      (fun i u ->
        pos.(i) <- row_push t u slot;
        if Combin.Bitset.mem t.failed u then incr h)
      units_arr;
    t.pos.(slot) <- pos;
    t.hits.{slot} <- !h;
    if !h >= t.s then t.killed <- t.killed + 1;
    t.moves <- t.moves + 1;
    slot

  (* The swap-remove in unit [u]'s row moved object [moved]'s entry from
     index [from] to [to_]; repair its back-pointer.  [moved]'s units
     are distinct, so exactly one of its entries lives in [u]'s row. *)
  let fix_pos t moved u ~from ~to_ =
    let ous = t.obj_units.(moved) and ps = t.pos.(moved) in
    let n = Array.length ous in
    let i = ref 0 in
    while !i < n && not (ous.(!i) = u && ps.(!i) = from) do incr i done;
    if !i = n then failwith "Kernel.Dyn: incidence back-pointer out of sync";
    ps.(!i) <- to_

  let remove_object t slot =
    if slot < 0 || slot >= t.b then
      invalid_arg "Kernel.Dyn.remove_object: object slot out of range";
    if t.hits.{slot} >= t.s then t.killed <- t.killed - 1;
    (* Detach every row entry by swap-remove. *)
    let ous = t.obj_units.(slot) and ps = t.pos.(slot) in
    Array.iteri
      (fun i u ->
        let p = ps.(i) in
        let last = t.row_len.(u) - 1 in
        let row = t.rows.(u) in
        let moved = row.(last) in
        row.(p) <- moved;
        t.row_len.(u) <- last;
        if p <> last then fix_pos t moved u ~from:last ~to_:p)
      ous;
    (* Keep slots dense: the last object moves into the freed slot. *)
    let lastslot = t.b - 1 in
    if slot <> lastslot then begin
      t.hits.{slot} <- t.hits.{lastslot};
      t.obj_units.(slot) <- t.obj_units.(lastslot);
      t.pos.(slot) <- t.pos.(lastslot);
      Array.iteri
        (fun i u -> t.rows.(u).(t.pos.(slot).(i)) <- slot)
        t.obj_units.(slot)
    end;
    t.obj_units.(lastslot) <- [||];
    t.pos.(lastslot) <- [||];
    t.b <- lastslot;
    t.moves <- t.moves + 1;
    lastslot

  let check_unit t u name =
    if u < 0 || u >= t.units then
      invalid_arg (Printf.sprintf "Kernel.Dyn.%s: unit %d out of range" name u)

  let fail_unit t u =
    check_unit t u "fail_unit";
    if Combin.Bitset.mem t.failed u then
      invalid_arg "Kernel.Dyn.fail_unit: unit already failed";
    Combin.Bitset.add t.failed u;
    let row = t.rows.(u) and s = t.s in
    for i = 0 to t.row_len.(u) - 1 do
      let slot = Array.unsafe_get row i in
      let h = t.hits.{slot} + 1 in
      t.hits.{slot} <- h;
      if h = s then t.killed <- t.killed + 1
    done

  let recover_unit t u =
    check_unit t u "recover_unit";
    if not (Combin.Bitset.mem t.failed u) then
      invalid_arg "Kernel.Dyn.recover_unit: unit not failed";
    Combin.Bitset.remove t.failed u;
    let row = t.rows.(u) and s = t.s in
    for i = 0 to t.row_len.(u) - 1 do
      let slot = Array.unsafe_get row i in
      let h = t.hits.{slot} in
      if h = s then t.killed <- t.killed - 1;
      t.hits.{slot} <- h - 1
    done

  let load t u =
    check_unit t u "load";
    t.row_len.(u)

  let marginal t u =
    check_unit t u "marginal";
    let newly = ref 0 and progress = ref 0 in
    let row = t.rows.(u) and s = t.s in
    for i = 0 to t.row_len.(u) - 1 do
      let h = t.hits.{Array.unsafe_get row i} in
      if h + 1 = s then incr newly;
      if h < s then incr progress
    done;
    (!newly, !progress)

  (* The from-scratch oracle: recount every object's hits straight from
     its replica list and the failed bitset, verifying the incremental
     plane on the way.  O(b·r); tests and gates only. *)
  let check_scratch t =
    let dead = ref 0 in
    for slot = 0 to t.b - 1 do
      let h = ref 0 in
      Array.iter
        (fun u -> if Combin.Bitset.mem t.failed u then incr h)
        t.obj_units.(slot);
      if !h <> t.hits.{slot} then
        failwith "Kernel.Dyn: hits plane out of sync with the incidence";
      if !h >= t.s then incr dead
    done;
    !dead

  (* Pack the live rows into a flat kernel and replay the failure set:
     the from-scratch arm of the incremental ≡ scratch equivalence. *)
  let freeze t =
    let groups =
      Array.init t.units (fun u -> Array.sub t.rows.(u) 0 t.row_len.(u))
    in
    let kn = of_groups ~s:t.s ~b:t.b groups in
    Array.iter (fun u -> add kn u) (Combin.Bitset.to_array t.failed);
    kn

  let worst_case t ~k =
    if k < 0 || k > t.units then
      invalid_arg "Kernel.Dyn.worst_case: more picks than units";
    (* All-up scratch plane: the adversary attacks the current object
       population from zero failures, never the live failure state. *)
    let scratch = fresh_hits (max 1 t.b) in
    let s = t.s in
    let dead = ref 0 in
    let marginal_scratch u =
      let newly = ref 0 and progress = ref 0 in
      let row = t.rows.(u) in
      for i = 0 to t.row_len.(u) - 1 do
        let h = scratch.{Array.unsafe_get row i} in
        if h + 1 = s then incr newly;
        if h < s then incr progress
      done;
      (!newly, !progress)
    in
    let apply u =
      let row = t.rows.(u) in
      for i = 0 to t.row_len.(u) - 1 do
        let slot = Array.unsafe_get row i in
        let h = scratch.{slot} + 1 in
        scratch.{slot} <- h;
        if h = s then incr dead
      done
    in
    let base = 1 + t.max_degree in
    let packed ne pr = (ne * base) + pr in
    let heap = Combin.Heap.Int_max.create () in
    let evals = ref 0 and pops = ref 0 and stale = ref 0 in
    for u = 0 to t.units - 1 do
      let _, pr = marginal_scratch u in
      incr evals;
      Combin.Heap.Int_max.push heap ~key:(packed pr pr) u
    done;
    let out = Array.make k 0 in
    for pick = 0 to k - 1 do
      let _, best_id, _, e, p, st =
        round_scan ~marginal:marginal_scratch heap ~packed
      in
      evals := !evals + e;
      pops := !pops + p;
      stale := !stale + st;
      apply best_id;
      out.(pick) <- best_id
    done;
    (out, !dead, { evals = !evals; heap_pops = !pops; stale_reevals = !stale })
end
