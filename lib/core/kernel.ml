type incidence =
  | Unknown  (* not yet needed: only {!check} pays for the bitsets *)
  | Multiplicity
      (* some unit hosts an object more than once (e.g. a fault domain
         with two replicas of it): popcounts would undercount hits *)
  | Bitsets of Combin.Bitset.t array  (* object -> units hosting it *)

type t = {
  s : int;
  b : int;
  unit_objs : int array array;  (* shared incidence: unit -> replicas *)
  mutable incidence : incidence;
  hits : int array;
  failed : Combin.Bitset.t;
  mutable killed : int;
  mutable updates : int;
}

(* Built on first use: the incremental paths (add/remove/marginal and
   select_greedy) never touch the bitsets, so greedy-only callers skip
   the O(b·units/63) allocation entirely.  Duplicate detection is fused
   into the build — a second occurrence of (obj, u) sees its bit set. *)
let incidence t =
  match t.incidence with
  | (Multiplicity | Bitsets _) as inc -> inc
  | Unknown ->
      let units = Array.length t.unit_objs in
      let out = Array.init t.b (fun _ -> Combin.Bitset.create units) in
      let inc =
        try
          Array.iteri
            (fun u objs ->
              Array.iter
                (fun obj ->
                  if Combin.Bitset.mem out.(obj) u then raise Exit;
                  Combin.Bitset.add out.(obj) u)
                objs)
            t.unit_objs;
          Bitsets out
        with Exit -> Multiplicity
      in
      t.incidence <- inc;
      inc

let of_groups ~s ~b groups =
  {
    s;
    b;
    unit_objs = groups;
    incidence = Unknown;
    hits = Array.make b 0;
    failed = Combin.Bitset.create (Array.length groups);
    (* s <= 0 kills every object unconditionally, matching
       Layout.failed_objects' >= s count. *)
    killed = (if s <= 0 then b else 0);
    updates = 0;
  }

let make layout ~s =
  of_groups ~s ~b:(Layout.b layout) (Layout.node_objects layout)

let copy t =
  {
    t with
    hits = Array.make t.b 0;
    failed = Combin.Bitset.create (Array.length t.unit_objs);
    killed = (if t.s <= 0 then t.b else 0);
    updates = 0;
  }

let reset t =
  Array.fill t.hits 0 t.b 0;
  Combin.Bitset.clear t.failed;
  t.killed <- (if t.s <= 0 then t.b else 0)

let units t = Array.length t.unit_objs
let objects t = t.b
let threshold t = t.s
let degree t u = Array.length t.unit_objs.(u)
let killed t = t.killed
let hits t obj = t.hits.(obj)
let failed_units t = Combin.Bitset.to_array t.failed
let updates t = t.updates

let add t u =
  if Combin.Bitset.mem t.failed u then
    invalid_arg "Kernel.add: unit already failed";
  Combin.Bitset.add t.failed u;
  t.updates <- t.updates + 1;
  let hits = t.hits and s = t.s in
  Array.iter
    (fun obj ->
      let h = hits.(obj) + 1 in
      hits.(obj) <- h;
      if h = s then t.killed <- t.killed + 1)
    t.unit_objs.(u)

let remove t u =
  if not (Combin.Bitset.mem t.failed u) then
    invalid_arg "Kernel.remove: unit not failed";
  Combin.Bitset.remove t.failed u;
  t.updates <- t.updates + 1;
  let hits = t.hits and s = t.s in
  Array.iter
    (fun obj ->
      let h = hits.(obj) in
      if h = s then t.killed <- t.killed - 1;
      hits.(obj) <- h - 1)
    t.unit_objs.(u)

let marginal t u =
  let newly = ref 0 and progress = ref 0 in
  let hits = t.hits and s = t.s in
  Array.iter
    (fun obj ->
      let h = hits.(obj) in
      if h + 1 = s then incr newly;
      if h < s then incr progress)
    t.unit_objs.(u);
  (!newly, !progress)

let check t set =
  if not (Combin.Intset.is_sorted_distinct set) then
    invalid_arg "Kernel.check: unit set not sorted/distinct";
  if t.s <= 0 then t.b
  else
    match incidence t with
    | Bitsets obj_units ->
        (* Popcount-threshold over the per-object incidence bitsets. *)
        let fail = Combin.Bitset.of_array ~capacity:(units t) set in
        let dead = ref 0 in
        Array.iter
          (fun hosts ->
            if Combin.Bitset.inter_count hosts fail >= t.s then incr dead)
          obj_units;
        !dead
    | Unknown | Multiplicity ->
        (* Multiplicity-bearing incidence: one scratch counter pass. *)
        let counts = Array.make t.b 0 in
        let dead = ref 0 in
        Array.iter
          (fun u ->
            Array.iter
              (fun obj ->
                let h = counts.(obj) + 1 in
                counts.(obj) <- h;
                if h = t.s then incr dead)
              t.unit_objs.(u))
          set;
        !dead

(* ------------------------------------------------------------------ *)
(* CELF lazy-greedy selection.

   The scan objective is the pair (newly, progress), lexicographic,
   ties to the lowest unit id.  Pack it into one int,
   P(ne,pr) = ne·base + pr, so pair order = int order — provided base
   exceeds every reachable progress value.  Both components count
   *occurrences* in unit_objs.(u), so on a group kernel (fault domains
   holding up to r replicas per object) they range up to degree(u),
   which can exceed b (e.g. 2 datacenters with r = 3 give degree
   ≈ 1.5·b); b+1 is NOT a safe base there, hence base is derived from
   the largest unit degree.  [newly] is not monotone under set growth
   (an object two short of s contributes 0 today and 1 after another
   hit), so a stale exact value is NOT a valid cache — but [progress]
   never grows (hits only increase while a unit stays unchosen), hence
   B(pr) = P(pr,pr) ≥ every future exact value of that unit.  The heap
   therefore stores progress-derived bounds only; each pop pays an
   exact O(load) re-check, and a round closes only when the best exact
   value seen cannot be beaten or tied-with-lower-id by any remaining
   bound.  (B = P forces newly = progress, so the tie test against a
   bound is exact.) *)

type greedy_stats = { evals : int; heap_pops : int; stale_reevals : int }

let select_greedy t ~picks =
  let n = units t in
  if picks > n - Combin.Bitset.count t.failed then
    invalid_arg "Kernel.select_greedy: more picks than unchosen units";
  let base =
    1 + Array.fold_left (fun m objs -> max m (Array.length objs)) 0 t.unit_objs
  in
  let packed ne pr = (ne * base) + pr in
  let heap = Combin.Heap.Int_max.create () in
  let evals = ref 0 and pops = ref 0 and stale = ref 0 in
  for u = 0 to n - 1 do
    if not (Combin.Bitset.mem t.failed u) then begin
      let _, pr = marginal t u in
      incr evals;
      Combin.Heap.Int_max.push heap ~key:(packed pr pr) u
    end
  done;
  let out = Array.make picks 0 in
  for pick = 0 to picks - 1 do
    let best_key = ref (-1) and best_id = ref (-1) in
    let popped = ref [] in
    let stop = ref false in
    while not !stop do
      match Combin.Heap.Int_max.peek heap with
      | None -> stop := true
      | Some (key, u) ->
          (* Remaining exact values are ≤ key; they lose outright when
             key < best, and on key = best any exact tie sits at an id
             above [u] > [best_id], which the scan would also reject. *)
          if key < !best_key || (key = !best_key && u > !best_id) then
            stop := true
          else begin
            ignore (Combin.Heap.Int_max.pop heap);
            incr pops;
            let ne, pr = marginal t u in
            incr evals;
            let exact = packed ne pr in
            if packed pr pr < key then incr stale;
            popped := (u, pr) :: !popped;
            if exact > !best_key || (exact = !best_key && u < !best_id) then begin
              best_key := exact;
              best_id := u
            end
          end
    done;
    (* Losers re-enter with refreshed bounds; the winner is consumed. *)
    List.iter
      (fun (u, pr) ->
        if u <> !best_id then Combin.Heap.Int_max.push heap ~key:(packed pr pr) u)
      !popped;
    add t !best_id;
    out.(pick) <- !best_id
  done;
  (out, { evals = !evals; heap_pops = !pops; stale_reevals = !stale })
