(* Per-level state.  Blocks live in a growable pool: fixed designs are
   materialized up front; the complete (x = r-1) level appends fresh
   lexicographic r-subsets on demand.  [usage] counts live objects per
   block; [hist] is a histogram of usages so the maximum (and hence the
   effective λ) is maintained under both adds and removes.

   Node retirement (permanent leave): a block containing a retired node
   is BLOCKED — never routed to — and the churn engine immediately
   re-places every object assigned to it, so outside that transient a
   blocked block always has usage 0.  [blocked] counts retired members
   per block (a node may rejoin, unblocking blocks that contain no other
   retired node); [nblocked] is the number of blocked blocks, so the
   eligible pool size is nblocks - nblocked.  Since blocked blocks sit
   at usage 0 in steady state, the usage histogram (which only tracks
   usage >= 1) and hence the effective λ accounting are untouched. *)
type level_state = {
  spec : Combo.level;
  mutable blocks : int array array;  (* pool, grows for the lazy level *)
  mutable nblocks : int;
  mutable usage : int array;
  mutable hist : int array;  (* hist.(u) = #blocks with usage u, u >= 1 *)
  mutable max_usage : int;
  mutable live : int;  (* objects at this level *)
  mutable open_blocks : int list;  (* candidates with usage < max_usage *)
  mutable blocked : int array;  (* retired member nodes per block *)
  mutable nblocked : int;  (* blocks with blocked > 0 *)
  fresh : int array Seq.t ref option;
      (* lazy block source; a persistent Seq (not a closure) so
         {!peek} can walk the upcoming blocks without consuming them *)
}

type assignment = { level : int; block : int }

type t = {
  n : int;
  r : int;
  s : int;
  k : int;
  levels : level_state array;
  assignments : (int, assignment) Hashtbl.t;
  retired : bool array;
  mutable nretired : int;
  mutable next_id : int;
}

let block_blocked st i = st.blocked.(i) > 0

let blocked_count retired block =
  Array.fold_left (fun acc nd -> if retired.(nd) then acc + 1 else acc) 0 block

let grow_pool t st block =
  if st.nblocks = Array.length st.blocks then begin
    let cap = max 8 (2 * Array.length st.blocks) in
    let blocks = Array.make cap [||] in
    Array.blit st.blocks 0 blocks 0 st.nblocks;
    let usage = Array.make cap 0 in
    Array.blit st.usage 0 usage 0 st.nblocks;
    let blocked = Array.make cap 0 in
    Array.blit st.blocked 0 blocked 0 st.nblocks;
    st.blocks <- blocks;
    st.usage <- usage;
    st.blocked <- blocked
  end;
  st.blocks.(st.nblocks) <- block;
  let bc = blocked_count t.retired block in
  st.blocked.(st.nblocks) <- bc;
  if bc > 0 then st.nblocked <- st.nblocked + 1;
  st.nblocks <- st.nblocks + 1;
  st.nblocks - 1

let hist_add st u =
  if u >= 1 then begin
    if u >= Array.length st.hist then begin
      let hist = Array.make (max 8 (2 * u)) 0 in
      Array.blit st.hist 0 hist 0 (Array.length st.hist);
      st.hist <- hist
    end;
    st.hist.(u) <- st.hist.(u) + 1;
    if u > st.max_usage then st.max_usage <- u
  end

let hist_remove st u =
  if u >= 1 then begin
    st.hist.(u) <- st.hist.(u) - 1;
    while st.max_usage >= 1 && st.hist.(st.max_usage) = 0 do
      st.max_usage <- st.max_usage - 1
    done
  end

let make_level ~n (spec : Combo.level) =
  let fixed_blocks, fresh =
    match spec.Combo.entry with
    | Some e when e.Designs.Registry.strength = e.Designs.Registry.block_size ->
        (* Complete level: stream r-subsets of the v points lazily. *)
        ( [||],
          Some
            (ref
               (Designs.Trivial.subsets_seq ~v:e.Designs.Registry.v
                  ~r:e.Designs.Registry.block_size)) )
    | Some e when Designs.Registry.is_materialized e ->
        ((Designs.Registry.materialize e).Designs.Block_design.blocks, None)
    | Some _ | None -> ([||], None)
  in
  ignore n;
  {
    spec;
    blocks = Array.map Array.copy fixed_blocks;
    nblocks = Array.length fixed_blocks;
    usage = Array.make (max 1 (Array.length fixed_blocks)) 0;
    hist = Array.make 4 0;
    max_usage = 0;
    live = 0;
    open_blocks = [];
    blocked = Array.make (max 1 (Array.length fixed_blocks)) 0;
    nblocked = 0;
    fresh;
  }

let usable st = st.nblocks - st.nblocked > 0 || Option.is_some st.fresh

let create ?levels ~n ~r ~s ~k () =
  let specs =
    match levels with
    | Some l -> l
    | None -> Combo.default_levels ~n ~r ~s ()
  in
  let levels = Array.map (make_level ~n) specs in
  if not (Array.exists usable levels) then
    invalid_arg "Adaptive.create: no materializable level";
  {
    n;
    r;
    s;
    k;
    levels;
    assignments = Hashtbl.create 256;
    retired = Array.make n false;
    nretired = 0;
    next_id = 0;
  }

let n t = t.n
let r t = t.r
let s t = t.s
let size t = Hashtbl.length t.assignments
let retired t nd = t.retired.(nd)
let has_capacity t = Array.exists usable t.levels

let effective_lambda st = st.spec.Combo.mu * st.max_usage

let lambdas t = Array.map effective_lambda t.levels

(* Find an eligible block index with usage < max_usage (or any eligible
   block when max_usage = 0); None if the level is saturated at the
   current λ and cannot produce a fresh eligible block.  Blocked blocks
   (containing a retired node) are skipped everywhere. *)
let rec pop_open st =
  match st.open_blocks with
  | i :: rest ->
      st.open_blocks <- rest;
      if st.usage.(i) < st.max_usage && not (block_blocked st i) then Some i
      else pop_open st
  | [] -> None

(* Pull fresh lazy blocks until one is eligible; blocked pulls stay in
   the pool (they unblock if their retired node rejoins). *)
let rec pull_fresh t st src =
  match Seq.uncons !src with
  | None -> None
  | Some (blk, rest) ->
      src := rest;
      let i = grow_pool t st blk in
      if block_blocked st i then pull_fresh t st src else Some i

let scan_eligible st pred =
  let found = ref None in
  (try
     for i = 0 to st.nblocks - 1 do
       if (not (block_blocked st i)) && pred i then begin
         found := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let find_slot t st =
  if st.max_usage = 0 then begin
    (* Everything is empty; take the first eligible block or a fresh one. *)
    match scan_eligible st (fun _ -> true) with
    | Some _ as r -> r
    | None -> (
        match st.fresh with
        | Some src -> pull_fresh t st src
        | None -> None)
  end
  else
    match pop_open st with
    | Some i -> Some i
    | None ->
        (* No tracked open block: try a fresh lazy block (usage 0 < max),
           else a linear rescan (open_blocks may have gone stale), else
           report saturation. *)
        (match st.fresh with
        | Some src -> pull_fresh t st src
        | None -> None)
        |> function
        | Some i -> Some i
        | None -> (
            match scan_eligible st (fun i -> st.usage.(i) < st.max_usage) with
            | Some _ as r -> r
            | None ->
                (* Level saturated at the current λ: growing λ by μ means
                   any eligible block will do. *)
                scan_eligible st (fun _ -> true))

(* Non-committing mirror of {!find_slot}: the block the next placement
   at this level would occupy, replicating find_slot's decision order
   exactly — open-block hints are walked without popping, the lazy
   source is walked without consuming ({!Designs.Trivial.subsets_seq} is
   persistent), and the pool never grows.  Used by {!peek}. *)
let peek_slot t st =
  let block i = Some (Array.copy st.blocks.(i)) in
  let peek_open () =
    let rec go = function
      | [] -> None
      | i :: rest ->
          if st.usage.(i) < st.max_usage && not (block_blocked st i) then
            block i
          else go rest
    in
    go st.open_blocks
  in
  let peek_fresh () =
    match st.fresh with
    | None -> None
    | Some src ->
        let rec walk s =
          match Seq.uncons s with
          | None -> None
          | Some (blk, rest) ->
              if blocked_count t.retired blk > 0 then walk rest
              else Some (Array.copy blk)
        in
        walk !src
  in
  if st.max_usage = 0 then
    match scan_eligible st (fun _ -> true) with
    | Some i -> block i
    | None -> peek_fresh ()
  else
    match peek_open () with
    | Some _ as r -> r
    | None -> (
        match peek_fresh () with
        | Some _ as r -> r
        | None -> (
            match scan_eligible st (fun i -> st.usage.(i) < st.max_usage) with
            | Some i -> block i
            | None -> (
                match scan_eligible st (fun _ -> true) with
                | Some i -> block i
                | None -> None)))

(* Marginal increase of the total loss bound if one object lands on level
   x.  λ grows by μ only when the level has no open slot. *)
let loss_term t (st : level_state) lambda =
  lambda
  * Combin.Binomial.exact t.k (st.spec.Combo.x + 1)
  / Combin.Binomial.exact t.s (st.spec.Combo.x + 1)

(* Routing rule.  Placing on a level with a free slot (some block below
   the current maximum usage, or a fresh lazy block) costs nothing NOW;
   otherwise λ must grow by μ.  A myopic Δ-loss comparison is a trap —
   it keeps feeding the cheap-per-bump but tiny-capacity x = 0 level —
   so bumps are compared by {e amortized} rate: loss added per λ-bump
   divided by the capacity a bump buys (exactly the quantity the offline
   DP trades on).  Levels with free slots win outright, lowest rate
   first, so slack in good levels is consumed before anyone bumps. *)
let routing_key t st =
  if not (usable st) then None
  else begin
    (* hist.(max_usage) counts the blocks sitting at the maximum; the
       level has a free slot unless every eligible block is there and no
       fresh block (usage 0) can be generated.  Blocked blocks sit at
       usage 0 in steady state, so the eligible pool is
       nblocks - nblocked. *)
    let saturated =
      st.max_usage = 0
      || (Option.is_none st.fresh
          && st.nblocks - st.nblocked = st.hist.(st.max_usage))
    in
    let needs_bump = if saturated then 1 else 0 in
    let cap_mu =
      if st.spec.Combo.cap_mu > 0 then st.spec.Combo.cap_mu
      else max 1 st.nblocks
    in
    let rate =
      float_of_int (loss_term t st st.spec.Combo.mu) /. float_of_int cap_mu
    in
    Some (needs_bump, rate, st.live)
  end

(* The level whose routing key is smallest — the pure half of the
   destination choice, shared by {!route} and {!peek}. *)
let best_level t ~what =
  let best = ref None in
  Array.iteri
    (fun x st ->
      match routing_key t st with
      | None -> ()
      | Some key -> (
          match !best with
          | Some (key', _) when key' <= key -> ()
          | _ -> best := Some (key, x)))
    t.levels;
  match !best with
  | None -> invalid_arg (Printf.sprintf "Adaptive.%s: no usable level" what)
  | Some (_, x) -> x

(* Destination choice shared by {!add} and {!replace}: the level whose
   routing key is smallest, then a block within it. *)
let route t ~what =
  let x = best_level t ~what in
  let st = t.levels.(x) in
  match find_slot t st with
  | Some i -> (x, i)
  | None ->
      failwith
        (Printf.sprintf "Adaptive.%s: level reported usable but has no slot"
           what)

(* The replica set the next {!add} would be assigned: the same level
   fold and the same block decision order, with no state change — so an
   advisory query ([advise create]) never perturbs where objects
   actually land. *)
let peek t =
  let x = best_level t ~what:"peek" in
  match peek_slot t t.levels.(x) with
  | Some blk -> blk
  | None -> failwith "Adaptive.peek: level reported usable but has no slot"

let occupy t x block =
  let st = t.levels.(x) in
  let old = st.usage.(block) in
  st.usage.(block) <- old + 1;
  hist_remove st old;
  hist_add st (old + 1);
  if st.usage.(block) < st.max_usage then
    st.open_blocks <- block :: st.open_blocks;
  st.live <- st.live + 1

let vacate t x block =
  let st = t.levels.(x) in
  let old = st.usage.(block) in
  st.usage.(block) <- old - 1;
  hist_remove st old;
  hist_add st (old - 1);
  if st.usage.(block) < st.max_usage then
    st.open_blocks <- block :: st.open_blocks;
  st.live <- st.live - 1

let add t =
  let x, block = route t ~what:"add" in
  occupy t x block;
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.assignments id { level = x; block };
  id

let add_many t count = List.init count (fun _ -> add t)

let remove t id =
  match Hashtbl.find_opt t.assignments id with
  | None -> raise Not_found
  | Some { level; block } ->
      vacate t level block;
      Hashtbl.remove t.assignments id

let assignment t id =
  match Hashtbl.find_opt t.assignments id with
  | None -> raise Not_found
  | Some a -> a

let replica_set t id =
  let a = assignment t id in
  Array.copy t.levels.(a.level).blocks.(a.block)

let level_of t id = (assignment t id).level

let replace t id =
  let a = assignment t id in
  (* Choose the destination before touching the old assignment, so a
     routing failure leaves the placement untouched.  The old block is
     blocked (that is why the object is being replaced), so the route
     can never hand it back. *)
  let x, block = route t ~what:"replace" in
  vacate t a.level a.block;
  occupy t x block;
  Hashtbl.replace t.assignments id { level = x; block }

let retire_node t nd =
  if nd < 0 || nd >= t.n then
    invalid_arg (Printf.sprintf "Adaptive.retire_node: node %d out of range" nd);
  if t.retired.(nd) then
    invalid_arg
      (Printf.sprintf "Adaptive.retire_node: node %d is already retired" nd);
  t.retired.(nd) <- true;
  t.nretired <- t.nretired + 1;
  Array.iter
    (fun st ->
      for i = 0 to st.nblocks - 1 do
        if Array.exists (fun m -> m = nd) st.blocks.(i) then begin
          if st.blocked.(i) = 0 then st.nblocked <- st.nblocked + 1;
          st.blocked.(i) <- st.blocked.(i) + 1
        end
      done)
    t.levels;
  (* The evictees: live objects whose block hosts the retiree. *)
  let evicted = ref [] in
  Hashtbl.iter
    (fun id { level; block } ->
      if Array.exists (fun m -> m = nd) t.levels.(level).blocks.(block) then
        evicted := id :: !evicted)
    t.assignments;
  List.sort compare !evicted

let unretire_node t nd =
  if nd < 0 || nd >= t.n then
    invalid_arg
      (Printf.sprintf "Adaptive.unretire_node: node %d out of range" nd);
  if not t.retired.(nd) then
    invalid_arg
      (Printf.sprintf "Adaptive.unretire_node: node %d is not retired" nd);
  t.retired.(nd) <- false;
  t.nretired <- t.nretired - 1;
  Array.iter
    (fun st ->
      for i = 0 to st.nblocks - 1 do
        if Array.exists (fun m -> m = nd) st.blocks.(i) then begin
          st.blocked.(i) <- st.blocked.(i) - 1;
          if st.blocked.(i) = 0 then st.nblocked <- st.nblocked - 1
        end
      done)
    t.levels

let lower_bound ?k t =
  let k = Option.value ~default:t.k k in
  let loss = ref 0 in
  Array.iter
    (fun st ->
      let lambda = effective_lambda st in
      if lambda > 0 then
        loss :=
          !loss
          + lambda
            * Combin.Binomial.exact k (st.spec.Combo.x + 1)
            / Combin.Binomial.exact t.s (st.spec.Combo.x + 1))
    t.levels;
  max 0 (size t - !loss)

let optimal_bound ?k t =
  let k = Option.value ~default:t.k k in
  let b = size t in
  if b = 0 then 0
  else begin
    let specs = Array.map (fun st -> st.spec) t.levels in
    let p = Params.make ~b ~r:t.r ~s:t.s ~n:t.n ~k in
    (Combo.optimize ~levels:specs p).Combo.lb
  end

let layout t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.assignments [] in
  let ids = List.sort compare ids in
  let replicas = Array.of_list (List.map (fun id -> replica_set t id) ids) in
  Layout.make ~n:t.n ~r:t.r replicas

let check_invariants t =
  let ensure cond msg = if not cond then failwith ("Adaptive invariant: " ^ msg) in
  (* Recount usage from assignments. *)
  let recount = Array.map (fun st -> Array.make (max 1 st.nblocks) 0) t.levels in
  Hashtbl.iter
    (fun _ { level; block } ->
      recount.(level).(block) <- recount.(level).(block) + 1)
    t.assignments;
  let nretired = ref 0 in
  Array.iter (fun b -> if b then incr nretired) t.retired;
  ensure (t.nretired = !nretired) "retired count mismatch";
  Array.iteri
    (fun x st ->
      let live = ref 0 and maxu = ref 0 and nblocked = ref 0 in
      for i = 0 to st.nblocks - 1 do
        ensure (st.usage.(i) = recount.(x).(i)) "usage mismatch";
        ensure
          (st.blocked.(i) = blocked_count t.retired st.blocks.(i))
          "blocked count mismatch";
        if st.blocked.(i) > 0 then begin
          incr nblocked;
          ensure (st.usage.(i) = 0) "blocked block still holds objects"
        end;
        live := !live + st.usage.(i);
        if st.usage.(i) > !maxu then maxu := st.usage.(i)
      done;
      ensure (st.live = !live) "live count mismatch";
      ensure (st.max_usage = !maxu) "max usage mismatch";
      ensure (st.nblocked = !nblocked) "blocked block tally mismatch")
    t.levels;
  (* The layout must satisfy Definition 2 per level at the effective λ:
     spot-checked via the per-level usage bound already; full check left
     to the test suite on small instances. *)
  ()
