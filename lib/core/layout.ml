type t = {
  n : int;
  r : int;
  replicas : int array array;
  mutable node_objs : int array array option;
  mutable node_csr : Combin.Csr.t option;
}

let make ~n ~r replicas =
  if r < 1 || n < r then invalid_arg "Layout.make: need 1 <= r <= n";
  Array.iter
    (fun rep ->
      if Array.length rep <> r then
        invalid_arg "Layout.make: replica set of wrong size";
      if not (Combin.Intset.is_sorted_distinct rep) then
        invalid_arg "Layout.make: replica set not sorted/distinct";
      if rep.(0) < 0 || rep.(r - 1) >= n then
        invalid_arg "Layout.make: node out of range")
    replicas;
  { n; r; replicas; node_objs = None; node_csr = None }

let b t = Array.length t.replicas

let build_node_objects t =
  let counts = Array.make t.n 0 in
  Array.iter (fun rep -> Array.iter (fun nd -> counts.(nd) <- counts.(nd) + 1) rep) t.replicas;
  let out = Array.init t.n (fun nd -> Array.make counts.(nd) 0) in
  let fill = Array.make t.n 0 in
  Array.iteri
    (fun obj rep ->
      Array.iter
        (fun nd ->
          out.(nd).(fill.(nd)) <- obj;
          fill.(nd) <- fill.(nd) + 1)
        rep)
    t.replicas;
  out

let node_objects t =
  match t.node_objs with
  | Some idx -> idx
  | None ->
      let idx = build_node_objects t in
      (* Benign race under domains: the index is a pure function of the
         (immutable) replica table, so concurrent builders store
         structurally identical arrays and one pointer write wins. *)
      t.node_objs <- Some idx;
      idx

let incidence t =
  match t.node_csr with
  | Some csr -> csr
  | None ->
      let csr = Combin.Csr.invert ~rows:t.n t.replicas in
      (* Benign race under domains, as for node_objs: the CSR is a pure
         function of the immutable replica table. *)
      t.node_csr <- Some csr;
      csr

let loads t =
  let counts = Array.make t.n 0 in
  Array.iter (fun rep -> Array.iter (fun nd -> counts.(nd) <- counts.(nd) + 1) rep) t.replicas;
  counts

let max_load t = Array.fold_left max 0 (loads t)

let is_load_balanced t ~cap = max_load t <= cap

let failed_objects t ~s ~failed_nodes =
  if not (Combin.Intset.is_sorted_distinct failed_nodes) then
    invalid_arg "Layout.failed_objects: failure set not sorted/distinct";
  let failed = ref 0 in
  Array.iter
    (fun rep -> if Combin.Intset.inter_size rep failed_nodes >= s then incr failed)
    t.replicas;
  !failed

let avail t ~s ~failed_nodes = b t - failed_objects t ~s ~failed_nodes

let scatter_widths t =
  let neighbours = Array.make t.n [] in
  Array.iter
    (fun rep ->
      Array.iter
        (fun nd ->
          Array.iter
            (fun other ->
              if other <> nd then neighbours.(nd) <- other :: neighbours.(nd))
            rep)
        rep)
    t.replicas;
  Array.map
    (fun l -> Array.length (Combin.Intset.of_array (Array.of_list l)))
    neighbours

let concat = function
  | [] -> invalid_arg "Layout.concat: empty"
  | first :: _ as parts ->
      List.iter
        (fun p ->
          if p.n <> first.n || p.r <> first.r then
            invalid_arg "Layout.concat: mismatched n or r")
        parts;
      {
        first with
        replicas = Array.concat (List.map (fun p -> p.replicas) parts);
        node_objs = None;
        node_csr = None;
      }

let shift t ~offset ~n =
  if offset < 0 || offset + t.n > n then invalid_arg "Layout.shift: bad offset";
  {
    n;
    r = t.r;
    replicas = Array.map (fun rep -> Array.map (fun nd -> nd + offset) rep) t.replicas;
    node_objs = None;
    node_csr = None;
  }
