(* All tables are built eagerly so a constructed instance is immutable
   plain data: safe to share read-only across Engine.Pool domains (the
   old per-driver Hashtbl caches were not).  with_cell aliases the
   parent's tables, so deriving a grid cell is O(1). *)

type tables = {
  n : int;
  r : int;
  s : int;
  max_mu : int;
  choose_tbl : int array array;  (* C(m, j), m <= n, j <= max r s *)
  log_tbl : float array array;   (* ln C(m, j), same index range *)
  levels : Combo.level array;
}

type t = { params : Params.t; tables : tables }

(* Cache-effectiveness stats: table builds are the expensive path,
   cell_aliases / param_reuses the O(1) sharing hits.  All Stable. *)
let m_builds = Telemetry.Registry.counter "core/instance/table_builds"
let m_aliases = Telemetry.Registry.counter "core/instance/cell_aliases"
let m_reuses = Telemetry.Registry.counter "core/instance/param_reuses"

let build_tables ~max_mu ~n ~r ~s =
  Telemetry.Counter.incr m_builds;
  {
    n;
    r;
    s;
    max_mu;
    choose_tbl = Combin.Binomial.row_table ~rows:n ~cols:(max r s);
    log_tbl =
      Array.init (n + 1) (fun m ->
          Array.init (max r s + 1) (fun j -> Combin.Binomial.log m j));
    levels = Combo.default_levels ~max_mu ~n ~r ~s ();
  }

let of_params ?(max_mu = 1) (p : Params.t) =
  { params = p; tables = build_tables ~max_mu ~n:p.n ~r:p.r ~s:p.s }

let make ?max_mu ~b ~r ~s ~n ~k () = of_params ?max_mu (Params.make ~b ~r ~s ~n ~k)

let with_params t (p : Params.t) =
  let { n; r; s; max_mu; _ } = t.tables in
  if p.n = n && p.r = r && p.s = s then begin
    Telemetry.Counter.incr m_reuses;
    { t with params = p }
  end
  else { params = p; tables = build_tables ~max_mu ~n:p.n ~r:p.r ~s:p.s }

let with_cell t ~b ~k =
  let p = t.params in
  Telemetry.Counter.incr m_aliases;
  { t with params = Params.make ~b ~r:p.r ~s:p.s ~n:p.n ~k }

let params t = t.params
let pp fmt t = Params.pp fmt t.params

let choose t m j =
  let tbl = t.tables.choose_tbl in
  if m >= 0 && m < Array.length tbl && j >= 0 && j < Array.length tbl.(0) then begin
    let v = tbl.(m).(j) in
    if v >= 0 then v else Combin.Binomial.exact m j
  end
  else Combin.Binomial.exact m j

let log_choose t m j =
  let tbl = t.tables.log_tbl in
  if m >= 0 && m < Array.length tbl && j >= 0 && j < Array.length tbl.(0) then
    tbl.(m).(j)
  else Combin.Binomial.log m j
let levels t = t.tables.levels
let level_capacity t ~x = t.tables.levels.(x).Combo.cap_mu
let load_cap t = Params.load_cap t.params
let average_load t = Params.average_load t.params

let attack_cost t =
  let p = t.params in
  let combos =
    match Combin.Binomial.exact_opt p.n p.k with
    | Some c -> float_of_int c
    | None -> infinity
  in
  combos *. (float_of_int (p.r * p.b) /. float_of_int p.n)

let exact_attack_affordable ?(limit = 5e7) t = attack_cost t <= limit

let combo_config t = Combo.optimize ~choose:(choose t) ~levels:t.tables.levels t.params

let combo_layout ?spread ?config t =
  let config = match config with Some c -> c | None -> combo_config t in
  Combo.materialize ?spread config

let random_layout ~rng t = Random_placement.place ~rng t.params

let copyset ~rng ?scatter_width t =
  let p = t.params in
  let scatter_width =
    match scatter_width with Some sw -> sw | None -> 2 * (p.r - 1)
  in
  let cs = Copyset.generate ~rng ~n:p.n ~r:p.r ~scatter_width in
  (cs, Copyset.place ~rng cs ~b:p.b)

let pr_avail t = Random_analysis.pr_avail t.params
let pr_avail_fraction t = (Random_analysis.report t.params).Random_analysis.fraction
let rnd_report t = Random_analysis.report t.params

let attack ?pool ?rng t layout =
  Adversary.best ?pool ?rng layout ~s:t.params.s ~k:t.params.k

let avail t layout atk = Adversary.avail layout ~s:t.params.s atk
