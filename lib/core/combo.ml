type level = {
  x : int;
  nx : int;
  mu : int;
  cap_mu : int;
  entry : Designs.Registry.entry option;
}

type config = {
  params : Params.t;
  levels : level array;
  lambdas : int array;
  assigned : int array;
  lb : int;
}

let neg_inf = min_int / 2

let default_levels ?(include_literature = true) ?(max_mu = 1) ~n ~r ~s () =
  Array.init s (fun x ->
      match
        Designs.Registry.best ~max_mu ~include_literature ~strength:(x + 1)
          ~block_size:r ~max_v:n ()
      with
      | Some e -> { x; nx = e.v; mu = e.mu; cap_mu = e.blocks; entry = Some e }
      | None -> { x; nx = 0; mu = 1; cap_mu = 0; entry = None })

(* Per-level loss for λx = d·μx failed-replica packings (Lemma 2 term):
   floor(d μ C(k,x+1) / C(s,x+1)). *)
let loss ~level ~d ~k ~s =
  d * level.mu * Combin.Binomial.exact k (level.x + 1)
  / Combin.Binomial.exact s (level.x + 1)

let optimize ?(choose = Combin.Binomial.exact) ?levels (p : Params.t) =
  let levels =
    match levels with
    | Some l -> l
    | None -> default_levels ~n:p.n ~r:p.r ~s:p.s ()
  in
  if Array.length levels <> p.s then
    invalid_arg "Combo.optimize: need one level per x in [s]";
  Array.iteri
    (fun x level -> if level.x <> x then invalid_arg "Combo.optimize: levels out of order")
    levels;
  let b = p.b in
  (* The Lemma-2 loss constants μx·C(k,x+1) and C(s,x+1) depend only on
     the level, not on b' or d — hoist them out of the DP's inner loops
     (loss for λx = d·μx is then floor(d·mu_ck / cs)). *)
  let mu_ck = Array.map (fun l -> l.mu * choose p.k (l.x + 1)) levels in
  let cs = Array.map (fun l -> choose p.s (l.x + 1)) levels in
  (* lbav.(x').(b') per Eqns 5–7; choice records the copy count d. *)
  let lbav = Array.make_matrix p.s (b + 1) 0 in
  let choice = Array.make_matrix p.s (b + 1) 0 in
  (* Level 0 (Eqn 6): λ0 is forced to the minimal multiple of μ0 hosting
     b' objects. *)
  let l0 = levels.(0) in
  for b' = 1 to b do
    if l0.cap_mu = 0 then begin
      lbav.(0).(b') <- neg_inf;
      choice.(0).(b') <- 0
    end
    else begin
      let d = (b' + l0.cap_mu - 1) / l0.cap_mu in
      lbav.(0).(b') <- max 0 (b' - (d * mu_ck.(0) / cs.(0)));
      choice.(0).(b') <- d
    end
  done;
  (* Levels x' > 0 (Eqn 7). *)
  for x' = 1 to p.s - 1 do
    let level = levels.(x') in
    let mu_ck = mu_ck.(x') and cs = cs.(x') in
    for b' = 1 to b do
      let best = ref neg_inf and best_d = ref 0 in
      let d_max = if level.cap_mu = 0 then 0 else (b' + level.cap_mu - 1) / level.cap_mu in
      for d = 0 to d_max do
        let hosted = min b' (d * level.cap_mu) in
        let rest = b' - (d * level.cap_mu) in
        let below = if rest <= 0 then 0 else lbav.(x' - 1).(rest) in
        if below > neg_inf then begin
          let value = below + hosted - (d * mu_ck / cs) in
          if value > !best then begin
            best := value;
            best_d := d
          end
        end
      done;
      lbav.(x').(b') <- !best;
      choice.(x').(b') <- !best_d
    done
  done;
  if lbav.(p.s - 1).(b) <= neg_inf / 2 then
    invalid_arg "Combo.optimize: not enough design capacity to host b objects";
  (* Traceback. *)
  let lambdas = Array.make p.s 0 in
  let assigned = Array.make p.s 0 in
  let rest = ref b in
  for x' = p.s - 1 downto 1 do
    if !rest > 0 then begin
      let level = levels.(x') in
      let d = choice.(x').(!rest) in
      lambdas.(x') <- d * level.mu;
      assigned.(x') <- min !rest (d * level.cap_mu);
      rest := max 0 (!rest - (d * level.cap_mu))
    end
  done;
  if !rest > 0 then begin
    let d = choice.(0).(!rest) in
    lambdas.(0) <- d * levels.(0).mu;
    assigned.(0) <- !rest
  end;
  {
    params = p;
    levels;
    lambdas;
    assigned;
    lb = max 0 lbav.(p.s - 1).(b);
  }

let lb_avail_co ?(choose = Combin.Binomial.exact) config ~k =
  let p = config.params in
  let total_loss = ref 0 in
  Array.iteri
    (fun x lambda ->
      if lambda > 0 then
        total_loss := !total_loss + (lambda * choose k (x + 1) / choose p.s (x + 1)))
    config.lambdas;
  max 0 (p.b - !total_loss)

let materialize ?(spread = false) config =
  let p = config.params in
  let parts = ref [] in
  Array.iteri
    (fun x count ->
      if count > 0 then begin
        match config.levels.(x).entry with
        | None -> invalid_arg "Combo.materialize: level without catalogue entry"
        | Some e ->
            let simple = Simple.of_entry ~spread e ~n:p.n ~b:count in
            parts := simple.Simple.layout :: !parts
      end)
    config.assigned;
  match !parts with
  | [] -> invalid_arg "Combo.materialize: empty configuration"
  | parts -> Layout.concat parts

let brute_force_lb (p : Params.t) ~levels =
  (* Mirror of the DP objective, by exhaustive enumeration of the copy
     counts d_x.  Exponential; test use only. *)
  let rec go x' b' =
    if b' <= 0 then 0
    else if x' = 0 then begin
      let l0 = levels.(0) in
      if l0.cap_mu = 0 then neg_inf
      else begin
        let d = (b' + l0.cap_mu - 1) / l0.cap_mu in
        max 0 (b' - loss ~level:l0 ~d ~k:p.k ~s:p.s)
      end
    end
    else begin
      let level = levels.(x') in
      let d_max = if level.cap_mu = 0 then 0 else (b' + level.cap_mu - 1) / level.cap_mu in
      let best = ref neg_inf in
      for d = 0 to d_max do
        let hosted = min b' (d * level.cap_mu) in
        let below = go (x' - 1) (b' - (d * level.cap_mu)) in
        if below > neg_inf then
          best := max !best (below + hosted - loss ~level ~d ~k:p.k ~s:p.s)
      done;
      !best
    end
  in
  max 0 (go (p.s - 1) p.b)
