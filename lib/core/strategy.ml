type capability = Deterministic | Randomized | Load_balanced | Online | Exact_small

let capability_name = function
  | Deterministic -> "deterministic"
  | Randomized -> "randomized"
  | Load_balanced -> "load-balanced"
  | Online -> "online"
  | Exact_small -> "exact-small"

module type S = sig
  val name : string
  val describe : string
  val capabilities : capability list
  val plan : ?rng:Combin.Rng.t -> Instance.t -> Layout.t
  val lower_bound : ?layout:Layout.t -> Instance.t -> int option
  val explain : Instance.t -> string list
end

(* The registry is populated at module-initialization time (Strategies
   registers the built-ins before any consumer code runs) and read-only
   afterwards, so plain mutable state needs no synchronization. *)
let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 16

let register (module M : S) =
  if Hashtbl.mem registry M.name then
    invalid_arg ("Strategy.register: duplicate strategy " ^ M.name);
  Hashtbl.replace registry M.name (module M : S)

let find name = Hashtbl.find_opt registry name

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort compare

let all () = List.filter_map find (names ())
