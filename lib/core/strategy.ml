type capability = Deterministic | Randomized | Load_balanced | Online | Exact_small

let capability_name = function
  | Deterministic -> "deterministic"
  | Randomized -> "randomized"
  | Load_balanced -> "load-balanced"
  | Online -> "online"
  | Exact_small -> "exact-small"

module type S = sig
  val name : string
  val describe : string
  val capabilities : capability list
  val plan : ?rng:Combin.Rng.t -> Instance.t -> Layout.t
  val lower_bound : ?layout:Layout.t -> Instance.t -> int option
  val explain : Instance.t -> string list
end

(* The registry is populated at module-initialization time (Strategies
   registers the built-ins before any consumer code runs) and read-only
   afterwards, so plain mutable state needs no synchronization. *)
let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 16

let register (module M : S) =
  if Hashtbl.mem registry M.name then
    invalid_arg ("Strategy.register: duplicate strategy " ^ M.name);
  Hashtbl.replace registry M.name (module M : S)

let find name = Hashtbl.find_opt registry name

(* Re-exports: the analysis layer's labeled records, surfaced here so
   consumers of the strategy API never import Analysis/Random_analysis
   just to name a result field. *)
type lb_report = Analysis.lb_report = {
  lb : int;
  lb_clamped : int;
  failed_ub : int;
  vacuous : bool;
}

type rnd_report = Random_analysis.rnd_report = {
  p_fail : float;
  pr_avail : int;
  fraction : float;
  lemma4_upper : float option;
}

type report = {
  strategy : string;
  capabilities : capability list;
  params : Params.t;
  lower_bound : int option;
  upper_bound : int;
  notes : string list;
}

let report ?layout (module M : S) inst =
  let p = Instance.params inst in
  {
    strategy = M.name;
    capabilities = M.capabilities;
    params = p;
    lower_bound = M.lower_bound ?layout inst;
    upper_bound =
      Analysis.ub_avail_any ~b:p.Params.b ~r:p.Params.r ~s:p.Params.s
        ~n:p.Params.n ~k:p.Params.k;
    notes = M.explain inst;
  }

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort compare

let all () = List.filter_map find (names ())
