let max_objects ~x ~nx ~r ~lambda =
  lambda * Combin.Binomial.exact nx (x + 1) / Combin.Binomial.exact r (x + 1)

let capacity_per_mu ~x ~nx ~r ~mu =
  let num = mu * Combin.Binomial.exact nx (x + 1) in
  let den = Combin.Binomial.exact r (x + 1) in
  if num mod den <> 0 then
    invalid_arg "Analysis: μ C(nx,x+1)/C(r,x+1) not integral";
  num / den

let lambda_min ~x ~nx ~r ~mu ~b =
  let cap = capacity_per_mu ~x ~nx ~r ~mu in
  let copies = (b + cap - 1) / cap in
  max 1 copies * mu

type lb_report = {
  lb : int;
  lb_clamped : int;
  failed_ub : int;
  vacuous : bool;
}

let lb_avail_si_report ?(choose = Combin.Binomial.exact) ~b ~x ~lambda ~k ~s () =
  let failed_ub = lambda * choose k (x + 1) / choose s (x + 1) in
  let lb = b - failed_ub in
  { lb; lb_clamped = max 0 lb; failed_ub; vacuous = lb <= 0 }

type competitive = { c : float; alpha : float }

let theorem1 ~x ~nx ~r ~s ~k ~mu =
  let cr = Combin.Binomial.exact r (x + 1) in
  let ck = Combin.Binomial.exact k (x + 1) in
  let cn = Combin.Binomial.exact nx (x + 1) in
  let cs = Combin.Binomial.exact s (x + 1) in
  if cr * ck >= cn * cs then None
  else begin
    let ratio = float_of_int (cr * ck) /. float_of_int (cn * cs) in
    let c = 1.0 /. (1.0 -. ratio) in
    let alpha = c *. float_of_int (mu * ck) /. float_of_int cs in
    Some { c; alpha }
  end

let competitive_limit_fraction ~x ~nx ~k =
  let num = float_of_int (Combin.Binomial.falling k (x + 1)) in
  let den = float_of_int (Combin.Binomial.falling nx (x + 1)) in
  1.0 -. (num /. den)

let ub_avail_any ~b ~r ~s ~n ~k =
  if k < s then b
  else begin
    (* Top-k loads sum to at least the ceiling of k/n of all r·b replicas. *)
    let loads = ((k * r * b) + n - 1) / n in
    let m = min r k in
    let avail = (m * b - loads) / (m - s + 1) in
    max 0 (min b avail)
  end
