type 'a t = {
  mutable keys : float array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.0; values = [||]; size = 0 }

let is_empty h = h.size = 0
let size h = h.size

let grow h v =
  if h.size = Array.length h.keys then begin
    let cap = 2 * Array.length h.keys in
    let keys = Array.make cap 0.0 in
    Array.blit h.keys 0 keys 0 h.size;
    h.keys <- keys
  end;
  if h.size >= Array.length h.values then begin
    let cap = max 16 (2 * max 1 (Array.length h.values)) in
    let values = Array.make cap v in
    Array.blit h.values 0 values 0 h.size;
    h.values <- values
  end

let swap h i j =
  let tk = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- tk;
  let tv = h.values.(i) in
  h.values.(i) <- h.values.(j);
  h.values.(j) <- tv

let push h key v =
  grow h v;
  h.keys.(h.size) <- key;
  h.values.(h.size) <- v;
  h.size <- h.size + 1;
  let i = ref (h.size - 1) in
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek h = if h.size = 0 then None else Some (h.keys.(0), h.values.(0))

let pop h =
  if h.size = 0 then None
  else begin
    let top = (h.keys.(0), h.values.(0)) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.values.(0) <- h.values.(h.size);
      (* sift down *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
        if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done
    end;
    Some top
  end

module Int_max = struct
  (* Same sift structure as the float heap, but over (key, payload) int
     pairs with the total order: key desc, then payload asc — so equal
     bounds pop in node-id order, matching the greedy scan's tie-break. *)
  type t = {
    mutable keys : int array;
    mutable payloads : int array;
    mutable size : int;
  }

  let create () = { keys = Array.make 16 0; payloads = Array.make 16 0; size = 0 }
  let is_empty h = h.size = 0
  let size h = h.size

  (* Keep the grown arrays: a cleared heap refills without reallocating,
     which is what lets a B&B worker reuse one heap across thousands of
     greedy-completion probes (Placement.Bb). *)
  let clear h = h.size <- 0

  (* [before] is the strict heap order: entry i should pop before j. *)
  let before h i j =
    h.keys.(i) > h.keys.(j)
    || (h.keys.(i) = h.keys.(j) && h.payloads.(i) < h.payloads.(j))

  let swap h i j =
    let tk = h.keys.(i) in
    h.keys.(i) <- h.keys.(j);
    h.keys.(j) <- tk;
    let tp = h.payloads.(i) in
    h.payloads.(i) <- h.payloads.(j);
    h.payloads.(j) <- tp

  let grow h =
    if h.size = Array.length h.keys then begin
      let cap = 2 * Array.length h.keys in
      let keys = Array.make cap 0 and payloads = Array.make cap 0 in
      Array.blit h.keys 0 keys 0 h.size;
      Array.blit h.payloads 0 payloads 0 h.size;
      h.keys <- keys;
      h.payloads <- payloads
    end

  let push h ~key payload =
    grow h;
    h.keys.(h.size) <- key;
    h.payloads.(h.size) <- payload;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && before h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  (* Append [count] entries then restore the heap property bottom-up
     (Floyd): O(size + count) instead of the O(count·log size) of
     repeated pushes.  Because the heap order is a strict total order on
     (key, payload) pairs, the pop sequence is identical either way —
     batching changes only the internal layout.  Small batches (where
     count·log2 size is cheaper than one O(size) heapify) fall back to
     repeated sift-up pushes; the cutoff only moves work between
     equivalent heaps, never the pop order. *)
  let push_many h ~keys ~payloads ~count =
    if count < 0 || count > Array.length keys || count > Array.length payloads
    then invalid_arg "Heap.Int_max.push_many";
    let final = h.size + count in
    let bits =
      let b = ref 1 and v = ref final in
      while !v > 1 do
        incr b;
        v := !v lsr 1
      done;
      !b
    in
    if count * bits < final then
      for i = 0 to count - 1 do
        push h ~key:keys.(i) payloads.(i)
      done
    else if count > 0 then begin
      if h.size + count > Array.length h.keys then begin
        let cap = max (2 * Array.length h.keys) (h.size + count) in
        let ks = Array.make cap 0 and ps = Array.make cap 0 in
        Array.blit h.keys 0 ks 0 h.size;
        Array.blit h.payloads 0 ps 0 h.size;
        h.keys <- ks;
        h.payloads <- ps
      end;
      Array.blit keys 0 h.keys h.size count;
      Array.blit payloads 0 h.payloads h.size count;
      h.size <- h.size + count;
      let sift_down i =
        let i = ref i in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let first = ref !i in
          if l < h.size && before h l !first then first := l;
          if r < h.size && before h r !first then first := r;
          if !first = !i then continue_ := false
          else begin
            swap h !i !first;
            i := !first
          end
        done
      in
      for i = (h.size - 2) / 2 downto 0 do
        sift_down i
      done
    end

  let peek h = if h.size = 0 then None else Some (h.keys.(0), h.payloads.(0))

  let pop h =
    if h.size = 0 then None
    else begin
      let top = (h.keys.(0), h.payloads.(0)) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.keys.(0) <- h.keys.(h.size);
        h.payloads.(0) <- h.payloads.(h.size);
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let first = ref !i in
          if l < h.size && before h l !first then first := l;
          if r < h.size && before h r !first then first := r;
          if !first = !i then continue_ := false
          else begin
            swap h !i !first;
            i := !first
          end
        done
      end;
      Some top
    end
end
