(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All stochastic components of the reproduction (Random placement,
    adversary restarts, Monte-Carlo experiments) draw from this generator so
    that every experiment is reproducible from a fixed seed.  SplitMix64 is
    small, fast, passes BigCrush, and supports {!split} for building
    statistically independent streams for sub-experiments. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of [t]'s subsequent output. *)

val split_n : t -> int -> t array
(** [split_n t n] draws [n] independent child generators from [t], in
    index order.  This is the seed-splitting discipline for parallel
    work: split one child per task *before* dispatching so that every
    task's stream — and hence every result — is independent of task
    scheduling (see {!Engine.Pool}). *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound > 0] required.
    Uses rejection sampling, so it is exactly uniform. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : t -> n:int -> k:int -> int array
(** [sample_distinct t ~n ~k] draws a uniformly random k-subset of
    [{0..n-1}], returned sorted.  Uses Floyd's algorithm: O(k) expected. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted t w] draws index [i] with probability proportional to
    [w.(i)] ([w.(i) >= 0], not all zero). *)
