(* 63 bits per word: a bitset over [0, capacity) fits in
   ceil(capacity/63) immediate ints — no boxing, no Int64. *)

let bits = 63

type t = { capacity : int; words : int array }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make ((capacity + bits - 1) / bits) 0 }

let capacity t = t.capacity
let copy t = { t with words = Array.copy t.words }

let check t x op =
  if x < 0 || x >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: %d out of [0, %d)" op x t.capacity)

let mem t x =
  check t x "mem";
  t.words.(x / bits) land (1 lsl (x mod bits)) <> 0

let add t x =
  check t x "add";
  t.words.(x / bits) <- t.words.(x / bits) lor (1 lsl (x mod bits))

let remove t x =
  check t x "remove";
  t.words.(x / bits) <- t.words.(x / bits) land lnot (1 lsl (x mod bits))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Table-driven popcount: one 65536-entry byte table, four lookups per
   63-bit word.  Built eagerly at module load (64 KiB, branch-free
   lookups afterwards). *)
let pop16 =
  let tbl = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.unsafe_set tbl i
      (Char.chr (Char.code (Bytes.unsafe_get tbl (i lsr 1)) + (i land 1)))
  done;
  tbl

let popcount w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 48) land 0x7fff))

let count t =
  let c = ref 0 in
  Array.iter (fun w -> c := !c + popcount w) t.words;
  !c

let check_pair a b op =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacities %d <> %d" op a.capacity b.capacity)

let inter_count a b =
  check_pair a b "inter_count";
  let c = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    c := !c + popcount (Array.unsafe_get a.words i land Array.unsafe_get b.words i)
  done;
  !c

let zip op a b =
  { capacity = a.capacity; words = Array.map2 op a.words b.words }

let inter a b = check_pair a b "inter"; zip ( land ) a b
let union a b = check_pair a b "union"; zip ( lor ) a b
let diff a b = check_pair a b "diff"; zip (fun x y -> x land lnot y) a b

let equal a b = a.capacity = b.capacity && a.words = b.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let iter f t =
  Array.iteri
    (fun i w ->
      let w = ref w in
      while !w <> 0 do
        let low = !w land -(!w) in
        (* log2 of a one-hot word via popcount of low - 1 *)
        f ((i * bits) + popcount (low - 1));
        w := !w lxor low
      done)
    t.words

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let of_array ~capacity xs =
  let t = create capacity in
  Array.iter (fun x -> add t x) xs;
  t

let to_array t =
  let out = Array.make (count t) 0 in
  let i = ref 0 in
  iter
    (fun x ->
      out.(!i) <- x;
      incr i)
    t;
  out
