exception Overflow

let mul_checked a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if c / b <> a then raise Overflow else c

let exact n k =
  if k < 0 || k > n || n < 0 then 0
  else begin
    let k = min k (n - k) in
    (* Multiply/divide interleaved so intermediates stay integral:
       after step i the accumulator equals C(n-k+i, i). *)
    let acc = ref 1 in
    for i = 1 to k do
      acc := mul_checked !acc (n - k + i) / i
    done;
    !acc
  end

let exact_opt n k = try Some (exact n k) with Overflow -> None

let log_factorial =
  let cache = ref (Array.make 1 0.0) in
  fun n ->
    if n < 0 then invalid_arg "Binomial.log_factorial: negative"
    else begin
      let c = !cache in
      if n < Array.length c then c.(n)
      else begin
        let len = max (n + 1) (2 * Array.length c) in
        let c' = Array.make len 0.0 in
        Array.blit c 0 c' 0 (Array.length c);
        for i = Array.length c to len - 1 do
          c'.(i) <- c'.(i - 1) +. Stdlib.log (float_of_int i)
        done;
        cache := c';
        c'.(n)
      end
    end

let log n k =
  if k < 0 || k > n || n < 0 then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let divides a b = a <> 0 && b mod a = 0

let ratio_exact n1 k1 n2 k2 =
  match (exact_opt n1 k1, exact_opt n2 k2) with
  | Some num, Some den when den <> 0 && num mod den = 0 -> Some (num / den)
  | _ -> None

let row_table ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Binomial.row_table: negative size";
  (* Pascal's rule with a saturation sentinel: an entry that would
     overflow is stored as -1, and so is anything derived from it, so a
     lookup can fall back to {!exact} (which raises a precise
     [Overflow]) instead of returning garbage. *)
  let t = Array.make_matrix (rows + 1) (cols + 1) 0 in
  for m = 0 to rows do
    t.(m).(0) <- 1;
    for j = 1 to min m cols do
      let a = t.(m - 1).(j - 1) and b = t.(m - 1).(j) in
      if a < 0 || b < 0 then t.(m).(j) <- -1
      else
        let sum = a + b in
        t.(m).(j) <- (if sum < 0 then -1 else sum)
    done
  done;
  t

let falling n j =
  let acc = ref 1 in
  for i = 0 to j - 1 do
    acc := mul_checked !acc (n - i)
  done;
  !acc
