(** Fixed-capacity mutable bitsets packed into OCaml ints (63 bits per
    word), with a table-driven popcount.

    The attack kernel ({!Placement.Kernel}) keeps one bitset per object
    (the nodes hosting its replicas) and one for the current failure
    set: membership, one-shot threshold counts and set algebra then run
    over a handful of machine words instead of sorted-array merges.
    Capacity is fixed at creation; all elements must lie in
    [0, capacity).  Operations over two bitsets require equal
    capacities. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0, capacity).
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Remove every element. *)

val count : t -> int
(** Cardinality, via a 16-bit lookup table (no hardware popcount in
    vanilla OCaml). *)

val inter_count : t -> t -> int
(** [inter_count a b] is [|a ∩ b|] without allocating. *)

val inter : t -> t -> t

val union : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Elements in increasing order. *)

val of_array : capacity:int -> int array -> t
(** @raise Invalid_argument if an element is out of range. *)

val to_array : t -> int array
(** Sorted, distinct. *)
