(** Exact and log-space binomial coefficients.

    The paper's formulas manipulate quantities such as
    [C(n,x+1) / C(r,x+1)] (packing capacities, Lemma 1) and binomial tails
    over up to [b = 38400] objects (Theorem 2).  Capacities fit comfortably
    in OCaml's 63-bit integers for every parameter range the paper uses
    (largest is [C(800,5) ~ 2.7e12]); probability-tail computations are done
    in log space to avoid underflow. *)

exception Overflow
(** Raised by {!exact} when the result does not fit in an OCaml [int]. *)

val exact : int -> int -> int
(** [exact n k] is the binomial coefficient [C(n,k)] computed with exact
    integer arithmetic.  Returns [0] when [k < 0] or [k > n].
    @raise Overflow if the result exceeds [max_int]. *)

val exact_opt : int -> int -> int option
(** [exact_opt n k] is [Some (exact n k)], or [None] on overflow. *)

val log : int -> int -> float
(** [log n k] is [ln C(n,k)], or [neg_infinity] when [C(n,k) = 0].
    Computed from cached log-factorials; accurate to ~1e-10 relative. *)

val log_factorial : int -> float
(** [log_factorial n] is [ln n!]; exact summation with caching. *)

val divides : int -> int -> bool
(** [divides a b] is [true] iff [a] divides [b] ([a <> 0]). *)

val ratio_exact : int -> int -> int -> int -> int option
(** [ratio_exact n1 k1 n2 k2] is [Some (C(n1,k1) / C(n2,k2))] when the
    division is exact and nothing overflows, [None] otherwise.  This is the
    packing-capacity quantity of Lemma 1. *)

val row_table : rows:int -> cols:int -> int array array
(** [row_table ~rows ~cols] is the Pascal triangle [t] with
    [t.(m).(j) = C(m,j)] for [0 <= m <= rows] and [0 <= j <= min m cols]
    ([0] above the diagonal).  Entries that would overflow an OCaml [int]
    are stored as [-1]; callers fall back to {!exact} for those.  Built
    once and shared read-only — this is the memoized-binomial substrate
    of {!Placement.Instance}. *)

val falling : int -> int -> int
(** [falling n j] is the falling factorial [n (n-1) ... (n-j+1)].
    @raise Overflow on overflow. *)
