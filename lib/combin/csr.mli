(** Flat CSR (compressed sparse row) incidence matrices over [Bigarray].

    A CSR value stores a ragged [rows × cols] incidence — row [u] is a
    list of column ids, duplicates allowed, one entry per incidence —
    as two flat native-int bigarrays: an offsets array [row_ptr] of
    length [rows + 1] and an entries array of length
    [row_ptr.(rows)].  Compared to the boxed [int array array] it
    replaces in the attack kernel ({!Placement.Kernel}), the flat form
    has no per-row headers or pointer indirection, scans rows with unit
    stride, lives outside the OCaml heap (never scanned by the GC, safe
    to share across domains), and is immutable after construction —
    one build is shared untouched by every kernel copy and every
    branch-and-bound branch.

    Rows are attack units (nodes or fault domains), columns are
    objects; entries of row [u] list the objects with a replica on
    unit [u], in object order for {!invert} (ascending) and in input
    order otherwise. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  rows : int;
  cols : int;
  row_ptr : buf;  (** length [rows + 1]; row [u] is [row_ptr.(u) .. row_ptr.(u+1) - 1] *)
  entries : buf;  (** length [row_ptr.(rows)]; column ids in [0, cols) *)
  max_degree : int;  (** largest row length (0 for an empty matrix) *)
}

val of_arrays : cols:int -> int array array -> t
(** Pack a boxed ragged array; row order and within-row entry order are
    preserved.  @raise Invalid_argument on an entry outside [0, cols). *)

val invert : rows:int -> int array array -> t
(** [invert ~rows sets] is the transposed incidence: row [u] of the
    result lists every index [i] with [u ∈ sets.(i)], in ascending [i]
    (an occurrence per appearance, so duplicate members of one set
    yield duplicate entries).  This is the one-pass counting-sort
    build of the node → objects index used by {!Placement.Kernel},
    going straight from the replica table to the flat form without
    materializing a boxed intermediate.
    @raise Invalid_argument on a member outside [0, rows). *)

val group : t -> int array array -> t
(** [group t members] regroups rows: row [g] of the result is the
    concatenation of [t]'s rows [members.(g)], in member order — how
    the fault-domain kernel derives a domain-level incidence from the
    node-level one without touching the boxed index.
    @raise Invalid_argument on a member outside [0, rows t). *)

val rows : t -> int
val cols : t -> int
val degree : t -> int -> int
val max_degree : t -> int

val entries_total : t -> int
(** Total entry count, [row_ptr.(rows)]. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** Apply to every entry of one row, in storage order. *)

val row : t -> int -> int array
(** One row as a fresh boxed array (tests and cold paths only). *)

val memory_bytes : t -> int
(** Off-heap footprint of the two bigarrays, in bytes. *)
