type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n";
  (* Explicit order: child i consumes the i-th draw of [t], so the result
     is a pure function of [t]'s state and [n]. *)
  let children = Array.make n t in
  for i = 0 to n - 1 do
    children.(i) <- split t
  done;
  children

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling on the top bits for exact uniformity. *)
  let b = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    (* r uniform in [0, 2^63) *)
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then go ()
    else Int64.to_int v
  in
  go ()

let float t =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_distinct";
  (* Floyd's algorithm: for j = n-k..n-1, pick u in [0,j]; insert u unless
     already chosen, in which case insert j. *)
  let module S = Set.Make (Int) in
  let chosen = ref S.empty in
  for j = n - k to n - 1 do
    let u = int t (j + 1) in
    if S.mem u !chosen then chosen := S.add j !chosen
    else chosen := S.add u !chosen
  done;
  Array.of_list (S.elements !chosen)

let choose_weighted t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then invalid_arg "Rng.choose_weighted: zero total";
  let x = float t *. total in
  let acc = ref 0.0 and result = ref (Array.length w - 1) in
  (try
     Array.iteri
       (fun i wi ->
         acc := !acc +. wi;
         if x < !acc then begin
           result := i;
           raise Exit
         end)
       w
   with Exit -> ());
  !result
