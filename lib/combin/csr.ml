type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  rows : int;
  cols : int;
  row_ptr : buf;
  entries : buf;
  max_degree : int;
}

let alloc len = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

let finish ~rows ~cols row_ptr entries =
  let max_degree = ref 0 in
  for u = 0 to rows - 1 do
    let d = row_ptr.{u + 1} - row_ptr.{u} in
    if d > !max_degree then max_degree := d
  done;
  { rows; cols; row_ptr; entries; max_degree = !max_degree }

let of_arrays ~cols arr =
  let rows = Array.length arr in
  let row_ptr = alloc (rows + 1) in
  row_ptr.{0} <- 0;
  Array.iteri (fun u r -> row_ptr.{u + 1} <- row_ptr.{u} + Array.length r) arr;
  let entries = alloc row_ptr.{rows} in
  Array.iteri
    (fun u r ->
      let base = row_ptr.{u} in
      Array.iteri
        (fun i c ->
          if c < 0 || c >= cols then invalid_arg "Csr.of_arrays: entry out of range";
          entries.{base + i} <- c)
        r)
    arr;
  finish ~rows ~cols row_ptr entries

let invert ~rows sets =
  let cols = Array.length sets in
  (* Counting sort: degree pass, prefix sums, fill pass.  The fill
     cursor reuses the offsets array shifted by one so the build needs
     no extra O(rows) scratch. *)
  let row_ptr = alloc (rows + 1) in
  Bigarray.Array1.fill row_ptr 0;
  Array.iter
    (Array.iter (fun u ->
         if u < 0 || u >= rows then invalid_arg "Csr.invert: member out of range";
         row_ptr.{u + 1} <- row_ptr.{u + 1} + 1))
    sets;
  for u = 0 to rows - 1 do
    row_ptr.{u + 1} <- row_ptr.{u + 1} + row_ptr.{u}
  done;
  let entries = alloc row_ptr.{rows} in
  let fill = Array.make rows 0 in
  Array.iteri
    (fun i set ->
      Array.iter
        (fun u ->
          entries.{row_ptr.{u} + fill.(u)} <- i;
          fill.(u) <- fill.(u) + 1)
        set)
    sets;
  finish ~rows ~cols row_ptr entries

let group t members =
  let rows = Array.length members in
  let row_ptr = alloc (rows + 1) in
  row_ptr.{0} <- 0;
  Array.iteri
    (fun g ms ->
      let len = ref 0 in
      Array.iter
        (fun u ->
          if u < 0 || u >= t.rows then invalid_arg "Csr.group: member out of range";
          len := !len + (t.row_ptr.{u + 1} - t.row_ptr.{u}))
        ms;
      row_ptr.{g + 1} <- row_ptr.{g} + !len)
    members;
  let entries = alloc row_ptr.{rows} in
  Array.iteri
    (fun g ms ->
      let cursor = ref row_ptr.{g} in
      Array.iter
        (fun u ->
          let lo = t.row_ptr.{u} and hi = t.row_ptr.{u + 1} in
          if hi > lo then begin
            Bigarray.Array1.blit
              (Bigarray.Array1.sub t.entries lo (hi - lo))
              (Bigarray.Array1.sub entries !cursor (hi - lo));
            cursor := !cursor + (hi - lo)
          end)
        ms)
    members;
  finish ~rows ~cols:t.cols row_ptr entries

let rows t = t.rows
let cols t = t.cols
let degree t u = t.row_ptr.{u + 1} - t.row_ptr.{u}
let max_degree t = t.max_degree
let entries_total t = t.row_ptr.{t.rows}

let iter_row t u f =
  for i = t.row_ptr.{u} to t.row_ptr.{u + 1} - 1 do
    f t.entries.{i}
  done

let row t u =
  let lo = t.row_ptr.{u} in
  Array.init (degree t u) (fun i -> t.entries.{lo + i})

let memory_bytes t =
  8 * (Bigarray.Array1.dim t.row_ptr + Bigarray.Array1.dim t.entries)
