(** A mutable binary min-heap, keyed by float priority.

    Backs the discrete-event loop of the failure/repair simulator
    ({!Dsim.Repair}): events are (time, payload) pairs popped in time
    order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h priority payload]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry; ties in insertion
    order are not guaranteed. *)

val peek : 'a t -> (float * 'a) option

(** An int-keyed max-heap over int payloads with a deterministic total
    order: larger key first, ties to the {e smaller} payload.

    Backs the CELF lazy-greedy adversary ({!Placement.Adversary}):
    payloads are node ids, keys are stale upper bounds on marginal
    damage, and the tie order reproduces the reference scan's
    lowest-id-wins rule exactly. *)
module Int_max : sig
  type t

  val create : unit -> t
  val is_empty : t -> bool
  val size : t -> int

  val clear : t -> unit
  (** Empty the heap without releasing its storage, so a long-lived heap
      can be refilled with no per-use allocation (the reuse path of the
      B&B frontier's per-worker CELF probes, {!Placement.Bb}). *)

  val push : t -> key:int -> int -> unit
  (** [push h ~key payload]. *)

  val push_many : t -> keys:int array -> payloads:int array -> count:int -> unit
  (** Insert the first [count] entries of [keys]/[payloads] in one
      batch: bulk append plus a bottom-up (Floyd) heapify, O(size +
      count) against O(count·log size) for repeated {!push}; small
      batches fall back to repeated pushes when that is cheaper.  The heap
      order is a strict total order, so the subsequent pop sequence is
      identical to pushing one at a time.  Backs the CELF greedy's
      per-round loser re-push ({!Placement.Kernel.select_greedy}).
      @raise Invalid_argument if [count] exceeds either array. *)

  val pop : t -> (int * int) option
  (** Remove and return the maximum entry as [(key, payload)]; among
      equal keys the smallest payload is returned first. *)

  val peek : t -> (int * int) option
end
