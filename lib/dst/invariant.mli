(** The dst invariant registry (DESIGN.md §14): properties of the
    continuous engine checked after every applied event ([Step]) or at
    [Measure] pulses ([Pulse], for the expensive oracles).

    A violation raises {!Violation} with the invariant's name and a
    one-sentence message; the harness turns that into a failing
    {!Harness.outcome} and (on request) hands the history to the
    shrinker.  Fault injection must never trip an invariant: injected
    faults surface as rejections and rollbacks, after which every
    property here still holds. *)

exception Violation of string * string
(** [(invariant name, message)]. *)

val fail : string -> ('a, unit, string, 'b) format4 -> 'a
(** [fail name fmt ...] raises {!Violation} — for custom invariants in
    tests. *)

type cadence =
  | Step  (** after every applied event *)
  | Pulse  (** at [Measure] events only (expensive oracles) *)

type ctx = {
  engine : Dsim.Churn.t;
  step : Dsim.Churn.step option;
      (** the step just applied; [None] on the pre-history check *)
  pre_load : int;
      (** the leaver's {!Dsim.Churn.node_load} captured before a
          [Node_leave] was applied (0 for every other event) — the
          movement budget that leave was allowed to spend *)
  applied : Dsim.Event.t list;
      (** every successfully applied event so far, newest first *)
  rescore : Dsim.Churn.rescore Lazy.t;
      (** the current worst-case attack, shared so multiple invariants
          (and the harness's own min tracking) pay for it once *)
}

type t = {
  name : string;  (** e.g. ["engine/oracle"], ["strategy/combo"] *)
  describe : string;
  cadence : cadence;
  check : ctx -> unit;  (** raises {!Violation} on failure *)
}

val builtins : t list
(** The always-on registry:

    - [engine/oracle] ([Step]): {!Dsim.Churn.check} — incremental
      kernel, adaptive bookkeeping, availability, adversary picks all ≡
      from-scratch recomputation;
    - [availability/lower-bound] ([Step]): current availability (while
      at most k nodes are down) and the worst-case rescore never fall
      below the live Lemma-3 guarantee;
    - [movement/budget] ([Step]): a create moves exactly r replicas, a
      leave at most r·load(leaver), everything else nothing;
    - [placement/in-service] ([Pulse]): no live replica sits on a node
      that permanently left;
    - [engine/replay] ([Pulse]): a fresh engine replaying the applied
      history (injection disarmed) reaches the same live/available/
      moved/bound state and the same layout. *)

val of_strategy : (module Placement.Strategy.S) -> t
(** Auto-discovered per-strategy invariant ([strategy/<name>], [Pulse]):
    plan the strategy at the live population's parameter cell and check
    the plan against its own promises — the ⌈r·b/n⌉ load cap when it
    claims [Load_balanced], and availability under a greedy k-attack ≥
    its {!Placement.Strategy.S.lower_bound}.  Cells the strategy cannot
    handle (invalid parameters, over an [Exact_small] budget, missing
    configuration) are skipped, not failed. *)

val canaries : t list
(** Deliberately broken invariants, off by default, enabled by name via
    the harness's [break_invariants] — fuel for shrinker drills and the
    check.sh smoke: [canary/full-availability] asserts that no live
    object is ever unavailable, which any create + s failures refutes. *)

val find_canary : string -> t option
val canary_names : string list
