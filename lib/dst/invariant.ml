module Event = Dsim.Event
module Churn = Dsim.Churn

exception Violation of string * string

let fail name fmt =
  Printf.ksprintf (fun message -> raise (Violation (name, message))) fmt

type cadence = Step | Pulse

type ctx = {
  engine : Churn.t;
  step : Churn.step option;
  pre_load : int;
  applied : Event.t list;
  rescore : Churn.rescore Lazy.t;
}

type t = {
  name : string;
  describe : string;
  cadence : cadence;
  check : ctx -> unit;
}

(* ------------------------------------------------------------------ *)
(* Built-ins. *)

let oracle =
  let name = "engine/oracle" in
  {
    name;
    describe =
      "incremental engine state is bit-identical to from-scratch \
       recomputation (Churn.check)";
    cadence = Step;
    check =
      (fun ctx ->
        try Churn.check ctx.engine
        with Failure msg -> fail name "%s" msg);
  }

let lower_bound =
  let name = "availability/lower-bound" in
  {
    name;
    describe =
      "availability never falls below the live Lemma-3 guarantee (current \
       set while ≤ k nodes are down, and the greedy worst case always)";
    cadence = Step;
    check =
      (fun ctx ->
        let eng = ctx.engine in
        let lb = Churn.lower_bound eng in
        let failed = Array.length (Churn.failed_nodes eng) in
        let avail = Churn.available eng in
        if failed <= Churn.k eng && avail < lb then
          fail name
            "available %d < lower bound %d with only %d ≤ k = %d nodes down"
            avail lb failed (Churn.k eng);
        let rs = Lazy.force ctx.rescore in
        if rs.Churn.worst_available < lb then
          fail name "worst-case available %d < lower bound %d"
            rs.Churn.worst_available lb);
  }

let movement =
  let name = "movement/budget" in
  {
    name;
    describe =
      "bounded data movement: a create ships exactly r replicas, a leave \
       at most r·load(leaver), every other event nothing";
    cadence = Step;
    check =
      (fun ctx ->
        match ctx.step with
        | None -> ()
        | Some st ->
            let r = Churn.r ctx.engine in
            let moved = st.Churn.moved in
            (match st.Churn.event with
            | Event.Object_create ->
                if moved <> r then
                  fail name "create moved %d replicas, expected exactly r = %d"
                    moved r
            | Event.Node_leave nd ->
                if moved > r * ctx.pre_load then
                  fail name
                    "leave of node %d moved %d replicas > budget r·load = \
                     %d·%d"
                    nd moved r ctx.pre_load
            | _ ->
                if moved <> 0 then
                  fail name "%s moved %d replicas, expected none"
                    (Event.describe st.Churn.event)
                    moved));
  }

let in_service =
  let name = "placement/in-service" in
  {
    name;
    describe = "no live replica sits on a node that permanently left";
    cadence = Pulse;
    check =
      (fun ctx ->
        let eng = ctx.engine in
        let layout = Churn.layout eng in
        Array.iteri
          (fun obj rs ->
            Array.iter
              (fun nd ->
                if not (Churn.node_in_service eng nd) then
                  fail name "object %d holds a replica on departed node %d"
                    obj nd)
              rs)
          layout.Placement.Layout.replicas);
  }

let replay =
  let name = "engine/replay" in
  {
    name;
    describe =
      "a fresh engine replaying the applied history (injection disarmed) \
       reaches the same state and layout";
    cadence = Pulse;
    check =
      (fun ctx ->
        let eng = ctx.engine in
        let fresh =
          Churn.create ~topology:(Churn.topology eng) ~n:(Churn.n eng)
            ~r:(Churn.r eng) ~s:(Churn.s eng) ~k:(Churn.k eng) ()
        in
        Dsim.Inject.without (fun () ->
            List.iter
              (fun ev ->
                match Churn.apply fresh ev with
                | _ -> ()
                | exception Invalid_argument msg ->
                    fail name "replay rejected applied event %S: %s"
                      (Event.to_line ev) msg)
              (List.rev ctx.applied));
        let pair what a b =
          if a <> b then fail name "%s diverges on replay: %d <> %d" what a b
        in
        pair "live objects" (Churn.live eng) (Churn.live fresh);
        pair "available" (Churn.available eng) (Churn.available fresh);
        pair "moved replicas"
          (Churn.moved_replicas eng)
          (Churn.moved_replicas fresh);
        pair "lower bound" (Churn.lower_bound eng) (Churn.lower_bound fresh);
        if Churn.failed_nodes eng <> Churn.failed_nodes fresh then
          fail name "failed-node set diverges on replay";
        let reps e =
          (Churn.layout e).Placement.Layout.replicas
        in
        if reps eng <> reps fresh then
          fail name "layout diverges on replay");
  }

let builtins = [ oracle; lower_bound; movement; in_service; replay ]

(* ------------------------------------------------------------------ *)
(* Per-strategy auto-discovery. *)

let of_strategy (module S : Placement.Strategy.S) =
  let name = "strategy/" ^ S.name in
  {
    name;
    describe =
      Printf.sprintf
        "%s's plan at the live population honours its own load cap and \
         lower bound under greedy attack"
        S.name;
    cadence = Pulse;
    check =
      (fun ctx ->
        let eng = ctx.engine in
        let b = Churn.live eng in
        if b > 0 then
          let params : Placement.Params.t =
            {
              b;
              r = Churn.r eng;
              s = Churn.s eng;
              n = Churn.n eng;
              k = Churn.k eng;
            }
          in
          match Placement.Params.validate params with
          | Error _ -> ()
          | Ok p -> (
              let inst = Placement.Instance.of_params p in
              (* A strategy that cannot plan this cell (search budget,
                 missing configuration) is skipped, not failed — the
                 invariant polices promises, not applicability. *)
              match S.plan inst with
              | exception _ -> ()
              | layout ->
                  if
                    List.mem Placement.Strategy.Load_balanced S.capabilities
                    && not
                         (Placement.Layout.is_load_balanced layout
                            ~cap:(Placement.Params.load_cap p))
                  then
                    fail name
                      "planned layout breaks the ⌈r·b/n⌉ = %d load cap at \
                       b = %d"
                      (Placement.Params.load_cap p)
                      b;
                  (match S.lower_bound ~layout inst with
                  | None -> ()
                  | Some lb ->
                      let atk =
                        Placement.Adversary.greedy layout ~s:params.s
                          ~k:params.k
                      in
                      let avail =
                        Placement.Adversary.avail layout ~s:params.s atk
                      in
                      if avail < lb then
                        fail name
                          "greedy %d-attack leaves %d of %d objects, below \
                           the strategy's own guarantee %d"
                          params.k avail b lb)));
  }

(* ------------------------------------------------------------------ *)
(* Canaries: deliberately broken, for shrinker drills. *)

let canaries =
  [
    (let name = "canary/full-availability" in
     {
       name;
       describe =
         "deliberately broken: asserts no live object is ever unavailable \
          (any create + s failures refutes it) — shrinker drill fuel";
       cadence = Step;
       check =
         (fun ctx ->
           let eng = ctx.engine in
           let live = Churn.live eng and avail = Churn.available eng in
           if avail < live then
             fail name "available %d < live %d (as designed)" avail live);
     });
  ]

let find_canary name = List.find_opt (fun c -> c.name = name) canaries
let canary_names = List.map (fun c -> c.name) canaries
