module Event = Dsim.Event

type weights = {
  create : int;
  delete : int;
  fail : int;
  recover : int;
  join : int;
  leave : int;
  domain_fail : int;
}

type phase = { label : string; percent : int; weights : weights }

type t = {
  name : string;
  describe : string;
  racks : int option;
  phases : phase list;
}

let w ?(create = 0) ?(delete = 0) ?(fail = 0) ?(recover = 0) ?(join = 0)
    ?(leave = 0) ?(domain_fail = 0) () =
  { create; delete; fail; recover; join; leave; domain_fail }

let steady_mix = w ~create:55 ~delete:15 ~fail:10 ~recover:15 ()

let steady =
  {
    name = "steady";
    describe = "stationary create-biased churn with background failures";
    racks = None;
    phases = [ { label = "steady"; percent = 100; weights = steady_mix } ];
  }

let storm =
  {
    name = "storm";
    describe = "calm churn, then a failure storm, then a repair race";
    racks = None;
    phases =
      [
        { label = "calm"; percent = 35; weights = steady_mix };
        {
          label = "storm";
          percent = 25;
          weights = w ~create:10 ~delete:5 ~fail:60 ~recover:5 ();
        };
        {
          label = "repair";
          percent = 20;
          weights = w ~create:15 ~delete:5 ~fail:5 ~recover:70 ();
        };
        { label = "calm"; percent = 20; weights = steady_mix };
      ];
  }

let membership =
  {
    name = "membership";
    describe = "mass permanent leave, then mass re-join, racing repairs";
    racks = None;
    phases =
      [
        { label = "steady"; percent = 30; weights = steady_mix };
        {
          label = "exodus";
          percent = 25;
          weights = w ~create:30 ~delete:10 ~fail:5 ~recover:10 ~leave:40 ();
        };
        {
          label = "return";
          percent = 25;
          weights = w ~create:25 ~delete:5 ~fail:5 ~recover:10 ~join:50 ();
        };
        { label = "steady"; percent = 20; weights = steady_mix };
      ];
  }

let cascade =
  {
    name = "cascade";
    describe = "cascading rack-level domain loss on a partition tree";
    racks = Some 4;
    phases =
      [
        { label = "steady"; percent = 30; weights = steady_mix };
        {
          label = "cascade";
          percent = 30;
          weights =
            w ~create:20 ~delete:5 ~fail:5 ~recover:15 ~domain_fail:20 ();
        };
        {
          label = "repair";
          percent = 20;
          weights = w ~create:20 ~delete:5 ~recover:70 ();
        };
        { label = "steady"; percent = 20; weights = steady_mix };
      ];
  }

let all = [ steady; storm; membership; cascade ]
let names = List.map (fun p -> p.name) all
let find name = List.find_opt (fun p -> p.name = name) all

let topology p ~n =
  match p.racks with
  | None -> None
  | Some racks ->
      Some (Topology.Build.partition ~n ~domains:(min racks n) ())

(* One weighted draw per step, mirroring Event.seeded's shadow-state
   discipline: the generator maintains its own view of the live object
   ids, the up/down set and the in-service set, so every event is valid
   by construction.  Categories are walked in a fixed order and an
   infeasible pick degrades to a create, so the rng consumption — and
   hence the history — is a pure function of the arguments. *)
let generate p ~n ~seed ~steps ~measure_every =
  if n < 1 then invalid_arg "Profile.generate: need at least one node";
  if steps < 0 then invalid_arg "Profile.generate: negative step count";
  let rng = Combin.Rng.create seed in
  let topo = topology p ~n in
  let racks =
    match topo with
    | None -> 0
    | Some t -> Topology.Tree.domain_count t ~level:1
  in
  let live = ref (Array.make 16 0) in
  let nlive = ref 0 in
  let next_id = ref 0 in
  let up = Array.make n true in
  let ndown = ref 0 in
  let inserv = Array.make n true in
  let ninserv = ref n in
  let floor_inserv = n - max 1 (n / 4) in
  let out = ref [] in
  let emit ev = out := ev :: !out in
  let create () =
    if !nlive = Array.length !live then begin
      let grown = Array.make (2 * !nlive) 0 in
      Array.blit !live 0 grown 0 !nlive;
      live := grown
    end;
    !live.(!nlive) <- !next_id;
    incr nlive;
    incr next_id;
    emit Event.Object_create
  in
  let delete () =
    let slot = Combin.Rng.int rng !nlive in
    emit (Event.Object_delete !live.(slot));
    decr nlive;
    !live.(slot) <- !live.(!nlive)
  in
  let fail () =
    (* Rejection-sample an up in-service node (one exists: the caller
       checked ndown < ninserv, and down nodes are always in service). *)
    let nd = ref (Combin.Rng.int rng n) in
    while not (up.(!nd) && inserv.(!nd)) do
      nd := Combin.Rng.int rng n
    done;
    up.(!nd) <- false;
    incr ndown;
    emit (Event.Node_fail !nd)
  in
  let recover () =
    (* Recover the [pick]-th currently-down node (ascending scan). *)
    let pick = ref (Combin.Rng.int rng !ndown) in
    let nd = ref 0 in
    while up.(!nd) || !pick > 0 do
      if not up.(!nd) then decr pick;
      incr nd
    done;
    up.(!nd) <- true;
    decr ndown;
    emit (Event.Node_recover !nd)
  in
  let leave () =
    (* Permanent leave of an in-service node (up or down). *)
    let nd = ref (Combin.Rng.int rng n) in
    while not inserv.(!nd) do
      nd := Combin.Rng.int rng n
    done;
    if not up.(!nd) then begin
      up.(!nd) <- true;
      decr ndown
    end;
    inserv.(!nd) <- false;
    decr ninserv;
    emit (Event.Node_leave !nd)
  in
  let join () =
    (* Re-join the [pick]-th left node (ascending scan). *)
    let pick = ref (Combin.Rng.int rng (n - !ninserv)) in
    let nd = ref 0 in
    while inserv.(!nd) || !pick > 0 do
      if not inserv.(!nd) then decr pick;
      incr nd
    done;
    inserv.(!nd) <- true;
    incr ninserv;
    emit (Event.Node_join !nd)
  in
  let domain_fail topo =
    let d = Combin.Rng.int rng racks in
    Array.iter
      (fun m ->
        if inserv.(m) && up.(m) then begin
          up.(m) <- false;
          incr ndown
        end)
      (Topology.Tree.members topo ~level:1 d);
    emit (Event.Domain_fail (1, d))
  in
  let budgets =
    (* Integer shares of the step budget; the last phase absorbs the
       rounding remainder so the total is exactly [steps]. *)
    let nphases = List.length p.phases in
    let spent = ref 0 in
    List.mapi
      (fun i ph ->
        let share =
          if i = nphases - 1 then steps - !spent
          else steps * ph.percent / 100
        in
        spent := !spent + share;
        (ph, max 0 share))
      p.phases
  in
  let i = ref 0 in
  List.iter
    (fun (ph, budget) ->
      let wt = ph.weights in
      let dom_weight = if racks > 0 then wt.domain_fail else 0 in
      let total =
        max 1
          (wt.create + wt.delete + wt.fail + wt.recover + wt.join + wt.leave
         + dom_weight)
      in
      for _ = 1 to budget do
        let d = Combin.Rng.int rng total in
        (* Fixed category order; infeasible picks degrade to create. *)
        let c0 = wt.create in
        let c1 = c0 + wt.delete in
        let c2 = c1 + wt.fail in
        let c3 = c2 + wt.recover in
        let c4 = c3 + wt.join in
        let c5 = c4 + wt.leave in
        if d < c0 then create ()
        else if d < c1 then if !nlive > 0 then delete () else create ()
        else if d < c2 then
          if !ndown < !ninserv then fail () else create ()
        else if d < c3 then if !ndown > 0 then recover () else create ()
        else if d < c4 then if !ninserv < n then join () else create ()
        else if d < c5 then
          if !ninserv > floor_inserv then leave () else create ()
        else (
          match topo with Some t -> domain_fail t | None -> create ());
        incr i;
        if measure_every > 0 && !i mod measure_every = 0 then
          emit (Event.Measure (Printf.sprintf "%s.t%d" ph.label !i))
      done;
      if measure_every > 0 && budget > 0 then
        emit (Event.Measure (ph.label ^ ".end")))
    budgets;
  List.rev !out
