(** The dst run loop (DESIGN.md §14): generate (or accept) a history,
    drive it through a fresh {!Dsim.Churn} engine via the {!Dsim.Api}
    surface with fault injection armed, and run the {!Invariant}
    registry after every applied event.

    A run is a pure function of its {!config} (plus the explicit
    history, if any): no clock, no global rng, injection armed
    per-domain — so a {!sweep} fanned out through {!Engine.Pool} is
    bit-identical at any [-j], and a violating run can be re-executed
    verbatim by the shrinker. *)

type config = {
  n : int;
  r : int;
  s : int;
  k : int;
  seed : int;  (** drives generation and the injection plan *)
  steps : int;  (** weighted draws requested from the profile *)
  measure_every : int;  (** pulse cadence; 0 disables [Pulse] checks *)
  profile : Profile.t;
  strategy : (module Placement.Strategy.S) option;
      (** adds the auto-discovered [strategy/<name>] invariant *)
  inject_rate : int;
      (** every registered fault point fires with probability 1/rate;
          0 disarms injection for the run *)
  break_invariants : string list;
      (** canary names to enable ({!Invariant.find_canary}) — shrinker
          drills.  @raise Invalid_argument from {!run} on unknown names *)
  extra_invariants : Invariant.t list;  (** test hooks *)
}

type violation = {
  invariant : string;
  message : string;
  step_index : int;  (** 0-based index into the history *)
  event_line : string;  (** the event whose post-check tripped *)
}

type outcome = {
  seed : int;
  profile : string;
  strategy : string option;  (** echoes of the config, for the envelope *)
  events : int;  (** history length *)
  applied : int;
  rejected : int;  (** engine refusals + injected parse failures *)
  injected_checks : int;
  injected_fired : int;
  min_worst_available : int;
      (** the lowest greedy worst-case availability seen across the run
          (-1 when no event applied) *)
  final_live : int;
  final_available : int;
  final_lower_bound : int;
  violation : violation option;  (** the first violation, if any *)
}

val default_history : config -> Dsim.Event.t list
(** The history {!run} executes when none is passed:
    {!Profile.generate} at the config's seed/steps/cadence. *)

val run : ?history:Dsim.Event.t list -> config -> outcome
(** Execute one simulation.  Stops at the first invariant violation
    (state after the violating event is reported in the outcome).
    Injected faults and engine refusals are counted, never fatal. *)

val sweep : ?pool:Engine.Pool.t -> config array -> outcome array
(** {!run} over every config; with a pool the runs fan out via
    {!Engine.Pool.parallel_map} (outcome order follows config order, so
    the result is bit-identical at any pool size). *)
