(** Phase-structured scenario generation for the dst harness
    (DESIGN.md §14).

    A profile is a named sequence of phases — each a percentage of the
    step budget with its own event-category weights — so one seeded
    draw produces structured histories (steady churn, a failure storm
    followed by repair, a mass exodus and return, cascading rack loss)
    instead of a single stationary mix.  Generation follows
    {!Dsim.Event.seeded}'s shadow-state discipline: the generator
    tracks live object ids, the up/down set and the in-service set, so
    every emitted event is valid by construction; an infeasible draw
    (delete with nothing live, recover with nothing down, ...) falls
    back to a create.

    [generate] is a pure function of (profile, n, seed, steps,
    measure_every): same arguments, same history — on any machine, at
    any [-j]. *)

type weights = {
  create : int;
  delete : int;
  fail : int;
  recover : int;
  join : int;
  leave : int;
  domain_fail : int;  (** ignored unless the profile carries racks *)
}

type phase = {
  label : string;  (** echoed in the phase's [Measure] pulse labels *)
  percent : int;  (** share of the step budget, out of 100 *)
  weights : weights;
}

type t = {
  name : string;  (** registry key, lowercase *)
  describe : string;  (** one-line human description *)
  racks : int option;
      (** when set, the scenario runs on a {!Topology.Build.partition}
          tree with this many racks and may draw [Domain_fail] events *)
  phases : phase list;  (** percents sum to 100 *)
}

val all : t list
(** The built-in profiles: steady, storm, membership, cascade. *)

val names : string list
val find : string -> t option

val topology : t -> n:int -> Topology.Tree.t option
(** The fault-domain tree the profile's scenarios run on: a rack
    partition when the profile carries racks, [None] (engine default,
    flat) otherwise. *)

val generate :
  t -> n:int -> seed:int -> steps:int -> measure_every:int -> Dsim.Event.t list
(** A seeded history of [steps] weighted draws over [n] nodes.  When
    [measure_every > 0], a [Measure "<label>.t<i>"] pulse follows every
    [measure_every]-th event and a [Measure "<label>.end"] pulse closes
    each phase — the cadence at which the harness runs its expensive
    invariants.  @raise Invalid_argument on [n < 1] or [steps < 0]. *)
