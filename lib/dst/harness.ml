module Event = Dsim.Event
module Churn = Dsim.Churn
module Api = Dsim.Api

let m_runs = Telemetry.Registry.counter "dst/runs"
let m_steps = Telemetry.Registry.counter "dst/steps"
let m_rejected = Telemetry.Registry.counter "dst/rejected"
let m_violations = Telemetry.Registry.counter "dst/violations"
let m_inv_checks = Telemetry.Registry.counter "dst/invariant/checks"
let sp_run = Telemetry.Registry.span "dst/run"

type config = {
  n : int;
  r : int;
  s : int;
  k : int;
  seed : int;
  steps : int;
  measure_every : int;
  profile : Profile.t;
  strategy : (module Placement.Strategy.S) option;
  inject_rate : int;
  break_invariants : string list;
  extra_invariants : Invariant.t list;
}

type violation = {
  invariant : string;
  message : string;
  step_index : int;
  event_line : string;
}

type outcome = {
  seed : int;
  profile : string;
  strategy : string option;
  events : int;
  applied : int;
  rejected : int;
  injected_checks : int;
  injected_fired : int;
  min_worst_available : int;
  final_live : int;
  final_available : int;
  final_lower_bound : int;
  violation : violation option;
}

let invariants (cfg : config) =
  Invariant.builtins
  @ (match cfg.strategy with
    | None -> []
    | Some m -> [ Invariant.of_strategy m ])
  @ List.map
      (fun nm ->
        match Invariant.find_canary nm with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Harness: unknown canary invariant %S (available: %s)" nm
                 (String.concat ", " Invariant.canary_names)))
      cfg.break_invariants
  @ cfg.extra_invariants

let default_history (cfg : config) =
  Profile.generate cfg.profile ~n:cfg.n ~seed:cfg.seed ~steps:cfg.steps
    ~measure_every:cfg.measure_every

exception Stop of violation

let run ?history (cfg : config) =
  Telemetry.Span.time sp_run @@ fun () ->
  Telemetry.Counter.incr m_runs;
  let history =
    match history with Some h -> h | None -> default_history cfg
  in
  let invs = invariants cfg in
  let body () =
    let eng =
      Churn.create
        ?topology:(Profile.topology cfg.profile ~n:cfg.n)
        ~n:cfg.n ~r:cfg.r ~s:cfg.s ~k:cfg.k ()
    in
    let session = Api.make eng in
    let applied = ref [] in
    let napplied = ref 0 and nrejected = ref 0 in
    let min_worst = ref max_int in
    let violation = ref None in
    (try
       List.iteri
         (fun idx ev ->
           let line = Event.to_line ev in
           match Api.parse_request line with
           | Ok None -> ()
           | Error msg ->
               (* An injected partial line that no longer parses: the
                  session must absorb it as an inline rejection. *)
               ignore (Api.parse_error session (idx + 1) msg);
               incr nrejected;
               Telemetry.Counter.incr m_rejected
           | Ok (Some req) -> (
               (* The movement budget a leave may spend, read before the
                  event mutates the engine. *)
               let pre_load =
                 match req with
                 | Api.Apply (Event.Node_leave nd)
                   when nd >= 0 && nd < cfg.n ->
                     Churn.node_load eng nd
                 | _ -> 0
               in
               match Api.exec session req with
               | Api.Applied step ->
                   incr napplied;
                   Telemetry.Counter.incr m_steps;
                   applied := step.Churn.event :: !applied;
                   let ctx =
                     {
                       Invariant.engine = eng;
                       step = Some step;
                       pre_load;
                       applied = !applied;
                       rescore = lazy (Churn.rescore eng);
                     }
                   in
                   let worst =
                     (Lazy.force ctx.Invariant.rescore).Churn.worst_available
                   in
                   if worst < !min_worst then min_worst := worst;
                   let pulse =
                     match step.Churn.event with
                     | Event.Measure _ -> true
                     | _ -> false
                   in
                   (try
                      List.iter
                        (fun (inv : Invariant.t) ->
                          if inv.Invariant.cadence = Invariant.Step || pulse
                          then begin
                            Telemetry.Counter.incr m_inv_checks;
                            inv.Invariant.check ctx
                          end)
                        invs
                    with Invariant.Violation (name, message) ->
                      raise
                        (Stop
                           {
                             invariant = name;
                             message;
                             step_index = idx;
                             event_line = line;
                           }))
               | Api.Rejected _ ->
                   incr nrejected;
                   Telemetry.Counter.incr m_rejected
               | _ -> ()))
         history
     with Stop v ->
       Telemetry.Counter.incr m_violations;
       violation := Some v);
    {
      seed = cfg.seed;
      profile = cfg.profile.Profile.name;
      strategy =
        Option.map
          (fun (module S : Placement.Strategy.S) -> S.name)
          cfg.strategy;
      events = List.length history;
      applied = !napplied;
      rejected = !nrejected;
      injected_checks = Dsim.Inject.checks ();
      injected_fired = Dsim.Inject.fired ();
      min_worst_available = (if !min_worst = max_int then -1 else !min_worst);
      final_live = Churn.live eng;
      final_available = Churn.available eng;
      final_lower_bound = Churn.lower_bound eng;
      violation = !violation;
    }
  in
  if cfg.inject_rate > 0 then
    Dsim.Inject.with_arming ~seed:cfg.seed ~rate:cfg.inject_rate body
  else Dsim.Inject.without body

let sweep ?pool configs =
  match pool with
  | None -> Array.map (fun cfg -> run cfg) configs
  | Some p -> Engine.Pool.parallel_map p (fun cfg -> run cfg) configs
