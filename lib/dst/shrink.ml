module Event = Dsim.Event

let m_candidates = Telemetry.Registry.counter "dst/shrink/candidates"

type result = {
  history : Event.t list;
  violation : Harness.violation;
  candidates : int;
}

let run ~config ~history ~invariant =
  let candidates = ref 0 in
  let try_ hist =
    incr candidates;
    Telemetry.Counter.incr m_candidates;
    match (Harness.run ~history:hist config).Harness.violation with
    | Some v when v.Harness.invariant = invariant -> Some v
    | _ -> None
  in
  match try_ history with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Shrink.run: the full history does not violate %S" invariant)
  | Some v0 ->
      (* ddmin: try dropping each of g near-even chunks; on success
         restart on the shorter history with coarser granularity, on
         failure refine g up to single events.  g >= len with no
         successful deletion means 1-minimality. *)
      let rec go arr v g =
        let len = Array.length arr in
        if len <= 1 then (arr, v)
        else
          let rec attempt i =
            if i >= g then None
            else
              let lo = i * len / g and hi = (i + 1) * len / g in
              if hi <= lo then attempt (i + 1)
              else
                let comp =
                  Array.append (Array.sub arr 0 lo)
                    (Array.sub arr hi (len - hi))
                in
                match try_ (Array.to_list comp) with
                | Some v' -> Some (comp, v')
                | None -> attempt (i + 1)
          in
          match attempt 0 with
          | Some (comp, v') -> go comp v' (max 2 (g - 1))
          | None -> if g >= len then (arr, v) else go arr v (min len (2 * g))
      in
      let arr, v = go (Array.of_list history) v0 2 in
      {
        history = Array.to_list arr;
        violation = v;
        candidates = !candidates;
      }

let repro_lines ~(config : Harness.config) result =
  let v = result.violation in
  let strategy =
    match config.Harness.strategy with
    | None -> "none"
    | Some (module S : Placement.Strategy.S) -> S.name
  in
  let break_arg =
    match config.Harness.break_invariants with
    | [] -> ""
    | names -> Printf.sprintf " --break %s" (String.concat "," names)
  in
  [
    Printf.sprintf "# dst repro: invariant %s violated" v.Harness.invariant;
    Printf.sprintf "# %s" v.Harness.message;
    Printf.sprintf
      "# config: n=%d r=%d s=%d k=%d seed=%d profile=%s strategy=%s \
       inject=%d"
      config.Harness.n config.Harness.r config.Harness.s config.Harness.k
      config.Harness.seed config.Harness.profile.Profile.name strategy
      config.Harness.inject_rate;
    Printf.sprintf
      "# replay: placement-tool dst --events FILE -n %d -r %d -s %d -k %d \
       --seed %d --profile %s --strategy %s --inject %d%s"
      config.Harness.n config.Harness.r config.Harness.s config.Harness.k
      config.Harness.seed config.Harness.profile.Profile.name strategy
      config.Harness.inject_rate break_arg;
  ]
  @ List.map Event.to_line result.history

let write_repro ~path ~config result =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (repro_lines ~config result))
