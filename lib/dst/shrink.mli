(** History minimization (DESIGN.md §14): given a config and a history
    that violates an invariant, find a small sub-history that still
    violates the {e same} invariant, by ddmin-style phase bisection
    (remove one of g near-even chunks, escalating granularity) down to
    single-event deletion.

    Every candidate is re-validated by a full {!Harness.run} under the
    original config — injection plan included — and the search keeps a
    candidate only if it reproduces a violation of the same invariant
    name (messages may differ: hit indices shift as events vanish).
    The result is 1-minimal: removing any single remaining event loses
    the violation.  The search is deterministic — no rng, no clock —
    so the same (config, history) always shrinks to the same repro. *)

type result = {
  history : Dsim.Event.t list;  (** the minimized violating history *)
  violation : Harness.violation;
      (** the violation the minimized history reproduces *)
  candidates : int;  (** harness runs evaluated, including the seed run *)
}

val run :
  config:Harness.config ->
  history:Dsim.Event.t list ->
  invariant:string ->
  result
(** Minimize [history] while it still violates [invariant] under
    [config].  @raise Invalid_argument if the full history does not
    reproduce a violation of that invariant in the first place. *)

val repro_lines : config:Harness.config -> result -> string list
(** The replayable repro file: [#]-comment header (invariant, message,
    config echo, a ready-to-run [placement-tool dst --events] command)
    followed by one event per line — parseable by
    {!Dsim.Event.parse_string}, comments skipped. *)

val write_repro : path:string -> config:Harness.config -> result -> unit
(** {!repro_lines} written to [path], newline-terminated. *)
