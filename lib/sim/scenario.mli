(** Failure scenarios: who fails, and how it is decided.

    The paper's adversary is {!Adversarial}; the others exist for the
    example applications and ablation studies (random failures are the
    model of the prior work the paper contrasts with, rack and domain
    failures the correlated-failure patterns of data centers). *)

type t =
  | Adversarial of int  (** worst-case choice of k nodes (Definition 1) *)
  | Random_nodes of int  (** k nodes, uniformly at random *)
  | Random_racks of int  (** j racks, uniformly at random *)
  | Domain_failure of int * int
      (** [Domain_failure (level, j)]: worst-case choice of [j] domains
          at [level] of the cluster's topology
          ({!Topology.Adversary}) *)
  | Explicit of int array  (** a fixed node set *)

val describe : t -> string

val events : rng:Combin.Rng.t -> Cluster.t -> t -> Event.t list * int array
(** Lower the scenario onto the unified {!Event} stream against the
    cluster's current state: recoveries for whatever is down now, then
    the selected failures.  Returns the stream and the selected nodes
    (sorted); applying the stream via {!Cluster.apply_event} is
    byte-identical to {!apply} (selection reads only the layout,
    topology and rng — never the up/down state). *)

val apply : rng:Combin.Rng.t -> Cluster.t -> t -> int array
(** Apply the scenario to a (fully recovered) cluster: fails the selected
    nodes and returns them (sorted).  The adversarial scenarios use
    {!Placement.Adversary.best} / {!Topology.Adversary.attack} against
    the cluster's layout and fatality threshold; rack scenarios draw
    their domains from the cluster's topology. *)

val run : rng:Combin.Rng.t -> Cluster.t -> t -> int
(** [apply] then report {!Cluster.available_objects}; the cluster is
    recovered before and left failed after (read results, then
    {!Cluster.recover_all}). *)
