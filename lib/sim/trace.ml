type event =
  | Fail of int
  | Recover of int
  | Fail_rack of int
  | Recover_all
  | Measure of string

type snapshot = {
  label : string;
  failed_nodes : int;
  available : int;
  unavailable : int;
  acting_domain : int option;
}

(* Compatibility shim: the historical vocabulary lowers onto the
   unified Event stream.  Fail_rack resolves the caller's rack id to
   its rack-level fault domain (an unknown rack stays the historical
   no-op); Recover_all expands to the currently-failed nodes, so the
   lowering is computed against the cluster state at application time.
   Every branch reproduces the pre-event-sourcing operations node for
   node — replay outputs are byte-identical. *)
let lower cluster = function
  | Fail nd -> [ Event.Node_fail nd ]
  | Recover nd -> [ Event.Node_recover nd ]
  | Fail_rack rk -> (
      match Cluster.rack_domain cluster rk with
      | None -> []
      | Some d -> [ Event.Domain_fail (Cluster.rack_level cluster, d) ])
  | Recover_all ->
      Array.to_list (Cluster.failed_nodes cluster)
      |> List.map (fun nd -> Event.Node_recover nd)
  | Measure label -> [ Event.Measure label ]

let replay ?(restore = false) cluster events =
  let snaps = ref [] in
  let acting = ref None in
  List.iter
    (fun ev ->
      (match ev with
      | Fail_rack rk -> (
          match Cluster.rack_domain cluster rk with
          | Some d -> acting := Some d
          | None -> ())
      | _ -> ());
      List.iter
        (fun uev ->
          match uev with
          | Event.Measure label ->
              let available = Cluster.available_objects cluster in
              snaps :=
                {
                  label;
                  failed_nodes = Array.length (Cluster.failed_nodes cluster);
                  available;
                  unavailable = Cluster.b cluster - available;
                  acting_domain = !acting;
                }
                :: !snaps
          | uev -> Cluster.apply_event cluster uev)
        (lower cluster ev))
    events;
  if restore then Cluster.recover_all cluster;
  List.rev !snaps

let pp_snapshot fmt s =
  Format.fprintf fmt "[%s] failed_nodes=%d available=%d unavailable=%d"
    s.label s.failed_nodes s.available s.unavailable;
  match s.acting_domain with
  | None -> ()
  | Some d -> Format.fprintf fmt " domain=%d" d
