type event =
  | Fail of int
  | Recover of int
  | Fail_rack of int
  | Recover_all
  | Measure of string

type snapshot = {
  label : string;
  failed_nodes : int;
  available : int;
  unavailable : int;
}

let replay ?(restore = false) cluster events =
  let snaps = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Fail nd -> Cluster.fail_node cluster nd
      | Recover nd -> Cluster.recover_node cluster nd
      | Fail_rack rk -> Cluster.fail_rack cluster rk
      | Recover_all -> Cluster.recover_all cluster
      | Measure label ->
          let available = Cluster.available_objects cluster in
          snaps :=
            {
              label;
              failed_nodes = Array.length (Cluster.failed_nodes cluster);
              available;
              unavailable = Cluster.b cluster - available;
            }
            :: !snaps)
    events;
  if restore then Cluster.recover_all cluster;
  List.rev !snaps

let pp_snapshot fmt s =
  Format.fprintf fmt "[%s] failed_nodes=%d available=%d unavailable=%d"
    s.label s.failed_nodes s.available s.unavailable
