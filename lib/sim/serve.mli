(** The long-running daemon shell over {!Api} (DESIGN.md §13).

    {!run} speaks the serve protocol over a pair of file descriptors:
    newline-delimited {!Api} requests in, one single-line
    [placement/v1] envelope out per request, a [snapshot] envelope
    every [snapshot_every] applied events, and a final [summary]
    envelope naming why the session ended.  The responses for a given
    request stream are byte-identical however the bytes arrive (pipe,
    socket, file), which is how `placement-tool serve` and batch
    `churn --responses` are diffable — and deterministic at any [-j]:
    timing only decides {e when} the session ends, never what a
    response contains.

    Robustness: parse errors are answered inline (with their 1-based
    line number) and never kill the session; an idle [timeout] ends it
    gracefully; a delivered SIGTERM/SIGINT (see {!install_signals})
    stops reading, flushes, and still emits the summary; [max_events]
    caps how many events the session will apply. *)

type reason =
  | Eof  (** the peer closed the stream (or vanished mid-write) *)
  | Signal  (** SIGTERM/SIGINT delivered — graceful drain *)
  | Timeout  (** nothing arrived for [timeout] seconds *)
  | Max_events  (** the [max_events] guard rail tripped *)

val reason_label : reason -> string
(** The summary-envelope spelling: [eof], [signal], [timeout],
    [max-events]. *)

type outcome = {
  reason : reason;
  requests : int;  (** requests processed (parse errors included) *)
  responses : int;  (** lines written, snapshots and summary included *)
  parse_errors : int;
  rejected : int;
}

val install_signals : unit -> unit
(** Route SIGTERM/SIGINT to the serve stop flag (idempotent; also
    ignores SIGPIPE so a vanished peer reads as EPIPE).  Call once in
    the daemon entry point, {e not} from library code — tests drive
    {!run} without it. *)

val stop_requested : unit -> bool
(** Whether a routed signal has been delivered. *)

val run :
  ?max_events:int ->
  ?snapshot_every:int ->
  ?timeout:float ->
  Api.session ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  outcome
(** Serve one session over [input]/[output] until EOF, signal, idle
    timeout ([timeout] ≤ 0 means wait forever, the default), or the
    [max_events] cap.  A trailing unterminated line is still processed
    at EOF.  The session object survives the call — a socket daemon
    can serve successive connections against the same engine. *)
