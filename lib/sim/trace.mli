(** Replayable failure timelines.

    A thin event-sequencing layer over {!Cluster} for the example
    applications: script a sequence of failures/recoveries with
    measurement points and get back the availability at each point.

    The historical vocabulary below is now a compatibility shim over
    the unified {!Event} stream: {!replay} lowers each event onto
    {!Event.t} values and drives the cluster through
    {!Cluster.apply_event}, byte-identically to the pre-event-sourcing
    behavior (DESIGN.md §12). *)

type event =
  | Fail of int
  | Recover of int
  | Fail_rack of int
  | Recover_all
  | Measure of string  (** record a labelled snapshot *)

type snapshot = {
  label : string;
  failed_nodes : int;
  available : int;
  unavailable : int;
  acting_domain : int option;
      (** the rack-level fault domain of the most recent [Fail_rack]
          preceding this snapshot (resolved via
          {!Cluster.rack_domain}), if any — making topology traces
          attributable.  [None] on purely node-level timelines, so
          existing traces render unchanged. *)
}

val replay : ?restore:bool -> Cluster.t -> event list -> snapshot list
(** Apply events in order; each [Measure] appends a snapshot.  The
    cluster is left in its final state — unless [restore] (default
    false) is set, which recovers every node afterwards so the cluster
    can be reused without a manual {!Cluster.recover_all}. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** The historical one-line rendering, with [ domain=<d>] appended only
    when [acting_domain] is set. *)
