(** Replayable failure timelines.

    A thin event-sequencing layer over {!Cluster} for the example
    applications: script a sequence of failures/recoveries with
    measurement points and get back the availability at each point. *)

type event =
  | Fail of int
  | Recover of int
  | Fail_rack of int
  | Recover_all
  | Measure of string  (** record a labelled snapshot *)

type snapshot = {
  label : string;
  failed_nodes : int;
  available : int;
  unavailable : int;
}

val replay : ?restore:bool -> Cluster.t -> event list -> snapshot list
(** Apply events in order; each [Measure] appends a snapshot.  The
    cluster is left in its final state — unless [restore] (default
    false) is set, which recovers every node afterwards so the cluster
    can be reused without a manual {!Cluster.recover_all}. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
