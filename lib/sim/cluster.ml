type t = {
  layout : Placement.Layout.t;
  semantics : Semantics.t;
  s : int;
  topology : Topology.Tree.t;
  rack_level : int;
  rack_label : int array;  (* rack-level domain id -> caller's rack id *)
  kernel : Placement.Kernel.t;
      (* per-object hit counters + dead tally, O(load) per node event *)
  up : bool array;
}

let create ?racks ?topology layout semantics =
  let n = layout.Placement.Layout.n in
  let topology, rack_label =
    match (racks, topology) with
    | Some _, Some _ ->
        invalid_arg "Cluster.create: pass either ~racks or ~topology, not both"
    | None, Some topo ->
        if Topology.Tree.n topo <> n then
          invalid_arg
            (Printf.sprintf
               "Cluster.create: topology has %d nodes but the layout has %d"
               (Topology.Tree.n topo) n);
        let level = min 1 (Topology.Tree.depth topo - 1) in
        (topo, Array.init (Topology.Tree.domain_count topo ~level) Fun.id)
    | Some r, None ->
        if Array.length r <> n then invalid_arg "Cluster.create: racks length";
        (* The caller's (arbitrary) rack ids become the rack-level
           domains of a flat one-level tree; Tree.make normalizes ids in
           ascending order, so label domain d with the d-th distinct
           id — rack_of/rack_ids/rack_nodes then answer in the caller's
           vocabulary, byte-identical to the pre-topology rack model. *)
        (Topology.Build.of_racks r, Combin.Intset.of_array r)
    | None, None ->
        (Topology.Build.flat n, Array.init n Fun.id)
  in
  let rack_level = min 1 (Topology.Tree.depth topology - 1) in
  let s = Semantics.fatality_threshold semantics ~r:layout.Placement.Layout.r in
  {
    layout;
    semantics;
    s;
    topology;
    rack_level;
    rack_label;
    kernel = Placement.Kernel.make layout ~s;
    up = Array.make n true;
  }

let layout t = t.layout
let semantics t = t.semantics
let fatality_threshold t = t.s
let n t = t.layout.Placement.Layout.n
let b t = Placement.Layout.b t.layout
let topology t = t.topology
let rack_level t = t.rack_level
let node_up t nd = t.up.(nd)

let failed_nodes t =
  let out = ref [] in
  for nd = n t - 1 downto 0 do
    if not t.up.(nd) then out := nd :: !out
  done;
  Array.of_list !out

let fail_node t nd =
  if t.up.(nd) then begin
    t.up.(nd) <- false;
    Placement.Kernel.add t.kernel nd
  end

let recover_node t nd =
  if not t.up.(nd) then begin
    t.up.(nd) <- true;
    Placement.Kernel.remove t.kernel nd
  end

(* Rack-level domain holding the caller's rack id, if any (binary search
   in the sorted label array). *)
let rack_domain t rack =
  let lo = ref 0 and hi = ref (Array.length t.rack_label - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let id = t.rack_label.(mid) in
    if id = rack then found := Some mid
    else if id < rack then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let rack_nodes t rack =
  match rack_domain t rack with
  | None -> [||]
  | Some d -> Array.copy (Topology.Tree.members t.topology ~level:t.rack_level d)

let fail_rack t rack = Array.iter (fail_node t) (rack_nodes t rack)

let rack_of t nd =
  t.rack_label.(Topology.Tree.domain_of t.topology ~level:t.rack_level nd)

let rack_ids t = Array.copy t.rack_label

let recover_all t =
  for nd = 0 to n t - 1 do
    recover_node t nd
  done

let fail_domain t ~level d =
  Array.iter (fail_node t) (Topology.Tree.members t.topology ~level d)

(* The unified event vocabulary (see Event): a cluster consumes the
   infrastructure events; object churn needs the adaptive engine
   (Churn) because this layout is fixed at creation. *)
let apply_event t ev =
  match ev with
  | Event.Node_fail nd -> fail_node t nd
  | Event.Node_recover nd -> recover_node t nd
  | Event.Domain_fail (level, d) -> fail_domain t ~level d
  | Event.Measure _ -> ()
  | Event.Object_create | Event.Object_delete _ ->
      invalid_arg
        "Cluster.apply_event: object churn needs Dsim.Churn (a cluster's \
         layout is fixed)"
  | Event.Node_join _ | Event.Node_leave _ ->
      invalid_arg
        "Cluster.apply_event: membership churn needs Dsim.Churn (a cluster's \
         node set is fixed)"

let object_available t obj = Placement.Kernel.hits t.kernel obj < t.s

let available_objects t = b t - Placement.Kernel.killed t.kernel

let unavailable_objects t =
  let out = ref [] in
  for obj = b t - 1 downto 0 do
    if not (object_available t obj) then out := obj :: !out
  done;
  !out

let live_replicas t obj =
  t.layout.Placement.Layout.r - Placement.Kernel.hits t.kernel obj
