(** The versioned request/response surface of the continuous placement
    engine (DESIGN.md §13).

    Every consumer of {!Churn} goes through this one vocabulary: the
    batch [churn] replay and the online [serve] daemon both parse
    newline-delimited requests with {!parse_request}, execute them with
    {!exec} against a {!session}, and emit each {!response} as a
    single-line [placement/v1] envelope via {!response_to_line} — which
    is how "serve over a pipe" and "batch replay" stay byte-identical.

    A request is an event to apply, a read-only query, or a stats
    probe.  Engine rejections (out-of-range node, unknown object id,
    join/leave misuse) surface as [Rejected] responses, never
    exceptions: an online session survives bad requests. *)

type query =
  | Worst of int option
      (** worst-case availability under a greedy k-node attack;
          [None] uses the session's configured k *)
  | Avail  (** current availability under the live failure set *)
  | Lower_bound  (** the live Lemma-3 guarantee *)
  | Advise_create
      (** the nodes the next create {e would} be assigned, without
          committing — external systems stage moves before applying *)

type request = Apply of Event.t | Query of query | Stats

type stats = {
  requests : int;  (** requests processed, including rejected ones *)
  events : int;  (** events applied by the engine *)
  parse_errors : int;
  rejected : int;  (** parse errors + engine rejections *)
  creates : int;
  deletes : int;
  node_fails : int;
  node_recovers : int;
  domain_fails : int;
  joins : int;
  leaves : int;
  measures : int;
  moved_replicas : int;
  live : int;
  available : int;
  failed_nodes : int;
  nodes_in_service : int;
  lower_bound : int;
}

type response =
  | Applied of Churn.step
  | Worst_case of {
      k : int;
      attack : int array;
      worst_available : int;
      live : int;
    }
  | Availability of {
      live : int;
      available : int;
      failed_nodes : int;
      nodes_in_service : int;
    }
  | Bound of { lower_bound : int; live : int }
  | Advice of { nodes : int array; live : int }
      (** answer to [advise create]: the sorted replica set the next
          create would land on ({!Churn.advise_create}); guaranteed to
          match the create's actual assignment if applied next *)
  | Stats_report of stats
  | Rejected of { line : int option; message : string }

type session
(** A {!Churn.t} plus request accounting. *)

val make : Churn.t -> session
val engine : session -> Churn.t
val stats : session -> stats

val parse_request : string -> (request option, string) result
(** One line: an event in {!Event.parse_line}'s spelling, or
    [query worst [K]] / [query avail] / [query lower-bound] /
    [advise create] / [stats].  [Ok None] on a blank line or [#]
    comment. *)

val request_to_line : request -> string
(** The canonical one-line spelling (inverse of {!parse_request}). *)

val exec : session -> request -> response
(** Execute one request.  Never raises on engine rejection — the
    refusal comes back as [Rejected] and is counted in {!stats}. *)

val parse_error : session -> int -> string -> response
(** Account an unparsable line (1-based number) and build its inline
    [Rejected] response, so the session continues. *)

val reject_line : session -> int -> string -> response
(** Like {!parse_error} for a well-formed line refused by session
    policy (e.g. an event past the daemon's cap) — counted as rejected
    but not as a parse error. *)

val stats_json : stats -> Telemetry.Json.t

val response_to_json : response -> Telemetry.Json.t
(** The response's [placement/v1] envelope: command [apply], [query],
    [stats] or [error]. *)

val response_to_line : response -> string
(** {!response_to_json} rendered compact (single line, no trailing
    newline) — the wire format of the serve protocol. *)
