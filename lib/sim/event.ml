type t =
  | Node_fail of int
  | Node_recover of int
  | Node_join of int
  | Node_leave of int
  | Domain_fail of int * int
  | Object_create
  | Object_delete of int
  | Measure of string

let describe = function
  | Node_fail nd -> Printf.sprintf "fail node %d" nd
  | Node_recover nd -> Printf.sprintf "recover node %d" nd
  | Node_join nd -> Printf.sprintf "join node %d" nd
  | Node_leave nd -> Printf.sprintf "leave node %d" nd
  | Domain_fail (level, d) -> Printf.sprintf "fail level-%d domain %d" level d
  | Object_create -> "create object"
  | Object_delete id -> Printf.sprintf "delete object %d" id
  | Measure label -> Printf.sprintf "measure %S" label

let to_line = function
  | Node_fail nd -> Printf.sprintf "fail %d" nd
  | Node_recover nd -> Printf.sprintf "recover %d" nd
  | Node_join nd -> Printf.sprintf "join %d" nd
  | Node_leave nd -> Printf.sprintf "leave %d" nd
  | Domain_fail (level, d) -> Printf.sprintf "fail-domain %d %d" level d
  | Object_create -> "create"
  | Object_delete id -> Printf.sprintf "delete %d" id
  | Measure label -> if label = "" then "measure" else "measure " ^ label

let verbs =
  [ "fail"; "recover"; "fail-domain"; "join"; "leave"; "create"; "delete";
    "measure" ]

(* One event per line, [to_line]'s spelling; blank lines and #-comments
   are skipped.  Errors are single actionable sentences — the CLI
   prefixes them with FILE:LINE. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let words =
      String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
    in
    let int_arg ~what v k =
      match int_of_string_opt v with
      | Some i -> k i
      | None -> Error (Printf.sprintf "%s expects an integer, got %S" what v)
    in
    match words with
    | "fail" :: rest -> (
        match rest with
        | [ nd ] ->
            int_arg ~what:"fail" nd (fun nd -> Ok (Some (Node_fail nd)))
        | _ -> Error "fail expects exactly one node id (e.g. \"fail 3\")")
    | "recover" :: rest -> (
        match rest with
        | [ nd ] ->
            int_arg ~what:"recover" nd (fun nd -> Ok (Some (Node_recover nd)))
        | _ -> Error "recover expects exactly one node id (e.g. \"recover 3\")")
    | "join" :: rest -> (
        match rest with
        | [ nd ] ->
            int_arg ~what:"join" nd (fun nd -> Ok (Some (Node_join nd)))
        | _ -> Error "join expects exactly one node id (e.g. \"join 3\")")
    | "leave" :: rest -> (
        match rest with
        | [ nd ] ->
            int_arg ~what:"leave" nd (fun nd -> Ok (Some (Node_leave nd)))
        | _ -> Error "leave expects exactly one node id (e.g. \"leave 3\")")
    | "fail-domain" :: rest -> (
        match rest with
        | [ level; d ] ->
            int_arg ~what:"fail-domain" level (fun level ->
                int_arg ~what:"fail-domain" d (fun d ->
                    Ok (Some (Domain_fail (level, d)))))
        | _ ->
            Error
              "fail-domain expects a level and a domain id (e.g. \
               \"fail-domain 1 0\")")
    | [ "create" ] -> Ok (Some Object_create)
    | "create" :: _ -> Error "create takes no arguments"
    | "delete" :: rest -> (
        match rest with
        | [ id ] ->
            int_arg ~what:"delete" id (fun id -> Ok (Some (Object_delete id)))
        | _ ->
            Error "delete expects exactly one object id (e.g. \"delete 17\")")
    | "measure" :: rest -> Ok (Some (Measure (String.concat " " rest)))
    | cmd :: _ ->
        Error
          (Printf.sprintf
             "unknown event %S (expected fail, recover, fail-domain, join, \
              leave, create, delete or measure)"
             cmd)
    | [] -> assert false

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some ev) -> go (lineno + 1) (ev :: acc) rest
        | Error msg -> Error (lineno, msg))
  in
  go 1 [] lines

let format_error ~file (lineno, msg) =
  Printf.sprintf "%s:%d: %s" file lineno msg

(* ------------------------------------------------------------------ *)
(* Seeded synthetic churn.

   The generator tracks its own shadow of the engine state — the live
   object ids (the engine hands them out sequentially from [initial])
   and the node up/down set — so every emitted event is valid by
   construction: deletes name a live id, fails hit an up node, recovers
   a down one.  Create-biased so the population grows over the trace.
   Join/leave are opt-in via weights (default 0): the draw range grows
   to 100 + join_weight + leave_weight, so with both weights 0 the rng
   consumption — and hence the stream — is byte-identical to the
   original generator.  Left nodes are shadowed as up-but-out-of-service
   so the fail/recover samplers skip them; leaves are throttled so at
   least n - max(1, n/4) nodes stay in service (keeping placement
   capacity for reasonable r).

   Pure function of (rng, n, initial, count, measure_every, weights). *)
let seeded ~rng ~n ?(initial = 0) ?(join_weight = 0) ?(leave_weight = 0) ~count
    ~measure_every () =
  if n < 1 then invalid_arg "Event.seeded: need at least one node";
  if initial < 0 || count < 0 then
    invalid_arg "Event.seeded: negative event count";
  if join_weight < 0 || leave_weight < 0 then
    invalid_arg "Event.seeded: negative join/leave weight";
  let live = ref (Array.init (max 16 initial) Fun.id) in
  let nlive = ref initial in
  let next_id = ref initial in
  let up = Array.make n true in
  let ndown = ref 0 in
  let inserv = Array.make n true in
  let ninserv = ref n in
  let floor_inserv = n - max 1 (n / 4) in
  let out = ref [] in
  let emit ev = out := ev :: !out in
  let create () =
    if !nlive = Array.length !live then begin
      let grown = Array.make (2 * !nlive) 0 in
      Array.blit !live 0 grown 0 !nlive;
      live := grown
    end;
    !live.(!nlive) <- !next_id;
    incr nlive;
    incr next_id;
    emit Object_create
  in
  for i = 1 to count do
    let d = Combin.Rng.int rng (100 + join_weight + leave_weight) in
    if
      d < 55
      || (d < 70 && !nlive = 0)
      || (d >= 85 && d < 100 && !ndown = 0)
      || (d >= 100 && d < 100 + leave_weight && !ninserv <= floor_inserv)
      || (d >= 100 + leave_weight && !ninserv = n)
    then create ()
    else if d < 70 then begin
      let slot = Combin.Rng.int rng !nlive in
      emit (Object_delete !live.(slot));
      decr nlive;
      !live.(slot) <- !live.(!nlive)
    end
    else if d < 85 && !ndown < !ninserv then begin
      (* Rejection-sample an up in-service node: deterministic given the
         rng (left nodes shadow as up, so the extra check is free when
         no node has left). *)
      let nd = ref (Combin.Rng.int rng n) in
      while not (up.(!nd) && inserv.(!nd)) do nd := Combin.Rng.int rng n done;
      up.(!nd) <- false;
      incr ndown;
      emit (Node_fail !nd)
    end
    else if d < 100 then begin
      (* Recover the [pick]-th currently-down node (ascending scan). *)
      let pick = ref (Combin.Rng.int rng !ndown) in
      let nd = ref 0 in
      while up.(!nd) || !pick > 0 do
        if not up.(!nd) then decr pick;
        incr nd
      done;
      up.(!nd) <- true;
      decr ndown;
      emit (Node_recover !nd)
    end
    else if d < 100 + leave_weight then begin
      (* Permanent leave of an in-service node (up or down). *)
      let nd = ref (Combin.Rng.int rng n) in
      while not inserv.(!nd) do nd := Combin.Rng.int rng n done;
      if not up.(!nd) then begin
        (* A down node that leaves stops counting as failed. *)
        up.(!nd) <- true;
        decr ndown
      end;
      inserv.(!nd) <- false;
      decr ninserv;
      emit (Node_leave !nd)
    end
    else begin
      (* Re-join the [pick]-th left node (ascending scan); it returns
         up with an empty replica row. *)
      let pick = ref (Combin.Rng.int rng (n - !ninserv)) in
      let nd = ref 0 in
      while inserv.(!nd) || !pick > 0 do
        if not inserv.(!nd) then decr pick;
        incr nd
      done;
      inserv.(!nd) <- true;
      incr ninserv;
      emit (Node_join !nd)
    end;
    if measure_every > 0 && i mod measure_every = 0 then
      emit (Measure (Printf.sprintf "t%d" i))
  done;
  List.rev !out
