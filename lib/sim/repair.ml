type config = {
  failure_rate : float;
  mean_repair : float;
  horizon : float;
}

type stats = {
  horizon : float;
  avg_unavailable : float;
  worst_unavailable : int;
  worst_nodes_down : int;
  incidents : int;
  object_downtime_fraction : float;
}

let nines s =
  if s.object_downtime_fraction <= 0.0 then infinity
  else -.log10 s.object_downtime_fraction

(* The queue payload is a *scheduled* occurrence; when it fires, the
   state change itself goes through the unified Event vocabulary
   (Cluster.apply_event), like every other producer in this layer. *)
type event = Fail of int | Repair of int

let exponential rng mean = -.mean *. log (1.0 -. Combin.Rng.float rng)

let run ~rng cluster config =
  if config.failure_rate <= 0.0 || config.mean_repair <= 0.0 || config.horizon <= 0.0
  then invalid_arg "Repair.run: rates and horizon must be positive";
  Cluster.recover_all cluster;
  let n = Cluster.n cluster in
  let b = Cluster.b cluster in
  let queue : event Combin.Heap.t = Combin.Heap.create () in
  (* Schedule each node's first failure. *)
  for nd = 0 to n - 1 do
    Combin.Heap.push queue
      (exponential rng (1.0 /. config.failure_rate))
      (Fail nd)
  done;
  let now = ref 0.0 in
  let unavailable_integral = ref 0.0 in
  let worst_unavailable = ref 0 in
  let worst_nodes_down = ref 0 in
  let incidents = ref 0 in
  let account until =
    let dt = until -. !now in
    let down = b - Cluster.available_objects cluster in
    unavailable_integral := !unavailable_integral +. (float_of_int down *. dt);
    now := until
  in
  let finished = ref false in
  while not !finished do
    match Combin.Heap.pop queue with
    | None -> finished := true
    | Some (t, _) when t >= config.horizon ->
        account config.horizon;
        finished := true
    | Some (t, ev) ->
        account t;
        let before_down = b - Cluster.available_objects cluster in
        (match ev with
        | Fail nd ->
            if Cluster.node_up cluster nd then begin
              Cluster.apply_event cluster (Event.Node_fail nd);
              Combin.Heap.push queue
                (t +. exponential rng config.mean_repair)
                (Repair nd)
            end
            else
              (* Node already down (shouldn't happen with this schedule);
                 just reschedule its next failure. *)
              Combin.Heap.push queue
                (t +. exponential rng (1.0 /. config.failure_rate))
                (Fail nd)
        | Repair nd ->
            Cluster.apply_event cluster (Event.Node_recover nd);
            Combin.Heap.push queue
              (t +. exponential rng (1.0 /. config.failure_rate))
              (Fail nd));
        let down = b - Cluster.available_objects cluster in
        if before_down = 0 && down > 0 then incr incidents;
        if down > !worst_unavailable then worst_unavailable := down;
        let nodes_down = Array.length (Cluster.failed_nodes cluster) in
        if nodes_down > !worst_nodes_down then worst_nodes_down := nodes_down
  done;
  if !now < config.horizon then account config.horizon;
  Cluster.recover_all cluster;
  {
    horizon = config.horizon;
    avg_unavailable = !unavailable_integral /. config.horizon;
    worst_unavailable = !worst_unavailable;
    worst_nodes_down = !worst_nodes_down;
    incidents = !incidents;
    object_downtime_fraction =
      !unavailable_integral /. (float_of_int b *. config.horizon);
  }
