(** The unified change vocabulary of the simulation layer.

    One event type covers every way the system changes: node and
    fault-domain outages, node recoveries, object creation/deletion
    (the churn regime of {!Churn}), and labelled measurement pulses.
    {!Trace}, {!Scenario} and {!Repair} produce or consume this stream
    (their historical vocabularies lower onto it byte-identically), and
    {!Churn} replays it against a live adaptive placement; see
    DESIGN.md §12. *)

type t =
  | Node_fail of int  (** one node goes down *)
  | Node_recover of int  (** one node comes back *)
  | Node_join of int  (** a previously-left node re-enters service *)
  | Node_leave of int
      (** permanent departure: the node's replicas are re-placed
          elsewhere (bounded movement, see {!Churn.apply}) *)
  | Domain_fail of int * int
      (** [Domain_fail (level, d)]: every node of domain [d] at tree
          level [level] goes down *)
  | Object_create  (** a new object enters; ids are assigned
          sequentially by the consumer *)
  | Object_delete of int  (** object [id] leaves *)
  | Measure of string  (** record a labelled observation *)

val describe : t -> string

val to_line : t -> string
(** The one-line file spelling: [fail 3], [recover 3],
    [fail-domain 1 0], [join 3], [leave 3], [create], [delete 17],
    [measure LABEL]. *)

val verbs : string list
(** The event verbs accepted by {!parse_line}, in the order quoted by
    its unknown-verb error. *)

val parse_line : string -> (t option, string) result
(** Parse one line of an event file.  [Ok None] on a blank line or a
    [#] comment; [Error msg] carries a single actionable sentence. *)

val parse_string : string -> (t list, int * string) result
(** Parse a whole event file.  The error carries the 1-based line
    number of the first malformed line. *)

val format_error : file:string -> int * string -> string
(** [format_error ~file (lineno, msg)] is the canonical one-line
    [FILE:LINE: msg] spelling used by the CLI for event-file errors. *)

val seeded :
  rng:Combin.Rng.t ->
  n:int ->
  ?initial:int ->
  ?join_weight:int ->
  ?leave_weight:int ->
  count:int ->
  measure_every:int ->
  unit ->
  t list
(** A deterministic synthetic churn trace of [count] events over [n]
    nodes: create-biased object churn (ids sequential from [initial],
    which declares how many objects the consumer already holds) mixed
    with node failures and recoveries, every event valid by
    construction (deletes name live ids, failures hit up nodes).  When
    [measure_every > 0], a [Measure "t<i>"] pulse follows every
    [measure_every]-th event (so the returned list is slightly longer
    than [count]).  [join_weight]/[leave_weight] (default 0) admit
    [Node_join]/[Node_leave] events in proportion to the base 100-draw
    range; with both 0 the stream is byte-identical to the historical
    generator.  Leaves keep at least n − max(1, n/4) nodes in service;
    joins only name nodes that previously left.  Same arguments, same
    stream. *)
