let m_checks = Telemetry.Registry.counter "dst/inject/checks"
let m_fired = Telemetry.Registry.counter "dst/inject/fired"

type point = { pname : string; phash : int }

(* Process-global point registry, find-or-create.  Registration happens
   at module initialization of the instrumented engine modules; the
   mutex makes lazy registration from pool workers safe too. *)
let registry : (string, point) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

let register pname =
  Mutex.lock registry_lock;
  let p =
    match Hashtbl.find_opt registry pname with
    | Some p -> p
    | None ->
        let p = { pname; phash = Hashtbl.hash pname } in
        Hashtbl.add registry pname p;
        p
  in
  Mutex.unlock registry_lock;
  p

let name p = p.pname

let points () =
  Mutex.lock registry_lock;
  let names = Hashtbl.fold (fun nm _ acc -> nm :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort compare names

(* The arming plan of one domain.  [hits] counts how many times each
   point has been evaluated under this arming — the per-point hit index
   that keys the fire decision, so the decision depends only on how many
   times *that* point was reached, not on interleaving with other
   points. *)
type plan = {
  seed : int;
  rate : int;
  hits : (string, int ref) Hashtbl.t;
  mutable checked : int;
  mutable fired_count : int;
}

let key : plan option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let plan () = !(Domain.DLS.get key)
let set_plan pl = Domain.DLS.get key := pl

let arm ~seed ~rate =
  if rate < 1 then invalid_arg "Inject.arm: rate must be >= 1";
  set_plan
    (Some { seed; rate; hits = Hashtbl.create 8; checked = 0; fired_count = 0 })

let disarm () = set_plan None
let armed () = plan () <> None

let restoring body =
  let saved = plan () in
  Fun.protect ~finally:(fun () -> set_plan saved) body

let with_arming ~seed ~rate body =
  restoring (fun () ->
      arm ~seed ~rate;
      body ())

let without body =
  restoring (fun () ->
      disarm ();
      body ())

(* One fire decision: a fresh SplitMix64 stream keyed by
   (seed, point, hit index), consumed for a single draw.  Stateless per
   hit, so the decision survives history edits by the shrinker as long
   as the point's hit index is reproduced. *)
let decide pl p hit =
  let mix =
    (pl.seed * 0x1000003) lxor (p.phash * 0x9E3779B1) lxor (hit * 0x85EBCA77)
  in
  Combin.Rng.int (Combin.Rng.create mix) pl.rate = 0

let fire p =
  match plan () with
  | None -> false
  | Some pl ->
      let hit =
        match Hashtbl.find_opt pl.hits p.pname with
        | Some r ->
            incr r;
            !r - 1
        | None ->
            Hashtbl.add pl.hits p.pname (ref 1);
            0
      in
      pl.checked <- pl.checked + 1;
      Telemetry.Counter.incr m_checks;
      let f = decide pl p hit in
      if f then begin
        pl.fired_count <- pl.fired_count + 1;
        Telemetry.Counter.incr m_fired
      end;
      f

let checks () = match plan () with None -> 0 | Some pl -> pl.checked
let fired () = match plan () with None -> 0 | Some pl -> pl.fired_count
