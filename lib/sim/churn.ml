let m_events = Telemetry.Registry.counter "sim/churn/events"
let m_moved = Telemetry.Registry.counter "sim/churn/moved_replicas"
let m_rescore_evals = Telemetry.Registry.counter "sim/churn/rescore/evals"
let m_rescore_pops = Telemetry.Registry.counter "sim/churn/rescore/heap_pops"
let sp_apply = Telemetry.Registry.span "sim/churn/apply"
let sp_rescore = Telemetry.Registry.span "sim/churn/rescore"

(* Fault-injection site (armed only under the dst harness): a leave's
   capacity preflight spuriously refuses, exercising the retire/unretire
   rollback path below. *)
let inj_capacity = Inject.register "dst/capacity_preflight"

type t = {
  n : int;
  r : int;
  s : int;
  k : int;
  topology : Topology.Tree.t;
  placement : Placement.Adaptive.t;
  dyn : Placement.Kernel.Dyn.t;
  up : bool array;
  in_service : bool array;  (* false once a node permanently leaves *)
  id_slot : (int, int) Hashtbl.t;  (* adaptive object id -> dyn slot *)
  mutable slot_id : int array;  (* dyn slot -> adaptive object id *)
  mutable events : int;
  mutable moved : int;
}

type step = {
  seq : int;
  event : Event.t;
  moved : int;
  live : int;
  available : int;
  failed_nodes : int;
  lower_bound : int;
}

type rescore = { attack : int array; worst_available : int }

let create ?levels ?topology ~n ~r ~s ~k () =
  let topology =
    match topology with
    | None -> Topology.Build.flat n
    | Some topo ->
        if Topology.Tree.n topo <> n then
          invalid_arg
            (Printf.sprintf
               "Churn.create: topology has %d nodes but n is %d"
               (Topology.Tree.n topo) n);
        topo
  in
  {
    n;
    r;
    s;
    k;
    topology;
    placement = Placement.Adaptive.create ?levels ~n ~r ~s ~k ();
    dyn = Placement.Kernel.Dyn.create ~units:n ~s;
    up = Array.make n true;
    in_service = Array.make n true;
    id_slot = Hashtbl.create 64;
    slot_id = [||];
    events = 0;
    moved = 0;
  }

let n t = t.n
let r t = t.r
let s t = t.s
let k t = t.k
let topology t = t.topology
let live t = Placement.Kernel.Dyn.objects t.dyn
let events t = t.events
let moved_replicas (t : t) = t.moved
let node_up t nd = t.up.(nd)
let node_in_service t nd = t.in_service.(nd)
let node_load t nd = Placement.Kernel.Dyn.load t.dyn nd

let nodes_in_service t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.in_service

let available t = live t - Placement.Kernel.Dyn.killed t.dyn
let lower_bound t = Placement.Adaptive.lower_bound t.placement
let layout t = Placement.Adaptive.layout t.placement

let failed_nodes t =
  let out = ref [] in
  for nd = t.n - 1 downto 0 do
    if not t.up.(nd) then out := nd :: !out
  done;
  Array.of_list !out

let check_node t nd =
  if nd < 0 || nd >= t.n then
    invalid_arg
      (Printf.sprintf "Churn: node %d out of range (n = %d)" nd t.n)

let check_in_service t nd what =
  if not t.in_service.(nd) then
    invalid_arg
      (Printf.sprintf "Churn: cannot %s node %d (it has left the cluster)"
         what nd)

let fail_node t nd =
  check_node t nd;
  check_in_service t nd "fail";
  if t.up.(nd) then begin
    t.up.(nd) <- false;
    Placement.Kernel.Dyn.fail_unit t.dyn nd
  end

let recover_node t nd =
  check_node t nd;
  check_in_service t nd "recover";
  if not t.up.(nd) then begin
    t.up.(nd) <- true;
    Placement.Kernel.Dyn.recover_unit t.dyn nd
  end

(* Register [id]'s replica set with the kernel and bind the id↔slot
   maps. *)
let bind_object t id rs =
  let slot = Placement.Kernel.Dyn.add_object t.dyn rs in
  if slot = Array.length t.slot_id then begin
    let grown = Array.make (max 16 (2 * slot)) (-1) in
    Array.blit t.slot_id 0 grown 0 slot;
    t.slot_id <- grown
  end;
  t.slot_id.(slot) <- id;
  Hashtbl.replace t.id_slot id slot

(* Drop [id]'s kernel registration (the adaptive assignment is the
   caller's business).  Dyn keeps slots dense: the object in [lastslot]
   (if any) moved into [slot] — mirror that in the id maps. *)
let unbind_object t id slot =
  let lastslot = Placement.Kernel.Dyn.remove_object t.dyn slot in
  Hashtbl.remove t.id_slot id;
  if lastslot <> slot then begin
    let moved_id = t.slot_id.(lastslot) in
    t.slot_id.(slot) <- moved_id;
    Hashtbl.replace t.id_slot moved_id slot
  end;
  t.slot_id.(lastslot) <- -1

let create_object t =
  let id = Placement.Adaptive.add t.placement in
  let rs = Placement.Adaptive.replica_set t.placement id in
  bind_object t id rs;
  Array.length rs

let delete_object t id =
  match Hashtbl.find_opt t.id_slot id with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Churn: delete of unknown object id %d (never created or already \
            deleted)"
           id)
  | Some slot ->
      Placement.Adaptive.remove t.placement id;
      unbind_object t id slot

(* Count the replicas of [nw] that are not already in [old] — the data
   actually shipped by a relocation. *)
let moved_replicas_between old nw =
  Array.fold_left
    (fun acc u -> if Array.exists (fun v -> v = u) old then acc else acc + 1)
    0 nw

(* Permanent departure.  Bounded movement: only the objects hosting a
   replica on [nd] are touched (load nd of them), each re-placed
   wholesale by the adaptive routing rule, so at most r replicas ship
   per evicted object and nothing else moves.  The node's blocks are
   blocked first (retire), so the re-route can never hand an object
   back to the leaver; if the placement has no capacity left for the
   relocations the retirement is rolled back and nothing has changed. *)
let leave_node t nd =
  check_node t nd;
  check_in_service t nd "leave";
  let evicted = Placement.Adaptive.retire_node t.placement nd in
  if Inject.fire inj_capacity then begin
    Placement.Adaptive.unretire_node t.placement nd;
    invalid_arg
      (Printf.sprintf
         "Churn: injected fault at dst/capacity_preflight refused the leave \
          of node %d (state rolled back)"
         nd)
  end;
  if evicted <> [] && not (Placement.Adaptive.has_capacity t.placement) then begin
    Placement.Adaptive.unretire_node t.placement nd;
    invalid_arg
      (Printf.sprintf
         "Churn: cannot relocate node %d's replicas (no placement capacity \
          left)"
         nd)
  end;
  let moved = ref 0 in
  List.iter
    (fun id ->
      let slot = Hashtbl.find t.id_slot id in
      let old_rs = Placement.Kernel.Dyn.replicas t.dyn slot in
      Placement.Adaptive.replace t.placement id;
      let new_rs = Placement.Adaptive.replica_set t.placement id in
      unbind_object t id slot;
      bind_object t id new_rs;
      moved := !moved + moved_replicas_between old_rs new_rs)
    evicted;
  (* The leaver's row is empty now; a down node that leaves stops
     counting as failed (its loss is permanent, not an outage). *)
  if not t.up.(nd) then begin
    t.up.(nd) <- true;
    Placement.Kernel.Dyn.recover_unit t.dyn nd
  end;
  t.in_service.(nd) <- false;
  !moved

let join_node t nd =
  check_node t nd;
  if t.in_service.(nd) then
    invalid_arg
      (Printf.sprintf "Churn: node %d is already in service (join expects a \
                       node that left)" nd);
  Placement.Adaptive.unretire_node t.placement nd;
  t.in_service.(nd) <- true

let apply t ev =
  Telemetry.Span.time sp_apply @@ fun () ->
  let moved =
    match ev with
    | Event.Node_fail nd ->
        fail_node t nd;
        0
    | Event.Node_recover nd ->
        recover_node t nd;
        0
    | Event.Domain_fail (level, d) ->
        let depth = Topology.Tree.depth t.topology in
        if level < 0 || level >= depth then
          invalid_arg
            (Printf.sprintf
               "Churn: domain level %d out of range (topology depth %d)"
               level depth);
        if d < 0 || d >= Topology.Tree.domain_count t.topology ~level then
          invalid_arg
            (Printf.sprintf
               "Churn: domain %d out of range at level %d (%d domains)"
               d level
               (Topology.Tree.domain_count t.topology ~level));
        (* A left node is no longer part of the domain's blast radius. *)
        Array.iter
          (fun m -> if t.in_service.(m) then fail_node t m)
          (Topology.Tree.members t.topology ~level d);
        0
    | Event.Node_join nd ->
        join_node t nd;
        0
    | Event.Node_leave nd -> leave_node t nd
    | Event.Object_create -> create_object t
    | Event.Object_delete id ->
        delete_object t id;
        0
    | Event.Measure _ -> 0
  in
  t.events <- t.events + 1;
  t.moved <- t.moved + moved;
  Telemetry.Counter.incr m_events;
  Telemetry.Counter.add m_moved moved;
  {
    seq = t.events;
    event = ev;
    moved;
    live = live t;
    available = available t;
    failed_nodes = Array.length (failed_nodes t);
    lower_bound = lower_bound t;
  }

(* Advisory routing: the nodes the next [Object_create] would land on,
   via the placement's non-committing {!Placement.Adaptive.peek}. *)
let advise_create t = Placement.Adaptive.peek t.placement

let rescore ?k t =
  Telemetry.Span.time sp_rescore @@ fun () ->
  let k = Option.value ~default:t.k k in
  let picks, dead, stats = Placement.Kernel.Dyn.worst_case t.dyn ~k in
  Telemetry.Counter.add m_rescore_evals stats.Placement.Kernel.evals;
  Telemetry.Counter.add m_rescore_pops stats.Placement.Kernel.heap_pops;
  { attack = picks; worst_available = live t - dead }

(* The incremental ≡ from-scratch oracle, every layer at once:
   - the Dyn hits plane and dead tally against a straight recount;
   - the Adaptive bookkeeping invariants;
   - current availability against a freshly built flat Kernel over the
     live layout, evaluated one-shot on the failed-node set;
   - the incremental adversary's picks, damage and scan stats against
     select_greedy on that fresh kernel.
   O(b·r + greedy); tests and gates only. *)
let check t =
  let dyn_killed = Placement.Kernel.Dyn.killed t.dyn in
  let recount = Placement.Kernel.Dyn.check_scratch t.dyn in
  if recount <> dyn_killed then
    failwith
      (Printf.sprintf "Churn.check: incremental killed %d <> recount %d"
         dyn_killed recount);
  Placement.Adaptive.check_invariants t.placement;
  for nd = 0 to t.n - 1 do
    if t.in_service.(nd) = Placement.Adaptive.retired t.placement nd then
      failwith
        (Printf.sprintf
           "Churn.check: node %d in-service flag out of sync with placement \
            retirement"
           nd)
  done;
  let layout = Placement.Adaptive.layout t.placement in
  let kn = Placement.Kernel.make layout ~s:t.s in
  let scratch_killed = Placement.Kernel.check kn (failed_nodes t) in
  if scratch_killed <> dyn_killed then
    failwith
      (Printf.sprintf
         "Churn.check: incremental killed %d <> from-scratch kernel %d"
         dyn_killed scratch_killed);
  let picks, dead, stats = Placement.Kernel.Dyn.worst_case t.dyn ~k:t.k in
  let picks_ref, stats_ref = Placement.Kernel.select_greedy kn ~picks:t.k in
  let dead_ref = Placement.Kernel.killed kn in
  if picks <> picks_ref then
    failwith "Churn.check: incremental adversary picks differ from scratch";
  if dead <> dead_ref then
    failwith
      (Printf.sprintf
         "Churn.check: incremental adversary kills %d <> scratch %d" dead
         dead_ref);
  if stats <> stats_ref then
    failwith "Churn.check: incremental adversary scan stats differ from scratch"
