type result = {
  trials : int;
  avails : int array;
  mean : float;
  stddev : float;
  min : int;
  max : int;
}

let of_avails avails =
  let floats = Array.map float_of_int avails in
  let lo, hi = Combin.Stats.min_max floats in
  {
    trials = Array.length avails;
    avails;
    mean = Combin.Stats.mean floats;
    stddev = Combin.Stats.stddev floats;
    min = int_of_float lo;
    max = int_of_float hi;
  }

(* Trial counts are Stable (a function of the requested [trials] alone);
   per-trial durations land with the volatile timings. *)
let m_runs = Telemetry.Registry.counter "sim/montecarlo/runs"
let m_trials = Telemetry.Registry.counter "sim/montecarlo/trials"
let m_trial_span = Telemetry.Registry.span "sim/montecarlo/trial"

let run ?pool ~rng ~trials ~placement ~scenario ~semantics () =
  (* Pre-split one RNG per trial (Rng.split_n), so trial i's stream is a
     function of the master seed and i alone: running the trials through a
     pool of any size gives bit-identical avails.  The adversary inside a
     trial stays sequential — Engine pools reject nesting. *)
  Telemetry.Counter.incr m_runs;
  Telemetry.Counter.add m_trials trials;
  let trial_rngs = Combin.Rng.split_n rng trials in
  let one_trial trial_rng =
    Telemetry.Span.time m_trial_span @@ fun () ->
    let layout = placement trial_rng in
    let cluster = Cluster.create layout semantics in
    Scenario.run ~rng:trial_rng cluster scenario
  in
  let avails =
    match pool with
    | Some p -> Engine.Pool.parallel_map p one_trial trial_rngs
    | None -> Array.map one_trial trial_rngs
  in
  of_avails avails

let avg_avail_random ?pool ~rng ~trials (p : Placement.Params.t) =
  run ?pool ~rng ~trials
    ~placement:(fun trial_rng -> Placement.Random_placement.place ~rng:trial_rng p)
    ~scenario:(Scenario.Adversarial p.k)
    ~semantics:(Semantics.Threshold p.s) ()

let pp fmt r =
  Format.fprintf fmt "trials=%d mean=%.1f sd=%.1f min=%d max=%d" r.trials
    r.mean r.stddev r.min r.max
