module J = Telemetry.Json

let m_requests = Telemetry.Registry.counter "sim/api/requests"
let m_parse_errors = Telemetry.Registry.counter "sim/api/parse_errors"
let m_rejected = Telemetry.Registry.counter "sim/api/rejected"
let sp_request = Telemetry.Registry.span "sim/api/request"

(* Fault-injection sites (armed only under the dst harness): a worst-case
   query spuriously refused before touching the engine, and a request
   line truncated in flight — both must surface as [Rejected], never as
   an exception or a state change. *)
let inj_rescore = Inject.register "dst/rescore"
let inj_io_partial = Inject.register "dst/io_partial_line"

type query = Worst of int option | Avail | Lower_bound | Advise_create
type request = Apply of Event.t | Query of query | Stats

type stats = {
  requests : int;
  events : int;
  parse_errors : int;
  rejected : int;
  creates : int;
  deletes : int;
  node_fails : int;
  node_recovers : int;
  domain_fails : int;
  joins : int;
  leaves : int;
  measures : int;
  moved_replicas : int;
  live : int;
  available : int;
  failed_nodes : int;
  nodes_in_service : int;
  lower_bound : int;
}

type response =
  | Applied of Churn.step
  | Worst_case of {
      k : int;
      attack : int array;
      worst_available : int;
      live : int;
    }
  | Availability of {
      live : int;
      available : int;
      failed_nodes : int;
      nodes_in_service : int;
    }
  | Bound of { lower_bound : int; live : int }
  | Advice of { nodes : int array; live : int }
  | Stats_report of stats
  | Rejected of { line : int option; message : string }

type session = {
  engine : Churn.t;
  mutable requests : int;
  mutable parse_errors : int;
  mutable rejected : int;
  mutable creates : int;
  mutable deletes : int;
  mutable node_fails : int;
  mutable node_recovers : int;
  mutable domain_fails : int;
  mutable joins : int;
  mutable leaves : int;
  mutable measures : int;
}

let make engine =
  {
    engine;
    requests = 0;
    parse_errors = 0;
    rejected = 0;
    creates = 0;
    deletes = 0;
    node_fails = 0;
    node_recovers = 0;
    domain_fails = 0;
    joins = 0;
    leaves = 0;
    measures = 0;
  }

let engine s = s.engine

let stats s =
  {
    requests = s.requests;
    events = Churn.events s.engine;
    parse_errors = s.parse_errors;
    rejected = s.rejected;
    creates = s.creates;
    deletes = s.deletes;
    node_fails = s.node_fails;
    node_recovers = s.node_recovers;
    domain_fails = s.domain_fails;
    joins = s.joins;
    leaves = s.leaves;
    measures = s.measures;
    moved_replicas = Churn.moved_replicas s.engine;
    live = Churn.live s.engine;
    available = Churn.available s.engine;
    failed_nodes = Array.length (Churn.failed_nodes s.engine);
    nodes_in_service = Churn.nodes_in_service s.engine;
    lower_bound = Churn.lower_bound s.engine;
  }

(* ------------------------------------------------------------------ *)
(* Request codec: the event line vocabulary plus the read-side verbs. *)

let parse_request line =
  let line =
    if Inject.fire inj_io_partial then
      String.sub line 0 (String.length line / 2)
    else line
  in
  let trimmed = String.trim line in
  if trimmed = "" || (trimmed <> "" && trimmed.[0] = '#') then Ok None
  else
    let words =
      String.split_on_char ' ' trimmed |> List.filter (fun w -> w <> "")
    in
    match words with
    | "query" :: rest -> (
        match rest with
        | [ "worst" ] -> Ok (Some (Query (Worst None)))
        | [ "worst"; k ] -> (
            match int_of_string_opt k with
            | Some k -> Ok (Some (Query (Worst (Some k))))
            | None ->
                Error
                  (Printf.sprintf "query worst expects an integer budget, \
                                   got %S" k))
        | [ "avail" ] -> Ok (Some (Query Avail))
        | [ "lower-bound" ] -> Ok (Some (Query Lower_bound))
        | _ ->
            Error
              "query expects worst [K], avail or lower-bound (e.g. \"query \
               worst 3\")")
    | "advise" :: rest -> (
        match rest with
        | [ "create" ] -> Ok (Some (Query Advise_create))
        | _ -> Error "advise expects create (e.g. \"advise create\")")
    | [ "stats" ] -> Ok (Some Stats)
    | "stats" :: _ -> Error "stats takes no arguments"
    | first :: _ when List.mem first Event.verbs -> (
        match Event.parse_line trimmed with
        | Ok None -> Ok None
        | Ok (Some ev) -> Ok (Some (Apply ev))
        | Error msg -> Error msg)
    | cmd :: _ ->
        Error
          (Printf.sprintf
             "unknown request %S (expected an event — %s — or query \
              worst/avail/lower-bound, advise create, or stats)"
             cmd
             (String.concat ", " Event.verbs))
    | [] -> assert false

let request_to_line = function
  | Apply ev -> Event.to_line ev
  | Query (Worst None) -> "query worst"
  | Query (Worst (Some k)) -> Printf.sprintf "query worst %d" k
  | Query Avail -> "query avail"
  | Query Lower_bound -> "query lower-bound"
  | Query Advise_create -> "advise create"
  | Stats -> "stats"

(* ------------------------------------------------------------------ *)
(* Execution: the single entry point into the engine.  Engine
   rejections surface as a [Rejected] response, never an exception —
   an online session must survive bad requests. *)

let count_event s = function
  | Event.Object_create -> s.creates <- s.creates + 1
  | Event.Object_delete _ -> s.deletes <- s.deletes + 1
  | Event.Node_fail _ -> s.node_fails <- s.node_fails + 1
  | Event.Node_recover _ -> s.node_recovers <- s.node_recovers + 1
  | Event.Domain_fail _ -> s.domain_fails <- s.domain_fails + 1
  | Event.Node_join _ -> s.joins <- s.joins + 1
  | Event.Node_leave _ -> s.leaves <- s.leaves + 1
  | Event.Measure _ -> s.measures <- s.measures + 1

let reject s message =
  s.rejected <- s.rejected + 1;
  Telemetry.Counter.incr m_rejected;
  Rejected { line = None; message }

let exec s req =
  Telemetry.Span.time sp_request @@ fun () ->
  s.requests <- s.requests + 1;
  Telemetry.Counter.incr m_requests;
  match req with
  | Apply ev -> (
      match Churn.apply s.engine ev with
      | step ->
          count_event s ev;
          Applied step
      | exception Invalid_argument msg -> reject s msg)
  | Query (Worst k) ->
      if Inject.fire inj_rescore then
        reject s
          "injected fault at dst/rescore: worst-case query refused (engine \
           state untouched)"
      else begin
        let kq = Option.value ~default:(Churn.k s.engine) k in
        if kq < 1 || kq > Churn.n s.engine then
          reject s
            (Printf.sprintf
               "query worst %d: the attack budget must be in [1, n = %d]" kq
               (Churn.n s.engine))
        else
          let rs = Churn.rescore ~k:kq s.engine in
          Worst_case
            {
              k = kq;
              attack = rs.Churn.attack;
              worst_available = rs.Churn.worst_available;
              live = Churn.live s.engine;
            }
      end
  | Query Avail ->
      Availability
        {
          live = Churn.live s.engine;
          available = Churn.available s.engine;
          failed_nodes = Array.length (Churn.failed_nodes s.engine);
          nodes_in_service = Churn.nodes_in_service s.engine;
        }
  | Query Lower_bound ->
      Bound
        {
          lower_bound = Churn.lower_bound s.engine;
          live = Churn.live s.engine;
        }
  | Query Advise_create -> (
      match Churn.advise_create s.engine with
      | nodes -> Advice { nodes; live = Churn.live s.engine }
      | exception Invalid_argument msg -> reject s msg)
  | Stats -> Stats_report (stats s)

let reject_line s line message =
  s.requests <- s.requests + 1;
  s.rejected <- s.rejected + 1;
  Telemetry.Counter.incr m_requests;
  Telemetry.Counter.incr m_rejected;
  Rejected { line = Some line; message }

let parse_error s line message =
  s.parse_errors <- s.parse_errors + 1;
  Telemetry.Counter.incr m_parse_errors;
  reject_line s line message

(* ------------------------------------------------------------------ *)
(* Response codec: one placement/v1 envelope per response. *)

let stats_json (st : stats) =
  J.Obj
    [
      ("requests", J.Int st.requests);
      ("events", J.Int st.events);
      ("parse_errors", J.Int st.parse_errors);
      ("rejected", J.Int st.rejected);
      ("creates", J.Int st.creates);
      ("deletes", J.Int st.deletes);
      ("node_fails", J.Int st.node_fails);
      ("node_recovers", J.Int st.node_recovers);
      ("domain_fails", J.Int st.domain_fails);
      ("joins", J.Int st.joins);
      ("leaves", J.Int st.leaves);
      ("measures", J.Int st.measures);
      ("moved_replicas", J.Int st.moved_replicas);
      ("live", J.Int st.live);
      ("available", J.Int st.available);
      ("failed_nodes", J.Int st.failed_nodes);
      ("nodes_in_service", J.Int st.nodes_in_service);
      ("lower_bound", J.Int st.lower_bound);
    ]

let response_to_json = function
  | Applied (step : Churn.step) ->
      Placement.Codec.json_envelope ~command:"apply"
        (J.Obj
           [
             ("seq", J.Int step.Churn.seq);
             ("event", J.Str (Event.to_line step.Churn.event));
             ("moved", J.Int step.Churn.moved);
             ("live", J.Int step.Churn.live);
             ("available", J.Int step.Churn.available);
             ("failed_nodes", J.Int step.Churn.failed_nodes);
             ("lower_bound", J.Int step.Churn.lower_bound);
           ])
  | Worst_case { k; attack; worst_available; live } ->
      Placement.Codec.json_envelope ~command:"query"
        (J.Obj
           [
             ("query", J.Str "worst");
             ("k", J.Int k);
             ("attack", J.List (Array.to_list (Array.map (fun u -> J.Int u) attack)));
             ("worst_available", J.Int worst_available);
             ("live", J.Int live);
           ])
  | Availability { live; available; failed_nodes; nodes_in_service } ->
      Placement.Codec.json_envelope ~command:"query"
        (J.Obj
           [
             ("query", J.Str "avail");
             ("live", J.Int live);
             ("available", J.Int available);
             ("failed_nodes", J.Int failed_nodes);
             ("nodes_in_service", J.Int nodes_in_service);
           ])
  | Bound { lower_bound; live } ->
      Placement.Codec.json_envelope ~command:"query"
        (J.Obj
           [
             ("query", J.Str "lower-bound");
             ("lower_bound", J.Int lower_bound);
             ("live", J.Int live);
           ])
  | Advice { nodes; live } ->
      Placement.Codec.json_envelope ~command:"query"
        (J.Obj
           [
             ("query", J.Str "advise-create");
             ( "nodes",
               J.List (Array.to_list (Array.map (fun u -> J.Int u) nodes)) );
             ("live", J.Int live);
           ])
  | Stats_report st ->
      Placement.Codec.json_envelope ~command:"stats" (stats_json st)
  | Rejected { line; message } ->
      Placement.Codec.json_envelope ~command:"error"
        (J.Obj
           ((match line with
            | Some l -> [ ("line", J.Int l) ]
            | None -> [])
           @ [ ("message", J.Str message) ]))

let response_to_line resp = J.to_string (response_to_json resp)
