(** The continuous placement engine: a live {!Placement.Adaptive}
    placement, the node up/down state, and an incremental
    {!Placement.Kernel.Dyn} worst-case kernel, all advanced one
    {!Event.t} at a time (DESIGN.md §12).

    Where {!Cluster} replays infrastructure events against a fixed
    layout, this engine also consumes the object-churn events: an
    [Object_create] routes the new object through the adaptive Combo
    placement (moving exactly r replicas — the bounded-data-movement
    contract: no event ever relocates an existing object) and registers
    it with the kernel in O(r); an [Object_delete] retires it in O(r).
    After every event the engine can report the live Lemma-3
    {!lower_bound} and re-run the lazy-greedy adversary incrementally
    ({!rescore}) without rebuilding any state — bit-identical to a
    from-scratch {!Placement.Kernel} evaluation, which {!check}
    verifies.

    Determinism: the engine never consults a pool or the clock; a
    replay of the same event stream is bit-identical at any [-j]. *)

type t

type step = {
  seq : int;  (** 1-based event sequence number *)
  event : Event.t;
  moved : int;
      (** replicas moved by this event: r on create, at most
          r · load(nd) on a leave of node nd (each of its load(nd)
          evicted objects re-placed wholesale), 0 otherwise *)
  live : int;  (** live objects after the event *)
  available : int;  (** live objects not killed by the current outages *)
  failed_nodes : int;
  lower_bound : int;  (** the live Lemma-3 guarantee *)
}

type rescore = {
  attack : int array;  (** the k greedy picks, in pick order *)
  worst_available : int;
      (** objects surviving that attack on the current population *)
}

val create :
  ?levels:Placement.Combo.level array ->
  ?topology:Topology.Tree.t ->
  n:int ->
  r:int ->
  s:int ->
  k:int ->
  unit ->
  t
(** An empty engine over [n] nodes, all up.  [topology] (default
    {!Topology.Build.flat}) resolves [Domain_fail] events.
    @raise Invalid_argument on a node-count mismatch or unusable
    parameters. *)

val n : t -> int
val r : t -> int
val s : t -> int
val k : t -> int
val topology : t -> Topology.Tree.t

val live : t -> int
(** Live objects. *)

val events : t -> int
(** Events applied so far. *)

val moved_replicas : t -> int
(** Total replicas moved over the engine's lifetime. *)

val node_up : t -> int -> bool
val failed_nodes : t -> int array

val node_in_service : t -> int -> bool
(** False once the node has permanently left (until a re-join). *)

val nodes_in_service : t -> int
(** Nodes that have not left. *)

val node_load : t -> int -> int
(** Live objects with a replica on the node — the movement budget a
    leave of that node may spend. *)

val available : t -> int
(** Live objects not killed by the current outages (incremental). *)

val lower_bound : t -> int
val layout : t -> Placement.Layout.t
(** Snapshot of the live placement (increasing object-id order). *)

val apply : t -> Event.t -> step
(** Advance by one event.  Node failures/recoveries are idempotent
    (mirroring {!Cluster}); [Measure] changes nothing and exists so
    callers can snapshot at the producer's chosen points.

    [Node_leave nd] is a permanent departure with bounded-movement
    re-replication: the node's placement blocks are blocked, the
    load(nd) objects hosting a replica there — and nothing else — are
    each re-placed wholesale by the adaptive routing rule (≤ r replicas
    shipped per object), and a down leaver stops counting as failed.
    If the placement has no capacity left for the relocations the event
    raises and changes nothing.  [Node_join nd] re-admits a node that
    left (it returns up, hosting nothing).  A left node cannot fail or
    recover, and is skipped by [Domain_fail]'s blast radius.

    @raise Invalid_argument on an out-of-range node/domain, an unknown
    object id, a leave/fail/recover of a left node, or a join of an
    in-service node — one actionable sentence, surfaced verbatim by the
    CLI. *)

val advise_create : t -> int array
(** The sorted replica set the next [Object_create] would be assigned,
    without committing anything — {!Placement.Adaptive.peek} under the
    engine's live state, so an advise followed by a create places the
    object on exactly the advised nodes.  @raise Invalid_argument when
    the placement has no capacity (the condition under which the create
    itself would be rejected). *)

val rescore : ?k:int -> t -> rescore
(** Re-run the worst-case adversary on the current population without
    rebuilding: CELF lazy-greedy over the dynamic kernel, attacking
    from all-up.  [k] (default: the configured budget) is the attack
    size — online queries may probe any k.  Picks and scan stats are
    bit-identical to {!Placement.Kernel.select_greedy} on a freshly
    built kernel over {!layout}. *)

val check : t -> unit
(** The incremental ≡ from-scratch oracle: recounts the dynamic
    kernel's hit plane, re-checks the adaptive invariants, and compares
    availability, adversary picks and scan stats against a fresh flat
    {!Placement.Kernel} built from {!layout}.  [Failure] on any
    divergence.  O(b·r + greedy) — test-suite and gate hook. *)
