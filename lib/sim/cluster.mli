(** Mutable cluster state: a placement plus the up/down status of every
    node, with incremental tracking of per-object replica losses.

    This is the executable model behind the examples and the empirical
    experiments: fail nodes (by choice, at random, or adversarially),
    observe which objects remain available under a given access
    semantics, recover, repeat.

    Every cluster carries a {!Topology.Tree} of fault domains.  The
    historical rack model is the special case of a one-level tree: the
    [~racks] array becomes the rack level (and the default — no racks,
    no topology — is {!Topology.Build.flat}, one rack per node), so the
    rack accessors below answer through the topology while keeping
    their pre-topology byte-for-byte behavior. *)

type t

val create :
  ?racks:int array -> ?topology:Topology.Tree.t -> Placement.Layout.t ->
  Semantics.t -> t
(** [create layout sem] starts with all nodes up.  [racks], if given,
    assigns node [i] to rack [racks.(i)] (length n) for correlated
    failures; [topology] installs a full fault-domain tree instead
    (its first level above the nodes acts as the rack level).
    @raise Invalid_argument if both are given, or on a length/node
    mismatch. *)

val layout : t -> Placement.Layout.t
val semantics : t -> Semantics.t
val fatality_threshold : t -> int

val n : t -> int
val b : t -> int

val topology : t -> Topology.Tree.t
(** The cluster's fault-domain tree. *)

val rack_level : t -> int
(** The tree level acting as "racks": the first level above the nodes
    (the node level itself on a depth-1 tree). *)

val node_up : t -> int -> bool
val failed_nodes : t -> int array
(** Sorted list of currently failed nodes. *)

val fail_node : t -> int -> unit
(** Idempotent. *)

val recover_node : t -> int -> unit
(** Idempotent. *)

val fail_rack : t -> int -> unit
(** Fail every node of a rack (no-op on an unknown rack id). *)

val fail_domain : t -> level:int -> int -> unit
(** Fail every node of a domain of the topology. *)

val apply_event : t -> Event.t -> unit
(** Consume one unified event ({!Event.t}): node failures/recoveries
    and domain failures route to the operations above, [Measure] is a
    no-op (callers snapshot around it — see {!Trace.replay}).
    @raise Invalid_argument on object churn events: a cluster's layout
    is fixed, use {!Churn} for the object-churn regime. *)

val rack_domain : t -> int -> int option
(** Normalized rack-level domain id holding the caller's rack id, if
    any — the fault-domain id {!Trace} snapshots attribute rack
    failures to. *)

val rack_of : t -> int -> int
(** Rack id of a node. *)

val rack_ids : t -> int array
(** Distinct rack ids, ascending. *)

val rack_nodes : t -> int -> int array
(** Nodes of a rack, ascending ([[||]] for an unknown rack id). *)

val recover_all : t -> unit

val object_available : t -> int -> bool
(** Whether object [obj] still has enough live replicas. *)

val available_objects : t -> int
(** Count of available objects — Avail of the current failure set. *)

val unavailable_objects : t -> int list
(** Ids of failed objects (ascending). *)

val live_replicas : t -> int -> int
(** Live replica count of an object. *)
