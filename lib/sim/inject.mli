(** Named fault-injection points for deterministic simulation testing
    (DESIGN.md §14).

    Engine-path modules declare a {!point} once at module initialization
    ([let p = Inject.register "dst/capacity_preflight"]) and guard the
    fault branch with [if Inject.fire p then ...].  In production the
    registry is disarmed and {!fire} is a single branch returning
    [false]; the dst harness arms it per run with a seed and a rate, and
    every armed fire decision is a pure function of
    (seed, point name, per-point hit index) — independent of scheduling,
    wall clock, and of which pool domain executes the run.

    Arming is {e per domain} (stored in [Domain.DLS]), so concurrent
    harness runs fanned out through {!Engine.Pool} cannot observe each
    other's plans, and code outside an armed run — including the oracle
    replays the harness performs via {!without} — never fires.

    Injected faults must surface through the engine's existing refusal
    paths ([Rejected]/rollback), never as broken invariants: a point
    guards the decision to {e refuse}, not code that corrupts state. *)

type point
(** A registered injection site. *)

val register : string -> point
(** Declare (or look up) the injection point with this name.  Points are
    process-global and find-or-create, mirroring {!Telemetry.Registry}:
    re-registering a name returns the same point. *)

val name : point -> string

val points : unit -> string list
(** Names of every registered point, sorted. *)

val arm : seed:int -> rate:int -> unit
(** Arm injection on the calling domain: each subsequent {!fire} hits
    with probability 1/[rate] ([rate] ≥ 1; 1 = every hit), decided
    deterministically from [seed], the point's name and the point's
    per-arming hit counter.  Resets the fired/checked tallies. *)

val disarm : unit -> unit
(** Disarm the calling domain; {!fire} returns [false] again. *)

val armed : unit -> bool

val with_arming : seed:int -> rate:int -> (unit -> 'a) -> 'a
(** Run a thunk with injection armed, restoring the previous arming
    state (even on exception).  This is the harness entry point: one
    arming per simulated run, nested runs see their own plans. *)

val without : (unit -> 'a) -> 'a
(** Run a thunk with injection disarmed, restoring the previous arming
    state.  Oracle paths (fresh-replay invariants) use this so the
    replay sees the pure engine. *)

val fire : point -> bool
(** Ask whether the fault fires at this hit.  Disarmed: [false] (and no
    counter movement).  Armed: deterministic in (seed, name, hit index);
    bumps the [dst/inject/checks] / [dst/inject/fired] telemetry
    counters and the per-arming tallies. *)

val checks : unit -> int
(** Hits evaluated since the current arming on this domain (0 when
    disarmed). *)

val fired : unit -> int
(** Hits that fired since the current arming on this domain (0 when
    disarmed). *)
