module J = Telemetry.Json

let m_requests = Telemetry.Registry.counter "sim/serve/requests"
let m_responses = Telemetry.Registry.counter "sim/serve/responses"
let m_parse_errors = Telemetry.Registry.counter "sim/serve/parse_errors"
let m_rejected = Telemetry.Registry.counter "sim/serve/rejected"
let sp_request = Telemetry.Registry.span "sim/serve/request"

type reason = Eof | Signal | Timeout | Max_events

let reason_label = function
  | Eof -> "eof"
  | Signal -> "signal"
  | Timeout -> "timeout"
  | Max_events -> "max-events"

type outcome = {
  reason : reason;
  requests : int;
  responses : int;
  parse_errors : int;
  rejected : int;
}

(* One flag for the whole process: signal handlers are global state, so
   installing twice is harmless and nested serve loops share the flag. *)
let stop = ref false
let signals_installed = ref false

let install_signals () =
  if not !signals_installed then begin
    signals_installed := true;
    let handle = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigterm handle;
    Sys.set_signal Sys.sigint handle;
    (* A vanished peer must read as EPIPE (handled as end-of-session),
       not kill the daemon. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  end

let stop_requested () = !stop

(* ------------------------------------------------------------------ *)
(* Writing: full-buffer writes with EINTR retry.  A closed peer (EPIPE)
   reads as end-of-session, not a crash. *)

exception Peer_gone

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> raise Peer_gone
  done

(* ------------------------------------------------------------------ *)
(* The daemon loop.

   Reads newline-delimited requests from [input], answers each on
   [output] as a single-line placement/v1 envelope, and keeps going
   until EOF, an idle timeout, a delivered SIGTERM/SIGINT (drain: the
   lines already buffered are still answered), or the [max_events]
   guard.  Parse errors are answered inline with their 1-based line
   number and never kill the session.  Everything is deterministic for
   a given request stream — the timing only decides when the session
   ends, never what a response contains. *)
let run ?max_events ?snapshot_every ?(timeout = 0.) session ~input ~output =
  let responses = ref 0 in
  let lineno = ref 0 in
  let applied = ref 0 in
  let finished = ref None in
  let finish reason = if !finished = None then finished := Some reason in
  let respond resp =
    Telemetry.Counter.incr m_responses;
    incr responses;
    write_all output (Api.response_to_line resp ^ "\n")
  in
  let snapshot () =
    match snapshot_every with
    | Some every when every > 0 && !applied mod every = 0 ->
        Telemetry.Counter.incr m_responses;
        incr responses;
        write_all output
          (J.to_string
             (Placement.Codec.json_envelope ~command:"snapshot"
                (J.Obj
                   [
                     ("after_events", J.Int !applied);
                     ("stats", Api.stats_json (Api.stats session));
                   ]))
          ^ "\n")
    | _ -> ()
  in
  let handle_line line =
    if !finished = None then begin
      incr lineno;
      Telemetry.Span.time sp_request @@ fun () ->
      match Api.parse_request line with
      | Ok None -> ()
      | Error msg ->
          Telemetry.Counter.incr m_requests;
          Telemetry.Counter.incr m_parse_errors;
          respond (Api.parse_error session !lineno msg)
      | Ok (Some req) -> (
          Telemetry.Counter.incr m_requests;
          match req with
          | Api.Apply _
            when match max_events with
                 | Some cap -> !applied >= cap
                 | None -> false ->
              Telemetry.Counter.incr m_rejected;
              respond
                (Api.reject_line session !lineno
                   (Printf.sprintf
                      "event limit reached (--max-events %d); draining"
                      (Option.get max_events)));
              finish Max_events
          | _ ->
              let resp = Api.exec session req in
              (match resp with
              | Api.Rejected _ -> Telemetry.Counter.incr m_rejected
              | Api.Applied _ ->
                  incr applied
              | _ -> ());
              respond resp;
              (match resp with Api.Applied _ -> snapshot () | _ -> ()))
    end
  in
  (* Line framing over raw reads: accumulate chunks, split on '\n'.  A
     trailing unterminated line is still processed at EOF. *)
  let pending = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let drain_pending_lines () =
    let data = Buffer.contents pending in
    Buffer.clear pending;
    let rec go start =
      match String.index_from_opt data start '\n' with
      | Some nl ->
          handle_line (String.sub data start (nl - start));
          go (nl + 1)
      | None ->
          Buffer.add_substring pending data start (String.length data - start)
    in
    go 0
  in
  (try
     let eof = ref false in
     while (not !eof) && !finished = None do
       if !stop then finish Signal
       else begin
         (* Ready: data (or EOF) to read.  Idle: the timeout elapsed.
            Retry: a signal interrupted the wait — loop to re-check the
            stop flag before anything else. *)
         let readable =
           match
             Unix.select [ input ] [] []
               (if timeout > 0. then timeout else -1.)
           with
           | [], _, _ -> `Idle
           | _ -> `Ready
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Retry
         in
         if !stop then finish Signal
         else
           match readable with
           | `Idle -> finish Timeout
           | `Retry -> ()
           | `Ready -> (
               match Unix.read input chunk 0 (Bytes.length chunk) with
               | 0 -> eof := true
               | n ->
                   Buffer.add_subbytes pending chunk 0 n;
                   drain_pending_lines ()
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
       end
     done;
     (* Drain: answer what was already buffered, even on a signal. *)
     if Buffer.length pending > 0 then begin
       Buffer.add_char pending '\n';
       drain_pending_lines ()
     end
   with Peer_gone -> finish Eof);
  let reason =
    match !finished with Some reason -> reason | None -> Eof
  in
  let st = Api.stats session in
  (try
     write_all output
       (J.to_string
          (Placement.Codec.json_envelope ~command:"summary"
             (J.Obj
                [
                  ("reason", J.Str (reason_label reason));
                  ("stats", Api.stats_json st);
                ]))
       ^ "\n")
   with Peer_gone -> ());
  {
    reason;
    requests = st.Api.requests;
    responses = !responses;
    parse_errors = st.Api.parse_errors;
    rejected = st.Api.rejected;
  }
