(** Monte-Carlo harness: repeat (placement, failure scenario) trials and
    aggregate availability.  This is the machinery behind Fig. 7's
    avgAvail_rnd (20 Random placements, each hit by a worst-case failure)
    and the empirical sides of the ablation benches. *)

type result = {
  trials : int;
  avails : int array;  (** available objects per trial *)
  mean : float;
  stddev : float;
  min : int;
  max : int;
}

val run :
  ?pool:Engine.Pool.t -> rng:Combin.Rng.t -> trials:int ->
  placement:(Combin.Rng.t -> Placement.Layout.t) ->
  scenario:Scenario.t -> semantics:Semantics.t -> unit -> result
(** Each trial draws a fresh placement with a pre-split child of [rng]
    ({!Combin.Rng.split_n}), builds a cluster, applies the scenario, and
    records available objects.  With [pool], trials run as pool tasks;
    the result is bit-identical to the sequential run because trial
    streams are split before dispatch.  Trials must not use the same
    pool internally ({!Engine.Pool} rejects nesting). *)

val avg_avail_random :
  ?pool:Engine.Pool.t -> rng:Combin.Rng.t -> trials:int ->
  Placement.Params.t -> result
(** Fig. 7's avgAvail_rnd: Random placements under the adversarial
    scenario with the params' s and k. *)

val pp : Format.formatter -> result -> unit
