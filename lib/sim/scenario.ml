type t =
  | Adversarial of int
  | Random_nodes of int
  | Random_racks of int
  | Domain_failure of int * int
  | Explicit of int array

let describe = function
  | Adversarial k -> Printf.sprintf "worst-case failure of %d nodes" k
  | Random_nodes k -> Printf.sprintf "random failure of %d nodes" k
  | Random_racks j -> Printf.sprintf "random failure of %d racks" j
  | Domain_failure (level, j) ->
      Printf.sprintf "worst-case failure of %d level-%d domains" j level
  | Explicit nodes ->
      Printf.sprintf "explicit failure of %d nodes" (Array.length nodes)

(* The node set a scenario would fail.  Pure selection: reads the
   layout/topology (never the up/down state) and the rng, mutates
   nothing — so producing events before applying them consumes the
   same rng stream as the historical recover-then-fail order. *)
let select ~rng cluster t =
  match t with
  | Adversarial k ->
      let attack =
        Placement.Adversary.best ~rng (Cluster.layout cluster)
          ~s:(Cluster.fatality_threshold cluster) ~k
      in
      attack.Placement.Adversary.failed_nodes
  | Random_nodes k -> Combin.Rng.sample_distinct rng ~n:(Cluster.n cluster) ~k
  | Random_racks j ->
      (* Routed through the cluster's topology: racks are the domains
         of the rack level, in the same ascending order as the
         pre-topology rack_ids — one sample_distinct draw, identical
         streams, identical node sets. *)
      let topo = Cluster.topology cluster in
      let level = Cluster.rack_level cluster in
      let nr = Topology.Tree.domain_count topo ~level in
      if j > nr then invalid_arg "Scenario.apply: more racks than exist";
      let picked = Combin.Rng.sample_distinct rng ~n:nr ~k:j in
      Topology.Failset.nodes topo ~level picked
  | Domain_failure (level, j) ->
      let attack =
        Topology.Adversary.attack (Cluster.layout cluster)
          ~s:(Cluster.fatality_threshold cluster)
          (Cluster.topology cluster) ~level ~j
      in
      attack.Topology.Adversary.failed_nodes
  | Explicit nodes -> Combin.Intset.of_array nodes

(* Scenario → unified event stream: a reset (recover whatever is down
   right now) followed by the selected failures. *)
let events ~rng cluster t =
  let reset =
    Array.to_list (Cluster.failed_nodes cluster)
    |> List.map (fun nd -> Event.Node_recover nd)
  in
  let nodes = select ~rng cluster t in
  ( reset @ (Array.to_list nodes |> List.map (fun nd -> Event.Node_fail nd)),
    nodes )

let apply ~rng cluster t =
  let evs, nodes = events ~rng cluster t in
  List.iter (Cluster.apply_event cluster) evs;
  nodes

let run ~rng cluster t =
  let _ = apply ~rng cluster t in
  Cluster.available_objects cluster
