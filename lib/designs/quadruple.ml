let admissible v = v >= 4 && (v mod 6 = 2 || v mod 6 = 4)

let boolean m =
  if m < 2 then invalid_arg "Quadruple.boolean: m < 2";
  let v = 1 lsl m in
  (* Blocks are the 4-subsets {a,b,c,d} of GF(2)^m with a⊕b⊕c⊕d = 0;
     every triple {a,b,c} determines d = a⊕b⊕c uniquely, and d differs
     from a, b, c whenever a, b, c are distinct.  To emit each block once,
     keep only triples where d is the largest element. *)
  let blocks = ref [] in
  for a = 0 to v - 1 do
    for b = a + 1 to v - 1 do
      for c = b + 1 to v - 1 do
        let d = a lxor b lxor c in
        if d > c then blocks := [| a; b; c; d |] :: !blocks
      done
    done
  done;
  Block_design.make ~strength:3 ~v ~block_size:4 ~lambda:1
    (Array.of_list !blocks)

let one_factorization v =
  if v < 2 || v mod 2 <> 0 then invalid_arg "Quadruple.one_factorization: odd v";
  if v = 2 then [| [| [| 0; 1 |] |] |]
  else begin
    (* Round-robin: fix player v-1; in round j it plays j, and the others
       pair up as (j+i, j-i) mod (v-1). *)
    let m = v - 1 in
    Array.init m (fun j ->
        let pairs = ref [ Combin.Intset.of_array [| v - 1; j |] ] in
        for i = 1 to (v / 2) - 1 do
          let a = (j + i) mod m and b = (j - i + m) mod m in
          pairs := Combin.Intset.of_array [| a; b |] :: !pairs
        done;
        Array.of_list !pairs)
  end

let double (d : Block_design.t) =
  if d.strength <> 3 || d.block_size <> 4 || d.lambda <> 1 then
    invalid_arg "Quadruple.double: input is not an SQS";
  let v = d.v in
  (* Points of SQS(2v): (p, copy) encoded as p + copy*v. *)
  let enc p copy = p + (copy * v) in
  let blocks = ref [] in
  (* Type 1: both copies of every block of the input system. *)
  Array.iter
    (fun blk ->
      blocks := Array.map (fun p -> enc p 0) blk :: !blocks;
      blocks := Array.map (fun p -> enc p 1) blk :: !blocks)
    d.blocks;
  (* Type 2: for each one-factor F_j of K_v, all pairs-of-pairs taking one
     edge from copy 0 and one from copy 1. *)
  let factors = one_factorization v in
  Array.iter
    (fun factor ->
      Array.iter
        (fun e0 ->
          Array.iter
            (fun e1 ->
              let blk =
                Combin.Intset.of_array
                  [| enc e0.(0) 0; enc e0.(1) 0; enc e1.(0) 1; enc e1.(1) 1 |]
              in
              blocks := blk :: !blocks)
            factor)
        factor)
    factors;
  Block_design.make ~strength:3 ~v:(2 * v) ~block_size:4 ~lambda:1
    (Array.of_list !blocks)

(* Base systems found by exact-cover search, cached after first use.  Both
   searches complete in well under a second.  The mutex keeps the memo
   safe when designs are materialized from Engine.Pool tasks. *)
let searched_base = Hashtbl.create 4
let searched_mutex = Mutex.create ()

let base_orders = [ 10; 14 ]

let searched v =
  Mutex.lock searched_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock searched_mutex)
    (fun () ->
      match Hashtbl.find_opt searched_base v with
      | Some d -> d
      | None ->
          let d =
            match Packing_search.exact_steiner ~strength:3 ~v ~block_size:4 () with
            | Some d -> d
            | None -> failwith (Printf.sprintf "Quadruple: SQS(%d) search failed" v)
          in
          Hashtbl.add searched_base v d;
          d)

let rec constructible v =
  if not (admissible v) then false
  else if v = 4 then true
  else if v land (v - 1) = 0 then true (* power of two *)
  else if List.mem v base_orders then true
  else v mod 2 = 0 && constructible (v / 2)

let largest_constructible v =
  let rec go v' = if v' < 4 then None else if constructible v' then Some v' else go (v' - 1) in
  go v

let rec make v =
  if not (constructible v) then
    invalid_arg (Printf.sprintf "Quadruple.make: SQS(%d) not constructible" v);
  if v = 4 then
    Block_design.make ~strength:3 ~v:4 ~block_size:4 ~lambda:1 [| [| 0; 1; 2; 3 |] |]
  else if v land (v - 1) = 0 then begin
    let rec log2 x = if x = 1 then 0 else 1 + log2 (x / 2) in
    boolean (log2 v)
  end
  else if List.mem v base_orders then searched v
  else double (make (v / 2))
