type row = {
  n : int;
  b : int;
  k : int;
  lambda1 : int;
  simple1_pct : float option;
  lambda2 : int;
  simple2_pct : float option;
  combo_pct : float option;
}

let r = 3
let s = 3

let pct_of ~b ~pr value =
  if b = pr then None
  else Some (100.0 *. float_of_int (value - pr) /. float_of_int (b - pr))

let compute ?(ns = [ 31; 71; 257 ])
    ?(bs = [ 600; 1200; 2400; 4800; 9600; 19200; 38400 ]) ?ks () =
  List.concat_map
    (fun n ->
      let ks =
        match ks with
        | Some l -> l
        | None -> if n <= 31 then [ 3; 4; 5; 6 ] else if n <= 71 then [ 3; 4; 5; 6; 7 ] else [ 3; 4; 5; 6; 7; 8 ]
      in
      (* One Instance per n: levels and binomial tables shared by every
         (b, k) cell below. *)
      let base =
        Placement.Instance.make ~b:(List.hd bs) ~r ~s ~n ~k:(List.hd ks) ()
      in
      let simple_level x = (Placement.Instance.levels base).(x) in
      List.concat_map
        (fun b ->
          (* Minimal λ per level for hosting all b objects alone. *)
          let lambda_for x =
            let level = simple_level x in
            if level.Placement.Combo.cap_mu = 0 then 0
            else
              (b + level.Placement.Combo.cap_mu - 1)
              / level.Placement.Combo.cap_mu
              * level.Placement.Combo.mu
          in
          let lambda1 = lambda_for 1 and lambda2 = lambda_for 2 in
          List.map
            (fun k ->
              let inst = Placement.Instance.with_cell base ~b ~k in
              let pr = Placement.Instance.pr_avail inst in
              let lb_simple x lambda =
                if lambda = 0 then None
                else
                  Some
                    (Placement.Analysis.lb_avail_si_report
                       ~choose:(Placement.Instance.choose inst) ~b ~x ~lambda
                       ~k ~s ())
                      .Placement.Analysis.lb_clamped
              in
              let cfg = Placement.Instance.combo_config inst in
              {
                n;
                b;
                k;
                lambda1;
                simple1_pct =
                  Option.bind (lb_simple 1 lambda1) (fun v -> pct_of ~b ~pr v);
                lambda2;
                simple2_pct =
                  Option.bind (lb_simple 2 lambda2) (fun v -> pct_of ~b ~pr v);
                combo_pct = pct_of ~b ~pr cfg.Placement.Combo.lb;
              })
            ks)
        bs)
    ns

let print fmt =
  Format.fprintf fmt
    "Fig. 10: Simple(x, lambda) vs Combo for r=s=3, as %% of (b - prAvail)@.";
  let rows = compute () in
  let render = function None -> "=" | Some v -> Render.pct v in
  let by_n = List.sort_uniq compare (List.map (fun r -> r.n) rows) in
  List.iter
    (fun n ->
      Format.fprintf fmt "n=%d@." n;
      let mine = List.filter (fun r -> r.n = n) rows in
      let table_rows =
        List.map
          (fun r ->
            [
              string_of_int r.b;
              string_of_int r.k;
              string_of_int r.lambda1;
              render r.simple1_pct;
              string_of_int r.lambda2;
              render r.simple2_pct;
              render r.combo_pct;
            ])
          mine
      in
      Format.fprintf fmt "%s@."
        (Render.table
           ~headers:[ "b"; "k"; "l1"; "Simple(1)"; "l2"; "Simple(2)"; "Combo" ]
           ~rows:table_rows))
    by_n
