type adversary_row = {
  desc : string;
  s : int;
  k : int;
  greedy_failed : int;
  local_failed : int;
  exact_failed : int option;
}

let adversary_cases () =
  let sts = Designs.Steiner_triple.make 31 in
  let simple b = (Placement.Simple.of_design sts ~n:31 ~b).Placement.Simple.layout in
  let rng = Combin.Rng.create 0xAB1A in
  let random b s k =
    let inst = Placement.Instance.make ~b ~r:3 ~s ~n:31 ~k () in
    Placement.Instance.random_layout ~rng inst
  in
  [
    ("Simple(1,l) n=31 b=600", simple 600, 2, 3);
    ("Simple(1,l) n=31 b=600", simple 600, 2, 4);
    ("Simple(1,l) n=31 b=1200", simple 1200, 3, 4);
    ("Random n=31 b=600", random 600 2 3, 2, 3);
    ("Random n=31 b=600", random 600 2 4, 2, 4);
    ("Random n=31 b=1200", random 1200 3 4, 3, 4);
  ]

let adversary () =
  let rng = Combin.Rng.create 0xAB1B in
  List.map
    (fun (desc, layout, s, k) ->
      let greedy = Placement.Adversary.greedy layout ~s ~k in
      let local = Placement.Adversary.local_search ~rng layout ~s ~k in
      let exact = Placement.Adversary.exact layout ~s ~k in
      {
        desc;
        s;
        k;
        greedy_failed = greedy.Placement.Adversary.failed_objects;
        local_failed = local.Placement.Adversary.failed_objects;
        exact_failed =
          (if exact.Placement.Adversary.exact then
             Some exact.Placement.Adversary.failed_objects
           else None);
      })
    (adversary_cases ())

type random_row = {
  n : int;
  r : int;
  b : int;
  s : int;
  k : int;
  capped_max_load : int;
  uncapped_max_load : int;
  capped_avail : float;
  uncapped_avail : float;
}

let random ?(trials = 10) () =
  List.map
    (fun (n, r, b, s, k) ->
      let inst = Placement.Instance.make ~b ~r ~s ~n ~k () in
      let p = Placement.Instance.params inst in
      let run place =
        let loads = ref 0 and avails = ref [] in
        for trial = 1 to trials do
          let rng = Combin.Rng.create (0xAB2A + trial) in
          let layout = place ~rng p in
          loads := max !loads (Placement.Layout.max_load layout);
          let attack = Placement.Instance.attack ~rng inst layout in
          avails :=
            float_of_int (Placement.Instance.avail inst layout attack) :: !avails
        done;
        (!loads, Combin.Stats.mean (Array.of_list !avails))
      in
      let capped_max_load, capped_avail = run Placement.Random_placement.place in
      let uncapped_max_load, uncapped_avail =
        run Placement.Random_placement.place_unconstrained
      in
      {
        n;
        r;
        b;
        s;
        k;
        capped_max_load;
        uncapped_max_load;
        capped_avail;
        uncapped_avail;
      })
    [ (31, 3, 600, 2, 3); (71, 3, 1200, 2, 4); (71, 5, 600, 3, 4) ]

type load_row = {
  desc : string;
  n : int;
  b : int;
  r : int;
  mean_load : float;
  max_load : int;
  stddev_load : float;
  idle_nodes : int;
  mean_scatter : float;
}

let load_stats desc n b r layout =
  let loads = Placement.Layout.loads layout in
  let floats = Array.map float_of_int loads in
  {
    desc;
    n;
    b;
    r;
    mean_load = Combin.Stats.mean floats;
    max_load = Placement.Layout.max_load layout;
    stddev_load = Combin.Stats.stddev floats;
    idle_nodes = Array.fold_left (fun acc l -> if l = 0 then acc + 1 else acc) 0 loads;
    mean_scatter =
      Combin.Stats.mean
        (Array.map float_of_int (Placement.Layout.scatter_widths layout));
  }

let load () =
  List.concat_map
    (fun (n, r, s, b, k) ->
      let inst = Placement.Instance.make ~b ~r ~s ~n ~k () in
      let cfg = Placement.Instance.combo_config inst in
      let combo = Placement.Instance.combo_layout ~config:cfg inst in
      let rng = Combin.Rng.create 0xAB3A in
      let random = Placement.Instance.random_layout ~rng inst in
      let spread = Placement.Instance.combo_layout ~spread:true ~config:cfg inst in
      [
        load_stats (Printf.sprintf "combo n=%d r=%d s=%d" n r s) n b r combo;
        load_stats (Printf.sprintf "combo+spread n=%d r=%d s=%d" n r s) n b r spread;
        load_stats (Printf.sprintf "random n=%d r=%d s=%d" n r s) n b r random;
      ])
    [ (31, 3, 2, 600, 3); (71, 3, 2, 2400, 4); (71, 5, 3, 1200, 4) ]

type online_row = {
  phase : string;
  b : int;
  online_lb : int;
  offline_lb : int;
}

let online () =
  let rng = Combin.Rng.create 0xAB4A in
  let t = Placement.Adaptive.create ~n:71 ~r:3 ~s:2 ~k:4 () in
  let live = ref [] in
  let snap phase =
    {
      phase;
      b = Placement.Adaptive.size t;
      online_lb = Placement.Adaptive.lower_bound t;
      offline_lb = Placement.Adaptive.optimal_bound t;
    }
  in
  let add count = live := Placement.Adaptive.add_many t count @ !live in
  let remove count =
    for _ = 1 to count do
      match !live with
      | [] -> ()
      | _ ->
          let arr = Array.of_list !live in
          let victim = arr.(Combin.Rng.int rng (Array.length arr)) in
          Placement.Adaptive.remove t victim;
          live := List.filter (fun id -> id <> victim) !live
    done
  in
  add 700;
  let r1 = snap "grow to 700" in
  add 1700;
  let r2 = snap "grow to 2400" in
  remove 1200;
  let r3 = snap "shrink to 1200" in
  add 1200;
  let r4 = snap "regrow to 2400" in
  [ r1; r2; r3; r4 ]

let print_adversary fmt =
  Format.fprintf fmt
    "Ablation: adversary strength (failed objects; higher = stronger attack)@.";
  let rows =
    List.map
      (fun (r : adversary_row) ->
        [
          r.desc;
          string_of_int r.s;
          string_of_int r.k;
          string_of_int r.greedy_failed;
          string_of_int r.local_failed;
          (match r.exact_failed with
          | Some v -> string_of_int v
          | None -> "(truncated)");
        ])
      (adversary ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "placement"; "s"; "k"; "greedy"; "greedy+swap"; "exact" ]
       ~rows)

let print_random fmt =
  Format.fprintf fmt
    "Ablation: load-capped Random (Def. 4) vs uncapped Random'@.";
  let rows =
    List.map
      (fun (r : random_row) ->
        [
          string_of_int r.n;
          string_of_int r.r;
          string_of_int r.b;
          string_of_int r.s;
          string_of_int r.k;
          string_of_int r.capped_max_load;
          string_of_int r.uncapped_max_load;
          Render.f2 r.capped_avail;
          Render.f2 r.uncapped_avail;
        ])
      (random ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:
         [ "n"; "r"; "b"; "s"; "k"; "maxload(cap)"; "maxload(no)"; "avail(cap)"; "avail(no)" ]
       ~rows)

let print_load fmt =
  Format.fprintf fmt
    "Ablation: per-node load of Combo vs Random placements (Observation 2)@.";
  let rows =
    List.map
      (fun (r : load_row) ->
        [
          r.desc;
          string_of_int r.b;
          Render.f2 r.mean_load;
          string_of_int r.max_load;
          Render.f2 r.stddev_load;
          string_of_int r.idle_nodes;
          Render.f2 r.mean_scatter;
        ])
      (load ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "placement"; "b"; "mean"; "max"; "stddev"; "idle nodes"; "scatter" ]
       ~rows)

let print_online fmt =
  Format.fprintf fmt
    "Ablation: online (adaptive) vs offline Combo through a churn cycle@.";
  let rows =
    List.map
      (fun (r : online_row) ->
        [
          r.phase;
          string_of_int r.b;
          string_of_int r.online_lb;
          string_of_int r.offline_lb;
          (if r.online_lb = r.offline_lb then "match" else "behind");
        ])
      (online ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "phase"; "b"; "online lb"; "offline lb"; "" ]
       ~rows)
