(** Shared fan-out for experiment drivers: map a parameter grid through
    an optional {!Engine.Pool}.

    [map ?pool f points] is [List.map f points]; with [pool] the points
    run as pool tasks (order preserved, results bit-identical — see
    {!Engine.Pool.parallel_map}).  Point functions must not use the same
    pool internally: keep inner layers (adversary, Monte-Carlo)
    sequential and parallelize each driver at exactly one level. *)

val map :
  ?pool:Engine.Pool.t -> ?span:Telemetry.Span.t -> ('a -> 'b) -> 'a list -> 'b list
(** [span], when given, times each grid point (per-cell wall time shows
    up under the span's path in [--metrics] output; cell {e counts} are
    deterministic, cell durations are not). *)

val cell_span : string -> Telemetry.Span.t
(** [cell_span "fig2"] is the conventional per-cell span for a driver:
    path ["experiments/fig2/cell"], Stable call count. *)
