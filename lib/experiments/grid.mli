(** Shared fan-out for experiment drivers: map a parameter grid through
    an optional {!Engine.Pool}.

    [map ?pool f points] is [List.map f points]; with [pool] the points
    run as pool tasks (order preserved, results bit-identical — see
    {!Engine.Pool.parallel_map}).  Point functions must not use the same
    pool internally: keep inner layers (adversary, Monte-Carlo)
    sequential and parallelize each driver at exactly one level. *)

val map : ?pool:Engine.Pool.t -> ('a -> 'b) -> 'a list -> 'b list
