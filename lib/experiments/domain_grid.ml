type row = {
  n : int;
  r : int;
  s : int;
  b : int;
  racks : int;
  j : int;
  covered : int;
  rack_avail : int;
  rack_exact : bool;
  node_avail : int;
  node_exact : bool;
  lb : int;
}

let span = Grid.cell_span "domain_grid"

(* The Fig. 4 concrete designs (the baseline cells), with rack counts
   chosen so the racks are small multiples of r — 31 nodes in 8 racks of
   3–4, 71 in 12 racks of 5–6. *)
let cells =
  [ (31, 3, 2, 3, 600, 8); (31, 3, 3, 4, 600, 8); (71, 3, 2, 4, 2400, 12) ]

let compute ?pool () =
  List.concat
    (Grid.map ~span
       (fun (n, r, s, k, b, racks) ->
         (* The adversaries parallelize internally; the cells stay
            sequential so Engine pools are never nested. *)
         let inst = Placement.Instance.make ~b ~r ~s ~n ~k () in
         let layout = Placement.Instance.combo_layout inst in
         let tree = Topology.Build.partition ~n ~domains:racks () in
         let lambda = Placement.Layout.max_load layout in
         List.map
           (fun j ->
             let rack_atk = Topology.Adversary.attack ?pool layout ~s tree ~level:1 ~j in
             let covered = Array.length rack_atk.Topology.Adversary.failed_nodes in
             let rng = Combin.Rng.create (0xD0 + n + j) in
             let node_atk =
               Placement.Adversary.attack ?pool ~rng layout ~s ~k:covered
             in
             let lb =
               (Topology.Bound.si_report
                  ~choose:(Placement.Instance.choose inst)
                  ~b ~x:0 ~lambda ~s tree ~level:1 ~j)
                 .Topology.Bound.si.Placement.Analysis.lb_clamped
             in
             {
               n;
               r;
               s;
               b;
               racks;
               j;
               covered;
               rack_avail = Topology.Adversary.avail layout rack_atk;
               rack_exact = rack_atk.Topology.Adversary.exact;
               node_avail =
                 Placement.Adversary.avail layout ~s node_atk;
               node_exact = node_atk.Placement.Adversary.exact;
               lb;
             })
           [ 1; 2 ])
       cells)

let print ?pool fmt =
  Format.fprintf fmt
    "Domain grid: worst j racks vs worst k = covered nodes (combo layouts)@.";
  Format.fprintf fmt
    "(rack adversary is the node adversary restricted to whole racks;@.";
  Format.fprintf fmt
    " lb = Lemma 2 at x=0, lambda = max load, k = covered nodes)@.";
  let mark avail exact = Printf.sprintf "%d%s" avail (if exact then "" else "~") in
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          string_of_int r.r;
          string_of_int r.s;
          string_of_int r.b;
          string_of_int r.racks;
          string_of_int r.j;
          string_of_int r.covered;
          mark r.rack_avail r.rack_exact;
          mark r.node_avail r.node_exact;
          string_of_int r.lb;
        ])
      (compute ?pool ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:
         [ "n"; "r"; "s"; "b"; "racks"; "j"; "covered"; "rack adv"; "node adv"; "lb" ]
       ~rows);
  Format.fprintf fmt "(~ marks heuristic/truncated adversary results)@."
