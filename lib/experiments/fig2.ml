type point = {
  s : int;
  k : int;
  b : int;
  lambda : int;
  avail : int;
  lb : int;
  gap : int;
  exact : bool;
}

let n = 71
let r = 3
let x = 1

let sk_pairs = [ (2, 2); (2, 3); (2, 4); (2, 5); (3, 3); (3, 4); (3, 5) ]

let compute ?pool ?(bs = [ 600; 1200; 2400; 4800; 9600 ]) () =
  (* One STS(69) shared across all points; Simple.of_design recopies it
     per b.  Layouts and the per-(b, s, k) Instances are materialized up
     front (instances are immutable, so the shared tables cross domains
     safely), then the grid fans out through the pool — the adversary
     inside each point stays sequential (pools reject nesting). *)
  let design = Designs.Steiner_triple.make 69 in
  let base = Placement.Instance.make ~b:(List.hd bs) ~r ~s:2 ~n ~k:2 () in
  let grid =
    List.concat_map
      (fun b ->
        let simple = Placement.Simple.of_design design ~n ~b in
        List.map
          (fun (s, k) ->
            let inst =
              Placement.Instance.with_params base
                (Placement.Params.make ~b ~r ~s ~n ~k)
            in
            (inst, simple))
          sk_pairs)
      bs
  in
  Grid.map ?pool ~span:(Grid.cell_span "fig2")
    (fun (inst, simple) ->
      let { Placement.Params.b; s; k; _ } = Placement.Instance.params inst in
      let layout = simple.Placement.Simple.layout in
      let attack = Placement.Instance.attack inst layout in
      let avail = Placement.Instance.avail inst layout attack in
      let lb = Placement.Simple.lower_bound simple ~k ~s in
      {
        s;
        k;
        b;
        lambda = simple.Placement.Simple.lambda;
        avail;
        lb;
        gap = avail - lb;
        exact = attack.Placement.Adversary.exact;
      })
    grid

let print ?pool fmt =
  let points = compute ?pool () in
  Format.fprintf fmt
    "Fig. 2: Avail(pi) - lbAvail_si(x,lambda) for n=%d, x=%d, r=%d@." n x r;
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.s;
          string_of_int p.k;
          string_of_int p.b;
          string_of_int p.lambda;
          string_of_int p.avail;
          string_of_int p.lb;
          string_of_int p.gap;
          (if p.exact then "exact" else "heuristic");
        ])
      points
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "s"; "k"; "b"; "lambda"; "Avail"; "lbAvail"; "gap"; "adversary" ]
       ~rows)
