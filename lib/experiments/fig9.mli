(** Fig. 9: the headline Combo-vs-Random comparison tables.

    For n ∈ {71, 257}, r ∈ {2..5}, s ∈ {2..r}, k ∈ {s..7} (n=71) or
    {s..8} (n=257), b doubling from 600 to 38400, each cell is

    (lbAvail_co(⟨λx⟩) − prAvail_rnd) / (b − prAvail_rnd) · 100

    — the fraction of Random's probable losses that the Combo placement
    provably saves (positive: Combo wins; 0: tie; negative: Random wins).
    ⟨λx⟩ is optimized by the Sec. III-B1 DP for each (b, k). *)

type cell = {
  b : int;
  k : int;
  lb : int;
  pr_avail : int;
  pct : float option;  (** None when b = prAvail (no possible improvement) *)
}

type table = { n : int; r : int; s : int; cells : cell list }

val compute :
  ?pool:Engine.Pool.t -> ?ns:int list -> ?bs:int list -> unit -> table list
(** With [pool], each (n, r, s) table is computed as a pool task (the
    per-table level set is built inside the task). *)

val cell_value :
  n:int -> r:int -> s:int -> k:int -> b:int -> cell
(** One cell (exposed for tests). *)

val print : ?pool:Engine.Pool.t -> Format.formatter -> unit
