(** Node adversary vs rack (domain) adversary on the Fig. 4 concrete
    designs.

    Not a paper artefact: the paper's adversary fails any [k] nodes;
    real clusters fail in racks.  This grid puts the two on one axis —
    for each design cell, partition the nodes into racks, let the
    domain adversary ({!Topology.Adversary}) pick the worst [j] racks,
    and compare with the node adversary given the same node budget
    ([k] = the nodes those racks cover, {!Topology.Bound}'s refined
    reduction).  The gap is the price of correlation: how much damage
    the rack structure denies an adversary who must fail whole racks. *)

type row = {
  n : int;
  r : int;
  s : int;
  b : int;
  racks : int;  (** rack count of the {!Topology.Build.partition} tree *)
  j : int;  (** rack budget of the domain adversary *)
  covered : int;  (** nodes in the worst-case [j] racks (refined K) *)
  rack_avail : int;  (** domain-adversary availability *)
  rack_exact : bool;
  node_avail : int;  (** node-adversary availability at [k = covered] *)
  node_exact : bool;
  lb : int;  (** Lemma 2 at x=0, λ = max load, k = covered *)
}

val compute : ?pool:Engine.Pool.t -> unit -> row list

val print : ?pool:Engine.Pool.t -> Format.formatter -> unit
