type point = {
  n : int;
  b : int;
  k_configured : int;
  k' : int;
  lb_configured : int;
  lb_reconfigured : int;
  ratio_pct : float;
}

let compute ?(r = 5) ?(s = 3) ?(k = 6)
    ?(cases = [ (31, 4800); (71, 1200); (257, 9600) ])
    ?(k's = [ 4; 5; 6; 7; 8 ]) () =
  List.concat_map
    (fun (n, b) ->
      (* One Instance per (n, b) case: the level set and binomial tables
         are shared by the configured plan and every k' re-plan. *)
      let base = Placement.Instance.make ~b ~r ~s ~n ~k () in
      let choose = Placement.Instance.choose base in
      let configured = Placement.Instance.combo_config base in
      List.map
        (fun k' ->
          let reconfigured =
            Placement.Instance.combo_config
              (Placement.Instance.with_cell base ~b ~k:k')
          in
          let lb_configured = Placement.Combo.lb_avail_co ~choose configured ~k:k' in
          let lb_reconfigured =
            Placement.Combo.lb_avail_co ~choose reconfigured ~k:k'
          in
          {
            n;
            b;
            k_configured = k;
            k';
            lb_configured;
            lb_reconfigured;
            ratio_pct =
              (if lb_reconfigured = 0 then 100.0
               else
                 100.0 *. float_of_int lb_configured
                 /. float_of_int lb_reconfigured);
          })
        k's)
    cases

let print fmt =
  let points = compute () in
  Format.fprintf fmt
    "Fig. 3: lbAvail_co of k=6-configured Combo vs k'-configured, r=5 s=3@.";
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.n;
          string_of_int p.b;
          string_of_int p.k';
          string_of_int p.lb_configured;
          string_of_int p.lb_reconfigured;
          Render.f2 p.ratio_pct;
        ])
      points
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "n"; "b"; "k'"; "lb(cfg k=6)@k'"; "lb(cfg k')@k'"; "ratio %" ]
       ~rows)
