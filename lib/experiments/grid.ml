let map ?pool ?span f xs =
  let f =
    match span with
    | None -> f
    | Some sp -> fun x -> Telemetry.Span.time sp (fun () -> f x)
  in
  let arr = Array.of_list xs in
  let out =
    match pool with
    | Some p -> Engine.Pool.parallel_map p f arr
    | None -> Array.map f arr
  in
  Array.to_list out

let cell_span name =
  Telemetry.Registry.span (Printf.sprintf "experiments/%s/cell" name)
