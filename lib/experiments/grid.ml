let map ?pool f xs =
  let arr = Array.of_list xs in
  let out =
    match pool with
    | Some p -> Engine.Pool.parallel_map p f arr
    | None -> Array.map f arr
  in
  Array.to_list out
