type point = {
  n : int;
  r : int;
  k : int;
  lemma4_fraction : float;
  pr_avail_fraction : float;
  simple0_fraction : float;
      (** Appendix A: the s = 1 Combo degenerates to Simple(0, λ0); its
          lbAvail as a fraction of b — the paper reports Random slightly
          outperforming it. *)
}

let compute ?(b = 38400) () =
  List.concat_map
    (fun (n, r) ->
      List.map
        (fun k ->
          let p = Placement.Params.make ~b ~r ~s:1 ~n ~k in
          let cfg = Placement.Combo.optimize p in
          let rnd = Placement.Random_analysis.report p in
          let lemma4 =
            match rnd.Placement.Random_analysis.lemma4_upper with
            | Some u -> u /. float_of_int b
            | None -> invalid_arg "fig11: Lemma 4 requires s = 1 and 2k < n"
          in
          {
            n;
            r;
            k;
            lemma4_fraction = lemma4;
            pr_avail_fraction = rnd.Placement.Random_analysis.fraction;
            simple0_fraction =
              float_of_int cfg.Placement.Combo.lb /. float_of_int b;
          })
        (List.init 10 (fun i -> i + 1)))
    [ (71, 3); (71, 5); (257, 3); (257, 5) ]

let print fmt =
  let points = compute () in
  Format.fprintf fmt
    "Fig. 11: Lemma 4 bound (1-1/b)^(k*floor(l)) vs prAvail_rnd/b, s=1, b=38400@.";
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.n;
          string_of_int p.r;
          string_of_int p.k;
          Render.f4 p.lemma4_fraction;
          Render.f4 p.pr_avail_fraction;
          Render.f4 p.simple0_fraction;
        ])
      points
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "n"; "r"; "k"; "Lemma4 bound"; "prAvail/b"; "Simple(0,l0) lb/b" ]
       ~rows)
