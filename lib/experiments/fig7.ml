type point = {
  n : int;
  r : int;
  s : int;
  k : int;
  b : int;
  pr_avail : int;
  avg_avail : float;
  error_pct : float;
}

let default_cases = [ (31, 5, 3, [ 3; 4; 5 ]); (71, 5, 2, [ 2; 3; 4; 5 ]) ]

let compute ?pool ?(trials = 20)
    ?(bs = [ 150; 300; 600; 1200; 2400; 4800; 9600 ]) ?(cases = default_cases)
    () =
  (* Each (n, r, s, k, b) point owns an explicitly seeded RNG, so the grid
     fans out through the pool with bit-identical results; the trials and
     the per-trial adversary inside a point stay sequential.  One Instance
     per (n, r, s) case is built up front and its cells derived with
     with_cell — instances are immutable, so sharing the cached tables
     across pool domains is safe. *)
  let grid =
    List.concat_map
      (fun (n, r, s, ks) ->
        let base = Placement.Instance.make ~b:(List.hd bs) ~r ~s ~n ~k:(List.hd ks) () in
        List.concat_map
          (fun k -> List.map (fun b -> Placement.Instance.with_cell base ~b ~k) bs)
          ks)
      cases
  in
  Grid.map ?pool ~span:(Grid.cell_span "fig7")
    (fun inst ->
      let p = Placement.Instance.params inst in
      let { Placement.Params.n; r; s; k; b } = p in
      let rng = Combin.Rng.create (0xF16 + (1000 * n) + (10 * k) + b) in
      let mc = Dsim.Montecarlo.avg_avail_random ~rng ~trials p in
      let pr_avail = Placement.Instance.pr_avail inst in
      {
        n;
        r;
        s;
        k;
        b;
        pr_avail;
        avg_avail = mc.Dsim.Montecarlo.mean;
        error_pct =
          (if mc.Dsim.Montecarlo.mean = 0.0 then 0.0
           else
             100.0
             *. (float_of_int pr_avail -. mc.Dsim.Montecarlo.mean)
             /. mc.Dsim.Montecarlo.mean);
      })
    grid

let print ?pool ?trials ?bs fmt =
  let points = compute ?pool ?trials ?bs () in
  Format.fprintf fmt
    "Fig. 7: prAvail_rnd - avgAvail_rnd as %% of avgAvail_rnd (20 trials)@.";
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.n;
          string_of_int p.r;
          string_of_int p.s;
          string_of_int p.k;
          string_of_int p.b;
          string_of_int p.pr_avail;
          Render.f2 p.avg_avail;
          Render.f2 p.error_pct;
        ])
      points
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:[ "n"; "r"; "s"; "k"; "b"; "prAvail"; "avgAvail"; "err %" ]
       ~rows)
