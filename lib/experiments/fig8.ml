type point = { s : int; n : int; r : int; k : int; fraction : float }

let curves_for_s s =
  List.filter
    (fun (_, r) -> r >= s)
    [ (71, 3); (71, 5); (257, 3); (257, 5) ]

let compute ?(b = 38400) () =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun (n, r) ->
          List.filter_map
            (fun k ->
              if k < s then None
              else begin
                let p = Placement.Params.make ~b ~r ~s ~n ~k in
                let rnd = Placement.Random_analysis.report p in
                Some { s; n; r; k; fraction = rnd.Placement.Random_analysis.fraction }
              end)
            (List.init 10 (fun i -> i + 1)))
        (curves_for_s s))
    [ 1; 2; 3; 4; 5 ]

let print fmt =
  let points = compute () in
  Format.fprintf fmt "Fig. 8: prAvail_rnd / b for b=38400@.";
  List.iter
    (fun s ->
      Format.fprintf fmt "s = %d@." s;
      let ks = List.init 10 (fun i -> i + 1) in
      let curves = curves_for_s s in
      let rows =
        List.filter_map
          (fun k ->
            if k < s then None
            else
              Some
                (string_of_int k
                :: List.map
                     (fun (n, r) ->
                       match
                         List.find_opt
                           (fun p -> p.s = s && p.n = n && p.r = r && p.k = k)
                           points
                       with
                       | Some p -> Render.f4 p.fraction
                       | None -> "-")
                     curves))
          ks
      in
      Format.fprintf fmt "%s@."
        (Render.table
           ~headers:
             ("k"
             :: List.map (fun (n, r) -> Printf.sprintf "n=%d,r=%d" n r) curves)
           ~rows))
    [ 1; 2; 3; 4; 5 ]
