type cell = {
  b : int;
  k : int;
  lb : int;
  pr_avail : int;
  pct : float option;
}

type table = { n : int; r : int; s : int; cells : cell list }

let cell inst =
  let p = Placement.Instance.params inst in
  let b = p.Placement.Params.b in
  let cfg = Placement.Instance.combo_config inst in
  let pr = Placement.Instance.pr_avail inst in
  let pct =
    if b = pr then None
    else Some (100.0 *. float_of_int (cfg.Placement.Combo.lb - pr) /. float_of_int (b - pr))
  in
  { b; k = p.Placement.Params.k; lb = cfg.Placement.Combo.lb; pr_avail = pr; pct }

let cell_value ~n ~r ~s ~k ~b = cell (Placement.Instance.make ~b ~r ~s ~n ~k ())

let default_bs = [ 600; 1200; 2400; 4800; 9600; 19200; 38400 ]

let compute ?pool ?(ns = [ 71; 257 ]) ?(bs = default_bs) () =
  (* One pool task per (n, r, s) table; the Instance — level set plus
     binomial tables, shared by every cell of a table but by nothing
     else — is built once inside the task (immutable, so it could even
     cross domains; the old cross-call Hashtbl cache could not) and the
     b×k grid is derived with O(1) with_cell. *)
  let specs =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun r -> List.map (fun s -> (n, r, s)) (List.init (r - 1) (fun i -> i + 2)))
          [ 2; 3; 4; 5 ])
      ns
  in
  Grid.map ?pool ~span:(Grid.cell_span "fig9")
    (fun (n, r, s) ->
      let k_max = if n <= 71 then 7 else 8 in
      let base = Placement.Instance.make ~b:(List.hd bs) ~r ~s ~n ~k:s () in
      let cells =
        List.concat_map
          (fun b ->
            List.map
              (fun k -> cell (Placement.Instance.with_cell base ~b ~k))
              (List.init (k_max - s + 1) (fun i -> s + i)))
          bs
      in
      { n; r; s; cells })
    specs

let print_table fmt t =
  Format.fprintf fmt "n=%d r=%d s=%d@." t.n t.r t.s;
  let ks =
    List.sort_uniq compare (List.map (fun c -> c.k) t.cells)
  in
  let bs = List.sort_uniq compare (List.map (fun c -> c.b) t.cells) in
  let rows =
    List.map
      (fun b ->
        string_of_int b
        :: List.map
             (fun k ->
               match List.find_opt (fun c -> c.b = b && c.k = k) t.cells with
               | None -> "-"
               | Some { pct = None; _ } -> "="
               | Some { pct = Some v; _ } -> Render.pct v)
             ks)
      bs
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:("b \\ k" :: List.map string_of_int ks)
       ~rows)

let print ?pool fmt =
  Format.fprintf fmt
    "Fig. 9: (lbAvail_co - prAvail_rnd) as %% of (b - prAvail_rnd); \
     '=' means prAvail = b (nothing to improve)@.";
  List.iter (print_table fmt) (compute ?pool ())
