(** Fig. 2: tightness of Lemma 2's lower bound.

    For n = 71, x = 1, r = 3 (Simple(1, λ) placements built from STS(69)),
    plots Avail(π) − lbAvail_si(x, λ) against b for
    (s, k) ∈ {2} × {2..5} ∪ {3} × {3..5}.  Avail(π) is measured by the
    worst-case adversary (exact when affordable, local search otherwise —
    see DESIGN.md §3). *)

type point = {
  s : int;
  k : int;
  b : int;
  lambda : int;
  avail : int;  (** adversary-measured Avail(π) (upper bound if inexact) *)
  lb : int;  (** lbAvail_si(x, λ) *)
  gap : int;  (** avail − lb, the plotted quantity *)
  exact : bool;
}

val compute : ?pool:Engine.Pool.t -> ?bs:int list -> unit -> point list
(** With [pool], the (b, s, k) grid points run as pool tasks; output is
    bit-identical to the sequential run. *)

val print : ?pool:Engine.Pool.t -> Format.formatter -> unit
