type curve = {
  r : int;
  x : int;
  max_mu : int;
  cdf : (float * float) list;
}

let curve ~r ~x ~max_mu ~n_lo ~n_hi =
  let cdf =
    Designs.Chunking.gap_cdf ~max_mu ~max_chunks:3 ~strength:(x + 1)
      ~block_size:r ~n_lo ~n_hi ()
  in
  { r; x; max_mu; cdf }

let compute_fig5 ?pool ?(n_lo = 50) ?(n_hi = 800) () =
  let specs =
    List.concat_map
      (fun r -> List.init r (fun x -> (r, x, 1)))
      [ 2; 3; 4; 5 ]
  in
  Grid.map ?pool ~span:(Grid.cell_span "fig5")
    (fun (r, x, max_mu) -> curve ~r ~x ~max_mu ~n_lo ~n_hi)
    specs

let compute_fig6 ?pool ?(n_lo = 50) ?(n_hi = 800) () =
  let specs =
    List.concat_map
      (fun max_mu -> List.map (fun x -> (5, x, max_mu)) [ 2; 3 ])
      [ 5; 10 ]
  in
  Grid.map ?pool ~span:(Grid.cell_span "fig6")
    (fun (r, x, max_mu) -> curve ~r ~x ~max_mu ~n_lo ~n_hi)
    specs

let fraction_below c threshold =
  List.fold_left
    (fun acc (gap, frac) -> if gap <= threshold then max acc frac else acc)
    0.0 c.cdf

(* Summarize each CDF at a fixed grid of gap thresholds so the curves are
   comparable to the paper's plots at a glance. *)
let thresholds = [ 0.0; 0.05; 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ]

let print_curves fmt title curves =
  Format.fprintf fmt "%s@." title;
  let rows =
    List.map
      (fun c ->
        Printf.sprintf "r=%d x=%d mu<=%d" c.r c.x c.max_mu
        :: List.map (fun t -> Render.f2 (fraction_below c t)) thresholds)
      curves
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:
         ("curve / frac(n) with gap <="
         :: List.map (fun t -> Render.f2 t) thresholds)
       ~rows)

let print_fig5 ?pool fmt =
  print_curves fmt
    "Fig. 5: capacity-gap CDFs (mu=1, m<=3 chunks, n in [50,800])"
    (compute_fig5 ?pool ())

let print_fig6 ?pool fmt =
  print_curves fmt
    "Fig. 6: capacity-gap CDFs for r=5, x in {2,3}, allowing mu <= 5 / 10"
    (compute_fig6 ?pool ())
