type row = {
  n : int;
  r : int;
  s : int;
  k : int;
  b : int;
  combo_lb : int;
  combo_avail : int;
  random_avail : int;
  copyset_avail : int;
  copyset_wide_avail : int;
}

let attack_avail inst layout rng =
  Placement.Instance.avail inst layout (Placement.Instance.attack ~rng inst layout)

let compute () =
  List.map
    (fun (n, r, s, k, b) ->
      let inst = Placement.Instance.make ~b ~r ~s ~n ~k () in
      let rng = Combin.Rng.create (0xC0 + n + k) in
      let cfg = Placement.Instance.combo_config inst in
      let combo_layout = Placement.Instance.combo_layout ~config:cfg inst in
      let random_layout = Placement.Instance.random_layout ~rng inst in
      let narrow = snd (Placement.Instance.copyset ~rng inst) in
      let wide =
        snd (Placement.Instance.copyset ~rng ~scatter_width:(4 * (r - 1)) inst)
      in
      {
        n;
        r;
        s;
        k;
        b;
        combo_lb = cfg.Placement.Combo.lb;
        combo_avail = attack_avail inst combo_layout rng;
        random_avail = attack_avail inst random_layout rng;
        copyset_avail = attack_avail inst narrow rng;
        copyset_wide_avail = attack_avail inst wide rng;
      })
    [
      (31, 3, 2, 3, 600);
      (31, 3, 2, 4, 600);
      (31, 3, 3, 4, 600);
      (71, 3, 2, 4, 2400);
      (71, 3, 3, 5, 2400);
      (71, 5, 3, 5, 1200);
    ]

let print fmt =
  Format.fprintf fmt
    "Baseline: worst-case availability of copyset replication vs Combo/Random@.";
  Format.fprintf fmt
    "(copyset = scatter width 2(r-1); copyset-wide = 4(r-1))@.";
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          string_of_int r.r;
          string_of_int r.s;
          string_of_int r.k;
          string_of_int r.b;
          string_of_int r.combo_lb;
          string_of_int r.combo_avail;
          string_of_int r.random_avail;
          string_of_int r.copyset_avail;
          string_of_int r.copyset_wide_avail;
        ])
      (compute ())
  in
  Format.fprintf fmt "%s@."
    (Render.table
       ~headers:
         [ "n"; "r"; "s"; "k"; "b"; "combo lb"; "combo"; "random"; "copyset"; "copyset-wide" ]
       ~rows)
