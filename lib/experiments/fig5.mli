(** Figs 5 and 6: capacity-gap CDFs over system sizes n ∈ [50, 800].

    Fig. 5: μ = 1, up to m = 3 chunks, for r ∈ {2..5} and x ∈ [0, r-1).
    Fig. 6: the difficult r = 5, x ∈ {2, 3} cases re-run with μ ≤ 5 and
    μ ≤ 10 (our μ > 1 engine is the PGL(2,q)-orbit family for x = 2; see
    DESIGN.md §3 on the thinner x = 3 catalogue). *)

type curve = {
  r : int;
  x : int;
  max_mu : int;
  cdf : (float * float) list;  (** (gap, fraction of n with gap ≤ it) *)
}

val compute_fig5 :
  ?pool:Engine.Pool.t -> ?n_lo:int -> ?n_hi:int -> unit -> curve list
val compute_fig6 :
  ?pool:Engine.Pool.t -> ?n_lo:int -> ?n_hi:int -> unit -> curve list
(** With [pool], each (r, x, μ) curve is computed as a pool task. *)

val fraction_below : curve -> float -> float
(** Fraction of system sizes with gap ≤ the given threshold. *)

val print_fig5 : ?pool:Engine.Pool.t -> Format.formatter -> unit
val print_fig6 : ?pool:Engine.Pool.t -> Format.formatter -> unit
