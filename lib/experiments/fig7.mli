(** Fig. 7: accuracy of prAvail_rnd (Theorem 2's limit) against empirical
    Random placements.

    For (n=31, r=5, s=3) and (n=71, r=5, s=2), plots
    (prAvail_rnd − avgAvail_rnd) as a percentage of avgAvail_rnd, where
    avgAvail_rnd averages 20 simulated Random placements each subjected to
    a worst-case k-node failure. *)

type point = {
  n : int;
  r : int;
  s : int;
  k : int;
  b : int;
  pr_avail : int;
  avg_avail : float;
  error_pct : float;  (** (prAvail − avgAvail) / avgAvail · 100 *)
}

val compute :
  ?pool:Engine.Pool.t -> ?trials:int -> ?bs:int list ->
  ?cases:(int * int * int * int list) list ->
  unit -> point list
(** Defaults follow the paper: trials = 20,
    bs = {150, 300, ..., 9600},
    cases = [(31,5,3,[3;4;5]); (71,5,2,[2;3;4;5])] as (n,r,s,ks).
    With [pool], the (n,r,s,k,b) points run as pool tasks with unchanged
    per-point seeds, so output is bit-identical at any pool size. *)

val print :
  ?pool:Engine.Pool.t -> ?trials:int -> ?bs:int list ->
  Format.formatter -> unit
