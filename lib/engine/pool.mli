(** A fixed-size domain pool with deterministic data-parallel combinators.

    Built directly on OCaml 5 [Domain]s (no domainslib): [create] spawns
    [domains - 1] worker domains that sleep on a condition variable; each
    batch is drained by the workers *and* the calling domain.  All
    combinators place results by index, so the output never depends on
    how tasks were scheduled — running at [~domains:1] (the reference
    sequential path) and [~domains:n] is bit-identical, provided the
    task function itself is deterministic.  The seed-splitting discipline
    for stochastic tasks lives in {!Combin.Rng.split_n}: split one RNG
    per task *before* dispatching, never inside tasks.

    Pools are not reentrant: calling a combinator from inside a task of
    the same pool (or from two domains at once) raises {!Nested_use}
    instead of deadlocking.  Layers that compose (e.g. a Monte-Carlo
    harness whose trials each run an adversary) must parallelize at
    exactly one level and leave the inner layer sequential. *)

type t

exception Nested_use
(** Raised when a combinator is invoked while another batch is in flight
    on the same pool — in particular from inside one of its own tasks. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (clamped to
    at least 1 total; default {!default_domains}).  [~domains:1] spawns
    nothing and runs every combinator inline. *)

val domains : t -> int
(** Total parallelism including the calling domain. *)

val shutdown : t -> unit
(** Terminate and join the workers.  The pool must not be used after. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map t f xs] is [Array.map f xs], evaluated in contiguous
    chunks across the pool.  Result order follows input order.  If any
    application raises, the first (lowest-indexed) exception is re-raised
    in the caller after all tasks have settled. *)

val parallel_steal : t -> f:(worker:int -> 'a -> unit) -> 'a array -> int
(** [parallel_steal t ~f tasks] runs [f ~worker tasks.(i)] for every [i]
    through per-slot work-stealing deques ({!Deque}): task [i] is dealt
    to deque [i mod domains], each slot drains its own deque in order
    and then steals from the back of its neighbours'.  Returns the
    number of steals (timing-dependent; also added to the Volatile
    [engine/pool/steals] counter).

    [worker] is the slot index in [0, domains) — stable across all calls
    [f] receives on that slot, so tasks may keep expensive scratch state
    (a kernel copy, a reusable heap) in per-slot cells.  Which slot runs
    which task is timing-dependent: determinism of the *result* must
    come from [f] writing task-indexed outputs whose values do not
    depend on [worker] or on execution order (see {!Bound} for the
    monotone-incumbent pattern this enables).  At [~domains:1] the tasks
    run on the calling domain in index order, which is the sequential
    reference schedule.  If an application raises, the first exception
    (by slot scan order) is re-raised after the batch settles. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** [parallel_init t n f] is [Array.init n f] through {!parallel_map}. *)

val parallel_reduce_max : t -> score:('b -> int) -> ('a -> 'b) -> 'a array -> 'b
(** [parallel_reduce_max t ~score f xs] maps [f] over [xs] in parallel
    and returns the image with the greatest [score]; ties go to the
    lowest index, so the winner is deterministic.  Raises
    [Invalid_argument] on an empty array. *)
