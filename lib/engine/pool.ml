exception Nested_use

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue grows or on shutdown *)
  batch_done : Condition.t;  (* signalled when a batch's last task ends *)
  mutable queue : (unit -> unit) list;
  mutable pending : int;  (* tasks of the current batch not yet finished *)
  mutable live : bool;
  mutable workers : unit Domain.t list;
  busy : bool Atomic.t;  (* a batch is in flight: nested use is rejected *)
  slot_tasks : Telemetry.Counter.t array;  (* per-domain task counts *)
}

(* Scheduling metrics are volatile by construction: chunk counts and
   per-domain attribution depend on -j and on timing, so none of them may
   claim the Stable (bit-identical across -j) contract. *)
let m_batches = Telemetry.Registry.counter ~kind:Volatile "engine/pool/batches"
let m_steals = Telemetry.Registry.counter ~kind:Volatile "engine/pool/steals"
let m_tasks = Telemetry.Registry.counter ~kind:Volatile "engine/pool/tasks"
let m_busy_ns = Telemetry.Registry.counter ~kind:Volatile "engine/pool/busy_ns"
let m_batch = Telemetry.Registry.span ~kind:Volatile "engine/pool/batch"
let m_util = Telemetry.Registry.gauge "engine/pool/utilization"

let slot_counter i =
  Telemetry.Registry.counter ~kind:Volatile
    (Printf.sprintf "engine/pool/domain/%d/tasks" i)

(* Run one queued task on behalf of domain slot [slot] (0 = the caller,
   1.. = spawned workers), attributing its wall time to the pool. *)
let run_task t slot task =
  if Telemetry.Control.on () then begin
    let t0 = Telemetry.Control.now_ns () in
    task ();
    Telemetry.Counter.add m_busy_ns (Telemetry.Control.now_ns () - t0);
    Telemetry.Counter.incr t.slot_tasks.(slot);
    Telemetry.Counter.incr m_tasks
  end
  else task ()

(* Cumulative utilization: busy time over wall time across all domains of
   this pool, folded over every batch so far. *)
let update_utilization t =
  if Telemetry.Control.on () then begin
    let wall = Telemetry.Span.total_ns m_batch in
    if wall > 0 then
      Telemetry.Gauge.set m_util
        (float_of_int (Telemetry.Counter.value m_busy_ns)
        /. (float_of_int wall *. float_of_int t.domains))
  end

let default_domains () = max 1 (Domain.recommended_domain_count ())

let pop_task t =
  match t.queue with
  | [] -> None
  | task :: rest ->
      t.queue <- rest;
      Some task

let finish_task t =
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.batch_done;
  Mutex.unlock t.mutex

(* Worker domains sleep on [work] and drain the queue; each task is
   responsible for decrementing [pending] (see [finish_task]). *)
let worker_loop t slot =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match pop_task t with
      | Some task ->
          Mutex.unlock t.mutex;
          run_task t slot task;
          finish_task t;
          loop ()
      | None ->
          if t.live then begin
            Condition.wait t.work t.mutex;
            next ()
          end
          else Mutex.unlock t.mutex
    in
    next ()
  in
  loop ()

let create ?domains () =
  let domains =
    match domains with None -> default_domains () | Some d -> max 1 d
  in
  let t =
    {
      domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      batch_done = Condition.create ();
      queue = [];
      pending = 0;
      live = true;
      workers = [];
      busy = Atomic.make false;
      slot_tasks = Array.init domains slot_counter;
    }
  in
  t.workers <-
    List.init (domains - 1)
      (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let domains t = t.domains

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [tasks.(i) ()] for every i, on the workers plus the calling domain,
   and re-raise the first (lowest-indexed) exception once all tasks have
   settled.  Tasks must not touch the pool: rejected via [busy]. *)
let run_batch t tasks =
  let ntasks = Array.length tasks in
  if ntasks > 0 then begin
    if not (Atomic.compare_and_set t.busy false true) then raise Nested_use;
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () ->
        Telemetry.Counter.incr m_batches;
        Telemetry.Span.time m_batch (fun () ->
            let exns = Array.make ntasks None in
            let wrap i task () =
              match task () with
              | () -> ()
              | exception e -> exns.(i) <- Some e
            in
            Mutex.lock t.mutex;
            t.pending <- ntasks;
            (* The queue is empty here: [busy] admits one batch at a time. *)
            t.queue <- Array.to_list (Array.mapi wrap tasks);
            Condition.broadcast t.work;
            (* The caller drains the queue alongside the workers, then blocks
               until stragglers finish. *)
            let rec drain () =
              match pop_task t with
              | Some task ->
                  Mutex.unlock t.mutex;
                  run_task t 0 task;
                  finish_task t;
                  Mutex.lock t.mutex;
                  drain ()
              | None ->
                  while t.pending > 0 do
                    Condition.wait t.batch_done t.mutex
                  done;
                  Mutex.unlock t.mutex
            in
            drain ();
            Array.iter (function Some e -> raise e | None -> ()) exns);
        update_utilization t)
  end

(* Split [len] items into at most [domains * 4] contiguous chunks so that
   uneven task costs still spread across domains; chunk boundaries are a
   pure function of [len] and [domains], never of timing. *)
let chunk_bounds t len =
  let chunks = min len (t.domains * 4) in
  Array.init chunks (fun c -> (c * len / chunks, (c + 1) * len / chunks))

let parallel_map t f xs =
  let len = Array.length xs in
  if len = 0 then [||]
  else if t.domains = 1 then begin
    (* Reference sequential path: same busy discipline, same order. *)
    if not (Atomic.compare_and_set t.busy false true) then raise Nested_use;
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () ->
        Telemetry.Counter.incr m_batches;
        let r = ref [||] in
        Telemetry.Span.time m_batch (fun () ->
            run_task t 0 (fun () -> r := Array.map f xs));
        update_utilization t;
        !r)
  end
  else begin
    let results = Array.make len None in
    let tasks =
      Array.map
        (fun (lo, hi) () ->
          for i = lo to hi - 1 do
            results.(i) <- Some (f xs.(i))
          done)
        (chunk_bounds t len)
    in
    run_batch t tasks;
    Array.map (function Some v -> v | None -> assert false) results
  end

(* Work-stealing fan-out: tasks are dealt round-robin into one deque per
   pool slot; each slot drains its own deque front-to-back, then scans
   the other slots' deques and steals from their backs.  Tasks never
   enqueue further tasks, so a slot that finds every deque empty can
   exit — no termination protocol is needed.  The distribution (task i
   to deque [i mod domains]) is a pure function of the input, but which
   slot ultimately RUNS a task is timing-dependent: [f] must not let
   [worker] influence its result, only its scratch-state reuse.  At
   [~domains:1] the single deque is drained front-to-back on the calling
   domain — the sequential reference order is the task index order. *)
let parallel_steal t ~f tasks =
  let ntasks = Array.length tasks in
  if ntasks = 0 then 0
  else begin
    let d = t.domains in
    let deques = Array.init d (fun _ -> Deque.create ()) in
    Array.iteri (fun i task -> Deque.push deques.(i mod d) task) tasks;
    let stolen = Array.make d 0 in
    let slot_loop w () =
      let rec own () =
        match Deque.take_front deques.(w) with
        | Some task ->
            f ~worker:w task;
            own ()
        | None -> rob 1
      and rob off =
        if off < d then
          match Deque.take_back deques.((w + off) mod d) with
          | Some task ->
              stolen.(w) <- stolen.(w) + 1;
              f ~worker:w task;
              own ()
          | None -> rob (off + 1)
      in
      own ()
    in
    run_batch t (Array.init d slot_loop);
    let steals = Array.fold_left ( + ) 0 stolen in
    Telemetry.Counter.add m_steals steals;
    steals
  end

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init";
  parallel_map t f (Array.init n Fun.id)

let parallel_reduce_max t ~score f xs =
  if Array.length xs = 0 then invalid_arg "Pool.parallel_reduce_max: empty";
  let ys = parallel_map t f xs in
  (* Deterministic fold: the lowest index wins ties, independent of how
     the map was scheduled. *)
  let best = ref ys.(0) in
  let best_score = ref (score ys.(0)) in
  for i = 1 to Array.length ys - 1 do
    let s = score ys.(i) in
    if s > !best_score then begin
      best := ys.(i);
      best_score := s
    end
  done;
  !best
