(** A thread-safe double-ended task queue: the unit of work distribution
    behind {!Pool.parallel_steal}.

    Each pool slot owns one deque.  [push] appends at the back (used
    once, at distribution time); the owner drains with {!take_front} in
    distribution order, while thieves call {!take_back} to steal the
    work farthest from the owner's current position — so adjacent tasks
    (which in the B&B frontier share most of their node prefix, hence
    most of their kernel state) stay on one domain.

    All operations take a per-deque mutex; the intended granularity is
    one acquisition per task whose body is large (a subtree search, a
    simulation slice), where lock traffic is noise. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append at the back. *)

val take_front : 'a t -> 'a option
(** Remove and return the front element (oldest pushed), if any. *)

val take_back : 'a t -> 'a option
(** Remove and return the back element (newest pushed), if any. *)

val length : 'a t -> int
(** Current number of queued elements (racy under concurrent use —
    meaningful only as a heuristic). *)
