type t = int Atomic.t

let create v = Atomic.make v
let get t = Atomic.get t

let rec improve t v =
  let cur = Atomic.get t in
  if v <= cur then false
  else if Atomic.compare_and_set t cur v then true
  else improve t v
