(** A monotonically increasing integer cell shared between domains: the
    incumbent ("best so far") of a branch-and-bound search.

    Reads and writes are atomic and lock-free.  The determinism
    discipline (DESIGN.md §2) is: a cell read *during* a parallel batch
    sees a timing-dependent value, so result-affecting reads must happen
    either before the batch is dispatched or after it completes.
    Publishing improvements from inside tasks is always safe. *)

type t

val create : int -> t
(** [create v] is a cell holding [v]. *)

val get : t -> int

val improve : t -> int -> bool
(** [improve t v] raises the cell to [v] if [v] is strictly greater than
    the current value.  Returns [true] iff the cell changed.  The cell
    never decreases. *)
