(** A monotonically increasing integer cell shared between domains: the
    incumbent ("best so far") of a branch-and-bound search.

    Reads and writes are atomic and lock-free.  The determinism
    discipline (DESIGN.md §2/§15) admits two uses.  Either a cell is
    read only before a parallel batch is dispatched or after it
    completes (a mid-batch read sees a timing-dependent value); or tasks
    do read it mid-batch, but only as a {e conservative pruning bound}
    whose every observed value is ≤ the true optimum — then the set of
    nodes a task explores varies with timing, while the task's reported
    result does not, provided pruning keeps ties against the shared cell
    (see {!Placement.Bb}).  Publishing improvements from inside tasks is
    always safe: the cell only tightens. *)

type t

val create : int -> t
(** [create v] is a cell holding [v]. *)

val get : t -> int

val improve : t -> int -> bool
(** [improve t v] raises the cell to [v] if [v] is strictly greater than
    the current value.  Returns [true] iff the cell changed.  The cell
    never decreases. *)
