(* A mutex-protected double-ended task queue backing Pool.parallel_steal.

   The contention profile is one lock acquisition per task taken or
   stolen, against task bodies that run for thousands of kernel updates
   (a B&B subtree, a simulation slice) — so a plain mutex over a ring
   buffer beats a lock-free Chase-Lev deque on simplicity at no
   measurable cost here.  Owners drain from the FRONT (distribution
   order, preserving prefix locality between adjacent subtree tasks);
   thieves take from the BACK, grabbing the work farthest from what the
   owner will touch next. *)

type 'a t = {
  mutex : Mutex.t;
  mutable buf : 'a option array;
  mutable head : int;  (* ring index of the front element *)
  mutable len : int;
}

let create () = { mutex = Mutex.create (); buf = Array.make 16 None; head = 0; len = 0 }

let length t =
  Mutex.lock t.mutex;
  let n = t.len in
  Mutex.unlock t.mutex;
  n

(* Callers hold the mutex. *)
let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push t x =
  Mutex.lock t.mutex;
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
  t.len <- t.len + 1;
  Mutex.unlock t.mutex

let take_front t =
  Mutex.lock t.mutex;
  let r =
    if t.len = 0 then None
    else begin
      let x = t.buf.(t.head) in
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.buf;
      t.len <- t.len - 1;
      x
    end
  in
  Mutex.unlock t.mutex;
  r

let take_back t =
  Mutex.lock t.mutex;
  let r =
    if t.len = 0 then None
    else begin
      let i = (t.head + t.len - 1) mod Array.length t.buf in
      let x = t.buf.(i) in
      t.buf.(i) <- None;
      t.len <- t.len - 1;
      x
    end
  in
  Mutex.unlock t.mutex;
  r
