(** Bounded buffer of per-call span events for Chrome [about://tracing]
    (or Perfetto) export.

    Events are recorded by {!Span.time} only while {!Control.trace_on};
    the buffer holds the first {!capacity} events and counts the rest as
    dropped rather than growing without bound. *)

type event = {
  name : string;  (** span path *)
  ts_ns : int;  (** wall-clock start *)
  dur_ns : int;
  tid : int;  (** runtime domain id of the recording domain *)
}

val capacity : int

val emit : name:string -> ts_ns:int -> dur_ns:int -> unit
(** Thread-safe; drops (and counts) once the buffer is full. *)

val snapshot : unit -> event list * int
(** Buffered events in chronological start order, plus the drop count. *)

val reset : unit -> unit
