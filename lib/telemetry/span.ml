type t = {
  path : string;
  kind : Control.kind;
  calls : int Atomic.t;
  ns : int Atomic.t;
}

let make ~path ~kind =
  { path; kind; calls = Atomic.make 0; ns = Atomic.make 0 }

let record_ns t dur =
  if Control.on () then begin
    ignore (Atomic.fetch_and_add t.calls 1);
    ignore (Atomic.fetch_and_add t.ns dur)
  end

let time t f =
  if not (Control.on ()) then f ()
  else begin
    let t0 = Control.now_ns () in
    let finish () =
      let dur = Control.now_ns () - t0 in
      ignore (Atomic.fetch_and_add t.calls 1);
      ignore (Atomic.fetch_and_add t.ns dur);
      if Control.trace_on () then Trace.emit ~name:t.path ~ts_ns:t0 ~dur_ns:dur
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let count t = Atomic.get t.calls
let total_ns t = Atomic.get t.ns

let reset t =
  Atomic.set t.calls 0;
  Atomic.set t.ns 0

let path t = t.path
let kind t = t.kind
