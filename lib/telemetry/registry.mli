(** The global metric registry: one process-wide table of named metrics,
    snapshotted into a deterministic tree of scopes.

    Paths are '/'-separated scopes, lowercase, e.g.
    ["core/adversary/bb/nodes_expanded"].  Metrics are find-or-create:
    the registering module calls {!counter}/{!span}/... at module
    initialization (or lazily from worker code — the table is
    mutex-guarded) and holds on to the handle; re-requesting a path
    returns the existing metric, and requesting it as a different
    metric type raises [Invalid_argument].

    {!snapshot} splits the world into [values] (kind
    {!Control.Stable}: bit-identical at any [-j] — the determinism suite
    diffs exactly this list) and [timings] (everything wall-clock or
    scheduling shaped).  Both lists are sorted by path, so the exported
    scope tree never depends on registration or completion order. *)

type value =
  | Count of int  (** counter, or a span's call count / total ns *)
  | Value of float  (** gauge *)
  | Dist of Histogram.snapshot

type snapshot = {
  values : (string * value) list;  (** deterministic, sorted by path *)
  timings : (string * value) list;  (** volatile, sorted by path *)
}

val counter : ?kind:Control.kind -> string -> Counter.t
(** Find-or-create; [kind] defaults to [Stable] and is ignored when the
    metric already exists. *)

val gauge : ?kind:Control.kind -> string -> Gauge.t
(** [kind] defaults to [Volatile]. *)

val histogram : ?kind:Control.kind -> string -> Histogram.t
(** [kind] defaults to [Stable]. *)

val span : ?kind:Control.kind -> string -> Span.t
(** [kind] (default [Stable]) classifies the call count; the span's
    accumulated duration is always exported under [timings] as
    ["<path>/total_ns"]. *)

val snapshot : unit -> snapshot
(** Zero-valued counters/histograms/spans and unset gauges are omitted,
    so the snapshot is the tree of scopes that actually did work. *)

val reset : unit -> unit
(** Zero every metric and drop buffered trace events.  Registered
    metrics stay registered (handles held by instrumented modules remain
    valid). *)
